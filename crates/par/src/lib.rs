//! Deterministic scoped parallel map for the SuperNPU workspace.
//!
//! [`par_map`] fans a pure function over a slice using scoped worker
//! threads with a shared atomic index dispenser (work stealing at
//! item granularity), then reassembles results **by index**, so the
//! output is bit-identical to the serial `items.iter().map(f)` — the
//! schedule affects only which thread computes each item, never the
//! arithmetic or the order of the returned `Vec`.
//!
//! A global permit pool caps the total number of live workers across
//! nested calls: an outer sweep grabs the available permits and inner
//! `par_map` calls (e.g. per-workload evaluation inside a sweep point)
//! find the pool empty and degrade to inline serial execution instead
//! of oversubscribing the machine.
//!
//! Thread count resolution order: [`set_threads`] override, then the
//! `SUPERNPU_THREADS` environment variable, then
//! `std::thread::available_parallelism()`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Programmatic thread-count override; 0 means "unset".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Trace-track id of pool worker 0 (the calling thread); worker `w`
/// records on track `WORKER_TRACK_BASE + w` of
/// [`sfq_obs::trace::HOST_PID`]. Workers are scoped threads that die
/// with their region, so routing their events to these stable tracks
/// (via [`sfq_obs::trace::with_track`]) keeps one timeline per worker
/// slot across regions instead of one orphan track per spawned
/// thread.
const WORKER_TRACK_BASE: u64 = 1000;

/// Worker permits still available for new parallel regions.
/// `usize::MAX` marks "not yet initialized from [`threads`]".
static PERMITS: Mutex<usize> = Mutex::new(usize::MAX);

/// Override the worker-thread count for subsequent [`par_map`] calls.
///
/// `n` counts total threads doing work (including the calling thread);
/// `set_threads(1)` forces fully serial execution. Takes precedence
/// over `SUPERNPU_THREADS`. Call this only while no `par_map` region
/// is active — it resets the shared worker-permit pool.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n.max(1), Ordering::SeqCst);
    *PERMITS.lock().unwrap_or_else(|e| e.into_inner()) = n.max(1) - 1;
}

/// Clear a [`set_threads`] override, returning to the default
/// resolution order (`SUPERNPU_THREADS`, then
/// `std::thread::available_parallelism()`), and reset the worker
/// permit pool so the next [`par_map`] region re-derives it. Like
/// [`set_threads`], call only while no `par_map` region is active.
pub fn clear_threads() {
    THREAD_OVERRIDE.store(0, Ordering::SeqCst);
    *PERMITS.lock().unwrap_or_else(|e| e.into_inner()) = usize::MAX;
}

/// The resolved total thread count [`par_map`] will aim for.
pub fn threads() -> usize {
    let ov = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if ov != 0 {
        return ov;
    }
    if let Ok(s) = std::env::var("SUPERNPU_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Take up to `want` worker permits from the global pool.
fn acquire_permits(want: usize) -> usize {
    let mut pool = PERMITS.lock().unwrap_or_else(|e| e.into_inner());
    if *pool == usize::MAX {
        *pool = threads() - 1;
    }
    let take = (*pool).min(want);
    *pool -= take;
    take
}

/// Returns permits on drop so panics inside `par_map` don't leak them.
struct PermitGuard(usize);

impl Drop for PermitGuard {
    fn drop(&mut self) {
        if self.0 > 0 {
            let mut pool = PERMITS.lock().unwrap_or_else(|e| e.into_inner());
            *pool += self.0;
        }
    }
}

/// Map `f` over `items` in parallel, returning results in input order.
///
/// `f` must be pure with respect to the output (it may read shared
/// state); given that, the result is exactly `items.iter().map(f)` —
/// every float operation happens with the same operands in the same
/// per-item order regardless of thread count. Falls back to inline
/// serial execution when the slice is short, only one thread is
/// configured, or all worker permits are held by an enclosing
/// `par_map` (nested calls).
///
/// # Panics
///
/// Propagates the first panic raised by `f` on any thread.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.iter().map(&f).collect();
    }
    let guard = PermitGuard(acquire_permits(n - 1));
    if guard.0 == 0 {
        // Nested call or single-thread pool: degrade to inline serial.
        sfq_obs::inc("par.serial_fallback");
        if sfq_obs::trace::enabled() {
            // Still mark the region on the timeline so a 1-core trace
            // shows where the fan-outs (serially) ran.
            let t0 = sfq_obs::trace::now_us();
            let out = items.iter().map(&f).collect();
            sfq_obs::trace::complete(
                "par",
                &format!("par_map region ({n} items, serial)"),
                t0,
                sfq_obs::trace::now_us() - t0,
            );
            return out;
        }
        return items.iter().map(&f).collect();
    }
    // Metrics and trace gates, sampled once per region so every worker
    // of this region agrees (a mid-region toggle cannot skew the
    // counts or tear the track layout).
    let metrics_on = sfq_obs::enabled();
    if metrics_on {
        sfq_obs::inc("par.regions");
        sfq_obs::gauge_set("par.threads", threads() as f64);
    }
    let trace_on = sfq_obs::trace::enabled();
    let region_t0 = if trace_on {
        for w in 0..=guard.0 {
            sfq_obs::trace::name_track(
                sfq_obs::trace::HOST_PID,
                WORKER_TRACK_BASE + w as u64,
                &format!("pool worker {w}"),
            );
        }
        sfq_obs::trace::now_us()
    } else {
        0.0
    };

    let next = AtomicUsize::new(0);
    // `worker` 0 is the calling thread; 1..=permits are the spawned
    // workers. Items a worker pulls from the shared dispenser beyond
    // the caller count as steals.
    let run = |worker: usize, out: &mut Vec<(usize, R)>| {
        // Route this worker's default-track trace events (its own task
        // slices plus anything `f` records, e.g. solver run spans) to
        // its stable pool-worker track for the life of the region.
        let _track = trace_on.then(|| {
            sfq_obs::trace::with_track(sfq_obs::trace::HOST_PID, WORKER_TRACK_BASE + worker as u64)
        });
        let mut tasks = 0u64;
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let trace_t0 = if trace_on {
                sfq_obs::trace::now_us()
            } else {
                0.0
            };
            if metrics_on {
                let t0 = Instant::now();
                out.push((i, f(&items[i])));
                sfq_obs::observe("par.task_ms", t0.elapsed().as_secs_f64() * 1e3);
            } else {
                out.push((i, f(&items[i])));
            }
            if trace_on {
                // A task on a worker other than the caller was stolen
                // from the shared dispenser; encode that in the name
                // so steals are visible without extra events.
                let name = if worker == 0 { "task" } else { "task (stolen)" };
                sfq_obs::trace::complete(
                    "par",
                    name,
                    trace_t0,
                    sfq_obs::trace::now_us() - trace_t0,
                );
            }
            tasks += 1;
        }
        if metrics_on && tasks > 0 {
            sfq_obs::add("par.tasks", tasks);
            sfq_obs::counter(&format!("par.worker.{worker}.tasks")).add(tasks);
            if worker != 0 {
                sfq_obs::add("par.steals", tasks);
            }
        }
    };

    let mut parts: Vec<Vec<(usize, R)>> = Vec::with_capacity(guard.0 + 1);
    let run = &run;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (1..=guard.0)
            .map(|worker| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    run(worker, &mut out);
                    out
                })
            })
            .collect();
        let mut mine = Vec::new();
        run(0, &mut mine);
        parts.push(mine);
        for h in handles {
            match h.join() {
                Ok(part) => parts.push(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    drop(guard);
    if trace_on {
        sfq_obs::trace::complete(
            "par",
            &format!("par_map region ({n} items)"),
            region_t0,
            sfq_obs::trace::now_us() - region_t0,
        );
    }

    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for part in parts {
        for (i, r) in part {
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|slot| slot.unwrap_or_else(|| unreachable!("index dispenser covered every item")))
        .collect()
}

/// A task that panicked inside [`par_map_catch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// Index of the input item whose task panicked.
    pub index: usize,
    /// The panic message when the payload was a string, or a
    /// placeholder for non-string payloads.
    pub message: String,
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for TaskPanic {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Like [`par_map`], but a panic in one task poisons only that item.
///
/// Each item runs under `catch_unwind`; a panicking task yields
/// `Err(TaskPanic)` in its slot while every other item completes
/// normally. This is the fan-out primitive for fault-injection sweeps
/// and design-space exploration, where one broken probe must not take
/// down the whole region. Determinism is inherited from [`par_map`]:
/// results (including which items panic) depend only on the inputs,
/// never on the schedule.
///
/// `f` is wrapped in `AssertUnwindSafe`: it must not leave shared
/// state logically inconsistent when it panics (the workspace's probe
/// caches guard their locks against poisoning, so they are safe).
/// Panics are still reported through the process panic hook before
/// being caught, so expect their messages on stderr unless a quiet
/// hook is installed.
pub fn par_map_catch<T, R, F>(items: &[T], f: F) -> Vec<Result<R, TaskPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let idx: Vec<usize> = (0..items.len()).collect();
    par_map(&idx, |&i| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&items[i]))).map_err(|payload| {
            sfq_obs::inc("par.task_panics");
            sfq_obs::trace::instant("par", "task panic");
            TaskPanic {
                index: i,
                message: panic_message(payload),
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_exactly_and_handles_nesting() {
        // Single test so `set_threads` isn't raced by the parallel
        // test harness.

        // With no override and no SUPERNPU_THREADS, the pool defaults
        // to the machine's available parallelism — sweeps fan out by
        // default instead of silently running single-threaded.
        std::env::remove_var("SUPERNPU_THREADS");
        clear_threads();
        let hw = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        assert_eq!(threads(), hw, "default must track the hardware");
        // Env var takes effect once the override is cleared.
        std::env::set_var("SUPERNPU_THREADS", "3");
        assert_eq!(threads(), 3);
        std::env::remove_var("SUPERNPU_THREADS");

        set_threads(4);
        assert_eq!(threads(), 4);

        let items: Vec<u64> = (0..257).collect();
        let f = |x: &u64| {
            // Float-heavy body: bit-identical results required.
            let mut acc = *x as f64;
            for k in 1..50 {
                acc = (acc * 1.000_1 + k as f64).sin() + acc;
            }
            acc
        };
        let serial: Vec<f64> = items.iter().map(f).collect();
        let parallel = par_map(&items, f);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.to_bits(), p.to_bits(), "bit-identical to serial");
        }

        // Nested calls degrade gracefully and stay correct.
        let outer: Vec<Vec<u64>> = par_map(&items[..16], |x| {
            let inner: Vec<u64> = (0..8).map(|k| x + k).collect();
            par_map(&inner, |y| y * 2)
        });
        for (i, row) in outer.iter().enumerate() {
            let expect: Vec<u64> = (0..8).map(|k| (items[i] + k) * 2).collect();
            assert_eq!(*row, expect);
        }

        // Serial override still produces the same values.
        set_threads(1);
        let forced_serial = par_map(&items, f);
        for (s, p) in serial.iter().zip(&forced_serial) {
            assert_eq!(s.to_bits(), p.to_bits());
        }
        set_threads(4);

        // Empty and singleton inputs.
        let empty: Vec<f64> = par_map(&[] as &[u64], f);
        assert!(empty.is_empty());
        assert_eq!(par_map(&[7u64], |x| x + 1), vec![8]);

        // A panicking task poisons only its own slot.
        set_threads(4);
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep test output quiet
        let caught = par_map_catch(&items[..32], |x| {
            assert!(x % 5 != 3, "injected failure at {x}");
            x * 10
        });
        std::panic::set_hook(hook);
        assert_eq!(caught.len(), 32);
        for (i, r) in caught.iter().enumerate() {
            if i % 5 == 3 {
                let e = r.as_ref().unwrap_err();
                assert_eq!(e.index, i);
                assert!(e.message.contains("injected failure"), "{e}");
            } else {
                assert_eq!(*r, Ok(items[i] * 10));
            }
        }

        // Leave the process in the default state for any later code.
        clear_threads();
    }
}
