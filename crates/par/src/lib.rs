//! Deterministic scoped parallel map for the SuperNPU workspace.
//!
//! [`par_map`] fans a pure function over a slice using scoped worker
//! threads, then reassembles results **by index**, so the output is
//! bit-identical to the serial `items.iter().map(f)` — the schedule
//! affects only which thread computes each item, never the arithmetic
//! or the order of the returned `Vec`.
//!
//! # Granularity-aware chunking
//!
//! Dispatch is *chunked*: the first item runs inline on the caller as
//! a cost probe, and the measured per-task cost sizes the scheduling
//! quantum. Cheap tasks are auto-merged into chunks large enough to
//! amortize dispatch (target [`TARGET_CHUNK_US`] per chunk), expensive
//! tasks keep item granularity for load balance, and a sweep whose
//! projected total work is below the fan-out break-even threshold
//! never spawns a thread at all — it completes inline, so tiny
//! paper-figure sweeps cannot run slower than serial. The chunk size
//! can be pinned with [`set_chunk`] or the `SUPERNPU_CHUNK`
//! environment variable (which also disables the break-even fallback,
//! for tests that need the parallel path unconditionally).
//!
//! # Cache-affine keyed scheduling
//!
//! [`par_map_keyed`] accepts an affinity key per item: items sharing a
//! key (e.g. sweep points that hit the same characterization or
//! estimate-cache entries) are queued on the same worker, so a warm
//! cache line or memo entry is reused by the thread that filled it
//! instead of bouncing between cores. Each worker drains its own queue
//! first and steals whole chunks from other workers only when idle, so
//! affinity never causes starvation.
//!
//! A global permit pool caps the total number of live workers across
//! nested calls: an outer sweep grabs the available permits and inner
//! `par_map` calls (e.g. per-workload evaluation inside a sweep point)
//! find the pool empty and degrade to inline serial execution instead
//! of oversubscribing the machine.
//!
//! Thread count resolution order: [`set_threads`] override, then the
//! `SUPERNPU_THREADS` environment variable, then
//! `std::thread::available_parallelism()`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Programmatic thread-count override; 0 means "unset".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Programmatic chunk-size override; 0 means "unset" (fall back to
/// `SUPERNPU_CHUNK`, then automatic sizing).
static CHUNK_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Target wall-clock per scheduling quantum, microseconds. Tasks
/// cheaper than this are merged until a chunk costs roughly this much;
/// dispatch overhead (an atomic increment plus a pair of `Vec` pushes)
/// is then noise against the work itself.
const TARGET_CHUNK_US: f64 = 200.0;

/// Minimum projected *remaining* work, microseconds, below which a
/// region runs inline instead of fanning out. Scales with the worker
/// count via [`spawn_break_even_us`]: each scoped thread costs tens of
/// microseconds to spawn and join, so a sweep has to bring at least
/// that much work to win.
const BREAK_EVEN_US: f64 = 200.0;

/// Estimated cost of spawning + joining one scoped worker thread,
/// microseconds.
const SPAWN_COST_US: f64 = 60.0;

/// Upper bound on chunks a worker is pre-assigned relative to its fair
/// share: chunk sizing aims for at least this many chunks per worker
/// so stealing can rebalance a skewed cost distribution.
const CHUNKS_PER_WORKER: usize = 4;

fn spawn_break_even_us(workers: usize) -> f64 {
    BREAK_EVEN_US.max(SPAWN_COST_US * workers as f64)
}

/// Trace-track id of pool worker 0 (the calling thread); worker `w`
/// records on track `WORKER_TRACK_BASE + w` of
/// [`sfq_obs::trace::HOST_PID`]. Workers are scoped threads that die
/// with their region, so routing their events to these stable tracks
/// (via [`sfq_obs::trace::with_track`]) keeps one timeline per worker
/// slot across regions instead of one orphan track per spawned
/// thread.
const WORKER_TRACK_BASE: u64 = 1000;

/// Worker permits still available for new parallel regions.
/// `usize::MAX` marks "not yet initialized from [`threads`]".
static PERMITS: Mutex<usize> = Mutex::new(usize::MAX);

/// Override the worker-thread count for subsequent [`par_map`] calls.
///
/// `n` counts total threads doing work (including the calling thread);
/// `set_threads(1)` forces fully serial execution. Takes precedence
/// over `SUPERNPU_THREADS`. Call this only while no `par_map` region
/// is active — it resets the shared worker-permit pool.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n.max(1), Ordering::SeqCst);
    *PERMITS.lock().unwrap_or_else(|e| e.into_inner()) = n.max(1) - 1;
}

/// Clear a [`set_threads`] override, returning to the default
/// resolution order (`SUPERNPU_THREADS`, then
/// `std::thread::available_parallelism()`), and reset the worker
/// permit pool so the next [`par_map`] region re-derives it. Like
/// [`set_threads`], call only while no `par_map` region is active.
pub fn clear_threads() {
    THREAD_OVERRIDE.store(0, Ordering::SeqCst);
    *PERMITS.lock().unwrap_or_else(|e| e.into_inner()) = usize::MAX;
}

/// The resolved total thread count [`par_map`] will aim for.
pub fn threads() -> usize {
    let ov = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if ov != 0 {
        return ov;
    }
    if let Ok(s) = std::env::var("SUPERNPU_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Pin the scheduling chunk size for subsequent [`par_map`] calls.
///
/// `n >= 1` forces every scheduling quantum to `n` items and disables
/// both the cost probe's automatic sizing and the break-even serial
/// fallback (the region always takes the parallel path when workers
/// are available). `n == 0` clears the override, returning to
/// `SUPERNPU_CHUNK` and then automatic sizing. Results are bit-exact
/// for every chunk size by construction; this knob only moves the
/// overhead/balance trade-off.
pub fn set_chunk(n: usize) {
    CHUNK_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The pinned chunk size, if any: [`set_chunk`] first, then
/// `SUPERNPU_CHUNK`. `None` means automatic cost-probe sizing.
pub fn chunk_hint() -> Option<usize> {
    let ov = CHUNK_OVERRIDE.load(Ordering::SeqCst);
    if ov != 0 {
        return Some(ov);
    }
    if let Ok(s) = std::env::var("SUPERNPU_CHUNK") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return Some(n);
            }
        }
    }
    None
}

/// Take up to `want` worker permits from the global pool.
fn acquire_permits(want: usize) -> usize {
    let mut pool = PERMITS.lock().unwrap_or_else(|e| e.into_inner());
    if *pool == usize::MAX {
        *pool = threads() - 1;
    }
    let take = (*pool).min(want);
    *pool -= take;
    take
}

/// Returns permits on drop so panics inside `par_map` don't leak them.
struct PermitGuard(usize);

impl Drop for PermitGuard {
    fn drop(&mut self) {
        if self.0 > 0 {
            let mut pool = PERMITS.lock().unwrap_or_else(|e| e.into_inner());
            *pool += self.0;
        }
    }
}

/// Map `f` over `items` in parallel, returning results in input order.
///
/// `f` must be pure with respect to the output (it may read shared
/// state); given that, the result is exactly `items.iter().map(f)` —
/// every float operation happens with the same operands in the same
/// per-item order regardless of thread count, chunk size, or affinity
/// keys. Falls back to inline serial execution when the slice is
/// short, only one thread is configured, all worker permits are held
/// by an enclosing `par_map` (nested calls), or the cost probe decides
/// the whole region is below the fan-out break-even point.
///
/// # Panics
///
/// Propagates the first panic raised by `f` on any thread.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_region(items, None, f)
}

/// Like [`par_map`], but with an affinity key per item: items that
/// share a key are scheduled on the same worker (in input order), so
/// sweep points that hit the same characterization or estimate-cache
/// entries reuse the worker that warmed them instead of contending
/// across threads. Keys only steer the schedule — the results are
/// bit-identical to [`par_map`] and to serial for any key function.
///
/// `key` is called once per item on the calling thread before fan-out;
/// keep it trivially cheap (a field read or a small hash).
pub fn par_map_keyed<T, R, F, K>(items: &[T], key: K, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
    K: Fn(&T) -> u64,
{
    if items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let keys: Vec<u64> = items.iter().map(&key).collect();
    map_region(items, Some(keys), f)
}

/// Execution plan of one parallel region: item indices in execution
/// order, cut into chunks, with each chunk pre-assigned to a worker
/// queue. Workers drain their own queue first (cache affinity), then
/// steal whole chunks from other queues (load balance).
struct Plan {
    /// Item indices (into the caller's slice) in execution order.
    /// Index 0 never appears: it is the caller's cost probe.
    order: Vec<u32>,
    /// `(offset, len)` windows into `order`.
    chunks: Vec<(u32, u32)>,
    /// Per-worker lists of chunk ids.
    queues: Vec<Vec<u32>>,
}

/// Size one scheduling quantum from the probed per-task cost.
fn auto_chunk(probe_us: f64, remaining: usize, workers: usize) -> usize {
    let by_cost = if probe_us > 0.0 {
        (TARGET_CHUNK_US / probe_us).ceil() as usize
    } else {
        remaining
    };
    // Keep enough chunks in flight for stealing to rebalance.
    let balance_cap = (remaining / (workers * CHUNKS_PER_WORKER)).max(1);
    by_cost.clamp(1, balance_cap)
}

/// Build the execution plan for items `1..n`.
///
/// Unkeyed: contiguous chunks dealt round-robin. Keyed: items are
/// grouped by key in order of first appearance, each group is cut into
/// chunks, and **all** chunks of a group land on the same queue.
fn plan(n: usize, keys: Option<&[u64]>, chunk: usize, workers: usize) -> Plan {
    let mut order: Vec<u32> = Vec::with_capacity(n - 1);
    let mut chunks: Vec<(u32, u32)> = Vec::new();
    let mut queues: Vec<Vec<u32>> = vec![Vec::new(); workers];
    match keys {
        None => {
            order.extend(1..n as u32);
            // Deal contiguous chunks round-robin across the queues.
            let mut off = 0usize;
            let mut q = 0usize;
            while off < order.len() {
                let take = chunk.min(order.len() - off);
                queues[q % workers].push(chunks.len() as u32);
                chunks.push((off as u32, take as u32));
                off += take;
                q += 1;
            }
        }
        Some(keys) => {
            // Group item indices by key, preserving input order inside
            // each group and ordering groups by first appearance; all
            // chunks of one group land on one queue.
            let mut group_of: std::collections::HashMap<u64, usize> =
                std::collections::HashMap::new();
            let mut groups: Vec<Vec<u32>> = Vec::new();
            for (i, &key) in keys.iter().enumerate().take(n).skip(1) {
                let g = *group_of.entry(key).or_insert_with(|| {
                    groups.push(Vec::new());
                    groups.len() - 1
                });
                groups[g].push(i as u32);
            }
            for (g, members) in groups.iter().enumerate() {
                let start = order.len();
                order.extend_from_slice(members);
                let end = start + members.len();
                let mut off = start;
                while off < end {
                    let take = chunk.min(end - off);
                    queues[g % workers].push(chunks.len() as u32);
                    chunks.push((off as u32, take as u32));
                    off += take;
                }
            }
        }
    }
    Plan {
        order,
        chunks,
        queues,
    }
}

/// The shared region runner behind [`par_map`] / [`par_map_keyed`].
#[allow(clippy::too_many_lines)]
fn map_region<T, R, F>(items: &[T], keys: Option<Vec<u64>>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.iter().map(&f).collect();
    }
    let guard = PermitGuard(acquire_permits(n - 1));
    if guard.0 == 0 {
        // Nested call or single-thread pool: degrade to inline serial.
        let _pf = sfq_obs::prof::frame("par.serial_fallback");
        sfq_obs::inc("par.serial_fallback");
        // A 1-core sweep still narrates itself (a nested call finds
        // the slot taken and stays quiet — its ticks would inflate
        // the enclosing phase's done count).
        let progress = sfq_obs::progress::Region::enter("par_map", n as u64);
        let progress_on = progress.is_claimed();
        let serial = |items: &[T]| {
            items
                .iter()
                .map(|it| {
                    let r = f(it);
                    if progress_on {
                        sfq_obs::progress::tick(1);
                    }
                    r
                })
                .collect()
        };
        if sfq_obs::trace::enabled() {
            // Still mark the region on the timeline so a 1-core trace
            // shows where the fan-outs (serially) ran.
            let t0 = sfq_obs::trace::now_us();
            let out = serial(items);
            sfq_obs::trace::complete(
                "par",
                &format!("par_map region ({n} items, serial)"),
                t0,
                sfq_obs::trace::now_us() - t0,
            );
            return out;
        }
        return serial(items);
    }
    // Metrics and trace gates, sampled once per region so every worker
    // of this region agrees (a mid-region toggle cannot skew the
    // counts or tear the track layout).
    let metrics_on = sfq_obs::enabled();
    let trace_on = sfq_obs::trace::enabled();
    let prof_on = sfq_obs::prof::enabled();
    let region_t0 = if trace_on {
        sfq_obs::trace::now_us()
    } else {
        0.0
    };

    // Cost probe: item 0 runs inline on the caller, timed. The probe
    // both warms lazy statics and prices the remaining work.
    let probe_frame = prof_on.then(|| sfq_obs::prof::frame("par.probe"));
    let probe_t0 = Instant::now();
    let r0 = f(&items[0]);
    let probe_us = probe_t0.elapsed().as_secs_f64() * 1e6;
    drop(probe_frame);
    if metrics_on {
        sfq_obs::observe("par.task_ms", probe_us * 1e-3);
    }

    let pinned = chunk_hint();
    let remaining = n - 1;
    if pinned.is_none() && probe_us * remaining as f64 <= spawn_break_even_us(guard.0 + 1) {
        // Break-even fallback: the whole region is projected cheaper
        // than spawning workers — finish inline. This is what keeps
        // fig20-scale sweeps from losing to serial.
        let inline_frame = prof_on.then(|| sfq_obs::prof::frame("par.inline"));
        let out = finish_inline(items, r0, &f, metrics_on);
        drop(inline_frame);
        drop(guard);
        if metrics_on {
            sfq_obs::inc("par.breakeven_serial");
        }
        if trace_on {
            sfq_obs::trace::complete(
                "par",
                &format!("par_map region ({n} items, break-even serial)"),
                region_t0,
                sfq_obs::trace::now_us() - region_t0,
            );
        }
        return out;
    }
    let chunk = pinned.unwrap_or_else(|| auto_chunk(probe_us, remaining, guard.0 + 1));

    // Progress: claim the phase slot if no enclosing sweep (e.g. the
    // resilient runner) already narrates this work. Only the claimer
    // ticks — nested regions inside one logical point must not
    // inflate the done count past the total.
    let progress = sfq_obs::progress::Region::enter("par_map", n as u64);
    let progress_on = progress.is_claimed();
    if progress_on {
        // The probe item already ran inline.
        sfq_obs::progress::tick(1);
    }

    // Spawn no more workers than there are chunks to run (the caller
    // drains queues too); surplus permits are returned by the guard.
    let plan = plan(n, keys.as_deref(), chunk, guard.0 + 1);
    let spawned = guard.0.min(plan.chunks.len().saturating_sub(1));
    let workers = spawned + 1;

    if metrics_on {
        sfq_obs::inc("par.regions");
        if keys.is_some() {
            sfq_obs::inc("par.keyed_regions");
        }
        sfq_obs::gauge_set("par.threads", threads() as f64);
        sfq_obs::gauge_set("par.chunk_size", chunk as f64);
        sfq_obs::add("par.chunks", plan.chunks.len() as u64);
    }
    if trace_on {
        for w in 0..workers {
            sfq_obs::trace::name_track(
                sfq_obs::trace::HOST_PID,
                WORKER_TRACK_BASE + w as u64,
                &format!("pool worker {w}"),
            );
        }
    }

    // One cursor per queue; a worker drains its own queue, then steals
    // chunks from the other queues. `fetch_add` hands every chunk to
    // exactly one thread.
    let cursors: Vec<AtomicUsize> = (0..plan.queues.len())
        .map(|_| AtomicUsize::new(0))
        .collect();
    let plan = &plan;
    let cursors = &cursors;
    let run = |worker: usize, out: &mut Vec<(usize, R)>| {
        // Route this worker's default-track trace events (its own task
        // slices plus anything `f` records, e.g. solver run spans) to
        // its stable pool-worker track for the life of the region.
        let _track = trace_on.then(|| {
            sfq_obs::trace::with_track(sfq_obs::trace::HOST_PID, WORKER_TRACK_BASE + worker as u64)
        });
        // One profile frame per worker slot: everything `f` records
        // (solver runs, cache fills) nests under it, giving the merged
        // report exact per-worker sub-trees.
        let _pf = prof_on.then(|| sfq_obs::prof::frame(&format!("par.worker.{worker}")));
        let mut own = 0u64;
        let mut stolen = 0u64;
        for delta in 0..plan.queues.len() {
            let victim = (worker + delta) % plan.queues.len();
            let stealing = victim != worker;
            loop {
                let c = cursors[victim].fetch_add(1, Ordering::Relaxed);
                let Some(&chunk_id) = plan.queues[victim].get(c) else {
                    break;
                };
                let (off, len) = plan.chunks[chunk_id as usize];
                let trace_t0 = if trace_on {
                    sfq_obs::trace::now_us()
                } else {
                    0.0
                };
                // Chunk execution as a frame (not a pre-aggregated
                // leaf) so the frames `f` itself opens nest inside it.
                let chunk_frame = prof_on
                    .then(|| sfq_obs::prof::frame(if stealing { "steal" } else { "chunk_exec" }));
                for &i in &plan.order[off as usize..(off + len) as usize] {
                    if metrics_on {
                        let t0 = Instant::now();
                        out.push((i as usize, f(&items[i as usize])));
                        sfq_obs::observe("par.task_ms", t0.elapsed().as_secs_f64() * 1e3);
                    } else {
                        out.push((i as usize, f(&items[i as usize])));
                    }
                }
                drop(chunk_frame);
                if progress_on {
                    sfq_obs::progress::tick(u64::from(len));
                }
                if trace_on {
                    let name = if stealing {
                        format!("chunk ({len} items, stolen)")
                    } else {
                        format!("chunk ({len} items)")
                    };
                    sfq_obs::trace::complete(
                        "par",
                        &name,
                        trace_t0,
                        sfq_obs::trace::now_us() - trace_t0,
                    );
                }
                if stealing {
                    stolen += u64::from(len);
                } else {
                    own += u64::from(len);
                }
            }
        }
        if prof_on && own + stolen > 0 {
            sfq_obs::prof::count("tasks", own + stolen);
            sfq_obs::prof::count("tasks_stolen", stolen);
        }
        if metrics_on && own + stolen > 0 {
            sfq_obs::add("par.tasks", own + stolen);
            sfq_obs::counter(&format!("par.worker.{worker}.tasks")).add(own + stolen);
            if worker == 0 {
                // Caller-run tasks are not steals: the calling thread
                // participates in its own region by design.
                sfq_obs::add("par.tasks_inline", own + stolen);
            }
            if stolen > 0 {
                // Only cross-queue pulls count as steals.
                sfq_obs::add("par.steals", stolen);
            }
        }
    };

    let mut parts: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
    let run = &run;
    // Capture the caller's ambient execution budget (if any) and
    // re-install it inside every worker thread, so a deadline or
    // cancel token set around a sweep reaches the transients its
    // tasks spawn. One relaxed load when guards were never used.
    let ambient_budget = sfq_guard::active();
    let ambient_budget = &ambient_budget;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (1..=spawned)
            .map(|worker| {
                scope.spawn(move || {
                    sfq_guard::scope_opt(ambient_budget.as_ref(), || {
                        let mut out = Vec::new();
                        run(worker, &mut out);
                        out
                    })
                })
            })
            .collect();
        let mut mine = Vec::with_capacity(plan.order.len() / workers + 2);
        mine.push((0, r0));
        run(0, &mut mine);
        parts.push(mine);
        for h in handles {
            match h.join() {
                Ok(part) => parts.push(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    drop(guard);
    drop(progress);
    if metrics_on {
        // The probe task ran on the caller before fan-out.
        sfq_obs::add("par.tasks", 1);
        sfq_obs::add("par.tasks_inline", 1);
    }
    if trace_on {
        sfq_obs::trace::complete(
            "par",
            &format!("par_map region ({n} items)"),
            region_t0,
            sfq_obs::trace::now_us() - region_t0,
        );
    }

    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for part in parts {
        for (i, r) in part {
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|slot| slot.unwrap_or_else(|| unreachable!("every item was scheduled exactly once")))
        .collect()
}

/// Serial completion of a region whose probe decided against fan-out.
fn finish_inline<T, R, F>(items: &[T], r0: R, f: &F, metrics_on: bool) -> Vec<R>
where
    F: Fn(&T) -> R,
{
    let mut out = Vec::with_capacity(items.len());
    out.push(r0);
    for item in &items[1..] {
        if metrics_on {
            let t0 = Instant::now();
            out.push(f(item));
            sfq_obs::observe("par.task_ms", t0.elapsed().as_secs_f64() * 1e3);
        } else {
            out.push(f(item));
        }
    }
    if metrics_on {
        sfq_obs::add("par.tasks", items.len() as u64);
        sfq_obs::add("par.tasks_inline", items.len() as u64);
    }
    out
}

/// Cut the index range `start..end` into contiguous groups aligned on
/// absolute multiples of `width` — the batch-aware chunking for
/// consumers that feed lane-batched solvers (`jjsim::BatchedTransient`
/// callers fan out over these groups, one batched group per task).
///
/// Alignment is on the *absolute* index, not the range offset:
/// `lane_groups(6, 14, 4)` yields `[6..8, 8..12, 12..14]`. Group
/// membership therefore depends only on an item's index, so a resumed
/// or differently-chunked run regroups (and batches) identically — the
/// same invariant the pool's index-keyed reassembly gives scalar maps.
///
/// `width == 0` is treated as 1 (every item its own group).
pub fn lane_groups(start: usize, end: usize, width: usize) -> Vec<std::ops::Range<usize>> {
    let width = width.max(1);
    let mut groups = Vec::new();
    let mut i = start;
    while i < end {
        let boundary = (i / width + 1) * width;
        let stop = boundary.min(end);
        groups.push(i..stop);
        i = stop;
    }
    groups
}

/// A task that panicked inside [`par_map_catch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// Index of the input item whose task panicked.
    pub index: usize,
    /// The panic message when the payload was a string, or a
    /// placeholder for non-string payloads.
    pub message: String,
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for TaskPanic {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn catch_one<T, R, F>(items: &[T], i: usize, f: &F) -> Result<R, TaskPanic>
where
    F: Fn(&T) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // Chaos harness (seed-gated, off = one relaxed load): the
        // fault-tolerant paths deliberately inject panics and stalls
        // so the recovery machinery is exercised on purpose. Forced
        // timeouts only exist on the deadline path.
        match sfq_guard::chaos::decide(i as u64, 0) {
            Some(sfq_guard::chaos::ChaosAction::Panic) => {
                sfq_guard::chaos::injected_panic(i as u64)
            }
            Some(sfq_guard::chaos::ChaosAction::Stall(d)) => std::thread::sleep(d),
            _ => {}
        }
        f(&items[i])
    }))
    .map_err(|payload| {
        sfq_obs::inc("par.task_panics");
        sfq_obs::trace::instant("par", "task panic");
        TaskPanic {
            index: i,
            message: panic_message(payload),
        }
    })
}

/// Like [`par_map`], but a panic in one task poisons only that item.
///
/// Each item runs under `catch_unwind` **individually** — chunking
/// merges tasks for scheduling, never for failure isolation, so a
/// panicking task yields `Err(TaskPanic)` in its own slot while every
/// other item of the same chunk completes normally. This is the
/// fan-out primitive for fault-injection sweeps and design-space
/// exploration, where one broken probe must not take down the whole
/// region. Determinism is inherited from [`par_map`]: results
/// (including which items panic) depend only on the inputs, never on
/// the schedule.
///
/// `f` is wrapped in `AssertUnwindSafe`: it must not leave shared
/// state logically inconsistent when it panics (the workspace's probe
/// caches guard their locks against poisoning, so they are safe).
/// Panics are still reported through the process panic hook before
/// being caught, so expect their messages on stderr unless a quiet
/// hook is installed.
pub fn par_map_catch<T, R, F>(items: &[T], f: F) -> Vec<Result<R, TaskPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let idx: Vec<usize> = (0..items.len()).collect();
    par_map(&idx, |&i| catch_one(items, i, &f))
}

/// [`par_map_catch`] with [`par_map_keyed`]'s cache-affine scheduling.
pub fn par_map_catch_keyed<T, R, F, K>(items: &[T], key: K, f: F) -> Vec<Result<R, TaskPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
    K: Fn(&T) -> u64,
{
    let idx: Vec<usize> = (0..items.len()).collect();
    par_map_keyed(&idx, |&i| key(&items[i]), |&i| catch_one(items, i, &f))
}

/// Per-item terminal state of a [`par_map_deadline`] region. Every
/// input item gets exactly one outcome — nothing is silently dropped.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskOutcome<R> {
    /// The task ran to completion.
    Completed(R),
    /// The region's deadline (or a chaos-forced timeout) hit before
    /// this task started; it was skipped, not run.
    TimedOut,
    /// The region's cancel token fired before this task started.
    Cancelled,
    /// The task panicked; siblings were unaffected.
    Panicked(TaskPanic),
}

impl<R> TaskOutcome<R> {
    /// True for [`TaskOutcome::Completed`].
    #[must_use]
    pub fn is_completed(&self) -> bool {
        matches!(self, TaskOutcome::Completed(_))
    }

    /// The completed value, consuming the outcome.
    #[must_use]
    pub fn completed(self) -> Option<R> {
        match self {
            TaskOutcome::Completed(r) => Some(r),
            _ => None,
        }
    }

    /// Static label for reports and counters.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            TaskOutcome::Completed(_) => "completed",
            TaskOutcome::TimedOut => "timed_out",
            TaskOutcome::Cancelled => "cancelled",
            TaskOutcome::Panicked(_) => "panicked",
        }
    }
}

fn deadline_one<T, R, F>(
    items: &[T],
    i: usize,
    budget: &sfq_guard::RunBudget,
    f: &F,
) -> TaskOutcome<R>
where
    F: Fn(&T) -> R,
{
    // Dispatch gate: once the deadline passes or the token fires,
    // every not-yet-started task (including chunks already queued or
    // stolen) short-circuits here, so the region stops taking on new
    // work and drains cleanly — in-flight tasks finish, skipped ones
    // get a labeled outcome instead of vanishing.
    match budget.check_now() {
        Some(sfq_guard::BudgetStop::Cancelled) => {
            sfq_obs::inc("guard.par.cancelled");
            return TaskOutcome::Cancelled;
        }
        Some(_) => {
            sfq_obs::inc("guard.par.timed_out");
            return TaskOutcome::TimedOut;
        }
        None => {}
    }
    let chaos = sfq_guard::chaos::decide(i as u64, 0);
    if chaos == Some(sfq_guard::chaos::ChaosAction::Timeout) {
        sfq_obs::inc("guard.par.timed_out");
        return TaskOutcome::TimedOut;
    }
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // The task runs under the region budget, so transients it
        // spawns observe the same deadline/cancel state.
        sfq_guard::scope(budget, || {
            match chaos {
                Some(sfq_guard::chaos::ChaosAction::Panic) => {
                    sfq_guard::chaos::injected_panic(i as u64)
                }
                Some(sfq_guard::chaos::ChaosAction::Stall(d)) => std::thread::sleep(d),
                _ => {}
            }
            f(&items[i])
        })
    }));
    match caught {
        Ok(r) => TaskOutcome::Completed(r),
        Err(payload) => {
            sfq_obs::inc("par.task_panics");
            sfq_obs::trace::instant("par", "task panic");
            TaskOutcome::Panicked(TaskPanic {
                index: i,
                message: panic_message(payload),
            })
        }
    }
}

/// [`par_map_catch`] extended with an execution budget: the region
/// stops dispatching new tasks once `budget`'s deadline passes or its
/// cancel token fires, drains cleanly (in-flight tasks complete), and
/// reports a terminal [`TaskOutcome`] for **every** item —
/// `Completed`, `TimedOut`, `Cancelled` or `Panicked`. The budget is
/// also installed as the ambient guard around each task, so solver
/// runs inside observe the same deadline.
///
/// Determinism caveat: which items time out depends on wall-clock
/// timing, inherently. With an unlimited budget (and chaos off) the
/// outcomes are deterministic and equal to [`par_map_catch`]'s.
pub fn par_map_deadline<T, R, F>(
    items: &[T],
    budget: &sfq_guard::RunBudget,
    f: F,
) -> Vec<TaskOutcome<R>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let idx: Vec<usize> = (0..items.len()).collect();
    par_map(&idx, |&i| deadline_one(items, i, budget, &f))
}

/// [`par_map_deadline`] with [`par_map_keyed`]'s cache-affine
/// scheduling.
pub fn par_map_deadline_keyed<T, R, F, K>(
    items: &[T],
    budget: &sfq_guard::RunBudget,
    key: K,
    f: F,
) -> Vec<TaskOutcome<R>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
    K: Fn(&T) -> u64,
{
    let idx: Vec<usize> = (0..items.len()).collect();
    par_map_keyed(
        &idx,
        |&i| key(&items[i]),
        |&i| deadline_one(items, i, budget, &f),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_groups_align_on_absolute_indices() {
        // Alignment depends only on the absolute index, not the range
        // offset — the invariant that makes resumed runs regroup
        // (and therefore batch) identically.
        let whole = lane_groups(0, 14, 4);
        assert_eq!(whole, vec![0..4, 4..8, 8..12, 12..14]);
        let resumed = lane_groups(6, 14, 4);
        assert_eq!(resumed, vec![6..8, 8..12, 12..14]);
        // Every group of the resumed run is a suffix of (or equal to)
        // the corresponding group of the full run.
        for g in &resumed {
            assert!(
                whole.iter().any(|w| w.start <= g.start && w.end == g.end),
                "group {g:?} is not nested in the full-run grouping"
            );
        }
        assert_eq!(lane_groups(3, 3, 4), Vec::<std::ops::Range<usize>>::new());
        assert_eq!(lane_groups(0, 3, 0), vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn matches_serial_exactly_and_handles_nesting() {
        // Single test so `set_threads` isn't raced by the parallel
        // test harness.

        // With no override and no SUPERNPU_THREADS, the pool defaults
        // to the machine's available parallelism — sweeps fan out by
        // default instead of silently running single-threaded.
        std::env::remove_var("SUPERNPU_THREADS");
        std::env::remove_var("SUPERNPU_CHUNK");
        clear_threads();
        let hw = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        assert_eq!(threads(), hw, "default must track the hardware");
        // Env var takes effect once the override is cleared.
        std::env::set_var("SUPERNPU_THREADS", "3");
        assert_eq!(threads(), 3);
        std::env::remove_var("SUPERNPU_THREADS");

        set_threads(4);
        assert_eq!(threads(), 4);

        let items: Vec<u64> = (0..257).collect();
        let f = |x: &u64| {
            // Float-heavy body: bit-identical results required.
            let mut acc = *x as f64;
            for k in 1..50 {
                acc = (acc * 1.000_1 + k as f64).sin() + acc;
            }
            acc
        };
        let serial: Vec<f64> = items.iter().map(f).collect();
        let parallel = par_map(&items, f);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.to_bits(), p.to_bits(), "bit-identical to serial");
        }

        // Pinned chunk sizes (including degenerate ones) never change
        // the result, only the schedule.
        for chunk in [1usize, 2, 3, 64, 1000] {
            set_chunk(chunk);
            let chunked = par_map(&items, f);
            for (s, p) in serial.iter().zip(&chunked) {
                assert_eq!(s.to_bits(), p.to_bits(), "chunk={chunk}");
            }
        }
        set_chunk(0);
        assert_eq!(chunk_hint(), None);
        std::env::set_var("SUPERNPU_CHUNK", "17");
        assert_eq!(chunk_hint(), Some(17));
        std::env::remove_var("SUPERNPU_CHUNK");

        // Keyed scheduling: same results for any key function.
        let keyed = par_map_keyed(&items, |x| x % 3, f);
        for (s, p) in serial.iter().zip(&keyed) {
            assert_eq!(s.to_bits(), p.to_bits(), "keyed bit-identical");
        }
        let one_key = par_map_keyed(&items, |_| 7, f);
        for (s, p) in serial.iter().zip(&one_key) {
            assert_eq!(s.to_bits(), p.to_bits(), "degenerate key");
        }

        // Nested calls degrade gracefully and stay correct.
        let outer: Vec<Vec<u64>> = par_map(&items[..16], |x| {
            let inner: Vec<u64> = (0..8).map(|k| x + k).collect();
            par_map(&inner, |y| y * 2)
        });
        for (i, row) in outer.iter().enumerate() {
            let expect: Vec<u64> = (0..8).map(|k| (items[i] + k) * 2).collect();
            assert_eq!(*row, expect);
        }

        // Serial override still produces the same values.
        set_threads(1);
        let forced_serial = par_map(&items, f);
        for (s, p) in serial.iter().zip(&forced_serial) {
            assert_eq!(s.to_bits(), p.to_bits());
        }
        set_threads(4);

        // Empty and singleton inputs.
        let empty: Vec<f64> = par_map(&[] as &[u64], f);
        assert!(empty.is_empty());
        assert_eq!(par_map(&[7u64], |x| x + 1), vec![8]);

        // A panicking task poisons only its own slot — even when the
        // chunk size forces multiple tasks into each quantum.
        set_threads(4);
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep test output quiet
        for chunk in [0usize, 1, 4, 32] {
            set_chunk(chunk);
            let caught = par_map_catch(&items[..32], |x| {
                assert!(x % 5 != 3, "injected failure at {x}");
                x * 10
            });
            assert_eq!(caught.len(), 32);
            for (i, r) in caught.iter().enumerate() {
                if i % 5 == 3 {
                    let e = r.as_ref().unwrap_err();
                    assert_eq!(e.index, i, "chunk={chunk}");
                    assert!(e.message.contains("injected failure"), "{e}");
                } else {
                    assert_eq!(*r, Ok(items[i] * 10), "chunk={chunk}");
                }
            }
        }
        set_chunk(0);
        std::panic::set_hook(hook);

        // Leave the process in the default state for any later code.
        clear_threads();
    }
}
