//! `sfq-guard` — the workspace's resilient-execution layer.
//!
//! Long sweeps die three ways: a pathological design point spins the
//! Newton loop forever, a worker panics and takes its design point
//! with it, or the whole process is killed mid-run. This crate holds
//! the shared machinery every layer uses to survive all three:
//!
//! * [`RunBudget`] / [`CancelToken`] — a wall-clock deadline plus
//!   step/Newton budgets plus a shared atomic cancel flag. The budget
//!   travels *ambiently*: [`scope`] installs it in a thread-local,
//!   [`active`] reads it back, and `sfq-par` re-installs the caller's
//!   budget inside its worker threads so a deadline set around a sweep
//!   reaches every transient the sweep spawns without threading a
//!   parameter through ten signatures.
//! * [`chaos`] — seeded, deterministic fault injection (panics,
//!   stalls, forced timeouts) for the pool's catch/deadline paths, so
//!   the recovery machinery is exercised on purpose instead of only
//!   in production.
//! * [`checkpoint`] — crash-safe atomic file persistence (temp file in
//!   the same directory → fsync → rename) generalized out of the
//!   `sfq-faults` Monte-Carlo so any sweep can be killed and resumed
//!   bit-identically.
//!
//! # Disabled fast path
//!
//! Like `sfq-obs`, the guard layer must cost nothing when unused: a
//! process that never enters a [`scope`] pays **one relaxed atomic
//! load** per query ([`enabled`] short-circuits before touching the
//! thread-local). The solver's accept loop queries once per run, not
//! per step, and polls the captured budget only when one is active.

pub mod chaos;
pub mod checkpoint;

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ------------------------------------------------------------- cancel

/// A cloneable cooperative-cancellation flag.
///
/// All clones share one atomic: cancelling any clone cancels them
/// all. Checking is a single relaxed load — cheap enough for a
/// solver accept loop.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation; every holder of a clone observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
        sfq_obs::inc("guard.cancel_requested");
    }

    /// Has cancellation been requested? One relaxed load.
    #[inline]
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.flag, &other.flag)
    }
}

// ------------------------------------------------------------- budget

/// Why a budgeted run was stopped before completing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetStop {
    /// The shared [`CancelToken`] was triggered.
    Cancelled,
    /// The wall-clock deadline passed.
    DeadlineExceeded,
    /// The step-attempt budget (accepted + rejected solver steps) ran
    /// out.
    StepBudgetExceeded,
    /// The cumulative Newton-iteration budget ran out.
    NewtonBudgetExceeded,
}

impl BudgetStop {
    /// Short static label (also the `guard.*` counter suffix).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            BudgetStop::Cancelled => "cancelled",
            BudgetStop::DeadlineExceeded => "deadline",
            BudgetStop::StepBudgetExceeded => "step_budget",
            BudgetStop::NewtonBudgetExceeded => "newton_budget",
        }
    }

    fn count(self) {
        match self {
            BudgetStop::Cancelled => sfq_obs::inc("guard.stop.cancelled"),
            BudgetStop::DeadlineExceeded => sfq_obs::inc("guard.stop.deadline"),
            BudgetStop::StepBudgetExceeded => sfq_obs::inc("guard.stop.step_budget"),
            BudgetStop::NewtonBudgetExceeded => sfq_obs::inc("guard.stop.newton_budget"),
        }
    }
}

impl std::fmt::Display for BudgetStop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetStop::Cancelled => f.write_str("run cancelled"),
            BudgetStop::DeadlineExceeded => f.write_str("wall-clock deadline exceeded"),
            BudgetStop::StepBudgetExceeded => f.write_str("step budget exceeded"),
            BudgetStop::NewtonBudgetExceeded => f.write_str("newton-iteration budget exceeded"),
        }
    }
}

/// Deadline polls are strided: the wall clock is only read every
/// `DEADLINE_STRIDE`-th poll tick, bounding `Instant::now` overhead on
/// sub-microsecond solver steps while still catching a runaway
/// reject/retry loop (the tick advances on *attempts*, not accepts).
const DEADLINE_STRIDE: u64 = 16;

/// An execution budget: wall-clock deadline, step/Newton caps and a
/// cooperative cancel flag, any subset of which may be set.
///
/// The default budget is unlimited and cancel-free; [`RunBudget::poll`]
/// on it never stops anything.
#[derive(Debug, Clone, Default)]
pub struct RunBudget {
    deadline: Option<Instant>,
    max_steps: Option<u64>,
    max_newton: Option<u64>,
    cancel: Option<CancelToken>,
}

impl RunBudget {
    /// A budget with no limits and no cancel token.
    #[must_use]
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Builder: stop after `d` of wall-clock time from now.
    #[must_use]
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(Instant::now() + d);
        self
    }

    /// Builder: stop at the absolute instant `at`.
    #[must_use]
    pub fn with_deadline_at(mut self, at: Instant) -> Self {
        self.deadline = Some(at);
        self
    }

    /// Builder: cap solver step *attempts* (accepted + rejected).
    #[must_use]
    pub fn with_max_steps(mut self, n: u64) -> Self {
        self.max_steps = Some(n);
        self
    }

    /// Builder: cap cumulative Newton iterations.
    #[must_use]
    pub fn with_max_newton(mut self, n: u64) -> Self {
        self.max_newton = Some(n);
        self
    }

    /// Builder: attach a shared cancel token.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Budget from the environment: `SUPERNPU_DEADLINE_MS` (if set and
    /// non-zero) becomes a wall-clock deadline; everything else stays
    /// unlimited.
    #[must_use]
    pub fn from_env() -> Self {
        match deadline_ms_env() {
            Some(ms) => Self::unlimited().with_deadline(Duration::from_millis(ms)),
            None => Self::unlimited(),
        }
    }

    /// True when no limit and no cancel token is set — polling can be
    /// skipped entirely.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_steps.is_none()
            && self.max_newton.is_none()
            && self.cancel.is_none()
    }

    /// The attached cancel token, if any.
    #[must_use]
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Has the cancel token been triggered? (False without a token.)
    #[inline]
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// Has the wall-clock deadline passed? Reads the clock (use
    /// [`RunBudget::poll`] on hot paths, which strides the read).
    #[must_use]
    pub fn deadline_passed(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Hot-loop check. `tick` must be monotone per call site (the
    /// solver passes accepted + rejected step attempts); `newton` is
    /// the cumulative Newton-iteration count. Returns the first
    /// exceeded limit, or `None` to keep going. Cancel and the
    /// step/Newton caps are checked every call (a relaxed load and two
    /// compares); the wall clock only every [`DEADLINE_STRIDE`] ticks.
    #[inline]
    pub fn poll(&self, tick: u64, newton: u64) -> Option<BudgetStop> {
        if self.is_cancelled() {
            return Some(self.note(BudgetStop::Cancelled));
        }
        if self.max_steps.is_some_and(|m| tick >= m) {
            return Some(self.note(BudgetStop::StepBudgetExceeded));
        }
        if self.max_newton.is_some_and(|m| newton >= m) {
            return Some(self.note(BudgetStop::NewtonBudgetExceeded));
        }
        if self.deadline.is_some() && tick.is_multiple_of(DEADLINE_STRIDE) && self.deadline_passed()
        {
            return Some(self.note(BudgetStop::DeadlineExceeded));
        }
        None
    }

    /// Non-strided variant for cold call sites (task dispatch, sweep
    /// chunk boundaries): checks cancel and deadline immediately.
    #[must_use]
    pub fn check_now(&self) -> Option<BudgetStop> {
        if self.is_cancelled() {
            return Some(self.note(BudgetStop::Cancelled));
        }
        if self.deadline_passed() {
            return Some(self.note(BudgetStop::DeadlineExceeded));
        }
        None
    }

    #[cold]
    fn note(&self, stop: BudgetStop) -> BudgetStop {
        stop.count();
        stop
    }
}

// ---------------------------------------------------- ambient budgets

/// 0 = no scope was ever entered anywhere in the process (fast path:
/// every ambient query returns "nothing" after one relaxed load);
/// 1 = scopes have been used, consult the thread-local.
static GUARD_USED: AtomicU8 = AtomicU8::new(0);

thread_local! {
    static AMBIENT: RefCell<Ambient> = const { RefCell::new(Ambient { budgets: Vec::new(), relax: 0 }) };
}

struct Ambient {
    budgets: Vec<RunBudget>,
    relax: u32,
}

/// Has any guard scope ever been entered in this process? One relaxed
/// load; `false` means [`active`] and [`relax_level`] are no-ops.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    GUARD_USED.load(Ordering::Relaxed) != 0
}

/// The innermost ambient [`RunBudget`] installed by [`scope`] on this
/// thread (cloned), or `None`. Costs one relaxed load when no scope
/// was ever used.
#[inline]
#[must_use]
pub fn active() -> Option<RunBudget> {
    if !enabled() {
        return None;
    }
    AMBIENT.with(|a| a.borrow().budgets.last().cloned())
}

/// The ambient solver-relaxation level (0 = nominal options). Raised
/// by [`with_relax`] around retry attempts so the solver loosens its
/// adaptive bounds without an options parameter threaded through every
/// characterization call.
#[inline]
#[must_use]
pub fn relax_level() -> u32 {
    if !enabled() {
        return 0;
    }
    AMBIENT.with(|a| a.borrow().relax)
}

struct ScopeGuard;

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        AMBIENT.with(|a| {
            a.borrow_mut().budgets.pop();
        });
    }
}

struct RelaxGuard {
    prev: u32,
}

impl Drop for RelaxGuard {
    fn drop(&mut self) {
        AMBIENT.with(|a| a.borrow_mut().relax = self.prev);
    }
}

/// Run `f` with `budget` installed as the ambient budget on this
/// thread. Nested scopes shadow outer ones; the previous budget is
/// restored on exit (including on panic).
pub fn scope<R>(budget: &RunBudget, f: impl FnOnce() -> R) -> R {
    GUARD_USED.store(1, Ordering::Relaxed);
    AMBIENT.with(|a| a.borrow_mut().budgets.push(budget.clone()));
    let _g = ScopeGuard;
    f()
}

/// [`scope`] when the budget is optional: `None` runs `f` directly.
/// Used by the pool to re-install a captured caller budget inside
/// worker threads.
pub fn scope_opt<R>(budget: Option<&RunBudget>, f: impl FnOnce() -> R) -> R {
    match budget {
        Some(b) => scope(b, f),
        None => f(),
    }
}

/// Run `f` with the ambient solver-relaxation level set to `level`
/// (restored on exit, including on panic). Level `k` asks the solver
/// to tighten `dt_min` and loosen `lte_tol` by `4^k` — the retry
/// ladder's "try again, but make convergence easier" knob.
pub fn with_relax<R>(level: u32, f: impl FnOnce() -> R) -> R {
    GUARD_USED.store(1, Ordering::Relaxed);
    let prev = AMBIENT.with(|a| {
        let mut a = a.borrow_mut();
        let prev = a.relax;
        a.relax = level;
        prev
    });
    let _g = RelaxGuard { prev };
    f()
}

// ------------------------------------------------------ retry/backoff

/// Default retry count when `SUPERNPU_RETRIES` is unset.
pub const DEFAULT_RETRIES: u32 = 2;

/// Base delay of the exponential backoff ladder.
const BACKOFF_BASE: Duration = Duration::from_millis(5);
/// Backoff cap — retries are for transient contention, not long waits.
const BACKOFF_CAP: Duration = Duration::from_millis(80);

/// `SUPERNPU_DEADLINE_MS` as a deadline in milliseconds; unset,
/// unparsable or `0` mean "no deadline".
#[must_use]
pub fn deadline_ms_env() -> Option<u64> {
    std::env::var("SUPERNPU_DEADLINE_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&ms| ms > 0)
}

/// `SUPERNPU_RETRIES` (how often a failed/timed-out point is retried
/// before degrading), defaulting to [`DEFAULT_RETRIES`].
#[must_use]
pub fn retries_env() -> u32 {
    std::env::var("SUPERNPU_RETRIES")
        .ok()
        .and_then(|v| v.trim().parse::<u32>().ok())
        .unwrap_or(DEFAULT_RETRIES)
}

/// Exponential backoff delay before retry `attempt` (1-based):
/// `5ms · 2^(attempt-1)`, capped at 80ms.
#[must_use]
pub fn backoff(attempt: u32) -> Duration {
    let factor = 1u32 << attempt.saturating_sub(1).min(10);
    BACKOFF_BASE.saturating_mul(factor).min(BACKOFF_CAP)
}

/// Sleep the backoff delay for retry `attempt` and count it.
pub fn sleep_backoff(attempt: u32) {
    sfq_obs::inc("guard.retry");
    std::thread::sleep(backoff(attempt));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!u.is_cancelled());
        t.cancel();
        assert!(u.is_cancelled());
        assert_eq!(t, u);
        assert_ne!(t, CancelToken::new());
    }

    #[test]
    fn unlimited_budget_never_stops() {
        let b = RunBudget::unlimited();
        assert!(b.is_unlimited());
        for tick in 0..1000 {
            assert_eq!(b.poll(tick, tick * 7), None);
        }
        assert_eq!(b.check_now(), None);
    }

    #[test]
    fn step_and_newton_budgets_trip() {
        let b = RunBudget::unlimited().with_max_steps(10);
        assert_eq!(b.poll(9, 0), None);
        assert_eq!(b.poll(10, 0), Some(BudgetStop::StepBudgetExceeded));
        let b = RunBudget::unlimited().with_max_newton(5);
        assert_eq!(b.poll(3, 4), None);
        assert_eq!(b.poll(3, 5), Some(BudgetStop::NewtonBudgetExceeded));
    }

    #[test]
    fn expired_deadline_trips_on_stride_tick() {
        let b = RunBudget::unlimited().with_deadline(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        // Tick 0 is on the stride, so the very first poll sees it.
        assert_eq!(b.poll(0, 0), Some(BudgetStop::DeadlineExceeded));
        // Off-stride ticks skip the clock read.
        assert_eq!(b.poll(1, 0), None);
        assert_eq!(
            b.poll(DEADLINE_STRIDE, 0),
            Some(BudgetStop::DeadlineExceeded)
        );
        assert_eq!(b.check_now(), Some(BudgetStop::DeadlineExceeded));
    }

    #[test]
    fn cancel_beats_other_limits() {
        let tok = CancelToken::new();
        let b = RunBudget::unlimited()
            .with_max_steps(0)
            .with_cancel(tok.clone());
        assert_eq!(b.poll(5, 0), Some(BudgetStop::StepBudgetExceeded));
        tok.cancel();
        assert_eq!(b.poll(5, 0), Some(BudgetStop::Cancelled));
        assert_eq!(b.check_now(), Some(BudgetStop::Cancelled));
    }

    #[test]
    fn scope_installs_and_restores_ambient_budget() {
        let outer = RunBudget::unlimited().with_max_steps(7);
        let seen = scope(&outer, || {
            let inner = RunBudget::unlimited().with_max_steps(3);
            let nested = scope(&inner, || active().and_then(|b| b.max_steps));
            (active().and_then(|b| b.max_steps), nested)
        });
        assert_eq!(seen, (Some(7), Some(3)));
        assert_eq!(active().and_then(|b| b.max_steps), None);
    }

    #[test]
    fn scope_restores_on_panic() {
        let b = RunBudget::unlimited().with_max_steps(1);
        let r = std::panic::catch_unwind(|| scope(&b, || panic!("boom")));
        assert!(r.is_err());
        assert!(active().is_none());
    }

    #[test]
    fn relax_level_nests_and_restores() {
        assert_eq!(relax_level(), 0);
        let inner = with_relax(1, || {
            let nested = with_relax(2, relax_level);
            (relax_level(), nested)
        });
        assert_eq!(inner, (1, 2));
        assert_eq!(relax_level(), 0);
    }

    #[test]
    fn backoff_ladder_is_exponential_and_capped() {
        assert_eq!(backoff(1), Duration::from_millis(5));
        assert_eq!(backoff(2), Duration::from_millis(10));
        assert_eq!(backoff(3), Duration::from_millis(20));
        assert_eq!(backoff(30), Duration::from_millis(80));
    }

    #[test]
    fn budget_stop_labels_and_display() {
        for s in [
            BudgetStop::Cancelled,
            BudgetStop::DeadlineExceeded,
            BudgetStop::StepBudgetExceeded,
            BudgetStop::NewtonBudgetExceeded,
        ] {
            assert!(!s.label().is_empty());
            assert!(!s.to_string().is_empty());
        }
    }
}
