//! Seeded chaos injection for the worker pool.
//!
//! When enabled (`SUPERNPU_CHAOS=<seed>` or [`set_chaos`]), the
//! pool's *fault-tolerant* execution paths (`par_map_catch`,
//! `par_map_deadline` and the resilient sweep runner's retry loop)
//! consult [`decide`] before running a task and deterministically
//! inject one of three faults: a panic, a short stall, or a forced
//! timeout. The decision is a pure hash of `(seed, task, attempt)`,
//! so a chaos run is reproducible and a retry of the same task sees
//! an *independent* draw — exactly like a real transient fault.
//!
//! Plain `par_map` is untouched: its contract is that tasks do not
//! fail, and injecting faults there would crash the caller rather
//! than exercise recovery.
//!
//! Disabled cost: one relaxed atomic load per query, the same
//! fast-path discipline as `sfq-obs`.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::Duration;

/// What the chaos harness injects into a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Panic inside the task (exercises panic containment).
    Panic,
    /// Sleep briefly before running the task (exercises deadlines
    /// and drain behaviour without failing the task).
    Stall(Duration),
    /// Report the task as timed out without running it (exercises
    /// the retry/degrade ladder).
    Timeout,
}

/// 0 = unread (resolve from env on first use), 1 = off, 2 = on.
static CHAOS_STATE: AtomicU8 = AtomicU8::new(0);
static CHAOS_SEED: AtomicU64 = AtomicU64::new(0);

/// Is chaos injection on? One relaxed load once resolved.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    match CHAOS_STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_chaos_state(),
    }
}

#[cold]
fn init_chaos_state() -> bool {
    let seed = std::env::var("SUPERNPU_CHAOS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&s| s != 0);
    match seed {
        Some(s) => {
            CHAOS_SEED.store(s, Ordering::Relaxed);
            CHAOS_STATE.store(2, Ordering::Relaxed);
            true
        }
        None => {
            CHAOS_STATE.store(1, Ordering::Relaxed);
            false
        }
    }
}

/// Programmatically enable (`Some(seed)`, seed != 0) or disable
/// (`None`) chaos injection, overriding the environment.
pub fn set_chaos(seed: Option<u64>) {
    match seed.filter(|&s| s != 0) {
        Some(s) => {
            CHAOS_SEED.store(s, Ordering::Relaxed);
            CHAOS_STATE.store(2, Ordering::Relaxed);
        }
        None => CHAOS_STATE.store(1, Ordering::Relaxed),
    }
}

/// The active chaos seed (0 when disabled).
#[must_use]
pub fn seed() -> u64 {
    if enabled() {
        CHAOS_SEED.load(Ordering::Relaxed)
    } else {
        0
    }
}

/// SplitMix64 finalizer — the same mixer the faults crate uses for
/// its substreams, good enough to decorrelate (task, attempt) pairs.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Out of every 16 draws: one panic, one forced timeout, one stall.
const INJECT_MOD: u64 = 16;
const STALL_MS: u64 = 2;

/// Deterministic injection decision for `(task, attempt)` under the
/// active seed. `None` (the common case, and always when disabled)
/// means "run the task normally". Each injection is counted under
/// `guard.chaos.*`.
#[must_use]
pub fn decide(task: u64, attempt: u32) -> Option<ChaosAction> {
    if !enabled() {
        return None;
    }
    decide_seeded(CHAOS_SEED.load(Ordering::Relaxed), task, attempt).inspect(|a| match a {
        ChaosAction::Panic => sfq_obs::inc("guard.chaos.panic"),
        ChaosAction::Stall(_) => sfq_obs::inc("guard.chaos.stall"),
        ChaosAction::Timeout => sfq_obs::inc("guard.chaos.timeout"),
    })
}

/// The pure decision function (no gating, no counters) — exposed so
/// tests and the bench can predict a chaos run.
#[must_use]
pub fn decide_seeded(seed: u64, task: u64, attempt: u32) -> Option<ChaosAction> {
    let h = mix(seed ^ mix(task) ^ (u64::from(attempt) << 48));
    match h % INJECT_MOD {
        0 => Some(ChaosAction::Panic),
        1 => Some(ChaosAction::Timeout),
        2 => Some(ChaosAction::Stall(Duration::from_millis(STALL_MS))),
        _ => None,
    }
}

/// Panic with a recognisable message — the injection point calls this
/// so chaos panics are distinguishable from real ones in reports.
pub fn injected_panic(task: u64) -> ! {
    panic!("chaos: injected panic in task {task}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decide_is_deterministic_and_attempt_independent() {
        for task in 0..64u64 {
            assert_eq!(decide_seeded(42, task, 0), decide_seeded(42, task, 0));
        }
        // Different attempts are independent draws: over many tasks,
        // at least one decision must differ between attempt 0 and 1.
        let differs = (0..256u64).any(|t| decide_seeded(42, t, 0) != decide_seeded(42, t, 1));
        assert!(differs);
    }

    #[test]
    fn injection_rate_is_roughly_three_sixteenths() {
        let n = 4096u64;
        let injected = (0..n).filter(|&t| decide_seeded(7, t, 0).is_some()).count();
        let expect = (n as usize) * 3 / 16;
        assert!(
            injected > expect / 2 && injected < expect * 2,
            "rate off: {injected} vs ~{expect}"
        );
    }

    #[test]
    fn set_chaos_overrides_env() {
        set_chaos(Some(99));
        assert!(enabled());
        assert_eq!(seed(), 99);
        assert!((0..1024u64).any(|t| decide(t, 0).is_some()));
        set_chaos(None);
        assert!(!enabled());
        assert_eq!(decide(0, 0), None);
        assert_eq!(seed(), 0);
    }
}
