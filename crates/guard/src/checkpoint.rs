//! Crash-safe checkpoint persistence.
//!
//! A checkpoint a resume depends on must never be half-written: a
//! kill between `open` and the last `write` of a plain
//! `std::fs::write` leaves a torn file that poisons the *next* run.
//! [`atomic_write`] closes that window the standard way — write the
//! full payload to a temporary file **in the same directory** (rename
//! is only atomic within a filesystem), fsync it, then rename over
//! the destination. A crash before the rename leaves the old
//! checkpoint intact; a crash after leaves the new one; no
//! interleaving exists in which a reader sees a mix.
//!
//! Generalized out of the `sfq-faults` Monte-Carlo (PR 4) so every
//! sweep in the workspace shares one audited implementation.

use std::io::Write;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

/// A checkpoint read or write failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem-level failure (create, write, fsync, rename).
    Io {
        /// The checkpoint path involved.
        path: String,
        /// The underlying error, stringified.
        message: String,
    },
    /// The file exists but does not parse as the expected payload.
    Corrupt {
        /// The checkpoint path involved.
        path: String,
        /// The parse error, stringified.
        message: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io { path, message } => {
                write!(f, "checkpoint i/o error at {path}: {message}")
            }
            CheckpointError::Corrupt { path, message } => {
                write!(f, "corrupt checkpoint at {path}: {message}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

fn io_err(path: &Path, e: &std::io::Error) -> CheckpointError {
    CheckpointError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

/// The temporary sibling `atomic_write` stages into: `<path>.tmp`.
/// Exposed so torn-write tests (and cleanup) can name it.
#[must_use]
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map_or_else(
        || std::ffi::OsString::from("checkpoint"),
        std::ffi::OsStr::to_os_string,
    );
    name.push(".tmp");
    path.with_file_name(name)
}

/// Atomically replace `path` with `bytes`: temp file in the same
/// directory → write → fsync → rename. Creates missing parent
/// directories. After a successful return the new content is durable
/// and no temp file remains; on any failure the previous checkpoint
/// (if any) is untouched.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).map_err(|e| io_err(path, &e))?;
    }
    let tmp = tmp_path(path);
    let mut f = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, &e))?;
    f.write_all(bytes).map_err(|e| io_err(&tmp, &e))?;
    f.sync_all().map_err(|e| io_err(&tmp, &e))?;
    drop(f);
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, &e))?;
    // Make the rename itself durable; best-effort (some filesystems
    // reject directory fsync, and the data is already safe either
    // way — old or new, never torn).
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    sfq_obs::inc("guard.checkpoint.write");
    Ok(())
}

/// [`atomic_write`] of a pretty-printed JSON payload.
pub fn atomic_write_json<T: Serialize>(path: &Path, value: &T) -> Result<(), CheckpointError> {
    let text = serde_json::to_string_pretty(value).map_err(|e| CheckpointError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    atomic_write(path, text.as_bytes())
}

/// Load a JSON checkpoint. `Ok(None)` when the file does not exist (a
/// cold start, not an error); [`CheckpointError::Corrupt`] when it
/// exists but does not parse. A stale `.tmp` sibling from a crashed
/// writer is ignored — the rename never happened, so the destination
/// is still the last complete checkpoint.
pub fn load_json<T: Deserialize>(path: &Path) -> Result<Option<T>, CheckpointError> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err(path, &e)),
    };
    let value = serde_json::from_str(&text).map_err(|e| CheckpointError::Corrupt {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    sfq_obs::inc("guard.checkpoint.resume");
    Ok(Some(value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Payload {
        name: String,
        values: Vec<u64>,
    }

    fn tempdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("sfq_guard_ckpt_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn roundtrip_and_missing_file() {
        let dir = tempdir("rt");
        let path = dir.join("ckpt.json");
        assert_eq!(load_json::<Payload>(&path).unwrap(), None);
        let p = Payload {
            name: "fig20".into(),
            values: vec![1, 2, 3],
        };
        atomic_write_json(&path, &p).unwrap();
        assert_eq!(load_json::<Payload>(&path).unwrap(), Some(p));
        assert!(!tmp_path(&path).exists(), "no staging residue");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_tmp_from_crashed_writer_is_ignored_and_replaced() {
        let dir = tempdir("torn");
        let path = dir.join("ckpt.json");
        let old = Payload {
            name: "old".into(),
            values: vec![7],
        };
        atomic_write_json(&path, &old).unwrap();
        // Simulate a crash mid-write: a torn temp file next to a
        // complete checkpoint.
        std::fs::write(tmp_path(&path), b"{\"name\": \"to").unwrap();
        // The destination is still the last complete checkpoint.
        assert_eq!(load_json::<Payload>(&path).unwrap(), Some(old));
        // A new write goes through cleanly and clears the residue.
        let new = Payload {
            name: "new".into(),
            values: vec![8, 9],
        };
        atomic_write_json(&path, &new).unwrap();
        assert_eq!(load_json::<Payload>(&path).unwrap(), Some(new));
        assert!(!tmp_path(&path).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoint_is_a_typed_error() {
        let dir = tempdir("bad");
        let path = dir.join("ckpt.json");
        std::fs::write(&path, b"not json at all").unwrap();
        match load_json::<Payload>(&path) {
            Err(CheckpointError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn creates_missing_parent_directories() {
        let dir = tempdir("mkdirs");
        let path = dir.join("a/b/ckpt.json");
        atomic_write(&path, b"{}").unwrap();
        assert!(path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
