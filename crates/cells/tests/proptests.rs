//! Property-based tests of the cell library and scaling rules.

use proptest::prelude::*;
use sfq_cells::{scaling, BiasScheme, CellLibrary, GateKind, GateParams};

proptest! {
    /// Any positive-finite gate parameters validate; any negative or
    /// non-finite field is rejected.
    #[test]
    fn gate_validation_total(
        delay in 0.0f64..100.0,
        setup in 0.0f64..50.0,
        hold in 0.0f64..50.0,
        stat in 0.0f64..100.0,
        energy in 0.0f64..100.0,
        jj in 1u32..100,
    ) {
        let g = GateParams {
            delay_ps: delay,
            setup_ps: setup,
            hold_ps: hold,
            static_uw: stat,
            energy_aj: energy,
            jj_count: jj,
        };
        prop_assert!(g.validate(GateKind::And).is_ok());
        let bad = GateParams { delay_ps: -delay - 1.0, ..g };
        prop_assert!(bad.validate(GateKind::And).is_err());
        let nan = GateParams { energy_aj: f64::NAN, ..g };
        prop_assert!(nan.validate(GateKind::And).is_err());
    }

    /// Area scaling is multiplicative and inverts cleanly.
    #[test]
    fn area_scaling_inverts(from in 0.05f64..2.0, to in 0.05f64..2.0, area in 0.1f64..1e6) {
        let there = scaling::scale_area_mm2(area, from, to);
        let back = scaling::scale_area_mm2(there, to, from);
        prop_assert!((back - area).abs() / area < 1e-9);
    }

    /// Frequency scaling is monotone in the target node and never
    /// exceeds the 200 nm-floor limit.
    #[test]
    fn frequency_scaling_monotone(to in 0.02f64..1.0) {
        let factor = scaling::frequency_factor(1.0, to);
        prop_assert!(factor >= 1.0 - 1e-12);
        prop_assert!(factor <= 1.0 / scaling::FREQ_SCALING_FLOOR_UM + 1e-9);
        let finer = scaling::frequency_factor(1.0, to * 0.9);
        prop_assert!(finer >= factor - 1e-12);
    }

    /// The RSFQ → ERSFQ → RSFQ round trip is exact for every gate.
    #[test]
    fn bias_roundtrip_exact(_seed in 0u8..1) {
        let rsfq = CellLibrary::aist_10um();
        let back = rsfq.with_bias(BiasScheme::Ersfq).with_bias(BiasScheme::Rsfq);
        for (k, g) in back.iter() {
            let orig = rsfq.gate(k);
            prop_assert!((g.energy_aj - orig.energy_aj).abs() < 1e-12);
            prop_assert!((g.static_uw - orig.static_uw).abs() < 1e-12);
        }
    }
}
