//! The characterized cell library.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::device::{BiasScheme, DeviceParams};
use crate::error::CellError;
use crate::gate::{GateKind, GateParams};

/// A complete characterized SFQ cell library for one process and bias
/// scheme.
///
/// Obtain the paper's library with [`CellLibrary::aist_10um`], derive
/// the ERSFQ variant with [`CellLibrary::with_bias`], or load a custom
/// characterization from JSON with [`CellLibrary::from_json`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellLibrary {
    device: DeviceParams,
    gates: BTreeMap<GateKind, GateParams>,
}

impl CellLibrary {
    /// Build a library from explicit parts.
    ///
    /// # Errors
    ///
    /// Fails if the device parameters are unphysical, a gate entry is
    /// invalid, or any [`GateKind`] is missing.
    pub fn new(
        device: DeviceParams,
        gates: BTreeMap<GateKind, GateParams>,
    ) -> Result<Self, CellError> {
        device.validate()?;
        for kind in GateKind::ALL {
            match gates.get(&kind) {
                None => return Err(CellError::MissingGate(kind)),
                Some(g) => g.validate(kind)?,
            }
        }
        Ok(CellLibrary { device, gates })
    }

    /// The RSFQ cell library for the AIST 1.0 µm process.
    ///
    /// The AND and XOR rows reproduce the example values printed in the
    /// paper's Fig. 10 (AND: 8.3 ps / 3.6 µW / 1.4 aJ, XOR: 6.5 ps /
    /// 3.0 µW / 1.4 aJ); the remaining cells carry values of the same
    /// class, chosen so that the microarchitecture-level frequencies
    /// reproduce the paper's Fig. 7(c) and Table I outputs (133 GHz
    /// skewed DFF chain, 52.6 GHz NPU).
    pub fn aist_10um() -> Self {
        let mut gates = BTreeMap::new();
        let g = |delay, setup, hold, static_uw, energy, jj| GateParams {
            delay_ps: delay,
            setup_ps: setup,
            hold_ps: hold,
            static_uw,
            energy_aj: energy,
            jj_count: jj,
        };
        gates.insert(GateKind::Jtl, g(3.3, 0.0, 0.0, 0.9, 0.7, 2));
        gates.insert(GateKind::Splitter, g(4.0, 0.0, 0.0, 1.4, 1.0, 3));
        gates.insert(GateKind::Merger, g(5.0, 0.0, 0.0, 2.1, 1.2, 5));
        gates.insert(GateKind::Dff, g(5.0, 3.2, 4.3, 1.8, 0.8, 6));
        gates.insert(GateKind::DffBypass, g(5.5, 3.5, 4.5, 3.1, 1.0, 9));
        gates.insert(GateKind::And, g(8.3, 4.0, 4.5, 3.6, 1.4, 11));
        gates.insert(GateKind::Or, g(7.0, 3.6, 4.2, 3.2, 1.3, 9));
        gates.insert(GateKind::Xor, g(6.5, 3.4, 4.0, 3.0, 1.4, 8));
        gates.insert(GateKind::Not, g(9.0, 4.2, 4.8, 3.4, 1.5, 10));
        gates.insert(GateKind::Ndro, g(6.0, 3.8, 4.4, 2.8, 1.2, 11));
        gates.insert(GateKind::Tff, g(4.5, 0.0, 0.0, 2.0, 1.0, 6));
        gates.insert(GateKind::PtlDriver, g(2.5, 0.0, 0.0, 1.2, 0.9, 3));
        gates.insert(GateKind::PtlReceiver, g(2.5, 0.0, 0.0, 1.2, 0.9, 3));
        CellLibrary {
            device: DeviceParams::aist_10um(),
            gates,
        }
    }

    /// Derive a library under a different bias scheme.
    ///
    /// RSFQ → ERSFQ keeps timing and area, zeroes static power and
    /// doubles switching energy (the paper's §IV-A.1 transformation).
    /// Converting back is *not* supported (the RSFQ values are the
    /// characterized ground truth); calling with the current scheme
    /// returns a clone.
    pub fn with_bias(&self, bias: BiasScheme) -> Self {
        if bias == self.device.bias {
            return self.clone();
        }
        let base = match self.device.bias {
            // We only store characterized RSFQ numbers; re-derive from them.
            BiasScheme::Rsfq => self.clone(),
            BiasScheme::Ersfq => {
                // Undo the ERSFQ transform to recover RSFQ-equivalent values.
                let mut undone = self.clone();
                for g in undone.gates.values_mut() {
                    g.energy_aj /= BiasScheme::Ersfq.energy_factor();
                }
                undone.device.bias = BiasScheme::Rsfq;
                undone
            }
        };
        let mut out = base;
        out.device.bias = bias;
        if bias == BiasScheme::Ersfq {
            for g in out.gates.values_mut() {
                g.static_uw = 0.0;
                g.energy_aj *= BiasScheme::Ersfq.energy_factor();
            }
        } else {
            // Recover RSFQ static power from the per-JJ bias point.
            let aist = CellLibrary::aist_10um();
            for (k, g) in out.gates.iter_mut() {
                g.static_uw = aist.gates[k].static_uw;
            }
        }
        out
    }

    /// Parameters of one gate.
    ///
    /// # Panics
    ///
    /// Never panics: construction guarantees every kind is present.
    pub fn gate(&self, kind: GateKind) -> GateParams {
        self.gates[&kind]
    }

    /// The process/device parameters behind this library.
    pub fn device(&self) -> &DeviceParams {
        &self.device
    }

    /// Bias scheme of this library.
    pub fn bias(&self) -> BiasScheme {
        self.device.bias
    }

    /// Area of one instance of `kind` in µm².
    pub fn gate_area_um2(&self, kind: GateKind) -> f64 {
        self.gate(kind).area_um2(self.device.area_per_jj_um2)
    }

    /// Iterate over `(kind, params)` entries in a stable order.
    pub fn iter(&self) -> impl Iterator<Item = (GateKind, &GateParams)> {
        self.gates.iter().map(|(k, v)| (*k, v))
    }

    /// Serialize the library to pretty JSON (for archiving a
    /// characterization alongside results).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self)
            .unwrap_or_else(|e| unreachable!("library serialization cannot fail: {e}"))
    }

    /// Load a library from JSON, re-validating every entry.
    ///
    /// # Errors
    ///
    /// Returns a boxed error if the JSON is malformed or the validated
    /// construction fails.
    pub fn from_json(json: &str) -> Result<Self, Box<dyn std::error::Error>> {
        let raw: CellLibrary = serde_json::from_str(json)?;
        Ok(CellLibrary::new(raw.device, raw.gates)?)
    }
}

impl Default for CellLibrary {
    fn default() -> Self {
        Self::aist_10um()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_printed_values_present() {
        let lib = CellLibrary::aist_10um();
        let and = lib.gate(GateKind::And);
        assert_eq!(and.delay_ps, 8.3);
        assert_eq!(and.static_uw, 3.6);
        assert_eq!(and.energy_aj, 1.4);
        let xor = lib.gate(GateKind::Xor);
        assert_eq!(xor.delay_ps, 6.5);
        assert_eq!(xor.static_uw, 3.0);
        assert_eq!(xor.energy_aj, 1.4);
    }

    #[test]
    fn ersfq_transform_roundtrips() {
        let rsfq = CellLibrary::aist_10um();
        let ersfq = rsfq.with_bias(BiasScheme::Ersfq);
        assert_eq!(ersfq.bias(), BiasScheme::Ersfq);
        for (k, g) in ersfq.iter() {
            assert_eq!(g.static_uw, 0.0, "{k:?} static must vanish");
            assert_eq!(g.energy_aj, 2.0 * rsfq.gate(k).energy_aj);
            assert_eq!(g.delay_ps, rsfq.gate(k).delay_ps, "{k:?} timing unchanged");
            assert_eq!(g.jj_count, rsfq.gate(k).jj_count, "{k:?} area unchanged");
        }
        let back = ersfq.with_bias(BiasScheme::Rsfq);
        for (k, g) in back.iter() {
            assert_eq!(g.energy_aj, rsfq.gate(k).energy_aj, "{k:?}");
            assert_eq!(g.static_uw, rsfq.gate(k).static_uw, "{k:?}");
        }
    }

    #[test]
    fn with_same_bias_is_identity() {
        let lib = CellLibrary::aist_10um();
        assert_eq!(lib.with_bias(BiasScheme::Rsfq), lib);
    }

    #[test]
    fn json_roundtrip() {
        let lib = CellLibrary::aist_10um();
        let json = lib.to_json();
        let back = CellLibrary::from_json(&json).unwrap();
        assert_eq!(lib, back);
    }

    #[test]
    fn new_rejects_missing_gate() {
        let lib = CellLibrary::aist_10um();
        let mut gates: BTreeMap<_, _> = lib.iter().map(|(k, g)| (k, *g)).collect();
        gates.remove(&GateKind::Ndro);
        let err = CellLibrary::new(DeviceParams::aist_10um(), gates).unwrap_err();
        assert_eq!(err, CellError::MissingGate(GateKind::Ndro));
    }

    #[test]
    fn wire_cells_have_no_setup_hold() {
        let lib = CellLibrary::aist_10um();
        for (k, g) in lib.iter() {
            if k.class() == crate::gate::GateClass::Wire {
                assert_eq!(g.setup_ps, 0.0, "{k:?}");
                assert_eq!(g.hold_ps, 0.0, "{k:?}");
            } else {
                assert!(g.setup_ps > 0.0, "{k:?}");
                assert!(g.hold_ps > 0.0, "{k:?}");
            }
        }
    }

    #[test]
    fn gate_area_uses_device_density() {
        let lib = CellLibrary::aist_10um();
        let dff = lib.gate(GateKind::Dff);
        assert_eq!(
            lib.gate_area_um2(GateKind::Dff),
            f64::from(dff.jj_count) * lib.device().area_per_jj_um2
        );
    }
}
