//! Device-level parameters of the fabrication process.

use serde::{Deserialize, Serialize};

use crate::error::CellError;

/// How the DC bias current is delivered to every Josephson junction.
///
/// This is the only difference between the two technologies modeled by
/// the paper: RSFQ biases through resistors (constant static
/// dissipation per junction), ERSFQ biases through junctions with
/// inductors (zero static power but roughly twice the switching energy
/// because the bias JJs also switch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum BiasScheme {
    /// Rapid single-flux-quantum: resistor biasing, static power ∝ JJ count.
    #[default]
    Rsfq,
    /// Energy-efficient RSFQ: JJ/inductor biasing, zero static power,
    /// ~2× dynamic energy per switching.
    Ersfq,
}

impl BiasScheme {
    /// Multiplier applied to the RSFQ switching energy under this scheme.
    pub fn energy_factor(self) -> f64 {
        match self {
            BiasScheme::Rsfq => 1.0,
            BiasScheme::Ersfq => 2.0,
        }
    }

    /// Multiplier applied to the RSFQ static power under this scheme.
    pub fn static_factor(self) -> f64 {
        match self {
            BiasScheme::Rsfq => 1.0,
            BiasScheme::Ersfq => 0.0,
        }
    }
}

impl std::fmt::Display for BiasScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BiasScheme::Rsfq => f.write_str("RSFQ"),
            BiasScheme::Ersfq => f.write_str("ERSFQ"),
        }
    }
}

/// Fabrication-process and junction parameters.
///
/// Defaults correspond to the AIST 1.0 µm Nb 9-layer process the paper
/// characterizes (bias voltage 2.5 mV, critical current 70 µA per
/// junction, 4 K operation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceParams {
    /// Human-readable process name.
    pub process: String,
    /// Lithographic feature size in micrometers.
    pub feature_um: f64,
    /// DC bias voltage in millivolts (RSFQ resistor biasing).
    pub bias_mv: f64,
    /// Junction critical current in microamperes.
    pub critical_current_ua: f64,
    /// Effective chip area per Josephson junction, in µm², including
    /// the share of wiring/moats. Drives the area model.
    pub area_per_jj_um2: f64,
    /// Operating temperature in kelvin.
    pub temperature_k: f64,
    /// Bias scheme (RSFQ / ERSFQ).
    pub bias: BiasScheme,
}

impl DeviceParams {
    /// The AIST 1.0 µm Nb process used throughout the paper.
    pub fn aist_10um() -> Self {
        DeviceParams {
            process: "AIST 1.0um Nb 9-layer".to_owned(),
            feature_um: 1.0,
            bias_mv: 2.5,
            critical_current_ua: 70.0,
            area_per_jj_um2: 100.0,
            temperature_k: 4.2,
            bias: BiasScheme::Rsfq,
        }
    }

    /// Static power of a single resistor-biased junction in microwatts
    /// (`V_bias × I_c`); zero under ERSFQ.
    pub fn static_per_jj_uw(&self) -> f64 {
        self.bias.static_factor() * self.bias_mv * 1e-3 * self.critical_current_ua
    }

    /// Validate physical sanity of the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CellError::InvalidDevice`] if any parameter is
    /// non-positive or non-finite.
    pub fn validate(&self) -> Result<(), CellError> {
        let fields = [
            ("feature_um", self.feature_um),
            ("bias_mv", self.bias_mv),
            ("critical_current_ua", self.critical_current_ua),
            ("area_per_jj_um2", self.area_per_jj_um2),
            ("temperature_k", self.temperature_k),
        ];
        for (name, v) in fields {
            if !v.is_finite() || v <= 0.0 {
                return Err(CellError::InvalidDevice {
                    field: name,
                    value: v,
                });
            }
        }
        Ok(())
    }
}

impl Default for DeviceParams {
    fn default() -> Self {
        Self::aist_10um()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rsfq_static_per_jj_matches_bias_point() {
        let d = DeviceParams::aist_10um();
        // 2.5 mV × 70 µA = 0.175 µW per junction.
        assert!((d.static_per_jj_uw() - 0.175).abs() < 1e-12);
    }

    #[test]
    fn ersfq_has_zero_static_and_double_energy() {
        let mut d = DeviceParams::aist_10um();
        d.bias = BiasScheme::Ersfq;
        assert_eq!(d.static_per_jj_uw(), 0.0);
        assert_eq!(BiasScheme::Ersfq.energy_factor(), 2.0);
    }

    #[test]
    fn validate_rejects_nonpositive() {
        let mut d = DeviceParams::aist_10um();
        d.feature_um = 0.0;
        assert!(d.validate().is_err());
        d.feature_um = f64::NAN;
        assert!(d.validate().is_err());
        d.feature_um = 1.0;
        assert!(d.validate().is_ok());
    }

    #[test]
    fn bias_scheme_display() {
        assert_eq!(BiasScheme::Rsfq.to_string(), "RSFQ");
        assert_eq!(BiasScheme::Ersfq.to_string(), "ERSFQ");
    }

    #[test]
    fn serde_roundtrip() {
        let d = DeviceParams::aist_10um();
        let json = serde_json::to_string(&d).unwrap();
        let back: DeviceParams = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
