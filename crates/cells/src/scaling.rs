//! Feature-size scaling rules.
//!
//! The paper compares a 1.0 µm SFQ chip against 28 nm CMOS by assuming
//! the published RSFQ scaling rule: clock frequency grows in proportion
//! to the junction-size reduction down to 200 nm (Kadin et al.), and
//! cell area shrinks quadratically with feature size. These helpers
//! implement exactly that (Table I's "Area (28 nm)" column and
//! footnote 2).

/// Feature size below which the linear frequency-scaling rule is no
/// longer claimed to hold (200 nm, per Kadin et al. as cited by the
/// paper).
pub const FREQ_SCALING_FLOOR_UM: f64 = 0.2;

/// Frequency multiplier when scaling a design from `from_um` to
/// `to_um` feature size. Frequency improves ∝ 1/λ only down to the
/// 200 nm floor; beyond that it saturates.
///
/// # Panics
///
/// Panics if either feature size is not a positive finite number.
pub fn frequency_factor(from_um: f64, to_um: f64) -> f64 {
    assert!(
        from_um.is_finite() && from_um > 0.0 && to_um.is_finite() && to_um > 0.0,
        "feature sizes must be positive"
    );
    let effective_to = to_um.max(FREQ_SCALING_FLOOR_UM);
    let effective_from = from_um.max(FREQ_SCALING_FLOOR_UM);
    effective_from / effective_to
}

/// Area multiplier when scaling from `from_um` to `to_um` feature size
/// (quadratic, no floor — the paper scales its 1.0 µm areas to a 28 nm
/// equivalent for the TPU comparison).
///
/// # Panics
///
/// Panics if either feature size is not a positive finite number.
pub fn area_factor(from_um: f64, to_um: f64) -> f64 {
    assert!(
        from_um.is_finite() && from_um > 0.0 && to_um.is_finite() && to_um > 0.0,
        "feature sizes must be positive"
    );
    (to_um / from_um).powi(2)
}

/// Scale an area in mm² from one process to another.
pub fn scale_area_mm2(area_mm2: f64, from_um: f64, to_um: f64) -> f64 {
    area_mm2 * area_factor(from_um, to_um)
}

/// The 28 nm node, in µm, used for the paper's Table I comparison.
pub const NODE_28NM_UM: f64 = 0.028;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_scales_quadratically() {
        // 1.0 µm → 28 nm shrinks area by (28/1000)² ≈ 1/1276.
        let f = area_factor(1.0, NODE_28NM_UM);
        assert!((f - (0.028f64).powi(2)).abs() < 1e-12);
        assert!((scale_area_mm2(361_000.0, 1.0, NODE_28NM_UM) - 283.0).abs() < 1.0);
    }

    #[test]
    fn frequency_scaling_saturates_at_200nm() {
        // 1.0 µm → 0.5 µm doubles frequency.
        assert!((frequency_factor(1.0, 0.5) - 2.0).abs() < 1e-12);
        // 1.0 µm → 0.2 µm quintuples it.
        assert!((frequency_factor(1.0, 0.2) - 5.0).abs() < 1e-12);
        // Going below the floor gives no further gain.
        assert!((frequency_factor(1.0, 0.028) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn identity_scaling_is_one() {
        assert_eq!(frequency_factor(1.0, 1.0), 1.0);
        assert_eq!(area_factor(0.5, 0.5), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_feature() {
        let _ = area_factor(0.0, 1.0);
    }
}
