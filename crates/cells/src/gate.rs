//! SFQ gate kinds and their characterized parameters.

use serde::{Deserialize, Serialize};

use crate::error::CellError;

/// Every SFQ cell the estimator composes microarchitecture from.
///
/// Wire cells (JTL, splitter, merger, PTL driver/receiver) carry
/// pulses; clocked cells latch an SFQ between clock pulses and hence
/// have setup/hold windows (§II-A of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum GateKind {
    /// Josephson transmission line segment (wire repeater).
    Jtl,
    /// Pulse splitter: one input pulse → two identical output pulses.
    Splitter,
    /// Confluence buffer / merger: two inputs → one output.
    Merger,
    /// Delay flip-flop: the basic clocked storage cell.
    Dff,
    /// The DAU's special DFF with a statically-controlled bypass line
    /// (§III-C of the paper).
    DffBypass,
    /// Clocked AND.
    And,
    /// Clocked OR.
    Or,
    /// Clocked XOR.
    Xor,
    /// Clocked inverter (NOT).
    Not,
    /// Non-destructive read-out cell (register bit that can be read
    /// repeatedly — used for PE weight registers).
    Ndro,
    /// Toggle flip-flop (used by clock distribution / frequency dividers).
    Tff,
    /// Passive-transmission-line driver (long-range on-chip wiring).
    PtlDriver,
    /// Passive-transmission-line receiver.
    PtlReceiver,
}

impl GateKind {
    /// All gate kinds, in a stable order.
    pub const ALL: [GateKind; 13] = [
        GateKind::Jtl,
        GateKind::Splitter,
        GateKind::Merger,
        GateKind::Dff,
        GateKind::DffBypass,
        GateKind::And,
        GateKind::Or,
        GateKind::Xor,
        GateKind::Not,
        GateKind::Ndro,
        GateKind::Tff,
        GateKind::PtlDriver,
        GateKind::PtlReceiver,
    ];

    /// Whether this cell consumes a clock pulse (and therefore has
    /// setup/hold constraints and participates in gate-pair frequency
    /// analysis).
    pub fn class(self) -> GateClass {
        match self {
            GateKind::Jtl
            | GateKind::Splitter
            | GateKind::Merger
            | GateKind::Tff
            | GateKind::PtlDriver
            | GateKind::PtlReceiver => GateClass::Wire,
            _ => GateClass::Clocked,
        }
    }
}

/// Coarse classification of a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateClass {
    /// Asynchronous pulse-carrying cell (no clock input).
    Wire,
    /// Clock-synchronized cell with latch functionality.
    Clocked,
}

/// Characterized parameters of one cell, as produced by the paper's
/// JSIM runs against the AIST 1.0 µm cell library.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GateParams {
    /// Input-to-output (or clock-to-output for clocked cells)
    /// propagation delay in picoseconds.
    pub delay_ps: f64,
    /// Setup time in picoseconds (clocked cells; 0 for wire cells).
    pub setup_ps: f64,
    /// Hold time in picoseconds (clocked cells; 0 for wire cells).
    pub hold_ps: f64,
    /// Static (bias) power in microwatts under RSFQ.
    pub static_uw: f64,
    /// Average switching energy per access in attojoules under RSFQ.
    pub energy_aj: f64,
    /// Number of Josephson junctions in the cell.
    pub jj_count: u32,
}

impl GateParams {
    /// Cell area in µm² given the process's per-junction area.
    pub fn area_um2(&self, area_per_jj_um2: f64) -> f64 {
        f64::from(self.jj_count) * area_per_jj_um2
    }

    /// Validate that every field is finite and non-negative.
    ///
    /// # Errors
    ///
    /// Returns [`CellError::InvalidGate`] naming the offending field.
    pub fn validate(&self, kind: GateKind) -> Result<(), CellError> {
        let fields = [
            ("delay_ps", self.delay_ps),
            ("setup_ps", self.setup_ps),
            ("hold_ps", self.hold_ps),
            ("static_uw", self.static_uw),
            ("energy_aj", self.energy_aj),
        ];
        for (name, v) in fields {
            if !v.is_finite() || v < 0.0 {
                return Err(CellError::InvalidGate {
                    kind,
                    field: name,
                    value: v,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clocked_vs_wire_classification() {
        assert_eq!(GateKind::Jtl.class(), GateClass::Wire);
        assert_eq!(GateKind::Splitter.class(), GateClass::Wire);
        assert_eq!(GateKind::Dff.class(), GateClass::Clocked);
        assert_eq!(GateKind::And.class(), GateClass::Clocked);
        assert_eq!(GateKind::Ndro.class(), GateClass::Clocked);
    }

    #[test]
    fn all_lists_every_kind_once() {
        let mut set = std::collections::HashSet::new();
        for k in GateKind::ALL {
            assert!(set.insert(k), "duplicate {k:?}");
        }
        assert_eq!(set.len(), GateKind::ALL.len());
    }

    #[test]
    fn area_scales_with_jj_count() {
        let g = GateParams {
            delay_ps: 1.0,
            setup_ps: 0.0,
            hold_ps: 0.0,
            static_uw: 1.0,
            energy_aj: 1.0,
            jj_count: 10,
        };
        assert_eq!(g.area_um2(100.0), 1000.0);
    }

    #[test]
    fn validate_flags_negative_delay() {
        let g = GateParams {
            delay_ps: -1.0,
            setup_ps: 0.0,
            hold_ps: 0.0,
            static_uw: 0.0,
            energy_aj: 0.0,
            jj_count: 1,
        };
        let err = g.validate(GateKind::Jtl).unwrap_err();
        assert!(err.to_string().contains("delay_ps"));
    }
}
