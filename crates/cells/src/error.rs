//! Error type for the cell library.

use crate::gate::GateKind;

/// Errors produced by cell-library construction and lookup.
#[derive(Debug, Clone, PartialEq)]
pub enum CellError {
    /// A device parameter was non-positive or non-finite.
    InvalidDevice {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A gate parameter was non-finite or negative.
    InvalidGate {
        /// Which gate.
        kind: GateKind,
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The library is missing an entry for a gate kind.
    MissingGate(GateKind),
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellError::InvalidDevice { field, value } => {
                write!(f, "invalid device parameter {field} = {value}")
            }
            CellError::InvalidGate { kind, field, value } => {
                write!(f, "invalid {kind:?} gate parameter {field} = {value}")
            }
            CellError::MissingGate(kind) => write!(f, "library has no entry for gate {kind:?}"),
        }
    }
}

impl std::error::Error for CellError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let e = CellError::MissingGate(GateKind::And);
        assert!(!e.to_string().is_empty());
        let e = CellError::InvalidDevice {
            field: "bias_mv",
            value: -1.0,
        };
        assert!(e.to_string().contains("bias_mv"));
    }
}
