//! # sfq-cells
//!
//! Gate-level cell library for single-flux-quantum (SFQ) logic,
//! reproducing the gate-level estimation layer of the SuperNPU
//! simulation framework (Ishida, Byun, et al., MICRO 2020, §IV-A.1).
//!
//! The crate provides:
//!
//! * [`DeviceParams`] — fabrication-process and junction parameters
//!   (critical current, bias voltage, feature size) for the AIST
//!   1.0 µm niobium process used by the paper,
//! * [`GateKind`] / [`GateParams`] — the SFQ gate zoo with per-gate
//!   propagation delay, setup/hold windows, static power, switching
//!   energy, Josephson-junction count and area,
//! * [`CellLibrary`] — a complete characterized library with the
//!   [RSFQ](BiasScheme::Rsfq) and [ERSFQ](BiasScheme::Ersfq) bias
//!   schemes (ERSFQ: zero static power, doubled switching energy,
//!   identical timing — exactly the paper's transformation),
//! * [`scaling`] — the feature-size scaling rules used by the paper to
//!   compare a 1.0 µm SFQ chip against 28 nm CMOS (frequency ∝ 1/λ
//!   down to 200 nm, area ∝ λ²).
//!
//! # Example
//!
//! ```
//! use sfq_cells::{CellLibrary, GateKind, BiasScheme};
//!
//! let lib = CellLibrary::aist_10um();
//! let and = lib.gate(GateKind::And);
//! assert_eq!(and.delay_ps, 8.3);            // the value printed in the paper
//! assert!(and.static_uw > 0.0);             // RSFQ dissipates static power
//!
//! let ersfq = lib.with_bias(BiasScheme::Ersfq);
//! assert_eq!(ersfq.gate(GateKind::And).static_uw, 0.0);
//! assert_eq!(ersfq.gate(GateKind::And).energy_aj, 2.0 * and.energy_aj);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod error;
mod gate;
mod library;
pub mod scaling;

pub use device::{BiasScheme, DeviceParams};
pub use error::CellError;
pub use gate::{GateClass, GateKind, GateParams};
pub use library::CellLibrary;

/// Magnetic flux quantum Φ₀ in webers (2.07 × 10⁻¹⁵ Wb).
pub const PHI0_WB: f64 = 2.067_833_848e-15;

/// Convenience: picoseconds → seconds.
pub fn ps_to_s(ps: f64) -> f64 {
    ps * 1e-12
}

/// Convenience: attojoules → joules.
pub fn aj_to_j(aj: f64) -> f64 {
    aj * 1e-18
}

/// Convenience: microwatts → watts.
pub fn uw_to_w(uw: f64) -> f64 {
    uw * 1e-6
}
