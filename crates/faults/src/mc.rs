//! Monte-Carlo yield estimation over perturbed stdlib cells, run
//! through a crash-isolated, checkpointing harness.
//!
//! For a cell and a variation strength σ, the estimator draws `samples`
//! independent perturbed parameter sets (one [`SplitMix64`] substream
//! per sample, derived from `(seed, cell, σ, index)`), simulates each
//! cell's functional testbench, and classifies every sample into a
//! discrete [`Outcome`]. The per-cell yield-vs-σ curve is the SFQ
//! analogue of a process corner report: it tells you how much parameter
//! spread a cell survives.
//!
//! ## Robustness contract
//!
//! * A sample that **panics** (whether injected via [`Injection`] or a
//!   genuine solver bug) is caught by `sfq_par::par_map_catch` and
//!   recorded as [`Outcome::Panicked`] — it poisons only itself.
//! * A sample whose transient **errors** is retried up to
//!   `McOptions::retries` extra times, then recorded as
//!   [`Outcome::NonConvergent`].
//! * With `checkpoint_every > 0` and a `checkpoint_path`, the completed
//!   prefix of outcomes is persisted after each chunk; `resume` loads a
//!   matching checkpoint and continues. Because outcomes are discrete
//!   and every sample is a pure function of `(seed, cell, σ, index)`,
//!   a resumed run is **bit-identical** to an uninterrupted one, at any
//!   thread count.

use std::path::{Path, PathBuf};

use jjsim::stdlib::{clocked_and, dff, jtl_chain, AndParams, DffParams, JtlParams};
use jjsim::{BatchedTransient, Circuit, SimError, SimOptions, SimResult, Solver};
use serde::{Deserialize, Serialize};

use crate::rng::SplitMix64;
use crate::variation::{perturb_and, perturb_dff, perturb_jtl, Variation};

/// The stdlib cells the yield estimator knows how to probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cell {
    /// 4-stage Josephson transmission line: one pulse in, one out per
    /// stage.
    Jtl,
    /// D flip-flop: store-then-release works and a clock without data
    /// stays silent.
    Dff,
    /// Clocked AND: fires with both inputs set, silent with one.
    ClockedAnd,
}

impl Cell {
    /// All probeable cells.
    pub fn all() -> [Cell; 3] {
        [Cell::Jtl, Cell::Dff, Cell::ClockedAnd]
    }

    /// Stable display name (also the checkpoint identity).
    pub fn name(self) -> &'static str {
        match self {
            Cell::Jtl => "jtl",
            Cell::Dff => "dff",
            Cell::ClockedAnd => "clocked_and",
        }
    }

    /// Stable substream tag: part of every sample's RNG derivation.
    fn tag(self) -> u64 {
        match self {
            Cell::Jtl => 1,
            Cell::Dff => 2,
            Cell::ClockedAnd => 3,
        }
    }
}

/// The verdict of one Monte-Carlo sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Outcome {
    /// The perturbed cell passed its functional testbench.
    Pass,
    /// The cell simulated fine but misbehaved (wrong pulse counts).
    Fail,
    /// Every attempt errored (solver divergence or an injected
    /// non-convergence); no functional verdict exists.
    NonConvergent,
    /// The probe panicked; the harness absorbed it.
    Panicked,
}

/// Injected failures for exercising the harness itself: the listed
/// sample indices panic / refuse to converge instead of simulating.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Injection {
    /// Samples that panic on every attempt.
    pub panic_at: Vec<usize>,
    /// Samples that return a typed non-convergence on every attempt.
    pub non_convergent_at: Vec<usize>,
}

/// Harness options for one Monte-Carlo run.
#[derive(Debug, Clone)]
pub struct McOptions {
    /// Number of samples to draw.
    pub samples: u32,
    /// Extra attempts after a sample's first erroring transient.
    pub retries: u32,
    /// Persist the completed prefix every this many samples
    /// (0 disables checkpointing).
    pub checkpoint_every: u32,
    /// Where to persist / look for the checkpoint.
    pub checkpoint_path: Option<PathBuf>,
    /// Load a matching checkpoint and continue from its prefix.
    pub resume: bool,
    /// Injected failures (empty in production runs).
    pub injection: Injection,
}

impl McOptions {
    /// Plain run: `samples` draws, one retry, no checkpointing.
    pub fn new(samples: u32) -> Self {
        McOptions {
            samples,
            retries: 1,
            checkpoint_every: 0,
            checkpoint_path: None,
            resume: false,
            injection: Injection::default(),
        }
    }
}

/// One point of a yield curve: the outcome tally at a single σ.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct YieldPoint {
    /// Which cell was probed.
    pub cell: String,
    /// Relative variation σ applied to every parameter family.
    pub sigma: f64,
    /// Samples drawn.
    pub samples: u32,
    /// Functional passes.
    pub pass: u32,
    /// Functional failures (simulated fine, wrong behaviour).
    pub fail: u32,
    /// Samples with no verdict after the retry budget.
    pub non_convergent: u32,
    /// Samples whose probe panicked.
    pub panicked: u32,
}

impl YieldPoint {
    /// Fraction of samples that passed. Samples without a verdict
    /// (non-convergent, panicked) count against yield — a cell you
    /// could not certify is not a working cell.
    pub fn yield_fraction(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            f64::from(self.pass) / f64::from(self.samples)
        }
    }
}

/// Errors of the harness itself (never of an individual sample).
#[derive(Debug)]
pub enum FaultError {
    /// Options are unusable (e.g. checkpointing without a path).
    InvalidOptions {
        /// What is wrong.
        what: &'static str,
    },
    /// A checkpoint could not be read, written or trusted.
    Checkpoint {
        /// The offending path.
        path: PathBuf,
        /// Why.
        message: String,
    },
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::InvalidOptions { what } => write!(f, "invalid Monte-Carlo options: {what}"),
            FaultError::Checkpoint { path, message } => {
                write!(f, "checkpoint {}: {message}", path.display())
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// Persisted completed prefix of one (cell, σ, seed, samples) run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Checkpoint {
    cell: String,
    /// `sigma.to_bits()` — exact, no float round-trip ambiguity.
    sigma_bits: u64,
    seed: u64,
    samples: u32,
    outcomes: Vec<Outcome>,
}

/// Functional probe of one perturbed cell draw. Pure in `(cell, σ,
/// rng-state)`; runs one or two short transients.
fn probe_cell(cell: Cell, sigma: f64, rng: &mut SplitMix64) -> Result<bool, SimError> {
    let v = Variation::uniform(sigma);
    match cell {
        Cell::Jtl => {
            let p = perturb_jtl(&JtlParams::default(), &v, rng);
            let (ckt, stages) = jtl_chain(4, &p);
            let out = Solver::new(ckt, SimOptions::adaptive())?.try_run(200e-12)?;
            Ok(stages.iter().all(|j| out.pulse_count(*j) == 1))
        }
        Cell::Dff => {
            let p = perturb_dff(&DffParams::default(), &v, rng);
            let (ckt, probes) = dff(&[60e-12], &[100e-12], &p);
            let out = Solver::new(ckt, SimOptions::adaptive())?.try_run(160e-12)?;
            let stores = out.pulse_count(probes.input) == 1 && out.pulse_count(probes.output) == 1;
            if !stores {
                return Ok(false);
            }
            let (ckt, probes) = dff(&[], &[100e-12], &p);
            let out = Solver::new(ckt, SimOptions::adaptive())?.try_run(160e-12)?;
            Ok(out.pulse_count(probes.output) == 0)
        }
        Cell::ClockedAnd => {
            let p = perturb_and(&AndParams::default(), &v, rng);
            let (ckt, probes) = clocked_and(&[60e-12], &[60e-12], &[100e-12], &p);
            let out = Solver::new(ckt, SimOptions::adaptive())?.try_run(170e-12)?;
            let fires = out.pulse_count(probes.output) == 1;
            if !fires {
                return Ok(false);
            }
            let (ckt, probes) = clocked_and(&[60e-12], &[], &[100e-12], &p);
            let out = Solver::new(ckt, SimOptions::adaptive())?.try_run(170e-12)?;
            Ok(out.pulse_count(probes.output) == 0)
        }
    }
}

/// Run one sample to a verdict (everything but panic isolation, which
/// the caller's `par_map_catch` provides).
fn run_sample(cell: Cell, sigma: f64, seed: u64, idx: usize, opts: &McOptions) -> Outcome {
    if opts.injection.panic_at.contains(&idx) {
        panic!("injected fault: sample {idx} of {} probe", cell.name());
    }
    for attempt in 0..=opts.retries {
        if attempt > 0 {
            sfq_obs::inc("faults.mc.retries");
        }
        if opts.injection.non_convergent_at.contains(&idx) {
            continue; // injected: this sample never converges
        }
        // The substream depends only on the sample identity — not the
        // attempt — so a retry reruns the identical computation. The
        // budget exists for injected and environmental failures; a
        // deterministic solver error will simply exhaust it.
        let mut rng = SplitMix64::substream(seed, &[cell.tag(), sigma.to_bits(), idx as u64]);
        match probe_cell(cell, sigma, &mut rng) {
            Ok(true) => return Outcome::Pass,
            Ok(false) => return Outcome::Fail,
            Err(_) => {}
        }
    }
    Outcome::NonConvergent
}

/// Batched transient for one phase of a group's testbenches: `None`
/// when the batch could not even be constructed (e.g. a perturbed
/// instance fails validation — rare, handled by the scalar path),
/// otherwise per-instance results where an `Err` lane already fell
/// back to the scalar golden path inside
/// [`BatchedTransient::try_run`].
fn batch_phase(ckts: Vec<Circuit>, t_end: f64) -> Option<Vec<Result<SimResult, SimError>>> {
    let batch = BatchedTransient::new(ckts, SimOptions::adaptive()).ok()?;
    Some(batch.try_run(t_end))
}

/// Batched verdicts for a lane group of samples without injections.
/// Returns `None` when the group has to take the per-sample scalar
/// path instead (batch construction failed). Individual erroring
/// samples are re-run through [`run_sample`] so the retry accounting
/// and final [`Outcome`] match the scalar path exactly.
#[allow(clippy::too_many_lines)]
fn probe_group_batched(
    cell: Cell,
    sigma: f64,
    seed: u64,
    idxs: &[usize],
    opts: &McOptions,
) -> Option<Vec<Outcome>> {
    let v = Variation::uniform(sigma);
    let rng_for = |i: usize| SplitMix64::substream(seed, &[cell.tag(), sigma.to_bits(), i as u64]);
    let scalar = |i: usize| run_sample(cell, sigma, seed, i, opts);
    match cell {
        Cell::Jtl => {
            let ps: Vec<JtlParams> = idxs
                .iter()
                .map(|&i| perturb_jtl(&JtlParams::default(), &v, &mut rng_for(i)))
                .collect();
            let mut stages = Vec::new();
            let ckts: Vec<Circuit> = ps
                .iter()
                .map(|p| {
                    let (c, s) = jtl_chain(4, p);
                    stages = s;
                    c
                })
                .collect();
            let runs = batch_phase(ckts, 200e-12)?;
            Some(
                idxs.iter()
                    .zip(runs)
                    .map(|(&i, r)| match r {
                        Ok(out) => {
                            if stages.iter().all(|j| out.pulse_count(*j) == 1) {
                                Outcome::Pass
                            } else {
                                Outcome::Fail
                            }
                        }
                        Err(_) => scalar(i),
                    })
                    .collect(),
            )
        }
        Cell::Dff => {
            let ps: Vec<DffParams> = idxs
                .iter()
                .map(|&i| perturb_dff(&DffParams::default(), &v, &mut rng_for(i)))
                .collect();
            let mut probes = None;
            let ckts: Vec<Circuit> = ps
                .iter()
                .map(|p| {
                    let (c, pr) = dff(&[60e-12], &[100e-12], p);
                    probes = Some(pr);
                    c
                })
                .collect();
            let probes = probes?;
            let runs = batch_phase(ckts, 160e-12)?;
            // Samples that store correctly advance to the silent-clock
            // bench; the rest already have their verdict.
            let mut verdict: Vec<Option<Outcome>> = Vec::with_capacity(idxs.len());
            let mut second: Vec<usize> = Vec::new();
            for (slot, (&i, r)) in idxs.iter().zip(runs).enumerate() {
                match r {
                    Ok(out) => {
                        let stores = out.pulse_count(probes.input) == 1
                            && out.pulse_count(probes.output) == 1;
                        if stores {
                            verdict.push(None);
                            second.push(slot);
                        } else {
                            verdict.push(Some(Outcome::Fail));
                        }
                    }
                    Err(_) => verdict.push(Some(scalar(i))),
                }
            }
            if !second.is_empty() {
                let mut probes2 = None;
                let ckts2: Vec<Circuit> = second
                    .iter()
                    .map(|&slot| {
                        let (c, pr) = dff(&[], &[100e-12], &ps[slot]);
                        probes2 = Some(pr);
                        c
                    })
                    .collect();
                let probes2 = probes2?;
                let runs2 = batch_phase(ckts2, 160e-12)?;
                for (&slot, r) in second.iter().zip(runs2) {
                    verdict[slot] = Some(match r {
                        Ok(out) => {
                            if out.pulse_count(probes2.output) == 0 {
                                Outcome::Pass
                            } else {
                                Outcome::Fail
                            }
                        }
                        Err(_) => scalar(idxs[slot]),
                    });
                }
            }
            verdict.into_iter().collect()
        }
        Cell::ClockedAnd => {
            let ps: Vec<AndParams> = idxs
                .iter()
                .map(|&i| perturb_and(&AndParams::default(), &v, &mut rng_for(i)))
                .collect();
            let mut probes = None;
            let ckts: Vec<Circuit> = ps
                .iter()
                .map(|p| {
                    let (c, pr) = clocked_and(&[60e-12], &[60e-12], &[100e-12], p);
                    probes = Some(pr);
                    c
                })
                .collect();
            let probes = probes?;
            let runs = batch_phase(ckts, 170e-12)?;
            let mut verdict: Vec<Option<Outcome>> = Vec::with_capacity(idxs.len());
            let mut second: Vec<usize> = Vec::new();
            for (slot, (&i, r)) in idxs.iter().zip(runs).enumerate() {
                match r {
                    Ok(out) => {
                        if out.pulse_count(probes.output) == 1 {
                            verdict.push(None);
                            second.push(slot);
                        } else {
                            verdict.push(Some(Outcome::Fail));
                        }
                    }
                    Err(_) => verdict.push(Some(scalar(i))),
                }
            }
            if !second.is_empty() {
                let mut probes2 = None;
                let ckts2: Vec<Circuit> = second
                    .iter()
                    .map(|&slot| {
                        let (c, pr) = clocked_and(&[60e-12], &[], &[100e-12], &ps[slot]);
                        probes2 = Some(pr);
                        c
                    })
                    .collect();
                let probes2 = probes2?;
                let runs2 = batch_phase(ckts2, 170e-12)?;
                for (&slot, r) in second.iter().zip(runs2) {
                    verdict[slot] = Some(match r {
                        Ok(out) => {
                            if out.pulse_count(probes2.output) == 0 {
                                Outcome::Pass
                            } else {
                                Outcome::Fail
                            }
                        }
                        Err(_) => scalar(idxs[slot]),
                    });
                }
            }
            verdict.into_iter().collect()
        }
    }
}

/// Per-sample scalar outcomes with individual panic isolation — the
/// pre-batching behavior, used directly for injected groups and as the
/// fallback when a batched group cannot run.
fn scalar_group(
    cell: Cell,
    sigma: f64,
    seed: u64,
    idxs: &[usize],
    opts: &McOptions,
) -> Vec<Outcome> {
    sfq_par::par_map_catch(idxs, |&i| run_sample(cell, sigma, seed, i, opts))
        .into_iter()
        .map(|r| match r {
            Ok(o) => o,
            Err(_panic) => Outcome::Panicked,
        })
        .collect()
}

/// One lane group of a Monte-Carlo chunk. Injected groups keep the
/// scalar path (injection exercises the per-sample harness, which is
/// exactly what must stay observable); clean groups run batched, with
/// any genuine panic demoting the whole group to the per-sample scalar
/// path so panic isolation still holds sample-by-sample.
fn run_group(cell: Cell, sigma: f64, seed: u64, idxs: &[usize], opts: &McOptions) -> Vec<Outcome> {
    let injected = idxs.iter().any(|i| {
        opts.injection.panic_at.contains(i) || opts.injection.non_convergent_at.contains(i)
    });
    if idxs.len() < 2 || injected {
        return scalar_group(cell, sigma, seed, idxs, opts);
    }
    let batched = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        probe_group_batched(cell, sigma, seed, idxs, opts)
    }));
    match batched {
        Ok(Some(outcomes)) => {
            sfq_obs::inc("faults.mc.batched_groups");
            outcomes
        }
        _ => scalar_group(cell, sigma, seed, idxs, opts),
    }
}

fn load_checkpoint(
    path: &Path,
    cell: Cell,
    sigma: f64,
    seed: u64,
    samples: u32,
) -> Result<Vec<Outcome>, FaultError> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        // A missing checkpoint is a cold start, not an error.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => {
            return Err(FaultError::Checkpoint {
                path: path.to_path_buf(),
                message: format!("read failed: {e}"),
            })
        }
    };
    let cp: Checkpoint = serde_json::from_str(&text).map_err(|e| FaultError::Checkpoint {
        path: path.to_path_buf(),
        message: format!("parse failed: {e}"),
    })?;
    let matches = cp.cell == cell.name()
        && cp.sigma_bits == sigma.to_bits()
        && cp.seed == seed
        && cp.samples == samples
        && cp.outcomes.len() <= samples as usize;
    if !matches {
        return Err(FaultError::Checkpoint {
            path: path.to_path_buf(),
            message: "checkpoint does not match this run's (cell, sigma, seed, samples)".into(),
        });
    }
    Ok(cp.outcomes)
}

fn write_checkpoint(
    path: &Path,
    cell: Cell,
    sigma: f64,
    seed: u64,
    samples: u32,
    outcomes: &[Outcome],
) -> Result<(), FaultError> {
    let cp = Checkpoint {
        cell: cell.name().to_owned(),
        sigma_bits: sigma.to_bits(),
        seed,
        samples,
        outcomes: outcomes.to_vec(),
    };
    let text = serde_json::to_string_pretty(&cp).map_err(|e| FaultError::Checkpoint {
        path: path.to_path_buf(),
        message: format!("serialize failed: {e}"),
    })?;
    // Atomic persistence (temp sibling + fsync + rename): a crash
    // mid-write can never leave a torn checkpoint where the old one
    // stood — the file either still holds the previous prefix or
    // already holds the new one, both resumable.
    sfq_guard::checkpoint::atomic_write(path, text.as_bytes()).map_err(|e| {
        FaultError::Checkpoint {
            path: path.to_path_buf(),
            message: e.to_string(),
        }
    })?;
    sfq_obs::inc("faults.mc.checkpoints");
    Ok(())
}

/// Raw per-sample outcomes of one Monte-Carlo run (the basis of
/// [`estimate_yield`]; exposed so tests and the interrupted-resume
/// demo can compare runs sample-by-sample).
///
/// # Errors
///
/// Returns [`FaultError`] for unusable options or checkpoint trouble.
/// Individual sample failures are *outcomes*, not errors.
pub fn run_outcomes(
    cell: Cell,
    sigma: f64,
    seed: u64,
    opts: &McOptions,
) -> Result<Vec<Outcome>, FaultError> {
    if opts.checkpoint_every > 0 && opts.checkpoint_path.is_none() {
        return Err(FaultError::InvalidOptions {
            what: "checkpoint_every > 0 requires checkpoint_path",
        });
    }
    let n = opts.samples as usize;
    let mut outcomes: Vec<Outcome> = match (&opts.checkpoint_path, opts.resume) {
        (Some(p), true) => load_checkpoint(p, cell, sigma, seed, opts.samples)?,
        _ => Vec::new(),
    };
    outcomes.truncate(n);

    let chunk = if opts.checkpoint_every == 0 {
        n.max(1)
    } else {
        opts.checkpoint_every as usize
    };

    while outcomes.len() < n {
        let start = outcomes.len();
        let end = (start + chunk).min(n);
        let width = jjsim::batch_width();
        let results: Vec<Outcome> = if width < 2 {
            // Batching disabled: the historical per-sample path.
            let idxs: Vec<usize> = (start..end).collect();
            sfq_par::par_map_catch(&idxs, |&i| run_sample(cell, sigma, seed, i, opts))
                .into_iter()
                .map(|r| match r {
                    Ok(o) => o,
                    Err(_panic) => Outcome::Panicked,
                })
                .collect()
        } else {
            // Lane groups keyed on the *absolute* sample index, so a
            // resumed run regroups exactly like an uninterrupted one.
            let groups: Vec<Vec<usize>> = sfq_par::lane_groups(start, end, width)
                .into_iter()
                .map(|r| r.collect())
                .collect();
            let per_group =
                sfq_par::par_map_catch(&groups, |g| run_group(cell, sigma, seed, g, opts));
            groups
                .iter()
                .zip(per_group)
                .flat_map(|(g, r)| match r {
                    Ok(outs) => outs,
                    // A panic in the group *bookkeeping* (the probes
                    // themselves are already contained): redo this
                    // group sample-by-sample with panic isolation.
                    Err(_panic) => scalar_group(cell, sigma, seed, g, opts),
                })
                .collect()
        };
        for outcome in results {
            if sfq_obs::enabled() {
                sfq_obs::inc("faults.mc.samples");
                sfq_obs::inc(match outcome {
                    Outcome::Pass => "faults.mc.pass",
                    Outcome::Fail => "faults.mc.fail",
                    Outcome::NonConvergent => "faults.mc.non_convergent",
                    Outcome::Panicked => "faults.mc.panicked",
                });
            }
            outcomes.push(outcome);
        }
        if opts.checkpoint_every > 0 {
            if let Some(p) = &opts.checkpoint_path {
                write_checkpoint(p, cell, sigma, seed, opts.samples, &outcomes)?;
            }
        }
    }
    Ok(outcomes)
}

/// Tally of [`run_outcomes`]: the yield point at one σ.
///
/// # Errors
///
/// Returns [`FaultError`] for unusable options or checkpoint trouble.
pub fn estimate_yield(
    cell: Cell,
    sigma: f64,
    seed: u64,
    opts: &McOptions,
) -> Result<YieldPoint, FaultError> {
    let outcomes = run_outcomes(cell, sigma, seed, opts)?;
    let mut point = YieldPoint {
        cell: cell.name().to_owned(),
        sigma,
        samples: opts.samples,
        pass: 0,
        fail: 0,
        non_convergent: 0,
        panicked: 0,
    };
    for o in &outcomes {
        match o {
            Outcome::Pass => point.pass += 1,
            Outcome::Fail => point.fail += 1,
            Outcome::NonConvergent => point.non_convergent += 1,
            Outcome::Panicked => point.panicked += 1,
        }
    }
    Ok(point)
}

/// Yield curve: one [`YieldPoint`] per σ. When checkpointing is on,
/// each σ gets its own file (the configured path with the σ bits
/// appended) so interrupting a sweep loses at most one chunk of one
/// point.
///
/// # Errors
///
/// Returns the first harness-level [`FaultError`].
pub fn yield_curve(
    cell: Cell,
    sigmas: &[f64],
    seed: u64,
    opts: &McOptions,
) -> Result<Vec<YieldPoint>, FaultError> {
    let mut points = Vec::with_capacity(sigmas.len());
    for &sigma in sigmas {
        let mut per_sigma = opts.clone();
        if let Some(base) = &opts.checkpoint_path {
            let mut name = base.as_os_str().to_owned();
            name.push(format!(".s{:016x}", sigma.to_bits()));
            per_sigma.checkpoint_path = Some(PathBuf::from(name));
        }
        points.push(estimate_yield(cell, sigma, seed, &per_sigma)?);
    }
    Ok(points)
}
