//! Seeded, schedule-independent random streams.
//!
//! Every random draw in the fault layer comes from a [`SplitMix64`]
//! *substream* derived from the experiment seed plus a list of tags
//! (cell id, σ bits, sample index, …). Because a sample's stream
//! depends only on those values — never on which thread runs it or in
//! what order — Monte-Carlo results are bit-identical across
//! `SUPERNPU_THREADS` settings and across checkpoint/resume
//! boundaries.

/// SplitMix64: the classic 64-bit mixer (Steele, Lea & Flood; also
/// the seeding PRNG of `java.util.SplittableRandom`). Tiny state,
/// passes BigCrush, and — most importantly here — splitting by
/// re-seeding with a mixed tag gives independent-looking substreams.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream seeded directly.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derive the substream identified by `tags` under `seed`. Folding
    /// each tag through the output function decorrelates streams whose
    /// tag lists differ in any position.
    pub fn substream(seed: u64, tags: &[u64]) -> Self {
        let mut s = SplitMix64::new(seed);
        for &t in tags {
            s.state = s.state.wrapping_add(t ^ 0x9e37_79b9_7f4a_7c15);
            let _ = s.next_u64();
        }
        s
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Standard normal draw via Box–Muller. One transform per call
    /// (the sine half is discarded) so the stream position advances by
    /// exactly two `u64`s per draw regardless of history.
    pub fn normal(&mut self) -> f64 {
        // u1 in (0, 1]: avoid ln(0).
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn substreams_decorrelate_on_any_tag() {
        let base = SplitMix64::substream(7, &[1, 2, 3]).next_u64();
        assert_ne!(base, SplitMix64::substream(7, &[1, 2, 4]).next_u64());
        assert_ne!(base, SplitMix64::substream(7, &[0, 2, 3]).next_u64());
        assert_ne!(base, SplitMix64::substream(8, &[1, 2, 3]).next_u64());
        // Same derivation → same stream.
        assert_eq!(base, SplitMix64::substream(7, &[1, 2, 3]).next_u64());
    }

    #[test]
    fn uniform_in_unit_interval_and_roughly_centred() {
        let mut r = SplitMix64::new(1);
        let mut sum = 0.0;
        for _ in 0..4096 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 4096.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn normal_has_unit_scale() {
        let mut r = SplitMix64::new(2);
        let draws: Vec<f64> = (0..4096).map(|_| r.normal()).collect();
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        let var = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / draws.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }
}
