//! # sfq-faults
//!
//! Deterministic, seed-driven fault and variation injection for the
//! SuperNPU reproduction, spanning all three layers of the stack:
//!
//! * **Gate layer** — per-instance parameter perturbation of the
//!   `jjsim` stdlib cells (critical currents, biases, inductances as
//!   multiplicative `1 + σ·z` draws) plus a Monte-Carlo yield
//!   estimator that reports per-cell yield vs σ
//!   ([`estimate_yield`], [`yield_curve`]).
//! * **Microarchitecture layer** — seeded per-layer
//!   [`sfq_npu_sim::PulseFaults`] plans for the cycle simulator
//!   ([`draw_fault_plan`]), whose corrupted-MAC accounting degrades
//!   gracefully instead of aborting.
//! * **Harness layer** — a crash-isolated sweep engine: a panicking or
//!   non-converging probe poisons only its own sample
//!   (`sfq_par::par_map_catch` + a bounded retry budget + the typed
//!   `jjsim::SimError::NonConvergent`), with periodic checkpoints of
//!   the completed prefix and bit-identical `--resume`.
//!
//! The root determinism invariant: every random draw comes from a
//! [`SplitMix64`] substream derived from `(seed, identity tags)`, so
//! results depend only on the experiment seed — never on thread count,
//! schedule, or where a run was interrupted.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mc;
mod plan;
pub mod rng;
mod variation;

pub use mc::{
    estimate_yield, run_outcomes, yield_curve, Cell, FaultError, Injection, McOptions, Outcome,
    YieldPoint,
};
pub use plan::draw_fault_plan;
pub use rng::SplitMix64;
pub use variation::{perturb_and, perturb_dff, perturb_jtl, Variation};

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize access to the global thread pool / panic hook across
    /// the tests below.
    static GLOBAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn quiet_hook<T>(f: impl FnOnce() -> T) -> T {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(hook);
        out
    }

    #[test]
    fn yield_is_high_at_tiny_sigma_and_sane_at_large() {
        let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        let opts = McOptions::new(12);
        let tiny = estimate_yield(Cell::Jtl, 0.005, 42, &opts).expect("harness ok");
        assert_eq!(tiny.samples, 12);
        assert!(
            tiny.yield_fraction() > 0.9,
            "σ=0.5% yield {:.2}",
            tiny.yield_fraction()
        );
        let large = estimate_yield(Cell::Jtl, 0.5, 42, &opts).expect("harness ok");
        assert!(
            large.yield_fraction() < tiny.yield_fraction(),
            "σ=50% yield {:.2} should be below σ=0.5% yield {:.2}",
            large.yield_fraction(),
            tiny.yield_fraction()
        );
    }

    #[test]
    fn outcomes_are_bit_identical_across_thread_counts() {
        let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        let opts = McOptions::new(10);
        sfq_par::set_threads(1);
        let serial = run_outcomes(Cell::Dff, 0.08, 7, &opts).expect("harness ok");
        sfq_par::set_threads(4);
        let parallel = run_outcomes(Cell::Dff, 0.08, 7, &opts).expect("harness ok");
        sfq_par::clear_threads();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn batched_outcomes_match_the_scalar_path_for_every_cell() {
        let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        let opts = McOptions::new(10);
        for cell in Cell::all() {
            jjsim::set_batch_width(Some(1));
            let scalar = run_outcomes(cell, 0.08, 7, &opts).expect("harness ok");
            jjsim::set_batch_width(Some(jjsim::LANES));
            let batched = run_outcomes(cell, 0.08, 7, &opts).expect("harness ok");
            jjsim::set_batch_width(None);
            assert_eq!(scalar, batched, "cell {}", cell.name());
        }
    }

    #[test]
    fn injected_failures_poison_only_their_samples() {
        let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        let mut opts = McOptions::new(8);
        opts.injection = Injection {
            panic_at: vec![2],
            non_convergent_at: vec![5],
        };
        let outcomes = quiet_hook(|| run_outcomes(Cell::ClockedAnd, 0.01, 3, &opts))
            .expect("harness survives injected failures");
        assert_eq!(outcomes.len(), 8);
        assert_eq!(outcomes[2], Outcome::Panicked);
        assert_eq!(outcomes[5], Outcome::NonConvergent);
        for (i, o) in outcomes.iter().enumerate() {
            if i != 2 && i != 5 {
                assert!(
                    matches!(o, Outcome::Pass | Outcome::Fail),
                    "sample {i} got {o:?}"
                );
            }
        }
    }

    #[test]
    fn interrupted_run_resumes_bit_identically() {
        let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        let dir = std::env::temp_dir().join("sfq_faults_test_ckpt");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("jtl.checkpoint.json");

        // Reference: uninterrupted run, no checkpointing.
        let reference = run_outcomes(Cell::Jtl, 0.12, 99, &McOptions::new(9)).expect("harness ok");

        // Checkpointed run produces the same outcomes and leaves a file.
        let mut opts = McOptions::new(9);
        opts.checkpoint_every = 4;
        opts.checkpoint_path = Some(path.clone());
        let full = run_outcomes(Cell::Jtl, 0.12, 99, &opts).expect("harness ok");
        assert_eq!(full, reference);
        assert!(path.is_file(), "checkpoint persisted");

        // Emulate a kill between chunks: persist only a 4-sample
        // prefix, then resume. The resumed run must reconstruct the
        // remaining samples bit-identically.
        let prefix = Checkpointable {
            outcomes: reference[..4].to_vec(),
        };
        prefix.write(&path, 9);
        opts.resume = true;
        let resumed = run_outcomes(Cell::Jtl, 0.12, 99, &opts).expect("resume ok");
        assert_eq!(resumed, reference, "resumed run must be bit-identical");

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Test helper: write a prefix checkpoint through the public JSON
    /// shape without exposing the internal struct.
    struct Checkpointable {
        outcomes: Vec<Outcome>,
    }

    impl Checkpointable {
        fn write(&self, path: &std::path::Path, samples: u32) {
            let names: Vec<String> = self
                .outcomes
                .iter()
                .map(|o| {
                    format!(
                        "\"{}\"",
                        match o {
                            Outcome::Pass => "Pass",
                            Outcome::Fail => "Fail",
                            Outcome::NonConvergent => "NonConvergent",
                            Outcome::Panicked => "Panicked",
                        }
                    )
                })
                .collect();
            let text = format!(
                "{{\"cell\": \"jtl\", \"sigma_bits\": {}, \"seed\": 99, \"samples\": {samples}, \
                 \"outcomes\": [{}]}}",
                (0.12f64).to_bits(),
                names.join(", ")
            );
            std::fs::create_dir_all(path.parent().expect("has parent")).expect("mkdir");
            std::fs::write(path, text).expect("write checkpoint");
        }
    }

    #[test]
    fn mismatched_checkpoint_is_a_typed_error() {
        let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        let dir = std::env::temp_dir().join("sfq_faults_test_mismatch");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("c.json");
        let prefix = Checkpointable {
            outcomes: vec![Outcome::Pass],
        };
        prefix.write(&path, 9);

        let mut opts = McOptions::new(9);
        opts.checkpoint_every = 4;
        opts.checkpoint_path = Some(path.clone());
        opts.resume = true;
        // Different seed → the persisted prefix must be rejected.
        let err = run_outcomes(Cell::Jtl, 0.12, 100, &opts).unwrap_err();
        assert!(matches!(err, FaultError::Checkpoint { .. }), "{err}");

        // Checkpointing without a path is rejected up front.
        let mut bad = McOptions::new(4);
        bad.checkpoint_every = 2;
        assert!(matches!(
            run_outcomes(Cell::Jtl, 0.1, 1, &bad),
            Err(FaultError::InvalidOptions { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
