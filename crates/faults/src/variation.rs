//! Gate-level parameter variation: per-instance multiplicative draws.
//!
//! Fabrication spread in an SFQ process shows up as deviations of each
//! junction's critical current, each bias current, and each inductor
//! from its drawn value. The standard modelling choice (and the one
//! behind operating-margin methodology) is a multiplicative Gaussian:
//! every physical parameter is scaled by `1 + σ·z` with `z ~ N(0, 1)`,
//! drawn independently per parameter.
//!
//! The draw order within each `perturb_*` function is fixed (field
//! declaration order), so a given RNG state always produces the same
//! perturbed cell — the foundation of the crate's bit-reproducibility.
//!
//! Perturbed parameters can be non-physical at large σ (a negative
//! critical current is a dead junction); the stdlib builders sanitize
//! them onto the valid domain, so a bad draw yields a *non-working
//! cell*, never a panic. That is exactly what the Monte-Carlo yield
//! estimator wants to count.

use jjsim::stdlib::{AndParams, DffParams, JtlParams};

use crate::rng::SplitMix64;

/// Relative variation strengths (standard deviations) for the three
/// perturbed parameter families.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Variation {
    /// Relative σ of junction critical currents.
    pub sigma_ic: f64,
    /// Relative σ of bias currents.
    pub sigma_bias: f64,
    /// Relative σ of inductances.
    pub sigma_l: f64,
}

impl Variation {
    /// Uniform variation: the same relative σ on every family — the
    /// single-knob sweep the yield curves use.
    pub fn uniform(sigma: f64) -> Self {
        Variation {
            sigma_ic: sigma,
            sigma_bias: sigma,
            sigma_l: sigma,
        }
    }
}

fn scale(rng: &mut SplitMix64, sigma: f64) -> f64 {
    1.0 + sigma * rng.normal()
}

/// Draw a perturbed JTL parameter set. Input-drive fields (amplitude,
/// timing) are test-bench artifacts, not fabricated devices, and stay
/// nominal.
pub fn perturb_jtl(p: &JtlParams, v: &Variation, rng: &mut SplitMix64) -> JtlParams {
    JtlParams {
        ic: p.ic * scale(rng, v.sigma_ic),
        bias_frac: p.bias_frac * scale(rng, v.sigma_bias),
        l: p.l * scale(rng, v.sigma_l),
        input_amplitude: p.input_amplitude,
        input_time: p.input_time,
    }
}

/// Draw a perturbed DFF parameter set.
pub fn perturb_dff(p: &DffParams, v: &Variation, rng: &mut SplitMix64) -> DffParams {
    DffParams {
        ic_in: p.ic_in * scale(rng, v.sigma_ic),
        ic_out: p.ic_out * scale(rng, v.sigma_ic),
        l_store: p.l_store * scale(rng, v.sigma_l),
        bias_store: p.bias_store * scale(rng, v.sigma_bias),
        bias_out: p.bias_out * scale(rng, v.sigma_bias),
        pulse_amplitude: p.pulse_amplitude,
    }
}

/// Draw a perturbed clocked-AND parameter set.
pub fn perturb_and(p: &AndParams, v: &Variation, rng: &mut SplitMix64) -> AndParams {
    AndParams {
        ic_store: p.ic_store * scale(rng, v.sigma_ic),
        ic_out: p.ic_out * scale(rng, v.sigma_ic),
        l_store: p.l_store * scale(rng, v.sigma_l),
        bias_store: p.bias_store * scale(rng, v.sigma_bias),
        bias_out: p.bias_out * scale(rng, v.sigma_bias),
        pulse_amplitude: p.pulse_amplitude,
        clock_amplitude: p.clock_amplitude,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_sigma_is_identity() {
        let v = Variation::uniform(0.0);
        let mut rng = SplitMix64::new(1);
        assert_eq!(perturb_jtl(&JtlParams::default(), &v, &mut rng), {
            JtlParams::default()
        });
        assert_eq!(
            perturb_dff(&DffParams::default(), &v, &mut rng),
            DffParams::default()
        );
        assert_eq!(
            perturb_and(&AndParams::default(), &v, &mut rng),
            AndParams::default()
        );
    }

    #[test]
    fn same_stream_same_draw_different_stream_differs() {
        let v = Variation::uniform(0.1);
        let p = JtlParams::default();
        let a = perturb_jtl(&p, &v, &mut SplitMix64::substream(9, &[1]));
        let b = perturb_jtl(&p, &v, &mut SplitMix64::substream(9, &[1]));
        assert_eq!(a, b);
        let c = perturb_jtl(&p, &v, &mut SplitMix64::substream(9, &[2]));
        assert_ne!(a, c);
    }

    #[test]
    fn perturbation_scale_tracks_sigma() {
        let v = Variation::uniform(0.05);
        let p = JtlParams::default();
        let mut rng = SplitMix64::new(3);
        let mut max_rel = 0.0f64;
        for _ in 0..256 {
            let q = perturb_jtl(&p, &v, &mut rng);
            max_rel = max_rel.max((q.ic / p.ic - 1.0).abs());
        }
        // 256 draws at σ = 5%: spread beyond 1% but within ~5σ.
        assert!(max_rel > 0.01 && max_rel < 0.25, "max rel dev {max_rel}");
    }
}
