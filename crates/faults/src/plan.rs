//! Seeded pulse-fault plans for the cycle simulator.
//!
//! The cycle simulator's fault model
//! ([`sfq_npu_sim::PulseFaults`]) is deliberately deterministic —
//! given a fault description it computes expected corrupted-MAC counts
//! with no randomness. This module is where the randomness lives: it
//! *draws* a per-layer plan from a seed, so a whole-network
//! fault-injection experiment is reproducible from `(seed, intensity)`
//! alone and independent of thread count.

use sfq_npu_sim::PulseFaults;

use crate::rng::SplitMix64;

/// Substream namespace tag for fault plans (`b"plan"` as an integer).
const PLAN_TAG: u64 = 0x706c_616e;

/// Draw a per-layer fault plan for a network with `layers` layers.
///
/// `intensity` scales every fault family at once: 0 yields a clean
/// plan, 1 a harsh one (pulse-drop rates up to `1e-3`, skews up to
/// ~2 ps against a 1 ps hold window, up to 8 stuck PEs per layer).
/// Each layer's draws come from its own substream of `(seed,
/// PLAN_TAG, layer)`, so plans for different layer counts share their
/// common prefix.
pub fn draw_fault_plan(seed: u64, layers: usize, intensity: f64) -> Vec<PulseFaults> {
    let intensity = if intensity.is_finite() {
        intensity.max(0.0)
    } else {
        1.0
    };
    (0..layers)
        .map(|i| {
            let mut rng = SplitMix64::substream(seed, &[PLAN_TAG, i as u64]);
            PulseFaults {
                drop_rate: intensity * 1e-3 * rng.next_f64(),
                skew_ps: intensity * 2.0 * rng.normal(),
                hold_ps: 1.0,
                stuck_pes: (intensity * 8.0 * rng.next_f64()).floor() as u32,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_prefix_stable() {
        let a = draw_fault_plan(11, 8, 1.0);
        let b = draw_fault_plan(11, 8, 1.0);
        assert_eq!(a, b);
        let longer = draw_fault_plan(11, 12, 1.0);
        assert_eq!(&longer[..8], &a[..]);
        assert_ne!(draw_fault_plan(12, 8, 1.0), a);
    }

    #[test]
    fn zero_intensity_is_clean() {
        for f in draw_fault_plan(5, 6, 0.0) {
            assert!(f.is_clean(), "{f:?}");
        }
    }

    #[test]
    fn unit_intensity_injects_something() {
        let plan = draw_fault_plan(5, 6, 1.0);
        assert!(plan.iter().any(|f| !f.is_clean()));
        for f in &plan {
            assert!(f.drop_rate >= 0.0 && f.drop_rate <= 1e-3);
            assert!(f.stuck_pes <= 8);
        }
    }
}
