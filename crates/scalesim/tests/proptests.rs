//! Property-based tests of the CMOS systolic cycle model.

use dnn_models::{Layer, Network};
use proptest::prelude::*;
use scale_sim::{simulate_layer, simulate_network_with_batch, CmosNpuConfig, Dataflow};

fn conv_layer() -> impl Strategy<Value = Layer> {
    (
        4u32..=56,
        1u32..=256,
        1u32..=512,
        prop_oneof![Just(1u32), Just(3), Just(5)],
    )
        .prop_map(|(hw, c, k, kernel)| Layer::conv("p", (hw, hw), c, k, kernel, 1, kernel / 2))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// MACs are conserved for every dataflow.
    #[test]
    fn macs_conserved_all_dataflows(l in conv_layer(), batch in 1u32..=8) {
        for df in [Dataflow::WeightStationary, Dataflow::OutputStationary, Dataflow::InputStationary] {
            let mut cfg = CmosNpuConfig::tpu_core();
            cfg.dataflow = df;
            let s = simulate_layer(&cfg, &l, batch);
            prop_assert_eq!(s.macs, l.macs(batch), "{:?}", df);
        }
    }

    /// The machine can never beat its peak throughput.
    #[test]
    fn bounded_by_peak(l in conv_layer(), batch in 1u32..=8) {
        let cfg = CmosNpuConfig::tpu_core();
        let net = Network::new("p", vec![l]);
        let s = simulate_network_with_batch(&cfg, &net, batch);
        prop_assert!(s.pe_utilization() <= 1.0 + 1e-9, "util {}", s.pe_utilization());
        prop_assert!(s.effective_tmacs() > 0.0);
    }

    /// Compute cycles at least cover the ideal streaming lower bound.
    #[test]
    fn streaming_lower_bound(l in conv_layer(), batch in 1u32..=4) {
        let cfg = CmosNpuConfig::tpu_core();
        let s = simulate_layer(&cfg, &l, batch);
        let ideal = l.macs(batch)
            / (u64::from(cfg.array_height) * u64::from(cfg.array_width));
        prop_assert!(s.compute_cycles >= ideal,
            "compute {} below ideal {}", s.compute_cycles, ideal);
    }

    /// A wider link never slows a layer down.
    #[test]
    fn bandwidth_monotone(l in conv_layer()) {
        let mut slow = CmosNpuConfig::tpu_core();
        slow.mem_bandwidth_gbs = 50.0;
        let mut fast = CmosNpuConfig::tpu_core();
        fast.mem_bandwidth_gbs = 1000.0;
        let a = simulate_layer(&slow, &l, 2);
        let b = simulate_layer(&fast, &l, 2);
        prop_assert!(b.total_cycles() <= a.total_cycles());
    }

    /// DRAM traffic covers at least the compulsory set.
    #[test]
    fn traffic_lower_bound(l in conv_layer(), batch in 1u32..=4) {
        let cfg = CmosNpuConfig::tpu_core();
        let s = simulate_layer(&cfg, &l, batch);
        let compulsory = l.weight_bytes() + l.ifmap_bytes(batch) + l.ofmap_bytes(batch);
        prop_assert!(s.dram_bytes >= compulsory);
    }
}
