//! # scale-sim
//!
//! A cycle model of conventional CMOS systolic-array DNN accelerators
//! in the spirit of SCALE-SIM, which the SuperNPU paper uses to
//! evaluate its TPU-core comparison point (§VI-A).
//!
//! The key physical difference from the SFQ machine: CMOS SRAM is
//! random-access and double-buffered, so weight loading and operand
//! staging hide behind computation — there is no shift-register
//! "preparation" tax. Performance is bounded by systolic streaming
//! cycles and the DRAM bandwidth roofline.
//!
//! # Example
//!
//! ```
//! use scale_sim::{CmosNpuConfig, simulate_network};
//! use dnn_models::zoo;
//!
//! let tpu = CmosNpuConfig::tpu_core();
//! let stats = simulate_network(&tpu, &zoo::resnet50());
//! // The TPU core sustains double-digit TMAC/s on ResNet-50.
//! assert!(stats.effective_tmacs() > 5.0 && stats.effective_tmacs() < 46.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod sim;

pub use config::{CmosNpuConfig, Dataflow};
pub use sim::{
    simulate_layer, simulate_network, simulate_network_with_batch, CmosLayerStats, CmosNetworkStats,
};
