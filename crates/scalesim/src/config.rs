//! CMOS accelerator configuration.

use serde::{Deserialize, Serialize};

/// Systolic dataflow variants modeled by SCALE-SIM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Dataflow {
    /// Weight stationary (the TPU's dataflow; the default).
    #[default]
    WeightStationary,
    /// Output stationary.
    OutputStationary,
    /// Input stationary.
    InputStationary,
}

/// Configuration of a conventional CMOS systolic-array NPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CmosNpuConfig {
    /// Design name.
    pub name: String,
    /// Array height (contraction rows).
    pub array_height: u32,
    /// Array width (filter columns).
    pub array_width: u32,
    /// Clock frequency, GHz.
    pub frequency_ghz: f64,
    /// Unified on-chip buffer, bytes.
    pub buffer_bytes: u64,
    /// DRAM bandwidth, GB/s.
    pub mem_bandwidth_gbs: f64,
    /// Average chip power, watts (the paper takes the published 40 W
    /// for the TPU core).
    pub chip_power_w: f64,
    /// Dataflow.
    pub dataflow: Dataflow,
}

impl CmosNpuConfig {
    /// The paper's TPU-core comparison point (Table I): 256×256 PEs at
    /// 0.7 GHz, 24 MB unified buffer, 300 GB/s HBM, 40 W.
    pub fn tpu_core() -> Self {
        CmosNpuConfig {
            name: "TPU".into(),
            array_height: 256,
            array_width: 256,
            frequency_ghz: 0.7,
            buffer_bytes: 24 * 1024 * 1024,
            mem_bandwidth_gbs: 300.0,
            chip_power_w: 40.0,
            dataflow: Dataflow::WeightStationary,
        }
    }

    /// Eyeriss-class edge accelerator (Chen et al., ISCA 2016): a
    /// 12×14 PE array at 200 MHz with a 108 KB global buffer and a
    /// modest LPDDR link.
    pub fn eyeriss() -> Self {
        CmosNpuConfig {
            name: "Eyeriss".into(),
            array_height: 12,
            array_width: 14,
            frequency_ghz: 0.2,
            buffer_bytes: 108 * 1024,
            mem_bandwidth_gbs: 12.8,
            chip_power_w: 0.278,
            dataflow: Dataflow::WeightStationary,
        }
    }

    /// A hypothetical next-generation CMOS datacenter NPU: 512×512 at
    /// 1 GHz with 64 MB of SRAM and a 900 GB/s HBM2e stack — the
    /// strongest conventional comparison point in the extension study.
    pub fn datacenter_big() -> Self {
        CmosNpuConfig {
            name: "BigCMOS".into(),
            array_height: 512,
            array_width: 512,
            frequency_ghz: 1.0,
            buffer_bytes: 64 * 1024 * 1024,
            mem_bandwidth_gbs: 900.0,
            chip_power_w: 250.0,
            dataflow: Dataflow::WeightStationary,
        }
    }

    /// Peak throughput, TMAC/s.
    pub fn peak_tmacs(&self) -> f64 {
        f64::from(self.array_height) * f64::from(self.array_width) * self.frequency_ghz * 1e9 / 1e12
    }

    /// DRAM bytes per clock cycle.
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.mem_bandwidth_gbs / self.frequency_ghz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tpu_peak_is_46_tmacs() {
        // Paper Table I: 45 TMAC/s peak for the TPU core.
        let p = CmosNpuConfig::tpu_core().peak_tmacs();
        assert!((p - 45.9).abs() < 1.0, "peak {p:.1}");
    }

    #[test]
    fn preset_peaks_are_plausible() {
        // Eyeriss: 12×14×0.2 GHz ≈ 0.034 TMAC/s.
        let e = CmosNpuConfig::eyeriss().peak_tmacs();
        assert!((e - 0.0336).abs() < 0.001, "Eyeriss peak {e}");
        // BigCMOS: 512×512×1 GHz ≈ 262 TMAC/s.
        let b = CmosNpuConfig::datacenter_big().peak_tmacs();
        assert!((b - 262.1).abs() < 1.0, "BigCMOS peak {b}");
    }

    #[test]
    fn tpu_gets_hundreds_of_bytes_per_cycle() {
        // 300 GB/s at 0.7 GHz ≈ 429 B/cycle — the CMOS machine is far
        // less bandwidth-starved per cycle than the 52.6 GHz SFQ one.
        let bpc = CmosNpuConfig::tpu_core().dram_bytes_per_cycle();
        assert!(bpc > 400.0 && bpc < 450.0);
    }
}
