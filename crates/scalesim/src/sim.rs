//! Cycle simulation for CMOS systolic arrays.

use dnn_models::{batching, Layer, Network};
use serde::{Deserialize, Serialize};

use crate::config::{CmosNpuConfig, Dataflow};

/// Per-layer result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CmosLayerStats {
    /// Layer name.
    pub name: String,
    /// Streaming + fill cycles.
    pub compute_cycles: u64,
    /// Cycles stalled on DRAM beyond compute overlap.
    pub stall_cycles: u64,
    /// MACs performed.
    pub macs: u64,
    /// Off-chip traffic, bytes.
    pub dram_bytes: u64,
    /// Weight mappings (tiles) processed.
    pub mappings: u64,
}

impl CmosLayerStats {
    /// Total cycles.
    pub fn total_cycles(&self) -> u64 {
        self.compute_cycles + self.stall_cycles
    }
}

/// Whole-network result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CmosNetworkStats {
    /// Workload name.
    pub network: String,
    /// Design name.
    pub design: String,
    /// Batch simulated.
    pub batch: u32,
    /// Clock, GHz.
    pub frequency_ghz: f64,
    /// Peak TMAC/s.
    pub peak_tmacs: f64,
    /// Chip power, watts.
    pub chip_power_w: f64,
    /// Per-layer rows.
    pub layers: Vec<CmosLayerStats>,
}

impl CmosNetworkStats {
    /// Total cycles.
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(CmosLayerStats::total_cycles).sum()
    }

    /// Total MACs.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }

    /// Inference wall time, seconds.
    pub fn time_s(&self) -> f64 {
        self.total_cycles() as f64 * 1e-9 / self.frequency_ghz
    }

    /// Effective throughput, TMAC/s.
    pub fn effective_tmacs(&self) -> f64 {
        self.total_macs() as f64 / self.time_s() / 1e12
    }

    /// PE utilization (effective / peak).
    pub fn pe_utilization(&self) -> f64 {
        self.effective_tmacs() / self.peak_tmacs
    }

    /// Performance per watt, MAC/s/W.
    pub fn macs_per_s_per_w(&self) -> f64 {
        self.effective_tmacs() * 1e12 / self.chip_power_w
    }
}

/// Simulate one layer at `batch`.
pub fn simulate_layer(cfg: &CmosNpuConfig, layer: &Layer, batch: u32) -> CmosLayerStats {
    let h = u64::from(cfg.array_height);
    let w = u64::from(cfg.array_width);
    let b = u64::from(batch);
    let out_px = layer.output_pixels();
    let contraction = layer.contraction_len();
    let filters = layer.filter_count();

    let (mappings, compute_cycles) = match cfg.dataflow {
        Dataflow::WeightStationary | Dataflow::InputStationary => {
            let gr = contraction.div_ceil(h);
            let gc = filters.div_ceil(w);
            let maps = gr * gc;
            // Per mapping: weight column fill (h), stream b·P, array
            // drain (h + w).
            let per_map = h + b * out_px + h + w;
            (maps, maps * per_map)
        }
        Dataflow::OutputStationary => {
            // Tiles of h×w output pixels × filters; the contraction
            // streams through each tile.
            let tiles = (b * out_px).div_ceil(h) * filters.div_ceil(w);
            let per_tile = contraction + h + w;
            (tiles, tiles * per_tile)
        }
    };

    let macs = layer.macs(batch);

    // Traffic: weights once; ifmap fetched once per image (the unified
    // buffer holds the working set when the batch was sized to fit);
    // ofmap written back once.
    let mut dram_bytes = layer.weight_bytes() + layer.ifmap_bytes(batch) + layer.ofmap_bytes(batch);
    // Working sets beyond the buffer cause an extra ifmap pass per
    // column group.
    if layer.ifmap_bytes(batch) > cfg.buffer_bytes {
        let gc = filters.div_ceil(w);
        dram_bytes += layer.ifmap_bytes(batch) * gc.saturating_sub(1);
    }

    let dram_cycles = (dram_bytes as f64 / cfg.dram_bytes_per_cycle()).ceil() as u64;
    let stall_cycles = dram_cycles.saturating_sub(compute_cycles);

    CmosLayerStats {
        name: layer.name().to_owned(),
        compute_cycles,
        stall_cycles,
        macs,
        dram_bytes,
        mappings,
    }
}

/// Simulate a network at the Table II batch (unified buffer capacity
/// over the largest working set, capped at 30).
pub fn simulate_network(cfg: &CmosNpuConfig, net: &Network) -> CmosNetworkStats {
    let batch = batching::max_batch(net, cfg.buffer_bytes, 1.0, batching::PAPER_BATCH_CAP);
    simulate_network_with_batch(cfg, net, batch)
}

/// Simulate a network at an explicit batch.
///
/// # Panics
///
/// Panics if `batch == 0`.
pub fn simulate_network_with_batch(
    cfg: &CmosNpuConfig,
    net: &Network,
    batch: u32,
) -> CmosNetworkStats {
    assert!(batch > 0, "batch must be positive");
    CmosNetworkStats {
        network: net.name().to_owned(),
        design: cfg.name.clone(),
        batch,
        frequency_ghz: cfg.frequency_ghz,
        peak_tmacs: cfg.peak_tmacs(),
        chip_power_w: cfg.chip_power_w,
        layers: net.iter().map(|l| simulate_layer(cfg, l, batch)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::zoo;

    #[test]
    fn tpu_sustains_double_digit_tmacs_on_convnets() {
        let tpu = CmosNpuConfig::tpu_core();
        for net in [zoo::resnet50(), zoo::vgg16(), zoo::googlenet()] {
            let s = simulate_network(&tpu, &net);
            let t = s.effective_tmacs();
            assert!(t > 3.0 && t < 46.0, "{}: {t:.1} TMAC/s", net.name());
            assert!(s.pe_utilization() <= 1.0);
        }
    }

    #[test]
    fn vgg_utilizes_tpu_better_than_mobilenet() {
        // Depthwise layers map terribly onto a 256-tall array.
        let tpu = CmosNpuConfig::tpu_core();
        let vgg = simulate_network(&tpu, &zoo::vgg16()).pe_utilization();
        let mob = simulate_network(&tpu, &zoo::mobilenet()).pe_utilization();
        assert!(vgg > 1.5 * mob, "VGG {vgg:.3} vs MobileNet {mob:.3}");
    }

    #[test]
    fn macs_conserved() {
        let tpu = CmosNpuConfig::tpu_core();
        let net = zoo::alexnet();
        let s = simulate_network_with_batch(&tpu, &net, 4);
        assert_eq!(s.total_macs(), net.total_macs(4));
    }

    #[test]
    fn os_dataflow_also_runs() {
        let mut cfg = CmosNpuConfig::tpu_core();
        cfg.dataflow = Dataflow::OutputStationary;
        let s = simulate_network(&cfg, &zoo::googlenet());
        assert!(s.effective_tmacs() > 0.5);
    }

    #[test]
    fn bigger_batch_helps_fc_heavy_nets() {
        let tpu = CmosNpuConfig::tpu_core();
        let net = zoo::alexnet();
        let t1 = simulate_network_with_batch(&tpu, &net, 1).effective_tmacs();
        let t16 = simulate_network_with_batch(&tpu, &net, 16).effective_tmacs();
        assert!(t16 > 1.5 * t1, "batch 16 {t16:.2} vs batch 1 {t1:.2}");
    }

    #[test]
    fn perf_per_watt_uses_published_power() {
        let tpu = CmosNpuConfig::tpu_core();
        let s = simulate_network(&tpu, &zoo::resnet50());
        let ppw = s.macs_per_s_per_w();
        assert!((ppw - s.effective_tmacs() * 1e12 / 40.0).abs() < 1.0);
    }
}
