//! Cryocooler wall-power model.

use serde::{Deserialize, Serialize};

/// A cryogenic cooling model: wall power per watt removed at the cold
/// stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoolingModel {
    /// Cold-stage temperature, kelvin.
    pub temperature_k: f64,
    /// Wall watts per cold watt (the paper's "400 times" factor).
    pub overhead_factor: f64,
}

impl CoolingModel {
    /// The paper's 4 K operating point: 400 W wall per 4 K watt
    /// (Holmes et al. 2013).
    pub fn holmes_4k() -> Self {
        CoolingModel {
            temperature_k: 4.2,
            overhead_factor: 400.0,
        }
    }

    /// Free cooling — the paper's quantum-computing-facility scenario
    /// where the cryoplant is already paid for.
    pub fn free() -> Self {
        CoolingModel {
            temperature_k: 4.2,
            overhead_factor: 1.0,
        }
    }

    /// Carnot-limited ideal overhead between `temperature_k` and a
    /// 300 K ambient, with a practical efficiency fraction
    /// (large cryoplants reach a few percent of Carnot; 400× at 4 K
    /// corresponds to ≈18% of Carnot).
    pub fn carnot(temperature_k: f64, percent_of_carnot: f64) -> Self {
        assert!(
            temperature_k > 0.0 && temperature_k < 300.0,
            "cold stage must be between 0 and 300 K"
        );
        assert!(
            percent_of_carnot > 0.0 && percent_of_carnot <= 100.0,
            "efficiency must be in (0, 100] percent"
        );
        let carnot = (300.0 - temperature_k) / temperature_k;
        CoolingModel {
            temperature_k,
            overhead_factor: carnot / (percent_of_carnot / 100.0),
        }
    }

    /// Total wall power for a chip dissipating `chip_w` at the cold
    /// stage (the paper multiplies chip power by the overhead factor).
    pub fn wall_power_w(&self, chip_w: f64) -> f64 {
        chip_w * self.overhead_factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_powers_reproduce() {
        let c = CoolingModel::holmes_4k();
        // RSFQ-SuperNPU: 964 W chip → ~3.8e5 W wall (Table III).
        let rsfq = c.wall_power_w(964.0);
        assert!((rsfq - 3.856e5).abs() / 3.856e5 < 0.01, "{rsfq:.0}");
        // ERSFQ-SuperNPU: 1.9 W chip → ~760 W wall (Table III: 751 W).
        let ersfq = c.wall_power_w(1.9);
        assert!((ersfq - 751.0).abs() / 751.0 < 0.05, "{ersfq:.0}");
    }

    #[test]
    fn free_cooling_charges_chip_power_only() {
        assert_eq!(CoolingModel::free().wall_power_w(1.9), 1.9);
    }

    #[test]
    fn carnot_at_18_percent_is_about_400x() {
        let c = CoolingModel::carnot(4.2, 17.6);
        assert!(
            (c.overhead_factor - 400.0).abs() < 20.0,
            "overhead {:.0}",
            c.overhead_factor
        );
    }

    #[test]
    #[should_panic(expected = "cold stage")]
    fn carnot_rejects_hot_cold_stage() {
        let _ = CoolingModel::carnot(301.0, 10.0);
    }
}
