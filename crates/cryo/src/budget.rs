//! System-level power budgeting.
//!
//! The paper's Table III charges only the 4 K chip and its cooling;
//! a deployed system also powers room-temperature DRAM and the I/O
//! chain that crosses the thermal boundary. This module composes a
//! whole-system budget so perf/W claims can be made at the system
//! rather than the chip level.

use serde::{Deserialize, Serialize};

use crate::cooling::CoolingModel;

/// Power drawn per GB/s of cross-boundary memory traffic, watts —
/// a representative HBM+PHY figure (~10 pJ/bit ≈ 0.08 W per GB/s).
pub const MEMORY_W_PER_GBS: f64 = 0.08;

/// A whole-system power budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemBudget {
    /// Power dissipated at the cold stage, watts.
    pub cold_chip_w: f64,
    /// Wall power for cooling it (excluding the chip power itself),
    /// watts.
    pub cooling_w: f64,
    /// Room-temperature memory and I/O power, watts.
    pub memory_w: f64,
}

impl SystemBudget {
    /// Compose a budget from the chip power, its cooling model, and
    /// the sustained off-chip bandwidth.
    ///
    /// # Panics
    ///
    /// Panics on negative inputs.
    pub fn new(cold_chip_w: f64, cooling: &CoolingModel, sustained_gbs: f64) -> Self {
        assert!(
            cold_chip_w >= 0.0 && sustained_gbs >= 0.0,
            "powers must be non-negative"
        );
        let wall = cooling.wall_power_w(cold_chip_w);
        SystemBudget {
            cold_chip_w,
            cooling_w: (wall - cold_chip_w).max(0.0),
            memory_w: sustained_gbs * MEMORY_W_PER_GBS,
        }
    }

    /// Total wall power, watts.
    pub fn total_w(&self) -> f64 {
        self.cold_chip_w + self.cooling_w + self.memory_w
    }

    /// Fraction of wall power spent on cooling.
    pub fn cooling_fraction(&self) -> f64 {
        if self.total_w() == 0.0 {
            0.0
        } else {
            self.cooling_w / self.total_w()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cooled_ersfq_system_is_cooling_dominated() {
        // 2.3 W chip at 400x cooling + 300 GB/s of HBM.
        let b = SystemBudget::new(2.3, &CoolingModel::holmes_4k(), 300.0);
        assert!(
            b.cooling_fraction() > 0.9,
            "fraction {:.2}",
            b.cooling_fraction()
        );
        // Memory power (24 W) is small next to the ~918 W of cooling.
        assert!((b.memory_w - 24.0).abs() < 1e-9);
        assert!((b.total_w() - (2.3 * 400.0 + 24.0)).abs() < 1e-9);
    }

    #[test]
    fn free_cooling_makes_memory_dominant() {
        let b = SystemBudget::new(2.3, &CoolingModel::free(), 300.0);
        assert_eq!(b.cooling_w, 0.0);
        assert!(b.memory_w > b.cold_chip_w);
    }

    #[test]
    fn zero_system_is_zero() {
        let b = SystemBudget::new(0.0, &CoolingModel::holmes_4k(), 0.0);
        assert_eq!(b.total_w(), 0.0);
        assert_eq!(b.cooling_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_power_panics() {
        let _ = SystemBudget::new(-1.0, &CoolingModel::free(), 0.0);
    }
}
