//! Performance-per-watt accounting.

use serde::{Deserialize, Serialize};

/// A (performance, power) point; performance units are caller-chosen
/// but must match across compared points (the paper uses TMAC/s).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerEfficiency {
    /// Throughput (e.g., TMAC/s).
    pub performance: f64,
    /// Power, watts.
    pub power_w: f64,
}

impl PowerEfficiency {
    /// Construct, validating positivity.
    ///
    /// # Panics
    ///
    /// Panics if either quantity is non-positive or non-finite.
    pub fn new(performance: f64, power_w: f64) -> Self {
        assert!(
            performance.is_finite() && performance > 0.0,
            "performance must be positive"
        );
        assert!(
            power_w.is_finite() && power_w > 0.0,
            "power must be positive"
        );
        PowerEfficiency {
            performance,
            power_w,
        }
    }

    /// Performance per watt.
    pub fn per_watt(&self) -> f64 {
        self.performance / self.power_w
    }

    /// This point's perf/W relative to a reference (the paper
    /// normalizes to the TPU) — Table III's right column.
    pub fn relative_to(&self, reference: &PowerEfficiency) -> f64 {
        self.per_watt() / reference.per_watt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reproduce the structure of Table III with the paper's numbers:
    /// speed-up 23×, TPU 40 W.
    #[test]
    fn table3_normalized_efficiencies() {
        let tpu = PowerEfficiency::new(1.0, 40.0);
        // RSFQ without cooling: 23x perf at 964 W → 0.95.
        let rsfq = PowerEfficiency::new(23.0, 964.0);
        assert!((rsfq.relative_to(&tpu) - 0.95).abs() < 0.02);
        // RSFQ with cooling: ~0.002.
        let rsfq_cool = PowerEfficiency::new(23.0, 964.0 * 400.0);
        assert!((rsfq_cool.relative_to(&tpu) - 0.0024).abs() < 0.001);
        // ERSFQ without cooling: 23x at 1.9 W → ≈490.
        let ersfq = PowerEfficiency::new(23.0, 1.9);
        let r = ersfq.relative_to(&tpu);
        assert!((r - 484.0).abs() < 10.0, "{r:.0}");
        // ERSFQ with cooling: ≈1.2.
        let ersfq_cool = PowerEfficiency::new(23.0, 1.9 * 400.0);
        let r = ersfq_cool.relative_to(&tpu);
        assert!((r - 1.21).abs() < 0.05, "{r:.2}");
    }

    #[test]
    fn relative_is_ratio_of_per_watt() {
        let a = PowerEfficiency::new(10.0, 2.0);
        let b = PowerEfficiency::new(5.0, 5.0);
        assert!((a.relative_to(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power must be positive")]
    fn zero_power_panics() {
        let _ = PowerEfficiency::new(1.0, 0.0);
    }
}
