//! # cryo
//!
//! Cooling-cost and performance-per-watt accounting for 4 K
//! superconducting accelerators, as used in the paper's Table III.
//!
//! The paper follows Holmes, Ripple & Manheimer ("Energy-efficient
//! superconducting computing — power budgets and requirements", IEEE
//! TAS 2013) and charges **400 W of wall power per watt dissipated at
//! 4 K**. The same study motivates the "free cooling" scenario — a
//! facility that already operates a cryoplant (as quantum-computing
//! installations do) amortizes the cooling away.
//!
//! # Example
//!
//! ```
//! use cryo::{CoolingModel, PowerEfficiency};
//!
//! let cooling = CoolingModel::holmes_4k();
//! assert_eq!(cooling.wall_power_w(1.9), 1.9 * 400.0);
//!
//! // Table III bottom row: ERSFQ-SuperNPU with cooling vs the TPU.
//! let sfq = PowerEfficiency::new(23.0, cooling.wall_power_w(1.9));
//! let tpu = PowerEfficiency::new(1.0, 40.0);
//! let ratio = sfq.relative_to(&tpu);
//! assert!(ratio > 1.0, "still ahead of the TPU: {ratio:.2}x");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod cooling;
mod efficiency;

pub use budget::{SystemBudget, MEMORY_W_PER_GBS};
pub use cooling::CoolingModel;
pub use efficiency::PowerEfficiency;
