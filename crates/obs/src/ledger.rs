//! Run-ledger provenance: every run self-describing.
//!
//! Each bench/figure bin records a [`RunManifest`] — schema version,
//! bin name and args, every `SUPERNPU_*` knob in effect, thread/lane/
//! chunk config, seeds, cargo profile and target, wall-clock duration,
//! terminal outcome, cache hit/miss totals, and the relative path of
//! every artifact the run wrote. The manifest lands atomically as
//! `results/ledger/<bin>-<seq>.json` plus one compact line appended to
//! `results/ledger/ledger.jsonl`, the index the `supernpu_report`
//! observatory aggregates across runs.
//!
//! Gating mirrors the metrics/trace/profile knobs: `SUPERNPU_LEDGER`
//! unset keeps the ledger **on** with the default directory (a run
//! must self-describe without any env setup); `0`/`false`/`off`
//! disables it (the disabled fast path is a single relaxed atomic
//! load, so outputs are bit-identical to a build without the ledger);
//! any other value overrides the ledger directory.
//!
//! Ledger I/O failures are *visible but never fatal*: they bump the
//! always-on `obs.ledger.write_errors` counter and print to stderr —
//! a full disk must not take down the sweep it was auditing.
//!
//! The atomic temp+fsync+rename writer is a local mirror of
//! `sfq_guard::checkpoint::atomic_write`: `sfq-guard` depends on this
//! crate (its checkpoint writer bumps an obs counter), so calling back
//! into it from here would be a dependency cycle.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Default ledger directory, relative to the working directory of the
/// run (the same convention the trace/metrics sinks use).
pub const DEFAULT_DIR: &str = "results/ledger";

// ------------------------------------------------------------- enable gate

/// Tri-state: 0 = not yet read from the environment, 1 = off, 2 = on.
static LEDGER_STATE: AtomicU8 = AtomicU8::new(0);

fn dir_slot() -> &'static Mutex<Option<PathBuf>> {
    static DIR: OnceLock<Mutex<Option<PathBuf>>> = OnceLock::new();
    DIR.get_or_init(|| Mutex::new(None))
}

/// Whether ledger recording is on.
///
/// First call resolves the `SUPERNPU_LEDGER` env var (unset → on with
/// [`DEFAULT_DIR`]; empty/`0`/`false`/`off` → off; anything else → on
/// with that value as the directory); after that — or after
/// [`set_dir`] — it is a single relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    match LEDGER_STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_ledger_state(),
    }
}

#[cold]
fn init_ledger_state() -> bool {
    let (on, dir) = match std::env::var("SUPERNPU_LEDGER") {
        Err(_) => (true, Some(PathBuf::from(DEFAULT_DIR))),
        Ok(v) if !crate::truthy(&v) => (false, None),
        Ok(v) => (true, Some(PathBuf::from(v.trim()))),
    };
    let mut slot = lock_ignore_poison(dir_slot());
    if slot.is_none() {
        *slot = dir;
    }
    LEDGER_STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Programmatically point the ledger at `dir` (`Some`) or disable it
/// (`None`), overriding the env var. Tests use this to isolate their
/// ledger directories.
pub fn set_dir(dir: Option<&Path>) {
    let mut slot = lock_ignore_poison(dir_slot());
    match dir {
        Some(d) => {
            *slot = Some(d.to_path_buf());
            LEDGER_STATE.store(2, Ordering::Relaxed);
        }
        None => {
            *slot = None;
            LEDGER_STATE.store(1, Ordering::Relaxed);
        }
    }
}

/// The directory manifests land in, if the ledger is enabled.
#[must_use]
pub fn dir() -> Option<PathBuf> {
    if !enabled() {
        return None;
    }
    lock_ignore_poison(dir_slot()).clone()
}

fn lock_ignore_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

// ---------------------------------------------------------------- manifest

/// One `SUPERNPU_*` environment knob captured at flush time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KnobSetting {
    /// Variable name, e.g. `SUPERNPU_THREADS`.
    pub name: String,
    /// Raw value as the process saw it.
    pub value: String,
}

/// Terminal outcome of a run, most severe wins when several apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunOutcome {
    /// Clean exit.
    Ok,
    /// A bench/regression gate failed (any `fail()`/`die` exit).
    GateFail,
    /// The run panicked (resolved automatically at flush time).
    Panicked,
    /// A deadline/step budget cancelled part of the work.
    BudgetExceeded,
}

impl RunOutcome {
    /// Severity rank: a later outcome only replaces an earlier one if
    /// it is more severe, so `Panicked` survives a subsequent
    /// `GateFail` report.
    #[must_use]
    pub fn rank(self) -> u8 {
        match self {
            RunOutcome::Ok => 0,
            RunOutcome::BudgetExceeded => 1,
            RunOutcome::GateFail => 2,
            RunOutcome::Panicked => 3,
        }
    }
}

/// Everything needed to reproduce and audit one bench/figure run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Manifest schema version ([`crate::SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Binary name as passed to [`begin`].
    pub bin: String,
    /// Sequence number within this ledger directory (1-based).
    pub seq: u64,
    /// Command-line arguments after the binary name.
    pub args: Vec<String>,
    /// Every `SUPERNPU_*` env var in effect, name-sorted.
    pub env: Vec<KnobSetting>,
    /// Worker thread count in effect.
    pub threads: u64,
    /// Explicit chunk size (0 = auto granularity).
    pub chunk: u64,
    /// SIMD lane width in effect.
    pub lanes: u64,
    /// Seeds the run used (env-derived plus [`record_seed`]).
    pub seeds: Vec<u64>,
    /// Cargo profile the binary was built under.
    pub cargo_profile: String,
    /// `<arch>-<os>` of the host.
    pub target: String,
    /// Wall-clock duration from [`begin`] to the final flush.
    pub duration_ms: f64,
    /// Terminal outcome.
    pub outcome: RunOutcome,
    /// Sum of all `*.cache_hit` counters at flush.
    pub cache_hits: u64,
    /// Sum of all `*.cache_miss` counters at flush.
    pub cache_misses: u64,
    /// Relative paths of every artifact the run wrote.
    pub artifacts: Vec<String>,
}

// ------------------------------------------------------------- run state

struct RunState {
    bin: String,
    args: Vec<String>,
    started: Instant,
    threads: Option<u64>,
    chunk: Option<u64>,
    lanes: Option<u64>,
    seeds: Vec<u64>,
    artifacts: Vec<String>,
    outcome: RunOutcome,
    seq: Option<u64>,
    jsonl_done: bool,
}

fn run_state() -> &'static Mutex<Option<RunState>> {
    static STATE: OnceLock<Mutex<Option<RunState>>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(None))
}

/// Open a run record for `bin`. Called once at the top of every
/// bench/figure bin (via `bench::session::begin`); a second call
/// replaces the record. No-op when the ledger is disabled.
pub fn begin(bin: &str) {
    if !enabled() {
        return;
    }
    let mut state = lock_ignore_poison(run_state());
    *state = Some(RunState {
        bin: bin.to_owned(),
        args: std::env::args().skip(1).collect(),
        started: Instant::now(),
        threads: None,
        chunk: None,
        lanes: None,
        seeds: Vec::new(),
        artifacts: Vec::new(),
        outcome: RunOutcome::Ok,
        seq: None,
        jsonl_done: false,
    });
}

/// Record the resolved thread/chunk/lane configuration. The session
/// wrapper feeds this from `sfq_par` so the manifest reflects the
/// values actually in effect, not just the raw env strings.
pub fn set_config(threads: u64, chunk: u64, lanes: u64) {
    if !enabled() {
        return;
    }
    if let Some(st) = lock_ignore_poison(run_state()).as_mut() {
        st.threads = Some(threads);
        st.chunk = Some(chunk);
        st.lanes = Some(lanes);
    }
}

/// Record a seed the run used (deduplicated, order-preserving).
pub fn record_seed(seed: u64) {
    if !enabled() {
        return;
    }
    if let Some(st) = lock_ignore_poison(run_state()).as_mut() {
        if !st.seeds.contains(&seed) {
            st.seeds.push(seed);
        }
    }
}

/// Record an artifact path the run wrote (stored relative to the
/// current directory when possible, deduplicated).
pub fn record_artifact(path: &Path) {
    if !enabled() {
        return;
    }
    let rel = std::env::current_dir()
        .ok()
        .and_then(|cwd| path.strip_prefix(&cwd).ok().map(Path::to_path_buf))
        .unwrap_or_else(|| path.to_path_buf());
    let rel = rel.display().to_string();
    if let Some(st) = lock_ignore_poison(run_state()).as_mut() {
        if !st.artifacts.contains(&rel) {
            st.artifacts.push(rel);
        }
    }
}

/// Report a terminal outcome. Only escalates: a less severe outcome
/// never overwrites a more severe one already recorded.
pub fn set_outcome(outcome: RunOutcome) {
    if !enabled() {
        return;
    }
    if let Some(st) = lock_ignore_poison(run_state()).as_mut() {
        if outcome.rank() > st.outcome.rank() {
            st.outcome = outcome;
        }
    }
}

/// Shorthand for [`set_outcome`]`(RunOutcome::BudgetExceeded)` — the
/// resilient sweep runner calls this when a deadline or step budget
/// cancelled points.
pub fn note_budget_exceeded() {
    set_outcome(RunOutcome::BudgetExceeded);
}

// ------------------------------------------------------------------ flush

/// Flush the open run record (if any) to `<dir>/<bin>-<seq>.json` and
/// append its compact form to `<dir>/ledger.jsonl`. Safe to call more
/// than once — the panic hook and the exit guard both flush; the
/// second call rewrites the same manifest (same `seq`) and skips the
/// already-appended jsonl line. Failures bump
/// `obs.ledger.write_errors` and print to stderr, never propagate.
pub fn flush() {
    if !enabled() {
        return;
    }
    let Some(dir) = dir() else { return };
    let mut state = lock_ignore_poison(run_state());
    let Some(st) = state.as_mut() else { return };
    if std::thread::panicking() && RunOutcome::Panicked.rank() > st.outcome.rank() {
        st.outcome = RunOutcome::Panicked;
    }
    let seq = match st.seq {
        Some(s) => s,
        None => {
            let s = next_seq(&dir, &st.bin);
            st.seq = Some(s);
            s
        }
    };
    let manifest = build_manifest(st, seq);
    let path = dir.join(format!("{}-{seq:04}.json", st.bin));
    let (pretty, line) = match (
        serde_json::to_string_pretty(&manifest),
        serde_json::to_string(&manifest),
    ) {
        (Ok(p), Ok(l)) => (p, l),
        (Err(e), _) | (_, Err(e)) => {
            note_write_error("manifest serialize", &path, &e.to_string());
            return;
        }
    };
    if let Err(e) = atomic_write(&path, pretty.as_bytes()) {
        note_write_error("manifest write", &path, &e.to_string());
        return;
    }
    if !st.jsonl_done {
        match append_jsonl(&dir, &line) {
            Ok(()) => st.jsonl_done = true,
            Err(e) => {
                note_write_error("jsonl append", &dir.join("ledger.jsonl"), &e.to_string());
            }
        }
    }
}

fn note_write_error(what: &str, path: &Path, e: &str) {
    crate::counter("obs.ledger.write_errors").inc();
    eprintln!("ledger: {what} failed at {}: {e}", path.display());
}

fn build_manifest(st: &RunState, seq: u64) -> RunManifest {
    let mut env: Vec<KnobSetting> = std::env::vars()
        .filter(|(k, _)| k.starts_with("SUPERNPU_"))
        .map(|(name, value)| KnobSetting { name, value })
        .collect();
    env.sort_by(|a, b| a.name.cmp(&b.name));
    let mut seeds = st.seeds.clone();
    for var in ["SUPERNPU_FAULT_SEED", "SUPERNPU_CHAOS"] {
        if let Some(s) = env_u64(var) {
            if !seeds.contains(&s) {
                seeds.push(s);
            }
        }
    }
    let snap = crate::snapshot();
    let sum_suffix = |suffix: &str| -> u64 {
        snap.counters
            .iter()
            .filter(|c| c.name.ends_with(suffix))
            .map(|c| c.value)
            .sum()
    };
    RunManifest {
        schema_version: crate::SCHEMA_VERSION,
        bin: st.bin.clone(),
        seq,
        args: st.args.clone(),
        env,
        threads: st.threads.unwrap_or_else(default_threads),
        chunk: st.chunk.or_else(|| env_u64("SUPERNPU_CHUNK")).unwrap_or(0),
        lanes: st.lanes.or_else(|| env_u64("SUPERNPU_LANES")).unwrap_or(4),
        seeds,
        cargo_profile: if cfg!(debug_assertions) {
            "debug".to_owned()
        } else {
            "release".to_owned()
        },
        target: format!("{}-{}", std::env::consts::ARCH, std::env::consts::OS),
        duration_ms: st.started.elapsed().as_secs_f64() * 1e3,
        outcome: st.outcome,
        cache_hits: sum_suffix(".cache_hit"),
        cache_misses: sum_suffix(".cache_miss"),
        artifacts: st.artifacts.clone(),
    }
}

fn env_u64(var: &str) -> Option<u64> {
    std::env::var(var).ok().and_then(|v| v.trim().parse().ok())
}

/// Env-mirrored fallback for the thread count when the session never
/// called [`set_config`] (matches `sfq_par`'s resolution order; that
/// crate depends on this one, so it cannot be asked directly).
fn default_threads() -> u64 {
    env_u64("SUPERNPU_THREADS")
        .filter(|&t| t > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get() as u64))
}

/// Next free sequence number for `bin` in `dir`: one past the largest
/// existing `<bin>-<n>.json`, starting at 1 on a fresh directory.
#[must_use]
pub fn next_seq(dir: &Path, bin: &str) -> u64 {
    let prefix = format!("{bin}-");
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 1;
    };
    let mut max = 0u64;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix(&prefix) else {
            continue;
        };
        let Some(num) = rest.strip_suffix(".json") else {
            continue;
        };
        if let Ok(n) = num.parse::<u64>() {
            max = max.max(n);
        }
    }
    max + 1
}

// --------------------------------------------------------- atomic writer

/// The temporary sibling [`atomic_write`] stages into: `<path>.tmp`.
/// Exposed so torn-write tests can name it.
#[must_use]
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map_or_else(
        || std::ffi::OsString::from("manifest"),
        std::ffi::OsStr::to_os_string,
    );
    name.push(".tmp");
    path.with_file_name(name)
}

/// Atomically replace `path` with `bytes`: temp file in the same
/// directory → write → fsync → rename, creating missing parents. A
/// crash mid-write leaves at worst a torn `.tmp` sibling; the
/// destination is always the last complete manifest. (Local mirror of
/// `sfq_guard::checkpoint::atomic_write` — see the module docs for
/// why the guard crate cannot be used from here.)
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    let tmp = tmp_path(path);
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Append one line to `<dir>/ledger.jsonl` with a single `O_APPEND`
/// write, so concurrent bins sharing a ledger directory interleave at
/// line granularity and the file stays valid JSONL. Exposed for the
/// concurrency test.
pub fn append_jsonl(dir: &Path, json_line: &str) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join("ledger.jsonl"))?;
    let mut line = String::with_capacity(json_line.len() + 1);
    line.push_str(json_line);
    line.push('\n');
    f.write_all(line.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_ranks_are_strictly_ordered() {
        assert!(RunOutcome::Panicked.rank() > RunOutcome::GateFail.rank());
        assert!(RunOutcome::GateFail.rank() > RunOutcome::BudgetExceeded.rank());
        assert!(RunOutcome::BudgetExceeded.rank() > RunOutcome::Ok.rank());
    }

    #[test]
    fn seq_scan_ignores_foreign_files() {
        let dir = std::env::temp_dir().join(format!("sfq_ledger_seq_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(next_seq(&dir, "fig20"), 1);
        std::fs::write(dir.join("fig20-0003.json"), b"{}").unwrap();
        std::fs::write(dir.join("fig21-0009.json"), b"{}").unwrap();
        std::fs::write(dir.join("ledger.jsonl"), b"").unwrap();
        assert_eq!(next_seq(&dir, "fig20"), 4);
        assert_eq!(next_seq(&dir, "fig21"), 10);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
