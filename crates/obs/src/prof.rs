//! Hierarchical self-profiler with flamegraph export.
//!
//! The metrics half of this crate answers *how much*, the trace half
//! answers *when*; this module answers *where the time went*. Each
//! thread keeps a call-path tree of scoped [`Frame`]s; every unique
//! path accumulates **inclusive** time, **self** time (inclusive minus
//! time spent in child frames), call counts and attached unit counters
//! ([`count`]: newton iterations, LU factors, cache hits, bytes).
//! [`snapshot`] merges all threads into one deterministic
//! [`ProfileReport`] with three export views:
//!
//! * [`ProfileReport::to_folded`] — collapsed-stack text, one line per
//!   path, directly consumable by `inferno` / `flamegraph.pl`;
//! * the serde JSON of the report itself, including a ranked
//!   [`ProfileReport::top_self`] table;
//! * [`ProfileReport::counter_tracks`] — Perfetto counter tracks on
//!   pid [`PROFILE_PID`] via the existing [`ChromeTrace`] builder.
//!
//! ## Gating
//!
//! Profiling is off by default. Setting `SUPERNPU_PROFILE=<path>` (or
//! calling [`set_profile`]) turns it on and names the JSON output file
//! ([`flush`] also writes the collapsed stacks next to it with a
//! `.folded` extension). The disabled fast path of every helper is a
//! single relaxed atomic load — the same contract as the metrics and
//! trace gates, so frames can live in the solver's inner loops.
//! High-cardinality frames (per-design-point sweep labels) are
//! additionally gated behind `SUPERNPU_PROFILE_DETAIL=1` /
//! [`set_detail`].
//!
//! ## Hot loops
//!
//! An enabled [`frame`] costs a thread-local lookup, an uncontended
//! mutex lock and a clock read — fine per solver *run*, too heavy per
//! Newton iteration. Kernel-grade attribution instead accumulates
//! `(calls, ns)` in plain locals and merges once per run via
//! [`record_path`], which lets the caller supply exact inclusive/self
//! splits for a whole sub-tree (see `jjsim::solver`). Profiling never
//! changes a simulation result; it only observes it.

use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::trace::ChromeTrace;

/// Process id of the profile counter tracks emitted by
/// [`ProfileReport::counter_tracks`] (wall-clock tracks are pid 1,
/// cycle tracks pid 2).
pub const PROFILE_PID: u32 = 3;

/// Number of entries in the ranked [`ProfileReport::top_self`] table.
pub const TOP_SELF_N: usize = 10;

// ------------------------------------------------------------- enable gate

/// Tri-state: 0 = not yet read from the environment, 1 = off, 2 = on.
static PROF_STATE: AtomicU8 = AtomicU8::new(0);

/// Output path from `SUPERNPU_PROFILE` or [`set_profile`].
static PROF_PATH: OnceLock<Mutex<Option<PathBuf>>> = OnceLock::new();

fn prof_path_cell() -> &'static Mutex<Option<PathBuf>> {
    PROF_PATH.get_or_init(|| Mutex::new(None))
}

/// Whether frame recording is on. First call resolves the
/// `SUPERNPU_PROFILE` env var (any non-empty value enables and names
/// the output file); after that — or after [`set_profile`] — it is a
/// single relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    match PROF_STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_prof_state(),
    }
}

#[cold]
fn init_prof_state() -> bool {
    let path = std::env::var("SUPERNPU_PROFILE")
        .ok()
        .filter(|p| !p.trim().is_empty());
    let on = path.is_some();
    *prof_path_cell().lock().unwrap_or_else(|e| e.into_inner()) = path.map(PathBuf::from);
    PROF_STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Programmatically enable profiling with `path` as the [`flush`]
/// target, or disable it with `None` (overrides the env var).
pub fn set_profile(path: Option<&str>) {
    *prof_path_cell().lock().unwrap_or_else(|e| e.into_inner()) = path.map(PathBuf::from);
    PROF_STATE.store(if path.is_some() { 2 } else { 1 }, Ordering::Relaxed);
}

/// The JSON file [`flush`] writes, if profiling is enabled.
pub fn path() -> Option<PathBuf> {
    if !enabled() {
        return None;
    }
    prof_path_cell()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
}

/// Detail tri-state, same encoding as the enable gate.
static DETAIL_STATE: AtomicU8 = AtomicU8::new(0);

/// Whether high-cardinality frames (per-design-point sweep labels)
/// should be recorded. True only when profiling itself is enabled
/// *and* `SUPERNPU_PROFILE_DETAIL` (or [`set_detail`]) asks for it.
#[inline]
pub fn detail_enabled() -> bool {
    if !enabled() {
        return false;
    }
    match DETAIL_STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_detail_state(),
    }
}

#[cold]
fn init_detail_state() -> bool {
    let on = std::env::var("SUPERNPU_PROFILE_DETAIL").is_ok_and(|v| {
        let v = v.trim();
        !(v.is_empty()
            || v == "0"
            || v.eq_ignore_ascii_case("false")
            || v.eq_ignore_ascii_case("off"))
    });
    DETAIL_STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Programmatically force detail frames on or off.
pub fn set_detail(on: bool) {
    DETAIL_STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

// ----------------------------------------------------------- thread trees

/// One node of a thread's call-path tree. Self time is signed because
/// child time is subtracted as children close, before the parent adds
/// its own elapsed on exit.
#[derive(Debug)]
struct Node {
    parent: usize,
    name: String,
    children: BTreeMap<String, usize>,
    calls: u64,
    incl_ns: u64,
    self_ns: i64,
    counters: BTreeMap<String, u64>,
}

impl Node {
    fn new(parent: usize, name: String) -> Self {
        Node {
            parent,
            name,
            children: BTreeMap::new(),
            calls: 0,
            incl_ns: 0,
            self_ns: 0,
            counters: BTreeMap::new(),
        }
    }
}

/// Index of the synthetic per-thread root node (never exported).
const ROOT: usize = 0;

#[derive(Debug)]
struct ProfTree {
    nodes: Vec<Node>,
    stack: Vec<usize>,
}

impl ProfTree {
    fn new() -> Self {
        ProfTree {
            nodes: vec![Node::new(usize::MAX, String::new())],
            stack: Vec::new(),
        }
    }

    fn top(&self) -> usize {
        self.stack.last().copied().unwrap_or(ROOT)
    }

    fn intern(&mut self, parent: usize, name: &str) -> usize {
        if let Some(&idx) = self.nodes[parent].children.get(name) {
            return idx;
        }
        let idx = self.nodes.len();
        self.nodes.push(Node::new(parent, name.to_owned()));
        self.nodes[parent].children.insert(name.to_owned(), idx);
        idx
    }

    fn enter(&mut self, name: &str) {
        let parent = self.top();
        let idx = self.intern(parent, name);
        self.stack.push(idx);
    }

    fn exit(&mut self, elapsed_ns: u64) {
        // The stack can be empty if `clear` raced a live frame (tests);
        // drop the sample rather than corrupt an unrelated node.
        let Some(idx) = self.stack.pop() else { return };
        let node = &mut self.nodes[idx];
        node.calls += 1;
        node.incl_ns += elapsed_ns;
        node.self_ns += elapsed_ns as i64;
        let parent = node.parent;
        if parent != usize::MAX {
            self.nodes[parent].self_ns -= elapsed_ns as i64;
        }
    }

    fn record(&mut self, rel_path: &[&str], calls: u64, incl_ns: u64, self_ns: u64) {
        let mut idx = self.top();
        for name in rel_path {
            idx = self.intern(idx, name);
        }
        let leaf = &mut self.nodes[idx];
        leaf.calls += calls;
        leaf.incl_ns += incl_ns;
        leaf.self_ns += self_ns as i64;
        // Only a depth-1 record is a direct child of the open frame;
        // deeper paths are folded into inclusive/self figures the
        // caller already split, so the open frame was charged once via
        // the depth-1 ancestor.
        if rel_path.len() == 1 {
            let parent = self.nodes[idx].parent;
            if parent != usize::MAX {
                self.nodes[parent].self_ns -= incl_ns as i64;
            }
        }
    }

    fn count(&mut self, name: &str, n: u64) {
        let idx = self.top();
        *self.nodes[idx].counters.entry(name.to_owned()).or_insert(0) += n;
    }
}

struct ThreadProf {
    tree: Mutex<ProfTree>,
}

static PROFS: OnceLock<Mutex<Vec<Arc<ThreadProf>>>> = OnceLock::new();

fn profs() -> &'static Mutex<Vec<Arc<ThreadProf>>> {
    PROFS.get_or_init(|| Mutex::new(Vec::new()))
}

static THREADS_SEEN: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TREE: OnceLock<Arc<ThreadProf>> = const { OnceLock::new() };
}

fn with_tree<R>(f: impl FnOnce(&mut ProfTree) -> R) -> R {
    TREE.with(|cell| {
        let tp = cell.get_or_init(|| {
            THREADS_SEEN.fetch_add(1, Ordering::Relaxed);
            let tp = Arc::new(ThreadProf {
                tree: Mutex::new(ProfTree::new()),
            });
            profs()
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(Arc::clone(&tp));
            tp
        });
        let mut tree = tp.tree.lock().unwrap_or_else(|e| e.into_inner());
        f(&mut tree)
    })
}

/// Number of per-thread trees registered so far. A thread only
/// registers on its first *enabled* frame, so this stays 0 while
/// profiling is off — the disabled-path test hangs on that.
pub fn threads_registered() -> usize {
    profs().lock().unwrap_or_else(|e| e.into_inner()).len()
}

// ------------------------------------------------------------- recording

/// Scoped profile frame: opens a node on this thread's call-path
/// stack, closes it (accumulating inclusive/self time) on drop.
/// Disabled frames carry no state and do not read the clock. Frames
/// must drop on the thread that opened them, so the guard is `!Send`.
#[must_use = "a frame records on drop; binding it to `_` drops it immediately"]
#[derive(Debug)]
pub struct Frame {
    live: Option<Instant>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for Frame {
    fn drop(&mut self) {
        if let Some(t0) = self.live.take() {
            #[allow(clippy::cast_possible_truncation)]
            let elapsed = t0.elapsed().as_nanos() as u64;
            with_tree(|t| t.exit(elapsed));
        }
    }
}

/// Open a scoped frame named `name` under the innermost open frame on
/// this thread (or at top level). One relaxed load and an inert guard
/// when profiling is disabled.
#[inline]
pub fn frame(name: &str) -> Frame {
    let live = if enabled() {
        with_tree(|t| t.enter(name));
        Some(Instant::now())
    } else {
        None
    };
    Frame {
        live,
        _not_send: PhantomData,
    }
}

/// Merge a pre-aggregated sub-tree entry at `rel_path` (relative to
/// the innermost open frame), adding `calls`, `incl_ns` inclusive and
/// `self_ns` self nanoseconds. A depth-1 path charges the open frame's
/// self time with `incl_ns`, exactly as a scoped child [`frame`]
/// would; deeper paths only touch the named node, so a caller
/// recording `["newton"]` and then `["newton", "lu_solve"]` must have
/// already split `newton`'s self time. This is the hot-loop interface:
/// accumulate `(calls, ns)` in locals, merge once per run. No-op (one
/// relaxed load) when disabled.
#[inline]
pub fn record_path(rel_path: &[&str], calls: u64, incl_ns: u64, self_ns: u64) {
    if enabled() && !rel_path.is_empty() {
        with_tree(|t| t.record(rel_path, calls, incl_ns, self_ns));
    }
}

/// Merge a leaf entry: `calls` calls totalling `ns` nanoseconds, all
/// self time, as a direct child of the innermost open frame.
#[inline]
pub fn record_leaf(name: &str, calls: u64, ns: u64) {
    record_path(&[name], calls, ns, ns);
}

/// Add `n` to unit counter `name` on the innermost open frame (newton
/// iterations, cache hits, bytes…). No-op when disabled.
#[inline]
pub fn count(name: &str, n: u64) {
    if enabled() {
        with_tree(|t| t.count(name, n));
    }
}

// --------------------------------------------------------------- reports

/// One attached unit counter of a [`PathProfile`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfCounter {
    /// Counter name.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// Merged statistics of one unique call path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathProfile {
    /// `;`-joined frame names from the outermost frame to this one.
    pub path: String,
    /// Number of frames on the path (1 = top level).
    pub depth: u32,
    /// Times the leaf frame closed (or pre-aggregated call count).
    pub calls: u64,
    /// Inclusive milliseconds.
    pub incl_ms: f64,
    /// Self milliseconds (inclusive minus child frames, floored at 0).
    pub self_ms: f64,
    /// Attached unit counters, name-sorted.
    pub counters: Vec<ProfCounter>,
}

/// One row of the ranked top-N self-time table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopSelf {
    /// 1-based rank.
    pub rank: u32,
    /// Call path.
    pub path: String,
    /// Self milliseconds.
    pub self_ms: f64,
    /// Fraction of total self time across all paths.
    pub share: f64,
}

/// Deterministic cross-thread merge of every recorded call path — the
/// payload of `profile.json`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Snapshot schema version ([`crate::SCHEMA_VERSION`]; 0 =
    /// pre-versioned).
    pub schema_version: u32,
    /// Threads that recorded at least one frame.
    pub threads: u64,
    /// Σ self milliseconds over all paths.
    pub total_self_ms: f64,
    /// All paths, sorted lexicographically (so parents precede
    /// children).
    pub paths: Vec<PathProfile>,
    /// The [`TOP_SELF_N`] paths with the largest self time.
    pub top_self: Vec<TopSelf>,
}

impl ProfileReport {
    /// The row for an exact path, if recorded.
    pub fn path(&self, path: &str) -> Option<&PathProfile> {
        self.paths.iter().find(|p| p.path == path)
    }

    /// Σ self milliseconds over the strict descendants of `path` —
    /// with exact accounting this equals the path's inclusive minus
    /// self time, so `descendants_self_ms / incl_ms` is the profiled
    /// coverage the bench gate enforces.
    pub fn descendants_self_ms(&self, path: &str) -> f64 {
        let prefix = format!("{path};");
        self.paths
            .iter()
            .filter(|p| p.path.starts_with(&prefix))
            .map(|p| p.self_ms)
            .sum()
    }

    /// Render collapsed-stack text: one `path weight` line per path,
    /// weight in integer self-microseconds — the input format of
    /// `flamegraph.pl` and `inferno-flamegraph`.
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for p in &self.paths {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let weight = (p.self_ms * 1e3).round().max(0.0) as u64;
            out.push_str(&p.path);
            out.push(' ');
            out.push_str(&weight.to_string());
            out.push('\n');
        }
        out
    }

    /// Append one Perfetto counter track per [`TopSelf`] entry to `ct`
    /// (pid [`PROFILE_PID`], one sample at ts 0 holding the self
    /// milliseconds), reusing the deterministic [`ChromeTrace`]
    /// plumbing so a profile can ride along inside a trace file.
    pub fn counter_tracks(&self, ct: &mut ChromeTrace) {
        ct.name_process(PROFILE_PID, "supernpu profile (self ms)");
        for t in &self.top_self {
            let tid = u64::from(t.rank);
            ct.name_track(PROFILE_PID, tid, &t.path);
            ct.add_counter(PROFILE_PID, tid, &t.path, 0.0, t.self_ms);
        }
    }

    /// Render the top-N table as fixed-width text for terminal output.
    pub fn render_top_table(&self) -> String {
        let mut out = format!("{:>4}  {:>12}  {:>6}  path\n", "rank", "self ms", "share");
        for t in &self.top_self {
            out.push_str(&format!(
                "{:>4}  {:>12.3}  {:>5.1}%  {}\n",
                t.rank,
                t.self_ms,
                t.share * 100.0,
                t.path
            ));
        }
        out
    }
}

#[derive(Default)]
struct MergedPath {
    depth: u32,
    calls: u64,
    incl_ns: u64,
    self_ns: i64,
    counters: BTreeMap<String, u64>,
}

/// Merge every thread's call-path tree into one [`ProfileReport`].
/// Identical paths from different threads sum; ordering is
/// lexicographic on the `;`-joined path, so two snapshots of identical
/// state compare equal regardless of thread registration order.
pub fn snapshot() -> ProfileReport {
    let mut merged: BTreeMap<String, MergedPath> = BTreeMap::new();
    let mut threads = 0u64;
    {
        let list = profs().lock().unwrap_or_else(|e| e.into_inner());
        for tp in list.iter() {
            let tree = tp.tree.lock().unwrap_or_else(|e| e.into_inner());
            if tree.nodes.len() <= 1 {
                continue;
            }
            threads += 1;
            // DFS from the root, building each node's joined path.
            let mut pending: Vec<(usize, String, u32)> = tree.nodes[ROOT]
                .children
                .values()
                .map(|&idx| (idx, tree.nodes[idx].name.clone(), 1))
                .collect();
            while let Some((idx, path, depth)) = pending.pop() {
                let node = &tree.nodes[idx];
                let m = merged.entry(path.clone()).or_default();
                m.depth = depth;
                m.calls += node.calls;
                m.incl_ns += node.incl_ns;
                m.self_ns += node.self_ns;
                for (k, v) in &node.counters {
                    *m.counters.entry(k.clone()).or_insert(0) += v;
                }
                for &child in node.children.values() {
                    let name = &tree.nodes[child].name;
                    pending.push((child, format!("{path};{name}"), depth + 1));
                }
            }
        }
    }
    let mut report = ProfileReport {
        schema_version: crate::SCHEMA_VERSION,
        threads,
        ..ProfileReport::default()
    };
    for (path, m) in merged {
        #[allow(clippy::cast_precision_loss)]
        let self_ms = (m.self_ns.max(0) as f64) / 1e6;
        #[allow(clippy::cast_precision_loss)]
        let incl_ms = (m.incl_ns as f64) / 1e6;
        report.total_self_ms += self_ms;
        report.paths.push(PathProfile {
            path,
            depth: m.depth,
            calls: m.calls,
            incl_ms,
            self_ms,
            counters: m
                .counters
                .into_iter()
                .map(|(name, value)| ProfCounter { name, value })
                .collect(),
        });
    }
    let mut ranked: Vec<(f64, String)> = report
        .paths
        .iter()
        .map(|p| (p.self_ms, p.path.clone()))
        .collect();
    ranked.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    report.top_self = ranked
        .into_iter()
        .take(TOP_SELF_N)
        .enumerate()
        .map(|(i, (self_ms, path))| TopSelf {
            #[allow(clippy::cast_possible_truncation)]
            rank: i as u32 + 1,
            path,
            self_ms,
            share: if report.total_self_ms > 0.0 {
                self_ms / report.total_self_ms
            } else {
                0.0
            },
        })
        .collect();
    report
}

/// Snapshot all threads and write the report JSON to the configured
/// [`path`], plus the collapsed stacks next to it with a `.folded`
/// extension. Safe to call repeatedly (frames keep accumulating; each
/// call rewrites both files). Returns the JSON path written, or `None`
/// when profiling is disabled.
///
/// # Errors
///
/// Propagates the filesystem error when a write fails.
pub fn flush() -> std::io::Result<Option<PathBuf>> {
    let Some(path) = path() else {
        return Ok(None);
    };
    let report = snapshot();
    let json = serde_json::to_string_pretty(&report)
        .unwrap_or_else(|e| unreachable!("profile reports serialize infallibly: {e}"));
    std::fs::write(&path, json)?;
    std::fs::write(path.with_extension("folded"), report.to_folded())?;
    Ok(Some(path))
}

/// Discard every thread's recorded frames and open stacks (tests).
/// Trees stay registered; frames live across the clear record nothing
/// when they close.
pub fn clear() {
    let list = profs().lock().unwrap_or_else(|e| e.into_inner());
    for tp in list.iter() {
        let mut tree = tp.tree.lock().unwrap_or_else(|e| e.into_inner());
        *tree = ProfTree::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test body: the thread-tree registry and enable gate are
    /// process-global, so the pieces run in a fixed order.
    #[test]
    fn prof_end_to_end() {
        // Disabled: helpers are no-ops and register nothing.
        set_profile(None);
        {
            let _f = frame("never");
        }
        record_leaf("never", 1, 100);
        count("never", 1);
        assert_eq!(
            threads_registered(),
            0,
            "disabled profiling registers nothing"
        );
        assert!(snapshot().paths.is_empty());

        // Enabled: nested frames accumulate inclusive and self time.
        set_profile(Some("unused-profile.json"));
        assert!(enabled());
        {
            let _outer = frame("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = frame("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            count("widgets", 5);
            count("widgets", 2);
        }
        let report = snapshot();
        let outer = report.path("outer").expect("outer recorded");
        let inner = report.path("outer;inner").expect("inner recorded");
        assert_eq!((outer.calls, outer.depth), (1, 1));
        assert_eq!((inner.calls, inner.depth), (1, 2));
        assert!(outer.incl_ms >= inner.incl_ms, "inclusive nests");
        assert!(
            outer.self_ms <= outer.incl_ms - inner.incl_ms + 1e-6,
            "self excludes the child: self {} incl {} child {}",
            outer.self_ms,
            outer.incl_ms,
            inner.incl_ms
        );
        assert_eq!(
            outer.counters,
            vec![ProfCounter {
                name: "widgets".into(),
                value: 7
            }]
        );
        assert!(
            (report.descendants_self_ms("outer") - inner.self_ms).abs() < 1e-9,
            "descendant self sums the subtree"
        );

        // Pre-aggregated merge: explicit incl/self splits, child
        // charged to the open frame exactly once.
        clear();
        {
            let _run = frame("run");
            record_path(&["newton"], 10, 4_000_000, 1_000_000);
            record_path(&["newton", "lu_solve"], 10, 3_000_000, 3_000_000);
        }
        let report = snapshot();
        let newton = report.path("run;newton").expect("newton merged");
        assert_eq!(newton.calls, 10);
        assert!((newton.incl_ms - 4.0).abs() < 1e-9);
        assert!((newton.self_ms - 1.0).abs() < 1e-9);
        let solve = report.path("run;newton;lu_solve").expect("lu_solve merged");
        assert!((solve.self_ms - 3.0).abs() < 1e-9);
        // The synthetic 4 ms child exceeds the frame's real elapsed
        // time, so the open frame's self time floors at 0 — the
        // depth-1 record charged it exactly once.
        let run = report.path("run").expect("run recorded");
        assert_eq!(
            run.self_ms, 0.0,
            "depth-1 record charges the open frame once"
        );

        // Cross-thread merge sums identical paths deterministically.
        clear();
        let worker = std::thread::spawn(|| {
            let _f = frame("shared");
            record_leaf("k", 1, 500_000);
        });
        worker.join().expect("worker");
        {
            let _f = frame("shared");
            record_leaf("k", 2, 250_000);
        }
        let report = snapshot();
        assert!(report.threads >= 2, "both threads merged");
        let shared = report.path("shared").expect("shared recorded");
        assert_eq!(shared.calls, 2);
        let k = report.path("shared;k").expect("k merged");
        assert_eq!(k.calls, 3);
        assert!((k.self_ms - 0.75).abs() < 1e-9);

        // Folded export: one line per path, integer weights.
        let folded = report.to_folded();
        assert_eq!(folded.lines().count(), report.paths.len());
        for line in folded.lines() {
            let (path, weight) = line.rsplit_once(' ').expect("path weight");
            assert!(!path.is_empty());
            weight.parse::<u64>().expect("integer weight");
        }
        assert!(folded.contains("shared;k 750"), "folded:\n{folded}");

        // Ranked table + Perfetto counter tracks.
        assert!(!report.top_self.is_empty());
        assert_eq!(report.top_self[0].rank, 1);
        let shares: f64 = report.top_self.iter().map(|t| t.share).sum();
        assert!(shares <= 1.0 + 1e-9);
        assert!(report.render_top_table().contains("shared"));
        let mut ct = ChromeTrace::new();
        report.counter_tracks(&mut ct);
        assert_eq!(ct.len(), report.top_self.len());
        assert!(ct.to_json().contains("supernpu profile"));

        // Snapshot JSON round-trips through the workspace serde.
        let json = serde_json::to_string_pretty(&report)
            .unwrap_or_else(|e| unreachable!("profile serializes: {e}"));
        let back: ProfileReport = serde_json::from_str(&json)
            .unwrap_or_else(|e| unreachable!("profile JSON round-trips: {e}"));
        assert_eq!(back, report);

        clear();
        set_profile(None);
    }
}
