//! # sfq-obs
//!
//! Unified tracing & metrics layer for the SuperNPU workspace: a
//! lightweight, dependency-free registry of named metrics — atomic
//! [`Counter`]s, [`Gauge`]s and log-bucketed latency [`Histogram`]s —
//! plus scoped [`Span`] timers, shared by the `jjsim` solver, the
//! characterization/estimate memo caches, the `sfq-par` worker pool,
//! the `npusim` cycle simulator and the `supernpu` sweep engine.
//!
//! ## Naming scheme
//!
//! Metric names are hierarchical, dot-separated, lowercase:
//! `<crate>.<subsystem>.<quantity>` — e.g.
//! `jjsim.solver.newton_iters`, `chars.measure.cache_hit`,
//! `par.task_ms`, `npusim.layer.stall_cycles`,
//! `explore.fig20.point_ms`. Duration histograms end in `_ms` and
//! record milliseconds.
//!
//! ## Gating
//!
//! Everything is off by default. Two env knobs (or their programmatic
//! equivalents [`set_enabled`] / [`set_log_level`]) turn it on:
//!
//! * `SUPERNPU_METRICS=1` — record metrics at the gated call sites
//!   ([`add`], [`observe`], [`gauge_set`], [`span`]).
//! * `SUPERNPU_LOG=error|warn|info|debug|trace` — emit [`log`] lines
//!   on stderr at or above the given level.
//!
//! The disabled fast path of every gated helper is a single relaxed
//! atomic load followed by an early return: no locking, no allocation,
//! no clock read — cheap enough to leave in the solver's inner loops.
//! Metrics can never change a simulation result; they only count it.
//!
//! A handful of *always-on* counters predate this crate (the
//! `jjsim::transient_runs()` and cache hit/miss counters migrated from
//! ad-hoc statics); those use [`counter`] handles directly and keep
//! recording with metrics off, exactly as their former statics did —
//! one relaxed atomic add per event.
//!
//! ## Reading the numbers
//!
//! [`snapshot`] returns a serde-serializable [`MetricsReport`] (stable
//! name-sorted order); [`render_table`] formats the live registry as a
//! fixed-width human-readable table; [`dump_on_exit`] returns a guard
//! that prints that table on drop when metrics are enabled.
//!
//! # Example
//!
//! ```
//! sfq_obs::set_enabled(true);
//! sfq_obs::inc("demo.events");
//! sfq_obs::observe("demo.latency_ms", 0.25);
//! {
//!     let _span = sfq_obs::span("demo.block_ms"); // records on drop
//! }
//! let report = sfq_obs::snapshot();
//! assert!(report.counters.iter().any(|c| c.name == "demo.events"));
//! sfq_obs::set_enabled(false);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ledger;
pub mod prof;
pub mod progress;
pub mod trace;

/// Schema version stamped into every persisted snapshot this crate
/// (and the bench reports downstream) writes: [`MetricsReport`],
/// [`prof::ProfileReport`], [`ledger::RunManifest`] and the
/// `BENCH_*.json` files. Bump on any field change so the bench gate
/// can reject cross-version comparisons with one clear error instead
/// of a field-by-field mismatch spray.
pub const SCHEMA_VERSION: u32 = 1;

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{OnceLock, RwLock};
use std::time::Instant;

use serde::{Deserialize, Serialize};

// ------------------------------------------------------------- enable gate

/// Tri-state: 0 = not yet read from the environment, 1 = off, 2 = on.
static METRICS_STATE: AtomicU8 = AtomicU8::new(0);

/// Whether gated metric recording is on.
///
/// First call resolves the `SUPERNPU_METRICS` env var (any value other
/// than empty, `0`, `false` or `off` enables); after that — or after
/// [`set_enabled`] — it is a single relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    match METRICS_STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_metrics_state(),
    }
}

#[cold]
fn init_metrics_state() -> bool {
    let on = std::env::var("SUPERNPU_METRICS").is_ok_and(|v| truthy(&v));
    METRICS_STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

pub(crate) fn truthy(v: &str) -> bool {
    let v = v.trim();
    !(v.is_empty() || v == "0" || v.eq_ignore_ascii_case("false") || v.eq_ignore_ascii_case("off"))
}

/// Programmatically force metrics on or off (overrides the env var).
pub fn set_enabled(on: bool) {
    METRICS_STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

// ---------------------------------------------------------------- logging

/// Log severity for [`log`], most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or result-affecting conditions.
    Error = 1,
    /// Suspicious but survivable conditions.
    Warn = 2,
    /// Coarse progress (one line per sweep, not per point).
    Info = 3,
    /// Per-point / per-run detail.
    Debug = 4,
    /// Inner-loop detail.
    Trace = 5,
}

impl Level {
    fn tag(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

/// 0 = unread, 1 = off, otherwise `Level as u8 + 1`.
static LOG_STATE: AtomicU8 = AtomicU8::new(0);

/// Whether a [`log`] call at `level` would print.
#[inline]
pub fn log_enabled(level: Level) -> bool {
    let s = LOG_STATE.load(Ordering::Relaxed);
    let s = if s == 0 { init_log_state() } else { s };
    s > level as u8
}

#[cold]
fn init_log_state() -> u8 {
    let s = match std::env::var("SUPERNPU_LOG") {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "error" => Level::Error as u8 + 1,
            "warn" | "warning" => Level::Warn as u8 + 1,
            "info" | "1" | "on" | "true" => Level::Info as u8 + 1,
            "debug" => Level::Debug as u8 + 1,
            "trace" => Level::Trace as u8 + 1,
            _ => 1,
        },
        Err(_) => 1,
    };
    LOG_STATE.store(s, Ordering::Relaxed);
    s
}

/// Programmatically set the log threshold (`None` silences all logs).
pub fn set_log_level(level: Option<Level>) {
    LOG_STATE.store(level.map_or(1, |l| l as u8 + 1), Ordering::Relaxed);
}

/// Emit one log line on stderr if `level` is enabled. The message
/// closure is only evaluated when the line will actually print, so a
/// disabled call costs one relaxed atomic load.
#[inline]
pub fn log(level: Level, msg: impl FnOnce() -> String) {
    if log_enabled(level) {
        eprintln!("[supernpu:{}] {}", level.tag(), msg());
    }
}

// ---------------------------------------------------------------- metrics

/// Monotonically increasing event count.
#[derive(Debug)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    fn new() -> Self {
        Counter {
            v: AtomicU64::new(0),
        }
    }

    /// Add `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }

    /// Reset to zero (tests and benchmark phases).
    pub fn reset(&self) {
        self.v.store(0, Ordering::Relaxed);
    }
}

/// Last-write-wins instantaneous value (e.g. a pool size).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    fn new() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Reset to zero.
    pub fn reset(&self) {
        self.set(0.0);
    }
}

/// Number of power-of-two histogram buckets. Bucket `i` counts values
/// in `[2^(i-20), 2^(i-19))`, so the range spans ~1 µs to ~4.6 h when
/// values are milliseconds; values below the range land in bucket 0,
/// above it in the last bucket.
pub const HISTOGRAM_BUCKETS: usize = 44;

/// Exponent offset: bucket 0 starts at 2^-20.
const BUCKET_EXP_OFFSET: i32 = 20;

/// Log-bucketed distribution of non-negative samples (latencies in
/// milliseconds by convention — name such histograms `*_ms`).
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    /// Σ samples, stored as f64 bits and updated by CAS so the total
    /// is exact regardless of interleaving (up to f64 associativity).
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

fn cas_f64(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = f(f64::from_bits(cur)).to_bits();
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Bucket index for a sample. NaN and non-positive samples land in
    /// bucket 0.
    fn bucket_of(v: f64) -> usize {
        if v.is_nan() || v <= 0.0 {
            return 0;
        }
        let idx = v.log2().floor() as i32 + BUCKET_EXP_OFFSET;
        idx.clamp(0, HISTOGRAM_BUCKETS as i32 - 1) as usize
    }

    /// Upper bound (exclusive) of bucket `i`.
    pub fn bucket_upper_bound(i: usize) -> f64 {
        debug_assert!(i < HISTOGRAM_BUCKETS);
        (2f64).powi(i as i32 - BUCKET_EXP_OFFSET + 1)
    }

    /// Record one sample.
    pub fn observe(&self, v: f64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        cas_f64(&self.sum_bits, |s| s + v);
        cas_f64(&self.min_bits, |m| m.min(v));
        cas_f64(&self.max_bits, |m| m.max(v));
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean sample, or 0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Smallest sample seen (+∞ when empty).
    pub fn min(&self) -> f64 {
        f64::from_bits(self.min_bits.load(Ordering::Relaxed))
    }

    /// Largest sample seen (−∞ when empty).
    pub fn max(&self) -> f64 {
        f64::from_bits(self.max_bits.load(Ordering::Relaxed))
    }

    /// Quantile estimate by linear interpolation inside the bucket the
    /// q-th sample falls in (`q` in `[0, 1]`), clamped to the observed
    /// `[min, max]`. Because buckets are powers of two, the estimate's
    /// relative error is bounded by one octave — the true value lies
    /// within a factor of 2 of the estimate — which is plenty to tell
    /// "p99 moved from 2 ms to 40 ms" apart from noise. Returns 0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let target = ((q * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                let lo = if i == 0 {
                    0.0
                } else {
                    Self::bucket_upper_bound(i - 1)
                };
                let hi = Self::bucket_upper_bound(i);
                let frac = (target - seen) as f64 / c as f64;
                let est = lo + (hi - lo) * frac;
                return est.clamp(self.min(), self.max());
            }
            seen += c;
        }
        self.max()
    }

    /// Clear all samples.
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
        self.min_bits
            .store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.max_bits
            .store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

// --------------------------------------------------------------- registry

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// Name → metric. A `BTreeMap` keeps snapshot/table order stable and
/// deterministic. Registered metrics are leaked (`&'static`) so hot
/// paths hold lock-free handles; the set of distinct metric names is
/// small and bounded by the instrumentation, so the leak is too.
static REGISTRY: OnceLock<RwLock<BTreeMap<String, Metric>>> = OnceLock::new();

fn registry() -> &'static RwLock<BTreeMap<String, Metric>> {
    REGISTRY.get_or_init(|| RwLock::new(BTreeMap::new()))
}

fn lookup<T>(name: &str, pick: impl Fn(&Metric) -> Option<T>) -> Option<T> {
    let map = registry().read().unwrap_or_else(|e| e.into_inner());
    map.get(name).map(|m| {
        pick(m).unwrap_or_else(|| panic!("metric `{name}` already registered as a {}", m.kind()))
    })
}

fn register<T>(
    name: &str,
    make: impl FnOnce() -> Metric,
    pick: impl Fn(&Metric) -> Option<T>,
) -> T {
    let mut map = registry().write().unwrap_or_else(|e| e.into_inner());
    let m = map.entry(name.to_owned()).or_insert_with(make);
    pick(m).unwrap_or_else(|| panic!("metric `{name}` already registered as a {}", m.kind()))
}

/// Get or register the counter named `name`. The returned handle is
/// `'static` and always records (use [`add`] for the gated variant).
pub fn counter(name: &str) -> &'static Counter {
    let pick = |m: &Metric| match m {
        Metric::Counter(c) => Some(*c),
        _ => None,
    };
    lookup(name, pick).unwrap_or_else(|| {
        register(
            name,
            || Metric::Counter(Box::leak(Box::new(Counter::new()))),
            pick,
        )
    })
}

/// Get or register the gauge named `name`.
pub fn gauge(name: &str) -> &'static Gauge {
    let pick = |m: &Metric| match m {
        Metric::Gauge(g) => Some(*g),
        _ => None,
    };
    lookup(name, pick).unwrap_or_else(|| {
        register(
            name,
            || Metric::Gauge(Box::leak(Box::new(Gauge::new()))),
            pick,
        )
    })
}

/// Get or register the histogram named `name`.
pub fn histogram(name: &str) -> &'static Histogram {
    let pick = |m: &Metric| match m {
        Metric::Histogram(h) => Some(*h),
        _ => None,
    };
    lookup(name, pick).unwrap_or_else(|| {
        register(
            name,
            || Metric::Histogram(Box::leak(Box::new(Histogram::new()))),
            pick,
        )
    })
}

/// Reset every registered metric to its empty state. Registered names
/// stay registered (handles remain valid); only the values clear.
pub fn reset() {
    let map = registry().read().unwrap_or_else(|e| e.into_inner());
    for m in map.values() {
        match m {
            Metric::Counter(c) => c.reset(),
            Metric::Gauge(g) => g.reset(),
            Metric::Histogram(h) => h.reset(),
        }
    }
}

// ---------------------------------------------------------- gated helpers

/// Add `n` to counter `name` — no-op (one relaxed load) when disabled.
#[inline]
pub fn add(name: &str, n: u64) {
    if enabled() {
        counter(name).add(n);
    }
}

/// Add 1 to counter `name` — no-op (one relaxed load) when disabled.
#[inline]
pub fn inc(name: &str) {
    add(name, 1);
}

/// Record `v` into histogram `name` — no-op when disabled.
#[inline]
pub fn observe(name: &str, v: f64) {
    if enabled() {
        histogram(name).observe(v);
    }
}

/// Set gauge `name` to `v` — no-op when disabled.
#[inline]
pub fn gauge_set(name: &str, v: f64) {
    if enabled() {
        gauge(name).set(v);
    }
}

/// Scoped timer: records elapsed milliseconds into the histogram it
/// was opened with when dropped. Disabled spans carry no state and do
/// not read the clock.
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
#[derive(Debug)]
pub struct Span {
    live: Option<(Instant, &'static Histogram)>,
}

impl Span {
    /// Abandon the span without recording.
    pub fn cancel(mut self) {
        self.live = None;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((t0, h)) = self.live.take() {
            h.observe(t0.elapsed().as_secs_f64() * 1e3);
        }
    }
}

/// Open a scoped timer on histogram `name` (conventionally `*_ms`).
/// When metrics are disabled this is one relaxed load and returns an
/// inert guard.
#[inline]
pub fn span(name: &str) -> Span {
    Span {
        live: if enabled() {
            Some((Instant::now(), histogram(name)))
        } else {
            None
        },
    }
}

// --------------------------------------------------------------- snapshot

/// Snapshot of one counter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Event count.
    pub value: u64,
}

/// Snapshot of one gauge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Instantaneous value.
    pub value: f64,
}

/// One non-empty histogram bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Exclusive upper bound of the bucket.
    pub le: f64,
    /// Samples that landed in this bucket.
    pub count: u64,
}

/// Snapshot of one histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Sample count.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
    /// Median estimate ([`Histogram::quantile`]; 0 when empty).
    pub p50: f64,
    /// 90th-percentile estimate (0 when empty).
    pub p90: f64,
    /// 99th-percentile estimate (0 when empty).
    pub p99: f64,
    /// Non-empty buckets, ascending by bound.
    pub buckets: Vec<BucketCount>,
}

/// Serializable dump of the whole registry, name-sorted — the payload
/// of `metrics.json`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Snapshot schema version ([`SCHEMA_VERSION`]; 0 = pre-versioned).
    pub schema_version: u32,
    /// All counters.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsReport {
    /// Value of a counter by name, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// A histogram row by name, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Total number of metric entries.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// Whether the registry was empty at snapshot time.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Capture the current state of every registered metric. Order is the
/// registry's name order, so two snapshots of identical state compare
/// equal.
pub fn snapshot() -> MetricsReport {
    let map = registry().read().unwrap_or_else(|e| e.into_inner());
    let mut report = MetricsReport {
        schema_version: SCHEMA_VERSION,
        ..MetricsReport::default()
    };
    for (name, m) in map.iter() {
        match m {
            Metric::Counter(c) => report.counters.push(CounterSnapshot {
                name: name.clone(),
                value: c.get(),
            }),
            Metric::Gauge(g) => report.gauges.push(GaugeSnapshot {
                name: name.clone(),
                value: g.get(),
            }),
            Metric::Histogram(h) => {
                let count = h.count();
                let buckets = h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter_map(|(i, b)| {
                        let n = b.load(Ordering::Relaxed);
                        (n > 0).then(|| BucketCount {
                            le: Histogram::bucket_upper_bound(i),
                            count: n,
                        })
                    })
                    .collect();
                report.histograms.push(HistogramSnapshot {
                    name: name.clone(),
                    count,
                    sum: h.sum(),
                    min: if count == 0 { 0.0 } else { h.min() },
                    max: if count == 0 { 0.0 } else { h.max() },
                    p50: h.quantile(0.50),
                    p90: h.quantile(0.90),
                    p99: h.quantile(0.99),
                    buckets,
                });
            }
        }
    }
    report
}

/// Render the live registry as a fixed-width table: one row per
/// metric, with count/sum/mean/min/max for histograms.
pub fn render_table() -> String {
    let report = snapshot();
    let mut rows: Vec<[String; 3]> = Vec::with_capacity(report.len());
    for c in &report.counters {
        rows.push([c.name.clone(), "counter".into(), c.value.to_string()]);
    }
    for g in &report.gauges {
        rows.push([g.name.clone(), "gauge".into(), format!("{:.3}", g.value)]);
    }
    for h in &report.histograms {
        rows.push([
            h.name.clone(),
            "histogram".into(),
            format!(
                "n={} sum={:.3} mean={:.3} min={:.3} p50={:.3} p90={:.3} p99={:.3} max={:.3}",
                h.count,
                h.sum,
                if h.count == 0 {
                    0.0
                } else {
                    h.sum / h.count as f64
                },
                h.min,
                h.p50,
                h.p90,
                h.p99,
                h.max
            ),
        ]);
    }
    let mut w0 = "metric".len();
    let mut w1 = "kind".len();
    for r in &rows {
        w0 = w0.max(r[0].len());
        w1 = w1.max(r[1].len());
    }
    let mut out = format!("{:<w0$}  {:<w1$}  value\n", "metric", "kind");
    out.push_str(&"-".repeat(w0 + w1 + 9));
    out.push('\n');
    for r in &rows {
        out.push_str(&format!("{:<w0$}  {:<w1$}  {}\n", r[0], r[1], r[2]));
    }
    out
}

/// Write the current [`snapshot`] as pretty JSON to the file named by
/// `SUPERNPU_METRICS_JSON`, if that env var is set — so any bin can
/// dump its metrics without code changes. Returns the path written,
/// `None` when the knob is unset, and reports write failures on
/// stderr rather than propagating them (this runs on exit and panic
/// paths).
pub fn write_metrics_json_env() -> Option<PathBuf> {
    let path = std::env::var("SUPERNPU_METRICS_JSON")
        .ok()
        .filter(|p| !p.trim().is_empty())
        .map(PathBuf::from)?;
    let json = serde_json::to_string_pretty(&snapshot())
        .unwrap_or_else(|e| unreachable!("metrics reports serialize infallibly: {e}"));
    match std::fs::write(&path, json) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("could not write metrics json to {}: {e}", path.display());
            None
        }
    }
}

/// Flush every sink that persists to disk: the trace ring buffers, the
/// profiler trees, the `SUPERNPU_METRICS_JSON` snapshot, and — last,
/// so it has seen every artifact the others produced — the run
/// ledger. Each is a no-op when its gate is off; failures go to
/// stderr. Shared by the clean-exit guard and the panic hook.
fn flush_sinks() {
    match trace::flush() {
        Ok(Some(path)) => {
            ledger::record_artifact(&path);
            eprintln!("trace written to {}", path.display());
        }
        Ok(None) => {}
        Err(e) => eprintln!("could not write trace file: {e}"),
    }
    match prof::flush() {
        Ok(Some(path)) => {
            ledger::record_artifact(&path);
            ledger::record_artifact(&path.with_extension("folded"));
            eprintln!("profile written to {}", path.display());
        }
        Ok(None) => {}
        Err(e) => eprintln!("could not write profile file: {e}"),
    }
    if let Some(path) = write_metrics_json_env() {
        ledger::record_artifact(&path);
        eprintln!("metrics json written to {}", path.display());
    }
    ledger::flush();
}

/// Public entry to the same flush the exit guard and panic hook run:
/// trace, profile, metrics-json, then the run ledger. Bench bins call
/// this from their error exit (`process::exit` skips `Drop`, so a
/// guard alone would lose the buffered tails).
pub fn flush_all() {
    flush_sinks();
}

/// Install (once) a panic hook that flushes the trace, profile and
/// metrics-json sinks *before* unwinding begins, chained in front of
/// the default hook. [`DumpOnExit`] already flushes when its guard
/// drops during unwinding, but that never happens when the panic
/// escalates to an abort (`panic = "abort"`, double panic, panic in a
/// detached worker) — the hook covers those paths, and flushing twice
/// is safe because every sink rewrites its whole file.
pub fn install_panic_flush() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            prev(info);
            // Re-entrancy guard: a panic inside a flush must not
            // recurse into another flush (that would abort).
            static FLUSHING: std::sync::atomic::AtomicBool =
                std::sync::atomic::AtomicBool::new(false);
            if !FLUSHING.swap(true, Ordering::SeqCst) {
                flush_sinks();
                FLUSHING.store(false, Ordering::SeqCst);
            }
        }));
    });
}

/// Guard that flushes the trace/profile/metrics-json sinks and prints
/// [`render_table`] to stderr when dropped, if metrics are enabled at
/// that moment. Bind it at the top of `main`:
///
/// ```no_run
/// let _metrics = sfq_obs::dump_on_exit();
/// ```
#[must_use = "bind the guard for the lifetime of main"]
#[derive(Debug)]
pub struct DumpOnExit(());

impl Drop for DumpOnExit {
    fn drop(&mut self) {
        // Flush persistent sinks first: the guard drops during
        // unwinding too, so a panicking bench still lands its buffered
        // tail on disk instead of losing it with the process.
        flush_sinks();
        if enabled() {
            eprintln!("\n== metrics (SUPERNPU_METRICS) ==\n{}", render_table());
        }
    }
}

/// Create a [`DumpOnExit`] guard. Also installs the
/// [`install_panic_flush`] hook so abort-bound panics flush the same
/// sinks the guard would.
pub fn dump_on_exit() -> DumpOnExit {
    install_panic_flush();
    DumpOnExit(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test body: the registry is process-global state, so the
    /// pieces must run in a fixed order rather than in the harness's
    /// parallel shuffle.
    #[test]
    fn registry_end_to_end() {
        set_enabled(true);
        reset();

        // Counters, gauges, histograms through the gated helpers.
        add("t.counter", 3);
        inc("t.counter");
        gauge_set("t.gauge", 2.5);
        observe("t.hist_ms", 0.5);
        observe("t.hist_ms", 4.0);
        observe("t.hist_ms", 0.0); // non-positive → bucket 0
        assert_eq!(counter("t.counter").get(), 4);
        assert_eq!(gauge("t.gauge").get(), 2.5);
        let h = histogram("t.hist_ms");
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 4.5);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 4.0);

        // Quantiles: estimates stay inside the sample's bucket (one
        // octave of error) and clamp to the observed extremes.
        assert_eq!(h.quantile(1.0), 4.0, "q=1 is the max");
        let p50 = h.quantile(0.5);
        assert!((0.5..=1.0).contains(&p50), "p50 {p50} within one octave");
        assert_eq!(histogram("t.empty_q").quantile(0.9), 0.0, "empty is 0");

        // Bucket mapping: 0.5 → [2^-1, 2^0); 4.0 → [2^2, 2^3).
        assert_eq!(Histogram::bucket_of(0.5), BUCKET_EXP_OFFSET as usize - 1);
        assert_eq!(Histogram::bucket_of(4.0), BUCKET_EXP_OFFSET as usize + 2);
        assert_eq!(Histogram::bucket_of(0.0), 0);
        assert_eq!(Histogram::bucket_of(f64::MAX), HISTOGRAM_BUCKETS - 1);
        assert!(Histogram::bucket_upper_bound(BUCKET_EXP_OFFSET as usize) == 2.0);

        // Snapshot reflects the same numbers, sorted by name.
        let snap = snapshot();
        assert_eq!(snap.counter("t.counter"), Some(4));
        let hs = snap.histogram("t.hist_ms").unwrap();
        assert_eq!(hs.count, 3);
        assert_eq!((hs.p50, hs.p99), (p50, 4.0), "snapshot carries quantiles");
        assert_eq!(hs.buckets.iter().map(|b| b.count).sum::<u64>(), 3);
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "counters sorted by name");

        // Spans record; cancelled spans don't.
        {
            let _s = span("t.span_ms");
        }
        assert_eq!(histogram("t.span_ms").count(), 1);
        span("t.span_ms").cancel();
        assert_eq!(histogram("t.span_ms").count(), 1);

        // Table render mentions every metric.
        let table = render_table();
        for name in ["t.counter", "t.gauge", "t.hist_ms", "t.span_ms"] {
            assert!(table.contains(name), "table missing {name}:\n{table}");
        }

        // Reset clears values but keeps registration.
        reset();
        assert_eq!(counter("t.counter").get(), 0);
        assert_eq!(histogram("t.hist_ms").count(), 0);
        assert_eq!(snapshot().counter("t.counter"), Some(0));

        // Disabled: gated helpers record nothing and register nothing.
        set_enabled(false);
        let before = snapshot();
        add("t.disabled_counter", 7);
        observe("t.disabled_hist", 1.0);
        gauge_set("t.disabled_gauge", 1.0);
        let _s = span("t.disabled_span_ms");
        drop(_s);
        let after = snapshot();
        assert_eq!(before, after, "disabled path must not touch the registry");

        // Ungated handles keep working with metrics off (the migrated
        // legacy counters rely on this).
        counter("t.always_on").inc();
        assert_eq!(counter("t.always_on").get(), 1);

        // Log gating: closure not evaluated when the level is off.
        set_log_level(Some(Level::Warn));
        assert!(log_enabled(Level::Error) && log_enabled(Level::Warn));
        assert!(!log_enabled(Level::Info));
        let mut evaluated = false;
        log(Level::Debug, || {
            evaluated = true;
            String::new()
        });
        assert!(!evaluated, "disabled log level must not build the message");
        set_log_level(None);
        set_enabled(false);
    }

    /// Quantile interpolation boundary cases, on private histograms so
    /// the parallel test harness can't race the shared registry.
    #[test]
    fn quantile_edge_cases() {
        // Empty: every quantile is 0.
        let h = Histogram::new();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0.0, "empty histogram at q={q}");
        }

        // Single sample: every quantile clamps to the one value.
        let h = Histogram::new();
        h.observe(3.7);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 3.7, "single sample at q={q}");
        }

        // All samples in one bucket: the octave interpolation may land
        // anywhere in [2, 4), but the [min, max] clamp collapses it to
        // the only value present.
        let h = Histogram::new();
        for _ in 0..100 {
            h.observe(3.0);
        }
        for q in [0.01, 0.5, 0.99] {
            assert_eq!(h.quantile(q), 3.0, "one-bucket histogram at q={q}");
        }

        // Sample exactly on an octave boundary: 2.0 belongs to the
        // [2, 4) bucket, not [1, 2).
        assert_eq!(Histogram::bucket_of(2.0), BUCKET_EXP_OFFSET as usize + 1);

        // p99 target exactly at a bucket's cumulative boundary: with
        // 99 samples of 1.5 and 1 of 3.0, target = ceil(0.99·100) = 99
        // = the full count of the first bucket, so frac = 1 and the
        // estimate is that bucket's upper bound (2.0) — inside one
        // octave of the true p99 (1.5) and within [min, max].
        let h = Histogram::new();
        for _ in 0..99 {
            h.observe(1.5);
        }
        h.observe(3.0);
        let p99 = h.quantile(0.99);
        assert_eq!(p99, 2.0, "boundary target interpolates to the bucket edge");
        assert!((1.5..=3.0).contains(&p99));
        // One sample past the boundary falls into the next bucket and
        // clamps to the max.
        assert_eq!(h.quantile(1.0), 3.0);
    }

    #[test]
    fn kind_conflict_panics() {
        let name = "t.kind_conflict";
        let _ = counter(name);
        let got = std::panic::catch_unwind(|| histogram(name));
        assert!(
            got.is_err(),
            "re-registering a counter as a histogram must panic"
        );
    }
}
