//! Live progress telemetry for long sweeps.
//!
//! A process-wide progress phase (points done/total, ETA from a
//! monotonic rate estimate) driven by the `sfq_par` map loops and the
//! resilient sweep runner. When `SUPERNPU_PROGRESS=1` the phase
//! renders as a throttled single-line stderr ticker, so a
//! `--points 100000` sweep or a chaos run is no longer silent; phase
//! boundaries and ticker updates are also recorded as instant events
//! in the trace sink (under its own `SUPERNPU_TRACE` gate), so the
//! timeline shows where a sweep stood at any moment.
//!
//! Disabled cost: [`tick`] is a single relaxed atomic load when the
//! ticker is off, matching the metrics/trace/profile gates, so
//! instrumented inner loops pay nothing in a plain run.
//!
//! Only one phase is live at a time. [`Region::enter`] claims the
//! phase slot *if free* — the resilient runner claims it with the
//! sweep's name before dispatching, and the generic `par_map` region
//! underneath then leaves it alone and just ticks.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Minimum milliseconds between ticker renders.
const RENDER_EVERY_MS: u64 = 100;

// ------------------------------------------------------------- enable gate

/// Tri-state: 0 = not yet read from the environment, 1 = off, 2 = on.
static PROGRESS_STATE: AtomicU8 = AtomicU8::new(0);

/// Whether the progress ticker is on (`SUPERNPU_PROGRESS` truthy).
#[inline]
pub fn enabled() -> bool {
    match PROGRESS_STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_progress_state(),
    }
}

#[cold]
fn init_progress_state() -> bool {
    let on = std::env::var("SUPERNPU_PROGRESS").is_ok_and(|v| crate::truthy(&v));
    PROGRESS_STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Programmatically force the ticker on or off (overrides the env
/// var). Tests use this.
pub fn set_enabled(on: bool) {
    PROGRESS_STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

// --------------------------------------------------------------- the phase

/// Total points in the live phase; 0 = no phase live (the fast-path
/// check ticks make after the gate).
static TOTAL: AtomicU64 = AtomicU64::new(0);
/// Points completed in the live phase.
static DONE: AtomicU64 = AtomicU64::new(0);
/// Milliseconds-since-epoch of the last render (throttle).
static LAST_RENDER_MS: AtomicU64 = AtomicU64::new(0);

struct PhaseMeta {
    label: String,
    started_ms: u64,
}

fn phase_meta() -> &'static Mutex<Option<PhaseMeta>> {
    static META: OnceLock<Mutex<Option<PhaseMeta>>> = OnceLock::new();
    META.get_or_init(|| Mutex::new(None))
}

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

fn now_ms() -> u64 {
    epoch().elapsed().as_millis() as u64
}

fn lock_meta() -> std::sync::MutexGuard<'static, Option<PhaseMeta>> {
    phase_meta()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Begin (or replace) the live phase: `total` points under `label`.
/// Resets the done count. Emits a trace instant regardless of the
/// ticker gate so phase boundaries land on the timeline.
pub fn phase(label: &str, total: u64) {
    crate::trace::instant("progress", &format!("phase {label} ({total} points)"));
    if !enabled() {
        return;
    }
    *lock_meta() = Some(PhaseMeta {
        label: label.to_owned(),
        started_ms: now_ms(),
    });
    DONE.store(0, Ordering::Relaxed);
    LAST_RENDER_MS.store(0, Ordering::Relaxed);
    TOTAL.store(total, Ordering::Relaxed);
    render(0, total, true);
}

/// Report `n` more points done in the live phase. One relaxed load
/// when the ticker is off; one more when no phase is live.
#[inline]
pub fn tick(n: u64) {
    if !enabled() {
        return;
    }
    let total = TOTAL.load(Ordering::Relaxed);
    if n == 0 || total == 0 {
        return;
    }
    let done = DONE.fetch_add(n, Ordering::Relaxed) + n;
    render(done, total, false);
}

/// Close the live phase: final render, newline, slot freed.
pub fn finish() {
    if !enabled() {
        return;
    }
    let total = TOTAL.swap(0, Ordering::Relaxed);
    if total == 0 {
        return;
    }
    let done = DONE.swap(0, Ordering::Relaxed);
    render_line(done, total, true);
    eprintln!();
    let mut meta = lock_meta();
    if let Some(m) = meta.as_ref() {
        crate::trace::instant("progress", &format!("finish {} ({done}/{total})", m.label));
    }
    *meta = None;
}

/// Current `(label, done, total)` of the live phase, for tests.
#[must_use]
pub fn snapshot() -> Option<(String, u64, u64)> {
    let total = TOTAL.load(Ordering::Relaxed);
    if total == 0 {
        return None;
    }
    let label = lock_meta().as_ref().map(|m| m.label.clone())?;
    Some((label, DONE.load(Ordering::Relaxed), total))
}

fn render(done: u64, total: u64, force: bool) {
    let now = now_ms();
    let last = LAST_RENDER_MS.load(Ordering::Relaxed);
    if !force && now.saturating_sub(last) < RENDER_EVERY_MS {
        return;
    }
    // One renderer per throttle window; losers skip.
    if LAST_RENDER_MS
        .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
        .is_err()
    {
        return;
    }
    render_line(done, total, false);
}

fn render_line(done: u64, total: u64, closing: bool) {
    use std::io::Write;
    let meta = lock_meta();
    let Some(m) = meta.as_ref() else { return };
    let elapsed_s = (now_ms().saturating_sub(m.started_ms)) as f64 / 1e3;
    let pct = if total == 0 {
        100.0
    } else {
        100.0 * done as f64 / total as f64
    };
    // Monotonic rate estimate: overall points/sec so far; ETA is the
    // remaining points at that rate.
    let eta = if done == 0 || elapsed_s <= 0.0 {
        "--".to_owned()
    } else {
        let rate = done as f64 / elapsed_s;
        format!("{:.1}s", (total.saturating_sub(done)) as f64 / rate)
    };
    let line = format!(
        "[{}] {done}/{total} ({pct:.0}%) elapsed {elapsed_s:.1}s ETA {eta}",
        m.label
    );
    let mut err = std::io::stderr().lock();
    // Pad to clear a longer previous line.
    let _ = write!(err, "\r{line:<78}");
    let _ = err.flush();
    if !closing {
        crate::trace::instant("progress", &line);
    }
}

// ------------------------------------------------------------ region RAII

/// RAII claim on the phase slot: [`Region::enter`] starts a phase only
/// when none is live, and its `Drop` closes the phase only if it was
/// the one that opened it. Lets `par_map` self-announce big regions
/// while deferring to an enclosing named sweep.
#[derive(Debug)]
pub struct Region {
    claimed: bool,
}

impl Region {
    /// Claim the phase slot for `total` points under `label` if it is
    /// free (and the ticker is on); otherwise return an inert region.
    #[must_use]
    pub fn enter(label: &str, total: u64) -> Region {
        if !enabled() || TOTAL.load(Ordering::Relaxed) != 0 {
            return Region { claimed: false };
        }
        phase(label, total);
        Region { claimed: true }
    }

    /// Whether this region owns the live phase. Only the owner should
    /// [`tick`]: nested parallel regions inside one logical point must
    /// not inflate the done count past the total.
    #[must_use]
    pub fn is_claimed(&self) -> bool {
        self.claimed
    }
}

impl Drop for Region {
    fn drop(&mut self) {
        if self.claimed {
            finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One body: the phase slot is process-global.
    #[test]
    fn phase_lifecycle_and_region_claiming() {
        set_enabled(true);
        phase("outer", 10);
        assert_eq!(snapshot(), Some(("outer".into(), 0, 10)));
        tick(3);
        assert_eq!(snapshot(), Some(("outer".into(), 3, 10)));
        {
            // Slot busy: inner region must not steal it.
            let _inner = Region::enter("inner", 99);
            tick(2);
            assert_eq!(snapshot(), Some(("outer".into(), 5, 10)));
        }
        // Inert region's drop must not close the outer phase.
        assert_eq!(snapshot(), Some(("outer".into(), 5, 10)));
        finish();
        assert_eq!(snapshot(), None);

        // A free slot is claimed and released by the region.
        {
            let _r = Region::enter("solo", 4);
            assert_eq!(snapshot(), Some(("solo".into(), 0, 4)));
        }
        assert_eq!(snapshot(), None);

        // Disabled: everything is inert.
        set_enabled(false);
        phase("off", 5);
        tick(1);
        assert_eq!(snapshot(), None);
    }
}
