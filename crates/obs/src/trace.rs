//! Structured event tracing with Chrome trace-event / Perfetto export.
//!
//! The metrics half of this crate answers *how much*; this module
//! answers *when*. Instrumented code records three kinds of events —
//! [`complete`] spans (begin + duration), [`instant`] markers and
//! [`counter_sample`] series — into bounded per-thread ring buffers,
//! and [`flush`] (or [`ChromeTrace::write`]) renders everything as
//! Chrome trace-event JSON that loads directly in
//! [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`.
//!
//! ## Gating
//!
//! Tracing is off by default. Setting `SUPERNPU_TRACE=<path>` (or
//! calling [`set_trace`]) turns it on and names the output file; the
//! disabled fast path of every recording helper is a single relaxed
//! atomic load followed by an early return — no locking, no clock
//! read, no allocation — the same contract as the metrics gate, so
//! the instrumentation can live in the solver's inner loops.
//! High-frequency per-step markers (solver accept/reject/restamp) are
//! additionally gated behind `SUPERNPU_TRACE_DETAIL=1` /
//! [`set_detail`].
//!
//! ## Sinks
//!
//! Every recording thread owns its own bounded ring buffer
//! (capacity from `SUPERNPU_TRACE_BUF`, default
//! [`DEFAULT_RING_CAPACITY`]), registered in a global sink list the
//! first time the thread records. Steady-state recording therefore
//! never contends with other threads: the per-sink mutex is only
//! shared with the drainer. When a ring is full the event is dropped
//! and counted — in the sink, and in the always-on
//! `obs.trace.events_dropped` registry counter — never blocking the
//! traced code.
//!
//! ## Timebases and tracks
//!
//! Wall-clock events are stamped in microseconds since a process-wide
//! monotonic [`epoch`] captured at first use, so tests can normalize
//! by subtracting the first timestamp. Events land on *tracks*
//! identified by `(pid, tid)`: pid [`HOST_PID`] holds wall-clock
//! tracks (one per thread, plus the stable `pool worker N` tracks the
//! `sfq-par` pool claims via [`with_track`]), and pid [`CYCLE_PID`]
//! holds the deterministic cycle-timestamped tracks of the `npusim`
//! access-trace exporter, where one trace microsecond is one NPU
//! cycle. Keeping the two domains in separate pids lets one file show
//! both without pretending they share a clock.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Process id of wall-clock tracks (threads, pool workers, solver and
/// sweep spans).
pub const HOST_PID: u32 = 1;

/// Process id of cycle-domain tracks (the `npusim` access-trace
/// exporter). Timestamps are NPU cycles, not wall time.
pub const CYCLE_PID: u32 = 2;

/// Default per-thread ring capacity, in events.
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

// ------------------------------------------------------------- enable gate

/// Tri-state: 0 = not yet read from the environment, 1 = off, 2 = on.
static TRACE_STATE: AtomicU8 = AtomicU8::new(0);

/// Output path from `SUPERNPU_TRACE` or [`set_trace`].
static TRACE_PATH: OnceLock<Mutex<Option<PathBuf>>> = OnceLock::new();

fn trace_path_cell() -> &'static Mutex<Option<PathBuf>> {
    TRACE_PATH.get_or_init(|| Mutex::new(None))
}

/// Whether event recording is on. First call resolves the
/// `SUPERNPU_TRACE` env var (any non-empty value enables and names
/// the output file); after that — or after [`set_trace`] — it is a
/// single relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    match TRACE_STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_trace_state(),
    }
}

#[cold]
fn init_trace_state() -> bool {
    let path = std::env::var("SUPERNPU_TRACE")
        .ok()
        .filter(|p| !p.trim().is_empty());
    let on = path.is_some();
    *trace_path_cell().lock().unwrap_or_else(|e| e.into_inner()) = path.map(PathBuf::from);
    TRACE_STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Programmatically enable tracing to `path`, or disable it with
/// `None` (overrides the env var either way).
pub fn set_trace(path: Option<&str>) {
    *trace_path_cell().lock().unwrap_or_else(|e| e.into_inner()) = path.map(PathBuf::from);
    TRACE_STATE.store(if path.is_some() { 2 } else { 1 }, Ordering::Relaxed);
}

/// The output file [`flush`] writes, if tracing is enabled.
pub fn path() -> Option<PathBuf> {
    if !enabled() {
        return None;
    }
    trace_path_cell()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
}

/// Detail tri-state, same encoding as the enable gate.
static DETAIL_STATE: AtomicU8 = AtomicU8::new(0);

/// Whether high-frequency detail events (per-step solver
/// accept/reject/restamp instants) should be recorded. True only when
/// tracing itself is enabled *and* `SUPERNPU_TRACE_DETAIL` (or
/// [`set_detail`]) asks for it; the disabled path is two relaxed
/// loads.
#[inline]
pub fn detail_enabled() -> bool {
    if !enabled() {
        return false;
    }
    match DETAIL_STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_detail_state(),
    }
}

#[cold]
fn init_detail_state() -> bool {
    let on = std::env::var("SUPERNPU_TRACE_DETAIL").is_ok_and(|v| {
        let v = v.trim();
        !(v.is_empty()
            || v == "0"
            || v.eq_ignore_ascii_case("false")
            || v.eq_ignore_ascii_case("off"))
    });
    DETAIL_STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Programmatically force detail events on or off.
pub fn set_detail(on: bool) {
    DETAIL_STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

// ------------------------------------------------------------------ epoch

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// The process-wide monotonic epoch all wall-clock timestamps are
/// relative to, captured on first use.
pub fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds elapsed since [`epoch`].
#[inline]
pub fn now_us() -> f64 {
    epoch().elapsed().as_secs_f64() * 1e6
}

// ------------------------------------------------------------ event model

/// Per-event argument payload. Both fields are always present so the
/// exported JSON round-trips through the workspace serde without
/// optional-field machinery; Perfetto ignores the ones it does not
/// use. `name` carries thread/process names on metadata events,
/// `value` carries counter samples.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EventArgs {
    /// Metadata payload (track name) — empty on ordinary events.
    pub name: String,
    /// Counter value — 0 on non-counter events.
    pub value: f64,
}

/// One Chrome trace-event. Field names match the trace-event JSON
/// schema so the struct serializes directly into a `traceEvents`
/// element: `ph` is the phase code (`X` complete, `i` instant, `C`
/// counter, `M` metadata), `ts`/`dur` are in trace microseconds (one
/// NPU cycle on [`CYCLE_PID`] tracks), and `(pid, tid)` select the
/// track.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Event (slice) name.
    pub name: String,
    /// Category, used by trace viewers for filtering.
    pub cat: String,
    /// Phase code: `X`, `i`, `C` or `M`.
    pub ph: String,
    /// Start timestamp, trace microseconds.
    pub ts: f64,
    /// Duration, trace microseconds (0 unless `ph == "X"`).
    pub dur: f64,
    /// Process id (track group).
    pub pid: u32,
    /// Thread id (track).
    pub tid: u64,
    /// Arguments.
    pub args: EventArgs,
}

impl Event {
    fn complete(pid: u32, tid: u64, cat: &str, name: &str, ts: f64, dur: f64) -> Self {
        Event {
            name: name.to_owned(),
            cat: cat.to_owned(),
            ph: "X".to_owned(),
            ts,
            dur,
            pid,
            tid,
            args: EventArgs::default(),
        }
    }

    fn instant(pid: u32, tid: u64, cat: &str, name: &str, ts: f64) -> Self {
        Event {
            name: name.to_owned(),
            cat: cat.to_owned(),
            ph: "i".to_owned(),
            ts,
            dur: 0.0,
            pid,
            tid,
            args: EventArgs::default(),
        }
    }

    fn counter(pid: u32, tid: u64, cat: &str, name: &str, ts: f64, value: f64) -> Self {
        Event {
            name: name.to_owned(),
            cat: cat.to_owned(),
            ph: "C".to_owned(),
            ts,
            dur: 0.0,
            pid,
            tid,
            args: EventArgs {
                name: String::new(),
                value,
            },
        }
    }

    fn metadata(pid: u32, tid: u64, kind: &str, name: &str) -> Self {
        Event {
            name: kind.to_owned(),
            cat: "__metadata".to_owned(),
            ph: "M".to_owned(),
            ts: 0.0,
            dur: 0.0,
            pid,
            tid,
            args: EventArgs {
                name: name.to_owned(),
                value: 0.0,
            },
        }
    }
}

// ---------------------------------------------------------------- sinks

/// Per-thread ring capacity; read on every push so tests can shrink it.
static RING_CAPACITY: AtomicUsize = AtomicUsize::new(0);

fn ring_capacity() -> usize {
    let c = RING_CAPACITY.load(Ordering::Relaxed);
    if c != 0 {
        return c;
    }
    let c = std::env::var("SUPERNPU_TRACE_BUF")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_RING_CAPACITY);
    RING_CAPACITY.store(c, Ordering::Relaxed);
    c
}

/// Override the per-thread ring capacity (tests and long captures).
/// Applies to events recorded after the call; existing buffered
/// events are kept even if the new capacity is smaller.
pub fn set_ring_capacity(events: usize) {
    RING_CAPACITY.store(events.max(1), Ordering::Relaxed);
}

/// The always-on drop counter: incremented whenever a full ring
/// rejects an event, metrics enabled or not, so a truncated trace is
/// self-describing.
fn dropped_counter() -> &'static crate::Counter {
    static C: OnceLock<&'static crate::Counter> = OnceLock::new();
    C.get_or_init(|| crate::counter("obs.trace.events_dropped"))
}

struct ThreadSink {
    tid: u64,
    ring: Mutex<Vec<Event>>,
    dropped: AtomicU64,
}

impl ThreadSink {
    fn push(&self, ev: Event) {
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() < ring_capacity() {
            ring.push(ev);
        } else {
            drop(ring);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            dropped_counter().inc();
        }
    }
}

static SINKS: OnceLock<Mutex<Vec<Arc<ThreadSink>>>> = OnceLock::new();

fn sinks() -> &'static Mutex<Vec<Arc<ThreadSink>>> {
    SINKS.get_or_init(|| Mutex::new(Vec::new()))
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static SINK: OnceLock<Arc<ThreadSink>> = const { OnceLock::new() };
    /// Track override for default-track events: `(pid, tid)`, where
    /// tid 0 means "this thread's own track".
    static CURRENT_TRACK: std::cell::Cell<(u32, u64)> = const { std::cell::Cell::new((HOST_PID, 0)) };
}

fn with_sink(f: impl FnOnce(&ThreadSink)) {
    SINK.with(|cell| {
        let sink = cell.get_or_init(|| {
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let sink = Arc::new(ThreadSink {
                tid,
                ring: Mutex::new(Vec::new()),
                dropped: AtomicU64::new(0),
            });
            sinks()
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(Arc::clone(&sink));
            name_track(HOST_PID, tid, &format!("thread {tid}"));
            sink
        });
        f(sink);
    });
}

/// Number of per-thread sinks registered so far. A thread only
/// registers on its first *enabled* record, so this stays 0 while
/// tracing is off — the disabled-path test hangs on that.
pub fn sinks_registered() -> usize {
    sinks().lock().unwrap_or_else(|e| e.into_inner()).len()
}

/// Total events dropped by full rings since the last [`clear`].
pub fn events_dropped() -> u64 {
    sinks()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|s| s.dropped.load(Ordering::Relaxed))
        .sum()
}

// ---------------------------------------------------------- track naming

/// Global `(pid, tid) → name` registry, rendered as `thread_name`
/// metadata on export. A `BTreeMap` keeps export order deterministic.
static TRACK_NAMES: OnceLock<Mutex<BTreeMap<(u32, u64), String>>> = OnceLock::new();

fn track_names() -> &'static Mutex<BTreeMap<(u32, u64), String>> {
    TRACK_NAMES.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Register a display name for track `(pid, tid)`. Idempotent; the
/// first name wins.
pub fn name_track(pid: u32, tid: u64, name: &str) {
    let mut map = track_names().lock().unwrap_or_else(|e| e.into_inner());
    map.entry((pid, tid)).or_insert_with(|| name.to_owned());
}

/// The `(pid, tid)` default-track events on this thread currently
/// resolve to.
fn current_track(sink_tid: u64) -> (u32, u64) {
    let (pid, tid) = CURRENT_TRACK.with(std::cell::Cell::get);
    (pid, if tid == 0 { sink_tid } else { tid })
}

/// Guard that retargets this thread's default-track events (returned
/// by [`with_track`]); restores the previous track on drop.
#[derive(Debug)]
pub struct TrackGuard {
    prev: (u32, u64),
}

impl Drop for TrackGuard {
    fn drop(&mut self) {
        CURRENT_TRACK.with(|c| c.set(self.prev));
    }
}

/// Route this thread's default-track events to `(pid, tid)` until the
/// guard drops. The `sfq-par` pool uses this so solver spans executed
/// by worker `N` land on the stable `pool worker N` track instead of
/// an anonymous per-region thread track.
#[must_use = "the track override ends when the guard drops"]
pub fn with_track(pid: u32, tid: u64) -> TrackGuard {
    let prev = CURRENT_TRACK.with(|c| c.replace((pid, tid)));
    TrackGuard { prev }
}

// ------------------------------------------------------------- recording

#[inline]
fn record(ev: Event) {
    with_sink(|sink| sink.push(ev));
}

/// Record a complete event (`ph: "X"`) on this thread's current
/// track, with an explicit start and duration in microseconds since
/// [`epoch`]. No-op (one relaxed load) when tracing is disabled.
#[inline]
pub fn complete(cat: &str, name: &str, start_us: f64, dur_us: f64) {
    if !enabled() {
        return;
    }
    with_sink(|sink| {
        let (pid, tid) = current_track(sink.tid);
        sink.push(Event::complete(pid, tid, cat, name, start_us, dur_us));
    });
}

/// Record a complete event on an explicit track.
#[inline]
pub fn complete_on(pid: u32, tid: u64, cat: &str, name: &str, start_us: f64, dur_us: f64) {
    if !enabled() {
        return;
    }
    record(Event::complete(pid, tid, cat, name, start_us, dur_us));
}

/// Record an instant event (`ph: "i"`) on this thread's current track
/// at the current time. No-op (one relaxed load) when disabled.
#[inline]
pub fn instant(cat: &str, name: &str) {
    if !enabled() {
        return;
    }
    let ts = now_us();
    with_sink(|sink| {
        let (pid, tid) = current_track(sink.tid);
        sink.push(Event::instant(pid, tid, cat, name, ts));
    });
}

/// Record a counter sample (`ph: "C"`) on an explicit track. Counter
/// tracks render as stepped area charts in Perfetto.
#[inline]
pub fn counter_sample(pid: u32, tid: u64, name: &str, ts: f64, value: f64) {
    if !enabled() {
        return;
    }
    record(Event::counter(pid, tid, "counter", name, ts, value));
}

/// Scoped wall-clock span: records a complete event covering its own
/// lifetime on drop. Disabled spans carry no state and do not read
/// the clock.
#[must_use = "a trace span records on drop; binding it to `_` drops it immediately"]
#[derive(Debug)]
pub struct TraceSpan {
    live: Option<(f64, &'static str, String)>,
}

impl TraceSpan {
    /// Abandon the span without recording.
    pub fn cancel(mut self) {
        self.live = None;
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        if let Some((t0, cat, name)) = self.live.take() {
            complete(cat, &name, t0, now_us() - t0);
        }
    }
}

/// Open a scoped wall-clock span in category `cat`. One relaxed load
/// and an inert guard when tracing is disabled.
#[inline]
pub fn span(cat: &'static str, name: &str) -> TraceSpan {
    TraceSpan {
        live: enabled().then(|| (now_us(), cat, name.to_owned())),
    }
}

// ----------------------------------------------------------- export

/// Top-level Chrome trace-event file: the shape
/// `{"traceEvents": [...], "displayTimeUnit": "ms"}` that Perfetto
/// and `chrome://tracing` load directly.
#[allow(non_snake_case)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceFile {
    /// All events; metadata (track names) first.
    pub traceEvents: Vec<Event>,
    /// Display unit hint for viewers.
    pub displayTimeUnit: String,
}

/// Deterministic builder for a Chrome trace-event file. Exporters
/// (the `npusim` cycle-track exporter, [`flush`]) assemble one of
/// these and [`ChromeTrace::write`] it; insertion order is preserved,
/// and track/process names render as sorted metadata events, so the
/// same inputs always produce the identical file.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    events: Vec<Event>,
    tracks: BTreeMap<(u32, u64), String>,
    processes: BTreeMap<u32, String>,
}

impl ChromeTrace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Name a process group.
    pub fn name_process(&mut self, pid: u32, name: &str) {
        self.processes.entry(pid).or_insert_with(|| name.to_owned());
    }

    /// Name a track; first name wins.
    pub fn name_track(&mut self, pid: u32, tid: u64, name: &str) {
        self.tracks
            .entry((pid, tid))
            .or_insert_with(|| name.to_owned());
    }

    /// Append one event.
    pub fn push(&mut self, ev: Event) {
        self.events.push(ev);
    }

    /// Append a complete event.
    pub fn add_complete(&mut self, pid: u32, tid: u64, cat: &str, name: &str, ts: f64, dur: f64) {
        self.push(Event::complete(pid, tid, cat, name, ts, dur));
    }

    /// Append an instant event.
    pub fn add_instant(&mut self, pid: u32, tid: u64, cat: &str, name: &str, ts: f64) {
        self.push(Event::instant(pid, tid, cat, name, ts));
    }

    /// Append a counter sample.
    pub fn add_counter(&mut self, pid: u32, tid: u64, name: &str, ts: f64, value: f64) {
        self.push(Event::counter(pid, tid, "counter", name, ts, value));
    }

    /// Append many events.
    pub fn extend(&mut self, events: impl IntoIterator<Item = Event>) {
        self.events.extend(events);
    }

    /// Number of events (excluding metadata).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been added.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Assemble the serializable file: process/track metadata (sorted
    /// by id) followed by the events in insertion order.
    pub fn to_file(&self) -> TraceFile {
        let mut out = Vec::with_capacity(self.events.len() + self.tracks.len() + 2);
        for (pid, name) in &self.processes {
            out.push(Event::metadata(*pid, 0, "process_name", name));
        }
        for ((pid, tid), name) in &self.tracks {
            out.push(Event::metadata(*pid, *tid, "thread_name", name));
        }
        out.extend(self.events.iter().cloned());
        TraceFile {
            traceEvents: out,
            displayTimeUnit: "ms".to_owned(),
        }
    }

    /// Render as Chrome trace-event JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.to_file())
            .unwrap_or_else(|e| unreachable!("trace events serialize infallibly: {e}"))
    }

    /// Write the JSON to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the filesystem error when the write fails.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Drain every sink's buffered events (clearing the rings) plus any
/// previously flushed backlog, merge the global track names, and
/// append it all to `ct`. Cross-thread order is normalized by a
/// stable sort on `(ts, pid, tid, name)` so the merged stream is a
/// function of the recorded events, not of drain timing.
pub fn drain_into(ct: &mut ChromeTrace) {
    let mut drained: Vec<Event> = {
        let mut backlog = flushed().lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut *backlog)
    };
    {
        let list = sinks().lock().unwrap_or_else(|e| e.into_inner());
        for sink in list.iter() {
            let mut ring = sink.ring.lock().unwrap_or_else(|e| e.into_inner());
            drained.append(&mut ring);
        }
    }
    drained.sort_by(|a, b| {
        a.ts.total_cmp(&b.ts)
            .then(a.pid.cmp(&b.pid))
            .then(a.tid.cmp(&b.tid))
            .then(a.name.cmp(&b.name))
    });
    {
        let names = track_names().lock().unwrap_or_else(|e| e.into_inner());
        for ((pid, tid), name) in names.iter() {
            ct.name_track(*pid, *tid, name);
        }
    }
    ct.name_process(HOST_PID, "supernpu host (wall clock)");
    ct.extend(drained);
}

/// Events drained by a previous [`flush`], kept so every flush
/// rewrites the full trace (a later flush must not lose the earlier
/// tail).
static FLUSHED: OnceLock<Mutex<Vec<Event>>> = OnceLock::new();

fn flushed() -> &'static Mutex<Vec<Event>> {
    FLUSHED.get_or_init(|| Mutex::new(Vec::new()))
}

/// Drain all sinks and write the accumulated trace to the configured
/// path ([`path`]). Safe to call repeatedly — each call rewrites the
/// file with everything recorded so far. Returns the path written, or
/// `None` when tracing is disabled.
///
/// # Errors
///
/// Propagates the filesystem error when the write fails.
pub fn flush() -> std::io::Result<Option<PathBuf>> {
    let Some(path) = path() else {
        return Ok(None);
    };
    let mut ct = ChromeTrace::new();
    drain_into(&mut ct);
    // Keep the drained events for the next flush.
    {
        let mut backlog = flushed().lock().unwrap_or_else(|e| e.into_inner());
        backlog.extend(ct.events.iter().cloned());
    }
    let dropped = events_dropped();
    if dropped > 0 {
        ct.add_counter(HOST_PID, 0, "obs.trace.events_dropped", 0.0, dropped as f64);
    }
    ct.write(&path)?;
    Ok(Some(path))
}

/// Discard all buffered and flushed events, drop counts and track
/// names (tests). Sinks stay registered; their rings are emptied.
pub fn clear() {
    let list = sinks().lock().unwrap_or_else(|e| e.into_inner());
    for sink in list.iter() {
        sink.ring.lock().unwrap_or_else(|e| e.into_inner()).clear();
        sink.dropped.store(0, Ordering::Relaxed);
    }
    drop(list);
    flushed().lock().unwrap_or_else(|e| e.into_inner()).clear();
    track_names()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test body: the sink registry and enable gate are
    /// process-global, so the pieces run in a fixed order.
    #[test]
    fn trace_end_to_end() {
        // Disabled: helpers are no-ops and register nothing.
        set_trace(None);
        complete("t", "never", 0.0, 1.0);
        instant("t", "never");
        counter_sample(HOST_PID, 7, "never", 0.0, 1.0);
        {
            let _s = span("t", "never");
        }
        let mut ct = ChromeTrace::new();
        drain_into(&mut ct);
        assert!(ct.is_empty(), "disabled tracing must record nothing");

        // Enabled: events land, spans measure, tracks get named.
        set_trace(Some("unused-trace.json"));
        assert!(enabled());
        let t0 = now_us();
        complete("cat_a", "work", t0, 5.0);
        instant("cat_a", "marker");
        counter_sample(CYCLE_PID, 3, "bytes", 10.0, 42.0);
        {
            let _s = span("cat_b", "scoped");
        }
        span("cat_b", "cancelled").cancel();
        let mut ct = ChromeTrace::new();
        ct.name_process(CYCLE_PID, "cycles");
        drain_into(&mut ct);
        assert_eq!(ct.len(), 4, "cancelled span must not record");
        let file = ct.to_file();
        let phases: Vec<&str> = file.traceEvents.iter().map(|e| e.ph.as_str()).collect();
        assert!(phases.contains(&"M") && phases.contains(&"X") && phases.contains(&"i"));
        let c = file
            .traceEvents
            .iter()
            .find(|e| e.ph == "C")
            .unwrap_or_else(|| unreachable!("counter event recorded"));
        assert_eq!((c.pid, c.tid, c.args.value), (CYCLE_PID, 3, 42.0));

        // JSON round-trips through serde with the required fields.
        let json = ct.to_json();
        let back: TraceFile = serde_json::from_str(&json)
            .unwrap_or_else(|e| unreachable!("trace JSON round-trips: {e}"));
        assert_eq!(back, file);
        for ev in &back.traceEvents {
            assert!(!ev.ph.is_empty() && ev.pid > 0, "ph/pid required");
        }

        // Ring overflow drops and counts exactly.
        clear();
        set_ring_capacity(8);
        for i in 0..20 {
            complete("t", "burst", i as f64, 1.0);
        }
        let mut ct = ChromeTrace::new();
        drain_into(&mut ct);
        assert_eq!(ct.len(), 8, "ring keeps exactly its capacity");
        assert_eq!(events_dropped(), 12, "every overflow is counted");
        assert!(dropped_counter().get() >= 12);
        set_ring_capacity(DEFAULT_RING_CAPACITY);

        // Track override guard restores on drop.
        clear();
        {
            let _g = with_track(HOST_PID, 777);
            instant("t", "routed");
        }
        instant("t", "default");
        let mut ct = ChromeTrace::new();
        drain_into(&mut ct);
        let routed = ct
            .events
            .iter()
            .find(|e| e.name == "routed")
            .unwrap_or_else(|| unreachable!("routed event recorded"));
        assert_eq!(routed.tid, 777);
        let default = ct
            .events
            .iter()
            .find(|e| e.name == "default")
            .unwrap_or_else(|| unreachable!("default event recorded"));
        assert_ne!(default.tid, 777, "guard must restore the thread track");

        clear();
        set_trace(None);
    }
}
