//! Property-based tests of the workload shape model.

use dnn_models::{batching, duplication, intensity, Layer, Network};
use proptest::prelude::*;

/// Strategy: a valid conv layer.
fn conv_layer() -> impl Strategy<Value = Layer> {
    (
        4u32..=64,  // input h = w
        1u32..=64,  // in channels
        1u32..=128, // out channels
        prop_oneof![Just(1u32), Just(3), Just(5), Just(7)],
        1u32..=2, // stride
    )
        .prop_filter_map("kernel must fit", |(hw, c, k, kernel, stride)| {
            if hw + 2 * (kernel / 2) < kernel {
                return None;
            }
            Some(Layer::conv("p", (hw, hw), c, k, kernel, stride, kernel / 2))
        })
}

proptest! {
    /// MACs scale exactly linearly with batch.
    #[test]
    fn macs_linear_in_batch(l in conv_layer(), b in 1u32..=16) {
        prop_assert_eq!(l.macs(b), u64::from(b) * l.macs(1));
    }

    /// Output never has more pixels than the padded input allows, and
    /// shapes are always non-degenerate.
    #[test]
    fn output_shape_sane(l in conv_layer()) {
        let (oh, ow) = l.output_hw();
        prop_assert!(oh >= 1 && ow >= 1);
        let (ih, iw) = l.input_hw();
        prop_assert!(oh <= ih + 2 * l.padding());
        prop_assert!(ow <= iw + 2 * l.padding());
    }

    /// Working set is exactly ifmap + ofmap of one image.
    #[test]
    fn working_set_is_if_plus_of(l in conv_layer()) {
        prop_assert_eq!(l.working_set_bytes(), l.ifmap_bytes(1) + l.ofmap_bytes(1));
    }

    /// Duplication accounting never goes negative and its ratio stays
    /// in [0, 1).
    #[test]
    fn duplication_ratio_bounded(l in conv_layer()) {
        let d = duplication::layer_duplication(&l);
        let r = d.duplicated_ratio();
        prop_assert!((0.0..1.0).contains(&r), "ratio {}", r);
    }

    /// Network intensity is monotone non-decreasing in batch: bigger
    /// batches amortize weights and can only raise MAC/byte.
    #[test]
    fn intensity_monotone_in_batch(l in conv_layer(), b in 1u32..=8) {
        let net = Network::new("p", vec![l]);
        let i1 = intensity::network_intensity(&net, b);
        let i2 = intensity::network_intensity(&net, b + 1);
        prop_assert!(i2 >= i1 * 0.999, "{} -> {}", i1, i2);
    }

    /// Batch sizing is monotone in capacity and always ≥ 1.
    #[test]
    fn max_batch_monotone_in_capacity(l in conv_layer(), mb in 1u64..=64) {
        let net = Network::new("p", vec![l]);
        let small = batching::max_batch(&net, mb * 1024 * 1024, 1.0, 30);
        let big = batching::max_batch(&net, 2 * mb * 1024 * 1024, 1.0, 30);
        prop_assert!(small >= 1);
        prop_assert!(big >= small);
    }

    /// Serde round-trip for arbitrary networks.
    #[test]
    fn network_json_roundtrip(layers in prop::collection::vec(conv_layer(), 1..6)) {
        let net = Network::new("p", layers);
        let back = Network::from_json(&net.to_json()).unwrap();
        prop_assert_eq!(net, back);
    }

    /// Roofline is the min of the two regimes.
    #[test]
    fn roofline_is_min(peak in 1.0e9..1.0e15, bw in 1.0e6..1.0e12, i in 0.01f64..1.0e6) {
        let r = intensity::roofline_macs_per_s(peak, bw, i);
        prop_assert!(r <= peak * (1.0 + 1e-12));
        prop_assert!(r <= bw * i * (1.0 + 1e-12));
        prop_assert!(r >= peak.min(bw * i) * (1.0 - 1e-12));
    }
}
