//! On-chip batch sizing — the methodology behind the paper's Table II.
//!
//! The batch size for each (design, workload) pair is "the maximum
//! value which can be held by a given on-chip buffer capacity without
//! additional off-chip memory access", bounded by the layer with the
//! largest per-image working set, and capped conservatively (the paper
//! uses 30).

use crate::network::Network;

/// The conservative cap the paper applies to every batch size.
pub const PAPER_BATCH_CAP: u32 = 30;

/// Maximum batch that fits `capacity_bytes` of activation buffering
/// for `net`, at least 1, capped at `cap`.
///
/// `efficiency` ∈ (0, 1] derates the usable capacity for designs whose
/// buffer structure strands space (the paper's Fig. 18 scenarios:
/// monolithic shift registers dedicate whole rows per channel and
/// flush between filter sets). Pass 1.0 for fully flexible (chunked)
/// buffers.
///
/// # Panics
///
/// Panics if `efficiency` is not in `(0, 1]` or `cap` is zero.
pub fn max_batch(net: &Network, capacity_bytes: u64, efficiency: f64, cap: u32) -> u32 {
    assert!(
        efficiency > 0.0 && efficiency <= 1.0,
        "efficiency must be in (0,1], got {efficiency}"
    );
    assert!(cap > 0, "cap must be positive");
    let usable = (capacity_bytes as f64 * efficiency) as u64;
    let ws = net.max_working_set_bytes();
    let b = (usable / ws.max(1)) as u32;
    b.clamp(1, cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn tpu_vgg16_batch_is_3() {
        // Table II: TPU (24 MB unified buffer) runs VGG16 at batch 3.
        let b = max_batch(&zoo::vgg16(), 24 * MB, 1.0, PAPER_BATCH_CAP);
        assert_eq!(b, 3);
    }

    #[test]
    fn supernpu_vgg16_batch_is_7() {
        // Table II: SuperNPU (48 MB of activation buffering) runs
        // VGG16 at batch 7.
        let b = max_batch(&zoo::vgg16(), 48 * MB, 1.0, PAPER_BATCH_CAP);
        assert_eq!(b, 7);
    }

    #[test]
    fn large_buffers_hit_the_cap() {
        let b = max_batch(&zoo::mobilenet(), 48 * MB, 1.0, PAPER_BATCH_CAP);
        assert_eq!(b, PAPER_BATCH_CAP);
    }

    #[test]
    fn at_least_one_even_when_oversized() {
        let b = max_batch(&zoo::vgg16(), MB, 1.0, PAPER_BATCH_CAP);
        assert_eq!(b, 1);
    }

    #[test]
    fn efficiency_derates_capacity() {
        let full = max_batch(&zoo::resnet50(), 24 * MB, 1.0, PAPER_BATCH_CAP);
        let derated = max_batch(&zoo::resnet50(), 24 * MB, 0.2, PAPER_BATCH_CAP);
        assert!(derated < full, "derated {derated} full {full}");
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn bad_efficiency_panics() {
        let _ = max_batch(&zoo::vgg16(), 24 * MB, 0.0, PAPER_BATCH_CAP);
    }
}
