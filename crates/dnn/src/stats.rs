//! Workload composition statistics: where a network's MACs, weights
//! and activations live — the shape facts behind the paper's per-
//! workload behaviour (AlexNet's FC tail, MobileNet's depthwise
//! layers, VGG's huge early activations).

use serde::{Deserialize, Serialize};

use crate::layer::LayerKind;
use crate::network::Network;

/// Aggregate composition of one network.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Layers by kind: (conv, depthwise, fully-connected).
    pub layer_counts: (usize, usize, usize),
    /// MACs per image by kind.
    pub conv_macs: u64,
    /// Depthwise MACs per image.
    pub depthwise_macs: u64,
    /// Fully-connected MACs per image.
    pub fc_macs: u64,
    /// Total weight bytes.
    pub weight_bytes: u64,
    /// Total activation bytes produced per image (sum of ofmaps).
    pub activation_bytes: u64,
    /// The single largest layer's weight bytes.
    pub max_layer_weight_bytes: u64,
    /// The single largest per-image working set (ifmap + ofmap).
    pub max_working_set_bytes: u64,
}

impl NetworkStats {
    /// Total MACs per image.
    pub fn total_macs(&self) -> u64 {
        self.conv_macs + self.depthwise_macs + self.fc_macs
    }

    /// Fraction of MACs in fully-connected layers.
    pub fn fc_mac_fraction(&self) -> f64 {
        if self.total_macs() == 0 {
            0.0
        } else {
            self.fc_macs as f64 / self.total_macs() as f64
        }
    }

    /// Fraction of *weights* in fully-connected layers is what makes a
    /// network memory-bound at small batches; approximated here by the
    /// weight share of the largest layer.
    pub fn weight_concentration(&self) -> f64 {
        if self.weight_bytes == 0 {
            0.0
        } else {
            self.max_layer_weight_bytes as f64 / self.weight_bytes as f64
        }
    }
}

/// Compute composition statistics for `net`.
pub fn network_stats(net: &Network) -> NetworkStats {
    let mut s = NetworkStats::default();
    for l in net.iter() {
        let macs = l.macs(1);
        match l.kind() {
            LayerKind::Conv => {
                s.layer_counts.0 += 1;
                s.conv_macs += macs;
            }
            LayerKind::Depthwise => {
                s.layer_counts.1 += 1;
                s.depthwise_macs += macs;
            }
            LayerKind::FullyConnected => {
                s.layer_counts.2 += 1;
                s.fc_macs += macs;
            }
        }
        s.weight_bytes += l.weight_bytes();
        s.activation_bytes += l.ofmap_bytes(1);
        s.max_layer_weight_bytes = s.max_layer_weight_bytes.max(l.weight_bytes());
        s.max_working_set_bytes = s.max_working_set_bytes.max(l.working_set_bytes());
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn alexnet_is_fc_weight_heavy() {
        // AlexNet's fc6 (9216×4096) holds most of its 60M parameters.
        let s = network_stats(&zoo::alexnet());
        assert_eq!(s.layer_counts, (5, 0, 3));
        assert!(
            s.weight_concentration() > 0.5,
            "{}",
            s.weight_concentration()
        );
        // But convs dominate the MACs.
        assert!(s.fc_mac_fraction() < 0.15, "{}", s.fc_mac_fraction());
    }

    #[test]
    fn mobilenet_depthwise_macs_are_small_share() {
        // Depthwise layers are cheap in MACs despite being half the
        // layers — the pointwise convs do the heavy lifting.
        let s = network_stats(&zoo::mobilenet());
        assert_eq!(s.layer_counts.1, 13);
        let dw_share = s.depthwise_macs as f64 / s.total_macs() as f64;
        assert!(dw_share < 0.10, "depthwise share {dw_share}");
    }

    #[test]
    fn vgg_has_most_activations() {
        let vgg = network_stats(&zoo::vgg16());
        for other in [zoo::alexnet(), zoo::googlenet(), zoo::resnet50()] {
            let o = network_stats(&other);
            assert!(
                vgg.activation_bytes > o.activation_bytes,
                "{} has more activations than VGG",
                other.name()
            );
        }
    }

    #[test]
    fn totals_match_network_methods() {
        for net in zoo::all() {
            let s = network_stats(&net);
            assert_eq!(s.total_macs(), net.total_macs(1), "{}", net.name());
            assert_eq!(s.weight_bytes, net.total_weight_bytes(), "{}", net.name());
            assert_eq!(
                s.max_working_set_bytes,
                net.max_working_set_bytes(),
                "{}",
                net.name()
            );
        }
    }

    #[test]
    fn googlenet_is_pure_conv_plus_one_fc() {
        let s = network_stats(&zoo::googlenet());
        assert_eq!(s.layer_counts.1, 0);
        assert_eq!(s.layer_counts.2, 1);
        assert!(s.fc_mac_fraction() < 0.01);
    }
}
