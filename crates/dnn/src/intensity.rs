//! Computational-intensity accounting for the roofline analysis
//! (the paper's Fig. 17).
//!
//! The paper defines computational intensity as "the number of MAC
//! operations executed with one weight data mapped on the PE",
//! including the effect of batch size on data reuse. Off-chip traffic
//! per layer is the weights (fetched once per layer) plus the ifmap
//! and ofmap of every image in the batch.

use crate::layer::Layer;
use crate::network::Network;

/// MACs per off-chip byte for one layer at the given batch.
pub fn layer_intensity(layer: &Layer, batch: u32) -> f64 {
    let traffic = layer.weight_bytes() + layer.ifmap_bytes(batch) + layer.ofmap_bytes(batch);
    layer.macs(batch) as f64 / traffic as f64
}

/// MACs per weight element held in a PE — the paper's per-weight reuse
/// measure: with batch `b`, each mapped weight is used once per output
/// pixel per image.
pub fn macs_per_weight(layer: &Layer, batch: u32) -> f64 {
    (layer.output_pixels() * u64::from(batch)) as f64
}

/// Whole-network intensity: total MACs over total off-chip traffic.
pub fn network_intensity(net: &Network, batch: u32) -> f64 {
    let macs: u64 = net.total_macs(batch);
    let traffic: u64 = net
        .iter()
        .map(|l| l.weight_bytes() + l.ifmap_bytes(batch) + l.ofmap_bytes(batch))
        .sum();
    macs as f64 / traffic as f64
}

/// Roofline-attainable throughput in MAC/s for a machine with
/// `peak_macs_per_s` and `bandwidth_bytes_per_s`, at the given
/// intensity (MAC/byte).
pub fn roofline_macs_per_s(
    peak_macs_per_s: f64,
    bandwidth_bytes_per_s: f64,
    intensity: f64,
) -> f64 {
    peak_macs_per_s.min(bandwidth_bytes_per_s * intensity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn batch_raises_network_intensity() {
        let net = zoo::resnet50();
        let i1 = network_intensity(&net, 1);
        let i8 = network_intensity(&net, 8);
        assert!(i8 > i1, "batch-8 intensity {i8} must exceed batch-1 {i1}");
    }

    #[test]
    fn fc_layers_are_memory_bound() {
        // FC at batch 1: one MAC per weight byte (plus activations) →
        // intensity just under 1.
        let l = crate::Layer::fully_connected("fc", 4096, 4096);
        let i = layer_intensity(&l, 1);
        assert!(i < 1.0, "intensity {i}");
        // Large batch amortizes the weights.
        assert!(layer_intensity(&l, 32) > 10.0 * i);
    }

    #[test]
    fn conv_layers_beat_fc_intensity() {
        let conv = crate::Layer::conv("c", (56, 56), 256, 256, 3, 1, 1);
        let fc = crate::Layer::fully_connected("fc", 4096, 4096);
        assert!(layer_intensity(&conv, 1) > 50.0 * layer_intensity(&fc, 1));
    }

    #[test]
    fn macs_per_weight_scales_with_batch_and_pixels() {
        let l = crate::Layer::conv("c", (56, 56), 64, 64, 3, 1, 1);
        assert_eq!(macs_per_weight(&l, 1), (56 * 56) as f64);
        assert_eq!(macs_per_weight(&l, 4), (4 * 56 * 56) as f64);
    }

    #[test]
    fn roofline_has_two_regimes() {
        let peak = 3366e12;
        let bw = 300e9;
        // Memory-bound region: performance = bw * intensity.
        assert_eq!(roofline_macs_per_s(peak, bw, 10.0), 3000e9);
        // Compute-bound region caps at peak.
        assert_eq!(roofline_macs_per_s(peak, bw, 1e9), peak);
    }

    #[test]
    fn vgg_single_batch_is_far_from_sfq_peak() {
        // The crux of Fig. 17: at batch 1 even the best workload cannot
        // come close to the 3366 TMAC/s SFQ peak through 300 GB/s.
        let i = network_intensity(&zoo::vgg16(), 1);
        let attainable = roofline_macs_per_s(3366e12, 300e9, i);
        assert!(
            attainable < 0.1 * 3366e12,
            "attainable {attainable:e} suspiciously close to peak"
        );
    }
}
