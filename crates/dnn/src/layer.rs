//! A single network layer, described by shape.

use serde::{Deserialize, Serialize};

use crate::ELEM_BYTES;

/// What kind of computation a layer performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// Standard convolution: every filter spans all input channels.
    Conv,
    /// Depthwise convolution: one filter per input channel
    /// (MobileNet's 3×3 stages).
    Depthwise,
    /// Fully-connected layer (modeled as a 1×1 convolution over a
    /// 1×1 spatial extent).
    FullyConnected,
}

/// Shape description of one layer.
///
/// Constructed through [`Layer::conv`], [`Layer::depthwise`] or
/// [`Layer::fully_connected`]; all cycle/energy modeling downstream
/// derives from these shapes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Layer {
    name: String,
    kind: LayerKind,
    in_h: u32,
    in_w: u32,
    in_c: u32,
    out_c: u32,
    kernel: u32,
    stride: u32,
    padding: u32,
}

impl Layer {
    /// A standard convolution layer.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or the kernel does not fit the
    /// padded input.
    pub fn conv(
        name: &str,
        in_hw: (u32, u32),
        in_c: u32,
        out_c: u32,
        kernel: u32,
        stride: u32,
        padding: u32,
    ) -> Self {
        let l = Layer {
            name: name.to_owned(),
            kind: LayerKind::Conv,
            in_h: in_hw.0,
            in_w: in_hw.1,
            in_c,
            out_c,
            kernel,
            stride,
            padding,
        };
        l.assert_valid();
        l
    }

    /// A depthwise convolution layer (`out_c == in_c`).
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions (see [`Layer::conv`]).
    pub fn depthwise(
        name: &str,
        in_hw: (u32, u32),
        channels: u32,
        kernel: u32,
        stride: u32,
    ) -> Self {
        let l = Layer {
            name: name.to_owned(),
            kind: LayerKind::Depthwise,
            in_h: in_hw.0,
            in_w: in_hw.1,
            in_c: channels,
            out_c: channels,
            kernel,
            stride,
            padding: kernel / 2,
        };
        l.assert_valid();
        l
    }

    /// A fully-connected layer with `inputs` input activations and
    /// `outputs` output neurons.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions.
    pub fn fully_connected(name: &str, inputs: u32, outputs: u32) -> Self {
        let l = Layer {
            name: name.to_owned(),
            kind: LayerKind::FullyConnected,
            in_h: 1,
            in_w: 1,
            in_c: inputs,
            out_c: outputs,
            kernel: 1,
            stride: 1,
            padding: 0,
        };
        l.assert_valid();
        l
    }

    fn assert_valid(&self) {
        assert!(
            self.in_h > 0 && self.in_w > 0 && self.in_c > 0 && self.out_c > 0,
            "{}: zero dimension",
            self.name
        );
        assert!(
            self.kernel > 0 && self.stride > 0,
            "{}: zero kernel/stride",
            self.name
        );
        assert!(
            self.in_h + 2 * self.padding >= self.kernel
                && self.in_w + 2 * self.padding >= self.kernel,
            "{}: kernel larger than padded input",
            self.name
        );
    }

    /// Layer name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Layer kind.
    pub fn kind(&self) -> LayerKind {
        self.kind
    }

    /// Input spatial size (height, width).
    pub fn input_hw(&self) -> (u32, u32) {
        (self.in_h, self.in_w)
    }

    /// Input channel count.
    pub fn in_channels(&self) -> u32 {
        self.in_c
    }

    /// Output channel (filter) count.
    pub fn out_channels(&self) -> u32 {
        self.out_c
    }

    /// Square kernel extent (R = S).
    pub fn kernel(&self) -> u32 {
        self.kernel
    }

    /// Stride.
    pub fn stride(&self) -> u32 {
        self.stride
    }

    /// Zero padding on each side.
    pub fn padding(&self) -> u32 {
        self.padding
    }

    /// Output spatial size (height, width).
    pub fn output_hw(&self) -> (u32, u32) {
        let oh = (self.in_h + 2 * self.padding - self.kernel) / self.stride + 1;
        let ow = (self.in_w + 2 * self.padding - self.kernel) / self.stride + 1;
        (oh, ow)
    }

    /// Number of output pixels per image (oh × ow).
    pub fn output_pixels(&self) -> u64 {
        let (oh, ow) = self.output_hw();
        u64::from(oh) * u64::from(ow)
    }

    /// Length of the contraction (reduction) dimension mapped onto the
    /// PE-array *rows* under weight-stationary dataflow.
    pub fn contraction_len(&self) -> u64 {
        match self.kind {
            LayerKind::Conv => {
                u64::from(self.kernel) * u64::from(self.kernel) * u64::from(self.in_c)
            }
            LayerKind::Depthwise => u64::from(self.kernel) * u64::from(self.kernel),
            LayerKind::FullyConnected => u64::from(self.in_c),
        }
    }

    /// Number of independent filters mapped onto PE-array *columns*.
    pub fn filter_count(&self) -> u64 {
        u64::from(self.out_c)
    }

    /// Multiply-accumulate operations for `batch` images.
    pub fn macs(&self, batch: u32) -> u64 {
        let per_pixel = match self.kind {
            LayerKind::Conv | LayerKind::FullyConnected => {
                self.contraction_len() * self.filter_count()
            }
            LayerKind::Depthwise => self.contraction_len() * u64::from(self.in_c),
        };
        self.output_pixels() * per_pixel * u64::from(batch)
    }

    /// Input feature-map bytes for `batch` images.
    pub fn ifmap_bytes(&self, batch: u32) -> u64 {
        u64::from(self.in_h)
            * u64::from(self.in_w)
            * u64::from(self.in_c)
            * u64::from(batch)
            * ELEM_BYTES
    }

    /// Output feature-map bytes for `batch` images.
    pub fn ofmap_bytes(&self, batch: u32) -> u64 {
        self.output_pixels() * u64::from(self.out_c) * u64::from(batch) * ELEM_BYTES
    }

    /// Weight bytes.
    pub fn weight_bytes(&self) -> u64 {
        let k2 = u64::from(self.kernel) * u64::from(self.kernel);
        let w = match self.kind {
            LayerKind::Conv => k2 * u64::from(self.in_c) * u64::from(self.out_c),
            LayerKind::Depthwise => k2 * u64::from(self.in_c),
            LayerKind::FullyConnected => u64::from(self.in_c) * u64::from(self.out_c),
        };
        w * ELEM_BYTES
    }

    /// Per-batch working set: ifmap + ofmap of a single image, the
    /// quantity that limits on-chip batch size (Table II methodology).
    pub fn working_set_bytes(&self) -> u64 {
        self.ifmap_bytes(1) + self.ofmap_bytes(1)
    }
}

impl std::fmt::Display for Layer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (oh, ow) = self.output_hw();
        write!(
            f,
            "{} [{:?} {}x{}x{} -> {}x{}x{}, k{} s{}]",
            self.name,
            self.kind,
            self.in_h,
            self.in_w,
            self.in_c,
            oh,
            ow,
            self.out_c,
            self.kernel,
            self.stride
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_conv1_shape() {
        // 224x224x3, 96 filters 11x11 stride 4, pad 2 -> 55x55.
        let l = Layer::conv("conv1", (224, 224), 3, 96, 11, 4, 2);
        assert_eq!(l.output_hw(), (55, 55));
        assert_eq!(l.macs(1), 55 * 55 * 11 * 11 * 3 * 96);
        assert_eq!(l.weight_bytes(), 11 * 11 * 3 * 96);
    }

    #[test]
    fn vgg_conv_3x3_same_padding_preserves_hw() {
        let l = Layer::conv("c", (224, 224), 64, 64, 3, 1, 1);
        assert_eq!(l.output_hw(), (224, 224));
        assert_eq!(l.working_set_bytes(), 224 * 224 * 64 * 2);
    }

    #[test]
    fn depthwise_macs_scale_with_channels_not_squared() {
        let l = Layer::depthwise("dw", (112, 112), 32, 3, 1);
        assert_eq!(l.output_hw(), (112, 112));
        assert_eq!(l.macs(1), 112 * 112 * 9 * 32);
        assert_eq!(l.contraction_len(), 9);
    }

    #[test]
    fn fully_connected_is_1x1() {
        let l = Layer::fully_connected("fc6", 9216, 4096);
        assert_eq!(l.output_hw(), (1, 1));
        assert_eq!(l.macs(1), 9216 * 4096);
        assert_eq!(l.macs(4), 4 * 9216 * 4096);
        assert_eq!(l.weight_bytes(), 9216 * 4096);
    }

    #[test]
    fn strided_output_math() {
        let l = Layer::conv("s2", (112, 112), 64, 128, 3, 2, 1);
        assert_eq!(l.output_hw(), (56, 56));
    }

    #[test]
    #[should_panic(expected = "zero dimension")]
    fn zero_channels_panics() {
        let _ = Layer::conv("bad", (8, 8), 0, 8, 3, 1, 1);
    }

    #[test]
    fn batch_scales_ifmap_and_macs_linearly() {
        let l = Layer::conv("c", (56, 56), 64, 64, 3, 1, 1);
        assert_eq!(l.ifmap_bytes(8), 8 * l.ifmap_bytes(1));
        assert_eq!(l.macs(8), 8 * l.macs(1));
    }

    #[test]
    fn display_mentions_name_and_shape() {
        let l = Layer::conv("conv1", (224, 224), 3, 96, 11, 4, 2);
        let s = l.to_string();
        assert!(s.contains("conv1") && s.contains("224"));
    }
}
