//! The six CNN workloads of the paper's evaluation (§V–VI), described
//! at the layer-shape level.
//!
//! Shapes follow the original publications (AlexNet, VGG16, GoogLeNet,
//! MobileNet v1, ResNet-50) and, for Faster R-CNN, the standard
//! VGG16-backbone configuration at a 600×800 test image with its RPN
//! and detection head.

use crate::layer::Layer;
use crate::network::Network;

/// AlexNet (Krizhevsky et al., 2012): 5 conv + 3 FC layers.
pub fn alexnet() -> Network {
    Network::new(
        "AlexNet",
        vec![
            Layer::conv("conv1", (224, 224), 3, 96, 11, 4, 2),
            Layer::conv("conv2", (27, 27), 96, 256, 5, 1, 2),
            Layer::conv("conv3", (13, 13), 256, 384, 3, 1, 1),
            Layer::conv("conv4", (13, 13), 384, 384, 3, 1, 1),
            Layer::conv("conv5", (13, 13), 384, 256, 3, 1, 1),
            Layer::fully_connected("fc6", 9216, 4096),
            Layer::fully_connected("fc7", 4096, 4096),
            Layer::fully_connected("fc8", 4096, 1000),
        ],
    )
}

/// VGG16 (Simonyan & Zisserman, 2014): 13 conv + 3 FC layers.
pub fn vgg16() -> Network {
    Network::new("VGG16", vgg16_backbone(224, 224, true))
}

/// The VGG16 convolutional backbone at an arbitrary input size;
/// `with_head` appends the three FC layers (which assume 224×224).
fn vgg16_backbone(h: u32, w: u32, with_head: bool) -> Vec<Layer> {
    let mut layers = Vec::new();
    let mut hw = (h, w);
    let mut c = 3u32;
    let stages: [(u32, u32); 5] = [(2, 64), (2, 128), (3, 256), (3, 512), (3, 512)];
    for (stage, &(reps, k)) in stages.iter().enumerate() {
        for r in 0..reps {
            let name = format!("conv{}_{}", stage + 1, r + 1);
            layers.push(Layer::conv(&name, hw, c, k, 3, 1, 1));
            c = k;
        }
        // 2×2 max-pool between stages (shape bookkeeping only).
        hw = (hw.0 / 2, hw.1 / 2);
    }
    if with_head {
        layers.push(Layer::fully_connected("fc6", 7 * 7 * 512, 4096));
        layers.push(Layer::fully_connected("fc7", 4096, 4096));
        layers.push(Layer::fully_connected("fc8", 4096, 1000));
    }
    layers
}

/// Faster R-CNN (Ren et al., 2015) with the VGG16 backbone at a
/// 600×800 test image: backbone through conv5_3, the 3×3 RPN with its
/// objectness/box heads, and the per-image detection head.
pub fn faster_rcnn() -> Network {
    let mut layers = vgg16_backbone(600, 800, false);
    // Backbone stops after conv5_3 (no pool5): feature map 37x50x512.
    let feat = (37, 50);
    layers.push(Layer::conv("rpn_conv", feat, 512, 512, 3, 1, 1));
    layers.push(Layer::conv("rpn_cls", feat, 512, 18, 1, 1, 0));
    layers.push(Layer::conv("rpn_bbox", feat, 512, 36, 1, 1, 0));
    // Detection head on RoI-pooled 7x7x512 features (one
    // representative RoI batch is folded into the FC shapes).
    layers.push(Layer::fully_connected("head_fc6", 7 * 7 * 512, 4096));
    layers.push(Layer::fully_connected("head_fc7", 4096, 4096));
    layers.push(Layer::fully_connected("head_cls", 4096, 21));
    layers.push(Layer::fully_connected("head_bbox", 4096, 84));
    Network::new("FasterRCNN", layers)
}

/// One GoogLeNet inception module: 1×1, 1×1→3×3, 1×1→5×5 and
/// pool→1×1 branches.
#[allow(clippy::too_many_arguments)]
fn inception(
    layers: &mut Vec<Layer>,
    name: &str,
    hw: (u32, u32),
    in_c: u32,
    b1: u32,
    b2_reduce: u32,
    b2: u32,
    b3_reduce: u32,
    b3: u32,
    b4: u32,
) -> u32 {
    layers.push(Layer::conv(&format!("{name}_1x1"), hw, in_c, b1, 1, 1, 0));
    layers.push(Layer::conv(
        &format!("{name}_3x3r"),
        hw,
        in_c,
        b2_reduce,
        1,
        1,
        0,
    ));
    layers.push(Layer::conv(
        &format!("{name}_3x3"),
        hw,
        b2_reduce,
        b2,
        3,
        1,
        1,
    ));
    layers.push(Layer::conv(
        &format!("{name}_5x5r"),
        hw,
        in_c,
        b3_reduce,
        1,
        1,
        0,
    ));
    layers.push(Layer::conv(
        &format!("{name}_5x5"),
        hw,
        b3_reduce,
        b3,
        5,
        1,
        2,
    ));
    layers.push(Layer::conv(&format!("{name}_poolp"), hw, in_c, b4, 1, 1, 0));
    b1 + b2 + b3 + b4
}

/// GoogLeNet (Szegedy et al., 2014): stem + 9 inception modules + FC.
pub fn googlenet() -> Network {
    let mut layers = vec![
        Layer::conv("conv1", (224, 224), 3, 64, 7, 2, 3),
        Layer::conv("conv2_reduce", (56, 56), 64, 64, 1, 1, 0),
        Layer::conv("conv2", (56, 56), 64, 192, 3, 1, 1),
    ];
    let mut c = 192;
    c = inception(&mut layers, "3a", (28, 28), c, 64, 96, 128, 16, 32, 32);
    c = inception(&mut layers, "3b", (28, 28), c, 128, 128, 192, 32, 96, 64);
    c = inception(&mut layers, "4a", (14, 14), c, 192, 96, 208, 16, 48, 64);
    c = inception(&mut layers, "4b", (14, 14), c, 160, 112, 224, 24, 64, 64);
    c = inception(&mut layers, "4c", (14, 14), c, 128, 128, 256, 24, 64, 64);
    c = inception(&mut layers, "4d", (14, 14), c, 112, 144, 288, 32, 64, 64);
    c = inception(&mut layers, "4e", (14, 14), c, 256, 160, 320, 32, 128, 128);
    c = inception(&mut layers, "5a", (7, 7), c, 256, 160, 320, 32, 128, 128);
    c = inception(&mut layers, "5b", (7, 7), c, 384, 192, 384, 48, 128, 128);
    layers.push(Layer::fully_connected("fc", c, 1000));
    Network::new("GoogLeNet", layers)
}

/// MobileNet v1 (Howard et al., 2017), width multiplier 1.0: a 3×3
/// stem plus 13 depthwise-separable pairs and the classifier.
pub fn mobilenet() -> Network {
    let mut layers = vec![Layer::conv("conv1", (224, 224), 3, 32, 3, 2, 1)];
    // (input hw, in channels, out channels, depthwise stride)
    let pairs: [(u32, u32, u32, u32); 13] = [
        (112, 32, 64, 1),
        (112, 64, 128, 2),
        (56, 128, 128, 1),
        (56, 128, 256, 2),
        (28, 256, 256, 1),
        (28, 256, 512, 2),
        (14, 512, 512, 1),
        (14, 512, 512, 1),
        (14, 512, 512, 1),
        (14, 512, 512, 1),
        (14, 512, 512, 1),
        (14, 512, 1024, 2),
        (7, 1024, 1024, 1),
    ];
    for (i, &(hw, in_c, out_c, s)) in pairs.iter().enumerate() {
        let out_hw = hw / s;
        layers.push(Layer::depthwise(
            &format!("dw{}", i + 1),
            (hw, hw),
            in_c,
            3,
            s,
        ));
        layers.push(Layer::conv(
            &format!("pw{}", i + 1),
            (out_hw, out_hw),
            in_c,
            out_c,
            1,
            1,
            0,
        ));
    }
    layers.push(Layer::fully_connected("fc", 1024, 1000));
    Network::new("MobileNet", layers)
}

/// ResNet-50 (He et al., 2015): stem + 16 bottleneck blocks + FC.
pub fn resnet50() -> Network {
    let mut layers = vec![Layer::conv("conv1", (224, 224), 3, 64, 7, 2, 3)];
    // (stage name, blocks, hw, mid channels, out channels, first stride)
    let stages: [(&str, u32, u32, u32, u32, u32); 4] = [
        ("conv2", 3, 56, 64, 256, 1),
        ("conv3", 4, 56, 128, 512, 2),
        ("conv4", 6, 28, 256, 1024, 2),
        ("conv5", 3, 14, 512, 2048, 2),
    ];
    let mut in_c = 64;
    for &(stage, blocks, in_hw, mid, out_c, first_stride) in &stages {
        let mut hw = in_hw;
        for b in 0..blocks {
            let stride = if b == 0 { first_stride } else { 1 };
            let name = |part: &str| format!("{stage}_{}_{part}", b + 1);
            layers.push(Layer::conv(
                &name("1x1a"),
                (hw, hw),
                in_c,
                mid,
                1,
                stride,
                0,
            ));
            let hw_mid = hw / stride;
            layers.push(Layer::conv(
                &name("3x3"),
                (hw_mid, hw_mid),
                mid,
                mid,
                3,
                1,
                1,
            ));
            layers.push(Layer::conv(
                &name("1x1b"),
                (hw_mid, hw_mid),
                mid,
                out_c,
                1,
                1,
                0,
            ));
            if b == 0 {
                // Projection shortcut.
                layers.push(Layer::conv(
                    &name("proj"),
                    (hw, hw),
                    in_c,
                    out_c,
                    1,
                    stride,
                    0,
                ));
            }
            in_c = out_c;
            hw = hw_mid;
        }
    }
    layers.push(Layer::fully_connected("fc", 2048, 1000));
    Network::new("ResNet50", layers)
}

/// All six evaluation workloads in the paper's presentation order.
pub fn all() -> Vec<Network> {
    vec![
        alexnet(),
        faster_rcnn(),
        googlenet(),
        mobilenet(),
        resnet50(),
        vgg16(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_workloads() {
        let nets = all();
        assert_eq!(nets.len(), 6);
        let names: Vec<&str> = nets.iter().map(Network::name).collect();
        assert_eq!(
            names,
            [
                "AlexNet",
                "FasterRCNN",
                "GoogLeNet",
                "MobileNet",
                "ResNet50",
                "VGG16"
            ]
        );
    }

    #[test]
    fn alexnet_macs_near_published() {
        // Single-tower AlexNet (no two-GPU channel split): ~1.1 GMAC
        // per image; the original split variant is ~0.72.
        let g = alexnet().total_macs(1) as f64 / 1e9;
        assert!(g > 0.9 && g < 1.3, "AlexNet GMAC = {g}");
    }

    #[test]
    fn vgg16_macs_near_published() {
        // ~15.5 GMAC per image.
        let g = vgg16().total_macs(1) as f64 / 1e9;
        assert!(g > 14.0 && g < 17.0, "VGG16 GMAC = {g}");
    }

    #[test]
    fn resnet50_macs_near_published() {
        // ~3.9-4.1 GMAC per image.
        let g = resnet50().total_macs(1) as f64 / 1e9;
        assert!(g > 3.3 && g < 4.6, "ResNet50 GMAC = {g}");
    }

    #[test]
    fn googlenet_macs_near_published() {
        // ~1.5-1.6 GMAC per image.
        let g = googlenet().total_macs(1) as f64 / 1e9;
        assert!(g > 1.1 && g < 2.0, "GoogLeNet GMAC = {g}");
    }

    #[test]
    fn mobilenet_macs_near_published() {
        // ~0.57 GMAC per image.
        let g = mobilenet().total_macs(1) as f64 / 1e9;
        assert!(g > 0.45 && g < 0.75, "MobileNet GMAC = {g}");
    }

    #[test]
    fn vgg16_largest_working_set_is_conv1_2() {
        // 224*224*64 in + out = 6.4 MB: the layer that limits VGG16's
        // batch size in Table II.
        let ws = vgg16().max_working_set_bytes();
        assert_eq!(ws, 2 * 224 * 224 * 64);
    }

    #[test]
    fn resnet_channel_bookkeeping() {
        let n = resnet50();
        // 1 stem + (3+4+6+3) blocks×3 + 4 projections + fc = 1+48+4+1 = 54.
        assert_eq!(n.layers().len(), 54);
    }

    #[test]
    fn googlenet_concat_channels() {
        // After 3a the concat width is 256; encoded in the next module's
        // input channel counts.
        let n = googlenet();
        let l = n
            .iter()
            .find(|l| l.name() == "3b_1x1")
            .expect("module 3b exists");
        assert_eq!(l.in_channels(), 256);
    }

    #[test]
    fn mobilenet_alternates_dw_pw() {
        let n = mobilenet();
        let dw = n
            .iter()
            .filter(|l| l.kind() == crate::LayerKind::Depthwise)
            .count();
        assert_eq!(dw, 13);
    }

    #[test]
    fn faster_rcnn_backbone_scales_with_input() {
        let n = faster_rcnn();
        // Much heavier than plain VGG16 due to the 600x800 input.
        assert!(n.total_macs(1) > vgg16().total_macs(1) * 3);
    }
}
