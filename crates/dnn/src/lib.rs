//! # dnn-models
//!
//! Shape-level descriptions of the six CNN inference workloads the
//! SuperNPU paper evaluates (AlexNet, Faster R-CNN, GoogLeNet,
//! MobileNet, ResNet-50, VGG16), together with the shape analyses the
//! paper performs on them:
//!
//! * per-layer/neural-network MAC and byte accounting ([`Layer`],
//!   [`Network`]),
//! * computational intensity in MAC/byte for the roofline analysis of
//!   Fig. 17 ([`intensity`]),
//! * the unique-vs-duplicated ifmap pixel breakdown of Fig. 8
//!   ([`duplication`]),
//! * maximum on-chip batch sizing per buffer capacity, the paper's
//!   Table II methodology ([`batching`]).
//!
//! NPU inference simulation is *shape driven*: cycle counts never
//! depend on pixel values, so a network is fully described by its
//! layer geometry — exactly how SCALE-SIM and the paper's simulator
//! consume workloads.
//!
//! # Example
//!
//! ```
//! use dnn_models::zoo;
//!
//! let vgg = zoo::vgg16();
//! assert_eq!(vgg.name(), "VGG16");
//! // VGG16 performs ~15.5 GMAC per 224x224 image.
//! let gmac = vgg.total_macs(1) as f64 / 1e9;
//! assert!(gmac > 14.0 && gmac < 17.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batching;
pub mod duplication;
pub mod intensity;
mod layer;
mod network;
pub mod stats;
pub mod zoo;
pub mod zoo_ext;

pub use layer::{Layer, LayerKind};
pub use network::Network;

/// Bytes per tensor element. The paper's NPU datapath is 8-bit
/// (weights, activations), matching the TPU's int8 inference mode.
pub const ELEM_BYTES: u64 = 1;
