//! Extension workloads beyond the paper's six CNNs.
//!
//! The paper targets CNN inference "as the first case study"; these
//! additional shapes probe how its conclusions carry to other
//! DNN families:
//!
//! * [`resnet18`] / [`resnet101`] — shallower/deeper residual nets
//!   (basic blocks vs more bottlenecks),
//! * [`transformer_encoder`] — a BERT-base-class encoder layer as a
//!   sequence of matmuls: the FC-heavy regime where weight reuse, not
//!   window reuse, dominates,
//! * [`mlp_mixer`] — token/channel-mixing MLPs, a middle ground.

use crate::layer::Layer;
use crate::network::Network;

/// ResNet-18 (basic residual blocks, 224×224 input).
pub fn resnet18() -> Network {
    let mut layers = vec![Layer::conv("conv1", (224, 224), 3, 64, 7, 2, 3)];
    // (stage, blocks, hw, channels, first stride)
    let stages: [(&str, u32, u32, u32, u32); 4] = [
        ("conv2", 2, 56, 64, 1),
        ("conv3", 2, 56, 128, 2),
        ("conv4", 2, 28, 256, 2),
        ("conv5", 2, 14, 512, 2),
    ];
    let mut in_c = 64;
    for &(stage, blocks, in_hw, c, first_stride) in &stages {
        let mut hw = in_hw;
        for b in 0..blocks {
            let stride = if b == 0 { first_stride } else { 1 };
            let name = |part: &str| format!("{stage}_{}_{part}", b + 1);
            layers.push(Layer::conv(&name("3x3a"), (hw, hw), in_c, c, 3, stride, 1));
            let hw2 = hw / stride;
            layers.push(Layer::conv(&name("3x3b"), (hw2, hw2), c, c, 3, 1, 1));
            if b == 0 && stride != 1 {
                layers.push(Layer::conv(&name("proj"), (hw, hw), in_c, c, 1, stride, 0));
            }
            in_c = c;
            hw = hw2;
        }
    }
    layers.push(Layer::fully_connected("fc", 512, 1000));
    Network::new("ResNet18", layers)
}

/// ResNet-101: like ResNet-50 but with 23 bottlenecks in conv4.
pub fn resnet101() -> Network {
    let mut layers = vec![Layer::conv("conv1", (224, 224), 3, 64, 7, 2, 3)];
    let stages: [(&str, u32, u32, u32, u32, u32); 4] = [
        ("conv2", 3, 56, 64, 256, 1),
        ("conv3", 4, 56, 128, 512, 2),
        ("conv4", 23, 28, 256, 1024, 2),
        ("conv5", 3, 14, 512, 2048, 2),
    ];
    let mut in_c = 64;
    for &(stage, blocks, in_hw, mid, out_c, first_stride) in &stages {
        let mut hw = in_hw;
        for b in 0..blocks {
            let stride = if b == 0 { first_stride } else { 1 };
            let name = |part: &str| format!("{stage}_{}_{part}", b + 1);
            layers.push(Layer::conv(
                &name("1x1a"),
                (hw, hw),
                in_c,
                mid,
                1,
                stride,
                0,
            ));
            let hw2 = hw / stride;
            layers.push(Layer::conv(&name("3x3"), (hw2, hw2), mid, mid, 3, 1, 1));
            layers.push(Layer::conv(&name("1x1b"), (hw2, hw2), mid, out_c, 1, 1, 0));
            if b == 0 {
                layers.push(Layer::conv(
                    &name("proj"),
                    (hw, hw),
                    in_c,
                    out_c,
                    1,
                    stride,
                    0,
                ));
            }
            in_c = out_c;
            hw = hw2;
        }
    }
    layers.push(Layer::fully_connected("fc", 2048, 1000));
    Network::new("ResNet101", layers)
}

/// One BERT-base-class Transformer encoder layer at sequence length
/// `seq`: QKV projections, attention output projection and the two
/// FFN matmuls, expressed as 1×1 convs over the token axis so each
/// token is an "output pixel" and weights are reused across tokens.
///
/// (Attention score/value products are activation-activation matmuls
/// the weight-stationary array handles poorly; they are omitted here,
/// which makes this an optimistic-for-the-NPU projection workload.)
pub fn transformer_encoder(seq: u32) -> Network {
    assert!(seq > 0, "sequence length must be positive");
    let d = 768u32;
    let layers = vec![
        Layer::conv("q_proj", (seq, 1), d, d, 1, 1, 0),
        Layer::conv("k_proj", (seq, 1), d, d, 1, 1, 0),
        Layer::conv("v_proj", (seq, 1), d, d, 1, 1, 0),
        Layer::conv("attn_out", (seq, 1), d, d, 1, 1, 0),
        Layer::conv("ffn_up", (seq, 1), d, 4 * d, 1, 1, 0),
        Layer::conv("ffn_down", (seq, 1), 4 * d, d, 1, 1, 0),
    ];
    Network::new("TransformerEncoder", layers)
}

/// An MLP-Mixer-style block at 196 tokens × 768 channels: token-mixing
/// and channel-mixing MLPs.
pub fn mlp_mixer() -> Network {
    let tokens = 196u32;
    let d = 768u32;
    let layers = vec![
        // Token mixing: operates across the 196 tokens per channel.
        Layer::conv("token_up", (d, 1), tokens, 2 * tokens, 1, 1, 0),
        Layer::conv("token_down", (d, 1), 2 * tokens, tokens, 1, 1, 0),
        // Channel mixing.
        Layer::conv("chan_up", (tokens, 1), d, 4 * d, 1, 1, 0),
        Layer::conv("chan_down", (tokens, 1), 4 * d, d, 1, 1, 0),
    ];
    Network::new("MlpMixer", layers)
}

/// All extension workloads.
pub fn all_extensions() -> Vec<Network> {
    vec![
        resnet18(),
        resnet101(),
        transformer_encoder(128),
        mlp_mixer(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn resnet18_macs_near_published() {
        // ~1.8 GMAC per image.
        let g = resnet18().total_macs(1) as f64 / 1e9;
        assert!(g > 1.4 && g < 2.2, "ResNet18 GMAC = {g}");
    }

    #[test]
    fn resnet101_roughly_doubles_resnet50() {
        let g50 = zoo::resnet50().total_macs(1) as f64;
        let g101 = resnet101().total_macs(1) as f64;
        assert!(g101 > 1.7 * g50 && g101 < 2.4 * g50, "ratio {}", g101 / g50);
    }

    #[test]
    fn transformer_encoder_macs() {
        // Per layer at seq 128: 128·(4·768² + 8·768²) = 128·12·768².
        let want = 128u64 * 12 * 768 * 768;
        assert_eq!(transformer_encoder(128).total_macs(1), want);
    }

    #[test]
    fn transformer_weights_dwarf_activations() {
        // The FC-heavy regime: weights ≈ 12·768² bytes per layer stack.
        let net = transformer_encoder(128);
        let w = net.total_weight_bytes();
        let a = net.max_working_set_bytes();
        assert!(w > 10 * a, "weights {w} vs activations {a}");
    }

    #[test]
    fn extension_list_is_well_formed() {
        for net in all_extensions() {
            assert!(net.total_macs(1) > 0, "{}", net.name());
            assert!(net.max_working_set_bytes() > 0);
        }
    }

    #[test]
    #[should_panic(expected = "sequence length")]
    fn zero_sequence_panics() {
        let _ = transformer_encoder(0);
    }
}
