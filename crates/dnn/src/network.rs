//! A network: an ordered list of layers.

use serde::{Deserialize, Serialize};

use crate::layer::Layer;

/// An inference workload: a named, ordered sequence of layers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Network {
    name: String,
    layers: Vec<Layer>,
}

impl Network {
    /// Build a network from its layers.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    pub fn new(name: &str, layers: Vec<Layer>) -> Self {
        assert!(
            !layers.is_empty(),
            "{name}: a network needs at least one layer"
        );
        Network {
            name: name.to_owned(),
            layers,
        }
    }

    /// Network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layers, in execution order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Iterate over the layers.
    pub fn iter(&self) -> std::slice::Iter<'_, Layer> {
        self.layers.iter()
    }

    /// Total MACs for `batch` images.
    pub fn total_macs(&self, batch: u32) -> u64 {
        self.layers.iter().map(|l| l.macs(batch)).sum()
    }

    /// Total weight bytes across all layers.
    pub fn total_weight_bytes(&self) -> u64 {
        self.layers.iter().map(Layer::weight_bytes).sum()
    }

    /// The largest per-image working set (ifmap + ofmap of one image)
    /// over all layers — the quantity that bounds on-chip batch size.
    ///
    /// # Panics
    ///
    /// Panics if the network has no layers.
    pub fn max_working_set_bytes(&self) -> u64 {
        self.layers
            .iter()
            .map(Layer::working_set_bytes)
            .max()
            .unwrap_or_else(|| panic!("network {} has no layers", self.name))
    }

    /// Load a network from a JSON description file — the "DNN
    /// description" input of the paper's simulator (Fig. 14).
    ///
    /// # Errors
    ///
    /// Returns a JSON error if the description is malformed.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Serialize to a JSON description.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self)
            .unwrap_or_else(|e| unreachable!("network serialization cannot fail: {e}"))
    }
}

impl std::fmt::Display for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} layers, {:.2} GMAC/image)",
            self.name,
            self.layers.len(),
            self.total_macs(1) as f64 / 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Network {
        Network::new(
            "tiny",
            vec![
                Layer::conv("c1", (8, 8), 3, 16, 3, 1, 1),
                Layer::fully_connected("fc", 1024, 10),
            ],
        )
    }

    #[test]
    fn totals_sum_over_layers() {
        let n = tiny();
        let want = n.layers()[0].macs(2) + n.layers()[1].macs(2);
        assert_eq!(n.total_macs(2), want);
    }

    #[test]
    fn max_working_set_picks_largest_layer() {
        let n = tiny();
        assert_eq!(n.max_working_set_bytes(), n.layers()[0].working_set_bytes());
    }

    #[test]
    fn json_roundtrip() {
        let n = tiny();
        let back = Network::from_json(&n.to_json()).unwrap();
        assert_eq!(n, back);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_network_panics() {
        let _ = Network::new("empty", vec![]);
    }

    #[test]
    fn display_shows_gmac() {
        assert!(tiny().to_string().contains("GMAC"));
    }
}
