//! Ifmap-pixel duplication analysis (the paper's Fig. 8).
//!
//! Under weight-stationary mapping onto shift-register buffers, each
//! ifmap-buffer row feeds one PE-array row, i.e. one weight position.
//! Adjacent weight positions of a convolution read overlapping ifmap
//! windows, so without the data-alignment unit (DAU) the buffer would
//! hold each shared pixel once *per weight position* — massive
//! duplication. This module computes the unique/duplicated breakdown
//! that motivates the DAU.

use crate::layer::{Layer, LayerKind};
use crate::network::Network;

/// Unique/duplicated pixel accounting for one layer or one network.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Duplication {
    /// Pixels that are distinct ifmap elements.
    pub unique: u64,
    /// Extra copies that naive per-weight-row buffering would hold.
    pub duplicated: u64,
}

impl Duplication {
    /// Fraction of buffered data that is duplicated (0 when a layer
    /// reuses nothing).
    pub fn duplicated_ratio(&self) -> f64 {
        let total = self.unique + self.duplicated;
        if total == 0 {
            0.0
        } else {
            self.duplicated as f64 / total as f64
        }
    }
}

impl std::ops::Add for Duplication {
    type Output = Duplication;
    fn add(self, rhs: Duplication) -> Duplication {
        Duplication {
            unique: self.unique + rhs.unique,
            duplicated: self.duplicated + rhs.duplicated,
        }
    }
}

/// Per-layer analysis: every weight position (R·S of them) needs the
/// ifmap patch it slides over — `oh·ow` pixels per input channel —
/// while the unique data is just the `H·W` input pixels per channel.
pub fn layer_duplication(layer: &Layer) -> Duplication {
    match layer.kind() {
        LayerKind::FullyConnected => Duplication {
            unique: layer.ifmap_bytes(1),
            duplicated: 0,
        },
        LayerKind::Conv | LayerKind::Depthwise => {
            let k2 = u64::from(layer.kernel()) * u64::from(layer.kernel());
            let per_channel_fed = layer.output_pixels() * k2;
            let channels = u64::from(layer.in_channels());
            let fed = per_channel_fed * channels;
            let unique = layer.ifmap_bytes(1);
            Duplication {
                unique,
                duplicated: fed.saturating_sub(unique),
            }
        }
    }
}

/// Whole-network analysis: sums the per-layer pixel counts, exactly
/// how the paper aggregates Fig. 8.
pub fn network_duplication(net: &Network) -> Duplication {
    net.iter()
        .map(layer_duplication)
        .fold(Duplication::default(), |a, b| a + b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn fc_layer_has_no_duplication() {
        let l = Layer::fully_connected("fc", 4096, 1000);
        assert_eq!(layer_duplication(&l).duplicated, 0);
    }

    #[test]
    fn vgg_3x3_layer_duplicates_about_8_of_9() {
        // Stride-1 3x3 "same" conv: each pixel is fed ~9 times.
        let l = Layer::conv("c", (224, 224), 64, 64, 3, 1, 1);
        let d = layer_duplication(&l);
        let r = d.duplicated_ratio();
        assert!(r > 0.85 && r < 0.92, "ratio {r}");
    }

    #[test]
    fn strided_conv_duplicates_less() {
        let dense = layer_duplication(&Layer::conv("a", (56, 56), 64, 64, 3, 1, 1));
        let strided = layer_duplication(&Layer::conv("b", (56, 56), 64, 64, 3, 2, 1));
        assert!(strided.duplicated_ratio() < dense.duplicated_ratio());
    }

    #[test]
    fn paper_fig8_ratios_exceed_80_percent() {
        // Fig. 8: AlexNet, ResNet50, VGG16 all show mostly-duplicated
        // buffered data (the paper draws >90% for VGG16-class nets).
        for net in [zoo::alexnet(), zoo::resnet50(), zoo::vgg16()] {
            let r = network_duplication(&net).duplicated_ratio();
            assert!(r > 0.5, "{}: ratio {r}", net.name());
        }
        let vgg = network_duplication(&zoo::vgg16()).duplicated_ratio();
        assert!(vgg > 0.85, "VGG16 ratio {vgg}");
    }

    #[test]
    fn addition_accumulates() {
        let a = Duplication {
            unique: 1,
            duplicated: 2,
        };
        let b = Duplication {
            unique: 3,
            duplicated: 4,
        };
        let c = a + b;
        assert_eq!(c.unique, 4);
        assert_eq!(c.duplicated, 6);
        assert!((c.duplicated_ratio() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_ratio_is_zero() {
        assert_eq!(Duplication::default().duplicated_ratio(), 0.0);
    }
}
