//! Criterion benchmarks of the frequency/power/area estimator and the
//! design-space sweep throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sfq_cells::CellLibrary;
use sfq_estimator::netdesign::fig5_sweep;
use sfq_estimator::{estimate, NpuConfig};
use std::hint::black_box;

fn bench_estimate(c: &mut Criterion) {
    let lib = CellLibrary::aist_10um();
    let mut group = c.benchmark_group("estimate");
    for cfg in [
        NpuConfig::paper_baseline(),
        NpuConfig::paper_buffer_opt(),
        NpuConfig::paper_resource_opt(),
        NpuConfig::paper_supernpu(),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(cfg.name.clone()),
            &cfg,
            |b, cfg| {
                b.iter(|| estimate(black_box(cfg), black_box(&lib)));
            },
        );
    }
    group.finish();
}

fn bench_network_sweep(c: &mut Criterion) {
    let lib = CellLibrary::aist_10um();
    c.bench_function("netdesign/fig5_sweep", |b| {
        b.iter(|| fig5_sweep(black_box(8), black_box(&lib)));
    });
}

criterion_group!(benches, bench_estimate, bench_network_sweep);
criterion_main!(benches);
