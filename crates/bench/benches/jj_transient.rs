//! Criterion benchmarks of the transient JJ circuit solver — the
//! workspace's JSIM stand-in. Transient cost scales with node count
//! cubed (dense MNA), so cell-scale circuits must stay fast for the
//! characterization loop to be usable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jjsim::stdlib::{dff, jtl_chain, DffParams, JtlParams};
use jjsim::{SimOptions, Solver};
use std::hint::black_box;

fn bench_jtl_chains(c: &mut Criterion) {
    let mut group = c.benchmark_group("jjsim/jtl_chain_150ps");
    for stages in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(stages), &stages, |b, &n| {
            b.iter(|| {
                let (ckt, _probes) = jtl_chain(n, &JtlParams::default());
                Solver::new(ckt, SimOptions::default())
                    .expect("valid circuit")
                    .try_run(black_box(150e-12))
                    .expect("converges")
            });
        });
    }
    group.finish();
}

fn bench_dff_cycle(c: &mut Criterion) {
    c.bench_function("jjsim/dff_store_release", |b| {
        b.iter(|| {
            let (ckt, _probes) = dff(&[60e-12], &[100e-12], &DffParams::default());
            Solver::new(ckt, SimOptions::default())
                .expect("valid circuit")
                .try_run(black_box(160e-12))
                .expect("converges")
        });
    });
}

criterion_group!(benches, bench_jtl_chains, bench_dff_cycle);
criterion_main!(benches);
