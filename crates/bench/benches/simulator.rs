//! Criterion benchmarks of the cycle simulator: how fast the
//! framework itself evaluates a design point (the tool-performance
//! claim behind the paper's design-space exploration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dnn_models::zoo;
use sfq_npu_sim::{simulate_network, SimConfig};
use std::hint::black_box;

fn bench_networks(c: &mut Criterion) {
    let cfg = SimConfig::paper_supernpu();
    let mut group = c.benchmark_group("simulate_network/supernpu");
    for net in zoo::all() {
        group.bench_with_input(BenchmarkId::from_parameter(net.name()), &net, |b, net| {
            b.iter(|| simulate_network(black_box(&cfg), black_box(net)));
        });
    }
    group.finish();
}

fn bench_designs(c: &mut Criterion) {
    let resnet = zoo::resnet50();
    let mut group = c.benchmark_group("simulate_network/resnet50");
    for cfg in [
        SimConfig::paper_baseline(),
        SimConfig::paper_buffer_opt(),
        SimConfig::paper_resource_opt(),
        SimConfig::paper_supernpu(),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(cfg.npu.name.clone()),
            &cfg,
            |b, cfg| {
                b.iter(|| simulate_network(black_box(cfg), black_box(&resnet)));
            },
        );
    }
    group.finish();
}

fn bench_tpu_comparator(c: &mut Criterion) {
    let tpu = scale_sim::CmosNpuConfig::tpu_core();
    let vgg = zoo::vgg16();
    c.bench_function("scale_sim/vgg16", |b| {
        b.iter(|| scale_sim::simulate_network(black_box(&tpu), black_box(&vgg)));
    });
}

fn bench_functional_array(c: &mut Criterion) {
    use dnn_models::Layer;
    use sfq_npu_sim::functional::{run_conv_ws, Tensor3, Tensor4};
    let layer = Layer::conv("bench", (8, 8), 5, 13, 3, 1, 1);
    let ifmap = Tensor3::from_fn(8, 8, 5, |y, x, ch| (y + 2 * x + 3 * ch) as i32 % 7 - 3);
    let weights = Tensor4::from_fn(13, 3, 3, 5, |k, r, s, ch| (k + r + s + ch) as i32 % 5 - 2);
    c.bench_function("functional/conv_8x8x5_to_13f", |b| {
        b.iter(|| {
            run_conv_ws(
                black_box(&layer),
                black_box(&ifmap),
                black_box(&weights),
                16,
                4,
                2,
            )
        });
    });
}

criterion_group!(
    benches,
    bench_networks,
    bench_designs,
    bench_tpu_comparator,
    bench_functional_array
);
criterion_main!(benches);
