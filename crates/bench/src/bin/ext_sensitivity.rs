//! Extension study: sensitivity of the headline result to memory
//! bandwidth, junction scaling (paper footnote 2) and cooling
//! temperature (§VI-C's 400× factor is a 4 K-specific number).

use supernpu::report::{f, ratio, render_table};
use supernpu::sensitivity::{bandwidth_sweep, cooling_sweep, process_sweep};

fn main() {
    let _session = supernpu_bench::session::begin("ext_sensitivity");
    supernpu_bench::header("Extensions", "bandwidth / process / cooling sensitivity");

    println!("A. Off-chip bandwidth (both machines re-simulated):");
    let rows: Vec<Vec<String>> = bandwidth_sweep()
        .into_iter()
        .map(|p| {
            vec![
                format!("{:.0}", p.bandwidth_gbs),
                f(p.supernpu_tmacs, 1),
                f(p.tpu_tmacs, 1),
                ratio(p.speedup()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["GB/s", "SuperNPU TMAC/s", "TPU TMAC/s", "speedup"], &rows)
    );

    println!("B. Junction scaling (clock ∝ 1/feature size down to 200 nm):");
    let rows: Vec<Vec<String>> = process_sweep()
        .into_iter()
        .map(|p| {
            vec![
                format!("{:.2} um", p.feature_um),
                f(p.frequency_ghz, 1),
                f(p.supernpu_tmacs, 1),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["feature", "clock GHz", "SuperNPU TMAC/s"], &rows)
    );
    println!("the memory wall absorbs most of the extra clock — scaling junctions");
    println!("without scaling the 300 GB/s link saturates quickly.\n");

    println!("C. Cooling temperature (~18% of Carnot, the 4.2 K row = the paper's 400x):");
    let rows: Vec<Vec<String>> = cooling_sweep(2.3, 16.7)
        .into_iter()
        .map(|p| {
            vec![
                format!("{:.1} K", p.temperature_k),
                f(p.overhead, 0),
                f(p.perf_per_watt_vs_tpu, 2),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["cold stage", "overhead (x)", "ERSFQ perf/W vs TPU"],
            &rows
        )
    );
    println!("rows above 5 K assume a hypothetical warmer superconducting logic.");
}
