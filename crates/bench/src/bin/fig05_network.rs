//! Fig. 5: on-chip network designs' critical-path delay and area vs
//! PE-array width.

use sfq_cells::CellLibrary;
use sfq_estimator::netdesign::{fig5_sweep, NetworkDesign};
use supernpu::report::{f, render_table};
use supernpu_bench::report::die;

fn main() {
    let _session = supernpu_bench::session::begin("fig05_network");
    supernpu_bench::header("Fig. 5", "network-unit comparison (§III-A)");
    let lib = CellLibrary::aist_10um();
    let points = fig5_sweep(8, &lib);

    let mut rows = Vec::new();
    for width in [4u32, 8, 16, 32, 64] {
        let mut row = vec![width.to_string()];
        for design in NetworkDesign::ALL {
            let p = points
                .iter()
                .find(|p| p.width == width && p.design == design)
                .unwrap_or_else(|| die(format!("fig5 sweep missing width {width} / {design:?}")));
            row.push(f(p.critical_path_ps, 1));
        }
        for design in NetworkDesign::ALL {
            let p = points
                .iter()
                .find(|p| p.width == width && p.design == design)
                .unwrap_or_else(|| die(format!("fig5 sweep missing width {width} / {design:?}")));
            row.push(f(p.area_mm2, 2));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &[
                "width",
                "2D-tree delay(ps)",
                "1D-tree delay(ps)",
                "systolic delay(ps)",
                "2D-tree area(mm2)",
                "1D-tree area(mm2)",
                "systolic area(mm2)",
            ],
            &rows
        )
    );
    println!("paper: 2D tree exceeds 800 ps at width 64; systolic is smallest in both axes.");
}
