//! `simulate` — the paper's simulator front-end as a CLI: takes a DNN
//! description file and an architecture description file (both JSON,
//! the inputs of the paper's Fig. 10/14) and reports performance and
//! power.
//!
//! ```text
//! cargo run -p supernpu-bench --release --bin simulate -- \
//!     --network my_net.json [--arch my_arch.json] [--batch N] [--json]
//! ```
//!
//! Without `--arch`, the SuperNPU design point is used. `--network`
//! also accepts the built-in names (alexnet, fasterrcnn, googlenet,
//! mobilenet, resnet50, vgg16).

use std::process::ExitCode;

use dnn_models::{zoo, Network};
use sfq_npu_sim::{simulate_network, simulate_network_with_batch, SimConfig};

struct Args {
    network: String,
    arch: Option<String>,
    batch: Option<u32>,
    json: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        network: String::new(),
        arch: None,
        batch: None,
        json: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--network" | "-n" => {
                args.network = it.next().ok_or("--network needs a value")?;
            }
            "--arch" | "-a" => args.arch = Some(it.next().ok_or("--arch needs a value")?),
            "--batch" | "-b" => {
                let v = it.next().ok_or("--batch needs a value")?;
                args.batch = Some(v.parse().map_err(|_| format!("bad batch '{v}'"))?);
            }
            "--json" => args.json = true,
            "--emit-arch" => {
                // Write the SuperNPU architecture description as a
                // template the user can edit and pass back via --arch.
                let cfg = SimConfig::paper_supernpu();
                let json = supernpu_bench::report::to_json_pretty("config", &cfg)
                    .unwrap_or_else(|e| supernpu_bench::report::die(e));
                println!("{json}");
                std::process::exit(0);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: simulate --network <file|name> [--arch file] [--batch N] [--json] [--emit-arch]"
                        .to_owned(),
                )
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    if args.network.is_empty() {
        return Err("missing --network (try --help)".to_owned());
    }
    Ok(args)
}

fn load_network(spec: &str) -> Result<Network, String> {
    match spec.to_ascii_lowercase().as_str() {
        "alexnet" => return Ok(zoo::alexnet()),
        "fasterrcnn" => return Ok(zoo::faster_rcnn()),
        "googlenet" => return Ok(zoo::googlenet()),
        "mobilenet" => return Ok(zoo::mobilenet()),
        "resnet50" => return Ok(zoo::resnet50()),
        "vgg16" => return Ok(zoo::vgg16()),
        _ => {}
    }
    let text = std::fs::read_to_string(spec).map_err(|e| format!("reading {spec}: {e}"))?;
    Network::from_json(&text).map_err(|e| format!("parsing {spec}: {e}"))
}

fn load_arch(spec: Option<&str>) -> Result<SimConfig, String> {
    match spec {
        None => Ok(SimConfig::paper_supernpu()),
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))
        }
    }
}

fn main() -> ExitCode {
    let _session = supernpu_bench::session::begin("simulate");
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let net = match load_network(&args.network) {
        Ok(n) => n,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = match load_arch(args.arch.as_deref()) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let stats = match args.batch {
        Some(b) => simulate_network_with_batch(&cfg, &net, b),
        None => simulate_network(&cfg, &net),
    };

    if args.json {
        println!(
            "{}",
            supernpu_bench::report::to_json_pretty("stats", &stats)
                .unwrap_or_else(|e| supernpu_bench::report::die(e))
        );
    } else {
        println!("{net}");
        println!(
            "design        : {} @ {:.1} GHz",
            stats.design, stats.frequency_ghz
        );
        println!("batch         : {}", stats.batch);
        println!(
            "cycles        : {} ({:.1}% preparation)",
            stats.total_cycles(),
            100.0 * stats.prep_fraction()
        );
        println!("latency       : {:.3} ms", stats.time_s() * 1e3);
        println!(
            "throughput    : {:.2} TMAC/s ({:.0} images/s)",
            stats.effective_tmacs(),
            stats.images_per_s()
        );
        println!("PE utilization: {:.1}%", 100.0 * stats.pe_utilization());
        println!("off-chip      : {:.1} MB", stats.dram_bytes() as f64 / 1e6);
        println!("chip power    : {:.2} W", stats.total_power_w());
    }
    ExitCode::SUCCESS
}
