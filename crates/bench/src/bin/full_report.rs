//! `full_report` — run every experiment and write one Markdown report
//! to `results/report.md` (and stdout).

use std::process::ExitCode;

fn main() -> ExitCode {
    let _session = supernpu_bench::session::begin("full_report");
    supernpu_bench::header("Full report", "every table and figure in one pass");
    let report = supernpu::summary::full_report();
    print!("{report}");
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/report.md", &report))
    {
        eprintln!("could not write results/report.md: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("\nwritten to results/report.md");
    supernpu_bench::write_metrics();
    ExitCode::SUCCESS
}
