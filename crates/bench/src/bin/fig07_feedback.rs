//! Fig. 7(c): feedback loops force counter-flow clocking and halve
//! the frequency, for a full adder and a shift register — with the
//! analytic model cross-checked against `jjsim` transient runs.

use jjsim::extract::max_shift_frequency;
use jjsim::stdlib::DffParams;
use sfq_cells::CellLibrary;
use sfq_estimator::clocking::feedback_comparison;
use supernpu::report::{f, render_table};

fn main() {
    let _session = supernpu_bench::session::begin("fig07_feedback");
    supernpu_bench::header("Fig. 7(c)", "feedback-loop frequency impact (§III-B)");
    let lib = CellLibrary::aist_10um();
    let r = feedback_comparison(&lib);

    let rows = vec![
        vec![
            "Full adder".to_owned(),
            f(r.fa_feedforward_ghz, 1),
            f(r.fa_feedback_ghz, 1),
            "66 / 30".to_owned(),
        ],
        vec![
            "Shift register".to_owned(),
            f(r.sr_feedforward_ghz, 1),
            f(r.sr_feedback_ghz, 1),
            "133 / 71".to_owned(),
        ],
    ];
    println!(
        "{}",
        render_table(
            &[
                "circuit",
                "no feedback (GHz)",
                "with feedback (GHz)",
                "paper (GHz)"
            ],
            &rows
        )
    );

    println!("cross-check: transient (jjsim) shift-register clock-rate limit…");
    match max_shift_frequency(&DffParams::default(), 5.0, 50.0) {
        Ok(fmax) => println!(
            "  jjsim 3-stage shift register shifts correctly up to {:.1} GHz",
            fmax / 1e9
        ),
        Err(e) => println!("  transient cross-check failed: {e}"),
    }
}
