//! Bench-regression gate CLI: compare a fresh bench report against a
//! committed baseline and exit nonzero on regression.
//!
//! ```text
//! bench_compare --baseline BENCH_sweeps.json --fresh /tmp/BENCH_sweeps.json \
//!               [--factor 1.5] [--abs-ms 100]
//! ```
//!
//! Defaults can also come from `SUPERNPU_BENCH_FACTOR` and
//! `SUPERNPU_BENCH_ABS_MS`; explicit flags win. See
//! [`supernpu_bench::gate`] for what is checked.

use std::process::ExitCode;

use supernpu_bench::gate::{compare_json, Tolerances};

fn usage() -> ! {
    eprintln!(
        "usage: bench_compare --baseline <committed.json> --fresh <fresh.json> \
         [--factor <mult>] [--abs-ms <ms>]"
    );
    std::process::exit(2);
}

fn env_f64(key: &str) -> Option<f64> {
    std::env::var(key).ok()?.parse().ok()
}

fn main() -> ExitCode {
    let mut baseline = None;
    let mut fresh = None;
    let mut tol = Tolerances::default();
    if let Some(f) = env_f64("SUPERNPU_BENCH_FACTOR") {
        tol.factor = f;
    }
    if let Some(a) = env_f64("SUPERNPU_BENCH_ABS_MS") {
        tol.abs_ms = a;
    }

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--baseline" => baseline = Some(value()),
            "--fresh" => fresh = Some(value()),
            "--factor" => tol.factor = value().parse().unwrap_or_else(|_| usage()),
            "--abs-ms" => tol.abs_ms = value().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    let (Some(baseline), Some(fresh)) = (baseline, fresh) else {
        usage();
    };

    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_compare: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let base_json = read(&baseline);
    let fresh_json = read(&fresh);

    match compare_json(&base_json, &fresh_json, &tol) {
        Err(e) => {
            eprintln!("bench_compare: parse error: {e}");
            ExitCode::from(2)
        }
        Ok(report) => {
            println!(
                "bench_compare: {baseline} vs {fresh} — {} checks, {} failures \
                 (factor {}, abs {} ms)",
                report.checks,
                report.failures.len(),
                tol.factor,
                tol.abs_ms
            );
            for s in &report.skipped {
                println!("SKIP: {s}");
            }
            if report.passed() {
                println!("PASS");
                ExitCode::SUCCESS
            } else {
                for f in &report.failures {
                    eprintln!("FAIL: {f}");
                }
                ExitCode::FAILURE
            }
        }
    }
}
