//! Extension: the performance/area Pareto frontier over the design
//! grid, plus the latency/throughput batching curve — the deployment
//! view of the paper's design choices.

use dnn_models::zoo;
use supernpu::latency::{knee, latency_curve};
use supernpu::pareto::{evaluate_grid, pareto_front};
use supernpu::report::{f, render_table};

fn main() {
    let _session = supernpu_bench::session::begin("ext_pareto");
    supernpu_bench::header("Extensions", "Pareto frontier and batching latency");

    println!("A. Performance vs area over the design grid (Pareto-optimal points):");
    let grid = evaluate_grid();
    let front = pareto_front(&grid);
    let rows: Vec<Vec<String>> = front
        .iter()
        .map(|c| {
            vec![
                c.name.clone(),
                f(c.tmacs, 1),
                f(c.area_mm2, 0),
                f(c.tmacs / c.area_mm2, 2),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "candidate",
                "geomean TMAC/s",
                "area mm2 @28nm",
                "TMAC/s per mm2"
            ],
            &rows
        )
    );
    println!(
        "{} of {} candidates are Pareto-optimal; the paper's w64/r8 region is on the front.\n",
        front.len(),
        grid.len()
    );

    println!("B. Batching latency curve, ResNet-50 on SuperNPU:");
    let cfg = supernpu::designs::DesignPoint::SuperNpu.sim_config();
    let curve = latency_curve(&cfg, &zoo::resnet50());
    let rows: Vec<Vec<String>> = curve
        .iter()
        .map(|p| {
            vec![
                p.batch.to_string(),
                f(p.batch_latency_ms, 3),
                f(p.images_per_s, 0),
                f(p.tmacs, 1),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["batch", "latency ms", "images/s", "TMAC/s"], &rows)
    );
    let k = knee(&curve, 0.5);
    println!(
        "half the peak throughput arrives by batch {} at {:.3} ms latency.",
        k.batch, k.batch_latency_ms
    );
}
