//! Fig. 21: resource balancing — shrink the PE array width, reinvest
//! the area in on-chip buffers.

use supernpu::explore::fig21_resource_sweep;
use supernpu::report::{f, render_table};

fn main() {
    let _session = supernpu_bench::session::begin("fig21_resource_balance");
    supernpu_bench::header("Fig. 21", "resource-balancing sweep (§V-B.2)");
    let rows: Vec<Vec<String>> = fig21_resource_sweep()
        .into_iter()
        .map(|p| {
            vec![
                format!("{} , {} MB", p.width, p.buffer_mb),
                f(p.max_batch_fixed_buffer, 1),
                f(p.max_batch_added_buffer, 1),
                f(p.intensity, 1),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "width, buffer",
                "max-batch perf, 24 MB kept (xBaseline)",
                "max-batch perf, added buffer (xBaseline)",
                "compute intensity (xBaseline)",
            ],
            &rows
        )
    );
    println!("paper: peaks near width 128 (47x) / 64 (42x); 64 has the intensity headroom");
    println!("       that the register optimization of Fig. 22 converts into speed.");
    supernpu_bench::write_metrics();
}
