//! Table I: the evaluation setup, with estimator-derived frequency,
//! peak performance and 28 nm-scaled area.

use supernpu::evaluator::table1_setup;
use supernpu::report::{f, render_table};

fn main() {
    let _session = supernpu_bench::session::begin("table1_setup");
    supernpu_bench::header("Table I", "evaluation setup (§VI-A)");
    let rows: Vec<Vec<String>> = table1_setup()
        .into_iter()
        .map(|r| {
            vec![
                r.design,
                format!("{}x{}", r.array.0, r.array.1),
                f(r.ifmap_mb, 0),
                f(r.output_mb, 0),
                f(r.psum_mb, 0),
                f(r.weight_kb, 0),
                r.regs.to_string(),
                f(r.frequency_ghz, 1),
                f(r.peak_tmacs, 0),
                f(r.area_mm2_28nm, 0),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "design",
                "array (WxH)",
                "ifmap MB",
                "output MB",
                "psum MB",
                "weight KB",
                "regs",
                "freq GHz",
                "peak TMAC/s",
                "area mm2 @28nm",
            ],
            &rows
        )
    );
    println!("paper: SFQ designs at 52.6 GHz; peaks 3366 (256-wide) / 842 (64-wide) TMAC/s;");
    println!("       areas ~283-299 mm2 when scaled to 28 nm (TPU core < 330 mm2).");
}
