//! Fig. 23: the headline performance evaluation — every SFQ design
//! point vs the TPU core across the six CNN workloads.

use supernpu::designs::DesignPoint;
use supernpu::evaluator::{average_speedup, fig23_performance};
use supernpu::report::{f, render_table};

fn main() {
    let _session = supernpu_bench::session::begin("fig23_performance");
    supernpu_bench::header("Fig. 23", "performance evaluation (§VI-B)");
    let rows_data = fig23_performance();

    let mut rows: Vec<Vec<String>> = Vec::new();
    for r in &rows_data {
        rows.push(vec![
            r.network.clone(),
            f(r.tpu_tmacs, 1),
            f(r.speedup(DesignPoint::Baseline), 2),
            f(r.speedup(DesignPoint::BufferOpt), 2),
            f(r.speedup(DesignPoint::ResourceOpt), 2),
            f(r.speedup(DesignPoint::SuperNpu), 2),
        ]);
    }
    let mut avg = vec!["geomean".to_owned(), "1.0".to_owned()];
    for d in DesignPoint::SFQ_DESIGNS {
        avg.push(f(average_speedup(&rows_data, d), 2));
    }
    rows.push(avg);

    println!(
        "{}",
        render_table(
            &[
                "workload",
                "TPU TMAC/s",
                "Baseline (x)",
                "Buffer opt. (x)",
                "Resource opt. (x)",
                "SuperNPU (x)",
            ],
            &rows
        )
    );
    println!("paper averages: Baseline 0.4x, Buffer opt. 7.7x, Resource opt. 17.3x, SuperNPU 23x;");
    println!("MobileNet shows the largest SuperNPU speedup (~42x).");
}
