//! Fig. 8: unique vs duplicated ifmap pixels under naïve per-weight-
//! row buffering — the motivation for the data-alignment unit.

use dnn_models::duplication::network_duplication;
use dnn_models::zoo;
use supernpu::report::{pct, render_table};

fn main() {
    let _session = supernpu_bench::session::begin("fig08_duplication");
    supernpu_bench::header("Fig. 8", "ifmap duplication breakdown (§III-C)");
    let mut rows = Vec::new();
    // The paper plots AlexNet, ResNet50 and VGG16; we print all six.
    for net in zoo::all() {
        let d = network_duplication(&net);
        rows.push(vec![
            net.name().to_owned(),
            pct(1.0 - d.duplicated_ratio()),
            pct(d.duplicated_ratio()),
        ]);
    }
    println!(
        "{}",
        render_table(&["network", "unique pixels", "duplicated pixels"], &rows)
    );
    println!("paper: duplicated share is ~90%+ for AlexNet / ResNet50 / VGG16.");
}
