//! Robustness demo: Monte-Carlo yield curves for the stdlib cells
//! under parameter variation, run through the crash-isolated,
//! checkpointing fault harness.
//!
//! For each cell in [`Cell::all`] the binary sweeps a σ grid and
//! estimates yield from `SUPERNPU_FAULT_SAMPLES` perturbed draws per
//! point. Every (cell, σ) run carries two *injected* failures — one
//! probe that panics and one that refuses to converge — so the run
//! itself doubles as a harness test: the sweep must survive both,
//! record them as discrete outcomes, and surface them in the
//! `faults.mc.*` metrics counters.
//!
//! After the curves, an interrupted-resume check emulates a mid-run
//! kill by persisting only a prefix checkpoint and resuming from it;
//! the resumed outcome vector must be bit-identical to an
//! uninterrupted run.
//!
//! Knobs (all optional):
//!
//! | knob | default | meaning |
//! |------|---------|---------|
//! | `SUPERNPU_FAULT_SEED` | 42 | experiment seed (sole source of randomness) |
//! | `SUPERNPU_FAULT_SAMPLES` | 200 | Monte-Carlo samples per (cell, σ) point |
//! | `SUPERNPU_FAULT_RETRIES` | 1 | extra attempts after an erroring transient |
//! | `SUPERNPU_FAULT_CHECKPOINT` | 64 | checkpoint interval in samples (0 disables) |
//! | `--resume` (argv) | off | continue from checkpoints in `results/faults/` |
//!
//! Writes `BENCH_faults.json` and (metrics are force-enabled)
//! `results/metrics.json`. Exits nonzero if the sweep dies or any
//! invariant fails.

use std::path::PathBuf;

use serde::Serialize as _;
use serde_json::Value;
use sfq_faults::{run_outcomes, yield_curve, Cell, Injection, McOptions, YieldPoint};
use supernpu_bench::report::{die, write_report};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_u32(name: &str, default: u32) -> u32 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Check the tally invariants of one yield point. Returns the
/// complaints (empty = healthy).
fn point_complaints(p: &YieldPoint, samples: u32) -> Vec<String> {
    let mut out = Vec::new();
    let tally = p.pass + p.fail + p.non_convergent + p.panicked;
    if tally != samples {
        out.push(format!(
            "{} σ={}: tally {tally} != samples {samples}",
            p.cell, p.sigma
        ));
    }
    if p.panicked < 1 {
        out.push(format!(
            "{} σ={}: injected panicking probe not recorded",
            p.cell, p.sigma
        ));
    }
    if p.non_convergent < 1 {
        out.push(format!(
            "{} σ={}: injected non-convergent probe not recorded",
            p.cell, p.sigma
        ));
    }
    out
}

fn point_value(p: &YieldPoint) -> Value {
    Value::Object(vec![
        ("cell".into(), Value::Str(p.cell.clone())),
        ("sigma".into(), Value::F64(p.sigma)),
        ("samples".into(), Value::U64(u64::from(p.samples))),
        ("pass".into(), Value::U64(u64::from(p.pass))),
        ("fail".into(), Value::U64(u64::from(p.fail))),
        (
            "non_convergent".into(),
            Value::U64(u64::from(p.non_convergent)),
        ),
        ("panicked".into(), Value::U64(u64::from(p.panicked))),
        ("yield".into(), Value::F64(p.yield_fraction())),
    ])
}

/// Interrupted-resume check: reference run, then a resume from a
/// hand-persisted prefix checkpoint. Returns whether the resumed
/// outcomes were bit-identical.
fn resume_check(cell: Cell, sigma: f64, seed: u64, opts: &McOptions) -> bool {
    let mut reference_opts = opts.clone();
    reference_opts.checkpoint_every = 0;
    reference_opts.checkpoint_path = None;
    reference_opts.resume = false;
    let reference = match run_outcomes(cell, sigma, seed, &reference_opts) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("resume check reference run failed: {e}");
            return false;
        }
    };

    // Emulate a kill mid-run: persist only the first half of the
    // outcomes in the checkpoint's JSON shape, then resume.
    let path = PathBuf::from("results/faults/resume_demo.checkpoint.json");
    let prefix = &reference[..reference.len() / 2];
    let prefix_json = match serde_json::to_string(&prefix.to_vec()) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("resume check prefix serialization failed: {e}");
            return false;
        }
    };
    let text = format!(
        "{{\"cell\": \"{}\", \"sigma_bits\": {}, \"seed\": {seed}, \"samples\": {}, \
         \"outcomes\": {prefix_json}}}",
        cell.name(),
        sigma.to_bits(),
        opts.samples,
    );
    if let Err(e) = write_report(&path, &text) {
        eprintln!("resume check could not persist prefix checkpoint: {e}");
        return false;
    }

    let mut resume_opts = opts.clone();
    resume_opts.checkpoint_every = opts.checkpoint_every.max(1);
    resume_opts.checkpoint_path = Some(path);
    resume_opts.resume = true;
    match run_outcomes(cell, sigma, seed, &resume_opts) {
        Ok(resumed) => resumed == reference,
        Err(e) => {
            eprintln!("resume check resumed run failed: {e}");
            false
        }
    }
}

fn main() {
    let _session = supernpu_bench::session::begin("bench_faults");
    sfq_obs::set_enabled(true);
    supernpu_bench::header(
        "BENCH faults",
        "Monte-Carlo yield under parameter variation (robustness demo, not a paper figure)",
    );

    let seed = env_u64("SUPERNPU_FAULT_SEED", 42);
    // The injected failures sit at sample indices 3 and 7, so the run
    // needs at least 8 samples to exercise them.
    let samples = env_u32("SUPERNPU_FAULT_SAMPLES", 200).max(8);
    let retries = env_u32("SUPERNPU_FAULT_RETRIES", 1);
    let checkpoint_every = env_u32("SUPERNPU_FAULT_CHECKPOINT", 64);
    let resume = std::env::args().any(|a| a == "--resume");
    let sigmas = [0.02, 0.05, 0.10, 0.20, 0.35];

    let mut opts = McOptions::new(samples);
    opts.retries = retries;
    opts.checkpoint_every = checkpoint_every;
    opts.resume = resume;
    opts.injection = Injection {
        panic_at: vec![3],
        non_convergent_at: vec![7],
    };

    println!(
        "seed {seed} | {samples} samples/point | retries {retries} | \
         checkpoint every {checkpoint_every} | resume {resume}"
    );
    println!("injected per point: sample 3 panics, sample 7 never converges\n");

    // The injected probe panics are expected and caught by the
    // harness; silence the default hook so they do not spam stderr.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let mut complaints: Vec<String> = Vec::new();
    let mut curves: Vec<Vec<YieldPoint>> = Vec::new();
    for cell in Cell::all() {
        let mut per_cell = opts.clone();
        if checkpoint_every > 0 {
            per_cell.checkpoint_path = Some(PathBuf::from(format!(
                "results/faults/{}.checkpoint.json",
                cell.name()
            )));
        } else {
            per_cell.checkpoint_every = 0;
        }
        match yield_curve(cell, &sigmas, seed, &per_cell) {
            Ok(points) => {
                println!("{}:", cell.name());
                println!(
                    "  {:>6}  {:>7}  {:>5}  {:>5}  {:>7}  {:>8}",
                    "sigma", "yield", "pass", "fail", "nonconv", "panicked"
                );
                for p in &points {
                    println!(
                        "  {:>6.3}  {:>6.1}%  {:>5}  {:>5}  {:>7}  {:>8}",
                        p.sigma,
                        100.0 * p.yield_fraction(),
                        p.pass,
                        p.fail,
                        p.non_convergent,
                        p.panicked
                    );
                    complaints.extend(point_complaints(p, samples));
                }
                println!();
                curves.push(points);
            }
            Err(e) => {
                std::panic::set_hook(hook);
                supernpu_bench::session::fail(format!("{} sweep died: {e}", cell.name()));
            }
        }
    }

    let resume_identical = resume_check(Cell::Jtl, sigmas[1], seed, &opts);
    std::panic::set_hook(hook);
    println!(
        "interrupted-resume check: {}",
        if resume_identical {
            "bit-identical"
        } else {
            "MISMATCH"
        }
    );
    if !resume_identical {
        complaints.push("resumed run diverged from uninterrupted run".into());
    }

    // The injected failures must be visible in the metrics registry
    // (they also land in results/metrics.json below).
    let metrics = sfq_obs::snapshot();
    for counter in ["faults.mc.panicked", "faults.mc.non_convergent"] {
        if metrics.counter(counter).unwrap_or(0) == 0 {
            complaints.push(format!("metrics counter {counter} is zero"));
        }
    }

    let report = Value::Object(vec![
        (
            "schema_version".into(),
            Value::U64(u64::from(sfq_obs::SCHEMA_VERSION)),
        ),
        ("seed".into(), Value::U64(seed)),
        ("samples_per_point".into(), Value::U64(u64::from(samples))),
        ("retries".into(), Value::U64(u64::from(retries))),
        (
            "checkpoint_every".into(),
            Value::U64(u64::from(checkpoint_every)),
        ),
        (
            "curves".into(),
            Value::Array(
                curves
                    .iter()
                    .map(|points| Value::Array(points.iter().map(point_value).collect()))
                    .collect(),
            ),
        ),
        ("resume_identical".into(), Value::Bool(resume_identical)),
        ("metrics".into(), metrics.serialize()),
    ]);
    let json = serde_json::to_string_pretty(&report)
        .unwrap_or_else(|e| die(format!("report serialization failed: {e}")));
    if let Err(e) = write_report("BENCH_faults.json", &json) {
        die(e);
    }
    println!("wrote BENCH_faults.json");
    supernpu_bench::write_metrics();

    if !complaints.is_empty() {
        for c in &complaints {
            eprintln!("ERROR: {c}");
        }
        supernpu_bench::session::fail(format!(
            "{} Monte-Carlo invariant(s) violated",
            complaints.len()
        ));
    }
}
