//! Fig. 15: Baseline's cycle breakdown — preparation dominates.

use supernpu::evaluator::fig15_cycle_breakdown;
use supernpu::report::{pct, render_table};

fn main() {
    let _session = supernpu_bench::session::begin("fig15_breakdown");
    supernpu_bench::header("Fig. 15", "Baseline cycle breakdown (§V-A.2)");
    let rows: Vec<Vec<String>> = fig15_cycle_breakdown()
        .into_iter()
        .map(|r| vec![r.network, pct(r.preparation), pct(r.computation)])
        .collect();
    println!(
        "{}",
        render_table(&["workload", "preparation", "computation"], &rows)
    );
    println!("paper: preparation above ~90% for every CNN workload.");
}
