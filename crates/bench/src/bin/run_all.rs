//! `run_all` — run every experiment regenerator in sequence (the
//! paper's figures and tables, then the extension studies), exactly
//! what a reviewer runs first.

use std::process::{Command, ExitCode};

/// Every experiment binary, in presentation order.
pub const EXPERIMENTS: &[&str] = &[
    "fig05_network",
    "fig07_feedback",
    "fig08_duplication",
    "fig13_validation",
    "fig15_breakdown",
    "fig17_roofline",
    "fig20_buffer_opt",
    "fig21_resource_balance",
    "fig22_registers",
    "fig23_performance",
    "table1_setup",
    "table2_batches",
    "table3_power",
    "ablations",
    "ext_sensitivity",
    "ext_accelerators",
    "ext_characterize",
    "ext_pareto",
    "export_csv",
    "full_report",
];

use supernpu_bench::report::die;

fn main() -> ExitCode {
    let _session = supernpu_bench::session::begin("run_all");
    let me = std::env::current_exe()
        .unwrap_or_else(|e| die(format!("cannot locate own executable: {e}")));
    let dir = me
        .parent()
        .unwrap_or_else(|| die("executable has no parent directory"));
    for name in EXPERIMENTS {
        let bin = dir.join(name);
        let status = Command::new(&bin).status();
        match status {
            Ok(s) if s.success() => println!(),
            Ok(s) => {
                eprintln!("{name} exited with {s}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("running {name}: {e} (build the workspace first: cargo build --release)");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("all {} experiments completed.", EXPERIMENTS.len());
    ExitCode::SUCCESS
}
