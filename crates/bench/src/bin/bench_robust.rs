//! Robustness bench for the execution-guard layer: demonstrates the
//! three guarantees of [`supernpu::resilient::run_resilient`] on the
//! real design-space sweeps and writes the evidence to
//! `BENCH_robust.json`.
//!
//! 1. **Overhead** — with guards disabled
//!    ([`ResilientOpts::unguarded`]) the resilient Fig. 20 sweep must
//!    cost within 2% (plus a small absolute floor for scheduler
//!    noise) of the plain `par_map_catch` sweep, and produce
//!    bit-identical values.
//! 2. **Zero silent loss under chaos** — with the chaos harness
//!    injecting panics, forced timeouts and stalls into 3/16 of
//!    `(task, attempt)` draws, every point of every sweep still ends
//!    `Completed` or `Degraded` with a value; `lost()` is zero.
//! 3. **Bit-identical resume** — a sweep cancelled mid-flight leaves
//!    an atomic checkpoint whose resumed continuation reproduces the
//!    uninterrupted run's values byte-for-byte.
//!
//! Any violated invariant is reported on stderr and the binary exits
//! nonzero — but the report is written first, so the `bench_compare`
//! gate can show exactly which check regressed.
//!
//! `--smoke` shrinks the run (single timing pass, Fig. 20 only) for
//! the `scripts/check.sh --chaos` gate.

use std::time::{Duration, Instant};

use serde::Serialize;
use serde_json::Value;
use sfq_guard::{chaos, CancelToken, RunBudget};
use supernpu::explore::{fig20_buffer_sweep, fig20_buffer_sweep_resilient};
use supernpu::resilient::{ResilientOpts, SweepReport};
use supernpu_bench::report::{die, to_json_pretty, write_report};

/// Seed for the chaos harness: deterministic, so the injected
/// failures (and therefore the retry/degrade counters) are the same
/// on every run.
const CHAOS_SEED: u64 = 2024;

/// Relative overhead budget for the unguarded resilient path.
const MAX_OVERHEAD_FRAC: f64 = 0.02;

/// Absolute floor added to the overhead budget: the Fig. 20 sweep is
/// a couple of milliseconds, where scheduler noise alone exceeds 2%.
const OVERHEAD_FLOOR_MS: f64 = 2.0;

/// Iterations folded into one timing sample so the measured window is
/// tens of milliseconds instead of ~2 ms.
const OVERHEAD_REPS: usize = 10;

fn json_of<T: Serialize>(what: &str, value: &T) -> String {
    serde_json::to_string(value).unwrap_or_else(|e| die(format!("serialize {what}: {e}")))
}

fn clear_caches() {
    sfq_estimator::clear_estimate_cache();
    sfq_chars::clear_measure_cache();
}

/// Best-of-`passes` wall clock of `reps` back-to-back runs (caches
/// cleared before each rep so every rep pays the same cold cost).
fn timed<R>(passes: usize, reps: usize, mut run: impl FnMut() -> R) -> (R, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..passes {
        let t0 = Instant::now();
        for _ in 0..reps {
            clear_caches();
            out = Some(run());
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    match out {
        Some(r) => (r, best),
        None => die("timed(): zero passes ran"),
    }
}

/// One `"robust"` report entry from a sweep report, plus the
/// invariant violations it contributes.
fn sweep_entry<P: Serialize>(
    name: &str,
    report: &SweepReport<P>,
    ms: f64,
    failures: &mut Vec<String>,
) -> Value {
    let (completed, degraded, timed_out, cancelled, failed) = report.state_counts();
    let points = report.points.len();
    let lost = report.lost();
    if lost != 0 {
        failures.push(format!("{name}: {lost} point(s) silently lost"));
    }
    if completed + degraded + timed_out + cancelled + failed != points {
        failures.push(format!(
            "{name}: state counts do not cover all {points} points"
        ));
    }
    Value::Object(vec![
        ("name".into(), Value::Str(name.to_owned())),
        ("points".into(), Value::U64(points as u64)),
        ("completed".into(), Value::U64(completed as u64)),
        ("degraded".into(), Value::U64(degraded as u64)),
        ("timed_out".into(), Value::U64(timed_out as u64)),
        ("cancelled".into(), Value::U64(cancelled as u64)),
        ("failed".into(), Value::U64(failed as u64)),
        ("lost".into(), Value::U64(lost as u64)),
        ("restored".into(), Value::U64(report.restored as u64)),
        ("ms".into(), Value::F64(ms)),
    ])
}

fn resilient_fig20(opts: &ResilientOpts) -> SweepReport<supernpu::explore::BufferSweepPoint> {
    fig20_buffer_sweep_resilient(opts).unwrap_or_else(|e| die(format!("fig20 resilient: {e}")))
}

fn main() {
    let _session = supernpu_bench::session::begin("bench_robust");
    supernpu_bench::header("bench_robust", "execution-guard robustness gates");
    let smoke = std::env::args().any(|a| a == "--smoke");
    let passes = if smoke { 1 } else { 3 };
    let reps = if smoke { 2 } else { OVERHEAD_REPS };
    let mut failures: Vec<String> = Vec::new();
    let mut entries: Vec<Value> = Vec::new();

    // ------------------------------------------------ 1. overhead
    // Plain sweep vs the unguarded resilient path. Warm-up first so
    // lazy statics and page faults land outside both windows.
    let _ = fig20_buffer_sweep();
    let (plain_points, plain_ms) = timed(passes, reps, fig20_buffer_sweep);
    let unguarded = ResilientOpts::unguarded();
    let (guarded_report, guarded_ms) = timed(passes, reps, || resilient_fig20(&unguarded));
    let values_match = json_of("plain fig20", &plain_points)
        == json_of("guarded fig20", &guarded_report.clone().values());
    let overhead_frac = (guarded_ms - plain_ms) / plain_ms;
    let within_overhead = guarded_ms <= plain_ms * (1.0 + MAX_OVERHEAD_FRAC) + OVERHEAD_FLOOR_MS;
    if !values_match {
        failures.push("unguarded resilient sweep diverged from the plain sweep".into());
    }
    if !within_overhead {
        failures.push(format!(
            "guards-disabled overhead {:.1}% exceeds {:.0}% (+{OVERHEAD_FLOOR_MS} ms floor): \
             plain {plain_ms:.2} ms vs guarded {guarded_ms:.2} ms",
            overhead_frac * 100.0,
            MAX_OVERHEAD_FRAC * 100.0,
        ));
    }
    entries.push(sweep_entry(
        "fig20_unguarded",
        &guarded_report,
        guarded_ms,
        &mut failures,
    ));
    println!(
        "overhead: plain {plain_ms:.2} ms, guarded {guarded_ms:.2} ms ({:+.1}%), identical: {values_match}",
        overhead_frac * 100.0
    );

    // --------------------------------------------------- 2. chaos
    // Deterministic injected panics/timeouts/stalls; the ladder must
    // still label and value every point. The hook swap keeps the
    // injected panics from spraying backtraces over the report.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    chaos::set_chaos(Some(CHAOS_SEED));
    let guarded = ResilientOpts::unguarded();
    clear_caches();
    let t0 = Instant::now();
    let chaos_fig20 = resilient_fig20(&guarded);
    let chaos_ms = t0.elapsed().as_secs_f64() * 1e3;
    entries.push(sweep_entry(
        "fig20_chaos",
        &chaos_fig20,
        chaos_ms,
        &mut failures,
    ));
    if !smoke {
        clear_caches();
        let t0 = Instant::now();
        let chaos_fig21 = supernpu::explore::fig21_resource_sweep_resilient(&guarded)
            .unwrap_or_else(|e| die(format!("fig21 resilient: {e}")));
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        entries.push(sweep_entry("fig21_chaos", &chaos_fig21, ms, &mut failures));
    }
    chaos::set_chaos(None);
    std::panic::set_hook(hook);
    let (c, d, ..) = chaos_fig20.state_counts();
    println!(
        "chaos(seed={CHAOS_SEED}): fig20 {} pts -> {c} completed, {d} degraded, {} lost",
        chaos_fig20.points.len(),
        chaos_fig20.lost()
    );

    // ------------------------------------------------- 3. resume
    // Reference run (uninterrupted), a cancelled run that leaves an
    // atomic checkpoint, and a resumed run that must reproduce the
    // reference byte-for-byte.
    let dir = std::env::temp_dir().join("supernpu_bench_robust");
    let _ = std::fs::remove_dir_all(&dir);
    let ckpt = dir.join("fig20.ckpt.json");

    clear_caches();
    let reference = resilient_fig20(&ResilientOpts::unguarded());
    let reference_json = json_of("reference fig20", &reference.values());

    let token = CancelToken::new();
    let killer = {
        let token = token.clone();
        // Fire mid-sweep: roughly half of one uninterrupted pass.
        let delay = Duration::from_secs_f64((plain_ms / reps as f64 / 2.0 / 1e3).max(5e-4));
        std::thread::spawn(move || {
            std::thread::sleep(delay);
            token.cancel();
        })
    };
    let killed_opts = ResilientOpts::unguarded()
        .with_budget(RunBudget::unlimited().with_cancel(token))
        .with_checkpoint(ckpt.clone(), 2, false);
    clear_caches();
    let killed = resilient_fig20(&killed_opts);
    killer
        .join()
        .unwrap_or_else(|_| die("cancel timer thread panicked"));
    let (killed_done, killed_degraded, _, killed_cancelled, _) = killed.state_counts();

    entries.push(sweep_entry("fig20_killed", &killed, 0.0, &mut failures));

    let resume_opts = ResilientOpts::unguarded().with_checkpoint(ckpt, 2, true);
    clear_caches();
    let t0 = Instant::now();
    let resumed = resilient_fig20(&resume_opts);
    let resume_ms = t0.elapsed().as_secs_f64() * 1e3;
    entries.push(sweep_entry(
        "fig20_resumed",
        &resumed,
        resume_ms,
        &mut failures,
    ));
    let restored = resumed.restored;
    let resume_identical = json_of("resumed fig20", &resumed.values()) == reference_json;
    if !resume_identical {
        failures.push("resumed sweep diverged from the uninterrupted reference".into());
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "resume: kill left {}/{} durable points ({killed_cancelled} cancelled), \
         resume restored {restored}, identical: {resume_identical}",
        killed_done + killed_degraded,
        killed.points.len()
    );

    // ------------------------------------------------- report
    let bench = Value::Object(vec![
        (
            "schema_version".into(),
            Value::U64(u64::from(sfq_obs::SCHEMA_VERSION)),
        ),
        ("robust".into(), Value::Array(entries)),
        ("chaos_seed".into(), Value::U64(CHAOS_SEED)),
        (
            "overhead".into(),
            Value::Object(vec![
                ("plain_ms".into(), Value::F64(plain_ms)),
                ("guarded_ms".into(), Value::F64(guarded_ms)),
                ("overhead_frac".into(), Value::F64(overhead_frac)),
                ("max_overhead_frac".into(), Value::F64(MAX_OVERHEAD_FRAC)),
                ("within_overhead".into(), Value::Bool(within_overhead)),
                ("values_match".into(), Value::Bool(values_match)),
            ]),
        ),
        (
            "resume".into(),
            Value::Object(vec![
                ("resume_identical".into(), Value::Bool(resume_identical)),
                ("restored".into(), Value::U64(restored as u64)),
            ]),
        ),
    ]);
    let json = to_json_pretty("BENCH_robust", &bench).unwrap_or_else(|e| die(e));
    write_report("BENCH_robust.json", &json).unwrap_or_else(|e| die(e));
    println!("\nreport written to BENCH_robust.json");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        supernpu_bench::session::fail(format!(
            "{} robustness invariant(s) violated",
            failures.len()
        ));
    }
    println!("all robustness invariants hold");
}
