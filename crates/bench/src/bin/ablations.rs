//! Ablation study: what each §III design choice is worth at the
//! architecture level (extension beyond the paper's figures — the
//! paper argues these choices with circuit evidence; this quantifies
//! them with the full simulator).

use supernpu::ablations::all_ablations;
use supernpu::report::{f, ratio, render_table};

fn main() {
    let _session = supernpu_bench::session::begin("ablations");
    supernpu_bench::header(
        "Ablations",
        "the §III design choices, quantified end-to-end",
    );
    let rows: Vec<Vec<String>> = all_ablations()
        .into_iter()
        .map(|r| {
            vec![
                r.choice.clone(),
                f(r.adopted_tmacs, 1),
                f(r.alternative_tmacs, 1),
                ratio(r.gain()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "design choice",
                "adopted TMAC/s",
                "alternative TMAC/s",
                "gain"
            ],
            &rows
        )
    );
    println!("each row keeps every other SuperNPU parameter fixed and swaps one decision.");
}
