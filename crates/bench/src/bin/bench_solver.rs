//! Fixed-step vs adaptive-step transient solver benchmark across the
//! stdlib cells, written to `BENCH_solver.json`.
//!
//! For every cell testbench the binary runs the same circuit twice —
//! once with the historical fixed 0.1 ps march, once with
//! `SimOptions::adaptive()` — and records accepted/rejected step
//! counts, best-of-3 wall clock, per-junction pulse counts and the
//! worst pulse-time deviation. It exits nonzero if any cell's pulse
//! counts differ, any pulse time moves by more than 0.5 ps, or the
//! aggregate step reduction falls below the 3× the adaptive
//! controller is expected to deliver on this (mostly quiescent)
//! suite, so the perf trajectory is enforced, not just logged.

use std::time::Instant;

use jjsim::stdlib::{
    clocked_and, dff, jtl_chain, shift_register, splitter, AndParams, DffParams, JtlParams,
};
use jjsim::{Circuit, ElementId, SimOptions, SimResult, Solver};
use serde_json::Value;
use supernpu_bench::report::{die, write_report};

/// Maximum tolerated pulse-time shift between the two modes, seconds.
const PULSE_TOL_S: f64 = 0.5e-12;

/// Required aggregate (summed over cells) step reduction.
const MIN_STEP_RATIO: f64 = 3.0;

struct CellBench {
    name: &'static str,
    fixed_steps: u64,
    adaptive_steps: u64,
    adaptive_rejected: u64,
    fixed_ms: f64,
    adaptive_ms: f64,
    pulse_counts: Vec<usize>,
    pulse_counts_match: bool,
    max_pulse_delta_s: f64,
}

/// Best-of-3 wall clock for one solve; min (not mean) because
/// scheduling noise only ever adds time.
fn timed(build: &dyn Fn() -> Circuit, opts: &SimOptions, t_end: f64) -> (SimResult, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..3 {
        let solver = Solver::new(build(), opts.clone())
            .unwrap_or_else(|e| die(format!("stdlib circuit invalid: {e}")));
        let t0 = Instant::now();
        let res = solver
            .try_run(t_end)
            .unwrap_or_else(|e| die(format!("stdlib transient failed: {e}")));
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        out = Some(res);
    }
    match out {
        Some(res) => (res, best),
        None => die("timed(): zero iterations ran"),
    }
}

fn bench(
    name: &'static str,
    t_end: f64,
    probes: &[ElementId],
    build: &dyn Fn() -> Circuit,
) -> CellBench {
    let (fixed, fixed_ms) = timed(build, &SimOptions::default(), t_end);
    let (adaptive, adaptive_ms) = timed(build, &SimOptions::adaptive(), t_end);

    let mut counts_match = true;
    let mut max_delta = 0.0f64;
    let mut pulse_counts = Vec::with_capacity(probes.len());
    for &jj in probes {
        let f = fixed.pulse_times(jj);
        let a = adaptive.pulse_times(jj);
        pulse_counts.push(f.len());
        if f.len() != a.len() {
            counts_match = false;
            continue;
        }
        for (tf, ta) in f.iter().zip(a) {
            max_delta = max_delta.max((tf - ta).abs());
        }
    }

    println!(
        "{name:>16}: fixed {:6} steps {fixed_ms:7.2} ms | adaptive {:5} (+{:3} rej) steps \
         {adaptive_ms:7.2} ms | {:4.1}x fewer | max pulse shift {:5.3} ps | counts match: \
         {counts_match}",
        fixed.accepted_steps,
        adaptive.accepted_steps,
        adaptive.rejected_steps,
        fixed.accepted_steps as f64 / adaptive.accepted_steps as f64,
        max_delta * 1e12,
    );
    CellBench {
        name,
        fixed_steps: fixed.accepted_steps,
        adaptive_steps: adaptive.accepted_steps,
        adaptive_rejected: adaptive.rejected_steps,
        fixed_ms,
        adaptive_ms,
        pulse_counts,
        pulse_counts_match: counts_match,
        max_pulse_delta_s: max_delta,
    }
}

fn main() {
    let _session = supernpu_bench::session::begin("bench_solver");
    sfq_obs::set_enabled(true);
    supernpu_bench::header(
        "BENCH solver",
        "fixed vs adaptive timestepping on the stdlib cell testbenches",
    );

    let jtl_p = JtlParams::default();
    let dff_p = DffParams::default();
    let and_p = AndParams::default();
    let clocks = [100e-12, 140e-12, 180e-12];

    let mut results: Vec<CellBench> = Vec::new();
    {
        let (_, probes) = jtl_chain(8, &jtl_p);
        results.push(bench("jtl_chain_8", 380e-12, &probes, &|| {
            jtl_chain(8, &jtl_p).0
        }));
    }
    {
        let (_, p) = splitter(&jtl_p);
        results.push(bench(
            "splitter",
            140e-12,
            &[p.input, p.out_a, p.out_b],
            &|| splitter(&jtl_p).0,
        ));
    }
    {
        let (_, p) = dff(&[60e-12], &[100e-12], &dff_p);
        results.push(bench("dff", 170e-12, &[p.input, p.output], &|| {
            dff(&[60e-12], &[100e-12], &dff_p).0
        }));
    }
    {
        let (_, p) = clocked_and(&[60e-12], &[60e-12], &[100e-12], &and_p);
        results.push(bench(
            "clocked_and",
            170e-12,
            &[p.store_a, p.store_b, p.output],
            &|| clocked_and(&[60e-12], &[60e-12], &[100e-12], &and_p).0,
        ));
    }
    {
        let (_, p) = shift_register(3, 60e-12, &clocks, 0.0, &dff_p);
        results.push(bench(
            "shift_register_3",
            240e-12,
            &p.stage_outputs,
            &|| shift_register(3, 60e-12, &clocks, 0.0, &dff_p).0,
        ));
    }

    // Banded-path cell: a 40-stage JTL has >24 unknowns at bandwidth
    // ~1, so it exercises the packed-band factor/solve and fused-stamp
    // kernels the small cells above never reach. It keeps a pulse in
    // flight for most of the run, so it is reported (and gated)
    // separately from the quiescent cells' aggregate step-ratio; the
    // LU counter deltas prove the banded path actually engaged.
    let lu_factor_before = sfq_obs::counter("jjsim.solver.lu_factor").get();
    let lu_reuse_before = sfq_obs::counter("jjsim.solver.lu_reuse").get();
    let banded = {
        let (_, probes) = jtl_chain(40, &jtl_p);
        bench("jtl_chain_40", 400e-12, &probes, &|| {
            jtl_chain(40, &jtl_p).0
        })
    };
    let banded_lu_factor = sfq_obs::counter("jjsim.solver.lu_factor").get() - lu_factor_before;
    let banded_lu_reuse = sfq_obs::counter("jjsim.solver.lu_reuse").get() - lu_reuse_before;

    let fixed_total: u64 = results.iter().map(|r| r.fixed_steps).sum();
    let adaptive_total: u64 = results.iter().map(|r| r.adaptive_steps).sum();
    let ratio = fixed_total as f64 / adaptive_total as f64;
    let worst_delta = results
        .iter()
        .map(|r| r.max_pulse_delta_s)
        .fold(banded.max_pulse_delta_s, f64::max);
    let all_match = results.iter().all(|r| r.pulse_counts_match) && banded.pulse_counts_match;
    println!(
        "\ntotal: fixed {fixed_total} steps vs adaptive {adaptive_total} steps = {ratio:.1}x \
         reduction; worst pulse shift {:.3} ps",
        worst_delta * 1e12
    );

    fn cell_row(r: &CellBench) -> Value {
        Value::Object(vec![
            ("name".into(), Value::Str(r.name.into())),
            ("fixed_steps".into(), Value::U64(r.fixed_steps)),
            ("adaptive_steps".into(), Value::U64(r.adaptive_steps)),
            ("adaptive_rejected".into(), Value::U64(r.adaptive_rejected)),
            (
                "step_ratio".into(),
                Value::F64(r.fixed_steps as f64 / r.adaptive_steps as f64),
            ),
            ("fixed_ms".into(), Value::F64(r.fixed_ms)),
            ("adaptive_ms".into(), Value::F64(r.adaptive_ms)),
            ("speedup".into(), Value::F64(r.fixed_ms / r.adaptive_ms)),
            (
                "pulse_counts".into(),
                Value::Array(
                    r.pulse_counts
                        .iter()
                        .map(|&c| Value::U64(c as u64))
                        .collect(),
                ),
            ),
            (
                "pulse_counts_match".into(),
                Value::Bool(r.pulse_counts_match),
            ),
            (
                "max_pulse_delta_ps".into(),
                Value::F64(r.max_pulse_delta_s * 1e12),
            ),
        ])
    }
    let rows: Vec<Value> = results.iter().map(cell_row).collect();
    let Value::Object(mut banded_row) = cell_row(&banded) else {
        unreachable!("cell_row builds an object")
    };
    banded_row.push(("lu_factor".into(), Value::U64(banded_lu_factor)));
    banded_row.push(("lu_reuse".into(), Value::U64(banded_lu_reuse)));
    let report = Value::Object(vec![
        (
            "schema_version".into(),
            Value::U64(u64::from(sfq_obs::SCHEMA_VERSION)),
        ),
        ("pulse_tol_ps".into(), Value::F64(PULSE_TOL_S * 1e12)),
        ("min_step_ratio".into(), Value::F64(MIN_STEP_RATIO)),
        ("fixed_steps_total".into(), Value::U64(fixed_total)),
        ("adaptive_steps_total".into(), Value::U64(adaptive_total)),
        ("step_ratio_total".into(), Value::F64(ratio)),
        (
            "worst_pulse_delta_ps".into(),
            Value::F64(worst_delta * 1e12),
        ),
        ("cells".into(), Value::Array(rows)),
        ("banded_cell".into(), Value::Object(banded_row)),
    ]);
    let json = serde_json::to_string_pretty(&report)
        .unwrap_or_else(|e| die(format!("report serialization failed: {e}")));
    if let Err(e) = write_report("BENCH_solver.json", &json) {
        die(e);
    }
    println!("wrote BENCH_solver.json");

    if !all_match {
        supernpu_bench::session::fail("adaptive pulse counts diverged from fixed-step");
    }
    if worst_delta > PULSE_TOL_S {
        supernpu_bench::session::fail(format!(
            "pulse time moved {:.3} ps (tolerance {:.3} ps)",
            worst_delta * 1e12,
            PULSE_TOL_S * 1e12
        ));
    }
    if ratio < MIN_STEP_RATIO {
        supernpu_bench::session::fail(format!(
            "step reduction {ratio:.2}x below required {MIN_STEP_RATIO}x"
        ));
    }
    if banded_lu_factor == 0 {
        supernpu_bench::session::fail("jtl_chain_40 never hit the banded factorization path");
    }
}
