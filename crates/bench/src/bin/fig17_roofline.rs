//! Fig. 17: the Baseline roofline — fast but idle computing units.

use supernpu::evaluator::fig17_roofline;
use supernpu::report::{f, pct, render_table};

fn main() {
    let _session = supernpu_bench::session::begin("fig17_roofline");
    supernpu_bench::header("Fig. 17", "roofline / compute-intensity analysis (§V-A.3)");
    let rows_data = fig17_roofline();
    let peak = rows_data[0].peak_gmacs;
    let rows: Vec<Vec<String>> = rows_data
        .into_iter()
        .map(|r| {
            let util = r.roofline_gmacs / r.peak_gmacs;
            vec![
                r.network,
                f(r.intensity_mac_per_byte, 1),
                f(r.roofline_gmacs, 0),
                f(r.effective_gmacs, 0),
                pct(util),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "workload",
                "MAC/byte (b=1)",
                "roofline GMAC/s",
                "simulated GMAC/s",
                "max PE util"
            ],
            &rows
        )
    );
    println!("peak performance: {} GMAC/s", f(peak, 0));
    println!("paper: single-batch roofline utilization stays below 2% — >98% of peak unreachable.");
}
