//! Fig. 20: performance impact and area overhead of the buffer
//! optimizations (integration + division).

use supernpu::explore::fig20_buffer_sweep;
use supernpu::report::{f, render_table};

fn main() {
    let _session = supernpu_bench::session::begin("fig20_buffer_opt");
    supernpu_bench::header("Fig. 20", "buffer integration/division sweep (§V-B.1)");
    let rows: Vec<Vec<String>> = fig20_buffer_sweep()
        .into_iter()
        .map(|p| {
            vec![
                p.label,
                f(p.single_batch, 2),
                f(p.max_batch, 2),
                f(p.area, 3),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "config",
                "single-batch perf (xBaseline)",
                "max-batch perf (xBaseline)",
                "area (xBaseline)"
            ],
            &rows
        )
    );
    println!("paper: single-batch saturates ~6.3x and max-batch ~20x from division 64;");
    println!("       further division only inflates the mux/demux area.");
    supernpu_bench::write_metrics();
}
