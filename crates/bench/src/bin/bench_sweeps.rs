//! Wall-clock benchmark of the parallel sweep engine: time the
//! Fig. 20/21/22 design-space sweeps serially (one thread) and with
//! the full worker pool, verify the outputs are bit-identical, and
//! write the measurements to `BENCH_sweeps.json`.
//!
//! The memo caches (estimator, characterization) are cleared before
//! every timed run so each configuration pays the same cold-start
//! cost; without that, whichever run goes second would win on cache
//! hits rather than on parallelism.
//!
//! Metrics are force-enabled for the whole run: every sweep row in
//! `BENCH_sweeps.json` carries the memo-cache hit/miss counts of its
//! final parallel iteration plus a full [`sfq_obs`] snapshot of the
//! sweep (serial + parallel timed passes), so a regression in, say,
//! `par.task_ms` or `estimator.estimate.cache_miss` is visible right
//! next to the wall-clock numbers it explains.

use std::time::Instant;

use serde::Serialize as _;
use serde_json::Value;
use supernpu::explore::{fig20_buffer_sweep, fig21_resource_sweep, fig22_register_sweep};

struct SweepResult {
    name: &'static str,
    serial_ms: f64,
    parallel_ms: f64,
    identical: bool,
    estimate_cache: (u64, u64),
    measure_cache: (u64, u64),
    metrics: sfq_obs::MetricsReport,
}

/// Best-of-3 wall clock; min (not mean) because scheduling noise only
/// ever adds time.
fn timed(run: &dyn Fn() -> String, threads: usize) -> (String, f64) {
    sfq_par::set_threads(threads);
    let mut best = f64::INFINITY;
    let mut out = String::new();
    for _ in 0..3 {
        sfq_estimator::clear_estimate_cache();
        sfq_chars::clear_measure_cache();
        let t0 = Instant::now();
        out = run();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    (out, best)
}

fn bench(name: &'static str, run: &dyn Fn() -> String, pool: usize) -> SweepResult {
    // Warm-up pass so page faults and lazy statics land outside the
    // measured window.
    let _ = run();
    // Fresh counters per sweep so the snapshot is attributable to it.
    sfq_obs::reset();
    let (serial_out, serial_ms) = timed(run, 1);
    let (parallel_out, parallel_ms) = timed(run, pool);
    let identical = serial_out == parallel_out;
    // Cache clearing inside `timed` also resets the hit/miss counters,
    // so these stats describe exactly the last parallel iteration.
    let est = sfq_estimator::estimate_cache_stats();
    let meas = sfq_chars::measure_cache_stats();
    println!(
        "{name}: serial {serial_ms:8.1} ms | parallel {parallel_ms:8.1} ms | \
         speedup {:4.2}x | identical: {identical}",
        serial_ms / parallel_ms
    );
    SweepResult {
        name,
        serial_ms,
        parallel_ms,
        identical,
        estimate_cache: est,
        measure_cache: meas,
        metrics: sfq_obs::snapshot(),
    }
}

fn cache_value(stats: (u64, u64)) -> Value {
    Value::Object(vec![
        ("hits".into(), Value::U64(stats.0)),
        ("misses".into(), Value::U64(stats.1)),
    ])
}

fn main() {
    let _obs = sfq_obs::dump_on_exit();
    // Report the worker-pool size actually used for the parallel runs
    // (honors SUPERNPU_THREADS), not the raw hardware parallelism.
    let pool = sfq_par::threads();
    sfq_obs::set_enabled(true);
    supernpu_bench::header(
        "BENCH sweeps",
        "serial-vs-parallel wall clock of the Fig. 20-22 sweeps",
    );
    println!("worker pool: {pool} thread(s)\n");

    let sweeps: [(&'static str, &dyn Fn() -> String); 3] = [
        ("fig20_buffer_sweep", &|| {
            serde_json::to_string(&fig20_buffer_sweep()).unwrap()
        }),
        ("fig21_resource_sweep", &|| {
            serde_json::to_string(&fig21_resource_sweep()).unwrap()
        }),
        ("fig22_register_sweep", &|| {
            serde_json::to_string(&fig22_register_sweep()).unwrap()
        }),
    ];
    let results: Vec<SweepResult> = sweeps
        .iter()
        .map(|(name, run)| bench(name, *run, pool))
        .collect();

    let rows: Vec<Value> = results
        .iter()
        .map(|r| {
            Value::Object(vec![
                ("name".into(), Value::Str(r.name.into())),
                ("serial_ms".into(), Value::F64(r.serial_ms)),
                ("parallel_ms".into(), Value::F64(r.parallel_ms)),
                ("speedup".into(), Value::F64(r.serial_ms / r.parallel_ms)),
                ("identical_output".into(), Value::Bool(r.identical)),
                ("estimate_cache".into(), cache_value(r.estimate_cache)),
                ("measure_cache".into(), cache_value(r.measure_cache)),
                ("metrics".into(), r.metrics.serialize()),
            ])
        })
        .collect();
    let report = Value::Object(vec![
        ("threads".into(), Value::U64(pool as u64)),
        ("sweeps".into(), Value::Array(rows)),
    ]);
    let json = serde_json::to_string_pretty(&report).unwrap();
    std::fs::write("BENCH_sweeps.json", &json).expect("write BENCH_sweeps.json");
    println!("\nwrote BENCH_sweeps.json");

    if results.iter().any(|r| !r.identical) {
        eprintln!("ERROR: parallel output diverged from serial");
        std::process::exit(1);
    }
}
