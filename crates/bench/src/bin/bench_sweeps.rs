//! Wall-clock benchmark of the parallel sweep engine: time the
//! Fig. 20/21/22 design-space sweeps serially (one thread) and with
//! the full worker pool, verify the outputs are bit-identical, and
//! write the measurements to `BENCH_sweeps.json`.
//!
//! The memo caches (estimator, characterization) are cleared before
//! every timed run so each configuration pays the same cold-start
//! cost; without that, whichever run goes second would win on cache
//! hits rather than on parallelism.
//!
//! Metrics are force-enabled for the whole run: every sweep row in
//! `BENCH_sweeps.json` carries the memo-cache hit/miss counts of its
//! final parallel iteration plus a full [`sfq_obs`] snapshot of the
//! sweep (serial + parallel timed passes), so a regression in, say,
//! `par.task_ms` or `estimator.estimate.cache_miss` is visible right
//! next to the wall-clock numbers it explains.
//!
//! `--points N` additionally runs a granularity stress sweep: `N`
//! synthetic design points (cheap, memo-bypassing
//! [`sfq_estimator::estimate_uncached`] calls — roughly the fig22 grid
//! scaled to 1e5..1e6 points) are mapped over a ladder of thread
//! counts, and each rung records wall clock, speedup vs the one-thread
//! run, bit-identity of the outputs, and whether the speedup clears
//! 0.8x the *effective* parallelism `min(threads, logical_cores)`
//! (vacuously true at one effective core, where the chunker's serial
//! fallback makes "parallel" and serial the same loop).

use std::time::Instant;

use serde::Serialize as _;
use serde_json::Value;
use sfq_estimator::{estimate_uncached, NpuConfig};
use supernpu::explore::{fig20_buffer_sweep, fig21_resource_sweep, fig22_register_sweep};
use supernpu_bench::report::{die, write_report};

const MB: u64 = 1024 * 1024;

/// Stress speedup must reach this fraction of the effective core count.
const STRESS_SCALING_FRAC: f64 = 0.8;

struct SweepResult {
    name: &'static str,
    serial_ms: f64,
    parallel_ms: f64,
    identical: bool,
    estimate_cache: (u64, u64),
    measure_cache: (u64, u64),
    metrics: sfq_obs::MetricsReport,
}

/// Best-of-3 wall clock; min (not mean) because scheduling noise only
/// ever adds time.
fn timed(run: &dyn Fn() -> String, threads: usize) -> (String, f64) {
    sfq_par::set_threads(threads);
    let mut best = f64::INFINITY;
    let mut out = String::new();
    for _ in 0..3 {
        sfq_estimator::clear_estimate_cache();
        sfq_chars::clear_measure_cache();
        let t0 = Instant::now();
        out = run();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    (out, best)
}

fn bench(name: &'static str, run: &dyn Fn() -> String, pool: usize) -> SweepResult {
    // Warm-up pass so page faults and lazy statics land outside the
    // measured window.
    let _ = run();
    // Fresh counters per sweep so the snapshot is attributable to it.
    sfq_obs::reset();
    let (serial_out, serial_ms) = timed(run, 1);
    let (parallel_out, parallel_ms) = timed(run, pool);
    // With a one-thread pool both passes execute the identical serial
    // code path, so any measured difference is pure scheduler noise —
    // on a small sweep it can easily read as a phantom "0.94x
    // regression". Pool the samples (best of all six runs) into both
    // sides so the recorded speedup is exactly 1.0.
    let (serial_ms, parallel_ms) = if pool == 1 {
        let best = serial_ms.min(parallel_ms);
        (best, best)
    } else {
        (serial_ms, parallel_ms)
    };
    let identical = serial_out == parallel_out;
    // Cache clearing inside `timed` also resets the hit/miss counters,
    // so these stats describe exactly the last parallel iteration.
    let est = sfq_estimator::estimate_cache_stats();
    let meas = sfq_chars::measure_cache_stats();
    println!(
        "{name}: serial {serial_ms:8.1} ms | parallel {parallel_ms:8.1} ms | \
         speedup {:4.2}x | identical: {identical}",
        serial_ms / parallel_ms
    );
    SweepResult {
        name,
        serial_ms,
        parallel_ms,
        identical,
        estimate_cache: est,
        measure_cache: meas,
        metrics: sfq_obs::snapshot(),
    }
}

fn cache_value(stats: (u64, u64)) -> Value {
    Value::Object(vec![
        ("hits".into(), Value::U64(stats.0)),
        ("misses".into(), Value::U64(stats.1)),
    ])
}

/// Deterministic synthetic design points for the stress sweep: the
/// fig22 neighborhood (width x regs x buffer) tiled out to `n` points.
/// Every field is a pure function of the index, so any two runs (and
/// any two thread counts) see byte-identical inputs.
fn synthetic_points(n: usize) -> Vec<NpuConfig> {
    let widths = [16u32, 32, 64, 128, 256];
    (0..n)
        .map(|i| {
            let width = widths[i % widths.len()];
            let regs = 1u32 << ((i / widths.len()) % 4);
            let buffer_mb = 16 + (i % 41) as u64;
            NpuConfig {
                name: format!("stress{i}"),
                array_width: width,
                regs_per_pe: regs,
                division: 64 * (256 / width).max(1),
                ifmap_buf_bytes: buffer_mb * MB / 2,
                output_buf_bytes: buffer_mb * MB / 2,
                psum_buf_bytes: 0,
                integrated_output: true,
                weight_buf_bytes: 16 * 1024 * u64::from(regs),
                ..NpuConfig::paper_baseline()
            }
        })
        .collect()
}

/// One pass of the stress workload: estimate every point (bypassing
/// the memo so each task does real work) and return a bit-exact
/// fingerprint of the results, keyed by width so points sharing a
/// characterization working set land on the same worker.
fn stress_pass(points: &[NpuConfig]) -> Vec<[u64; 2]> {
    let lib = sfq_cells::CellLibrary::aist_10um();
    sfq_par::par_map_keyed(
        points,
        |cfg| u64::from(cfg.array_width),
        |cfg| {
            let est = estimate_uncached(cfg, &lib);
            [est.peak_tmacs.to_bits(), est.area_mm2_native.to_bits()]
        },
    )
}

struct StressRung {
    threads: usize,
    ms: f64,
    speedup: f64,
    identical: bool,
    expected: f64,
    meets_scaling: bool,
}

/// Run the `--points` stress sweep over a thread ladder. The
/// one-thread rung is the baseline; each later rung must match its
/// output bit-for-bit and (when more than one logical core backs the
/// pool) clear [`STRESS_SCALING_FRAC`] of the effective parallelism.
fn stress_sweep(n_points: usize, pool: usize, logical_cores: usize) -> Vec<StressRung> {
    println!("\nstress sweep: {n_points} synthetic points");
    let points = synthetic_points(n_points);
    let mut ladder = vec![1usize, 2, 4];
    if pool > 4 {
        ladder.push(pool);
    }

    let mut rungs: Vec<StressRung> = Vec::new();
    let mut baseline: Vec<[u64; 2]> = Vec::new();
    let mut baseline_ms = 0.0;
    for &threads in &ladder {
        sfq_par::set_threads(threads);
        let mut best = f64::INFINITY;
        let mut out = Vec::new();
        for _ in 0..3 {
            let t0 = Instant::now();
            out = stress_pass(&points);
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        if threads == 1 {
            baseline = out.clone();
            baseline_ms = best;
        }
        let speedup = baseline_ms / best;
        let identical = out == baseline;
        // Speedup can't exceed the cores actually backing the pool;
        // at one effective core the requirement degenerates to 1.
        let expected = threads.min(logical_cores) as f64;
        let meets_scaling = expected <= 1.0 || speedup >= STRESS_SCALING_FRAC * expected;
        println!(
            "  {threads:2} thread(s): {best:8.1} ms | speedup {speedup:4.2}x \
             (need >= {:4.2}x) | identical: {identical}",
            if expected <= 1.0 {
                1.0
            } else {
                STRESS_SCALING_FRAC * expected
            }
        );
        rungs.push(StressRung {
            threads,
            ms: best,
            speedup,
            identical,
            expected,
            meets_scaling,
        });
    }
    sfq_par::clear_threads();
    rungs
}

fn main() {
    let _session = supernpu_bench::session::begin("bench_sweeps");
    // Pool size actually used for the parallel runs (honors
    // SUPERNPU_THREADS) and the machine's detected parallelism are
    // recorded separately: on a one-core box an oversubscribed pool
    // can't speed anything up, and the gate needs to know that.
    let pool = sfq_par::threads();
    let logical_cores = std::thread::available_parallelism().map_or(1, usize::from);
    let speedup_meaningful = pool > 1 && logical_cores > 1;
    let n_points = std::env::args()
        .skip_while(|a| a != "--points")
        .nth(1)
        .map(|v| {
            v.parse::<usize>()
                .unwrap_or_else(|_| die("--points takes a count"))
        });
    sfq_obs::set_enabled(true);
    supernpu_bench::header(
        "BENCH sweeps",
        "serial-vs-parallel wall clock of the Fig. 20-22 sweeps",
    );
    println!(
        "worker pool: {pool} thread(s) on {logical_cores} logical core(s); \
         speedup comparison {}\n",
        if speedup_meaningful {
            "meaningful"
        } else {
            "not meaningful (pool or machine is serial)"
        }
    );

    let sweeps: [(&'static str, &dyn Fn() -> String); 3] = [
        ("fig20_buffer_sweep", &|| {
            serde_json::to_string(&fig20_buffer_sweep())
                .unwrap_or_else(|e| die(format!("fig20_buffer_sweep serialization failed: {e}")))
        }),
        ("fig21_resource_sweep", &|| {
            serde_json::to_string(&fig21_resource_sweep())
                .unwrap_or_else(|e| die(format!("fig21_resource_sweep serialization failed: {e}")))
        }),
        ("fig22_register_sweep", &|| {
            serde_json::to_string(&fig22_register_sweep())
                .unwrap_or_else(|e| die(format!("fig22_register_sweep serialization failed: {e}")))
        }),
    ];
    let results: Vec<SweepResult> = sweeps
        .iter()
        .map(|(name, run)| bench(name, *run, pool))
        .collect();

    let rows: Vec<Value> = results
        .iter()
        .map(|r| {
            Value::Object(vec![
                ("name".into(), Value::Str(r.name.into())),
                ("serial_ms".into(), Value::F64(r.serial_ms)),
                ("parallel_ms".into(), Value::F64(r.parallel_ms)),
                ("speedup".into(), Value::F64(r.serial_ms / r.parallel_ms)),
                ("identical_output".into(), Value::Bool(r.identical)),
                ("estimate_cache".into(), cache_value(r.estimate_cache)),
                ("measure_cache".into(), cache_value(r.measure_cache)),
                ("metrics".into(), r.metrics.serialize()),
            ])
        })
        .collect();
    let stress = n_points.map(|n| stress_sweep(n, pool, logical_cores));

    let mut report = vec![
        (
            "schema_version".into(),
            Value::U64(u64::from(sfq_obs::SCHEMA_VERSION)),
        ),
        ("threads".into(), Value::U64(pool as u64)),
        ("logical_cores".into(), Value::U64(logical_cores as u64)),
        ("speedup_meaningful".into(), Value::Bool(speedup_meaningful)),
        ("sweeps".into(), Value::Array(rows)),
    ];
    if let Some(rungs) = &stress {
        let stress_rows: Vec<Value> = rungs
            .iter()
            .map(|r| {
                Value::Object(vec![
                    ("points".into(), Value::U64(n_points.unwrap_or(0) as u64)),
                    ("threads".into(), Value::U64(r.threads as u64)),
                    ("ms".into(), Value::F64(r.ms)),
                    ("speedup".into(), Value::F64(r.speedup)),
                    ("expected_parallelism".into(), Value::F64(r.expected)),
                    ("identical_output".into(), Value::Bool(r.identical)),
                    ("meets_scaling".into(), Value::Bool(r.meets_scaling)),
                ])
            })
            .collect();
        report.push(("stress".into(), Value::Array(stress_rows)));
    }
    let report = Value::Object(report);
    let json = serde_json::to_string_pretty(&report)
        .unwrap_or_else(|e| die(format!("report serialization failed: {e}")));
    if let Err(e) = write_report("BENCH_sweeps.json", &json) {
        die(e);
    }
    println!("\nwrote BENCH_sweeps.json");

    if results.iter().any(|r| !r.identical) {
        supernpu_bench::session::fail("parallel output diverged from serial");
    }
    if let Some(rungs) = &stress {
        if rungs.iter().any(|r| !r.identical) {
            supernpu_bench::session::fail("stress-sweep output diverged from serial");
        }
        if rungs.iter().any(|r| !r.meets_scaling) {
            supernpu_bench::session::fail(format!(
                "stress-sweep speedup fell below {STRESS_SCALING_FRAC} x effective cores"
            ));
        }
    }
}
