//! Wall-clock benchmark of lane-batched transient solving: time the
//! scalar path (`SUPERNPU_LANES`-equivalent width 1) against the
//! batched path (width [`jjsim::LANES`]) on the Monte-Carlo yield and
//! margin-probing workloads, verify the outcomes are identical, and
//! write the measurements to `BENCH_batch.json`.
//!
//! Unlike the sweep bench, the speedup here is SIMD within one core —
//! lanes, not threads — so the worker pool is pinned to one thread for
//! the timed runs and the ≥2x floor on the yield workload binds on
//! every machine, serial CI boxes included.
//!
//! The report also carries an `equivalence` section: K = LANES
//! parameter-perturbed `jtl_chain_40` instances solved batched vs
//! scalar, recording pulse-count identity and the worst pulse-time
//! delta in ps. `bench_compare` gates all of it (see
//! [`supernpu_bench::gate`]).
//!
//! `--smoke` shrinks the workloads for CI: outcome identity and
//! equivalence are still hard-checked, but the speedup floor is not
//! recorded (tiny workloads time as noise).

use std::time::Instant;

use jjsim::stdlib::{jtl_chain, JtlParams};
use jjsim::{margins, BatchedTransient, SimOptions, Solver};
use serde_json::Value;
use sfq_faults::{run_outcomes, Cell, McOptions, Outcome};
use supernpu_bench::report::{die, write_report};

/// The yield workload must be at least this much faster batched.
const MIN_SPEEDUP: f64 = 2.0;
/// Batched pulse times may differ from scalar by at most this much.
const PULSE_TOL_PS: f64 = 0.5;

struct Workload {
    name: &'static str,
    scalar_ms: f64,
    batched_ms: f64,
    identical: bool,
    min_speedup: Option<f64>,
}

/// One timed invocation at the given batch width, in milliseconds.
fn timed_at<T>(width: usize, run: &mut dyn FnMut() -> T) -> (T, f64) {
    jjsim::set_batch_width(Some(width));
    let t0 = Instant::now();
    let out = run();
    (out, t0.elapsed().as_secs_f64() * 1e3)
}

/// Time one workload at width 1 and width LANES and check the outputs
/// match exactly. Reps are *interleaved* (scalar, batched, scalar,
/// batched, …) with an untimed warmup pair first, and each side keeps
/// its best (min) wall clock: scheduling noise only ever adds time,
/// and interleaving keeps a mid-measurement load shift from skewing
/// the ratio the way timing all scalar reps before all batched reps
/// would.
fn bench<T: PartialEq>(
    name: &'static str,
    reps: usize,
    gated: bool,
    run: &mut dyn FnMut() -> T,
) -> Workload {
    timed_at(1, run);
    timed_at(jjsim::LANES, run);
    let (mut scalar_ms, mut batched_ms) = (f64::INFINITY, f64::INFINITY);
    let (mut scalar_out, mut batched_out) = (None, None);
    for _ in 0..reps {
        let (out, ms) = timed_at(1, run);
        scalar_out = Some(out);
        scalar_ms = scalar_ms.min(ms);
        let (out, ms) = timed_at(jjsim::LANES, run);
        batched_out = Some(out);
        batched_ms = batched_ms.min(ms);
    }
    jjsim::set_batch_width(None);
    let identical = match (scalar_out, batched_out) {
        (Some(s), Some(b)) => s == b,
        _ => die(format!("{name}: benchmark needs reps >= 1")),
    };
    println!(
        "{name}: scalar {scalar_ms:8.1} ms | batched {batched_ms:8.1} ms | \
         speedup {:4.2}x | identical: {identical}",
        scalar_ms / batched_ms
    );
    Workload {
        name,
        scalar_ms,
        batched_ms,
        identical,
        min_speedup: gated.then_some(MIN_SPEEDUP),
    }
}

struct Equivalence {
    k: usize,
    counts_match: bool,
    max_delta_ps: f64,
}

/// K = LANES ic-perturbed `jtl_chain_40` instances, batched vs scalar:
/// pulse counts must match exactly, pulse times within the tolerance.
fn equivalence(n_stages: usize) -> Equivalence {
    let scales = [1.0, 0.97, 1.03, 1.06];
    let t_end = 200e-12;
    let opts = SimOptions::adaptive();
    let built: Vec<_> = scales
        .iter()
        .map(|s| {
            let mut p = JtlParams::default();
            p.ic *= s;
            jtl_chain(n_stages, &p)
        })
        .collect();
    let circuits: Vec<_> = built.iter().map(|(c, _)| c.clone()).collect();

    jjsim::set_batch_width(Some(jjsim::LANES));
    let batched = BatchedTransient::new(circuits.clone(), opts.clone())
        .unwrap_or_else(|e| die(format!("equivalence circuits invalid: {e}")))
        .try_run(t_end);
    jjsim::set_batch_width(None);

    let mut counts_match = true;
    let mut max_delta_ps: f64 = 0.0;
    for ((ckt, stages), b) in built.iter().zip(batched) {
        let b = b.unwrap_or_else(|e| die(format!("batched equivalence run failed: {e}")));
        let s = Solver::new(ckt.clone(), opts.clone())
            .unwrap_or_else(|e| die(format!("scalar solver build failed: {e}")))
            .try_run(t_end)
            .unwrap_or_else(|e| die(format!("scalar equivalence run failed: {e}")));
        for &jj in stages {
            let (bt, st) = (b.pulse_times(jj), s.pulse_times(jj));
            if bt.len() != st.len() {
                counts_match = false;
                continue;
            }
            for (tb, ts) in bt.iter().zip(st) {
                max_delta_ps = max_delta_ps.max((tb - ts).abs() * 1e12);
            }
        }
    }
    println!(
        "equivalence (k={}, jtl_chain_{n_stages}): counts match: {counts_match} | \
         max pulse delta {max_delta_ps:.4} ps",
        scales.len()
    );
    Equivalence {
        k: scales.len(),
        counts_match,
        max_delta_ps,
    }
}

fn main() {
    let _session = supernpu_bench::session::begin("bench_batch");
    let smoke = std::env::args().any(|a| a == "--smoke");
    let out_path = {
        let mut args = std::env::args();
        let mut path = "BENCH_batch.json".to_owned();
        while let Some(a) = args.next() {
            if a == "--out" {
                path = args.next().unwrap_or_else(|| die("--out takes a path"));
            }
        }
        path
    };
    supernpu_bench::header(
        "BENCH batch",
        "scalar-vs-lane-batched wall clock of the MC yield and margin workloads",
    );
    // One worker thread: the measured speedup must come from lanes,
    // not from the thread pool hiding scalar latency.
    sfq_par::set_threads(1);

    let (samples, reps) = if smoke { (40, 1) } else { (200, 5) };
    let mc = McOptions::new(samples);
    let mut yield_run = || -> Vec<Outcome> {
        run_outcomes(Cell::Jtl, 0.08, 42, &mc)
            .unwrap_or_else(|e| die(format!("yield workload failed: {e}")))
    };
    let yield_wl = bench("yield_200", reps, !smoke, &mut yield_run);

    let mut margins_run = || {
        margins::clear_probe_cache();
        let jtl =
            margins::jtl_bias_margin().unwrap_or_else(|e| die(format!("jtl margin failed: {e}")));
        let dff =
            margins::dff_bias_margin().unwrap_or_else(|e| die(format!("dff margin failed: {e}")));
        [
            jtl.low.to_bits(),
            jtl.high.to_bits(),
            dff.low.to_bits(),
            dff.high.to_bits(),
        ]
    };
    let margins_wl = bench("margins", reps, false, &mut margins_run);
    sfq_par::clear_threads();

    let eq = equivalence(if smoke { 10 } else { 40 });

    let workloads = [&yield_wl, &margins_wl];
    let rows: Vec<Value> = workloads
        .iter()
        .map(|w| {
            let mut row = vec![
                ("name".into(), Value::Str(w.name.into())),
                ("scalar_ms".into(), Value::F64(w.scalar_ms)),
                ("batched_ms".into(), Value::F64(w.batched_ms)),
                ("speedup".into(), Value::F64(w.scalar_ms / w.batched_ms)),
                ("outcomes_identical".into(), Value::Bool(w.identical)),
            ];
            if let Some(floor) = w.min_speedup {
                row.push(("min_speedup".into(), Value::F64(floor)));
            }
            Value::Object(row)
        })
        .collect();
    let report = Value::Object(vec![
        (
            "schema_version".into(),
            Value::U64(u64::from(sfq_obs::SCHEMA_VERSION)),
        ),
        ("lanes".into(), Value::U64(jjsim::LANES as u64)),
        ("smoke".into(), Value::Bool(smoke)),
        ("pulse_tol_ps".into(), Value::F64(PULSE_TOL_PS)),
        ("batch".into(), Value::Array(rows)),
        (
            "equivalence".into(),
            Value::Object(vec![
                ("k".into(), Value::U64(eq.k as u64)),
                ("pulse_counts_match".into(), Value::Bool(eq.counts_match)),
                ("max_pulse_delta_ps".into(), Value::F64(eq.max_delta_ps)),
            ]),
        ),
    ]);
    let json = serde_json::to_string_pretty(&report)
        .unwrap_or_else(|e| die(format!("report serialization failed: {e}")));
    if let Err(e) = write_report(&out_path, &json) {
        die(e);
    }
    println!("\nwrote {out_path}");

    // Self-gate, mirroring what bench_compare enforces: identity and
    // equivalence always; the speedup floor only on full runs.
    let mut failed = false;
    for w in workloads {
        if !w.identical {
            eprintln!("ERROR: {}: batched outcomes differ from scalar", w.name);
            failed = true;
        }
        if let Some(floor) = w.min_speedup {
            let speedup = w.scalar_ms / w.batched_ms;
            if speedup < floor {
                eprintln!(
                    "ERROR: {}: speedup {speedup:.2}x below required {floor:.2}x",
                    w.name
                );
                failed = true;
            }
        }
    }
    if !eq.counts_match {
        eprintln!("ERROR: equivalence: pulse counts diverge from scalar");
        failed = true;
    }
    if eq.max_delta_ps > PULSE_TOL_PS {
        eprintln!(
            "ERROR: equivalence: max pulse delta {:.4} ps exceeds {PULSE_TOL_PS} ps",
            eq.max_delta_ps
        );
        failed = true;
    }
    if failed {
        supernpu_bench::session::fail("batch speedup/equivalence checks failed (see above)");
    }
}
