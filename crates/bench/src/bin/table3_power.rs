//! Table III: power and normalized performance-per-watt for RSFQ and
//! ERSFQ SuperNPU, with and without the 400× cryocooling overhead.

use supernpu::evaluator::table3_power;
use supernpu::report::{f, render_table};

fn main() {
    let _session = supernpu_bench::session::begin("table3_power");
    supernpu_bench::header("Table III", "power-efficiency evaluation (§VI-C)");
    let rows: Vec<Vec<String>> = table3_power()
        .into_iter()
        .map(|r| {
            vec![
                r.variant,
                f(r.power_w, 2),
                format!("{:.3}", r.perf_per_watt_vs_tpu),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["variant", "power (W)", "perf/W vs TPU"], &rows)
    );
    println!("paper: TPU 40 W / 1.0; RSFQ 964 W / 0.95 (0.002 cooled);");
    println!("       ERSFQ 1.9 W / 490 (1.23 cooled).");
}
