//! Extension: run the full characterization loop — transient circuit
//! physics → measured cell library → architecture estimate — and
//! compare against the shipped (paper-calibrated) library.

use sfq_cells::{CellLibrary, GateKind};
use sfq_estimator::{estimate, NpuConfig};
use supernpu::report::{f, render_table};

fn main() {
    let _session = supernpu_bench::session::begin("ext_characterize");
    supernpu_bench::header(
        "Characterization loop",
        "§IV-A.1's JSIM flow, executed end-to-end",
    );
    let measured = match sfq_chars::characterize() {
        Ok(lib) => lib,
        Err(e) => supernpu_bench::session::fail(format!("characterization failed: {e}")),
    };
    let reference = CellLibrary::aist_10um();

    let mut rows = Vec::new();
    for kind in [
        GateKind::Jtl,
        GateKind::Splitter,
        GateKind::Dff,
        GateKind::And,
        GateKind::Xor,
        GateKind::Ndro,
    ] {
        let m = measured.gate(kind);
        let r = reference.gate(kind);
        rows.push(vec![
            format!("{kind:?}"),
            f(m.delay_ps, 2),
            f(r.delay_ps, 2),
            f(m.energy_aj, 2),
            f(r.energy_aj, 2),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "gate",
                "measured delay ps",
                "shipped delay ps",
                "measured aJ",
                "shipped aJ"
            ],
            &rows
        )
    );

    let cfg = NpuConfig::paper_supernpu();
    let from_measured = estimate(&cfg, &measured);
    let from_shipped = estimate(&cfg, &reference);
    println!(
        "SuperNPU clock: {:.1} GHz from the measured library vs {:.1} GHz shipped",
        from_measured.frequency_ghz, from_shipped.frequency_ghz
    );
    println!(
        "SuperNPU static: {:.0} W measured vs {:.0} W shipped (RSFQ)",
        from_measured.static_w, from_shipped.static_w
    );
    println!("\n(measured rows: JTL/splitter/DFF/AND from jjsim transients with bias-recharge");
    println!("correction; remaining gates scaled from the measured AND as in real flows");
    println!("where only part of a family has silicon-grade characterization.)");
}
