//! Hierarchical-profiler report: run a representative workload with
//! `sfq_obs::prof` live, write the collapsed-stack + JSON exports, and
//! emit a gateable `BENCH_profile.json` kernel table.
//!
//! ```text
//! profile_report [--smoke] [--out results/profile.json] \
//!                [--bench-out BENCH_profile.json]
//! ```
//!
//! The full workload is the fig. 20 buffer-division sweep (exercises
//! the estimator cache and `sfq-par` worker frames), a from-scratch
//! stdlib characterization (transient solver under the chars cache
//! fill path) plus one repeat call (the cache hit path), and a
//! 40-stage JTL banded-cell transient wrapped in a `banded_cell`
//! frame. The banded cell is where the coverage contract lives: the
//! profiled kernel self-times under `banded_cell;solver.run` must
//! explain at least [`MIN_SELF_COVERAGE`] of its inclusive time, else
//! the solver's `KernelProf` laps have drifted off the hot loops.
//!
//! `--smoke` swaps in a seconds-scale workload (estimator point +
//! short banded transient), skips the coverage hard-fail (debug-build
//! frame overhead is not timing-stable), and stamps a zero coverage
//! floor into the bench report so a self-compare through
//! `bench_compare` stays green.
//!
//! Before enabling the profiler the binary runs a small transient with
//! profiling off and fails if any frame was recorded — the disabled
//! path must be a true no-op, not a cheap one.

use std::time::Instant;

use jjsim::stdlib::{jtl_chain, JtlParams};
use jjsim::{SimOptions, Solver};
use serde_json::Value;
use sfq_obs::prof;
use supernpu_bench::report::die;

/// Required fraction of `banded_cell;solver.run` inclusive time
/// explained by profiled descendant self-times (full mode).
const MIN_SELF_COVERAGE: f64 = 0.9;

fn usage() -> ! {
    eprintln!("usage: profile_report [--smoke] [--out <profile.json>] [--bench-out <BENCH.json>]");
    std::process::exit(2);
}

/// One adaptive banded-cell transient inside a `banded_cell` frame.
fn banded_transient(stages: usize, t_end: f64) {
    let _pf = prof::frame("banded_cell");
    let (circuit, _probes) = jtl_chain(stages, &JtlParams::default());
    let solver = Solver::new(circuit, SimOptions::adaptive())
        .unwrap_or_else(|e| die(format!("stdlib circuit rejected: {e}")));
    solver
        .try_run(t_end)
        .unwrap_or_else(|e| die(format!("stdlib transient failed: {e}")));
}

fn main() {
    let _session = supernpu_bench::session::begin("profile_report");
    sfq_obs::set_enabled(true);

    let mut smoke = false;
    let mut out = String::from("results/profile.json");
    let mut bench_out = String::from("BENCH_profile.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = value(),
            "--bench-out" => bench_out = value(),
            _ => usage(),
        }
    }

    supernpu_bench::header(
        "BENCH profile",
        "hierarchical profile of the solver, sweep and cache paths",
    );

    // Disabled-path self-check: with no SUPERNPU_PROFILE in the
    // environment the warm-up transient must register zero per-thread
    // trees. When the env var *is* set the profiler is already live
    // (and its path wins over --out), so the check is vacuous.
    if !prof::enabled() {
        banded_transient(8, 60e-12);
        let trees = prof::threads_registered();
        if trees != 0 {
            supernpu_bench::session::fail(format!(
                "disabled profiler recorded {trees} thread trees (want 0)"
            ));
        }
        println!("disabled path: 0 frames recorded");
        prof::set_profile(Some(&out));
    } else if let Some(env_path) = prof::path() {
        out = env_path.display().to_string();
    }

    let wall = Instant::now();
    let workload = if smoke {
        let lib = sfq_cells::CellLibrary::aist_10um();
        let cfg = sfq_estimator::NpuConfig::paper_supernpu();
        sfq_estimator::estimate(&cfg, &lib); // cache miss
        sfq_estimator::estimate(&cfg, &lib); // cache hit
        banded_transient(40, 120e-12);
        "smoke: estimator point + short banded transient"
    } else {
        supernpu::explore::fig20_buffer_sweep();
        sfq_chars::clear_measure_cache();
        sfq_chars::characterize()
            .unwrap_or_else(|e| die(format!("stdlib characterization failed: {e}")));
        sfq_chars::measure().unwrap_or_else(|e| die(format!("cached measurement failed: {e}"))); // cache hit
        banded_transient(40, 400e-12);
        "fig20 sweep + stdlib characterization + banded-cell transient"
    };
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;

    let report = prof::snapshot();
    println!("\n{}", report.render_top_table());

    // Coverage: profiled kernel self-times vs the banded solver run.
    let run_path = "banded_cell;solver.run";
    let Some(run) = report.path(run_path) else {
        supernpu_bench::session::fail(format!(
            "profile has no '{run_path}' path — solver frames missing"
        ));
    };
    let kernel_self_ms = report.descendants_self_ms(run_path);
    let coverage = if run.incl_ms > 0.0 {
        kernel_self_ms / run.incl_ms
    } else {
        0.0
    };
    println!(
        "banded_cell;solver.run: incl {:.3} ms, kernel self {:.3} ms, coverage {:.1}%",
        run.incl_ms,
        kernel_self_ms,
        coverage * 100.0
    );

    // Kernel table: every profiled descendant of the banded solver
    // run, named relative to it ("newton;lu_solve").
    let prefix = format!("{run_path};");
    let kernels: Vec<Value> = report
        .paths
        .iter()
        .filter(|p| p.path.starts_with(&prefix))
        .map(|p| {
            Value::Object(vec![
                ("name".into(), Value::Str(p.path[prefix.len()..].into())),
                ("calls".into(), Value::U64(p.calls)),
                ("incl_ms".into(), Value::F64(p.incl_ms)),
                ("self_ms".into(), Value::F64(p.self_ms)),
                (
                    "share".into(),
                    Value::F64(if run.incl_ms > 0.0 {
                        p.self_ms / run.incl_ms
                    } else {
                        0.0
                    }),
                ),
            ])
        })
        .collect();
    let floor = if smoke { 0.0 } else { MIN_SELF_COVERAGE };
    let bench = Value::Object(vec![
        (
            "schema_version".into(),
            Value::U64(u64::from(sfq_obs::SCHEMA_VERSION)),
        ),
        ("workload".into(), Value::Str(workload.into())),
        ("smoke".into(), Value::Bool(smoke)),
        ("threads".into(), Value::U64(report.threads)),
        ("wall_ms".into(), Value::F64(wall_ms)),
        ("solver_run_incl_ms".into(), Value::F64(run.incl_ms)),
        ("solver_run_self_ms".into(), Value::F64(run.self_ms)),
        ("kernel_self_ms".into(), Value::F64(kernel_self_ms)),
        ("self_coverage".into(), Value::F64(coverage)),
        ("min_self_coverage".into(), Value::F64(floor)),
        ("total_self_ms".into(), Value::F64(report.total_self_ms)),
        ("kernels".into(), Value::Array(kernels)),
    ]);
    supernpu_bench::report::write_json_report(&bench_out, &bench).unwrap_or_else(|e| die(e));

    // JSON + collapsed-stack exports (path set above or via env).
    match prof::flush() {
        Ok(Some(path)) => {
            println!(
                "wrote {} and {}",
                path.display(),
                path.with_extension("folded").display()
            );
        }
        Ok(None) => eprintln!("WARNING: profiler has no output path; nothing written"),
        Err(e) => supernpu_bench::session::fail(format!("writing profile: {e}")),
    }

    // Perfetto counter tracks: top self-time paths as counter samples
    // alongside whatever the trace ring recorded (full mode only —
    // the smoke run's timings are noise).
    if !smoke {
        let mut ct = sfq_obs::trace::ChromeTrace::new();
        report.counter_tracks(&mut ct);
        let counters_path = std::path::Path::new(&out).with_file_name("profile_counters.json");
        match std::fs::write(&counters_path, ct.to_json()) {
            Ok(()) => println!("wrote {}", counters_path.display()),
            Err(e) => eprintln!("WARNING: writing {}: {e}", counters_path.display()),
        }
    }

    if !smoke && coverage < MIN_SELF_COVERAGE {
        supernpu_bench::session::fail(format!(
            "kernel self-time coverage {:.1}% below required {:.0}%",
            coverage * 100.0,
            MIN_SELF_COVERAGE * 100.0
        ));
    }
}
