//! Extension study: SuperNPU against a broader field of CMOS
//! accelerators (edge-class Eyeriss, the paper's TPU core, and a
//! hypothetical next-generation datacenter NPU), plus the extension
//! workloads (ResNet-18/101, a Transformer encoder, MLP-Mixer).

use dnn_models::{zoo, zoo_ext, Network};
use scale_sim::CmosNpuConfig;
use sfq_npu_sim::simulate_network;
use supernpu::designs::DesignPoint;
use supernpu::report::{f, render_table};

fn main() {
    let _session = supernpu_bench::session::begin("ext_accelerators");
    supernpu_bench::header("Extensions", "broader accelerators and workloads");

    let cmos = [
        CmosNpuConfig::eyeriss(),
        CmosNpuConfig::tpu_core(),
        CmosNpuConfig::datacenter_big(),
    ];
    let sfq = DesignPoint::SuperNpu.sim_config();

    let mut nets: Vec<Network> = zoo::all();
    nets.extend(zoo_ext::all_extensions());

    let mut rows = Vec::new();
    for net in &nets {
        let mut row = vec![net.name().to_owned()];
        for cfg in &cmos {
            row.push(f(
                scale_sim::simulate_network(cfg, net).effective_tmacs(),
                2,
            ));
        }
        let s = simulate_network(&sfq, net);
        row.push(f(s.effective_tmacs(), 1));
        row.push(f(
            s.effective_tmacs() / scale_sim::simulate_network(&cmos[2], net).effective_tmacs(),
            2,
        ));
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &[
                "workload",
                "Eyeriss TMAC/s",
                "TPU TMAC/s",
                "BigCMOS TMAC/s",
                "SuperNPU TMAC/s",
                "vs BigCMOS",
            ],
            &rows
        )
    );
    println!("SuperNPU holds a lead even over a 262 TMAC/s-peak CMOS design on conv-heavy");
    println!("workloads; FC-heavy shapes (Transformer encoder) converge toward the");
    println!("bandwidth roofline where every machine is equal.");
}
