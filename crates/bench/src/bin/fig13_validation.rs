//! Fig. 13: estimator validation against a lower-level golden model.
//!
//! The paper validates its estimator against a fabricated 4-bit MAC
//! die and post-layout simulations. We do not have silicon, so the
//! golden reference here is the `jjsim` transient circuit simulator
//! (the same role JSIM plays in the paper's flow): per-cell delays,
//! switching energies and the shift-register clock-rate limit are
//! measured from transient runs and compared with the closed-form
//! estimator/cell-library numbers.

use jjsim::extract::{
    and_clock_to_q, and_cycle_energy, dff_clock_to_q, dff_cycle_energy, jtl_characteristics,
    max_shift_frequency, splitter_delay,
};
use jjsim::stdlib::{AndParams, DffParams, JtlParams};
use sfq_cells::{CellLibrary, GateKind};
use sfq_estimator::clocking::feedback_comparison;
use sfq_estimator::{estimate, NpuConfig};
use supernpu::report::{f, render_table};
use supernpu_bench::report::die;

fn err_pct(model: f64, golden: f64) -> String {
    format!("{:+.1}%", 100.0 * (model - golden) / golden)
}

fn main() {
    let _session = supernpu_bench::session::begin("fig13_validation");
    supernpu_bench::header("Fig. 13", "model validation (§IV-A.4)");
    let lib = CellLibrary::aist_10um();

    let fail =
        |what: &str, e: jjsim::SimError| -> ! { die(format!("{what} transient failed: {e}")) };
    let jtl = jtl_characteristics(8, &JtlParams::default()).unwrap_or_else(|e| fail("JTL", e));
    let spl = splitter_delay(&JtlParams::default()).unwrap_or_else(|e| fail("splitter", e));
    let dff_d = dff_clock_to_q(&DffParams::default()).unwrap_or_else(|e| fail("DFF", e));
    let dff_e = dff_cycle_energy(&DffParams::default()).unwrap_or_else(|e| fail("DFF", e));
    let sr_f = max_shift_frequency(&DffParams::default(), 5.0, 50.0)
        .unwrap_or_else(|e| fail("shift-register", e));
    let and_d = and_clock_to_q(&AndParams::default()).unwrap_or_else(|e| fail("AND", e));
    let and_e = and_cycle_energy(&AndParams::default()).unwrap_or_else(|e| fail("AND", e));

    let model_sr_ghz = feedback_comparison(&lib).sr_feedback_ghz;
    let rows = vec![
        vec![
            "JTL stage delay (ps)".to_owned(),
            f(lib.gate(GateKind::Jtl).delay_ps, 2),
            f(jtl.delay_s * 1e12, 2),
            err_pct(lib.gate(GateKind::Jtl).delay_ps, jtl.delay_s * 1e12),
        ],
        vec![
            "Splitter delay (ps)".to_owned(),
            f(lib.gate(GateKind::Splitter).delay_ps, 2),
            f(spl * 1e12, 2),
            err_pct(lib.gate(GateKind::Splitter).delay_ps, spl * 1e12),
        ],
        vec![
            "DFF clock-to-Q (ps)".to_owned(),
            f(lib.gate(GateKind::Dff).delay_ps, 2),
            f(dff_d * 1e12, 2),
            err_pct(lib.gate(GateKind::Dff).delay_ps, dff_d * 1e12),
        ],
        vec![
            "AND clock-to-Q (ps)".to_owned(),
            f(lib.gate(GateKind::And).delay_ps, 2),
            f(and_d * 1e12, 2),
            err_pct(lib.gate(GateKind::And).delay_ps, and_d * 1e12),
        ],
        {
            // One clocked evaluate (the library's per-access figure):
            // golden = shunt dissipation + bias recharge of the three
            // switched junctions.
            let bias_aj = 3.0 * 0.5e-4 * jjsim::PHI0 * 1e18;
            let golden_aj = and_e * 1e18 + bias_aj;
            vec![
                "AND evaluate energy (aJ)".to_owned(),
                f(lib.gate(GateKind::And).energy_aj, 2),
                f(golden_aj, 2),
                err_pct(lib.gate(GateKind::And).energy_aj, golden_aj),
            ]
        },
        vec![
            "SRmem max clock (GHz)".to_owned(),
            f(model_sr_ghz, 1),
            f(sr_f / 1e9, 1),
            err_pct(model_sr_ghz, sr_f / 1e9),
        ],
        {
            // The transient solver measures shunt dissipation only; a
            // real switching event also recharges the cell's bias
            // network by ~Φ0·I_bias per switched junction, which the
            // characterized cell energies include. A JTL *cell* in the
            // AIST library is two junction stages.
            let bias_aj = 0.7e-4 * jjsim::PHI0 * 1e18;
            let golden_cell_aj = 2.0 * (jtl.energy_j * 1e18 + bias_aj);
            vec![
                "JTL cell energy (aJ)".to_owned(),
                f(lib.gate(GateKind::Jtl).energy_aj, 2),
                f(golden_cell_aj, 2),
                err_pct(lib.gate(GateKind::Jtl).energy_aj, golden_cell_aj),
            ]
        },
        {
            let bias_aj = 2.0 * 0.5e-4 * jjsim::PHI0 * 1e18;
            let golden_aj = dff_e * 1e18 + bias_aj;
            vec![
                "DFF cycle energy (aJ)".to_owned(),
                f(lib.gate(GateKind::Dff).energy_aj * 2.0, 2),
                f(golden_aj, 2),
                err_pct(lib.gate(GateKind::Dff).energy_aj * 2.0, golden_aj),
            ]
        },
    ];
    println!(
        "{}",
        render_table(
            &["quantity", "estimator/library", "jjsim golden", "error"],
            &rows
        )
    );

    // Architecture level: the 2×2 4-bit PE-arrayed NPU of Fig. 12(c).
    let tiny = NpuConfig {
        name: "2x2 4-bit NPU".into(),
        array_height: 2,
        array_width: 2,
        bits: 4,
        regs_per_pe: 1,
        ifmap_buf_bytes: 64,
        output_buf_bytes: 64,
        psum_buf_bytes: 64,
        weight_buf_bytes: 16,
        division: 1,
        integrated_output: false,
    };
    let est = estimate(&tiny, &lib);
    println!(
        "architecture level: 2x2 4-bit NPU -> {:.1} GHz, {:.2} mW static, {:.3} mm^2 (1.0 um)",
        est.frequency_ghz,
        est.static_w * 1e3,
        est.area_mm2_native
    );
    println!("paper: average model errors 5.6% (freq), 1.2% (power), 1.3% (area) at unit level,");
    println!("validated against fabricated dies and post-layout extraction. Our golden is a");
    println!("generic RCSJ transient testbench rather than the AIST layout, so the residuals");
    println!("above are larger; see EXPERIMENTS.md for the discussion.");
}
