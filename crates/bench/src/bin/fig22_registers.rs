//! Fig. 22: performance impact of the number of weight registers per
//! PE at array widths 64 and 128.

use supernpu::explore::fig22_register_sweep;
use supernpu::report::{f, render_table};
use supernpu_bench::report::die;

fn main() {
    let _session = supernpu_bench::session::begin("fig22_registers");
    supernpu_bench::header("Fig. 22", "weight-registers-per-PE sweep (§V-B.3)");
    let pts = fig22_register_sweep();
    let mut rows = Vec::new();
    for regs in [1u32, 2, 4, 8, 16, 32] {
        let perf = |w: u32| {
            pts.iter()
                .find(|p| p.width == w && p.regs == regs)
                .unwrap_or_else(|| die(format!("fig22 sweep missing width {w} / regs {regs}")))
                .performance
        };
        rows.push(vec![regs.to_string(), f(perf(64), 1), f(perf(128), 1)]);
    }
    println!(
        "{}",
        render_table(
            &[
                "regs/PE",
                "width 64 perf (xBaseline)",
                "width 128 perf (xBaseline)"
            ],
            &rows
        )
    );
    println!("paper: width 64 keeps improving up to 8 registers; width 128 is memory-");
    println!("       bound and gains almost nothing — hence SuperNPU = width 64 + 8 regs.");
    supernpu_bench::write_metrics();
}
