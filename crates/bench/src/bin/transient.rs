//! `transient` — run a JSIM-style netlist through the transient JJ
//! simulator and report every junction's SFQ pulse times.
//!
//! ```text
//! cargo run -p supernpu-bench --release --bin transient -- deck.cir
//! ```

use std::process::ExitCode;

use jjsim::{parse_netlist, Solver};

fn main() -> ExitCode {
    let _session = supernpu_bench::session::begin("transient");
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: transient <netlist.cir> [--trace NODE[,NODE...] --out FILE.csv]");
        return ExitCode::FAILURE;
    };
    let mut trace_nodes: Vec<String> = Vec::new();
    let mut trace_out = String::from("results/trace.csv");
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace" => {
                let Some(list) = args.next() else {
                    eprintln!("--trace needs a node list");
                    return ExitCode::FAILURE;
                };
                trace_nodes = list.split(',').map(|s| s.to_ascii_uppercase()).collect();
            }
            "--out" => {
                let Some(p) = args.next() else {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                };
                trace_out = p;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("reading {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let parsed = match parse_netlist(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut opts = parsed.sim_options();
    for name in &trace_nodes {
        match parsed.nodes.get(name) {
            Some(id) => opts.record_nodes.push(*id),
            None => {
                eprintln!(
                    "unknown node '{name}' (known: {:?})",
                    parsed.nodes.keys().collect::<Vec<_>>()
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let solver = match Solver::new(parsed.circuit.clone(), opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("building solver: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match solver.try_run(parsed.stop_time()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("transient failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "{} nodes, {} junctions, {:.0} ps simulated, {:.3} aJ dissipated",
        parsed.circuit.node_count() - 1,
        parsed.circuit.jj_count(),
        result.t_end * 1e12,
        result.dissipated_j * 1e18
    );
    for (name, id) in &parsed.junctions {
        let times: Vec<String> = result
            .pulse_times(*id)
            .iter()
            .map(|t| format!("{:.1}", t * 1e12))
            .collect();
        println!(
            "{name}: {} pulse(s) at [{}] ps, final phase {:.2} rad",
            times.len(),
            times.join(", "),
            result.final_phase(*id)
        );
    }
    if !trace_nodes.is_empty() {
        let mut csv = String::from("time_ps");
        for n in &trace_nodes {
            csv.push(',');
            csv.push_str(n);
        }
        csv.push('\n');
        for (i, t) in result.trace_times.iter().enumerate() {
            csv.push_str(&format!("{:.3}", t * 1e12));
            for trace in &result.traces {
                csv.push_str(&format!(",{:.6e}", trace[i]));
            }
            csv.push('\n');
        }
        if let Some(dir) = std::path::Path::new(&trace_out).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(&trace_out, csv) {
            Ok(()) => println!("voltage traces written to {trace_out}"),
            Err(e) => {
                eprintln!("writing {trace_out}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
