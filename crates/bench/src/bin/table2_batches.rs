//! Table II: the batch size each design runs each workload at.

use supernpu::evaluator::table2_batches;
use supernpu::report::render_table;

fn main() {
    let _session = supernpu_bench::session::begin("table2_batches");
    supernpu_bench::header("Table II", "workload batch setup (§VI-A)");
    let rows: Vec<Vec<String>> = table2_batches()
        .into_iter()
        .map(|r| {
            let mut row = vec![r.network];
            row.extend(r.batches.iter().map(ToString::to_string));
            row
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "workload",
                "TPU",
                "Baseline",
                "Buffer opt.",
                "Resource opt.",
                "SuperNPU"
            ],
            &rows
        )
    );
    println!("paper: Baseline = 1 everywhere; Buffer opt. 15/3/…/1; SuperNPU 30 (VGG16: 7).");
}
