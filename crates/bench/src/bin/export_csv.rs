//! `export_csv` — write every figure's data series to `results/*.csv`,
//! plot-ready for regenerating the paper's charts.

use std::process::ExitCode;

fn main() -> ExitCode {
    let _session = supernpu_bench::session::begin("export_csv");
    supernpu_bench::header("CSV export", "plot-ready series for every figure");
    if let Err(e) = std::fs::create_dir_all("results") {
        eprintln!("creating results/: {e}");
        return ExitCode::FAILURE;
    }
    for d in supernpu::export::all_datasets() {
        let path = format!("results/{}.csv", d.name);
        if let Err(e) = std::fs::write(&path, &d.csv) {
            eprintln!("writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path} ({} bytes)", d.csv.len());
    }
    ExitCode::SUCCESS
}
