//! The observatory CLI: aggregate the run ledger and the committed
//! `BENCH_*.json` baselines into `results/report.md` +
//! `results/report.html`.
//!
//! ```text
//! supernpu_report [--ledger results/ledger] [--out results] \
//!                 [--bench-dir .] [--factor 1.5] [--abs-ms 100]
//! ```
//!
//! Runs are joined by (bin, config fingerprint); rows whose duration
//! exceeds the previous run's by more than the bench-gate tolerance
//! are flagged with the literal `REGRESSION` marker
//! (`scripts/check.sh --report` greps for it). Exit is 0 even with
//! regressions present — this bin *reports*, the gate script decides.
//! Malformed ledger lines or baselines exit nonzero: a ledger that
//! does not parse is a bug, not noise.
//!
//! Deliberately **not** wrapped in `session::begin`: the observatory
//! reads the ledger it would otherwise be appending to, and the
//! `--report` smoke gate counts entries per producing bin.

use std::path::PathBuf;

use serde::Value;
use supernpu_bench::gate::Tolerances;
use supernpu_bench::observatory::{build, load_ledger, BenchFile};
use supernpu_bench::report::{die, write_report};

fn usage() -> ! {
    eprintln!(
        "usage: supernpu_report [--ledger <dir>] [--out <dir>] [--bench-dir <dir>] \
         [--factor <mult>] [--abs-ms <ms>]"
    );
    std::process::exit(2);
}

/// Ledger dir default mirrors `sfq_obs::ledger`: `SUPERNPU_LEDGER`
/// when it names a directory, else `results/ledger`.
fn default_ledger_dir() -> PathBuf {
    match std::env::var("SUPERNPU_LEDGER") {
        Ok(v) if !["", "0", "false", "off"].contains(&v.trim()) => PathBuf::from(v.trim()),
        _ => PathBuf::from(sfq_obs::ledger::DEFAULT_DIR),
    }
}

fn main() {
    let mut ledger_dir = default_ledger_dir();
    let mut out_dir = PathBuf::from("results");
    let mut bench_dir = PathBuf::from(".");
    let mut tol = Tolerances::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--ledger" => ledger_dir = PathBuf::from(value()),
            "--out" => out_dir = PathBuf::from(value()),
            "--bench-dir" => bench_dir = PathBuf::from(value()),
            "--factor" => tol.factor = value().parse().unwrap_or_else(|_| usage()),
            "--abs-ms" => tol.abs_ms = value().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }

    let runs = match load_ledger(&ledger_dir) {
        Ok(r) => r,
        Err(e) => die(e),
    };

    // Inventory every committed BENCH_*.json next to the repo root
    // (or wherever --bench-dir points), name-sorted for determinism.
    let mut bench: Vec<BenchFile> = Vec::new();
    let mut names: Vec<String> = match std::fs::read_dir(&bench_dir) {
        Ok(entries) => entries
            .flatten()
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            .collect(),
        Err(e) => die(format!("cannot list {}: {e}", bench_dir.display())),
    };
    names.sort();
    for name in names {
        let path = bench_dir.join(&name);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => die(format!("cannot read {}: {e}", path.display())),
        };
        let value: Value = match serde_json::from_str(&text) {
            Ok(v) => v,
            Err(e) => die(format!("{}: malformed baseline: {e}", path.display())),
        };
        bench.push(BenchFile::from_value(&name, &value));
    }

    let report = build(&runs, &bench, &tol);
    let md_path = out_dir.join("report.md");
    let html_path = out_dir.join("report.html");
    if let Err(e) = write_report(&md_path, &report.markdown) {
        die(e);
    }
    if let Err(e) = write_report(&html_path, &report.html) {
        die(e);
    }
    println!(
        "supernpu_report: {} run(s) in {} → {} trend group(s), {} regression flag(s), \
         {} baseline(s); wrote {} and {}",
        runs.len(),
        ledger_dir.display(),
        report.groups,
        report.regressions,
        bench.len(),
        md_path.display(),
        html_path.display()
    );
}
