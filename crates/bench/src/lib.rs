//! # supernpu-bench
//!
//! Experiment regenerators for the SuperNPU reproduction: one binary
//! per paper table/figure (`fig05_network`, …, `table3_power`) plus
//! Criterion benchmarks of the simulator, estimator and transient
//! circuit solver.
//!
//! Run everything with:
//!
//! ```text
//! for b in fig05_network fig07_feedback fig08_duplication fig13_validation \
//!          fig15_breakdown fig17_roofline fig20_buffer_opt \
//!          fig21_resource_balance fig22_registers fig23_performance \
//!          table1_setup table2_batches table3_power; do
//!     cargo run -p supernpu-bench --release --bin $b
//! done
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Print the standard experiment header.
pub fn header(id: &str, paper_ref: &str) {
    println!("== {id} — reproduces {paper_ref} ==");
    println!();
}
