//! # supernpu-bench
//!
//! Experiment regenerators for the SuperNPU reproduction: one binary
//! per paper table/figure (`fig05_network`, …, `table3_power`) plus
//! Criterion benchmarks of the simulator, estimator and transient
//! circuit solver.
//!
//! Run everything with:
//!
//! ```text
//! for b in fig05_network fig07_feedback fig08_duplication fig13_validation \
//!          fig15_breakdown fig17_roofline fig20_buffer_opt \
//!          fig21_resource_balance fig22_registers fig23_performance \
//!          table1_setup table2_batches table3_power; do
//!     cargo run -p supernpu-bench --release --bin $b
//! done
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gate;
pub mod observatory;
pub mod report;
pub mod session;

/// Print the standard experiment header.
pub fn header(id: &str, paper_ref: &str) {
    println!("== {id} — reproduces {paper_ref} ==");
    println!();
}

/// Write `results/metrics.json` from the live [`sfq_obs`] registry.
/// No-op unless metrics are enabled (`SUPERNPU_METRICS=1`), so the
/// experiment binaries can call this unconditionally at the end of
/// `main` without changing their default-run artifacts.
pub fn write_metrics() {
    if !sfq_obs::enabled() {
        return;
    }
    let dir = std::path::Path::new("results");
    let written =
        std::fs::create_dir_all(dir).and_then(|()| supernpu::export::write_metrics_json(dir));
    match written {
        Ok(Some(path)) => {
            sfq_obs::ledger::record_artifact(&path);
            eprintln!("metrics written to {}", path.display());
        }
        Ok(None) => {}
        Err(e) => eprintln!("could not write metrics.json: {e}"),
    }
}
