//! Typed report I/O for the experiment binaries.
//!
//! The bench bins' job is to leave artifacts (`BENCH_*.json`,
//! `results/*`) on disk; losing one to a torn write or a swallowed
//! error defeats the point of running them. This module gives every
//! bin the same two primitives:
//!
//! * [`write_report`] — serialize-and-persist through the guard
//!   layer's atomic writer (temp sibling + fsync + rename), with a
//!   typed [`ReportError`] instead of a bare `expect` on `fs::write`;
//! * [`die`] — the graceful exit for unrecoverable setup failures
//!   (bad CLI flag, non-convergent reference transient): message to
//!   stderr, nonzero exit code, no panic backtrace noise.

use std::fmt;
use std::path::{Path, PathBuf};

use serde::Serialize;

/// Why a report could not be produced.
#[derive(Debug)]
pub enum ReportError {
    /// Serialization failed (a bug in the report structs, surfaced
    /// with its source).
    Serialize {
        /// Which report was being serialized.
        what: String,
        /// Serializer error text.
        message: String,
    },
    /// The filesystem refused the write.
    Io {
        /// Destination path.
        path: PathBuf,
        /// I/O error text.
        message: String,
    },
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportError::Serialize { what, message } => {
                write!(f, "could not serialize {what}: {message}")
            }
            ReportError::Io { path, message } => {
                write!(f, "could not write {}: {message}", path.display())
            }
        }
    }
}

impl std::error::Error for ReportError {}

/// Serialize `value` as pretty JSON, with a typed error naming the
/// report instead of a panic.
///
/// # Errors
///
/// [`ReportError::Serialize`] when the value does not serialize.
pub fn to_json_pretty<T: Serialize>(what: &str, value: &T) -> Result<String, ReportError> {
    serde_json::to_string_pretty(value).map_err(|e| ReportError::Serialize {
        what: what.to_owned(),
        message: e.to_string(),
    })
}

/// Write `contents` to `path` atomically (parent dirs created, temp
/// sibling + fsync + rename via [`sfq_guard::checkpoint`]): a crash
/// or full disk mid-write leaves either the old artifact or the new
/// one, never a torn file.
///
/// # Errors
///
/// [`ReportError::Io`] with the destination path on any filesystem
/// failure.
pub fn write_report(path: impl AsRef<Path>, contents: &str) -> Result<(), ReportError> {
    let path = path.as_ref();
    sfq_guard::checkpoint::atomic_write(path, contents.as_bytes()).map_err(|e| {
        ReportError::Io {
            path: path.to_path_buf(),
            message: e.to_string(),
        }
    })?;
    // Every artifact a bin persists through this writer shows up in
    // the run's ledger manifest (no-op when the ledger is off).
    sfq_obs::ledger::record_artifact(path);
    Ok(())
}

/// Serialize and atomically persist in one step, then echo the path.
///
/// # Errors
///
/// Either [`ReportError`] variant.
pub fn write_json_report<T: Serialize>(
    path: impl AsRef<Path>,
    value: &T,
) -> Result<(), ReportError> {
    let path = path.as_ref();
    let json = to_json_pretty(&path.display().to_string(), value)?;
    write_report(path, &json)?;
    println!("\nreport written to {}", path.display());
    Ok(())
}

/// Exit the binary with a message on stderr and a nonzero code — the
/// bench bins' replacement for `expect` on unrecoverable setup
/// failures (CLI misuse, a reference transient that refuses to
/// converge). Unlike a panic it produces one readable line, and
/// unlike `unwrap` it cannot be mistaken for a reachable-by-design
/// path by the clippy gate. Routes through [`crate::session::fail`],
/// so the obs sinks and the run ledger flush before the exit.
pub fn die(msg: impl fmt::Display) -> ! {
    crate::session::fail(msg)
}
