//! Bench-regression gate — diff a fresh `BENCH_solver.json` /
//! `BENCH_sweeps.json` report against a committed baseline and fail
//! on regression.
//!
//! Two kinds of check:
//!
//! * **correctness** — hard invariants of the fresh run alone:
//!   every sweep's `identical_output`, every cell's
//!   `pulse_counts_match`, and `worst_pulse_delta_ps` within the
//!   report's own `pulse_tol_ps`. These use no tolerance: a fresh
//!   report that violates them fails regardless of the baseline.
//! * **regression** — fresh vs baseline: wall-clock per entry must
//!   stay within `baseline × factor + abs_ms` (the additive slack
//!   keeps sub-millisecond entries from tripping on scheduler
//!   noise), the solver's `step_ratio_total` must hold ≥ 95% of the
//!   baseline ratio and ≥ its own `min_step_ratio`, and every
//!   baseline entry must still exist in the fresh report.
//!
//! The schema is auto-detected from the top-level key: `"sweeps"`
//! (the sweep report) or `"cells"` (the solver report).

use serde::Value;

/// Wall-clock tolerance: fresh time may grow to
/// `baseline * factor + abs_ms` before the gate fails.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerances {
    /// Multiplicative slack on each baseline timing.
    pub factor: f64,
    /// Additive slack in milliseconds (absorbs noise on tiny entries).
    pub abs_ms: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            factor: 1.5,
            abs_ms: 100.0,
        }
    }
}

/// Outcome of one gate run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GateReport {
    /// Number of individual checks evaluated.
    pub checks: usize,
    /// Human-readable description of every failed check.
    pub failures: Vec<String>,
    /// Checks that were deliberately not evaluated (e.g. speedup rungs
    /// on a one-core machine), with the reason — surfaced so a "PASS"
    /// on a laptop is readable as weaker than a "PASS" on CI.
    pub skipped: Vec<String>,
}

impl GateReport {
    /// Whether every check passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    fn check(&mut self, ok: bool, msg: impl FnOnce() -> String) {
        self.checks += 1;
        if !ok {
            self.failures.push(msg());
        }
    }

    fn skip(&mut self, msg: String) {
        self.skipped.push(msg);
    }
}

fn get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    v.as_object()?
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
}

fn num(v: &Value, key: &str) -> Option<f64> {
    get(v, key)?.as_f64()
}

fn entries<'a>(report: &'a Value, list_key: &str) -> Vec<(&'a str, &'a Value)> {
    get(report, list_key)
        .and_then(Value::as_array)
        .map(|items| {
            items
                .iter()
                .filter_map(|e| Some((get(e, "name")?.as_str()?, e)))
                .collect()
        })
        .unwrap_or_default()
}

/// Check one timing field of a named entry against the baseline.
fn check_timing(
    report: &mut GateReport,
    kind: &str,
    name: &str,
    field: &str,
    base: &Value,
    fresh: &Value,
    tol: &Tolerances,
) {
    let (Some(b), Some(f)) = (num(base, field), num(fresh, field)) else {
        report.check(false, || {
            format!("{kind} '{name}': missing timing field '{field}'")
        });
        return;
    };
    let limit = b * tol.factor + tol.abs_ms;
    report.check(f <= limit, || {
        format!(
            "{kind} '{name}': {field} regressed {f:.3} ms > limit {limit:.3} ms \
             (baseline {b:.3} ms × {} + {} ms)",
            tol.factor, tol.abs_ms
        )
    });
}

fn compare_sweeps(base: &Value, fresh: &Value, tol: &Tolerances, report: &mut GateReport) {
    let base_entries = entries(base, "sweeps");
    let fresh_entries = entries(fresh, "sweeps");
    report.check(!fresh_entries.is_empty(), || {
        "sweep report: no sweeps in fresh report".into()
    });
    for (name, f) in &fresh_entries {
        report.check(
            get(f, "identical_output").and_then(Value::as_bool) == Some(true),
            || format!("sweep '{name}': parallel output differs from serial"),
        );
    }
    for (name, b) in &base_entries {
        let Some((_, f)) = fresh_entries.iter().find(|(n, _)| n == name) else {
            report.check(false, || {
                format!("sweep '{name}': present in baseline, missing in fresh report")
            });
            continue;
        };
        check_timing(report, "sweep", name, "parallel_ms", b, f, tol);
    }

    // Parallelism-sensitive checks only bind when the pool actually
    // has more than one logical core behind it; a serial (or
    // oversubscribed one-core) run's "speedup" is pure timing noise.
    // Reports older than the `speedup_meaningful` field are treated as
    // not-meaningful rather than rejected.
    let meaningful = get(fresh, "speedup_meaningful").and_then(Value::as_bool) == Some(true);
    if meaningful {
        for (name, f) in &fresh_entries {
            if let Some(speedup) = num(f, "speedup") {
                report.check(speedup >= 1.0, || {
                    format!("sweep '{name}': parallel run slower than serial ({speedup:.2}x)")
                });
            }
        }
    } else {
        let vacuous = fresh_entries
            .iter()
            .filter(|(_, f)| num(f, "speedup").is_some())
            .count();
        if vacuous > 0 {
            report.skip(format!("{vacuous} speedup checks skipped (1 logical core)"));
        }
    }

    // Stress rungs (present when the report was produced with
    // `--points N`): bit-identity is unconditional; the scaling floor
    // was computed by the producer from min(threads, logical_cores),
    // so `meets_scaling` is already vacuous on serial machines.
    let stress = get(fresh, "stress").and_then(Value::as_array);
    if get(base, "stress").is_some() {
        report.check(stress.is_some(), || {
            "sweep report: baseline has a stress section, fresh report lacks one".into()
        });
    }
    for rung in stress.into_iter().flatten() {
        let threads = num(rung, "threads").unwrap_or(0.0);
        report.check(
            get(rung, "identical_output").and_then(Value::as_bool) == Some(true),
            || format!("stress rung ({threads} threads): output differs from serial"),
        );
        report.check(
            get(rung, "meets_scaling").and_then(Value::as_bool) == Some(true),
            || {
                format!(
                    "stress rung ({threads} threads): speedup {:.2}x below the scaling floor",
                    num(rung, "speedup").unwrap_or(f64::NAN)
                )
            },
        );
    }
}

fn compare_solver(base: &Value, fresh: &Value, tol: &Tolerances, report: &mut GateReport) {
    let base_entries = entries(base, "cells");
    let fresh_entries = entries(fresh, "cells");
    report.check(!fresh_entries.is_empty(), || {
        "solver report: no cells in fresh report".into()
    });
    for (name, f) in &fresh_entries {
        report.check(
            get(f, "pulse_counts_match").and_then(Value::as_bool) == Some(true),
            || format!("cell '{name}': adaptive pulse counts diverge from fixed-step reference"),
        );
    }
    let tol_ps = num(fresh, "pulse_tol_ps").unwrap_or(f64::INFINITY);
    if let Some(worst) = num(fresh, "worst_pulse_delta_ps") {
        report.check(worst <= tol_ps, || {
            format!("solver: worst_pulse_delta_ps {worst:.4} exceeds pulse_tol_ps {tol_ps:.4}")
        });
    }
    if let Some(ratio) = num(fresh, "step_ratio_total") {
        let min_ratio = num(fresh, "min_step_ratio").unwrap_or(0.0);
        report.check(ratio >= min_ratio, || {
            format!("solver: step_ratio_total {ratio:.3} below required minimum {min_ratio:.3}")
        });
        if let Some(base_ratio) = num(base, "step_ratio_total") {
            report.check(ratio >= base_ratio * 0.95, || {
                format!("solver: step_ratio_total {ratio:.3} lost >5% vs baseline {base_ratio:.3}")
            });
        }
    } else {
        report.check(false, || {
            "solver: fresh report lacks step_ratio_total".into()
        });
    }
    for (name, b) in &base_entries {
        let Some((_, f)) = fresh_entries.iter().find(|(n, _)| n == name) else {
            report.check(false, || {
                format!("cell '{name}': present in baseline, missing in fresh report")
            });
            continue;
        };
        check_timing(report, "cell", name, "adaptive_ms", b, f, tol);
    }

    // The banded cell (reported separately so its in-flight pulse
    // train doesn't dilute the quiescent cells' step-ratio aggregate)
    // gets the same correctness treatment plus proof that the packed
    // band factorization actually ran. Baselines predating the field
    // are tolerated; once the baseline has it, it may not vanish.
    let banded = get(fresh, "banded_cell");
    if let Some(f) = banded {
        report.check(
            get(f, "pulse_counts_match").and_then(Value::as_bool) == Some(true),
            || "banded cell: adaptive pulse counts diverge from fixed-step reference".into(),
        );
        if let Some(delta) = num(f, "max_pulse_delta_ps") {
            report.check(delta <= tol_ps, || {
                format!(
                    "banded cell: max_pulse_delta_ps {delta:.4} exceeds pulse_tol_ps {tol_ps:.4}"
                )
            });
        }
        report.check(num(f, "lu_factor").unwrap_or(0.0) > 0.0, || {
            "banded cell: lu_factor is zero — the banded path never engaged".into()
        });
        if let Some(b) = get(base, "banded_cell") {
            check_timing(
                report,
                "banded cell",
                "jtl_chain_40",
                "adaptive_ms",
                b,
                f,
                tol,
            );
        }
    } else if get(base, "banded_cell").is_some() {
        report.check(false, || {
            "solver report: baseline has a banded_cell entry, fresh report lacks one".into()
        });
    }
}

fn compare_profile(base: &Value, fresh: &Value, tol: &Tolerances, report: &mut GateReport) {
    let base_entries = entries(base, "kernels");
    let fresh_entries = entries(fresh, "kernels");
    report.check(!fresh_entries.is_empty(), || {
        "profile report: no kernels in fresh report".into()
    });

    // Coverage floor: the profiled kernel self-times must explain at
    // least `min_self_coverage` of the solver's inclusive run time,
    // else laps have drifted away from the hot loops and the profile
    // is lying by omission. The floor is the fresh report's own (like
    // `min_step_ratio` in the solver gate), so the producer and the
    // gate cannot disagree about it.
    match (num(fresh, "self_coverage"), num(fresh, "min_self_coverage")) {
        (Some(cov), Some(floor)) => {
            report.check(cov >= floor, || {
                format!(
                    "profile: solver self-time coverage {cov:.3} below required floor {floor:.3}"
                )
            });
            if let Some(base_cov) = num(base, "self_coverage") {
                report.check(cov >= base_cov - 0.05, || {
                    format!("profile: self_coverage {cov:.3} lost >0.05 vs baseline {base_cov:.3}")
                });
            }
        }
        _ => report.check(false, || {
            "profile: fresh report lacks self_coverage / min_self_coverage".into()
        }),
    }

    for (name, b) in &base_entries {
        let Some((_, f)) = fresh_entries.iter().find(|(n, _)| n == name) else {
            report.check(false, || {
                format!("kernel '{name}': present in baseline, missing in fresh report")
            });
            continue;
        };
        check_timing(report, "kernel", name, "self_ms", b, f, tol);
    }
}

fn compare_batch(base: &Value, fresh: &Value, tol: &Tolerances, report: &mut GateReport) {
    let base_entries = entries(base, "batch");
    let fresh_entries = entries(fresh, "batch");
    report.check(!fresh_entries.is_empty(), || {
        "batch report: no workloads in fresh report".into()
    });

    // Hard correctness: the batched run must reproduce the scalar
    // outcomes exactly, and any workload that carries its own speedup
    // floor (yield-200 at LANES=4 requires >= 2x) must clear it. The
    // floor is the fresh report's own, like `min_step_ratio` in the
    // solver gate, so producer and gate cannot disagree — and unlike
    // thread-pool speedups it binds on every machine, because lanes
    // are SIMD within one core, not parallelism across cores.
    for (name, f) in &fresh_entries {
        report.check(
            get(f, "outcomes_identical").and_then(Value::as_bool) == Some(true),
            || format!("batch '{name}': batched outcomes differ from the scalar path"),
        );
        if let Some(floor) = num(f, "min_speedup") {
            let speedup = num(f, "speedup").unwrap_or(f64::NAN);
            report.check(speedup >= floor, || {
                format!("batch '{name}': speedup {speedup:.2}x below required {floor:.2}x")
            });
        }
    }

    // Equivalence section: K perturbed instances batched vs scalar —
    // identical pulse counts, pulse times within the report's own
    // tolerance.
    let tol_ps = num(fresh, "pulse_tol_ps").unwrap_or(f64::INFINITY);
    match get(fresh, "equivalence") {
        Some(eq) => {
            report.check(
                get(eq, "pulse_counts_match").and_then(Value::as_bool) == Some(true),
                || "batch equivalence: pulse counts diverge from scalar".into(),
            );
            let delta = num(eq, "max_pulse_delta_ps").unwrap_or(f64::INFINITY);
            report.check(delta <= tol_ps, || {
                format!(
                    "batch equivalence: max_pulse_delta_ps {delta:.4} exceeds \
                     pulse_tol_ps {tol_ps:.4}"
                )
            });
        }
        None => report.check(false, || {
            "batch report: fresh report lacks an equivalence section".into()
        }),
    }

    for (name, b) in &base_entries {
        let Some((_, f)) = fresh_entries.iter().find(|(n, _)| n == name) else {
            report.check(false, || {
                format!("batch '{name}': present in baseline, missing in fresh report")
            });
            continue;
        };
        check_timing(report, "batch", name, "batched_ms", b, f, tol);
    }
}

fn compare_robust(base: &Value, fresh: &Value, tol: &Tolerances, report: &mut GateReport) {
    let base_entries = entries(base, "robust");
    let fresh_entries = entries(fresh, "robust");
    report.check(!fresh_entries.is_empty(), || {
        "robust report: no sweep entries in fresh report".into()
    });

    // Hard correctness of the fresh run alone: no point is ever
    // silently lost, and the five terminal-state counters must
    // account for every point — a gap would mean the runner dropped a
    // point without labeling it, the exact failure mode the guard
    // layer exists to remove.
    for (name, f) in &fresh_entries {
        let lost = num(f, "lost").unwrap_or(f64::NAN);
        report.check(lost == 0.0, || {
            format!("robust '{name}': {lost} point(s) silently lost")
        });
        let points = num(f, "points").unwrap_or(f64::NAN);
        let sum: f64 = ["completed", "degraded", "timed_out", "cancelled", "failed"]
            .iter()
            .map(|k| num(f, k).unwrap_or(f64::NAN))
            .sum();
        report.check(sum == points, || {
            format!("robust '{name}': state counts ({sum}) do not cover all {points} points")
        });
    }

    // Overhead section: guards-disabled parity (bit-identical values,
    // within the producer's own overhead budget).
    match get(fresh, "overhead") {
        Some(ov) => {
            report.check(
                get(ov, "values_match").and_then(Value::as_bool) == Some(true),
                || "robust overhead: unguarded resilient sweep diverged from plain sweep".into(),
            );
            report.check(
                get(ov, "within_overhead").and_then(Value::as_bool) == Some(true),
                || {
                    format!(
                        "robust overhead: guards-disabled overhead {:.1}% exceeds budget {:.0}%",
                        num(ov, "overhead_frac").unwrap_or(f64::NAN) * 100.0,
                        num(ov, "max_overhead_frac").unwrap_or(f64::NAN) * 100.0
                    )
                },
            );
        }
        None => report.check(false, || {
            "robust report: fresh report lacks an overhead section".into()
        }),
    }

    // Resume section: a killed-then-resumed sweep must reproduce the
    // uninterrupted run byte-for-byte.
    match get(fresh, "resume") {
        Some(rs) => report.check(
            get(rs, "resume_identical").and_then(Value::as_bool) == Some(true),
            || "robust resume: resumed sweep diverged from the uninterrupted reference".into(),
        ),
        None => report.check(false, || {
            "robust report: fresh report lacks a resume section".into()
        }),
    }

    for (name, b) in &base_entries {
        let Some((_, f)) = fresh_entries.iter().find(|(n, _)| n == name) else {
            report.check(false, || {
                format!("robust '{name}': present in baseline, missing in fresh report")
            });
            continue;
        };
        check_timing(report, "robust", name, "ms", b, f, tol);
    }
}

/// The top-level key identifying each known report schema.
pub const KNOWN_SCHEMAS: [&str; 5] = ["sweeps", "cells", "kernels", "batch", "robust"];

/// Detect which [`KNOWN_SCHEMAS`] entry a report matches, or
/// `"unknown"`. Shared by [`compare`] and the observatory's baseline
/// inventory.
#[must_use]
pub fn schema_of(v: &Value) -> &'static str {
    KNOWN_SCHEMAS
        .iter()
        .copied()
        .find(|&k| get(v, k).is_some())
        .unwrap_or("unknown")
}

/// The `schema_version` a report declares (0 = pre-versioned).
#[must_use]
pub fn schema_version_of(v: &Value) -> u64 {
    num(v, "schema_version").map_or(0u64, |x| x as u64)
}

/// Compare a fresh bench report against its baseline. The schema
/// (sweep vs solver vs profile vs batch) is detected from each
/// report's top-level keys; an unrecognized baseline fails loudly —
/// naming the keys it does have — rather than being silently skipped,
/// so pointing the gate at a report it was never taught about is an
/// error, not a vacuous PASS.
pub fn compare(base: &Value, fresh: &Value, tol: &Tolerances) -> GateReport {
    let mut report = GateReport::default();
    fn keys(v: &Value) -> Vec<&str> {
        v.as_object()
            .map(|o| o.iter().map(|(k, _)| k.as_str()).collect())
            .unwrap_or_default()
    }
    let (bs, fs) = (schema_of(base), schema_of(fresh));
    for (which, s, v) in [("baseline", bs, base), ("fresh", fs, fresh)] {
        report.check(s != "unknown", || {
            format!(
                "{which} report matches no known schema: top-level keys {:?} \
                 contain none of {KNOWN_SCHEMAS:?} — register the report in \
                 gate::compare before gating it",
                keys(v)
            )
        });
    }
    report.check(bs == fs, || {
        format!("schema mismatch: baseline is '{bs}', fresh is '{fs}'")
    });
    if !report.passed() {
        return report;
    }
    // Schema *version* gate: a report written under a different field
    // layout must fail with one clear line, not a field-by-field
    // mismatch spray from the per-schema comparators below. Missing
    // field = v0 (pre-versioned report).
    let (bv, fv) = (schema_version_of(base), schema_version_of(fresh));
    report.check(bv == fv, || {
        format!(
            "baseline schema v{bv} vs fresh v{fv}: regenerate the baseline \
             with the current binaries before comparing fields"
        )
    });
    if !report.passed() {
        return report;
    }
    match bs {
        "sweeps" => compare_sweeps(base, fresh, tol, &mut report),
        "kernels" => compare_profile(base, fresh, tol, &mut report),
        "batch" => compare_batch(base, fresh, tol, &mut report),
        "robust" => compare_robust(base, fresh, tol, &mut report),
        _ => compare_solver(base, fresh, tol, &mut report),
    }
    report
}

/// Parse both JSON strings and run the gate.
///
/// # Errors
///
/// Returns the parse error message when either report is not valid
/// JSON.
pub fn compare_json(baseline: &str, fresh: &str, tol: &Tolerances) -> Result<GateReport, String> {
    let base: Value = serde_json::from_str(baseline).map_err(|e| format!("baseline: {e}"))?;
    let fresh: Value = serde_json::from_str(fresh).map_err(|e| format!("fresh: {e}"))?;
    Ok(compare(&base, &fresh, tol))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweeps(ms: f64, identical: bool) -> String {
        format!(
            r#"{{"threads":4,"sweeps":[{{"name":"fig20","serial_ms":{ms},"parallel_ms":{ms},"speedup":1.0,"identical_output":{identical}}}]}}"#
        )
    }

    fn solver(ms: f64, ratio: f64, delta: f64, counts_match: bool) -> String {
        format!(
            r#"{{"pulse_tol_ps":0.5,"min_step_ratio":3.0,"step_ratio_total":{ratio},"worst_pulse_delta_ps":{delta},"cells":[{{"name":"jtl","adaptive_ms":{ms},"pulse_counts_match":{counts_match}}}]}}"#
        )
    }

    #[test]
    fn identical_reports_pass() {
        let tol = Tolerances::default();
        let r = compare_json(&sweeps(5.0, true), &sweeps(5.0, true), &tol).unwrap();
        assert!(r.passed(), "{:?}", r.failures);
        let r = compare_json(
            &solver(2.0, 4.0, 0.1, true),
            &solver(2.0, 4.0, 0.1, true),
            &tol,
        )
        .unwrap();
        assert!(r.passed(), "{:?}", r.failures);
    }

    #[test]
    fn schema_version_mismatch_is_one_clear_failure() {
        let tol = Tolerances::default();
        // Same detected schema, different declared versions: the gate
        // must stop with the single version line, not descend into a
        // field-by-field mismatch spray.
        let v0 = sweeps(5.0, true);
        let v1 = format!(r#"{{"schema_version":1,{}"#, &sweeps(999.0, false)[1..]);
        let r = compare_json(&v0, &v1, &tol).unwrap();
        assert_eq!(r.failures.len(), 1, "{:?}", r.failures);
        assert!(
            r.failures[0].contains("baseline schema v0 vs fresh v1"),
            "{:?}",
            r.failures
        );
        // Equal versions sail through to the per-schema comparison.
        let a = format!(r#"{{"schema_version":1,{}"#, &sweeps(5.0, true)[1..]);
        let b = format!(r#"{{"schema_version":1,{}"#, &sweeps(5.0, true)[1..]);
        let r = compare_json(&a, &b, &tol).unwrap();
        assert!(r.passed(), "{:?}", r.failures);
    }

    #[test]
    fn abs_slack_tolerates_small_growth() {
        let tol = Tolerances {
            factor: 1.5,
            abs_ms: 100.0,
        };
        // 5 ms → 80 ms is a 16× slowdown but within the 107.5 ms limit.
        let r = compare_json(&sweeps(5.0, true), &sweeps(80.0, true), &tol).unwrap();
        assert!(r.passed(), "{:?}", r.failures);
    }

    #[test]
    fn slowed_fresh_report_fails() {
        let tol = Tolerances {
            factor: 1.5,
            abs_ms: 10.0,
        };
        let r = compare_json(&sweeps(50.0, true), &sweeps(200.0, true), &tol).unwrap();
        assert!(!r.passed());
        assert!(
            r.failures[0].contains("parallel_ms regressed"),
            "{:?}",
            r.failures
        );
        let r = compare_json(
            &solver(50.0, 4.0, 0.1, true),
            &solver(200.0, 4.0, 0.1, true),
            &tol,
        )
        .unwrap();
        assert!(!r.passed());
        assert!(
            r.failures[0].contains("adaptive_ms regressed"),
            "{:?}",
            r.failures
        );
    }

    #[test]
    fn correctness_flags_fail_hard() {
        let tol = Tolerances::default();
        let r = compare_json(&sweeps(5.0, true), &sweeps(5.0, false), &tol).unwrap();
        assert!(!r.passed());
        let r = compare_json(
            &solver(2.0, 4.0, 0.1, true),
            &solver(2.0, 4.0, 0.1, false),
            &tol,
        )
        .unwrap();
        assert!(!r.passed());
        // Pulse delta beyond the report's own tolerance.
        let r = compare_json(
            &solver(2.0, 4.0, 0.1, true),
            &solver(2.0, 4.0, 0.9, true),
            &tol,
        )
        .unwrap();
        assert!(!r.passed());
        // Step ratio collapsed below min and below 95% of baseline.
        let r = compare_json(
            &solver(2.0, 4.0, 0.1, true),
            &solver(2.0, 1.5, 0.1, true),
            &tol,
        )
        .unwrap();
        assert!(!r.passed());
    }

    fn sweeps_stress(speedup: f64, identical: bool, meets: bool) -> String {
        format!(
            r#"{{"threads":4,"logical_cores":8,"speedup_meaningful":true,
               "sweeps":[{{"name":"fig20","serial_ms":5.0,"parallel_ms":5.0,"speedup":{speedup},"identical_output":true}}],
               "stress":[{{"points":100000,"threads":4,"ms":10.0,"speedup":{speedup},"expected_parallelism":4.0,"identical_output":{identical},"meets_scaling":{meets}}}]}}"#
        )
    }

    #[test]
    fn stress_rungs_are_gated() {
        let tol = Tolerances::default();
        let good = sweeps_stress(3.5, true, true);
        let r = compare_json(&good, &good, &tol).unwrap();
        assert!(r.passed(), "{:?}", r.failures);

        // Divergent output or missed scaling floor fails hard.
        let r = compare_json(&good, &sweeps_stress(3.5, false, true), &tol).unwrap();
        assert!(!r.passed());
        let r = compare_json(&good, &sweeps_stress(2.0, true, false), &tol).unwrap();
        assert!(!r.passed());
        assert!(
            r.failures.iter().any(|f| f.contains("scaling floor")),
            "{:?}",
            r.failures
        );

        // A baseline with stress rungs pins the fresh report to having
        // them too.
        let r = compare_json(&good, &sweeps(5.0, true), &tol).unwrap();
        assert!(!r.passed());

        // Parallel-slower-than-serial fails only when the speedup is
        // meaningful; the plain `sweeps` fixture has no
        // speedup_meaningful field, so its 1.0x passes.
        let r = compare_json(&good, &sweeps_stress(0.7, true, true), &tol).unwrap();
        assert!(
            r.failures.iter().any(|f| f.contains("slower than serial")),
            "{:?}",
            r.failures
        );
    }

    fn solver_banded(lu_factor: u64, counts_match: bool, delta: f64) -> String {
        format!(
            r#"{{"pulse_tol_ps":0.5,"min_step_ratio":3.0,"step_ratio_total":4.0,"worst_pulse_delta_ps":0.1,
               "cells":[{{"name":"jtl","adaptive_ms":2.0,"pulse_counts_match":true}}],
               "banded_cell":{{"name":"jtl_chain_40","adaptive_ms":10.0,"pulse_counts_match":{counts_match},"max_pulse_delta_ps":{delta},"lu_factor":{lu_factor},"lu_reuse":5000}}}}"#
        )
    }

    #[test]
    fn banded_cell_is_gated() {
        let tol = Tolerances::default();
        let good = solver_banded(29000, true, 0.1);
        let r = compare_json(&good, &good, &tol).unwrap();
        assert!(r.passed(), "{:?}", r.failures);

        let r = compare_json(&good, &solver_banded(0, true, 0.1), &tol).unwrap();
        assert!(!r.passed());
        assert!(
            r.failures.iter().any(|f| f.contains("never engaged")),
            "{:?}",
            r.failures
        );
        let r = compare_json(&good, &solver_banded(29000, false, 0.1), &tol).unwrap();
        assert!(!r.passed());
        let r = compare_json(&good, &solver_banded(29000, true, 0.9), &tol).unwrap();
        assert!(!r.passed());

        // Once the baseline has the entry, the fresh report must too;
        // an old baseline without it doesn't require one.
        let r = compare_json(&good, &solver(2.0, 4.0, 0.1, true), &tol).unwrap();
        assert!(!r.passed());
        let r = compare_json(&solver(2.0, 4.0, 0.1, true), &good, &tol).unwrap();
        assert!(r.passed(), "{:?}", r.failures);
    }

    fn profile(cov: f64, newton_ms: f64) -> String {
        format!(
            r#"{{"workload":"jtl_chain_40","self_coverage":{cov},"min_self_coverage":0.9,
               "kernels":[{{"name":"newton","self_ms":{newton_ms},"calls":1000}},
                          {{"name":"lu_solve","self_ms":3.0,"calls":900}}]}}"#
        )
    }

    #[test]
    fn profile_reports_are_gated() {
        let tol = Tolerances {
            factor: 1.5,
            abs_ms: 1.0,
        };
        let good = profile(0.97, 10.0);
        let r = compare_json(&good, &good, &tol).unwrap();
        assert!(r.passed(), "{:?}", r.failures);

        // Coverage below the report's own floor fails hard.
        let r = compare_json(&good, &profile(0.8, 10.0), &tol).unwrap();
        assert!(!r.passed());
        assert!(
            r.failures.iter().any(|f| f.contains("coverage")),
            "{:?}",
            r.failures
        );

        // Kernel self-time regression beyond tolerance fails.
        let r = compare_json(&good, &profile(0.97, 40.0), &tol).unwrap();
        assert!(!r.passed());
        assert!(
            r.failures.iter().any(|f| f.contains("self_ms regressed")),
            "{:?}",
            r.failures
        );

        // A kernel vanishing from the fresh report fails.
        let fresh = r#"{"self_coverage":0.97,"min_self_coverage":0.9,
                        "kernels":[{"name":"newton","self_ms":10.0}]}"#;
        let r = compare_json(&good, fresh, &tol).unwrap();
        assert!(!r.passed());
        assert!(
            r.failures.iter().any(|f| f.contains("lu_solve")),
            "{:?}",
            r.failures
        );

        // Missing coverage fields fail rather than silently pass.
        let fresh =
            r#"{"kernels":[{"name":"newton","self_ms":10.0},{"name":"lu_solve","self_ms":3.0}]}"#;
        let r = compare_json(&good, fresh, &tol).unwrap();
        assert!(!r.passed());
    }

    #[test]
    fn vacuous_speedup_checks_are_surfaced() {
        let tol = Tolerances::default();
        // No speedup_meaningful field: the 0.7x "slowdown" is noise on
        // a one-core machine, so it is skipped — but visibly.
        let fresh = r#"{"threads":1,"speedup_meaningful":false,
            "sweeps":[{"name":"fig20","serial_ms":5.0,"parallel_ms":7.0,"speedup":0.7,"identical_output":true}]}"#;
        let r = compare_json(&sweeps(5.0, true), fresh, &tol).unwrap();
        assert!(r.passed(), "{:?}", r.failures);
        assert_eq!(
            r.skipped,
            vec!["1 speedup checks skipped (1 logical core)".to_owned()]
        );

        // Meaningful runs skip nothing.
        let good = sweeps_stress(3.5, true, true);
        let r = compare_json(&good, &good, &tol).unwrap();
        assert!(r.skipped.is_empty(), "{:?}", r.skipped);
    }

    #[test]
    fn missing_entry_and_schema_mismatch_fail() {
        let tol = Tolerances::default();
        let fresh = r#"{"threads":4,"sweeps":[]}"#;
        let r = compare_json(&sweeps(5.0, true), fresh, &tol).unwrap();
        assert!(!r.passed());
        let r = compare_json(&sweeps(5.0, true), &solver(2.0, 4.0, 0.1, true), &tol).unwrap();
        assert!(!r.passed());
        assert!(r.failures[0].contains("schema mismatch"));
        assert!(compare_json("not json", "{}", &tol).is_err());
    }

    #[test]
    fn unknown_schema_fails_loudly_naming_its_keys() {
        let tol = Tolerances::default();
        // A report the gate was never taught about (e.g. the faults
        // yield curves) must fail with a registration hint, not pass
        // vacuously with zero entry checks.
        let curves = r#"{"seed":42,"curves":[[{"cell":"jtl","yield":0.99}]]}"#;
        let r = compare_json(curves, curves, &tol).unwrap();
        assert!(!r.passed());
        assert!(
            r.failures
                .iter()
                .any(|f| f.contains("no known schema") && f.contains("curves")),
            "{:?}",
            r.failures
        );
        // Both sides are diagnosed independently.
        assert!(
            r.failures.iter().any(|f| f.starts_with("fresh report")),
            "{:?}",
            r.failures
        );
    }

    fn robust(lost: u64, completed: u64, within: bool, values: bool, resume: bool) -> String {
        format!(
            r#"{{"robust":[{{"name":"fig20_unguarded","points":8,"completed":{completed},"degraded":0,"timed_out":0,"cancelled":0,"failed":{lost},"lost":{lost},"restored":0,"ms":12.0}}],
               "chaos_seed":2024,
               "overhead":{{"plain_ms":12.0,"guarded_ms":12.2,"overhead_frac":0.016,"max_overhead_frac":0.02,"within_overhead":{within},"values_match":{values}}},
               "resume":{{"resume_identical":{resume},"restored":2}}}}"#
        )
    }

    #[test]
    fn robust_reports_are_gated() {
        let tol = Tolerances::default();
        let good = robust(0, 8, true, true, true);
        let r = compare_json(&good, &good, &tol).unwrap();
        assert!(r.passed(), "{:?}", r.failures);

        // A silently lost point fails hard.
        let r = compare_json(&good, &robust(1, 7, true, true, true), &tol).unwrap();
        assert!(!r.passed());
        assert!(
            r.failures.iter().any(|f| f.contains("silently lost")),
            "{:?}",
            r.failures
        );

        // State counts that fail to cover every point fail hard.
        let r = compare_json(&good, &robust(0, 5, true, true, true), &tol).unwrap();
        assert!(!r.passed());
        assert!(
            r.failures.iter().any(|f| f.contains("do not cover")),
            "{:?}",
            r.failures
        );

        // Overhead beyond the producer's budget, value divergence, and
        // a non-identical resume each fail hard.
        let r = compare_json(&good, &robust(0, 8, false, true, true), &tol).unwrap();
        assert!(!r.passed());
        assert!(
            r.failures.iter().any(|f| f.contains("overhead")),
            "{:?}",
            r.failures
        );
        let r = compare_json(&good, &robust(0, 8, true, false, true), &tol).unwrap();
        assert!(!r.passed());
        let r = compare_json(&good, &robust(0, 8, true, true, false), &tol).unwrap();
        assert!(!r.passed());
        assert!(
            r.failures.iter().any(|f| f.contains("resume")),
            "{:?}",
            r.failures
        );

        // Missing overhead/resume sections fail rather than pass
        // vacuously; a baseline entry vanishing from the fresh report
        // fails.
        let bare = r#"{"robust":[{"name":"fig20_unguarded","points":8,"completed":8,"degraded":0,"timed_out":0,"cancelled":0,"failed":0,"lost":0,"restored":0,"ms":12.0}]}"#;
        let r = compare_json(&good, bare, &tol).unwrap();
        assert!(!r.passed());
        assert!(r.failures.iter().any(|f| f.contains("overhead section")));
        assert!(r.failures.iter().any(|f| f.contains("resume section")));
        let renamed = good.replace("fig20_unguarded", "fig20_other");
        let r = compare_json(&good, &renamed, &tol).unwrap();
        assert!(!r.passed());
        assert!(
            r.failures
                .iter()
                .any(|f| f.contains("missing in fresh report")),
            "{:?}",
            r.failures
        );

        // Wall-clock regression beyond tolerance fails.
        let tight = Tolerances {
            factor: 1.5,
            abs_ms: 1.0,
        };
        let slow = good.replace("\"ms\":12.0", "\"ms\":120.0");
        let r = compare_json(&good, &slow, &tight).unwrap();
        assert!(!r.passed());
        assert!(
            r.failures.iter().any(|f| f.contains("ms regressed")),
            "{:?}",
            r.failures
        );
    }

    fn batch(
        batched_ms: f64,
        speedup: f64,
        identical: bool,
        counts_match: bool,
        delta: f64,
    ) -> String {
        format!(
            r#"{{"lanes":4,"pulse_tol_ps":0.5,
               "batch":[{{"name":"yield_200","scalar_ms":100.0,"batched_ms":{batched_ms},"speedup":{speedup},"min_speedup":2.0,"outcomes_identical":{identical}}},
                        {{"name":"margins","scalar_ms":20.0,"batched_ms":9.0,"speedup":2.2,"outcomes_identical":{identical}}}],
               "equivalence":{{"k":4,"pulse_counts_match":{counts_match},"max_pulse_delta_ps":{delta}}}}}"#
        )
    }

    #[test]
    fn batch_reports_are_gated() {
        let tol = Tolerances::default();
        let good = batch(40.0, 2.5, true, true, 0.1);
        let r = compare_json(&good, &good, &tol).unwrap();
        assert!(r.passed(), "{:?}", r.failures);

        // Outcome divergence, a missed speedup floor, a pulse-count
        // mismatch, and an out-of-tolerance pulse delta all fail hard.
        let r = compare_json(&good, &batch(40.0, 2.5, false, true, 0.1), &tol).unwrap();
        assert!(!r.passed());
        let r = compare_json(&good, &batch(40.0, 1.4, true, true, 0.1), &tol).unwrap();
        assert!(!r.passed());
        assert!(
            r.failures.iter().any(|f| f.contains("below required")),
            "{:?}",
            r.failures
        );
        let r = compare_json(&good, &batch(40.0, 2.5, true, false, 0.1), &tol).unwrap();
        assert!(!r.passed());
        let r = compare_json(&good, &batch(40.0, 2.5, true, true, 0.9), &tol).unwrap();
        assert!(!r.passed());

        // Wall-clock regression beyond tolerance fails; a missing
        // equivalence section fails.
        let tight = Tolerances {
            factor: 1.5,
            abs_ms: 1.0,
        };
        let r = compare_json(&good, &batch(90.0, 2.5, true, true, 0.1), &tight).unwrap();
        assert!(!r.passed());
        assert!(
            r.failures
                .iter()
                .any(|f| f.contains("batched_ms regressed")),
            "{:?}",
            r.failures
        );
        let no_eq = r#"{"lanes":4,"pulse_tol_ps":0.5,
            "batch":[{"name":"yield_200","scalar_ms":100.0,"batched_ms":40.0,"speedup":2.5,"min_speedup":2.0,"outcomes_identical":true},
                     {"name":"margins","scalar_ms":20.0,"batched_ms":9.0,"speedup":2.2,"outcomes_identical":true}]}"#;
        let r = compare_json(&good, no_eq, &tol).unwrap();
        assert!(!r.passed());
        assert!(
            r.failures.iter().any(|f| f.contains("equivalence")),
            "{:?}",
            r.failures
        );
    }
}
