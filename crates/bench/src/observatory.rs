//! The observatory: cross-run aggregation of the run ledger.
//!
//! [`build`] joins every [`RunManifest`] in a ledger by
//! **(bin, config fingerprint)** — two runs land in the same trend
//! group only when the same binary ran under the same
//! workload-affecting configuration — and renders `report.md` plus a
//! hand-rolled `report.html` (no new deps, same policy as the
//! Perfetto export) with:
//!
//! * per-benchmark trend tables (duration, Δ vs previous run, cache
//!   hit rate, outcome) and a sparkline of the duration history;
//! * regression flags reusing the bench gate's [`Tolerances`]
//!   (`fresh > prev × factor + abs_ms` ⇒ the literal `REGRESSION`
//!   marker `scripts/check.sh --report` greps for);
//! * a cross-run knob-diff: for consecutive runs of the same bin,
//!   which `SUPERNPU_*` knobs appeared, vanished or changed — the
//!   "what changed between these two runs" answer;
//! * an inventory of the committed `BENCH_*.json` baselines with
//!   their detected schema and declared `schema_version`.
//!
//! **Fingerprint rule**: FNV-1a over the name-sorted `SUPERNPU_*`
//! knobs minus the observability-only ones (`SUPERNPU_LEDGER`,
//! `SUPERNPU_PROGRESS`, `SUPERNPU_LOG`, `SUPERNPU_METRICS*`,
//! `SUPERNPU_TRACE*`, `SUPERNPU_PROFILE*`) — turning a trace on must
//! not split a trend — plus the resolved threads/chunk/lanes, the
//! cargo profile and the target triple.
//!
//! Everything here is a pure function of its inputs (no clocks, no
//! thread-count dependence), so the rendered reports are byte-stable
//! — a property the ledger tests pin.

use std::path::Path;

use serde::Value;
use sfq_obs::ledger::{RunManifest, RunOutcome};

use crate::gate::Tolerances;

/// Observability-only knobs excluded from the config fingerprint:
/// they change what a run *records*, never what it *computes*.
pub const FINGERPRINT_EXCLUDED_PREFIXES: [&str; 6] = [
    "SUPERNPU_LEDGER",
    "SUPERNPU_PROGRESS",
    "SUPERNPU_LOG",
    "SUPERNPU_METRICS",
    "SUPERNPU_TRACE",
    "SUPERNPU_PROFILE",
];

/// One committed `BENCH_*.json` baseline, inventoried in the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchFile {
    /// File name (e.g. `BENCH_solver.json`).
    pub name: String,
    /// Detected schema ([`crate::gate::schema_of`]).
    pub schema: String,
    /// Declared `schema_version` (0 = pre-versioned).
    pub schema_version: u64,
}

impl BenchFile {
    /// Inventory a parsed baseline under its file name.
    #[must_use]
    pub fn from_value(name: &str, v: &Value) -> BenchFile {
        BenchFile {
            name: name.to_owned(),
            schema: crate::gate::schema_of(v).to_owned(),
            schema_version: crate::gate::schema_version_of(v),
        }
    }
}

/// The rendered observatory output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Markdown rendering (`results/report.md`).
    pub markdown: String,
    /// Hand-rolled HTML rendering (`results/report.html`).
    pub html: String,
    /// Number of rows flagged `REGRESSION`.
    pub regressions: usize,
    /// Number of (bin, fingerprint) trend groups.
    pub groups: usize,
}

/// Parse a `ledger.jsonl` file into manifests. A missing file is an
/// empty ledger (cold observatory, not an error).
///
/// # Errors
///
/// The first malformed line, identified by line number — a ledger
/// that does not parse is a bug worth failing on, not skipping.
pub fn load_ledger(dir: &Path) -> Result<Vec<RunManifest>, String> {
    let path = dir.join("ledger.jsonl");
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("could not read {}: {e}", path.display())),
    };
    let mut runs = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let m: RunManifest = serde_json::from_str(line)
            .map_err(|e| format!("{}:{}: malformed manifest: {e}", path.display(), lineno + 1))?;
        runs.push(m);
    }
    Ok(runs)
}

/// Config fingerprint of a manifest — see the module docs for the
/// join rule. Stable across processes (pure FNV-1a of the canonical
/// config string).
#[must_use]
pub fn fingerprint(m: &RunManifest) -> u64 {
    let mut canon = String::new();
    for k in &m.env {
        let excluded = FINGERPRINT_EXCLUDED_PREFIXES
            .iter()
            .any(|p| k.name.starts_with(p));
        if !excluded {
            canon.push_str(&k.name);
            canon.push('=');
            canon.push_str(&k.value);
            canon.push('\n');
        }
    }
    canon.push_str(&format!(
        "threads={} chunk={} lanes={} profile={} target={}",
        m.threads, m.chunk, m.lanes, m.cargo_profile, m.target
    ));
    fnv1a64(canon.as_bytes())
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn outcome_label(o: RunOutcome) -> &'static str {
    match o {
        RunOutcome::Ok => "Ok",
        RunOutcome::GateFail => "GateFail",
        RunOutcome::Panicked => "Panicked",
        RunOutcome::BudgetExceeded => "BudgetExceeded",
    }
}

/// Eight-level unicode sparkline of a series, scaled min..max.
#[must_use]
pub fn sparkline(values: &[f64]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    values
        .iter()
        .map(|&v| {
            let t = if hi > lo { (v - lo) / (hi - lo) } else { 0.0 };
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let idx = ((t * 7.0).round() as usize).min(7);
            BLOCKS[idx]
        })
        .collect()
}

struct Row<'a> {
    run: &'a RunManifest,
    delta_pct: Option<f64>,
    regressed: bool,
}

struct Group<'a> {
    bin: &'a str,
    fp: u64,
    rows: Vec<Row<'a>>,
}

fn group_runs<'a>(runs: &'a [RunManifest], tol: &Tolerances) -> Vec<Group<'a>> {
    let mut keyed: Vec<(&str, u64, Vec<&RunManifest>)> = Vec::new();
    for m in runs {
        let fp = fingerprint(m);
        match keyed
            .iter_mut()
            .find(|(bin, f, _)| *bin == m.bin && *f == fp)
        {
            Some((_, _, v)) => v.push(m),
            None => keyed.push((&m.bin, fp, vec![m])),
        }
    }
    keyed.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
    keyed
        .into_iter()
        .map(|(bin, fp, mut group)| {
            group.sort_by_key(|m| m.seq);
            let rows = group
                .iter()
                .enumerate()
                .map(|(i, m)| {
                    let prev = if i > 0 { Some(group[i - 1]) } else { None };
                    let delta_pct = prev.map(|p| {
                        if p.duration_ms > 0.0 {
                            100.0 * (m.duration_ms - p.duration_ms) / p.duration_ms
                        } else {
                            0.0
                        }
                    });
                    // Same rule as the bench gate's timing check.
                    let regressed = prev
                        .is_some_and(|p| m.duration_ms > p.duration_ms * tol.factor + tol.abs_ms);
                    Row {
                        run: m,
                        delta_pct,
                        regressed,
                    }
                })
                .collect();
            Group { bin, fp, rows }
        })
        .collect()
}

/// `SUPERNPU_*` knob diff between two runs, one clause per change,
/// name-sorted; empty when the knob sets are identical.
#[must_use]
pub fn knob_diff(prev: &RunManifest, next: &RunManifest) -> Vec<String> {
    let mut out = Vec::new();
    for k in &next.env {
        match prev.env.iter().find(|p| p.name == k.name) {
            None => out.push(format!("+{}={}", k.name, k.value)),
            Some(p) if p.value != k.value => {
                out.push(format!("{} {}→{}", k.name, p.value, k.value));
            }
            Some(_) => {}
        }
    }
    for p in &prev.env {
        if !next.env.iter().any(|k| k.name == p.name) {
            out.push(format!("-{}={}", p.name, p.value));
        }
    }
    for (label, a, b) in [
        ("threads", prev.threads, next.threads),
        ("chunk", prev.chunk, next.chunk),
        ("lanes", prev.lanes, next.lanes),
    ] {
        if a != b {
            out.push(format!("{label} {a}→{b}"));
        }
    }
    out.sort();
    out
}

fn cache_rate(m: &RunManifest) -> String {
    let total = m.cache_hits + m.cache_misses;
    if total == 0 {
        "—".to_owned()
    } else {
        #[allow(clippy::cast_precision_loss)]
        let pct = 100.0 * m.cache_hits as f64 / total as f64;
        format!("{pct:.0}%")
    }
}

/// Escape `&<>"` for the hand-rolled HTML.
#[must_use]
pub fn html_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Build the observatory report from parsed manifests and baseline
/// inventories. Pure: output depends only on the arguments.
#[must_use]
pub fn build(runs: &[RunManifest], bench: &[BenchFile], tol: &Tolerances) -> Report {
    let groups = group_runs(runs, tol);
    let regressions = groups
        .iter()
        .flat_map(|g| g.rows.iter())
        .filter(|r| r.regressed)
        .count();

    let mut md = String::new();
    md.push_str("# SuperNPU run observatory\n\n");
    md.push_str(&format!(
        "{} run(s) · {} trend group(s) · {} regression flag(s)\n\n",
        runs.len(),
        groups.len(),
        regressions
    ));

    let mut html_body = String::new();
    html_body.push_str("<h1>SuperNPU run observatory</h1>\n");
    html_body.push_str(&format!(
        "<p>{} run(s) · {} trend group(s) · <strong>{} regression flag(s)</strong></p>\n",
        runs.len(),
        groups.len(),
        regressions
    ));

    md.push_str("## Trends\n\n");
    html_body.push_str("<h2>Trends</h2>\n");
    if groups.is_empty() {
        md.push_str("_empty ledger — no runs recorded yet_\n\n");
        html_body.push_str("<p><em>empty ledger — no runs recorded yet</em></p>\n");
    }
    for g in &groups {
        let first = g.rows[0].run;
        let durations: Vec<f64> = g.rows.iter().map(|r| r.run.duration_ms).collect();
        let spark = sparkline(&durations);
        let config = format!(
            "threads={} chunk={} lanes={} profile={} target={}",
            first.threads, first.chunk, first.lanes, first.cargo_profile, first.target
        );

        md.push_str(&format!("### {} — config `{:016x}`\n\n", g.bin, g.fp));
        md.push_str(&format!("{config}  \nduration trend: `{spark}`\n\n"));
        md.push_str(
            "| seq | outcome | duration ms | Δ vs prev | cache hits | artifacts | flag |\n",
        );
        md.push_str("|---:|---|---:|---:|---:|---:|---|\n");

        html_body.push_str(&format!(
            "<h3>{} — config <code>{:016x}</code></h3>\n<p>{}<br>duration trend: \
             <code>{}</code></p>\n<table>\n<tr><th>seq</th><th>outcome</th>\
             <th>duration ms</th><th>Δ vs prev</th><th>cache hits</th>\
             <th>artifacts</th><th>flag</th></tr>\n",
            html_escape(g.bin),
            g.fp,
            html_escape(&config),
            html_escape(&spark),
        ));

        for r in &g.rows {
            let delta = r.delta_pct.map_or("—".to_owned(), |d| format!("{d:+.1}%"));
            let mut flags: Vec<&str> = Vec::new();
            if r.regressed {
                flags.push("REGRESSION");
            }
            if r.run.outcome != RunOutcome::Ok {
                flags.push(outcome_label(r.run.outcome));
            }
            let flag = flags.join(" ");
            md.push_str(&format!(
                "| {} | {} | {:.1} | {} | {} | {} | {} |\n",
                r.run.seq,
                outcome_label(r.run.outcome),
                r.run.duration_ms,
                delta,
                cache_rate(r.run),
                r.run.artifacts.len(),
                flag
            ));
            html_body.push_str(&format!(
                "<tr{}><td>{}</td><td>{}</td><td>{:.1}</td><td>{}</td>\
                 <td>{}</td><td>{}</td><td>{}</td></tr>\n",
                if r.regressed {
                    " class=\"regression\""
                } else {
                    ""
                },
                r.run.seq,
                outcome_label(r.run.outcome),
                r.run.duration_ms,
                html_escape(&delta),
                cache_rate(r.run),
                r.run.artifacts.len(),
                html_escape(&flag)
            ));
        }
        md.push('\n');
        html_body.push_str("</table>\n");
    }

    // Knob diffs: consecutive runs of the same *bin* regardless of
    // fingerprint — exactly the "what changed between these two runs"
    // question a split trend group raises.
    let mut bins: Vec<&str> = runs.iter().map(|m| m.bin.as_str()).collect();
    bins.sort_unstable();
    bins.dedup();
    let mut diff_md = String::new();
    let mut diff_html = String::new();
    for bin in bins {
        let mut of_bin: Vec<&RunManifest> = runs.iter().filter(|m| m.bin == bin).collect();
        of_bin.sort_by_key(|m| m.seq);
        for pair in of_bin.windows(2) {
            let changes = knob_diff(pair[0], pair[1]);
            if changes.is_empty() {
                continue;
            }
            let line = format!(
                "{bin} seq {} → {}: {}",
                pair[0].seq,
                pair[1].seq,
                changes.join("; ")
            );
            diff_md.push_str(&format!("- {line}\n"));
            diff_html.push_str(&format!("<li>{}</li>\n", html_escape(&line)));
        }
    }
    md.push_str("## Knob changes between runs\n\n");
    html_body.push_str("<h2>Knob changes between runs</h2>\n");
    if diff_md.is_empty() {
        md.push_str("_none — every consecutive pair ran under identical knobs_\n\n");
        html_body
            .push_str("<p><em>none — every consecutive pair ran under identical knobs</em></p>\n");
    } else {
        md.push_str(&diff_md);
        md.push('\n');
        html_body.push_str(&format!("<ul>\n{diff_html}</ul>\n"));
    }

    md.push_str("## Committed bench baselines\n\n");
    html_body.push_str("<h2>Committed bench baselines</h2>\n");
    if bench.is_empty() {
        md.push_str("_none found_\n");
        html_body.push_str("<p><em>none found</em></p>\n");
    } else {
        md.push_str("| file | schema | schema_version |\n|---|---|---:|\n");
        html_body
            .push_str("<table>\n<tr><th>file</th><th>schema</th><th>schema_version</th></tr>\n");
        for b in bench {
            md.push_str(&format!(
                "| {} | {} | {} |\n",
                b.name, b.schema, b.schema_version
            ));
            html_body.push_str(&format!(
                "<tr><td>{}</td><td>{}</td><td>{}</td></tr>\n",
                html_escape(&b.name),
                html_escape(&b.schema),
                b.schema_version
            ));
        }
    }

    let html = format!(
        "<!doctype html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <title>SuperNPU run observatory</title>\n<style>\n\
         body {{ font-family: system-ui, sans-serif; margin: 2rem; }}\n\
         table {{ border-collapse: collapse; margin: 0.5rem 0 1.5rem; }}\n\
         th, td {{ border: 1px solid #ccc; padding: 0.25rem 0.6rem; text-align: right; }}\n\
         th {{ background: #f2f2f2; }}\n\
         td:nth-child(2), th:nth-child(2) {{ text-align: left; }}\n\
         tr.regression td {{ background: #ffe0e0; font-weight: bold; }}\n\
         code {{ background: #f6f6f6; padding: 0 0.2rem; }}\n\
         </style>\n</head>\n<body>\n{html_body}</body>\n</html>\n"
    );

    Report {
        markdown: md,
        html,
        regressions,
        groups: groups.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_obs::ledger::KnobSetting;

    fn manifest(bin: &str, seq: u64, duration_ms: f64, threads: u64) -> RunManifest {
        RunManifest {
            schema_version: 1,
            bin: bin.to_owned(),
            seq,
            args: vec![],
            env: vec![KnobSetting {
                name: "SUPERNPU_THREADS".into(),
                value: threads.to_string(),
            }],
            threads,
            chunk: 0,
            lanes: 4,
            seeds: vec![42],
            cargo_profile: "release".into(),
            target: "x86_64-linux".into(),
            duration_ms,
            outcome: RunOutcome::Ok,
            cache_hits: 10,
            cache_misses: 2,
            artifacts: vec!["BENCH_x.json".into()],
        }
    }

    #[test]
    fn fingerprint_ignores_observability_knobs_only() {
        let a = manifest("b", 1, 10.0, 4);
        let mut b = a.clone();
        b.env.push(KnobSetting {
            name: "SUPERNPU_TRACE".into(),
            value: "t.json".into(),
        });
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "trace knob must not split"
        );
        let mut c = a.clone();
        c.env[0].value = "8".into();
        assert_ne!(fingerprint(&a), fingerprint(&c), "thread knob must split");
    }

    #[test]
    fn regression_flag_follows_gate_tolerances() {
        let tol = Tolerances {
            factor: 1.5,
            abs_ms: 1.0,
        };
        let runs = vec![
            manifest("fig20", 1, 100.0, 4),
            manifest("fig20", 2, 120.0, 4), // within 1.5x + 1ms
            manifest("fig20", 3, 400.0, 4), // 400 > 120*1.5+1 → regression
        ];
        let report = build(&runs, &[], &tol);
        assert_eq!(report.groups, 1);
        assert_eq!(report.regressions, 1);
        assert!(report.markdown.contains("REGRESSION"));
        assert!(report.html.contains("class=\"regression\""));
    }

    #[test]
    fn knob_diff_names_every_change() {
        let a = manifest("b", 1, 10.0, 4);
        let mut b = manifest("b", 2, 10.0, 8);
        b.env.push(KnobSetting {
            name: "SUPERNPU_CHUNK".into(),
            value: "16".into(),
        });
        let d = knob_diff(&a, &b);
        assert!(
            d.iter().any(|c| c.contains("SUPERNPU_THREADS 4→8")),
            "{d:?}"
        );
        assert!(d.iter().any(|c| c.contains("+SUPERNPU_CHUNK=16")), "{d:?}");
        assert!(d.iter().any(|c| c.contains("threads 4→8")), "{d:?}");
        assert!(knob_diff(&a, &a).is_empty());
    }

    #[test]
    fn build_is_deterministic() {
        let runs = vec![manifest("a", 1, 5.0, 4), manifest("a", 2, 6.0, 4)];
        let bench = vec![BenchFile {
            name: "BENCH_solver.json".into(),
            schema: "cells".into(),
            schema_version: 1,
        }];
        let tol = Tolerances::default();
        assert_eq!(build(&runs, &bench, &tol), build(&runs, &bench, &tol));
    }

    #[test]
    fn sparkline_spans_blocks() {
        assert_eq!(sparkline(&[1.0, 1.0]), "▁▁");
        let s = sparkline(&[0.0, 1.0]);
        assert_eq!(s.chars().count(), 2);
        assert!(s.ends_with('█'));
    }
}
