//! One-call run wrapper for the bench/figure bins.
//!
//! [`begin`] replaces the bare `sfq_obs::dump_on_exit()` preamble:
//! it installs the same exit/panic flush guard *and* opens the run's
//! ledger record ([`sfq_obs::ledger`]), feeding it the resolved
//! thread/chunk/lane configuration from `sfq_par`/`jjsim` (the raw
//! env strings alone miss programmatic overrides). When the returned
//! [`Session`] drops — clean exit or unwind — every obs sink flushes
//! and the manifest lands in `results/ledger/`.
//!
//! [`fail`] is the single error exit for the bins. `process::exit`
//! skips `Drop`, so the pre-ledger pattern of
//! `eprintln!(...); exit(1)` silently lost the buffered trace/profile
//! tails and would lose the manifest too; `fail` flushes every sink
//! (with the ledger outcome set to `GateFail`) before exiting.

use std::fmt;

/// Guard for one bench/figure run: obs sinks flush and the run
/// manifest lands when this drops. Bind it at the top of `main`:
///
/// ```no_run
/// let _session = supernpu_bench::session::begin("fig20_buffer_opt");
/// ```
#[must_use = "bind the session for the lifetime of main"]
#[derive(Debug)]
pub struct Session {
    _obs: sfq_obs::DumpOnExit,
}

/// Start the run record for `bin` and install the exit/panic flush
/// guard. Call once, first thing in `main`.
pub fn begin(bin: &str) -> Session {
    let obs = sfq_obs::dump_on_exit();
    sfq_obs::ledger::begin(bin);
    sfq_obs::ledger::set_config(
        sfq_par::threads() as u64,
        sfq_par::chunk_hint().unwrap_or(0) as u64,
        jjsim::batch::batch_width() as u64,
    );
    Session { _obs: obs }
}

/// The single error exit for bench bins: message to stderr, ledger
/// outcome `GateFail`, every obs sink flushed (trace, profile,
/// metrics json, ledger), then `exit(1)`. Replaces ad-hoc
/// `eprintln!("ERROR: ..."); exit(1)` blocks, which skipped the
/// flushes because `process::exit` never runs `Drop`.
pub fn fail(msg: impl fmt::Display) -> ! {
    eprintln!("error: {msg}");
    sfq_obs::ledger::set_outcome(sfq_obs::ledger::RunOutcome::GateFail);
    sfq_obs::flush_all();
    std::process::exit(1);
}
