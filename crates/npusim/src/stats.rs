//! Simulation result types.

use serde::{Deserialize, Serialize};

/// Dynamic-energy breakdown, joules.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// PE MAC switching energy.
    pub pe_j: f64,
    /// Shift-register buffer switching energy.
    pub buffer_j: f64,
    /// DAU alignment energy.
    pub dau_j: f64,
    /// Network-unit hop energy.
    pub nw_j: f64,
    /// Ungated clock-distribution energy.
    pub clock_j: f64,
}

impl EnergyBreakdown {
    /// Total dynamic energy, joules.
    pub fn total_j(&self) -> f64 {
        self.pe_j + self.buffer_j + self.dau_j + self.nw_j + self.clock_j
    }
}

impl std::ops::AddAssign for EnergyBreakdown {
    fn add_assign(&mut self, rhs: Self) {
        self.pe_j += rhs.pe_j;
        self.buffer_j += rhs.buffer_j;
        self.dau_j += rhs.dau_j;
        self.nw_j += rhs.nw_j;
        self.clock_j += rhs.clock_j;
    }
}

/// Corrupted-MAC accounting from pulse-level fault injection.
///
/// All counts are deterministic expected values computed by
/// [`crate::PulseFaults::counts_for`]; a fault-free run reports all
/// zeros. Counts may overlap (a MAC can be both late and on a stuck
/// PE), so [`FaultCounts::total`] is an upper bound on distinct
/// corrupted MACs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultCounts {
    /// MACs that lost a data pulse in flight.
    pub dropped_pulses: u64,
    /// MACs clocked outside the hold window.
    pub timing_violations: u64,
    /// MACs mapped onto stuck (never-switching) PEs.
    pub stuck_macs: u64,
}

impl FaultCounts {
    /// Sum of all fault counts (corrupted-MAC upper bound).
    pub fn total(&self) -> u64 {
        self.dropped_pulses + self.timing_violations + self.stuck_macs
    }
}

impl std::ops::AddAssign for FaultCounts {
    fn add_assign(&mut self, rhs: Self) {
        self.dropped_pulses += rhs.dropped_pulses;
        self.timing_violations += rhs.timing_violations;
        self.stuck_macs += rhs.stuck_macs;
    }
}

/// Per-layer simulation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerStats {
    /// Layer name.
    pub name: String,
    /// Preparation cycles (weight load + buffer shifting + psum moves,
    /// overlapped with DRAM transfers).
    pub prep_cycles: u64,
    /// Computation cycles (systolic streaming + pipeline fill).
    pub compute_cycles: u64,
    /// Cycles stalled purely on DRAM beyond the shifting overlap.
    pub stall_cycles: u64,
    /// MAC operations performed.
    pub macs: u64,
    /// Off-chip traffic, bytes.
    pub dram_bytes: u64,
    /// Number of weight mappings processed.
    pub mappings: u64,
    /// Dynamic energy spent in this layer.
    pub energy: EnergyBreakdown,
    /// Corrupted-MAC accounting (all zeros in a fault-free run).
    pub faults: FaultCounts,
}

impl LayerStats {
    /// Total cycles for this layer.
    pub fn total_cycles(&self) -> u64 {
        self.prep_cycles + self.compute_cycles + self.stall_cycles
    }
}

/// Whole-network simulation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Workload name.
    pub network: String,
    /// Design-point name.
    pub design: String,
    /// Input batch simulated.
    pub batch: u32,
    /// Clock frequency used, GHz.
    pub frequency_ghz: f64,
    /// Static power of the design, watts.
    pub static_w: f64,
    /// Peak throughput of the design, TMAC/s.
    pub peak_tmacs: f64,
    /// Per-layer rows.
    pub layers: Vec<LayerStats>,
}

impl NetworkStats {
    /// Total cycles across all layers.
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(LayerStats::total_cycles).sum()
    }

    /// Preparation cycles across all layers.
    pub fn prep_cycles(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.prep_cycles + l.stall_cycles)
            .sum()
    }

    /// Computation cycles across all layers.
    pub fn compute_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.compute_cycles).sum()
    }

    /// Fraction of time spent preparing rather than computing — the
    /// quantity Fig. 15 plots.
    pub fn prep_fraction(&self) -> f64 {
        let t = self.total_cycles();
        if t == 0 {
            0.0
        } else {
            self.prep_cycles() as f64 / t as f64
        }
    }

    /// Total MACs.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }

    /// Wall-clock inference time, seconds.
    pub fn time_s(&self) -> f64 {
        self.total_cycles() as f64 * 1e-9 / self.frequency_ghz
    }

    /// Effective throughput, TMAC/s (the paper's speed-up metric).
    pub fn effective_tmacs(&self) -> f64 {
        self.total_macs() as f64 / self.time_s() / 1e12
    }

    /// Images per second.
    pub fn images_per_s(&self) -> f64 {
        f64::from(self.batch) / self.time_s()
    }

    /// PE utilization: effective over peak throughput.
    pub fn pe_utilization(&self) -> f64 {
        self.effective_tmacs() / self.peak_tmacs
    }

    /// Total off-chip traffic, bytes.
    pub fn dram_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.dram_bytes).sum()
    }

    /// Aggregated corrupted-MAC accounting across all layers.
    pub fn fault_counts(&self) -> FaultCounts {
        let mut c = FaultCounts::default();
        for l in &self.layers {
            c += l.faults;
        }
        c
    }

    /// Upper bound on the fraction of MACs corrupted by injected
    /// faults — the graceful-degradation figure of merit: a run with
    /// `fault_fraction() == 0` is bit-exact, small fractions may be
    /// tolerable for inference, large ones mean the result is garbage
    /// (but the simulator still finished and said so).
    pub fn fault_fraction(&self) -> f64 {
        let macs = self.total_macs();
        if macs == 0 {
            0.0
        } else {
            self.fault_counts().total() as f64 / macs as f64
        }
    }

    /// Aggregated dynamic energy.
    pub fn dynamic_energy(&self) -> EnergyBreakdown {
        let mut e = EnergyBreakdown::default();
        for l in &self.layers {
            e += l.energy;
        }
        e
    }

    /// Average dynamic power, watts.
    pub fn dynamic_power_w(&self) -> f64 {
        self.dynamic_energy().total_j() / self.time_s()
    }

    /// Average total chip power (static + dynamic), watts.
    pub fn total_power_w(&self) -> f64 {
        self.static_w + self.dynamic_power_w()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(prep: u64, comp: u64, macs: u64) -> LayerStats {
        LayerStats {
            name: "l".into(),
            prep_cycles: prep,
            compute_cycles: comp,
            stall_cycles: 0,
            macs,
            dram_bytes: 10,
            mappings: 1,
            energy: EnergyBreakdown {
                pe_j: 1e-6,
                buffer_j: 0.0,
                dau_j: 0.0,
                nw_j: 0.0,
                clock_j: 0.0,
            },
            faults: FaultCounts::default(),
        }
    }

    fn stats() -> NetworkStats {
        NetworkStats {
            network: "n".into(),
            design: "d".into(),
            batch: 2,
            frequency_ghz: 50.0,
            static_w: 10.0,
            peak_tmacs: 100.0,
            layers: vec![layer(900, 100, 1_000_000), layer(0, 100, 500_000)],
        }
    }

    #[test]
    fn totals_and_fractions() {
        let s = stats();
        assert_eq!(s.total_cycles(), 1100);
        assert_eq!(s.total_macs(), 1_500_000);
        assert!((s.prep_fraction() - 900.0 / 1100.0).abs() < 1e-12);
    }

    #[test]
    fn time_and_throughput() {
        let s = stats();
        let t = 1100.0 * 1e-9 / 50.0;
        assert!((s.time_s() - t).abs() < 1e-18);
        assert!((s.effective_tmacs() - 1.5e6 / t / 1e12).abs() < 1e-6);
        assert!(s.pe_utilization() > 0.0 && s.pe_utilization() < 1.0);
    }

    #[test]
    fn power_includes_static() {
        let s = stats();
        assert!(s.total_power_w() > 10.0);
        assert!((s.dynamic_power_w() - 2e-6 / s.time_s()).abs() < 1e-3);
    }

    #[test]
    fn fault_counts_aggregate_and_fraction() {
        let mut s = stats();
        assert_eq!(s.fault_counts(), FaultCounts::default());
        assert_eq!(s.fault_fraction(), 0.0);
        s.layers[0].faults = FaultCounts {
            dropped_pulses: 100,
            timing_violations: 20,
            stuck_macs: 30,
        };
        s.layers[1].faults = FaultCounts {
            dropped_pulses: 50,
            timing_violations: 0,
            stuck_macs: 0,
        };
        let c = s.fault_counts();
        assert_eq!(c.dropped_pulses, 150);
        assert_eq!(c.total(), 200);
        assert!((s.fault_fraction() - 200.0 / 1_500_000.0).abs() < 1e-15);
    }

    #[test]
    fn energy_breakdown_adds() {
        let mut a = EnergyBreakdown::default();
        a += EnergyBreakdown {
            pe_j: 1.0,
            buffer_j: 2.0,
            dau_j: 3.0,
            nw_j: 4.0,
            clock_j: 5.0,
        };
        assert_eq!(a.total_j(), 15.0);
    }
}
