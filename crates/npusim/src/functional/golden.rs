//! Golden direct convolution — the reference the systolic dataflow is
//! checked against.

use dnn_models::{Layer, LayerKind};

use super::tensor::{Tensor3, Tensor4};

/// Direct convolution of `ifmap` with `weights` under `layer`'s
/// geometry (stride, padding). Supports standard convs and FC layers
/// (1×1 spatial); depthwise uses the `k == c` channel pairing.
///
/// # Panics
///
/// Panics if the tensor shapes disagree with the layer description.
pub fn golden_conv(layer: &Layer, ifmap: &Tensor3, weights: &Tensor4) -> Tensor3 {
    let (ih, iw, ic) = ifmap.dims();
    let (k, r, s, wc) = weights.dims();
    let (lh, lw) = layer.input_hw();
    assert_eq!((ih, iw), (lh as usize, lw as usize), "ifmap spatial shape");
    assert_eq!(ic, layer.in_channels() as usize, "ifmap channels");
    assert_eq!(k, layer.out_channels() as usize, "filter count");
    assert_eq!(r, layer.kernel() as usize, "kernel height");
    assert_eq!(s, layer.kernel() as usize, "kernel width");
    match layer.kind() {
        LayerKind::Depthwise => assert_eq!(wc, 1, "depthwise weights have one channel"),
        _ => assert_eq!(wc, ic, "weight channels"),
    }

    let (oh, ow) = layer.output_hw();
    let stride = layer.stride() as isize;
    let pad = layer.padding() as isize;
    let mut out = Tensor3::zeros(oh as usize, ow as usize, k);

    for oy in 0..oh as usize {
        for ox in 0..ow as usize {
            for kf in 0..k {
                let mut acc: i32 = 0;
                for ry in 0..r {
                    for sx in 0..s {
                        let iy = oy as isize * stride + ry as isize - pad;
                        let ix = ox as isize * stride + sx as isize - pad;
                        match layer.kind() {
                            LayerKind::Depthwise => {
                                acc += ifmap.get_padded(iy, ix, kf) * weights.get(kf, ry, sx, 0);
                            }
                            _ => {
                                for ci in 0..ic {
                                    acc +=
                                        ifmap.get_padded(iy, ix, ci) * weights.get(kf, ry, sx, ci);
                                }
                            }
                        }
                    }
                }
                out.set(oy, ox, kf, acc);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::Layer;

    #[test]
    fn identity_kernel_passes_through() {
        // 1x1 conv with identity channel mixing copies the input.
        let l = Layer::conv("id", (3, 3), 2, 2, 1, 1, 0);
        let ifmap = Tensor3::from_fn(3, 3, 2, |y, x, c| (y * 10 + x + c * 100) as i32);
        let w = Tensor4::from_fn(2, 1, 1, 2, |k, _, _, c| i32::from(k == c));
        let out = golden_conv(&l, &ifmap, &w);
        assert_eq!(out, ifmap);
    }

    #[test]
    fn box_filter_sums_window() {
        // 3x3 all-ones kernel, single channel, "same" padding: each
        // output is the sum of the 3x3 neighbourhood.
        let l = Layer::conv("box", (3, 3), 1, 1, 3, 1, 1);
        let ifmap = Tensor3::from_fn(3, 3, 1, |_, _, _| 1);
        let w = Tensor4::from_fn(1, 3, 3, 1, |_, _, _, _| 1);
        let out = golden_conv(&l, &ifmap, &w);
        // Center sees 9 ones; corners see 4.
        assert_eq!(out.get(1, 1, 0), 9);
        assert_eq!(out.get(0, 0, 0), 4);
        assert_eq!(out.get(0, 1, 0), 6);
    }

    #[test]
    fn stride_subsamples() {
        let l = Layer::conv("s2", (4, 4), 1, 1, 1, 2, 0);
        let ifmap = Tensor3::from_fn(4, 4, 1, |y, x, _| (y * 4 + x) as i32);
        let w = Tensor4::from_fn(1, 1, 1, 1, |_, _, _, _| 1);
        let out = golden_conv(&l, &ifmap, &w);
        assert_eq!(out.dims(), (2, 2, 1));
        assert_eq!(out.get(0, 0, 0), 0);
        assert_eq!(out.get(0, 1, 0), 2);
        assert_eq!(out.get(1, 1, 0), 10);
    }

    #[test]
    fn depthwise_keeps_channels_separate() {
        let l = Layer::depthwise("dw", (2, 2), 2, 1, 1);
        let ifmap = Tensor3::from_fn(2, 2, 2, |_, _, c| (c + 1) as i32);
        let w = Tensor4::from_fn(2, 1, 1, 1, |k, _, _, _| (k + 1) as i32 * 10);
        let out = golden_conv(&l, &ifmap, &w);
        assert_eq!(out.get(0, 0, 0), 10);
        assert_eq!(out.get(0, 0, 1), 40);
    }

    #[test]
    #[should_panic(expected = "filter count")]
    fn shape_mismatch_panics() {
        let l = Layer::conv("c", (2, 2), 1, 2, 1, 1, 0);
        let ifmap = Tensor3::zeros(2, 2, 1);
        let w = Tensor4::zeros(1, 1, 1, 1); // wrong k
        let _ = golden_conv(&l, &ifmap, &w);
    }
}
