//! Cycle-stepped weight-stationary systolic array.
//!
//! Operands enter at the left edge (row `r` skewed by `r` cycles —
//! the store-and-forward network's natural alignment) and march one
//! column per cycle; partial sums descend one row per cycle; each PE
//! holds `regs` stationary weights and rotates through them, one per
//! stream slot — the paper's multi-register PE (§V-B.3).

/// The array: geometry plus the stationary weight registers.
#[derive(Debug, Clone)]
pub struct SystolicArray {
    height: usize,
    width: usize,
    regs: usize,
    /// `weights[r][c * regs + j]`.
    weights: Vec<Vec<i32>>,
}

impl SystolicArray {
    /// An array of `height × width` PEs with `regs` weight registers
    /// each, all weights zero.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions.
    pub fn new(height: usize, width: usize, regs: usize) -> Self {
        assert!(
            height > 0 && width > 0 && regs > 0,
            "array dimensions must be positive"
        );
        SystolicArray {
            height,
            width,
            regs,
            weights: vec![vec![0; width * regs]; height],
        }
    }

    /// Geometry `(height, width, regs)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.height, self.width, self.regs)
    }

    /// Load the stationary weights: `f(row, col, reg)`.
    pub fn load_weights(&mut self, mut f: impl FnMut(usize, usize, usize) -> i32) {
        for r in 0..self.height {
            for c in 0..self.width {
                for j in 0..self.regs {
                    self.weights[r][c * self.regs + j] = f(r, c, j);
                }
            }
        }
    }

    /// Stream `pixels` operand vectors through the array and collect
    /// the column outputs.
    ///
    /// `operand(row, pixel)` supplies the (DAU-selected, zero-padded)
    /// value for contraction row `row` at output-pixel index `pixel`;
    /// each pixel occupies `regs` consecutive stream slots so every PE
    /// applies each of its weights once per pixel.
    ///
    /// Returns `out[pixel][col][reg]` — the finished column sums.
    pub fn stream(
        &self,
        pixels: usize,
        mut operand: impl FnMut(usize, usize) -> i32,
    ) -> Vec<Vec<Vec<i32>>> {
        let (h, w, regs) = (self.height, self.width, self.regs);
        let slots = pixels * regs;
        let total_cycles = slots + h + w;

        let mut out = vec![vec![vec![0i32; regs]; w]; pixels];

        // Per-cycle pipeline registers.
        let mut x_prev = vec![vec![0i32; w]; h];
        let mut p_prev = vec![vec![0i32; w]; h];

        for t in 0..total_cycles {
            let mut x_next = vec![vec![0i32; w]; h];
            let mut p_next = vec![vec![0i32; w]; h];
            for r in 0..h {
                for c in 0..w {
                    // Operand arriving this cycle.
                    let x = if c == 0 {
                        // Row skew: slot q enters row r at cycle q + r.
                        let q = t as isize - r as isize;
                        if q >= 0 && (q as usize) < slots {
                            let q = q as usize;
                            operand(r, q / regs)
                        } else {
                            0 // bubble
                        }
                    } else {
                        x_prev[r][c - 1]
                    };
                    // Which stationary weight this slot uses.
                    let q = t as isize - r as isize - c as isize;
                    let j = if q >= 0 { (q as usize) % regs } else { 0 };
                    let above = if r == 0 { 0 } else { p_prev[r - 1][c] };
                    x_next[r][c] = x;
                    p_next[r][c] = above + self.weights[r][c * regs + j] * x;
                }
            }
            // Collect finished column sums at the array's bottom edge.
            for c in 0..w {
                let q = t as isize - (h as isize - 1) - c as isize;
                if q >= 0 && (q as usize) < slots {
                    let q = q as usize;
                    out[q / regs][c][q % regs] = p_next[h - 1][c];
                }
            }
            x_prev = x_next;
            p_prev = p_next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2×2 array computing a plain matrix product:
    /// out[col] = Σ_r w[r][col]·x[r].
    #[test]
    fn tiny_matrix_vector() {
        let mut a = SystolicArray::new(2, 2, 1);
        // w = [[1, 2], [3, 4]] (row r, col c).
        a.load_weights(|r, c, _| [[1, 2], [3, 4]][r][c]);
        // Two "pixels": x0 = [10, 20], x1 = [1, 1].
        let xs = [[10, 20], [1, 1]];
        let out = a.stream(2, |r, p| xs[p][r]);
        // pixel 0: col0 = 1*10 + 3*20 = 70; col1 = 2*10 + 4*20 = 100.
        assert_eq!(out[0][0][0], 70);
        assert_eq!(out[0][1][0], 100);
        // pixel 1: col0 = 4, col1 = 6.
        assert_eq!(out[1][0][0], 4);
        assert_eq!(out[1][1][0], 6);
    }

    /// Multi-register PEs: one column holds two filters.
    #[test]
    fn register_rotation() {
        let mut a = SystolicArray::new(2, 1, 2);
        // reg 0 holds filter A = [1, 1], reg 1 holds filter B = [2, 3].
        a.load_weights(|r, _c, j| if j == 0 { 1 } else { [2, 3][r] });
        let xs = [[5, 7]];
        let out = a.stream(1, |r, p| xs[p][r]);
        // filter A: 5 + 7 = 12; filter B: 2*5 + 3*7 = 31.
        assert_eq!(out[0][0][0], 12);
        assert_eq!(out[0][0][1], 31);
    }

    /// Tall-array alignment: results must be exact for any height.
    #[test]
    fn deep_column_alignment() {
        for h in [1usize, 3, 7, 16] {
            let mut a = SystolicArray::new(h, 2, 1);
            a.load_weights(|r, c, _| (r + 1) as i32 * if c == 0 { 1 } else { -1 });
            let out = a.stream(3, |r, p| (p + 1) as i32 * (r as i32 + 1));
            for (p, pass) in out.iter().enumerate() {
                let expect: i32 = (0..h).map(|r| ((r + 1) * (r + 1) * (p + 1)) as i32).sum();
                assert_eq!(pass[0][0], expect, "h={h} p={p}");
                assert_eq!(pass[1][0], -expect, "h={h} p={p}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_array_panics() {
        let _ = SystolicArray::new(0, 1, 1);
    }
}
