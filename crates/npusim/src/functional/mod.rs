//! Functional (value-level) simulation of the weight-stationary
//! systolic array.
//!
//! The paper's SFQ-NPU simulator is timing-only; this module proves
//! the *semantics* of the modeled dataflow: an explicit cycle-stepped
//! PE grid — weights stationary in per-PE registers, ifmap values
//! marching across columns, partial sums descending rows, the DAU
//! selecting and zero-padding each row's operand stream — computes
//! bit-exact convolutions against a golden direct implementation, for
//! every tiling the mapper produces (row groups, column groups,
//! multi-register PEs).
//!
//! This is how the repository demonstrates that the cycle counts in
//! [`crate::simulate_layer`] correspond to a dataflow that actually
//! produces the right numbers.

mod array;
mod conv;
mod golden;
mod tensor;

pub use array::SystolicArray;
pub use conv::run_conv_ws;
pub use golden::golden_conv;
pub use tensor::{Tensor3, Tensor4};
