//! Convolution on the systolic array, tiled exactly like the timing
//! model's weight mappings.

use dnn_models::{Layer, LayerKind};
use sfq_estimator::NpuConfig;

use crate::mapping::enumerate_mappings;

use super::array::SystolicArray;
use super::tensor::{Tensor3, Tensor4};

/// Decompose a contraction index into `(dr, ds, dc)` for a standard
/// convolution with kernel `k` and `c` input channels.
fn unflatten(ci: usize, k: usize, c: usize) -> (usize, usize, usize) {
    let dc = ci % c;
    let rest = ci / c;
    let ds = rest % k;
    let dr = rest / k;
    (dr, ds, dc)
}

/// Run `layer` on a `height × width × regs` weight-stationary array,
/// using the *same* mapping enumeration as the cycle/energy model, and
/// return the output feature map.
///
/// Depthwise layers are executed channel-serially (each channel is an
/// independent 1-filter convolution); the timing model's column-
/// parallel depthwise mapping assumes a per-column operand select the
/// functional array does not have.
///
/// # Panics
///
/// Panics if the tensors disagree with the layer description (see
/// [`super::golden_conv`] for the shape contract).
pub fn run_conv_ws(
    layer: &Layer,
    ifmap: &Tensor3,
    weights: &Tensor4,
    height: u32,
    width: u32,
    regs: u32,
) -> Tensor3 {
    if layer.kind() == LayerKind::Depthwise {
        return run_depthwise(layer, ifmap, weights, height, width, regs);
    }

    let npu = NpuConfig {
        name: "functional".into(),
        array_height: height,
        array_width: width,
        regs_per_pe: regs,
        ..NpuConfig::paper_baseline()
    };
    let mappings = enumerate_mappings(layer, &npu);

    let (oh, ow) = layer.output_hw();
    let (oh, ow) = (oh as usize, ow as usize);
    let kernel = layer.kernel() as usize;
    let in_c = layer.in_channels() as usize;
    let stride = layer.stride() as isize;
    let pad = layer.padding() as isize;
    let mut out = Tensor3::zeros(oh, ow, layer.out_channels() as usize);

    for m in &mappings {
        let row_base = (m.row_group * height) as usize;
        let filter_base = (u64::from(m.col_group) * u64::from(width) * u64::from(regs)) as usize;
        let active_rows = m.active_rows as usize;
        let active_cols = m.active_cols as usize;
        let active_filters = m.active_filters as usize;
        let reuse = m.reuse_per_pe as usize;

        let mut array = SystolicArray::new(active_rows, active_cols, reuse);
        array.load_weights(|r, c, j| {
            // Filter assignment: filter fl sits at column fl % cols,
            // register fl / cols.
            let fl = j * active_cols + c;
            if fl >= active_filters {
                return 0;
            }
            let kf = filter_base + fl;
            let ci = row_base + r;
            match layer.kind() {
                LayerKind::FullyConnected => weights.get(kf, 0, 0, ci),
                _ => {
                    let (dr, ds, dc) = unflatten(ci, kernel, in_c);
                    weights.get(kf, dr, ds, dc)
                }
            }
        });

        let pixels = oh * ow;
        let outputs = array.stream(pixels, |r, pixel| {
            // The DAU's data selection: contraction row → the ifmap
            // element this output pixel needs, zero ("bubble") when
            // the padded window runs off the input.
            let ci = row_base + r;
            match layer.kind() {
                LayerKind::FullyConnected => ifmap.get(0, 0, ci),
                _ => {
                    let (dr, ds, dc) = unflatten(ci, kernel, in_c);
                    let oy = pixel / ow;
                    let ox = pixel % ow;
                    let iy = oy as isize * stride + dr as isize - pad;
                    let ix = ox as isize * stride + ds as isize - pad;
                    ifmap.get_padded(iy, ix, dc)
                }
            }
        });

        // Accumulate this row group's partial sums.
        for (pixel, cols) in outputs.iter().enumerate() {
            let oy = pixel / ow;
            let ox = pixel % ow;
            for (c, regs_out) in cols.iter().enumerate() {
                for (j, &v) in regs_out.iter().enumerate() {
                    let fl = j * active_cols + c;
                    if fl < active_filters {
                        out.add(oy, ox, filter_base + fl, v);
                    }
                }
            }
        }
    }
    out
}

/// Channel-serial depthwise execution.
fn run_depthwise(
    layer: &Layer,
    ifmap: &Tensor3,
    weights: &Tensor4,
    height: u32,
    width: u32,
    regs: u32,
) -> Tensor3 {
    let (oh, ow) = layer.output_hw();
    let mut out = Tensor3::zeros(oh as usize, ow as usize, layer.in_channels() as usize);
    let (h, w) = layer.input_hw();
    for ch in 0..layer.in_channels() as usize {
        // One-channel slice as a standard conv with C=1, K=1.
        let slice_layer = Layer::conv(
            layer.name(),
            (h, w),
            1,
            1,
            layer.kernel(),
            layer.stride(),
            layer.padding(),
        );
        let slice_if = Tensor3::from_fn(h as usize, w as usize, 1, |y, x, _| ifmap.get(y, x, ch));
        let k = layer.kernel() as usize;
        let slice_w = Tensor4::from_fn(1, k, k, 1, |_, r, s, _| weights.get(ch, r, s, 0));
        let slice_out = run_conv_ws(&slice_layer, &slice_if, &slice_w, height, width, regs);
        for y in 0..oh as usize {
            for x in 0..ow as usize {
                out.set(y, x, ch, slice_out.get(y, x, 0));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::golden::golden_conv;
    use super::*;
    use dnn_models::Layer;

    /// Deterministic pseudo-random tensor contents.
    fn fill(seed: u64) -> impl FnMut() -> i32 {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 32) as i32 % 17) - 8 // small signed values
        }
    }

    fn check(layer: &Layer, height: u32, width: u32, regs: u32) {
        let (h, w) = layer.input_hw();
        let mut gen = fill(layer.name().len() as u64 + u64::from(height * 131 + width));
        let ifmap = Tensor3::from_fn(
            h as usize,
            w as usize,
            layer.in_channels() as usize,
            |_, _, _| gen(),
        );
        let wc = if layer.kind() == dnn_models::LayerKind::Depthwise {
            1
        } else {
            layer.in_channels() as usize
        };
        let weights = Tensor4::from_fn(
            layer.out_channels() as usize,
            layer.kernel() as usize,
            layer.kernel() as usize,
            wc,
            |_, _, _, _| gen(),
        );
        let golden = golden_conv(layer, &ifmap, &weights);
        let systolic = run_conv_ws(layer, &ifmap, &weights, height, width, regs);
        assert_eq!(
            systolic,
            golden,
            "{} on {height}x{width}x{regs}",
            layer.name()
        );
    }

    #[test]
    fn pointwise_conv_matches_golden() {
        check(&Layer::conv("1x1", (5, 5), 4, 6, 1, 1, 0), 8, 4, 1);
    }

    #[test]
    fn same_padded_3x3_matches_golden() {
        check(&Layer::conv("3x3", (6, 6), 3, 5, 3, 1, 1), 32, 8, 1);
    }

    #[test]
    fn strided_conv_matches_golden() {
        check(&Layer::conv("s2", (7, 7), 2, 3, 3, 2, 1), 32, 4, 1);
    }

    #[test]
    fn row_tiling_matches_golden() {
        // Contraction 3·3·4 = 36 over an 8-tall array → 5 row groups.
        check(&Layer::conv("tall", (5, 5), 4, 3, 3, 1, 1), 8, 4, 1);
    }

    #[test]
    fn column_tiling_matches_golden() {
        // 10 filters over a 3-wide array → 4 column groups.
        check(&Layer::conv("wide", (4, 4), 2, 10, 3, 1, 1), 32, 3, 1);
    }

    #[test]
    fn multi_register_matches_golden() {
        // 10 filters, 3 columns, 2 regs: reuse factor 2 and a ragged
        // last register bank.
        check(&Layer::conv("regs", (4, 4), 2, 10, 3, 1, 1), 32, 3, 2);
        check(&Layer::conv("regs8", (3, 3), 3, 17, 1, 1, 0), 16, 2, 8);
    }

    #[test]
    fn fully_connected_matches_golden() {
        check(&Layer::fully_connected("fc", 24, 9), 8, 4, 2);
    }

    #[test]
    fn depthwise_matches_golden() {
        check(&Layer::depthwise("dw", (5, 5), 4, 3, 1), 16, 4, 1);
    }

    #[test]
    fn everything_tiled_at_once() {
        // Rows, columns and registers all tile simultaneously.
        check(&Layer::conv("all", (5, 5), 5, 13, 3, 2, 1), 7, 3, 2);
    }
}
