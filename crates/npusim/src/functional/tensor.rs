//! Minimal dense tensors for the functional model.

use serde::{Deserialize, Serialize};

/// A dense `(h, w, c)` activation tensor of `i32` values (int8 data
/// widened so partial sums never clip inside the model).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tensor3 {
    h: usize,
    w: usize,
    c: usize,
    data: Vec<i32>,
}

impl Tensor3 {
    /// A zero tensor.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions.
    pub fn zeros(h: usize, w: usize, c: usize) -> Self {
        assert!(
            h > 0 && w > 0 && c > 0,
            "tensor dimensions must be positive"
        );
        Tensor3 {
            h,
            w,
            c,
            data: vec![0; h * w * c],
        }
    }

    /// Build from a generator `f(y, x, ch)`.
    pub fn from_fn(
        h: usize,
        w: usize,
        c: usize,
        mut f: impl FnMut(usize, usize, usize) -> i32,
    ) -> Self {
        let mut t = Self::zeros(h, w, c);
        for y in 0..h {
            for x in 0..w {
                for ch in 0..c {
                    let v = f(y, x, ch);
                    t.set(y, x, ch, v);
                }
            }
        }
        t
    }

    /// Dimensions `(h, w, c)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.h, self.w, self.c)
    }

    fn idx(&self, y: usize, x: usize, ch: usize) -> usize {
        debug_assert!(y < self.h && x < self.w && ch < self.c);
        (y * self.w + x) * self.c + ch
    }

    /// Read one element.
    pub fn get(&self, y: usize, x: usize, ch: usize) -> i32 {
        self.data[self.idx(y, x, ch)]
    }

    /// Read with zero padding outside the bounds (signed coordinates).
    pub fn get_padded(&self, y: isize, x: isize, ch: usize) -> i32 {
        if y < 0 || x < 0 || y as usize >= self.h || x as usize >= self.w {
            0
        } else {
            self.get(y as usize, x as usize, ch)
        }
    }

    /// Write one element.
    pub fn set(&mut self, y: usize, x: usize, ch: usize, v: i32) {
        let i = self.idx(y, x, ch);
        self.data[i] = v;
    }

    /// Add into one element.
    pub fn add(&mut self, y: usize, x: usize, ch: usize, v: i32) {
        let i = self.idx(y, x, ch);
        self.data[i] += v;
    }
}

/// A dense `(k, r, s, c)` weight tensor: `k` filters of `r×s×c`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tensor4 {
    k: usize,
    r: usize,
    s: usize,
    c: usize,
    data: Vec<i32>,
}

impl Tensor4 {
    /// A zero tensor.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions.
    pub fn zeros(k: usize, r: usize, s: usize, c: usize) -> Self {
        assert!(
            k > 0 && r > 0 && s > 0 && c > 0,
            "tensor dimensions must be positive"
        );
        Tensor4 {
            k,
            r,
            s,
            c,
            data: vec![0; k * r * s * c],
        }
    }

    /// Build from a generator `f(k, r, s, c)`.
    pub fn from_fn(
        k: usize,
        r: usize,
        s: usize,
        c: usize,
        mut f: impl FnMut(usize, usize, usize, usize) -> i32,
    ) -> Self {
        let mut t = Self::zeros(k, r, s, c);
        for ki in 0..k {
            for ri in 0..r {
                for si in 0..s {
                    for ci in 0..c {
                        let v = f(ki, ri, si, ci);
                        t.set(ki, ri, si, ci, v);
                    }
                }
            }
        }
        t
    }

    /// Dimensions `(k, r, s, c)`.
    pub fn dims(&self) -> (usize, usize, usize, usize) {
        (self.k, self.r, self.s, self.c)
    }

    fn idx(&self, k: usize, r: usize, s: usize, c: usize) -> usize {
        debug_assert!(k < self.k && r < self.r && s < self.s && c < self.c);
        ((k * self.r + r) * self.s + s) * self.c + c
    }

    /// Read one element.
    pub fn get(&self, k: usize, r: usize, s: usize, c: usize) -> i32 {
        self.data[self.idx(k, r, s, c)]
    }

    /// Write one element.
    pub fn set(&mut self, k: usize, r: usize, s: usize, c: usize, v: i32) {
        let i = self.idx(k, r, s, c);
        self.data[i] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_padding() {
        let mut t = Tensor3::zeros(2, 3, 4);
        t.set(1, 2, 3, 42);
        assert_eq!(t.get(1, 2, 3), 42);
        assert_eq!(t.get_padded(1, 2, 3), 42);
        assert_eq!(t.get_padded(-1, 0, 0), 0);
        assert_eq!(t.get_padded(0, 3, 0), 0);
        t.add(1, 2, 3, 8);
        assert_eq!(t.get(1, 2, 3), 50);
    }

    #[test]
    fn from_fn_orders_indices() {
        let t = Tensor3::from_fn(2, 2, 2, |y, x, c| (y * 100 + x * 10 + c) as i32);
        assert_eq!(t.get(1, 0, 1), 101);
        let w = Tensor4::from_fn(2, 1, 1, 2, |k, _, _, c| (k * 10 + c) as i32);
        assert_eq!(w.get(1, 0, 0, 1), 11);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dims_panic() {
        let _ = Tensor3::zeros(0, 1, 1);
    }
}
