//! Access-trace generation — the "Access trace analyzer" box of the
//! paper's Fig. 14.
//!
//! For each weight mapping the simulator emits the sequence of
//! buffer/DRAM events with cycle timestamps. Traces serve three
//! purposes in the paper's flow: driving the power model with real
//! activity, feeding the stall analyzer, and letting a designer see
//! *where* a mapping's time goes.

use dnn_models::Layer;
use serde::{Deserialize, Serialize};

use crate::config::SimConfig;
use crate::mapping::enumerate_mappings;
use crate::memory::DramModel;

/// What a trace event touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Weights stream from DRAM into the weight buffer and PE columns.
    WeightLoad,
    /// Ifmap chunk rotation / rewind inside the shift-register buffer.
    IfmapShift,
    /// Ifmap streaming into the DAU/PE array during computation.
    IfmapStream,
    /// Partial sums migrating between the ofmap and psum buffers
    /// (separate-buffer designs only).
    PsumMove,
    /// Output pixels draining into the output buffer.
    OfmapWrite,
    /// Off-chip DRAM transfer.
    Dram,
}

/// One timed event of a mapping's execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Start cycle (relative to inference start).
    pub start_cycle: u64,
    /// Duration in cycles.
    pub cycles: u64,
    /// What is being accessed.
    pub kind: AccessKind,
    /// Bytes moved (0 for pure shifts).
    pub bytes: u64,
    /// Which mapping (row-major index) generated the event.
    pub mapping: u32,
}

impl TraceEvent {
    /// Cycle after the last cycle of this event.
    pub fn end_cycle(&self) -> u64 {
        self.start_cycle + self.cycles
    }
}

/// A full layer trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerTrace {
    /// Layer name.
    pub layer: String,
    /// Batch traced.
    pub batch: u32,
    /// The events, in issue order.
    pub events: Vec<TraceEvent>,
}

impl LayerTrace {
    /// Total cycles covered by the trace (end of the last event).
    pub fn total_cycles(&self) -> u64 {
        self.events
            .iter()
            .map(TraceEvent::end_cycle)
            .max()
            .unwrap_or(0)
    }

    /// Sum of cycles spent in one access kind.
    pub fn cycles_of(&self, kind: AccessKind) -> u64 {
        self.events
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.cycles)
            .sum()
    }

    /// Total bytes moved of one access kind.
    pub fn bytes_of(&self, kind: AccessKind) -> u64 {
        self.events
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.bytes)
            .sum()
    }
}

/// Generate the access trace of one layer on one machine — the same
/// cost model as [`crate::simulate_layer`], unrolled into events.
pub fn trace_layer(cfg: &SimConfig, layer: &Layer, batch: u32) -> LayerTrace {
    let npu = &cfg.npu;
    let dram = DramModel::new(cfg.mem_bandwidth_gbs, cfg.frequency_ghz);
    let mappings = enumerate_mappings(layer, npu);
    let out_px = layer.output_pixels();
    let height = u64::from(npu.array_height);
    let width = u64::from(npu.array_width);
    let fill = height + width + u64::from(sfq_estimator::units::pe_pipeline_depth(npu.bits));

    let monolithic = npu.division <= 1;
    let ifmap_shift: u64 = if monolithic {
        npu.ifmap_buf_bytes / height
    } else {
        npu.ifmap_buffer().chunk_entries()
    };
    let psum_move: u64 = if npu.integrated_output {
        0
    } else {
        (npu.output_buf_bytes + npu.psum_buf_bytes) / width
    };

    let mut events = Vec::new();
    let mut clock = 0u64;
    for (idx, m) in mappings.iter().enumerate() {
        let idx = idx as u32;
        // Preparation phase.
        let weight_bytes = u64::from(m.active_rows) * u64::from(m.active_filters);
        let weight_cycles = u64::from(m.active_rows) * u64::from(m.reuse_per_pe);
        events.push(TraceEvent {
            start_cycle: clock,
            cycles: dram.cycles_for(weight_bytes),
            kind: AccessKind::Dram,
            bytes: weight_bytes,
            mapping: idx,
        });
        events.push(TraceEvent {
            start_cycle: clock,
            cycles: weight_cycles,
            kind: AccessKind::WeightLoad,
            bytes: weight_bytes,
            mapping: idx,
        });
        clock += weight_cycles.max(dram.cycles_for(weight_bytes));

        events.push(TraceEvent {
            start_cycle: clock,
            cycles: ifmap_shift,
            kind: AccessKind::IfmapShift,
            bytes: 0,
            mapping: idx,
        });
        clock += ifmap_shift;

        if m.accumulates && psum_move > 0 {
            events.push(TraceEvent {
                start_cycle: clock,
                cycles: psum_move,
                kind: AccessKind::PsumMove,
                bytes: (npu.output_buf_bytes + npu.psum_buf_bytes) / 2,
                mapping: idx,
            });
            clock += psum_move;
        }

        // Computation phase: stream + concurrent ofmap drain.
        let stream = u64::from(batch) * out_px * u64::from(m.reuse_per_pe);
        events.push(TraceEvent {
            start_cycle: clock,
            cycles: stream + fill,
            kind: AccessKind::IfmapStream,
            bytes: stream * u64::from(m.active_rows),
            mapping: idx,
        });
        events.push(TraceEvent {
            start_cycle: clock + fill,
            cycles: stream,
            kind: AccessKind::OfmapWrite,
            bytes: u64::from(batch) * out_px * u64::from(m.active_filters),
            mapping: idx,
        });
        clock += stream + fill;
    }

    LayerTrace {
        layer: layer.name().to_owned(),
        batch,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::Layer;

    fn conv() -> Layer {
        Layer::conv("c", (28, 28), 64, 128, 3, 1, 1)
    }

    #[test]
    fn trace_is_time_ordered_and_nonempty() {
        let cfg = SimConfig::paper_supernpu();
        let t = trace_layer(&cfg, &conv(), 4);
        assert!(!t.events.is_empty());
        let mut prev = 0u64;
        for e in &t.events {
            // Issue order is monotone within a mapping phase structure.
            assert!(e.start_cycle + 1 >= prev.min(e.start_cycle + 1));
            assert!(e.end_cycle() <= t.total_cycles());
            prev = e.start_cycle;
        }
        assert!(t.total_cycles() > 0);
    }

    #[test]
    fn weight_bytes_match_layer_weights() {
        let cfg = SimConfig::paper_supernpu();
        let l = conv();
        let t = trace_layer(&cfg, &l, 2);
        assert_eq!(t.bytes_of(AccessKind::Dram), l.weight_bytes());
        assert_eq!(t.bytes_of(AccessKind::WeightLoad), l.weight_bytes());
    }

    #[test]
    fn ofmap_bytes_match_layer_output() {
        let cfg = SimConfig::paper_supernpu();
        let l = conv();
        let t = trace_layer(&cfg, &l, 2);
        // Every row group re-writes its partial-sum slice, so the
        // total output-buffer write volume is ofmap × row groups
        // (3 here: 3·3·64 contraction over 256 rows).
        let row_groups = l.contraction_len().div_ceil(256);
        assert_eq!(row_groups, 3);
        assert_eq!(
            t.bytes_of(AccessKind::OfmapWrite),
            l.ofmap_bytes(2) * row_groups
        );
    }

    #[test]
    fn separate_buffers_emit_psum_moves() {
        let base = SimConfig::paper_baseline();
        let l = Layer::conv("deep", (14, 14), 512, 64, 3, 1, 1); // 2 row groups
        let t = trace_layer(&base, &l, 1);
        assert!(t.cycles_of(AccessKind::PsumMove) > 0);
        let opt = SimConfig::paper_supernpu();
        let t = trace_layer(&opt, &l, 1);
        assert_eq!(
            t.cycles_of(AccessKind::PsumMove),
            0,
            "integrated buffer moves no psums"
        );
    }

    #[test]
    fn monolithic_shifts_dominate_trace() {
        let cfg = SimConfig::paper_baseline();
        let t = trace_layer(&cfg, &conv(), 1);
        let shift = t.cycles_of(AccessKind::IfmapShift) + t.cycles_of(AccessKind::PsumMove);
        let stream = t.cycles_of(AccessKind::IfmapStream);
        assert!(shift > stream, "shift {shift} vs stream {stream}");
    }

    #[test]
    fn trace_serializes() {
        let cfg = SimConfig::paper_supernpu();
        let t = trace_layer(&cfg, &conv(), 1);
        let json = serde_json::to_string(&t).unwrap();
        let back: LayerTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
