//! Whole-network simulation: layer orchestration and buffer residency.

use dnn_models::Network;
use sfq_cells::CellLibrary;
use sfq_estimator::estimate;

use crate::batch::structural_max_batch;
use crate::config::SimConfig;
use crate::faults::PulseFaults;
use crate::layersim::simulate_layer_with_faults;
use crate::stats::NetworkStats;

/// Simulate `net` on `cfg` at its maximum on-chip batch (Table II
/// methodology).
pub fn simulate_network(cfg: &SimConfig, net: &Network) -> NetworkStats {
    let batch = structural_max_batch(&cfg.npu, net);
    simulate_network_with_batch(cfg, net, batch)
}

/// Simulate `net` on `cfg` at an explicit batch size.
///
/// The first layer's ifmap always comes from DRAM; later layers reuse
/// the previous layer's on-chip ofmap when it fit in the output
/// buffer.
///
/// # Panics
///
/// Panics if `batch == 0`.
pub fn simulate_network_with_batch(cfg: &SimConfig, net: &Network, batch: u32) -> NetworkStats {
    simulate_network_with_fault_plan(cfg, net, batch, &[])
}

/// Simulate `net` under a per-layer pulse-fault plan.
///
/// `plan[i]` applies to layer `i`; a plan shorter than the network
/// leaves the remaining layers fault-free, so `&[]` is exactly the
/// clean [`simulate_network_with_batch`] run. Injected faults never
/// change cycles or energy — they surface as corrupted-MAC counts in
/// each layer's [`crate::LayerStats::faults`] and the aggregate
/// [`NetworkStats::fault_counts`], keeping degraded runs comparable to
/// clean ones.
///
/// # Panics
///
/// Panics if `batch == 0`.
pub fn simulate_network_with_fault_plan(
    cfg: &SimConfig,
    net: &Network,
    batch: u32,
    plan: &[PulseFaults],
) -> NetworkStats {
    assert!(batch > 0, "batch must be positive");
    let _span = sfq_obs::span("npusim.network.sim_ms");
    let _pf = sfq_obs::prof::frame("npusim.network");
    sfq_obs::inc("npusim.network.count");
    let est = estimate(&cfg.npu, &CellLibrary::aist_10um());
    let out_cap = cfg.npu.output_buf_bytes + cfg.npu.psum_buf_bytes;

    let clean = PulseFaults::none();
    let mut layers = Vec::with_capacity(net.layers().len());
    let mut resident = false; // network input starts off-chip
    for (i, layer) in net.iter().enumerate() {
        let faults = plan.get(i).unwrap_or(&clean);
        layers.push(simulate_layer_with_faults(
            cfg, layer, batch, resident, faults,
        ));
        resident = layer.ofmap_bytes(batch) <= out_cap;
    }

    NetworkStats {
        network: net.name().to_owned(),
        design: cfg.npu.name.clone(),
        batch,
        frequency_ghz: cfg.frequency_ghz,
        static_w: cfg.energy.static_w,
        peak_tmacs: est.peak_tmacs,
        layers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::zoo;

    #[test]
    fn baseline_effective_perf_is_single_digit_tmacs() {
        // §V-A.1: Baseline sustains ~6.45 TMAC/s on average — below
        // 0.2% of its 3366 TMAC/s peak.
        let cfg = SimConfig::paper_baseline();
        let mut sum = 0.0;
        let nets = zoo::all();
        for net in &nets {
            let s = simulate_network(&cfg, net);
            sum += s.effective_tmacs();
            assert!(
                s.pe_utilization() < 0.02,
                "{}: utilization {:.4}",
                net.name(),
                s.pe_utilization()
            );
        }
        let avg = sum / nets.len() as f64;
        assert!(avg > 0.5 && avg < 30.0, "Baseline average {avg:.2} TMAC/s");
    }

    #[test]
    fn baseline_cycles_are_prep_dominated() {
        // Fig. 15: above ~90% preparation for every workload.
        let cfg = SimConfig::paper_baseline();
        for net in zoo::all() {
            let s = simulate_network(&cfg, &net);
            assert!(
                s.prep_fraction() > 0.75,
                "{}: prep fraction {:.2}",
                net.name(),
                s.prep_fraction()
            );
        }
    }

    #[test]
    fn optimizations_stack_monotonically() {
        // Fig. 23's accumulative story: Baseline < Buffer opt. <
        // Resource opt. ≤ SuperNPU in geomean throughput.
        let designs = [
            SimConfig::paper_baseline(),
            SimConfig::paper_buffer_opt(),
            SimConfig::paper_resource_opt(),
            SimConfig::paper_supernpu(),
        ];
        let nets = zoo::all();
        let mut geomeans = Vec::new();
        for cfg in &designs {
            let mut log_sum = 0.0;
            for net in &nets {
                log_sum += simulate_network(cfg, net).effective_tmacs().ln();
            }
            geomeans.push((log_sum / nets.len() as f64).exp());
        }
        assert!(
            geomeans[1] > geomeans[0] * 2.0,
            "buffer opt {:.1} vs baseline {:.1}",
            geomeans[1],
            geomeans[0]
        );
        assert!(
            geomeans[2] > geomeans[1],
            "resource opt {:.1} vs buffer opt {:.1}",
            geomeans[2],
            geomeans[1]
        );
        assert!(
            geomeans[3] > geomeans[2],
            "supernpu {:.1} vs resource opt {:.1}",
            geomeans[3],
            geomeans[2]
        );
    }

    #[test]
    fn supernpu_single_batch_still_beats_baseline() {
        // Fig. 20's single-batch series: buffer optimizations alone
        // give ~6x at batch 1.
        let base = SimConfig::paper_baseline();
        let s = SimConfig::paper_supernpu();
        let net = zoo::resnet50();
        let t_base = simulate_network_with_batch(&base, &net, 1).effective_tmacs();
        let t_s = simulate_network_with_batch(&s, &net, 1).effective_tmacs();
        assert!(
            t_s > 2.0 * t_base,
            "supernpu {t_s:.1} vs baseline {t_base:.1}"
        );
    }

    #[test]
    fn ersfq_performance_identical_to_rsfq() {
        let rsfq = SimConfig::paper_supernpu();
        let ersfq = rsfq.with_bias(sfq_cells::BiasScheme::Ersfq);
        let net = zoo::googlenet();
        let a = simulate_network(&rsfq, &net);
        let b = simulate_network(&ersfq, &net);
        assert_eq!(a.total_cycles(), b.total_cycles());
        assert!(b.total_power_w() < a.total_power_w());
    }

    #[test]
    fn supernpu_power_is_watt_scale_under_ersfq() {
        // Table III: ERSFQ-SuperNPU ≈ 1.9 W.
        let cfg = SimConfig::paper_supernpu().with_bias(sfq_cells::BiasScheme::Ersfq);
        let s = simulate_network(&cfg, &zoo::resnet50());
        let p = s.total_power_w();
        assert!(p > 0.05 && p < 10.0, "ERSFQ power {p:.2} W");
    }

    #[test]
    fn fault_plan_degrades_accounting_not_timing() {
        let cfg = SimConfig::paper_supernpu();
        let net = zoo::alexnet();
        let clean = simulate_network_with_batch(&cfg, &net, 4);
        assert_eq!(clean.fault_counts(), crate::FaultCounts::default());

        // Fault only layer 1; the rest of the (short) plan is clean.
        let mut plan = vec![PulseFaults::none(); 2];
        plan[1] = PulseFaults {
            drop_rate: 1e-4,
            skew_ps: 2.0,
            hold_ps: 1.0,
            stuck_pes: 128,
        };
        let faulty = simulate_network_with_fault_plan(&cfg, &net, 4, &plan);

        // Graceful degradation: identical cycles and energy...
        assert_eq!(faulty.total_cycles(), clean.total_cycles());
        assert_eq!(faulty.dynamic_energy(), clean.dynamic_energy());
        // ...but the corruption is visible, and only where injected.
        assert_eq!(faulty.layers[0].faults, crate::FaultCounts::default());
        let c = faulty.layers[1].faults;
        assert!(c.dropped_pulses > 0 && c.timing_violations > 0 && c.stuck_macs > 0);
        for l in &faulty.layers[2..] {
            assert_eq!(l.faults, crate::FaultCounts::default());
        }
        assert!(faulty.fault_fraction() > 0.0 && faulty.fault_fraction() < 1.0);
    }

    #[test]
    #[should_panic(expected = "batch must be positive")]
    fn zero_batch_panics() {
        let cfg = SimConfig::paper_baseline();
        let _ = simulate_network_with_batch(&cfg, &zoo::alexnet(), 0);
    }
}
