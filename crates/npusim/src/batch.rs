//! Structural batch sizing for SFQ buffer organizations (Table II).
//!
//! Monolithic shift-register buffers dedicate each row to one ifmap
//! channel (paper Fig. 18(c)), so the batch is bounded by whether a
//! whole channel×batch fits in a single row — for ImageNet-scale
//! first layers it does not, which is why every Baseline batch in
//! Table II is 1. Divided buffers pack freely across chunks and are
//! bounded only by capacity (and the paper's conservative cap of 30).

use dnn_models::{batching::PAPER_BATCH_CAP, LayerKind, Network};
use serde::{Deserialize, Serialize};
use sfq_estimator::NpuConfig;

/// How the simulator picks the input batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BatchPolicy {
    /// Always batch 1 (the single-batch series of Figs. 17 and 20).
    Single,
    /// The largest batch the on-chip buffers hold without extra
    /// off-chip traffic (the paper's Table II methodology).
    MaxOnChip,
}

/// Maximum on-chip batch for `net` on `npu` under the structural
/// rules above.
pub fn structural_max_batch(npu: &NpuConfig, net: &Network) -> u32 {
    let ifmap_cap = npu.ifmap_buf_bytes;
    let out_cap = npu.output_buf_bytes + npu.psum_buf_bytes;

    // Ifmap capacity bound: the largest layer's ifmap per image
    // against its buffer.
    let max_if = net
        .iter()
        .map(|l| l.ifmap_bytes(1))
        .max()
        .unwrap_or(1)
        .max(1);
    let if_bound = (ifmap_cap / max_if) as u32;

    // Output capacity bound with the Fig. 18(b) width-utilization
    // effect: the output buffer has one row per PE column, so a layer
    // with fewer filters than the array width strands the other rows.
    let out_bound = net
        .iter()
        .map(|l| {
            let k = l.filter_count().min(u64::from(npu.array_width));
            let eff = out_cap * k / u64::from(npu.array_width);
            (eff / l.ofmap_bytes(1).max(1)) as u32
        })
        .min()
        .unwrap_or(1);

    let capacity_bound = if_bound.min(out_bound).max(1);

    if npu.division <= 1 {
        // Row dedication: channel × batch must fit in one buffer row.
        let row_capacity = ifmap_cap / u64::from(npu.array_height);
        let row_bound = net
            .iter()
            .filter(|l| l.kind() != LayerKind::FullyConnected)
            .map(|l| {
                let (h, w) = l.input_hw();
                let channel_bytes = u64::from(h) * u64::from(w);
                (row_capacity / channel_bytes.max(1)) as u32
            })
            .min()
            .unwrap_or(capacity_bound);
        row_bound.min(capacity_bound).clamp(1, PAPER_BATCH_CAP)
    } else {
        capacity_bound.clamp(1, PAPER_BATCH_CAP)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::zoo;

    #[test]
    fn baseline_batches_are_all_1() {
        // Table II, Baseline column.
        let npu = NpuConfig::paper_baseline();
        for net in zoo::all() {
            assert_eq!(structural_max_batch(&npu, &net), 1, "{}", net.name());
        }
    }

    #[test]
    fn supernpu_vgg_batch_is_7() {
        // Table II: SuperNPU runs VGG16 at batch 7.
        let npu = NpuConfig::paper_supernpu();
        let b = structural_max_batch(&npu, &zoo::vgg16());
        assert_eq!(b, 7);
    }

    #[test]
    fn supernpu_small_nets_hit_cap() {
        let npu = NpuConfig::paper_supernpu();
        for net in [
            zoo::alexnet(),
            zoo::googlenet(),
            zoo::mobilenet(),
            zoo::resnet50(),
        ] {
            let b = structural_max_batch(&npu, &net);
            assert_eq!(b, PAPER_BATCH_CAP, "{}", net.name());
        }
    }

    #[test]
    fn buffer_opt_beats_baseline() {
        let base = NpuConfig::paper_baseline();
        let opt = NpuConfig::paper_buffer_opt();
        for net in zoo::all() {
            let b0 = structural_max_batch(&base, &net);
            let b1 = structural_max_batch(&opt, &net);
            assert!(b1 >= b0, "{}: {b1} < {b0}", net.name());
        }
        assert!(structural_max_batch(&opt, &zoo::resnet50()) > 1);
    }

    #[test]
    fn batch_never_zero() {
        // Even absurdly small buffers give batch 1.
        let mut npu = NpuConfig::paper_baseline();
        npu.ifmap_buf_bytes = 1024;
        npu.output_buf_bytes = 1024;
        npu.psum_buf_bytes = 0;
        assert_eq!(structural_max_batch(&npu, &zoo::vgg16()), 1);
    }
}
