//! Simulation configuration: architecture + derived physical numbers.

use serde::{Deserialize, Serialize};
use sfq_cells::{BiasScheme, CellLibrary};
use sfq_estimator::{estimate, NpuConfig, NpuEstimate};

/// A structurally invalid simulator configuration.
///
/// Raised at construction time ([`SimConfig::try_from_npu`],
/// [`SimConfig::validate`]) so the cycle simulator itself never has to
/// guard against zero-sized arrays or zero bandwidth mid-flight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// An architectural count that must be at least one was zero.
    ZeroField {
        /// Which field (e.g. `array_height`).
        field: &'static str,
    },
    /// A physical rate that must be positive and finite was not.
    NonPositive {
        /// Which field (e.g. `mem_bandwidth_gbs`).
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroField { field } => {
                write!(f, "configuration field {field} must be at least 1")
            }
            ConfigError::NonPositive { field, value } => {
                write!(f, "configuration field {field} = {value} must be positive")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Check an architecture for structural validity: every dimension the
/// simulator divides by or iterates over must be non-zero.
///
/// # Errors
///
/// Returns the first offending field.
pub fn validate_npu(npu: &NpuConfig) -> Result<(), ConfigError> {
    let counts = [
        ("array_height", u64::from(npu.array_height)),
        ("array_width", u64::from(npu.array_width)),
        ("bits", u64::from(npu.bits)),
        ("regs_per_pe", u64::from(npu.regs_per_pe)),
        ("ifmap_buf_bytes", npu.ifmap_buf_bytes),
        ("output_buf_bytes", npu.output_buf_bytes),
        ("weight_buf_bytes", npu.weight_buf_bytes),
        ("division", u64::from(npu.division)),
    ];
    for (field, v) in counts {
        if v == 0 {
            return Err(ConfigError::ZeroField { field });
        }
    }
    // psum_buf_bytes may legitimately be 0 (integrated output buffer).
    Ok(())
}

/// Per-event switching energies and static power, taken from the
/// estimator (joules / watts).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy per MAC operation in a PE.
    pub pe_mac_j: f64,
    /// Energy per single-entry shift of one buffer row lane.
    pub buffer_shift_j: f64,
    /// Energy per ifmap element aligned through the DAU.
    pub dau_j: f64,
    /// Energy per element-hop through a network-unit node.
    pub nw_hop_j: f64,
    /// Ungated clock-distribution energy per clock cycle (chip-wide).
    pub clock_per_cycle_j: f64,
    /// Chip static power, watts (0 for ERSFQ).
    pub static_w: f64,
}

impl EnergyModel {
    /// Pull the energy numbers out of an architecture estimate.
    pub fn from_estimate(est: &NpuEstimate) -> Self {
        EnergyModel {
            pe_mac_j: est.pe_mac_energy_j,
            buffer_shift_j: est.buffer_shift_energy_j,
            dau_j: est.dau_energy_j,
            nw_hop_j: est.nw_hop_energy_j,
            clock_per_cycle_j: est.clock_energy_per_cycle_j,
            static_w: est.static_w,
        }
    }
}

/// Everything the cycle simulator needs about the machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// The architectural configuration.
    pub npu: NpuConfig,
    /// Clock frequency, GHz (from the estimator).
    pub frequency_ghz: f64,
    /// Off-chip memory bandwidth, GB/s (the paper uses the TPUv2's
    /// 300 GB/s HBM figure).
    pub mem_bandwidth_gbs: f64,
    /// Switching energies / static power.
    pub energy: EnergyModel,
}

impl SimConfig {
    /// Default memory bandwidth (GB/s) used across the paper.
    pub const PAPER_BANDWIDTH_GBS: f64 = 300.0;

    /// Build a config by running the estimator on `npu` under `lib`.
    ///
    /// # Panics
    ///
    /// Panics when `npu` is structurally invalid; sweep code exploring
    /// machine-generated configurations should use
    /// [`SimConfig::try_from_npu`] instead.
    pub fn from_npu(npu: NpuConfig, lib: &CellLibrary) -> Self {
        match Self::try_from_npu(npu, lib) {
            Ok(cfg) => cfg,
            Err(e) => panic!("invalid NPU configuration: {e}"),
        }
    }

    /// Build a config by running the estimator on `npu` under `lib`,
    /// rejecting structurally invalid architectures up front.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for zero-sized PE arrays, zero-width
    /// buffers or a zero division degree — the inputs that would
    /// otherwise surface as divide-by-zero panics deep inside the
    /// estimator or the cycle simulator.
    pub fn try_from_npu(npu: NpuConfig, lib: &CellLibrary) -> Result<Self, ConfigError> {
        validate_npu(&npu)?;
        let est = estimate(&npu, lib);
        Ok(SimConfig {
            npu,
            frequency_ghz: est.frequency_ghz,
            mem_bandwidth_gbs: Self::PAPER_BANDWIDTH_GBS,
            energy: EnergyModel::from_estimate(&est),
        })
    }

    /// Re-validate a (possibly hand-mutated) config: the architecture
    /// plus the physical rates the simulator divides by.
    ///
    /// # Errors
    ///
    /// Returns the first offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        validate_npu(&self.npu)?;
        for (field, v) in [
            ("frequency_ghz", self.frequency_ghz),
            ("mem_bandwidth_gbs", self.mem_bandwidth_gbs),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(ConfigError::NonPositive { field, value: v });
            }
        }
        Ok(())
    }

    /// The paper's Baseline design under the RSFQ AIST library.
    pub fn paper_baseline() -> Self {
        Self::from_npu(NpuConfig::paper_baseline(), &CellLibrary::aist_10um())
    }

    /// The paper's Buffer-opt. design.
    pub fn paper_buffer_opt() -> Self {
        Self::from_npu(NpuConfig::paper_buffer_opt(), &CellLibrary::aist_10um())
    }

    /// The paper's Resource-opt. design.
    pub fn paper_resource_opt() -> Self {
        Self::from_npu(NpuConfig::paper_resource_opt(), &CellLibrary::aist_10um())
    }

    /// The full SuperNPU design.
    pub fn paper_supernpu() -> Self {
        Self::from_npu(NpuConfig::paper_supernpu(), &CellLibrary::aist_10um())
    }

    /// Same design point under ERSFQ biasing (Table III's low-power
    /// variant; performance is unchanged, power is not).
    pub fn with_bias(&self, bias: BiasScheme) -> Self {
        let lib = CellLibrary::aist_10um().with_bias(bias);
        let mut out = Self::from_npu(self.npu.clone(), &lib);
        out.mem_bandwidth_gbs = self.mem_bandwidth_gbs;
        out
    }

    /// DRAM bytes transferred per NPU clock cycle.
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.mem_bandwidth_gbs / self.frequency_ghz
    }

    /// Seconds per cycle.
    pub fn cycle_s(&self) -> f64 {
        1e-9 / self.frequency_ghz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_run_at_52_6ghz() {
        for cfg in [
            SimConfig::paper_baseline(),
            SimConfig::paper_buffer_opt(),
            SimConfig::paper_resource_opt(),
            SimConfig::paper_supernpu(),
        ] {
            assert!((cfg.frequency_ghz - 52.6).abs() < 1.5, "{}", cfg.npu.name);
            assert_eq!(cfg.mem_bandwidth_gbs, 300.0);
        }
    }

    #[test]
    fn dram_bytes_per_cycle_is_sub_10() {
        // 300 GB/s at ~52.6 GHz: ~5.7 bytes per cycle — the "fast but
        // starved" regime the paper highlights.
        let c = SimConfig::paper_baseline();
        let bpc = c.dram_bytes_per_cycle();
        assert!(bpc > 4.0 && bpc < 8.0, "bytes/cycle {bpc}");
    }

    #[test]
    fn degenerate_architectures_are_config_errors_not_panics() {
        let lib = CellLibrary::aist_10um();
        let base = NpuConfig::paper_supernpu();

        let mut npu = base.clone();
        npu.array_height = 0;
        assert_eq!(
            SimConfig::try_from_npu(npu, &lib).unwrap_err(),
            ConfigError::ZeroField {
                field: "array_height"
            }
        );

        let mut npu = base.clone();
        npu.ifmap_buf_bytes = 0;
        assert_eq!(
            SimConfig::try_from_npu(npu, &lib).unwrap_err(),
            ConfigError::ZeroField {
                field: "ifmap_buf_bytes"
            }
        );

        let mut npu = base.clone();
        npu.division = 0;
        assert!(SimConfig::try_from_npu(npu, &lib).is_err());

        // psum_buf_bytes = 0 is legal (integrated output buffer).
        assert_eq!(base.psum_buf_bytes, 0);
        assert!(SimConfig::try_from_npu(base, &lib).is_ok());
    }

    #[test]
    fn zero_bandwidth_is_a_config_error() {
        let mut cfg = SimConfig::paper_supernpu();
        assert!(cfg.validate().is_ok());
        cfg.mem_bandwidth_gbs = 0.0;
        assert_eq!(
            cfg.validate().unwrap_err(),
            ConfigError::NonPositive {
                field: "mem_bandwidth_gbs",
                value: 0.0
            }
        );
        cfg.mem_bandwidth_gbs = f64::NAN;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn ersfq_variant_zeroes_static_doubles_mac_energy() {
        let rsfq = SimConfig::paper_supernpu();
        let ersfq = rsfq.with_bias(BiasScheme::Ersfq);
        assert_eq!(ersfq.energy.static_w, 0.0);
        assert!((ersfq.energy.pe_mac_j / rsfq.energy.pe_mac_j - 2.0).abs() < 1e-9);
        assert_eq!(ersfq.frequency_ghz, rsfq.frequency_ghz);
    }
}
