//! Off-chip memory model: a fixed-bandwidth HBM channel, as in the
//! paper ("the simulator also models the memory stall incurred by
//! limited memory bandwidth by taking memory bandwidth as its input").

use serde::{Deserialize, Serialize};

/// Bandwidth-only DRAM model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramModel {
    /// Link bandwidth, GB/s.
    pub bandwidth_gbs: f64,
    /// NPU clock, GHz (to convert bytes to cycles).
    pub frequency_ghz: f64,
}

impl DramModel {
    /// Construct, validating positivity.
    ///
    /// # Panics
    ///
    /// Panics on non-positive bandwidth or frequency.
    pub fn new(bandwidth_gbs: f64, frequency_ghz: f64) -> Self {
        assert!(
            bandwidth_gbs > 0.0 && frequency_ghz > 0.0,
            "DRAM model needs positive parameters"
        );
        DramModel {
            bandwidth_gbs,
            frequency_ghz,
        }
    }

    /// Cycles to move `bytes` over the link.
    pub fn cycles_for(&self, bytes: u64) -> u64 {
        let bytes_per_cycle = self.bandwidth_gbs / self.frequency_ghz;
        (bytes as f64 / bytes_per_cycle).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_scale_with_bytes() {
        let m = DramModel::new(300.0, 50.0); // 6 B/cycle
        assert_eq!(m.cycles_for(0), 0);
        assert_eq!(m.cycles_for(6), 1);
        assert_eq!(m.cycles_for(600), 100);
        assert_eq!(m.cycles_for(601), 101);
    }

    #[test]
    fn slower_clock_means_fewer_stall_cycles() {
        let fast = DramModel::new(300.0, 52.6);
        let slow = DramModel::new(300.0, 0.7);
        assert!(fast.cycles_for(1_000_000) > slow.cycles_for(1_000_000));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_panics() {
        let _ = DramModel::new(0.0, 1.0);
    }
}
