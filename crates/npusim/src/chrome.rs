//! Chrome-trace export of access traces — the cycle-domain process.
//!
//! Converts the simulator's [`LayerTrace`] access traces into
//! Perfetto/`chrome://tracing` tracks under [`CYCLE_PID`], with one
//! trace microsecond standing in for one NPU cycle. Because the
//! timestamps come straight from the deterministic cost model (and
//! layer fan-out uses the index-ordered [`sfq_par::par_map`]), the
//! exported event stream is bit-identical regardless of
//! `SUPERNPU_THREADS`.
//!
//! Track layout (fixed `tid`s so repeated exports line up):
//!
//! * `layers` — one complete slice per layer, end to end,
//! * `dram`, `weight buffer`, `ifmap buffer`, `pe array`,
//!   `psum buffer`, `ofmap buffer` — one slice per [`TraceEvent`],
//! * `dram_bytes` counter — cumulative off-chip traffic,
//! * `pe_active_rows_pct` counter — PE-array row utilization during
//!   each streaming phase (active rows recovered from the event's
//!   `bytes / (cycles − fill)`, where `fill` is the pipeline-fill
//!   latency the stream slice includes).

use dnn_models::Network;
use sfq_obs::trace::{ChromeTrace, CYCLE_PID};

use crate::config::SimConfig;
use crate::trace::{trace_layer, AccessKind, LayerTrace};

/// Track id of the per-layer span track.
pub const TID_LAYERS: u64 = 1;
/// Track id of DRAM transfer slices.
pub const TID_DRAM: u64 = 2;
/// Track id of weight-buffer load slices.
pub const TID_WEIGHT: u64 = 3;
/// Track id of ifmap-buffer shift/stream slices.
pub const TID_IFMAP: u64 = 4;
/// Track id of PE-array streaming slices.
pub const TID_PE: u64 = 5;
/// Track id of psum-migration slices.
pub const TID_PSUM: u64 = 6;
/// Track id of ofmap-drain slices.
pub const TID_OFMAP: u64 = 7;

fn kind_track(kind: AccessKind) -> (u64, &'static str) {
    match kind {
        AccessKind::Dram => (TID_DRAM, "dram transfer"),
        AccessKind::WeightLoad => (TID_WEIGHT, "weight load"),
        AccessKind::IfmapShift => (TID_IFMAP, "ifmap shift"),
        AccessKind::IfmapStream => (TID_PE, "stream"),
        AccessKind::PsumMove => (TID_PSUM, "psum move"),
        AccessKind::OfmapWrite => (TID_OFMAP, "ofmap drain"),
    }
}

/// Trace every layer of a network at one batch. Fans out across the
/// worker pool; [`sfq_par::par_map`] reassembles in index order, so
/// the result is identical to a serial loop at any thread count.
pub fn trace_network(cfg: &SimConfig, net: &Network, batch: u32) -> Vec<LayerTrace> {
    sfq_par::par_map(net.layers(), |layer| trace_layer(cfg, layer, batch))
}

/// Lay a network's layer traces end to end on the cycle timeline and
/// render them as Chrome trace tracks under [`CYCLE_PID`].
///
/// `cfg` must be the configuration the traces were generated with:
/// the utilization counter reconstructs active rows from the same
/// pipeline-fill constant [`trace_layer`] charged.
#[allow(clippy::cast_precision_loss)]
pub fn chrome_cycle_trace(cfg: &SimConfig, traces: &[LayerTrace]) -> ChromeTrace {
    let npu = &cfg.npu;
    let height = u64::from(npu.array_height);
    let width = u64::from(npu.array_width);
    let fill = height + width + u64::from(sfq_estimator::units::pe_pipeline_depth(npu.bits));

    let mut ct = ChromeTrace::new();
    ct.name_process(CYCLE_PID, "npusim (cycles)");
    ct.name_track(CYCLE_PID, TID_LAYERS, "layers");
    ct.name_track(CYCLE_PID, TID_DRAM, "dram");
    ct.name_track(CYCLE_PID, TID_WEIGHT, "weight buffer");
    ct.name_track(CYCLE_PID, TID_IFMAP, "ifmap buffer");
    ct.name_track(CYCLE_PID, TID_PE, "pe array");
    ct.name_track(CYCLE_PID, TID_PSUM, "psum buffer");
    ct.name_track(CYCLE_PID, TID_OFMAP, "ofmap buffer");

    let mut offset = 0u64;
    let mut dram_total = 0u64;
    for t in traces {
        let layer_name = format!("{} (batch {})", t.layer, t.batch);
        ct.add_complete(
            CYCLE_PID,
            TID_LAYERS,
            "npusim",
            &layer_name,
            offset as f64,
            t.total_cycles() as f64,
        );
        for e in &t.events {
            let (tid, name) = kind_track(e.kind);
            let ts = (offset + e.start_cycle) as f64;
            ct.add_complete(CYCLE_PID, tid, "npusim", name, ts, e.cycles as f64);
            match e.kind {
                AccessKind::Dram => {
                    dram_total += e.bytes;
                    ct.add_counter(
                        CYCLE_PID,
                        TID_DRAM,
                        "dram_bytes",
                        (offset + e.end_cycle()) as f64,
                        dram_total as f64,
                    );
                }
                AccessKind::IfmapStream => {
                    let compute = e.cycles.saturating_sub(fill);
                    let active_rows = if compute > 0 {
                        e.bytes as f64 / compute as f64
                    } else {
                        0.0
                    };
                    let pct = 100.0 * active_rows / height as f64;
                    ct.add_counter(CYCLE_PID, TID_PE, "pe_active_rows_pct", ts, pct);
                    ct.add_counter(
                        CYCLE_PID,
                        TID_PE,
                        "pe_active_rows_pct",
                        (offset + e.end_cycle()) as f64,
                        0.0,
                    );
                }
                _ => {}
            }
        }
        offset += t.total_cycles();
    }
    ct
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::zoo;

    #[test]
    fn cycle_trace_covers_all_events() {
        let cfg = SimConfig::paper_supernpu();
        let net = zoo::alexnet();
        let traces = trace_network(&cfg, &net, 2);
        assert_eq!(traces.len(), net.layers().len());
        let ct = chrome_cycle_trace(&cfg, &traces);
        let n_events: usize = traces.iter().map(|t| t.events.len()).sum();
        // Every access event plus one layer span each, plus counters.
        assert!(ct.len() > n_events + traces.len());
        let json = ct.to_json();
        assert!(json.contains("pe array"));
        assert!(json.contains("dram_bytes"));
    }
}
