//! Stall analysis — the "Stall analyzer" box of the paper's Fig. 14.
//!
//! Classifies every cycle of a network's execution into the paper's
//! §V-A bottleneck categories, so the three optimization targets
//! (data movement, idle compute, buffer waste) can be read directly
//! off a simulation.

use dnn_models::Network;
use serde::{Deserialize, Serialize};

use crate::config::SimConfig;
use crate::netsim::simulate_network_with_batch;

/// Where a design's cycles go, whole-network.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StallReport {
    /// Useful systolic streaming + pipeline fill.
    pub compute_cycles: u64,
    /// Shift-register data movement (ifmap rotation + psum moves +
    /// weight loads) — the paper's Bottleneck 1.
    pub data_movement_cycles: u64,
    /// Pure DRAM stalls beyond the shifting overlap — part of the
    /// paper's Bottleneck 2 (fast but idle compute).
    pub memory_stall_cycles: u64,
}

impl StallReport {
    /// Total cycles.
    pub fn total(&self) -> u64 {
        self.compute_cycles + self.data_movement_cycles + self.memory_stall_cycles
    }

    /// Fraction of cycles in each class: (compute, movement, memory).
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total().max(1) as f64;
        (
            self.compute_cycles as f64 / t,
            self.data_movement_cycles as f64 / t,
            self.memory_stall_cycles as f64 / t,
        )
    }

    /// The dominant bottleneck class as a label.
    pub fn dominant(&self) -> &'static str {
        let (c, d, m) = (
            self.compute_cycles,
            self.data_movement_cycles,
            self.memory_stall_cycles,
        );
        if d >= c && d >= m {
            "on-chip data movement"
        } else if m >= c {
            "memory bandwidth"
        } else {
            "compute"
        }
    }
}

/// Analyze a network run at an explicit batch.
///
/// # Panics
///
/// Panics if `batch == 0`.
pub fn analyze_stalls(cfg: &SimConfig, net: &Network, batch: u32) -> StallReport {
    let stats = simulate_network_with_batch(cfg, net, batch);
    let mut r = StallReport::default();
    for l in &stats.layers {
        r.compute_cycles += l.compute_cycles;
        r.data_movement_cycles += l.prep_cycles;
        r.memory_stall_cycles += l.stall_cycles;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::zoo;

    #[test]
    fn baseline_bottleneck_is_data_movement() {
        // §V-A.2: the naïve design's dominant cost is on-chip data
        // movement.
        let cfg = SimConfig::paper_baseline();
        let r = analyze_stalls(&cfg, &zoo::resnet50(), 1);
        assert_eq!(r.dominant(), "on-chip data movement");
        let (_, movement, _) = r.fractions();
        assert!(movement > 0.6, "movement fraction {movement:.2}");
    }

    #[test]
    fn supernpu_bottleneck_is_not_data_movement() {
        // After the optimizations, shifting no longer dominates.
        let cfg = SimConfig::paper_supernpu();
        let r = analyze_stalls(&cfg, &zoo::resnet50(), 30);
        assert_ne!(r.dominant(), "on-chip data movement");
        let (compute, movement, _) = r.fractions();
        assert!(
            compute > movement,
            "compute {compute:.2} vs movement {movement:.2}"
        );
    }

    #[test]
    fn fractions_sum_to_one() {
        let cfg = SimConfig::paper_buffer_opt();
        let r = analyze_stalls(&cfg, &zoo::googlenet(), 3);
        let (a, b, c) = r.fractions();
        assert!((a + b + c - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fc_heavy_single_batch_is_memory_bound_on_supernpu() {
        // AlexNet at batch 1: FC weights dominate traffic.
        let cfg = SimConfig::paper_supernpu();
        let r = analyze_stalls(&cfg, &zoo::alexnet(), 1);
        assert_eq!(r.dominant(), "memory bandwidth");
    }

    #[test]
    fn empty_report_is_safe() {
        let r = StallReport::default();
        assert_eq!(r.total(), 0);
        let (a, b, c) = r.fractions();
        assert_eq!((a, b, c), (0.0, 0.0, 0.0));
    }
}
