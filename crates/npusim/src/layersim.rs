//! Per-layer cycle simulation.

use dnn_models::{Layer, LayerKind};
use sfq_estimator::units::pe_pipeline_depth;

use crate::config::SimConfig;
use crate::faults::PulseFaults;
use crate::mapping::enumerate_mappings;
use crate::memory::DramModel;
use crate::stats::{EnergyBreakdown, FaultCounts, LayerStats};

/// Simulate one layer at the given batch.
///
/// `ifmap_resident` says whether the layer's input is already on chip
/// (produced by the previous layer and small enough to have stayed);
/// when false the ifmap is fetched from DRAM.
pub fn simulate_layer(
    cfg: &SimConfig,
    layer: &Layer,
    batch: u32,
    ifmap_resident: bool,
) -> LayerStats {
    simulate_layer_with_faults(cfg, layer, batch, ifmap_resident, &PulseFaults::none())
}

/// Simulate one layer under an injected pulse-fault description.
///
/// Timing and energy are charged exactly as in the fault-free run (a
/// dropped pulse still consumed its clock edges); the returned
/// [`LayerStats::faults`] reports the deterministic expected number of
/// corrupted MACs so the caller can judge the degradation instead of
/// the simulator aborting.
pub fn simulate_layer_with_faults(
    cfg: &SimConfig,
    layer: &Layer,
    batch: u32,
    ifmap_resident: bool,
    faults: &PulseFaults,
) -> LayerStats {
    let _pf = sfq_obs::prof::frame(match layer.kind() {
        LayerKind::Conv => "npusim.layer.conv",
        LayerKind::Depthwise => "npusim.layer.depthwise",
        LayerKind::FullyConnected => "npusim.layer.fc",
    });
    let npu = &cfg.npu;
    let dram = DramModel::new(cfg.mem_bandwidth_gbs, cfg.frequency_ghz);
    let mappings = enumerate_mappings(layer, npu);
    let out_px = layer.output_pixels();

    let height = u64::from(npu.array_height);
    let width = u64::from(npu.array_width);
    let fill = height + width + u64::from(pe_pipeline_depth(npu.bits));

    // Shift distances (entries; one entry shifts per row per cycle).
    let monolithic = npu.division <= 1;
    let ifmap_shift_per_map: u64 = if monolithic {
        // Full row pass: the whole (row-dedicated) register must rotate
        // tail-to-head before the next mapping can stream (Fig. 16 ②).
        npu.ifmap_buf_bytes / height
    } else {
        npu.ifmap_buffer().chunk_entries()
    };
    let psum_move: u64 = if npu.integrated_output {
        // Chunk-pointer swap (Fig. 19 ①): free.
        0
    } else {
        // Drain ofmap buffer into psum buffer through their full
        // lengths (the paper's 65,536-cycle example, Fig. 16 ①).
        (npu.output_buf_bytes + npu.psum_buf_bytes) / width
    };

    let mut prep_cycles = 0u64;
    let mut compute_cycles = 0u64;
    let mut macs_total = 0u64;
    let mut dram_bytes = 0u64;
    let mut energy = EnergyBreakdown::default();

    let b = u64::from(batch);
    let col_groups = mappings.iter().map(|m| m.col_group).max().unwrap_or(0) + 1;

    for m in &mappings {
        let stream = b * out_px * u64::from(m.reuse_per_pe);
        compute_cycles += stream + fill;

        let weight_load = u64::from(m.active_rows) * u64::from(m.reuse_per_pe);
        let psum = if m.accumulates { psum_move } else { 0 };
        prep_cycles += weight_load + ifmap_shift_per_map + psum;

        // Weights always stream from DRAM, once per mapping.
        let weight_bytes = u64::from(m.active_rows) * u64::from(m.active_filters);
        dram_bytes += weight_bytes;

        // Monolithic output buffers flush between column groups
        // (Fig. 18(a)): the partial ofmap goes out and comes back.
        if monolithic && col_groups > 1 {
            let of_bytes = b * out_px * u64::from(m.active_filters);
            dram_bytes += of_bytes;
        }

        let macs = m.macs(out_px, batch);
        macs_total += macs;

        // Dynamic energy.
        let e = &cfg.energy;
        energy.pe_j += macs as f64 * e.pe_mac_j;
        energy.nw_j += macs as f64 * e.nw_hop_j;
        energy.dau_j += (stream * u64::from(m.active_rows)) as f64 * e.dau_j;
        let shift_events = ifmap_shift_per_map * height
            + psum * 2 * width
            + stream * (u64::from(m.active_rows) + u64::from(m.active_cols))
            + weight_load * u64::from(m.active_cols);
        energy.buffer_j += shift_events as f64 * e.buffer_shift_j;
    }

    // Layer-level ifmap traffic.
    let if_bytes = layer.ifmap_bytes(batch);
    if !ifmap_resident || if_bytes > npu.ifmap_buf_bytes {
        dram_bytes += if_bytes;
    }
    // Ofmap writeback when it cannot stay on chip.
    let of_bytes = layer.ofmap_bytes(batch);
    let out_cap = npu.output_buf_bytes + npu.psum_buf_bytes;
    if of_bytes > out_cap {
        dram_bytes += of_bytes;
    }

    // DRAM transfers overlap with on-chip shifting; any excess stalls.
    let dram_cycles = dram.cycles_for(dram_bytes);
    let stall_cycles = dram_cycles.saturating_sub(prep_cycles);

    // The clock tree fires every cycle the chip is active, gated or
    // not (SFQ gates have no clock gating).
    energy.clock_j +=
        (prep_cycles + compute_cycles + stall_cycles) as f64 * cfg.energy.clock_per_cycle_j;

    // Pulse-level fault accounting: deterministic expected values over
    // the layer's MAC total, independent of schedule or sampling.
    let fault_counts = if faults.is_clean() {
        FaultCounts::default()
    } else {
        faults.counts_for(macs_total, npu.array_height, npu.array_width)
    };

    // One gated flush per layer: where this layer's time and traffic
    // went, funneled into the shared registry.
    if sfq_obs::prof::enabled() {
        sfq_obs::prof::count("prep_cycles", prep_cycles);
        sfq_obs::prof::count("compute_cycles", compute_cycles);
        sfq_obs::prof::count("stall_cycles", stall_cycles);
        sfq_obs::prof::count("macs", macs_total);
        sfq_obs::prof::count("dram_bytes", dram_bytes);
    }
    if sfq_obs::enabled() {
        sfq_obs::inc("npusim.layer.count");
        sfq_obs::add("npusim.layer.prep_cycles", prep_cycles);
        sfq_obs::add("npusim.layer.compute_cycles", compute_cycles);
        sfq_obs::add("npusim.layer.stall_cycles", stall_cycles);
        sfq_obs::add("npusim.layer.dram_bytes", dram_bytes);
        sfq_obs::add("npusim.layer.macs", macs_total);
        sfq_obs::add("npusim.layer.mappings", mappings.len() as u64);
        if fault_counts.total() > 0 {
            sfq_obs::add("npusim.faults.dropped_pulses", fault_counts.dropped_pulses);
            sfq_obs::add(
                "npusim.faults.timing_violations",
                fault_counts.timing_violations,
            );
            sfq_obs::add("npusim.faults.stuck_macs", fault_counts.stuck_macs);
        }
    }

    LayerStats {
        name: layer.name().to_owned(),
        prep_cycles,
        compute_cycles,
        stall_cycles,
        macs: macs_total,
        dram_bytes,
        mappings: mappings.len() as u64,
        energy,
        faults: fault_counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::Layer;

    fn conv() -> Layer {
        Layer::conv("c", (56, 56), 64, 64, 3, 1, 1)
    }

    #[test]
    fn macs_match_layer_accounting() {
        let cfg = SimConfig::paper_baseline();
        let l = conv();
        let s = simulate_layer(&cfg, &l, 4, true);
        assert_eq!(s.macs, l.macs(4));
    }

    #[test]
    fn baseline_is_prep_dominated() {
        // Fig. 15: >90% of Baseline cycles are preparation.
        let cfg = SimConfig::paper_baseline();
        let s = simulate_layer(&cfg, &conv(), 1, true);
        let prep = s.prep_cycles + s.stall_cycles;
        assert!(
            prep as f64 / s.total_cycles() as f64 > 0.8,
            "prep fraction {:.2}",
            prep as f64 / s.total_cycles() as f64
        );
    }

    #[test]
    fn chunked_design_slashes_prep() {
        let base = SimConfig::paper_baseline();
        let opt = SimConfig::paper_buffer_opt();
        let l = conv();
        let s0 = simulate_layer(&base, &l, 1, true);
        let s1 = simulate_layer(&opt, &l, 1, true);
        assert!(
            s1.prep_cycles * 4 < s0.prep_cycles,
            "chunked prep {} vs monolithic {}",
            s1.prep_cycles,
            s0.prep_cycles
        );
    }

    #[test]
    fn nonresident_ifmap_adds_traffic() {
        let cfg = SimConfig::paper_supernpu();
        let l = conv();
        let resident = simulate_layer(&cfg, &l, 1, true);
        let cold = simulate_layer(&cfg, &l, 1, false);
        assert_eq!(cold.dram_bytes - resident.dram_bytes, l.ifmap_bytes(1));
    }

    #[test]
    fn fc_layers_stall_on_weights() {
        // FC weights dwarf on-chip prep: stalls dominate.
        let cfg = SimConfig::paper_supernpu();
        let l = Layer::fully_connected("fc", 9216, 4096);
        let s = simulate_layer(&cfg, &l, 1, true);
        assert!(
            s.stall_cycles > s.prep_cycles,
            "stall {} prep {}",
            s.stall_cycles,
            s.prep_cycles
        );
        assert!(s.dram_bytes >= l.weight_bytes());
    }

    #[test]
    fn batch_amortizes_prep() {
        let cfg = SimConfig::paper_supernpu();
        let l = conv();
        let s1 = simulate_layer(&cfg, &l, 1, true);
        let s30 = simulate_layer(&cfg, &l, 30, true);
        // Compute scales ~30x, prep is constant per mapping.
        assert!(s30.compute_cycles > 25 * s1.compute_cycles);
        assert_eq!(s30.prep_cycles, s1.prep_cycles);
    }

    #[test]
    fn energy_positive_and_pe_dominated_for_conv() {
        let cfg = SimConfig::paper_supernpu();
        let s = simulate_layer(&cfg, &conv(), 8, true);
        let e = s.energy;
        assert!(e.pe_j > 0.0 && e.buffer_j > 0.0 && e.dau_j > 0.0 && e.nw_j > 0.0);
        assert!(e.pe_j > e.nw_j, "MAC energy should dominate NW hops");
    }
}
