//! Pulse-level fault models for the cycle simulator.
//!
//! SFQ logic encodes bits as picosecond flux pulses, so its dominant
//! failure modes differ from CMOS: a pulse can be *dropped* (a junction
//! fails to retransmit), a pulse can arrive *outside the hold window*
//! of a clocked gate (timing violation — concurrent-flow clocking gives
//! every gate a per-stage hold constraint), and a fabrication defect
//! can leave a PE *stuck* (its junctions never switch).
//!
//! The models here are deterministic expected-value accountings: for a
//! given [`PulseFaults`] description and layer workload, the corrupted
//! MAC counts are pure arithmetic over the layer's MAC total — the same
//! inputs always produce the same [`crate::FaultCounts`], independent
//! of thread count or sampling. Randomness lives one level up, in the
//! `sfq-faults` crate, which *draws* `PulseFaults` descriptions from a
//! seeded RNG and hands each draw to the simulator. This split keeps
//! the simulator dependency-free and bit-reproducible.
//!
//! Faults degrade *accuracy accounting*, not timing: cycles and energy
//! are charged as in the fault-free run (a dropped pulse still consumed
//! its clock edges), while [`crate::FaultCounts`] reports how many MACs
//! were corrupted, so callers can decide whether the run still meets
//! their accuracy bar — graceful degradation instead of an abort.

use serde::{Deserialize, Serialize};

use crate::stats::FaultCounts;

/// A pulse-level fault description for one simulated layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PulseFaults {
    /// Probability that a data pulse feeding a MAC is dropped in
    /// flight. Each dropped pulse corrupts one MAC.
    pub drop_rate: f64,
    /// Clock-to-data skew injected at the PE inputs, picoseconds
    /// (signed; only the magnitude matters for violations).
    pub skew_ps: f64,
    /// Per-stage hold window, picoseconds: skew magnitudes beyond this
    /// violate the hold constraint of concurrent-flow clocking.
    pub hold_ps: f64,
    /// Number of stuck (never-switching) PEs in the array.
    pub stuck_pes: u32,
}

impl PulseFaults {
    /// The fault-free description: every rate zero.
    pub fn none() -> Self {
        PulseFaults {
            drop_rate: 0.0,
            skew_ps: 0.0,
            hold_ps: 1.0,
            stuck_pes: 0,
        }
    }

    /// Whether this description injects nothing (the simulator skips
    /// the accounting entirely).
    pub fn is_clean(&self) -> bool {
        self.drop_rate <= 0.0 && self.stuck_pes == 0 && self.timing_violation_rate() <= 0.0
    }

    /// Fraction of clocked MAC events whose data pulse lands outside
    /// the hold window. Zero while `|skew| ≤ hold`; beyond that the
    /// excess fraction of the skew violates, saturating at 1.
    pub fn timing_violation_rate(&self) -> f64 {
        let skew = self.skew_ps.abs();
        let hold = self.hold_ps.max(0.0);
        if !skew.is_finite() {
            return 1.0;
        }
        if skew <= hold || skew == 0.0 {
            0.0
        } else {
            ((skew - hold) / skew).clamp(0.0, 1.0)
        }
    }

    /// Fraction of the `height × width` PE array that is stuck.
    pub fn stuck_fraction(&self, height: u32, width: u32) -> f64 {
        let total = u64::from(height) * u64::from(width);
        if total == 0 {
            return 0.0;
        }
        (f64::from(self.stuck_pes) / total as f64).clamp(0.0, 1.0)
    }

    /// Deterministic expected-value fault accounting for a layer that
    /// performed `macs` MACs on a `height × width` array.
    pub fn counts_for(&self, macs: u64, height: u32, width: u32) -> FaultCounts {
        let expected = |rate: f64| -> u64 {
            let r = if rate.is_finite() {
                rate.clamp(0.0, 1.0)
            } else {
                1.0
            };
            (r * macs as f64).round() as u64
        };
        FaultCounts {
            dropped_pulses: expected(self.drop_rate),
            timing_violations: expected(self.timing_violation_rate()),
            stuck_macs: expected(self.stuck_fraction(height, width)),
        }
    }
}

impl Default for PulseFaults {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_plan_counts_nothing() {
        let f = PulseFaults::none();
        assert!(f.is_clean());
        assert_eq!(f.counts_for(1_000_000, 256, 256), FaultCounts::default());
    }

    #[test]
    fn drop_rate_scales_with_macs() {
        let f = PulseFaults {
            drop_rate: 1e-3,
            ..PulseFaults::none()
        };
        let c = f.counts_for(2_000_000, 256, 256);
        assert_eq!(c.dropped_pulses, 2000);
        assert_eq!(c.timing_violations, 0);
        assert_eq!(c.stuck_macs, 0);
    }

    #[test]
    fn skew_within_hold_is_free_beyond_violates() {
        let safe = PulseFaults {
            skew_ps: 0.8,
            hold_ps: 1.0,
            ..PulseFaults::none()
        };
        assert_eq!(safe.timing_violation_rate(), 0.0);
        assert!(safe.is_clean());

        let viol = PulseFaults {
            skew_ps: -2.0,
            hold_ps: 1.0,
            ..PulseFaults::none()
        };
        assert!((viol.timing_violation_rate() - 0.5).abs() < 1e-12);
        let c = viol.counts_for(100, 16, 16);
        assert_eq!(c.timing_violations, 50);
    }

    #[test]
    fn stuck_pes_corrupt_their_share() {
        let f = PulseFaults {
            stuck_pes: 64,
            ..PulseFaults::none()
        };
        // 64 of 256×256 PEs: 1/1024 of the MACs.
        let c = f.counts_for(1_024_000, 256, 256);
        assert_eq!(c.stuck_macs, 1000);
        // More stuck PEs than the array holds saturates at 1.
        let all = PulseFaults {
            stuck_pes: u32::MAX,
            ..PulseFaults::none()
        };
        assert_eq!(all.counts_for(10, 4, 4).stuck_macs, 10);
    }

    #[test]
    fn pathological_rates_saturate_instead_of_exploding() {
        let f = PulseFaults {
            drop_rate: f64::INFINITY,
            skew_ps: f64::NAN,
            hold_ps: -1.0,
            stuck_pes: 5,
        };
        let c = f.counts_for(100, 0, 0);
        assert_eq!(c.dropped_pulses, 100);
        assert_eq!(c.timing_violations, 100);
        assert_eq!(c.stuck_macs, 0); // zero-sized array: nothing to corrupt
    }
}
