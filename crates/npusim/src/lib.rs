//! # sfq-npu-sim
//!
//! The performance half of the SuperNPU framework: a cycle-based
//! simulator for weight-stationary SFQ NPUs with shift-register
//! on-chip buffers (paper §IV-B and §V).
//!
//! For every weight mapping of every layer the simulator charges:
//!
//! * **preparation cycles** — the SFQ-specific cost: weight loading,
//!   shift-register rotation/rewind of the ifmap buffer (a full row
//!   pass for monolithic buffers, one chunk for divided buffers),
//!   psum migration between separate psum/ofmap buffers, and ofmap
//!   flushes when no spare chunk exists,
//! * **computation cycles** — systolic streaming of `batch × output
//!   pixels` (times the per-PE register reuse factor) plus pipeline
//!   fill,
//! * **memory stalls** — DRAM traffic over a fixed bandwidth,
//!   overlapped with on-chip shifting (`max(shift, dram)`),
//!
//! and integrates per-event switching energies from the estimator into
//! chip power.
//!
//! # Example
//!
//! ```
//! use sfq_npu_sim::{SimConfig, simulate_network};
//! use dnn_models::zoo;
//!
//! let cfg = SimConfig::paper_supernpu();
//! let stats = simulate_network(&cfg, &zoo::resnet50());
//! assert!(stats.effective_tmacs() > 1.0, "SuperNPU sustains TMAC/s-scale throughput");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
pub mod chrome;
mod config;
mod faults;
pub mod functional;
mod layersim;
mod mapping;
mod memory;
mod netsim;
mod stall;
mod stats;
mod trace;

pub use batch::{structural_max_batch, BatchPolicy};
pub use chrome::{chrome_cycle_trace, trace_network};
pub use config::{validate_npu, ConfigError, EnergyModel, SimConfig};
pub use faults::PulseFaults;
pub use layersim::{simulate_layer, simulate_layer_with_faults};
pub use mapping::{enumerate_mappings, WeightMapping};
pub use memory::DramModel;
pub use netsim::{simulate_network, simulate_network_with_batch, simulate_network_with_fault_plan};
pub use stall::{analyze_stalls, StallReport};
pub use stats::{EnergyBreakdown, FaultCounts, LayerStats, NetworkStats};
pub use trace::{trace_layer, AccessKind, LayerTrace, TraceEvent};
