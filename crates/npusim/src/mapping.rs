//! Weight-mapping enumeration for the weight-stationary dataflow.
//!
//! A conv layer's `R·S·C` contraction elements map onto PE-array rows
//! and its `K` filters onto columns; with `nreg` weight registers per
//! PE a column holds `nreg` filters. Every (row-group, column-group)
//! pair is one *weight mapping* — the unit of work whose preparation
//! overhead dominates naïve SFQ designs (paper Fig. 15).

use dnn_models::Layer;
use serde::{Deserialize, Serialize};
use sfq_estimator::NpuConfig;

/// One weight mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeightMapping {
    /// Row-group index (which slice of the contraction dimension).
    pub row_group: u32,
    /// Column-group index (which slice of the filter dimension).
    pub col_group: u32,
    /// Contraction elements actually mapped (≤ array height).
    pub active_rows: u32,
    /// Filters actually mapped (≤ width × regs).
    pub active_filters: u32,
    /// Physical columns occupied.
    pub active_cols: u32,
    /// Filters resident per PE in this mapping (1..=regs): the ifmap
    /// stream repeats this many times per pixel.
    pub reuse_per_pe: u32,
    /// Whether partial sums from a previous row group must be
    /// re-accumulated (triggers psum migration on separate-buffer
    /// designs).
    pub accumulates: bool,
}

impl WeightMapping {
    /// MAC operations this mapping performs for `batch` images of a
    /// layer producing `out_pixels` pixels per image.
    pub fn macs(&self, out_pixels: u64, batch: u32) -> u64 {
        out_pixels * u64::from(batch) * u64::from(self.active_rows) * u64::from(self.active_filters)
    }
}

/// Enumerate all weight mappings of `layer` on `npu`.
///
/// Depthwise layers map their `R·S` per-channel contraction onto rows
/// and their channels onto columns, so the mapping count is driven by
/// the channel count (the paper's MobileNet discussion).
pub fn enumerate_mappings(layer: &Layer, npu: &NpuConfig) -> Vec<WeightMapping> {
    let height = u64::from(npu.array_height);
    let width = u64::from(npu.array_width);
    let regs = u64::from(npu.regs_per_pe);

    let contraction = layer.contraction_len();
    let filters = layer.filter_count();
    let cols_capacity = width * regs;

    let row_groups = contraction.div_ceil(height);
    let col_groups = filters.div_ceil(cols_capacity);

    let mut out = Vec::with_capacity((row_groups * col_groups) as usize);
    for gc in 0..col_groups {
        for gr in 0..row_groups {
            let active_rows = (contraction - gr * height).min(height) as u32;
            let active_filters = (filters - gc * cols_capacity).min(cols_capacity) as u32;
            // Spread filters across physical columns first; only stack
            // into the per-PE registers when the width is exhausted
            // (stacking costs ifmap stream repetitions).
            let active_cols = u64::from(active_filters).min(width) as u32;
            let reuse_per_pe = u64::from(active_filters).div_ceil(u64::from(active_cols)) as u32;
            out.push(WeightMapping {
                row_group: gr as u32,
                col_group: gc as u32,
                active_rows,
                active_filters,
                active_cols,
                reuse_per_pe,
                accumulates: gr > 0,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::Layer;

    fn baseline() -> NpuConfig {
        NpuConfig::paper_baseline()
    }

    #[test]
    fn small_layer_is_one_mapping() {
        // 3x3x16 contraction = 144 rows ≤ 256; 64 filters ≤ 256 cols.
        let l = Layer::conv("c", (28, 28), 16, 64, 3, 1, 1);
        let m = enumerate_mappings(&l, &baseline());
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].active_rows, 144);
        assert_eq!(m[0].active_filters, 64);
        assert!(!m[0].accumulates);
    }

    #[test]
    fn deep_layer_tiles_rows() {
        // 3x3x512 = 4608 contraction over 256 rows = 18 row groups.
        let l = Layer::conv("c", (14, 14), 512, 512, 3, 1, 1);
        let m = enumerate_mappings(&l, &baseline());
        assert_eq!(m.len(), 18 * 2);
        // All but the first row group of each column group accumulate.
        let accum = m.iter().filter(|w| w.accumulates).count();
        assert_eq!(accum, 17 * 2);
    }

    #[test]
    fn registers_shrink_column_groups() {
        let l = Layer::conv("c", (14, 14), 512, 512, 3, 1, 1);
        let super_npu = NpuConfig::paper_supernpu(); // width 64, 8 regs
        let m = enumerate_mappings(&l, &super_npu);
        // 512 filters / (64 × 8) = 1 column group.
        assert_eq!(m.iter().map(|w| w.col_group).max().unwrap(), 0);
        assert_eq!(m[0].reuse_per_pe, 8);
    }

    #[test]
    fn mapping_macs_sum_to_layer_macs() {
        for npu in [NpuConfig::paper_baseline(), NpuConfig::paper_supernpu()] {
            for l in [
                Layer::conv("a", (28, 28), 192, 64, 1, 1, 0),
                Layer::conv("b", (14, 14), 512, 512, 3, 1, 1),
                Layer::depthwise("d", (56, 56), 128, 3, 1),
                Layer::fully_connected("f", 9216, 4096),
            ] {
                let batch = 3;
                let total: u64 = enumerate_mappings(&l, &npu)
                    .iter()
                    .map(|m| m.macs(l.output_pixels(), batch))
                    .sum();
                assert_eq!(total, l.macs(batch), "{} on {}", l.name(), npu.name);
            }
        }
    }

    #[test]
    fn depthwise_uses_few_rows() {
        let l = Layer::depthwise("dw", (14, 14), 512, 3, 1);
        let m = enumerate_mappings(&l, &baseline());
        assert!(m.iter().all(|w| w.active_rows == 9));
        // 512 channels over 256 columns = 2 column groups.
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn reuse_never_exceeds_regs() {
        let npu = NpuConfig::paper_supernpu();
        let l = Layer::conv("c", (7, 7), 832, 384, 1, 1, 0);
        for m in enumerate_mappings(&l, &npu) {
            assert!(m.reuse_per_pe >= 1 && m.reuse_per_pe <= npu.regs_per_pe);
            assert!(m.active_cols <= npu.array_width);
        }
    }
}
