//! Property-based tests of the mapping and cycle models.

use dnn_models::Layer;
use proptest::prelude::*;
use sfq_estimator::NpuConfig;
use sfq_npu_sim::{enumerate_mappings, simulate_layer, SimConfig};

fn conv_layer() -> impl Strategy<Value = Layer> {
    (
        4u32..=56,
        1u32..=128,
        1u32..=512,
        prop_oneof![Just(1u32), Just(3), Just(5)],
        1u32..=2,
    )
        .prop_map(|(hw, c, k, kernel, stride)| {
            Layer::conv("p", (hw, hw), c, k, kernel, stride, kernel / 2)
        })
}

fn npu_config() -> impl Strategy<Value = NpuConfig> {
    (
        prop_oneof![Just(16u32), Just(64), Just(128), Just(256)], // width
        prop_oneof![Just(1u32), Just(2), Just(8)],                // regs
        prop_oneof![Just(1u32), Just(16), Just(256)],             // division
        any::<bool>(),                                            // integrated
    )
        .prop_map(|(width, regs, division, integrated)| NpuConfig {
            name: "prop".into(),
            array_width: width,
            regs_per_pe: regs,
            division,
            integrated_output: integrated,
            psum_buf_bytes: if integrated { 0 } else { 8 * 1024 * 1024 },
            ..NpuConfig::paper_baseline()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Mapping enumeration conserves MACs exactly for every layer and
    /// machine shape.
    #[test]
    fn mapping_macs_conserved(l in conv_layer(), npu in npu_config(), batch in 1u32..=8) {
        let total: u64 = enumerate_mappings(&l, &npu)
            .iter()
            .map(|m| m.macs(l.output_pixels(), batch))
            .sum();
        prop_assert_eq!(total, l.macs(batch));
    }

    /// Mappings respect the physical array bounds.
    #[test]
    fn mapping_bounds(l in conv_layer(), npu in npu_config()) {
        for m in enumerate_mappings(&l, &npu) {
            prop_assert!(m.active_rows >= 1 && m.active_rows <= npu.array_height);
            prop_assert!(m.active_cols >= 1 && m.active_cols <= npu.array_width);
            prop_assert!(m.reuse_per_pe >= 1 && m.reuse_per_pe <= npu.regs_per_pe);
            prop_assert!(u64::from(m.active_filters)
                <= u64::from(npu.array_width) * u64::from(npu.regs_per_pe));
        }
    }

    /// Exactly the first row group of each column group starts a fresh
    /// accumulation.
    #[test]
    fn accumulation_flags(l in conv_layer(), npu in npu_config()) {
        let maps = enumerate_mappings(&l, &npu);
        for m in &maps {
            prop_assert_eq!(m.accumulates, m.row_group > 0);
        }
        let col_groups = maps.iter().map(|m| m.col_group).max().unwrap() + 1;
        let fresh = maps.iter().filter(|m| !m.accumulates).count() as u32;
        prop_assert_eq!(fresh, col_groups);
    }

    /// Layer simulation invariants: positive cycles, conserved MACs,
    /// finite energy.
    #[test]
    fn layer_sim_invariants(l in conv_layer(), batch in 1u32..=4) {
        let cfg = SimConfig::paper_supernpu();
        let s = simulate_layer(&cfg, &l, batch, true);
        prop_assert!(s.compute_cycles > 0);
        prop_assert_eq!(s.macs, l.macs(batch));
        let e = s.energy.total_j();
        prop_assert!(e.is_finite() && e > 0.0);
        prop_assert!(s.dram_bytes >= l.weight_bytes());
    }

    /// Dividing the buffers more never makes preparation slower.
    #[test]
    fn division_never_hurts_prep(l in conv_layer()) {
        let lib = sfq_cells::CellLibrary::aist_10um();
        let mut prev = u64::MAX;
        for division in [1u32, 4, 16, 64, 256] {
            let npu = NpuConfig {
                division,
                integrated_output: division > 1,
                psum_buf_bytes: if division > 1 { 0 } else { 8 * 1024 * 1024 },
                ..NpuConfig::paper_baseline()
            };
            let cfg = SimConfig::from_npu(npu, &lib);
            let s = simulate_layer(&cfg, &l, 1, true);
            prop_assert!(s.prep_cycles <= prev, "division {} prep {}", division, s.prep_cycles);
            prev = s.prep_cycles;
        }
    }
}

mod functional_equivalence {
    use super::*;
    use sfq_npu_sim::functional::{golden_conv, run_conv_ws, Tensor3, Tensor4};

    fn small_conv() -> impl Strategy<Value = Layer> {
        (
            2u32..=6,
            1u32..=4,
            1u32..=9,
            prop_oneof![Just(1u32), Just(3)],
            1u32..=2,
        )
            .prop_map(|(hw, c, k, kernel, stride)| {
                Layer::conv(
                    "p",
                    (hw.max(kernel), hw.max(kernel)),
                    c,
                    k,
                    kernel,
                    stride,
                    kernel / 2,
                )
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The cycle-stepped weight-stationary array computes exactly
        /// the golden convolution for arbitrary small layers and array
        /// geometries — rows, columns and registers all tiling.
        #[test]
        fn systolic_equals_golden(
            l in small_conv(),
            height in prop_oneof![Just(4u32), Just(8), Just(16)],
            width in prop_oneof![Just(2u32), Just(3), Just(8)],
            regs in prop_oneof![Just(1u32), Just(2), Just(4)],
            seed in 0u64..1000,
        ) {
            let (h, w) = l.input_hw();
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
            let mut gen = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 32) as i32 % 13) - 6
            };
            let ifmap = Tensor3::from_fn(h as usize, w as usize, l.in_channels() as usize, |_, _, _| gen());
            let weights = Tensor4::from_fn(
                l.out_channels() as usize,
                l.kernel() as usize,
                l.kernel() as usize,
                l.in_channels() as usize,
                |_, _, _, _| gen(),
            );
            let golden = golden_conv(&l, &ifmap, &weights);
            let systolic = run_conv_ws(&l, &ifmap, &weights, height, width, regs);
            prop_assert_eq!(systolic, golden);
        }
    }
}
