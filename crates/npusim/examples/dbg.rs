use dnn_models::zoo;
use scale_sim as ss;
use sfq_npu_sim::*;
fn main() {
    let tpu = ss::CmosNpuConfig::tpu_core();
    for net in zoo::all() {
        let t = ss::simulate_network(&tpu, &net);
        println!(
            "TPU {:12} b{:2} {:6.2} TMAC/s util {:.3}",
            net.name(),
            t.batch,
            t.effective_tmacs(),
            t.pe_utilization()
        );
    }
    let designs = [
        SimConfig::paper_baseline(),
        SimConfig::paper_buffer_opt(),
        SimConfig::paper_resource_opt(),
        SimConfig::paper_supernpu(),
    ];
    for cfg in &designs {
        let mut log = 0.0;
        for net in zoo::all() {
            let s = simulate_network(cfg, &net);
            let t = ss::simulate_network(&tpu, &net);
            let ratio = s.effective_tmacs() / t.effective_tmacs();
            print!(
                " {:4}:{:6.2}",
                &net.name()[..4.min(net.name().len())],
                ratio
            );
            log += ratio.ln();
        }
        println!(
            "   {:14} geo speedup vs TPU = {:.2}",
            cfg.npu.name,
            (log / 6.0f64).exp()
        );
    }
}
