//! # sfq-chars
//!
//! Closes the loop between the circuit level and the architecture
//! level: characterize a [`sfq_cells::CellLibrary`] *from transient
//! simulation*, exactly how the paper's flow derives its gate
//! parameters from JSIM runs (§IV-A.1: "we extract all gate parameters
//! by running JSIM simulations").
//!
//! The measured cells are the ones `jjsim` implements (JTL, splitter,
//! DFF, clocked AND, shift register); the remaining library rows are
//! scaled from the measured AND using the shipped library's relative
//! proportions — the standard practice when only a subset of a family
//! has silicon-grade characterization.
//!
//! # Example
//!
//! ```no_run
//! let lib = sfq_chars::characterize().expect("transient runs converge");
//! assert!(lib.gate(sfq_cells::GateKind::Jtl).delay_ps > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use jjsim::extract::{
    and_clock_to_q, and_clock_to_q_many, and_cycle_energy, and_cycle_energy_many, dff_clock_to_q,
    dff_clock_to_q_many, dff_cycle_energy, dff_cycle_energy_many, jtl_characteristics,
    jtl_characteristics_many, max_shift_frequency, splitter_delay, splitter_delay_many,
};
use jjsim::stdlib::{AndParams, DffParams, JtlParams};
use jjsim::SimError;
use parking_lot::RwLock;
use sfq_cells::{CellLibrary, DeviceParams, GateKind, GateParams};
use sfq_guard::{CancelToken, RunBudget};

/// Bias-network recharge energy per switched junction, attojoules
/// (Φ₀·I_b at the default 0.5·I_c bias point) — added to the shunt
/// dissipation the transient solver measures.
fn bias_recharge_aj(bias_a: f64) -> f64 {
    bias_a * jjsim::PHI0 * 1e18
}

/// Raw measurements backing a characterization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurements {
    /// JTL per-stage delay, ps.
    pub jtl_delay_ps: f64,
    /// JTL per-switching shunt energy, aJ.
    pub jtl_energy_aj: f64,
    /// Splitter delay, ps.
    pub splitter_delay_ps: f64,
    /// DFF clock-to-Q, ps.
    pub dff_delay_ps: f64,
    /// DFF store+release shunt energy, aJ.
    pub dff_energy_aj: f64,
    /// Clocked-AND clock-to-Q, ps.
    pub and_delay_ps: f64,
    /// Clocked-AND evaluate shunt energy, aJ.
    pub and_energy_aj: f64,
    /// Maximum functional shift-register clock, GHz.
    pub sr_max_ghz: f64,
}

// ------------------------------------------------------- measurement cache

/// JTL chain length used by the JTL testbench.
const JTL_STAGES: usize = 8;
/// Shift-register frequency-bisection bounds, GHz.
const SR_BISECT_LO_GHZ: f64 = 5.0;
const SR_BISECT_HI_GHZ: f64 = 50.0;

/// Bit-exact fingerprint of every input feeding the testbenches: the
/// three cell parameter sets (as `f64::to_bits`) plus the testbench
/// scalars plus the ambient solver-relaxation level (a relaxed retry
/// solves with different adaptive bounds, so its results must never
/// share a cache slot with nominal ones). Two keys are equal iff the
/// transient runs would be bit-identical, so a cache hit can never
/// change a result.
type MeasureKey = [u64; 22];

fn measure_key(jtl: &JtlParams, dff: &DffParams, and: &AndParams) -> MeasureKey {
    [
        u64::from(sfq_guard::relax_level()),
        jtl.ic.to_bits(),
        jtl.bias_frac.to_bits(),
        jtl.l.to_bits(),
        jtl.input_amplitude.to_bits(),
        jtl.input_time.to_bits(),
        dff.ic_in.to_bits(),
        dff.ic_out.to_bits(),
        dff.l_store.to_bits(),
        dff.bias_store.to_bits(),
        dff.bias_out.to_bits(),
        dff.pulse_amplitude.to_bits(),
        and.ic_store.to_bits(),
        and.ic_out.to_bits(),
        and.l_store.to_bits(),
        and.bias_store.to_bits(),
        and.bias_out.to_bits(),
        and.pulse_amplitude.to_bits(),
        and.clock_amplitude.to_bits(),
        JTL_STAGES as u64,
        SR_BISECT_LO_GHZ.to_bits(),
        SR_BISECT_HI_GHZ.to_bits(),
    ]
}

/// Process-wide memo of completed measurement runs. A linear scan is
/// fine: there is one key per distinct parameter set, a handful per
/// process at most.
static MEASURE_CACHE: RwLock<Vec<(MeasureKey, Measurements)>> = RwLock::new(Vec::new());

// ------------------------------------------------ per-testbench memoization
//
// A sweep that perturbs one cell family's parameters (a margins probe,
// a Fig. 21/22 design point) used to re-run *every* testbench because
// the monolithic `MeasureKey` fingerprints all three parameter sets at
// once. The measurement is therefore split along testbench boundaries
// — the JTL benches depend only on `JtlParams`, the DFF benches only
// on `DffParams`, the AND benches only on `AndParams` — each with its
// own bit-exact key and memo, generalizing the margins probe memo of
// `jjsim::margins` to the whole characterization layer. Only the
// testbenches whose parameters actually changed between sweep points
// re-run their transients (observable via [`jjsim::transient_runs`]).

/// JTL-family raw measurements (JTL chain + splitter testbenches).
#[derive(Debug, Clone, Copy)]
struct JtlMeas {
    jtl_delay_ps: f64,
    jtl_energy_aj: f64,
    splitter_delay_ps: f64,
}

/// DFF-family raw measurements (clock-to-Q, cycle energy, and the
/// shift-register frequency bisection, which is built from DFFs).
#[derive(Debug, Clone, Copy)]
struct DffMeas {
    dff_delay_ps: f64,
    dff_energy_aj: f64,
    sr_max_ghz: f64,
}

/// Clocked-AND raw measurements.
#[derive(Debug, Clone, Copy)]
struct AndMeas {
    and_delay_ps: f64,
    and_energy_aj: f64,
}

// Like `MeasureKey`, each per-family key leads with the ambient
// solver-relaxation level: relaxed-retry results live in their own
// slots.
type JtlKey = [u64; 7];
type DffKey = [u64; 9];
type AndKey = [u64; 8];

fn jtl_bench_key(p: &JtlParams) -> JtlKey {
    [
        u64::from(sfq_guard::relax_level()),
        p.ic.to_bits(),
        p.bias_frac.to_bits(),
        p.l.to_bits(),
        p.input_amplitude.to_bits(),
        p.input_time.to_bits(),
        JTL_STAGES as u64,
    ]
}

fn dff_bench_key(p: &DffParams) -> DffKey {
    [
        u64::from(sfq_guard::relax_level()),
        p.ic_in.to_bits(),
        p.ic_out.to_bits(),
        p.l_store.to_bits(),
        p.bias_store.to_bits(),
        p.bias_out.to_bits(),
        p.pulse_amplitude.to_bits(),
        SR_BISECT_LO_GHZ.to_bits(),
        SR_BISECT_HI_GHZ.to_bits(),
    ]
}

fn and_bench_key(p: &AndParams) -> AndKey {
    [
        u64::from(sfq_guard::relax_level()),
        p.ic_store.to_bits(),
        p.ic_out.to_bits(),
        p.l_store.to_bits(),
        p.bias_store.to_bits(),
        p.bias_out.to_bits(),
        p.pulse_amplitude.to_bits(),
        p.clock_amplitude.to_bits(),
    ]
}

static JTL_BENCH_CACHE: RwLock<Vec<(JtlKey, JtlMeas)>> = RwLock::new(Vec::new());
static DFF_BENCH_CACHE: RwLock<Vec<(DffKey, DffMeas)>> = RwLock::new(Vec::new());
static AND_BENCH_CACHE: RwLock<Vec<(AndKey, AndMeas)>> = RwLock::new(Vec::new());

fn bench_cache_hit() {
    sfq_obs::inc("chars.bench.cache_hit");
}

fn bench_cache_miss() {
    sfq_obs::inc("chars.bench.cache_miss");
}

fn jtl_measurements(p: &JtlParams) -> Result<JtlMeas, SimError> {
    let key = jtl_bench_key(p);
    if let Some((_, m)) = JTL_BENCH_CACHE.read().iter().find(|(k, _)| *k == key) {
        bench_cache_hit();
        sfq_obs::prof::count("bench_cache_hit", 1);
        return Ok(*m);
    }
    bench_cache_miss();
    let _pf = sfq_obs::prof::frame("jtl_bench");
    let jtl = jtl_characteristics(JTL_STAGES, p)?;
    let m = JtlMeas {
        jtl_delay_ps: jtl.delay_s * 1e12,
        jtl_energy_aj: jtl.energy_j * 1e18,
        splitter_delay_ps: splitter_delay(p)? * 1e12,
    };
    let mut cache = JTL_BENCH_CACHE.write();
    if !cache.iter().any(|(k, _)| *k == key) {
        cache.push((key, m));
    }
    Ok(m)
}

fn dff_measurements(p: &DffParams) -> Result<DffMeas, SimError> {
    let key = dff_bench_key(p);
    if let Some((_, m)) = DFF_BENCH_CACHE.read().iter().find(|(k, _)| *k == key) {
        bench_cache_hit();
        sfq_obs::prof::count("bench_cache_hit", 1);
        return Ok(*m);
    }
    bench_cache_miss();
    let _pf = sfq_obs::prof::frame("dff_bench");
    let m = DffMeas {
        dff_delay_ps: dff_clock_to_q(p)? * 1e12,
        dff_energy_aj: dff_cycle_energy(p)? * 1e18,
        sr_max_ghz: max_shift_frequency(p, SR_BISECT_LO_GHZ, SR_BISECT_HI_GHZ)? / 1e9,
    };
    let mut cache = DFF_BENCH_CACHE.write();
    if !cache.iter().any(|(k, _)| *k == key) {
        cache.push((key, m));
    }
    Ok(m)
}

fn and_measurements(p: &AndParams) -> Result<AndMeas, SimError> {
    let key = and_bench_key(p);
    if let Some((_, m)) = AND_BENCH_CACHE.read().iter().find(|(k, _)| *k == key) {
        bench_cache_hit();
        sfq_obs::prof::count("bench_cache_hit", 1);
        return Ok(*m);
    }
    bench_cache_miss();
    let _pf = sfq_obs::prof::frame("and_bench");
    let m = AndMeas {
        and_delay_ps: and_clock_to_q(p)? * 1e12,
        and_energy_aj: and_cycle_energy(p)? * 1e18,
    };
    let mut cache = AND_BENCH_CACHE.write();
    if !cache.iter().any(|(k, _)| *k == key) {
        cache.push((key, m));
    }
    Ok(m)
}

/// Always-on `chars.measure.cache_hit` / `chars.measure.cache_miss`
/// counters in the [`sfq_obs`] registry (the former ad-hoc statics):
/// they record whether or not `SUPERNPU_METRICS` is set, so the
/// [`measure_cache_stats`] alias keeps its pre-registry behavior.
fn cache_counters() -> (&'static sfq_obs::Counter, &'static sfq_obs::Counter) {
    static C: OnceLock<(&'static sfq_obs::Counter, &'static sfq_obs::Counter)> = OnceLock::new();
    *C.get_or_init(|| {
        (
            sfq_obs::counter("chars.measure.cache_hit"),
            sfq_obs::counter("chars.measure.cache_miss"),
        )
    })
}

/// `(hits, misses)` of the measurement cache since process start (or
/// the last [`clear_measure_cache`]).
///
/// Deprecated alias: thin wrapper over the `chars.measure.cache_hit` /
/// `chars.measure.cache_miss` counters in the [`sfq_obs`] registry;
/// prefer reading those (or [`sfq_obs::snapshot`]) in new code.
pub fn measure_cache_stats() -> (u64, u64) {
    let (hits, misses) = cache_counters();
    (hits.get(), misses.get())
}

/// Drop all cached measurements (the assembled-measurement memo and
/// every per-testbench memo) and reset the hit/miss counters.
pub fn clear_measure_cache() {
    MEASURE_CACHE.write().clear();
    JTL_BENCH_CACHE.write().clear();
    DFF_BENCH_CACHE.write().clear();
    AND_BENCH_CACHE.write().clear();
    let (hits, misses) = cache_counters();
    hits.reset();
    misses.reset();
}

/// Run every transient testbench and collect the raw numbers.
///
/// Results are memoized process-wide on a bit-exact fingerprint of the
/// testbench inputs: repeated calls (the library is re-characterized by
/// every sweep that wants transient-grounded gate parameters) return
/// the cached [`Measurements`] without re-running any `jjsim`
/// transient — observable via [`jjsim::transient_runs`].
///
/// # Errors
///
/// Propagates any transient-solver failure. Errors are not cached.
pub fn measure() -> Result<Measurements, SimError> {
    measure_with(
        &JtlParams::default(),
        &DffParams::default(),
        &AndParams::default(),
    )
}

/// [`measure`] for explicit (possibly perturbed) cell parameters — the
/// entry point for sweeps that move a subset of the parameter space.
///
/// Memoization is two-level: an outer memo on the full parameter
/// fingerprint returns an assembled [`Measurements`] without touching
/// any testbench, and on an outer miss each testbench family (JTL,
/// DFF, clocked AND) consults its own memo keyed only on the
/// parameters that feed it. A sweep point that perturbs, say, the AND
/// parameters re-runs *only* the AND transients; the JTL and DFF
/// numbers are reused bit-identically from the previous point.
///
/// # Errors
///
/// Propagates any transient-solver failure. Errors are not cached.
pub fn measure_with(
    jtl_p: &JtlParams,
    dff_p: &DffParams,
    and_p: &AndParams,
) -> Result<Measurements, SimError> {
    let key = measure_key(jtl_p, dff_p, and_p);

    let _pf = sfq_obs::prof::frame("chars.measure");
    let (cache_hits, cache_misses) = cache_counters();
    if let Some((_, m)) = MEASURE_CACHE.read().iter().find(|(k, _)| *k == key) {
        cache_hits.inc();
        sfq_obs::prof::count("cache_hit", 1);
        return Ok(*m);
    }
    cache_misses.inc();
    sfq_obs::prof::count("cache_miss", 1);
    let fill_started = sfq_obs::enabled().then(Instant::now);
    let fill_frame = sfq_obs::prof::frame("fill");

    let jtl = jtl_measurements(jtl_p)?;
    let dff = dff_measurements(dff_p)?;
    let and = and_measurements(and_p)?;
    let m = Measurements {
        jtl_delay_ps: jtl.jtl_delay_ps,
        jtl_energy_aj: jtl.jtl_energy_aj,
        splitter_delay_ps: jtl.splitter_delay_ps,
        dff_delay_ps: dff.dff_delay_ps,
        dff_energy_aj: dff.dff_energy_aj,
        and_delay_ps: and.and_delay_ps,
        and_energy_aj: and.and_energy_aj,
        sr_max_ghz: dff.sr_max_ghz,
    };
    drop(fill_frame);
    if let Some(t0) = fill_started {
        sfq_obs::observe("chars.measure.fill_ms", t0.elapsed().as_secs_f64() * 1e3);
    }

    let mut cache = MEASURE_CACHE.write();
    if !cache.iter().any(|(k, _)| *k == key) {
        cache.push((key, m));
    }
    Ok(m)
}

/// Prefill one family's bench memo from lane-batched extractions.
/// Dedups the requested parameter sets against the memo (and within
/// the request) so each distinct point runs its transients exactly
/// once, batched [`jjsim::LANES`]-wide.
fn prefill_jtl_benches(ps: &[&JtlParams]) -> Result<(), SimError> {
    let mut missing: Vec<JtlParams> = Vec::new();
    let mut keys: Vec<JtlKey> = Vec::new();
    {
        let cache = JTL_BENCH_CACHE.read();
        for p in ps {
            let key = jtl_bench_key(p);
            if !keys.contains(&key) && !cache.iter().any(|(k, _)| *k == key) {
                keys.push(key);
                missing.push(**p);
            }
        }
    }
    if missing.is_empty() {
        return Ok(());
    }
    let _pf = sfq_obs::prof::frame("jtl_bench_batch");
    let chains = jtl_characteristics_many(JTL_STAGES, &missing)?;
    let splits = splitter_delay_many(&missing)?;
    let mut cache = JTL_BENCH_CACHE.write();
    for ((key, ex), split) in keys.into_iter().zip(chains).zip(splits) {
        if !cache.iter().any(|(k, _)| *k == key) {
            cache.push((
                key,
                JtlMeas {
                    jtl_delay_ps: ex.delay_s * 1e12,
                    jtl_energy_aj: ex.energy_j * 1e18,
                    splitter_delay_ps: split * 1e12,
                },
            ));
        }
    }
    Ok(())
}

fn prefill_dff_benches(ps: &[&DffParams]) -> Result<(), SimError> {
    let mut missing: Vec<DffParams> = Vec::new();
    let mut keys: Vec<DffKey> = Vec::new();
    {
        let cache = DFF_BENCH_CACHE.read();
        for p in ps {
            let key = dff_bench_key(p);
            if !keys.contains(&key) && !cache.iter().any(|(k, _)| *k == key) {
                keys.push(key);
                missing.push(**p);
            }
        }
    }
    if missing.is_empty() {
        return Ok(());
    }
    let _pf = sfq_obs::prof::frame("dff_bench_batch");
    let delays = dff_clock_to_q_many(&missing)?;
    let energies = dff_cycle_energy_many(&missing)?;
    // The shift-register search is a sequential bisection (each trial
    // period depends on the previous verdict) — it stays scalar per
    // point; the batched benches above already carry the bulk of the
    // transient load.
    let mut srs = Vec::with_capacity(missing.len());
    for p in &missing {
        srs.push(max_shift_frequency(p, SR_BISECT_LO_GHZ, SR_BISECT_HI_GHZ)? / 1e9);
    }
    let mut cache = DFF_BENCH_CACHE.write();
    for (((key, delay), energy), sr) in keys.into_iter().zip(delays).zip(energies).zip(srs) {
        if !cache.iter().any(|(k, _)| *k == key) {
            cache.push((
                key,
                DffMeas {
                    dff_delay_ps: delay * 1e12,
                    dff_energy_aj: energy * 1e18,
                    sr_max_ghz: sr,
                },
            ));
        }
    }
    Ok(())
}

fn prefill_and_benches(ps: &[&AndParams]) -> Result<(), SimError> {
    let mut missing: Vec<AndParams> = Vec::new();
    let mut keys: Vec<AndKey> = Vec::new();
    {
        let cache = AND_BENCH_CACHE.read();
        for p in ps {
            let key = and_bench_key(p);
            if !keys.contains(&key) && !cache.iter().any(|(k, _)| *k == key) {
                keys.push(key);
                missing.push(**p);
            }
        }
    }
    if missing.is_empty() {
        return Ok(());
    }
    let _pf = sfq_obs::prof::frame("and_bench_batch");
    let delays = and_clock_to_q_many(&missing)?;
    let energies = and_cycle_energy_many(&missing)?;
    let mut cache = AND_BENCH_CACHE.write();
    for ((key, delay), energy) in keys.into_iter().zip(delays).zip(energies) {
        if !cache.iter().any(|(k, _)| *k == key) {
            cache.push((
                key,
                AndMeas {
                    and_delay_ps: delay * 1e12,
                    and_energy_aj: energy * 1e18,
                },
            ));
        }
    }
    Ok(())
}

/// [`measure_with`] over many design points at once — the family
/// re-characterization entry point for sweeps.
///
/// Each cell family's testbenches run as [`jjsim::BatchedTransient`]
/// groups over all points whose parameters for that family are not
/// already memoized (distinct points only — duplicated parameter sets
/// are deduplicated first), then every point is assembled through the
/// ordinary [`measure_with`] memo path. With batching disabled
/// (`SUPERNPU_BATCH=0`), this degrades to exactly the per-point scalar
/// measurement.
///
/// # Errors
///
/// Propagates the first transient-solver failure. Errors are not
/// cached.
pub fn measure_many(
    points: &[(JtlParams, DffParams, AndParams)],
) -> Result<Vec<Measurements>, SimError> {
    if jjsim::batch_width() >= 2 && points.len() > 1 {
        let _pf = sfq_obs::prof::frame("chars.measure_many");
        prefill_jtl_benches(&points.iter().map(|p| &p.0).collect::<Vec<_>>())?;
        prefill_dff_benches(&points.iter().map(|p| &p.1).collect::<Vec<_>>())?;
        prefill_and_benches(&points.iter().map(|p| &p.2).collect::<Vec<_>>())?;
    }
    points
        .iter()
        .map(|(jtl_p, dff_p, and_p)| measure_with(jtl_p, dff_p, and_p))
        .collect()
}

/// Turn measurements into a full cell library.
///
/// Measured rows (JTL, splitter, DFF, AND) use their transient delays
/// and bias-corrected energies; the DFF's setup/hold split is derived
/// from the measured shift-register clock limit
/// (`setup + hold = 1/f_max − data/clock transit`), and the other
/// clocked gates inherit the reference library's proportions relative
/// to its AND row. JJ counts and static power keep the reference
/// values (they are structural, not timing, properties).
pub fn library_from(m: &Measurements) -> CellLibrary {
    let reference = CellLibrary::aist_10um();
    let ref_and = reference.gate(GateKind::And);

    // Timing scale factor for unmeasured clocked gates.
    let delay_scale = m.and_delay_ps / ref_and.delay_ps;
    // Setup + hold window from the SR functional limit: the counter-
    // flow cycle covers setup + hold + data + clock transit; transit is
    // roughly the measured DFF delay plus half a JTL.
    let sr_cct_ps = 1000.0 / m.sr_max_ghz;
    let window = (sr_cct_ps - m.dff_delay_ps - 0.5 * m.jtl_delay_ps).max(2.0);
    let ref_dff = reference.gate(GateKind::Dff);
    let ref_window = ref_dff.setup_ps + ref_dff.hold_ps;
    let window_scale = window / ref_window;

    let mut gates = BTreeMap::new();
    for (kind, r) in reference.iter() {
        let g = match kind {
            GateKind::Jtl => GateParams {
                delay_ps: m.jtl_delay_ps,
                energy_aj: 2.0 * (m.jtl_energy_aj + bias_recharge_aj(0.7e-4)),
                ..*r
            },
            GateKind::Splitter => GateParams {
                delay_ps: m.splitter_delay_ps,
                // The splitter's hub junction has doubled critical
                // current: twice the per-switching energy of a JTL
                // junction at the same bias fraction.
                energy_aj: 2.0 * (m.jtl_energy_aj + bias_recharge_aj(0.7e-4)),
                ..*r
            },
            GateKind::Dff => GateParams {
                delay_ps: m.dff_delay_ps.max(1.0),
                setup_ps: r.setup_ps * window_scale,
                hold_ps: r.hold_ps * window_scale,
                energy_aj: 0.5 * (m.dff_energy_aj + bias_recharge_aj(1.0e-4)),
                ..*r
            },
            GateKind::And => GateParams {
                delay_ps: m.and_delay_ps,
                setup_ps: r.setup_ps * window_scale,
                hold_ps: r.hold_ps * window_scale,
                energy_aj: m.and_energy_aj + bias_recharge_aj(1.5e-4),
                ..*r
            },
            // Unmeasured gates: scale timing from the reference's
            // proportions against its AND row.
            _ => GateParams {
                delay_ps: r.delay_ps * delay_scale,
                setup_ps: r.setup_ps * window_scale,
                hold_ps: r.hold_ps * window_scale,
                ..*r
            },
        };
        gates.insert(kind, g);
    }
    CellLibrary::new(DeviceParams::aist_10um(), gates)
        .unwrap_or_else(|e| unreachable!("characterized parameters are positive and complete: {e}"))
}

/// Measure and build in one call.
///
/// # Errors
///
/// Propagates any transient-solver failure.
pub fn characterize() -> Result<CellLibrary, SimError> {
    Ok(library_from(&measure()?))
}

/// [`characterize`] for explicit cell parameters, with
/// [`measure_with`]'s incremental per-testbench memoization.
///
/// # Errors
///
/// Propagates any transient-solver failure.
pub fn characterize_with(
    jtl_p: &JtlParams,
    dff_p: &DffParams,
    and_p: &AndParams,
) -> Result<CellLibrary, SimError> {
    Ok(library_from(&measure_with(jtl_p, dff_p, and_p)?))
}

// ------------------------------------------------- guarded measurement

/// How a [`measure_resilient`] result was obtained — the rung of the
/// degradation ladder that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeasureSource {
    /// First-attempt transient measurement under nominal solver
    /// options — the golden path.
    Transient,
    /// The transient succeeded on retry number `.0` (1-based) with
    /// relaxed adaptive bounds (`dt_min` tightened, `lte_tol`
    /// loosened by 4^attempt).
    Retried(u32),
    /// Every transient attempt blew its budget; the reference
    /// (closed-form) measurements were substituted. The point is
    /// *degraded*, not lost.
    Fallback,
}

/// A value labeled with the ladder rung that produced it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Guarded<T> {
    /// The measurement or library.
    pub value: T,
    /// Which ladder rung produced it.
    pub source: MeasureSource,
}

impl<T> Guarded<T> {
    /// True when the value did not come from the nominal first
    /// attempt (retried or fallback).
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.source != MeasureSource::Transient
    }
}

/// Budget/retry policy for [`measure_resilient`].
#[derive(Debug, Clone, Default)]
pub struct GuardPolicy {
    /// Wall-clock budget per attempt (`None` = no deadline). Retry
    /// `k` gets `(k + 1) ×` this budget — later rungs are both
    /// cheaper (relaxed bounds) and given more room.
    pub attempt_timeout: Option<Duration>,
    /// How many relaxed retries before degrading to the reference
    /// measurements.
    pub retries: u32,
    /// Optional cooperative cancel shared with the caller's sweep.
    pub cancel: Option<CancelToken>,
}

impl GuardPolicy {
    /// Policy from the environment: `SUPERNPU_DEADLINE_MS` (per
    /// attempt) and `SUPERNPU_RETRIES`.
    #[must_use]
    pub fn from_env() -> Self {
        GuardPolicy {
            attempt_timeout: sfq_guard::deadline_ms_env().map(Duration::from_millis),
            retries: sfq_guard::retries_env(),
            cancel: None,
        }
    }

    /// Builder: attach a cancel token.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    fn attempt_budget(&self, attempt: u32, cancel: Option<&CancelToken>) -> RunBudget {
        let mut b = RunBudget::unlimited();
        if let Some(t) = self.attempt_timeout {
            b = b.with_deadline(t.saturating_mul(attempt + 1));
        }
        if let Some(c) = cancel {
            b = b.with_cancel(c.clone());
        }
        b
    }
}

/// Reference measurements derived from the shipped
/// [`CellLibrary::aist_10um`] rows by inverting [`library_from`]'s
/// energy corrections and shift-register window formula — the bottom
/// rung of the degradation ladder. `library_from(&reference_measurements())`
/// reproduces the reference library's measured rows, so a degraded
/// design point is evaluated closed-form on the shipped library
/// instead of being dropped.
#[must_use]
pub fn reference_measurements() -> Measurements {
    let reference = CellLibrary::aist_10um();
    let jtl = reference.gate(GateKind::Jtl);
    let split = reference.gate(GateKind::Splitter);
    let dff = reference.gate(GateKind::Dff);
    let and = reference.gate(GateKind::And);
    let jtl_delay_ps = jtl.delay_ps;
    let dff_delay_ps = dff.delay_ps;
    // Invert the SR window relation used by `library_from`:
    // window = 1000/sr_max − dff_delay − jtl_delay/2.
    let sr_cct_ps = dff.setup_ps + dff.hold_ps + dff_delay_ps + 0.5 * jtl_delay_ps;
    Measurements {
        jtl_delay_ps,
        jtl_energy_aj: (jtl.energy_aj / 2.0 - bias_recharge_aj(0.7e-4)).max(0.01),
        splitter_delay_ps: split.delay_ps,
        dff_delay_ps,
        dff_energy_aj: (2.0 * dff.energy_aj - bias_recharge_aj(1.0e-4)).max(0.01),
        and_delay_ps: and.delay_ps,
        and_energy_aj: (and.energy_aj - bias_recharge_aj(1.5e-4)).max(0.01),
        sr_max_ghz: 1000.0 / sr_cct_ps,
    }
}

/// Budget-aware [`measure_with`]: the degradation ladder.
///
/// 1. **Transient** — nominal measurement under the policy's
///    per-attempt deadline.
/// 2. **Relaxed retries** — on a budget stop or convergence failure,
///    retry under exponential backoff with the ambient relaxation
///    level raised (the solver tightens `dt_min` and loosens
///    `lte_tol` by 4^attempt; results cache under their own
///    relax-fingerprinted keys, so nominal cache entries stay pure).
/// 3. **Fallback** — after the last retry, substitute
///    [`reference_measurements`] and label the point
///    [`MeasureSource::Fallback`] rather than losing it.
///
/// Cache consistency under interruption is structural: every memo
/// inserts only *complete* entries after a successful solve, so a
/// deadline or cancellation mid-measure leaves the caches exactly as
/// they were before the failed attempt.
///
/// # Errors
///
/// [`SimError::Cancelled`] propagates (the caller asked everything to
/// stop — no retry, no fallback), as do structural errors
/// ([`SimError::InvalidParameter`] and friends) that no retry can fix.
pub fn measure_resilient(
    jtl_p: &JtlParams,
    dff_p: &DffParams,
    and_p: &AndParams,
    policy: &GuardPolicy,
) -> Result<Guarded<Measurements>, SimError> {
    // Inherit the sweep's cancel token when the policy has none: the
    // attempt scope shadows any ambient budget, and a cancelled sweep
    // must still cancel the measurement inside.
    let ambient_cancel = sfq_guard::active().and_then(|b| b.cancel_token().cloned());
    let cancel = policy.cancel.clone().or(ambient_cancel);
    for attempt in 0..=policy.retries {
        if cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Err(SimError::Cancelled { time: 0.0 });
        }
        let budget = policy.attempt_budget(attempt, cancel.as_ref());
        let result = sfq_guard::scope(&budget, || {
            sfq_guard::with_relax(attempt, || measure_with(jtl_p, dff_p, and_p))
        });
        match result {
            Ok(m) => {
                let source = if attempt == 0 {
                    MeasureSource::Transient
                } else {
                    sfq_obs::inc("guard.measure.retried");
                    MeasureSource::Retried(attempt)
                };
                return Ok(Guarded { value: m, source });
            }
            Err(e) if e.is_cancelled() => return Err(e),
            Err(e)
                if e.is_budget()
                    || matches!(
                        e,
                        SimError::NoConvergence { .. }
                            | SimError::SingularMatrix { .. }
                            | SimError::NonConvergent { .. }
                    ) =>
            {
                if attempt < policy.retries {
                    sfq_guard::sleep_backoff(attempt + 1);
                }
            }
            Err(e) => return Err(e),
        }
    }
    sfq_obs::inc("guard.measure.degraded");
    Ok(Guarded {
        value: reference_measurements(),
        source: MeasureSource::Fallback,
    })
}

/// [`characterize_with`] through the [`measure_resilient`] ladder: a
/// library is always produced (degraded to the reference rows at
/// worst) unless the run is cancelled or structurally invalid.
///
/// # Errors
///
/// Same as [`measure_resilient`].
pub fn characterize_resilient(
    jtl_p: &JtlParams,
    dff_p: &DffParams,
    and_p: &AndParams,
    policy: &GuardPolicy,
) -> Result<Guarded<CellLibrary>, SimError> {
    let m = measure_resilient(jtl_p, dff_p, and_p, policy)?;
    Ok(Guarded {
        value: library_from(&m.value),
        source: m.source,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurements_are_physical() {
        let m = measure().expect("transients converge");
        assert!(m.jtl_delay_ps > 1.0 && m.jtl_delay_ps < 15.0);
        assert!(m.splitter_delay_ps > 1.0 && m.splitter_delay_ps < 20.0);
        assert!(m.dff_delay_ps > 0.5 && m.dff_delay_ps < 20.0);
        assert!(m.and_delay_ps > 1.0 && m.and_delay_ps < 25.0);
        assert!(m.sr_max_ghz > 20.0 && m.sr_max_ghz < 220.0);
        assert!(m.jtl_energy_aj > 0.05 && m.jtl_energy_aj < 5.0);
    }

    #[test]
    fn batched_measure_many_tracks_scalar_extraction() {
        // Perturbed (non-default) parameter sets so this test's cache
        // keys never collide with the other tests'.
        let points: Vec<(JtlParams, DffParams, AndParams)> = [0.96, 0.99, 1.02, 1.04, 1.07]
            .iter()
            .map(|&s| {
                let jtl = JtlParams {
                    ic: 1.0e-4 * s,
                    ..JtlParams::default()
                };
                // The shift-register bench only works within roughly
                // −0.2%..+1% of the nominal readout Ic; keep the DFF
                // perturbation inside that window.
                let dff = DffParams {
                    ic_out: DffParams::default().ic_out * (1.0 + 0.03 * (s - 1.0)),
                    ..DffParams::default()
                };
                // The clocked AND stops firing ~6% above nominal
                // readout Ic; stay within ±2%.
                let and = AndParams {
                    ic_out: AndParams::default().ic_out * (1.0 + 0.3 * (s - 1.0)),
                    ..AndParams::default()
                };
                (jtl, dff, and)
            })
            .collect();
        let many = measure_many(&points).expect("batched characterization runs");
        assert_eq!(many.len(), points.len());
        for (m, (jtl_p, dff_p, and_p)) in many.iter().zip(&points) {
            // Delays agree with fresh scalar extraction to the batch
            // contract's pulse-time tolerance (each delay is a
            // difference of two pulse times, 0.5 ps each).
            let jtl = jtl_characteristics(JTL_STAGES, jtl_p).expect("scalar jtl");
            assert!(
                (m.jtl_delay_ps - jtl.delay_s * 1e12).abs() <= 1.0,
                "jtl delay {} vs scalar {}",
                m.jtl_delay_ps,
                jtl.delay_s * 1e12
            );
            let dffd = dff_clock_to_q(dff_p).expect("scalar dff") * 1e12;
            assert!(
                (m.dff_delay_ps - dffd).abs() <= 1.0,
                "dff delay {} vs scalar {dffd}",
                m.dff_delay_ps
            );
            let andd = and_clock_to_q(and_p).expect("scalar and") * 1e12;
            assert!(
                (m.and_delay_ps - andd).abs() <= 1.0,
                "and delay {} vs scalar {andd}",
                m.and_delay_ps
            );
            // Energies are integrals over near-identical trajectories.
            let ande = and_cycle_energy(and_p).expect("scalar and energy") * 1e18;
            let rel = (m.and_energy_aj - ande).abs() / ande;
            assert!(
                rel < 0.05,
                "and energy {} vs scalar {ande}",
                m.and_energy_aj
            );
        }
        // A second pass over the same points is served entirely from
        // the memo: no new transients.
        let runs = jjsim::transient_runs();
        let again = measure_many(&points).expect("memoized");
        assert_eq!(
            jjsim::transient_runs(),
            runs,
            "second pass must be memoized"
        );
        for (a, b) in many.iter().zip(&again) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn measured_library_is_complete_and_valid() {
        let lib = characterize().expect("characterization runs");
        for (k, g) in lib.iter() {
            assert!(g.delay_ps > 0.0, "{k:?}");
            assert!(g.energy_aj > 0.0, "{k:?}");
        }
    }

    #[test]
    fn measured_library_tracks_reference_within_2x() {
        // The independent transient testbenches and the shipped
        // (paper-calibrated) library agree on every measured quantity
        // to within a factor of two.
        let measured = characterize().expect("characterization runs");
        let reference = CellLibrary::aist_10um();
        for kind in [GateKind::Jtl, GateKind::Splitter, GateKind::And] {
            let ratio = measured.gate(kind).delay_ps / reference.gate(kind).delay_ps;
            assert!(
                (0.5..2.0).contains(&ratio),
                "{kind:?} delay ratio {ratio:.2}"
            );
            let e_ratio = measured.gate(kind).energy_aj / reference.gate(kind).energy_aj;
            assert!(
                (0.4..2.5).contains(&e_ratio),
                "{kind:?} energy ratio {e_ratio:.2}"
            );
        }
    }

    #[test]
    fn architecture_estimate_from_measured_library_is_same_regime() {
        // End-to-end: transient physics -> cell library -> NPU clock.
        // The measured library must put the SuperNPU clock within 2x
        // of the paper's 52.6 GHz.
        let measured = characterize().expect("characterization runs");
        let est = sfq_estimator::estimate(&sfq_estimator::NpuConfig::paper_supernpu(), &measured);
        assert!(
            est.frequency_ghz > 26.0 && est.frequency_ghz < 105.0,
            "measured-library clock {:.1} GHz",
            est.frequency_ghz
        );
        assert!(est.static_w > 0.0);
    }
}
