//! Hand-rolled lane arithmetic for the batched transient solver: a
//! fixed-width `[f64; LANES]` "lane" type plus the banded-LU kernels
//! rewritten to operate on every lane at once.
//!
//! The layout is structure-of-arrays at the matrix-entry level: where
//! the scalar packed band stores entry `(i, j)` at
//! `i·(2·bw + 1) + bw + j − i`, the lane form stores a `[f64; LANES]`
//! at the same index — the same matrix slot of `LANES` independent,
//! identically-structured systems, contiguous in memory. Every inner
//! loop then walks contiguous lanes with no shuffles or gathers, which
//! is exactly the shape LLVM's autovectorizer turns into packed SIMD
//! (`mulpd`/`subpd` at the SSE2 baseline, `vfmadd...pd` with AVX2
//! enabled); `scripts/check.sh` smoke-checks the disassembly of
//! [`factor_banded_packed_lanes`] for packed instructions on x86_64.
//!
//! Per-lane arithmetic is fully independent — lane `l` of every output
//! is bit-identical to running the scalar kernel on lane `l`'s system
//! alone (asserted in the tests below). That independence is what lets
//! the batched solver retire a diverging lane without perturbing its
//! siblings by so much as an ULP.

/// Number of parameter-perturbed instances advanced per batch group.
///
/// Four double-precision lanes fill one AVX2 register (two SSE2
/// registers) and keep the SoA working set of a cell-scale MNA system
/// inside L1.
pub const LANES: usize = 4;

/// One matrix/vector slot across all batch lanes.
pub type Lane = [f64; LANES];

/// A lane with every element zero.
pub const ZERO: Lane = [0.0; LANES];

/// Broadcast a scalar to every lane.
#[inline]
#[must_use]
pub fn splat(x: f64) -> Lane {
    [x; LANES]
}

/// Row width of the packed band layout for half-bandwidth `bw`
/// (identical to the scalar layout; lanes widen the entries, not the
/// rows).
#[inline]
#[must_use]
pub fn band_width(bw: usize) -> usize {
    2 * bw + 1
}

/// Smallest pivot magnitude the no-pivot elimination accepts; matches
/// the scalar banded kernels.
const PIVOT_MIN: f64 = 1e-300;

/// Lane-batched in-place LU factorization of `LANES` packed band
/// matrices (`a` has length `n · (2·bw + 1)`, each entry one [`Lane`]).
/// Gaussian elimination without pivoting, multipliers stored in the
/// zeroed positions — per lane the exact operation sequence of the
/// scalar `factor_banded_packed`, so each lane's factors are
/// bit-identical to factoring that lane's system alone.
///
/// Returns a per-lane success mask. A lane whose pivot magnitude drops
/// below the scalar kernels' floor is marked `false` and its
/// multiplier for that column is forced to zero so the elimination
/// stays finite in every lane; the failed lane's factors are garbage
/// and the caller must retire it (the batched solver finishes such
/// instances on the scalar path, whose pivoting dense fallback is the
/// golden reference for near-singular systems).
///
/// `#[inline(never)]` keeps a standalone symbol for the CI disassembly
/// smoke check.
#[inline(never)]
#[must_use]
pub fn factor_banded_packed_lanes(a: &mut [Lane], n: usize, bw: usize) -> [bool; LANES] {
    let w = band_width(bw);
    debug_assert_eq!(a.len(), n * w);
    let mut ok = [true; LANES];
    for col in 0..n {
        let pivot = a[col * w + bw];
        let mut inv = ZERO;
        for l in 0..LANES {
            if pivot[l].abs() < PIVOT_MIN {
                ok[l] = false;
                // Leave inv at 0: multipliers in this lane become 0 and
                // the elimination is a finite no-op for it.
            } else {
                inv[l] = 1.0 / pivot[l];
            }
        }
        let row_end = (col + bw + 1).min(n);
        let len = row_end - (col + 1);
        let (head, tail) = a.split_at_mut((col + 1) * w);
        let crow = &head[col * w..];
        let src = &crow[bw + 1..bw + 1 + len];
        for (r, rrow) in tail.chunks_exact_mut(w).take(len).enumerate() {
            // Column `col` of matrix row `col + 1 + r` in packed form.
            let off = bw - (r + 1);
            let mut factor = ZERO;
            for l in 0..LANES {
                factor[l] = rrow[off][l] * inv[l];
            }
            rrow[off] = factor;
            // Columns `col+1..row_end` are contiguous in both rows:
            // dst[k] -= factor * src[k], all lanes at once.
            let dst = &mut rrow[off + 1..off + 1 + len];
            for (d, s) in dst.iter_mut().zip(src) {
                for l in 0..LANES {
                    d[l] -= factor[l] * s[l];
                }
            }
        }
    }
    ok
}

/// Lane-batched triangular solves against a factorization from
/// [`factor_banded_packed_lanes`]; `b` holds the per-lane solutions on
/// return. Per lane bit-identical to the scalar
/// `solve_factored_packed`. Lanes whose factorization failed produce
/// garbage (possibly non-finite) in their own lane only.
pub fn solve_factored_packed_lanes(a: &[Lane], b: &mut [Lane], n: usize, bw: usize) {
    let w = band_width(bw);
    debug_assert_eq!(a.len(), n * w);
    debug_assert_eq!(b.len(), n);
    // Forward-eliminate b with the stored multipliers.
    for col in 0..n {
        let row_end = (col + bw + 1).min(n);
        let bc = b[col];
        for row in (col + 1)..row_end {
            let factor = a[row * w + bw - (row - col)];
            for l in 0..LANES {
                b[row][l] -= factor[l] * bc[l];
            }
        }
    }
    // Back substitution: the superdiagonal of each row and the matching
    // stretch of `b` are both contiguous.
    for row in (0..n).rev() {
        let k_end = (row + bw + 1).min(n);
        let len = k_end - (row + 1);
        let arow = &a[row * w..(row + 1) * w];
        let mut sum = b[row];
        for (ak, bk) in arow[bw + 1..bw + 1 + len].iter().zip(&b[row + 1..k_end]) {
            for l in 0..LANES {
                sum[l] -= ak[l] * bk[l];
            }
        }
        for l in 0..LANES {
            b[row][l] = sum[l] / arow[bw][l];
        }
    }
}

/// Lane-batched `sin`/`cos` of a small rotation angle, |x| ≲ 0.5 rad.
///
/// The batched Newton loop needs `sin`/`cos` of
/// `φₖ = phase + Δ` where `phase` is constant within a step (its
/// `sin`/`cos` are computed once per commit via libm) and
/// `Δ = φ_coef·(vb + vb_prev)` is the small per-iteration phase
/// advance. Evaluating the rotation by Taylor polynomial keeps the
/// whole jj-linearization kernel branch-free and vectorizable; the
/// truncation error (≤ 2·10⁻¹¹ abs at |x| = 0.5, terms through x⁹/x¹⁰)
/// perturbs junction currents by ≲ 10⁻¹⁴·Ic — far below the 1 nV
/// Newton tolerance, so converged iterates are unaffected at solver
/// accuracy. Callers fall back to per-lane libm when |Δ| exceeds
/// [`ROT_MAX`].
#[inline]
#[must_use]
pub fn sin_cos_rot(x: Lane) -> (Lane, Lane) {
    let mut s = ZERO;
    let mut c = ZERO;
    for l in 0..LANES {
        let x2 = x[l] * x[l];
        // sin x = x·(1 − x²/6 + x⁴/120 − x⁶/5040 + x⁸/362880)
        s[l] = x[l]
            * (1.0
                + x2 * (-1.0 / 6.0
                    + x2 * (1.0 / 120.0 + x2 * (-1.0 / 5040.0 + x2 * (1.0 / 362_880.0)))));
        // cos x = 1 − x²/2 + x⁴/24 − x⁶/720 + x⁸/40320 − x¹⁰/3628800
        c[l] = 1.0
            + x2 * (-0.5
                + x2 * (1.0 / 24.0
                    + x2 * (-1.0 / 720.0 + x2 * (1.0 / 40_320.0 + x2 * (-1.0 / 3_628_800.0)))));
    }
    (s, c)
}

/// Rotation angle above which [`sin_cos_rot`]'s polynomial loses the
/// accuracy headroom documented there; callers use per-lane libm
/// beyond it. Accepted adaptive steps keep junction phase advances
/// under `PHASE_MAX_STEP` = 0.35 rad, so the fallback only triggers on
/// wild pre-rejection Newton iterates.
pub const ROT_MAX: f64 = 0.5;

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar packed-band reference kernels (duplicated from
    /// `linalg.rs`'s public-for-tests surface via the same algorithm;
    /// `linalg`'s own are `pub(crate)` so we use them directly).
    use crate::linalg::{factor_banded_packed, solve_factored_packed};

    /// Deterministic diagonally dominant packed band system, distinct
    /// per lane seed.
    fn band_system_packed(n: usize, bw: usize, seed0: u64) -> (Vec<f64>, Vec<f64>) {
        let w = band_width(bw);
        let mut seed = seed0;
        let mut rnd = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let mut a = vec![0.0; n * w];
        for i in 0..n {
            for j in i.saturating_sub(bw)..(i + bw + 1).min(n) {
                let v = if i == j {
                    4.0 + rnd().abs()
                } else if (i + j) % 5 != 0 {
                    rnd()
                } else {
                    0.0
                };
                a[i * w + bw + j - i] = v;
            }
        }
        let b: Vec<f64> = (0..n).map(|i| rnd() * 3.0 + i as f64 * 0.1).collect();
        (a, b)
    }

    fn interleave(mats: &[Vec<f64>]) -> Vec<Lane> {
        let len = mats[0].len();
        (0..len)
            .map(|i| {
                let mut lane = ZERO;
                for (l, m) in mats.iter().enumerate() {
                    lane[l] = m[i];
                }
                lane
            })
            .collect()
    }

    #[test]
    fn lane_factor_solve_bit_identical_per_lane() {
        for (n, bw) in [(3usize, 1usize), (10, 1), (40, 1), (12, 2), (40, 3), (7, 6)] {
            let systems: Vec<(Vec<f64>, Vec<f64>)> = (0..LANES as u64)
                .map(|l| band_system_packed(n, bw, 0x9e3779b97f4a7c15 ^ (l * 0x1234_5678)))
                .collect();
            let mats: Vec<Vec<f64>> = systems.iter().map(|(a, _)| a.clone()).collect();
            let rhss: Vec<Vec<f64>> = systems.iter().map(|(_, b)| b.clone()).collect();

            let mut lanes_a = interleave(&mats);
            let ok = factor_banded_packed_lanes(&mut lanes_a, n, bw);
            assert_eq!(ok, [true; LANES], "n={n} bw={bw}");
            let mut lanes_b = interleave(&rhss);
            solve_factored_packed_lanes(&lanes_a, &mut lanes_b, n, bw);

            for l in 0..LANES {
                let mut lu_ref = mats[l].clone();
                assert!(factor_banded_packed(&mut lu_ref, n, bw));
                let mut x_ref = rhss[l].clone();
                solve_factored_packed(&lu_ref, &mut x_ref, n, bw);
                for i in 0..n * band_width(bw) {
                    assert_eq!(
                        lanes_a[i][l].to_bits(),
                        lu_ref[i].to_bits(),
                        "factor n={n} bw={bw} lane={l} idx={i}"
                    );
                }
                for i in 0..n {
                    assert_eq!(
                        lanes_b[i][l].to_bits(),
                        x_ref[i].to_bits(),
                        "solve n={n} bw={bw} lane={l} row={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn singular_lane_is_masked_without_disturbing_siblings() {
        let (n, bw) = (12usize, 2usize);
        let systems: Vec<(Vec<f64>, Vec<f64>)> = (0..LANES as u64)
            .map(|l| band_system_packed(n, bw, 0xdead_beef ^ (l * 77)))
            .collect();
        let mut mats: Vec<Vec<f64>> = systems.iter().map(|(a, _)| a.clone()).collect();
        let rhss: Vec<Vec<f64>> = systems.iter().map(|(_, b)| b.clone()).collect();
        // Make lane 2 singular: zero a diagonal and its band row so
        // elimination cannot rescue the pivot.
        let w = band_width(bw);
        let bad = 2usize;
        for j in 0..w {
            for row in 3..6 {
                mats[bad][row * w + j] = 0.0;
            }
        }

        let mut lanes_a = interleave(&mats);
        let ok = factor_banded_packed_lanes(&mut lanes_a, n, bw);
        assert!(!ok[bad], "singular lane not flagged");
        for (l, &is_ok) in ok.iter().enumerate() {
            if l != bad {
                assert!(is_ok, "healthy lane {l} flagged");
            }
        }
        let mut lanes_b = interleave(&rhss);
        solve_factored_packed_lanes(&lanes_a, &mut lanes_b, n, bw);
        // Healthy lanes must still match their solo scalar solve bit
        // for bit.
        for l in 0..LANES {
            if l == bad {
                continue;
            }
            let mut lu_ref = mats[l].clone();
            assert!(factor_banded_packed(&mut lu_ref, n, bw));
            let mut x_ref = rhss[l].clone();
            solve_factored_packed(&lu_ref, &mut x_ref, n, bw);
            for i in 0..n {
                assert_eq!(
                    lanes_b[i][l].to_bits(),
                    x_ref[i].to_bits(),
                    "lane {l} row {i} disturbed by singular sibling"
                );
            }
        }
    }

    #[test]
    fn rotation_polynomial_accuracy() {
        for k in 0..=100 {
            let x = -ROT_MAX + 2.0 * ROT_MAX * (k as f64) / 100.0;
            let (s, c) = sin_cos_rot(splat(x));
            for l in 0..LANES {
                assert!(
                    (s[l] - x.sin()).abs() < 2e-11,
                    "sin({x}) err {}",
                    s[l] - x.sin()
                );
                assert!(
                    (c[l] - x.cos()).abs() < 2e-11,
                    "cos({x}) err {}",
                    c[l] - x.cos()
                );
            }
        }
    }
}
