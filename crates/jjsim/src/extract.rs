//! Parameter extraction: how the workspace turns transient runs into
//! cell-library numbers (delays, maximum clock rates, switching
//! energies), mirroring the paper's use of JSIM in §IV-A.1.

use crate::solver::{SimOptions, Solver};
use crate::stdlib::{
    clocked_and, dff, jtl_chain, shift_register, splitter, AndParams, DffParams, JtlParams,
};
use crate::SimError;

/// Measured characteristics of a simulated cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Extraction {
    /// Propagation delay in seconds.
    pub delay_s: f64,
    /// Energy dissipated per switching event, joules.
    pub energy_j: f64,
}

fn run(c: crate::Circuit, t_end: f64) -> Result<crate::SimResult, SimError> {
    // Extraction cares about pulse counts, pulse times and dissipated
    // energies — exactly what the adaptive controller preserves (same
    // counts, sub-0.5 ps times) while cutting step counts several-fold
    // on these mostly-quiescent testbenches. This is the hot path
    // under `chars::measure` and everything built on it.
    Solver::new(c, SimOptions::adaptive())?.try_run(t_end)
}

/// Per-stage delay and per-event switching energy of a JTL, measured
/// on an `n`-stage chain (interior stages only, so launch transients
/// don't bias the estimate).
///
/// # Errors
///
/// Propagates solver failures; returns [`SimError::NonConvergent`]
/// when the chain does not fire at all.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn jtl_characteristics(n: usize, p: &JtlParams) -> Result<Extraction, SimError> {
    assert!(n >= 3, "need at least 3 stages to measure interior delay");
    let (c, stages) = jtl_chain(n, p);
    let out = run(c, p.input_time + 40e-12 * n as f64)?;
    let t_first = out.pulse_times(stages[0]).first().copied();
    let t_last = out.pulse_times(stages[n - 1]).first().copied();
    let (Some(t0), Some(t1)) = (t_first, t_last) else {
        return Err(SimError::NonConvergent {
            what: "JTL chain did not propagate the launch pulse",
        });
    };
    let delay = (t1 - t0) / (n - 1) as f64;
    // Total dissipation divided by the number of switching junctions.
    let energy = out.dissipated_j / n as f64;
    Ok(Extraction {
        delay_s: delay,
        energy_j: energy,
    })
}

/// Input-to-output delay of a splitter (hub slip → branch slip).
///
/// # Errors
///
/// Fails if the solver diverges or the splitter does not fire.
pub fn splitter_delay(p: &JtlParams) -> Result<f64, SimError> {
    let (c, probes) = splitter(p);
    let out = run(c, p.input_time + 80e-12)?;
    let (Some(&t_in), Some(&t_out)) = (
        out.pulse_times(probes.input).first(),
        out.pulse_times(probes.out_a).first(),
    ) else {
        return Err(SimError::NonConvergent {
            what: "splitter did not fire on both probes",
        });
    };
    Ok(t_out - t_in)
}

/// Clock-to-output delay of a DFF holding a '1'.
///
/// # Errors
///
/// Fails if the solver diverges or the cell does not release its datum.
pub fn dff_clock_to_q(p: &DffParams) -> Result<f64, SimError> {
    let clock_t = 100e-12;
    let (c, probes) = dff(&[60e-12], &[clock_t], p);
    let out = run(c, 170e-12)?;
    let Some(&t_out) = out.pulse_times(probes.output).first() else {
        return Err(SimError::NonConvergent {
            what: "DFF did not release its stored datum",
        });
    };
    Ok(t_out - clock_t)
}

/// Clock-to-output delay of the clocked AND gate with both inputs
/// set — the gate whose characterized delay the paper prints (8.3 ps).
///
/// # Errors
///
/// Fails if the solver diverges or the gate does not fire.
pub fn and_clock_to_q(p: &AndParams) -> Result<f64, SimError> {
    let clock_t = 100e-12;
    let (c, probes) = clocked_and(&[60e-12], &[60e-12], &[clock_t], p);
    let out = run(c, 170e-12)?;
    let Some(&t_out) = out.pulse_times(probes.output).first() else {
        return Err(SimError::NonConvergent {
            what: "clocked AND did not fire with both inputs set",
        });
    };
    Ok(t_out - clock_t)
}

/// Energy per clocked-AND evaluate cycle (both inputs set).
///
/// # Errors
///
/// Fails if the solver diverges.
pub fn and_cycle_energy(p: &AndParams) -> Result<f64, SimError> {
    let (c, _probes) = clocked_and(&[60e-12], &[60e-12], &[100e-12], p);
    let out = run(c, 170e-12)?;
    Ok(out.dissipated_j)
}

/// Energy per DFF store+release cycle.
///
/// # Errors
///
/// Fails if the solver diverges.
pub fn dff_cycle_energy(p: &DffParams) -> Result<f64, SimError> {
    let (c, _probes) = dff(&[60e-12], &[100e-12], p);
    let out = run(c, 170e-12)?;
    Ok(out.dissipated_j)
}

// ---------------------------------------------- lane-batched extraction
//
// The `_many` variants below run K parameter-perturbed instances of
// one testbench as [`crate::BatchedTransient`] groups — the
// re-characterization path for sweeps that probe many design points of
// the same cell family. Each group shares one factorization schedule,
// so the cost of K extractions approaches the cost of one. Horizons
// that depend on per-instance parameters (the JTL benches) use the
// group-wide maximum, which leaves first-pulse delays untouched and
// perturbs quiescent-tail energies only marginally.

/// Lane-batched [`jtl_characteristics`] over many parameter sets.
///
/// # Errors
///
/// Propagates solver failures; per-instance non-propagation is
/// reported exactly as in the scalar extraction.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn jtl_characteristics_many(n: usize, ps: &[JtlParams]) -> Result<Vec<Extraction>, SimError> {
    assert!(n >= 3, "need at least 3 stages to measure interior delay");
    if ps.is_empty() {
        return Ok(Vec::new());
    }
    let mut stages = Vec::new();
    let ckts: Vec<crate::Circuit> = ps
        .iter()
        .map(|p| {
            let (c, s) = jtl_chain(n, p);
            stages = s;
            c
        })
        .collect();
    #[allow(clippy::cast_precision_loss)]
    let t_end = ps
        .iter()
        .map(|p| p.input_time + 40e-12 * n as f64)
        .fold(0.0, f64::max);
    crate::BatchedTransient::new(ckts, SimOptions::adaptive())?
        .try_run(t_end)
        .into_iter()
        .map(|r| {
            let out = r?;
            let t_first = out.pulse_times(stages[0]).first().copied();
            let t_last = out.pulse_times(stages[n - 1]).first().copied();
            let (Some(t0), Some(t1)) = (t_first, t_last) else {
                return Err(SimError::NonConvergent {
                    what: "JTL chain did not propagate the launch pulse",
                });
            };
            #[allow(clippy::cast_precision_loss)]
            Ok(Extraction {
                delay_s: (t1 - t0) / (n - 1) as f64,
                energy_j: out.dissipated_j / n as f64,
            })
        })
        .collect()
}

/// Lane-batched [`splitter_delay`] over many parameter sets.
///
/// # Errors
///
/// Propagates solver failures or a non-firing splitter per instance.
pub fn splitter_delay_many(ps: &[JtlParams]) -> Result<Vec<f64>, SimError> {
    if ps.is_empty() {
        return Ok(Vec::new());
    }
    let mut probes = None;
    let ckts: Vec<crate::Circuit> = ps
        .iter()
        .map(|p| {
            let (c, pr) = splitter(p);
            probes = Some(pr);
            c
        })
        .collect();
    let probes = probes.ok_or(SimError::EmptyCircuit)?;
    let t_end = ps.iter().map(|p| p.input_time + 80e-12).fold(0.0, f64::max);
    crate::BatchedTransient::new(ckts, SimOptions::adaptive())?
        .try_run(t_end)
        .into_iter()
        .map(|r| {
            let out = r?;
            let (Some(&t_in), Some(&t_out)) = (
                out.pulse_times(probes.input).first(),
                out.pulse_times(probes.out_a).first(),
            ) else {
                return Err(SimError::NonConvergent {
                    what: "splitter did not fire on both probes",
                });
            };
            Ok(t_out - t_in)
        })
        .collect()
}

/// Lane-batched [`dff_clock_to_q`] over many parameter sets.
///
/// # Errors
///
/// Propagates solver failures or a non-releasing DFF per instance.
pub fn dff_clock_to_q_many(ps: &[DffParams]) -> Result<Vec<f64>, SimError> {
    if ps.is_empty() {
        return Ok(Vec::new());
    }
    let clock_t = 100e-12;
    let mut probes = None;
    let ckts: Vec<crate::Circuit> = ps
        .iter()
        .map(|p| {
            let (c, pr) = dff(&[60e-12], &[clock_t], p);
            probes = Some(pr);
            c
        })
        .collect();
    let probes = probes.ok_or(SimError::EmptyCircuit)?;
    crate::BatchedTransient::new(ckts, SimOptions::adaptive())?
        .try_run(170e-12)
        .into_iter()
        .map(|r| {
            let out = r?;
            let Some(&t_out) = out.pulse_times(probes.output).first() else {
                return Err(SimError::NonConvergent {
                    what: "DFF did not release its stored datum",
                });
            };
            Ok(t_out - clock_t)
        })
        .collect()
}

/// Lane-batched [`dff_cycle_energy`] over many parameter sets.
///
/// # Errors
///
/// Propagates solver failures per instance.
pub fn dff_cycle_energy_many(ps: &[DffParams]) -> Result<Vec<f64>, SimError> {
    if ps.is_empty() {
        return Ok(Vec::new());
    }
    let ckts: Vec<crate::Circuit> = ps.iter().map(|p| dff(&[60e-12], &[100e-12], p).0).collect();
    crate::BatchedTransient::new(ckts, SimOptions::adaptive())?
        .try_run(170e-12)
        .into_iter()
        .map(|r| Ok(r?.dissipated_j))
        .collect()
}

/// Lane-batched [`and_clock_to_q`] over many parameter sets.
///
/// # Errors
///
/// Propagates solver failures or a non-firing gate per instance.
pub fn and_clock_to_q_many(ps: &[AndParams]) -> Result<Vec<f64>, SimError> {
    if ps.is_empty() {
        return Ok(Vec::new());
    }
    let clock_t = 100e-12;
    let mut probes = None;
    let ckts: Vec<crate::Circuit> = ps
        .iter()
        .map(|p| {
            let (c, pr) = clocked_and(&[60e-12], &[60e-12], &[clock_t], p);
            probes = Some(pr);
            c
        })
        .collect();
    let probes = probes.ok_or(SimError::EmptyCircuit)?;
    crate::BatchedTransient::new(ckts, SimOptions::adaptive())?
        .try_run(170e-12)
        .into_iter()
        .map(|r| {
            let out = r?;
            let Some(&t_out) = out.pulse_times(probes.output).first() else {
                return Err(SimError::NonConvergent {
                    what: "clocked AND did not fire with both inputs set",
                });
            };
            Ok(t_out - clock_t)
        })
        .collect()
}

/// Lane-batched [`and_cycle_energy`] over many parameter sets.
///
/// # Errors
///
/// Propagates solver failures per instance.
pub fn and_cycle_energy_many(ps: &[AndParams]) -> Result<Vec<f64>, SimError> {
    if ps.is_empty() {
        return Ok(Vec::new());
    }
    let ckts: Vec<crate::Circuit> = ps
        .iter()
        .map(|p| clocked_and(&[60e-12], &[60e-12], &[100e-12], p).0)
        .collect();
    crate::BatchedTransient::new(ckts, SimOptions::adaptive())?
        .try_run(170e-12)
        .into_iter()
        .map(|r| Ok(r?.dissipated_j))
        .collect()
}

/// Verdict of one shift-register functional trial.
fn shift_register_works(period: f64, p: &DffParams) -> Result<bool, SimError> {
    // One datum through a 3-stage register; clocks at the trial period.
    let n = 3usize;
    let t_data = 60e-12;
    let clocks: Vec<f64> = (0..n).map(|k| 80e-12 + period * k as f64).collect();
    let (c, probes) = shift_register(n, t_data, &clocks, 0.0, p);
    let out = run(c, clocks[n - 1] + 60e-12)?;
    for (k, jj) in probes.stage_outputs.iter().enumerate() {
        if out.pulse_count(*jj) != 1 {
            return Ok(false);
        }
        let t = out.pulse_times(*jj)[0];
        if t < clocks[k] || t > clocks[k] + period.max(25e-12) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Maximum shift-register clock frequency in hertz, found by bisecting
/// the clock period over `[lo_ps, hi_ps]` picoseconds until the
/// register stops shifting correctly.
///
/// # Errors
///
/// Propagates solver failures from the trial runs.
pub fn max_shift_frequency(p: &DffParams, lo_ps: f64, hi_ps: f64) -> Result<f64, SimError> {
    let mut bad = lo_ps * 1e-12;
    let mut good = hi_ps * 1e-12;
    if !shift_register_works(good, p)? {
        return Err(SimError::NonConvergent {
            what: "shift register fails even at the slowest trial clock",
        });
    }
    for _ in 0..8 {
        let mid = 0.5 * (bad + good);
        if shift_register_works(mid, p)? {
            good = mid;
        } else {
            bad = mid;
        }
    }
    Ok(1.0 / good)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jtl_delay_is_picoscale() {
        let ex = jtl_characteristics(8, &JtlParams::default()).unwrap();
        assert!(
            ex.delay_s > 1e-12 && ex.delay_s < 15e-12,
            "delay {:e}",
            ex.delay_s
        );
        // Switching energy within an order of magnitude of Ic·Φ0 ≈ 2e-19 J.
        assert!(
            ex.energy_j > 1e-20 && ex.energy_j < 5e-18,
            "energy {:e}",
            ex.energy_j
        );
    }

    #[test]
    fn splitter_delay_positive_ps_scale() {
        let d = splitter_delay(&JtlParams::default()).unwrap();
        assert!(d > 0.0 && d < 30e-12, "delay {d:e}");
    }

    #[test]
    fn dff_clock_to_q_is_ps_scale() {
        let d = dff_clock_to_q(&DffParams::default()).unwrap();
        assert!(d > 0.0 && d < 30e-12, "delay {d:e}");
    }

    #[test]
    fn and_clock_to_q_is_ps_scale() {
        let d = and_clock_to_q(&AndParams::default()).unwrap();
        assert!(d > 0.0 && d < 30e-12, "delay {d:e}");
    }

    #[test]
    fn and_cycle_energy_is_aj_scale() {
        let e = and_cycle_energy(&AndParams::default()).unwrap();
        assert!(e > 1e-20 && e < 1e-17, "energy {e:e}");
    }

    #[test]
    fn dff_cycle_energy_is_aj_scale() {
        let e = dff_cycle_energy(&DffParams::default()).unwrap();
        // A handful of junction switchings: 1e-20 .. 1e-17 J.
        assert!(e > 1e-20 && e < 1e-17, "energy {e:e}");
    }

    #[test]
    fn shift_register_max_frequency_tens_of_ghz() {
        let f = max_shift_frequency(&DffParams::default(), 5.0, 50.0).unwrap();
        assert!(
            f > 20e9 && f < 220e9,
            "max shift frequency {:.1} GHz",
            f / 1e9
        );
    }
}
