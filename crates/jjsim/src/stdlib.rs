//! Standard SFQ circuits: Josephson transmission lines, splitters,
//! mergers, DFFs and shift registers — the building blocks the paper's
//! cell library characterizes with JSIM.
//!
//! Each builder returns the [`Circuit`] plus the [`ElementId`]s of the
//! junctions whose phase slips mark the observable events (pulse
//! arrival at each stage, output emission, …).
//!
//! ## Robustness contract
//!
//! The builders are *infallible*: every parameter set is first passed
//! through a `sanitized()` projection that clamps non-finite or
//! non-physical values onto the nearest valid ones (a critical current
//! driven to zero or below by a variation draw becomes a vanishingly
//! small — i.e. effectively dead — junction, not a panic). A fault- or
//! variation-injected cell therefore always *builds and simulates*;
//! whether it still *works* is what the functional probes and the
//! `sfq-faults` yield estimator measure.

use crate::circuit::{Circuit, ElementId, JjParams, NodeId};
use crate::error::SimError;
use crate::waveform::Waveform;

/// Smallest critical current a sanitized cell will carry, amperes.
/// Far below any bias level: such a junction switches on noise-scale
/// drive and the cell fails functionally instead of panicking.
const IC_FLOOR: f64 = 1.0e-9;
/// Smallest inductance a sanitized cell will carry, henries.
const L_FLOOR: f64 = 1.0e-15;

/// Clamp onto the positive reals: non-finite or `<= floor` becomes
/// `floor`.
fn positive(v: f64, floor: f64) -> f64 {
    if v.is_finite() && v > floor {
        v
    } else {
        floor
    }
}

/// Clamp onto the finite reals (amplitudes and biases may legitimately
/// be zero or negative): non-finite becomes `fallback`.
fn finite(v: f64, fallback: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        fallback
    }
}

/// Clamp onto the finite non-negative reals (event times).
fn non_negative(v: f64, fallback: f64) -> f64 {
    if v.is_finite() && v >= 0.0 {
        v
    } else {
        fallback
    }
}

/// Unwrap an insertion that cannot fail: stdlib builders create every
/// node locally and sanitize every parameter before use, so the
/// `Circuit::add_*` validators have nothing left to reject.
trait BuiltExt<T> {
    fn built(self) -> T;
}

impl<T> BuiltExt<T> for Result<T, SimError> {
    fn built(self) -> T {
        self.unwrap_or_else(|e| unreachable!("stdlib builder invariant violated: {e}"))
    }
}

/// Parameters of a JTL stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JtlParams {
    /// Junction critical current, amperes.
    pub ic: f64,
    /// Bias fraction of Ic applied per stage.
    pub bias_frac: f64,
    /// Inter-stage inductance, henries.
    pub l: f64,
    /// Amplitude of the injected trigger pulse, amperes.
    pub input_amplitude: f64,
    /// Time of the injected trigger pulse, seconds.
    pub input_time: f64,
}

impl Default for JtlParams {
    fn default() -> Self {
        JtlParams {
            ic: 1.0e-4,
            bias_frac: 0.7,
            l: 10.0e-12,
            input_amplitude: 2.0e-4,
            input_time: 60.0e-12,
        }
    }
}

impl JtlParams {
    /// Project onto the nearest buildable parameter set (see the
    /// module-level robustness contract).
    pub fn sanitized(&self) -> Self {
        JtlParams {
            ic: positive(self.ic, IC_FLOOR),
            bias_frac: finite(self.bias_frac, 0.0),
            l: positive(self.l, L_FLOOR),
            input_amplitude: finite(self.input_amplitude, 0.0),
            input_time: non_negative(self.input_time, 0.0),
        }
    }
}

/// Build an `n`-stage Josephson transmission line with a single input
/// pulse. Returns the circuit and one junction id per stage; the pulse
/// arrival time at stage `k` is that junction's phase-slip time.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn jtl_chain(n: usize, p: &JtlParams) -> (Circuit, Vec<ElementId>) {
    assert!(n > 0, "a JTL needs at least one stage");
    let p = p.sanitized();
    let mut c = Circuit::new();
    let jj = JjParams::critically_damped(p.ic);
    let input = c.node();
    c.add_source(input, Waveform::sfq_pulse(p.input_time, p.input_amplitude))
        .built();
    let mut prev = input;
    let mut stages = Vec::with_capacity(n);
    for _ in 0..n {
        let node = c.node();
        c.add_inductor(prev, node, p.l).built();
        let id = c.add_jj(node, NodeId::GROUND, jj).built();
        c.add_bias(node, p.bias_frac * p.ic).built();
        stages.push(id);
        prev = node;
    }
    (c, stages)
}

/// Splitter output handles.
#[derive(Debug, Clone, Copy)]
pub struct SplitterProbes {
    /// Input-side junction.
    pub input: ElementId,
    /// First output branch junction.
    pub out_a: ElementId,
    /// Second output branch junction.
    pub out_b: ElementId,
}

/// Build a pulse splitter: an input junction with doubled critical
/// current drives two branch junctions; one input pulse produces one
/// pulse on *each* branch.
pub fn splitter(p: &JtlParams) -> (Circuit, SplitterProbes) {
    let p = p.sanitized();
    let mut c = Circuit::new();
    let input = c.node();
    // The hub junction has doubled critical current, so the trigger is
    // scaled by the same factor.
    c.add_source(
        input,
        Waveform::sfq_pulse(p.input_time, 2.0 * p.input_amplitude),
    )
    .built();

    let hub = c.node();
    c.add_inductor(input, hub, p.l / 2.0).built();
    // Bigger junction at the hub so it can drive two loads.
    let jj_hub = JjParams::critically_damped(2.0 * p.ic);
    let input_jj = c.add_jj(hub, NodeId::GROUND, jj_hub).built();
    c.add_bias(hub, 0.7 * 2.0 * p.ic).built();

    let jj = JjParams::critically_damped(p.ic);
    let branch = |c: &mut Circuit| {
        let node = c.node();
        c.add_inductor(hub, node, p.l).built();
        let id = c.add_jj(node, NodeId::GROUND, jj).built();
        c.add_bias(node, p.bias_frac * p.ic).built();
        id
    };
    let out_a = branch(&mut c);
    let out_b = branch(&mut c);
    (
        c,
        SplitterProbes {
            input: input_jj,
            out_a,
            out_b,
        },
    )
}

/// Merger (confluence buffer) probes.
#[derive(Debug, Clone, Copy)]
pub struct MergerProbes {
    /// Junction on input branch A.
    pub in_a: ElementId,
    /// Junction on input branch B.
    pub in_b: ElementId,
    /// Output junction: one pulse per input pulse on either branch.
    pub output: ElementId,
}

/// Build a confluence buffer: pulses arriving on either input emerge on
/// the single output. The input branch junctions also isolate the
/// inputs from each other.
pub fn merger(
    pulse_a: Option<f64>,
    pulse_b: Option<f64>,
    p: &JtlParams,
) -> (Circuit, MergerProbes) {
    let p = p.sanitized();
    let mut c = Circuit::new();
    let jj = JjParams::critically_damped(p.ic);

    let input_branch = |c: &mut Circuit, t: Option<f64>| {
        let entry = c.node();
        if let Some(t0) = t {
            c.add_source(
                entry,
                Waveform::sfq_pulse(non_negative(t0, 0.0), p.input_amplitude),
            )
            .built();
        }
        let stage = c.node();
        c.add_inductor(entry, stage, p.l).built();
        let id = c.add_jj(stage, NodeId::GROUND, jj).built();
        c.add_bias(stage, p.bias_frac * p.ic).built();
        (stage, id)
    };
    let (na, in_a) = input_branch(&mut c, pulse_a);
    let (nb, in_b) = input_branch(&mut c, pulse_b);

    let out = c.node();
    c.add_inductor(na, out, p.l).built();
    c.add_inductor(nb, out, p.l).built();
    let output = c.add_jj(out, NodeId::GROUND, jj).built();
    c.add_bias(out, p.bias_frac * p.ic).built();
    (c, MergerProbes { in_a, in_b, output })
}

/// DFF (destructive-readout storage cell) parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DffParams {
    /// Input (set) junction critical current, amperes.
    pub ic_in: f64,
    /// Output (readout) junction critical current, amperes.
    pub ic_out: f64,
    /// Storage-loop inductance, henries. Must satisfy `L·Ic > Φ₀` for
    /// the loop to hold a fluxon.
    pub l_store: f64,
    /// Bias current into the storage node, amperes.
    pub bias_store: f64,
    /// Bias current into the readout node, amperes.
    pub bias_out: f64,
    /// Amplitude of data/clock trigger pulses, amperes.
    pub pulse_amplitude: f64,
}

impl Default for DffParams {
    fn default() -> Self {
        DffParams {
            ic_in: 1.0e-4,
            ic_out: 1.4e-4,
            l_store: 26.0e-12,
            bias_store: 0.5e-4,
            bias_out: 0.5e-4,
            pulse_amplitude: 2.8e-4,
        }
    }
}

impl DffParams {
    /// Project onto the nearest buildable parameter set (see the
    /// module-level robustness contract).
    pub fn sanitized(&self) -> Self {
        DffParams {
            ic_in: positive(self.ic_in, IC_FLOOR),
            ic_out: positive(self.ic_out, IC_FLOOR),
            l_store: positive(self.l_store, L_FLOOR),
            bias_store: finite(self.bias_store, 0.0),
            bias_out: finite(self.bias_out, 0.0),
            pulse_amplitude: finite(self.pulse_amplitude, 0.0),
        }
    }
}

/// DFF probes.
#[derive(Debug, Clone, Copy)]
pub struct DffProbes {
    /// Input junction (slips when a data pulse is captured).
    pub input: ElementId,
    /// Readout junction (slips when the stored fluxon is clocked out —
    /// this is the cell's output event).
    pub output: ElementId,
    /// Output-side JTL junction confirming the released pulse
    /// propagates onward.
    pub forward: ElementId,
    /// The node where data pulses are injected.
    pub data_node: NodeId,
    /// The node where clock pulses are injected.
    pub clock_node: NodeId,
}

/// Build a destructive-readout D flip-flop.
///
/// A data pulse switches the input junction and stores one fluxon in
/// the quantizing loop; a subsequent clock pulse switches the readout
/// junction, releasing the fluxon as an output pulse. A clock with no
/// stored fluxon must produce no output ("0" readout).
///
/// `data_times` and `clock_times` give the injection schedules.
pub fn dff(data_times: &[f64], clock_times: &[f64], p: &DffParams) -> (Circuit, DffProbes) {
    let p = p.sanitized();
    let mut c = Circuit::new();

    // Data input through a short JTL stage.
    let data_entry = c.node();
    for &t in data_times {
        c.add_source(
            data_entry,
            Waveform::sfq_pulse(non_negative(t, 0.0), p.pulse_amplitude),
        )
        .built();
    }
    let store = c.node();
    c.add_inductor(data_entry, store, 6.0e-12).built();
    let input = c
        .add_jj(store, NodeId::GROUND, JjParams::critically_damped(p.ic_in))
        .built();
    c.add_bias(store, p.bias_store).built();

    // Quantizing storage loop from the storage node to the readout node.
    let read = c.node();
    c.add_inductor(store, read, p.l_store).built();
    let output = c
        .add_jj(read, NodeId::GROUND, JjParams::critically_damped(p.ic_out))
        .built();
    c.add_bias(read, p.bias_out).built();

    // Clock injection at the readout node.
    let clock_node = read;
    for &t in clock_times {
        c.add_source(
            read,
            Waveform::sfq_pulse(non_negative(t, 0.0), p.pulse_amplitude),
        )
        .built();
    }

    // Output JTL stage to observe the released pulse.
    let fwd = c.node();
    c.add_inductor(read, fwd, 10.0e-12).built();
    let forward = c
        .add_jj(fwd, NodeId::GROUND, JjParams::critically_damped(p.ic_in))
        .built();
    c.add_bias(fwd, 0.7e-4).built();

    (
        c,
        DffProbes {
            input,
            output,
            forward,
            data_node: data_entry,
            clock_node,
        },
    )
}

/// Shift-register probes: the readout junction of every stage.
#[derive(Debug, Clone)]
pub struct ShiftRegisterProbes {
    /// Per-stage readout junctions; a slip on stage `k` means the
    /// datum advanced out of stage `k`.
    pub stage_outputs: Vec<ElementId>,
}

/// Build an `n`-stage shift register: a chain of DFF cells sharing a
/// clock train. A single '1' is injected at `data_time` and should
/// advance one stage per clock pulse, exactly like the paper's
/// shift-register-based on-chip memory (Fig. 2(b)).
///
/// `clock_times` drives every stage simultaneously (counter-flow
/// clocking is emulated by skewing the per-stage injection times by
/// `stage_clock_skew` seconds: stage k fires at `t + k·skew`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn shift_register(
    n: usize,
    data_time: f64,
    clock_times: &[f64],
    stage_clock_skew: f64,
    p: &DffParams,
) -> (Circuit, ShiftRegisterProbes) {
    assert!(n > 0, "a shift register needs at least one stage");
    let p = p.sanitized();
    let stage_clock_skew = finite(stage_clock_skew, 0.0);
    let mut c = Circuit::new();

    let mut prev = c.node();
    c.add_source(
        prev,
        Waveform::sfq_pulse(non_negative(data_time, 0.0), p.pulse_amplitude),
    )
    .built();

    let mut stage_outputs = Vec::with_capacity(n);
    for k in 0..n {
        // Storage node.
        let store = c.node();
        c.add_inductor(prev, store, 6.0e-12).built();
        let _input = c
            .add_jj(store, NodeId::GROUND, JjParams::critically_damped(p.ic_in))
            .built();
        c.add_bias(store, p.bias_store).built();

        // Readout node.
        let read = c.node();
        c.add_inductor(store, read, p.l_store).built();
        let out = c
            .add_jj(read, NodeId::GROUND, JjParams::critically_damped(p.ic_out))
            .built();
        c.add_bias(read, p.bias_out).built();
        // Per-stage clock (counter-flow skew: later stages fire earlier
        // for negative skew, later for positive).
        let times: Vec<f64> = clock_times
            .iter()
            .map(|t| non_negative(t + stage_clock_skew * k as f64, 0.0))
            .collect();
        for t in times {
            c.add_source(read, Waveform::sfq_pulse(t, p.pulse_amplitude))
                .built();
        }
        stage_outputs.push(out);
        prev = read;
    }
    (c, ShiftRegisterProbes { stage_outputs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{SimOptions, Solver};

    fn run(c: Circuit, t_end: f64) -> crate::SimResult {
        Solver::new(c, SimOptions::default())
            .expect("valid circuit")
            .try_run(t_end)
            .expect("simulation converges")
    }

    #[test]
    fn jtl_propagates_single_pulse() {
        let p = JtlParams::default();
        let (c, stages) = jtl_chain(6, &p);
        let out = run(c, 150e-12);
        for (k, jj) in stages.iter().enumerate() {
            assert_eq!(out.pulse_count(*jj), 1, "stage {k} must fire exactly once");
        }
        // Arrival times increase monotonically down the line.
        let times: Vec<f64> = stages.iter().map(|j| out.pulse_times(*j)[0]).collect();
        for w in times.windows(2) {
            assert!(w[1] > w[0], "pulse must move forward: {times:?}");
        }
        // Per-stage delay is ps-scale.
        let per_stage = (times[5] - times[0]) / 5.0;
        assert!(
            per_stage > 0.5e-12 && per_stage < 20e-12,
            "per-stage delay {per_stage:e}"
        );
    }

    #[test]
    fn jtl_without_input_is_silent() {
        let p = JtlParams {
            input_amplitude: 0.0,
            ..Default::default()
        };
        // amplitude 0 is fine for the source wave; build manually to
        // avoid validation of zero amplitude (allowed).
        let (c, stages) = jtl_chain(4, &p);
        let out = run(c, 150e-12);
        for jj in stages {
            assert_eq!(out.pulse_count(jj), 0);
        }
    }

    #[test]
    fn splitter_duplicates_pulse() {
        let (c, probes) = splitter(&JtlParams::default());
        let out = run(c, 150e-12);
        assert_eq!(out.pulse_count(probes.input), 1, "hub fires once");
        assert_eq!(out.pulse_count(probes.out_a), 1, "branch A fires");
        assert_eq!(out.pulse_count(probes.out_b), 1, "branch B fires");
    }

    #[test]
    fn merger_forwards_either_input() {
        // Note: this simplified confluence buffer exhibits back-action
        // on the idle branch junction (real cells add isolation JTLs);
        // the functional contract is one *output* pulse per input.
        let p = JtlParams::default();
        let (c, probes) = merger(Some(60e-12), None, &p);
        let out = run(c, 160e-12);
        assert_eq!(out.pulse_count(probes.in_a), 1, "driven branch fires");
        assert_eq!(
            out.pulse_count(probes.output),
            1,
            "A-side pulse must emerge"
        );

        let (c, probes) = merger(None, Some(80e-12), &p);
        let out = run(c, 180e-12);
        assert_eq!(out.pulse_count(probes.in_b), 1, "driven branch fires");
        assert_eq!(
            out.pulse_count(probes.output),
            1,
            "B-side pulse must emerge"
        );
    }

    #[test]
    fn merger_quiet_without_inputs() {
        let (c, probes) = merger(None, None, &JtlParams::default());
        let out = run(c, 160e-12);
        assert_eq!(out.pulse_count(probes.output), 0);
    }

    #[test]
    fn dff_stores_then_releases_on_clock() {
        let p = DffParams::default();
        // Data at 60 ps, clock at 100 ps.
        let (c, probes) = dff(&[60e-12], &[100e-12], &p);
        let out = run(c, 160e-12);
        assert_eq!(out.pulse_count(probes.input), 1, "datum captured");
        assert_eq!(out.pulse_count(probes.output), 1, "datum released by clock");
        let t_out = out.pulse_times(probes.output)[0];
        assert!(
            t_out > 100e-12,
            "release happens after the clock: {t_out:e}"
        );
        assert_eq!(out.pulse_count(probes.forward), 1, "pulse propagates out");
    }

    #[test]
    fn dff_clock_without_data_reads_zero() {
        let p = DffParams::default();
        let (c, probes) = dff(&[], &[100e-12], &p);
        let out = run(c, 160e-12);
        assert_eq!(
            out.pulse_count(probes.output),
            0,
            "no stored fluxon, no output"
        );
        assert_eq!(out.pulse_count(probes.forward), 0);
    }

    #[test]
    fn dff_holds_between_clocks() {
        let p = DffParams::default();
        // Data at 60 ps; two clocks. First clock releases it; second
        // clock reads an empty cell.
        let (c, probes) = dff(&[60e-12], &[100e-12, 140e-12], &p);
        let out = run(c, 200e-12);
        assert_eq!(out.pulse_count(probes.output), 1, "only one release");
    }

    /// The transient-domain version of the paper's Fig. 7 clocking
    /// argument: at the tightest working period, counter-flow clock
    /// skew (later stages clocked earlier) keeps the register correct,
    /// while a small concurrent-direction skew opens a data/clock race
    /// and corrupts the shift.
    #[test]
    fn counterflow_skew_tolerant_concurrent_races() {
        let p = DffParams::default();
        let period = 14e-12;
        let trial = |skew: f64| {
            let clocks: Vec<f64> = (0..3).map(|k| 80e-12 + period * k as f64).collect();
            let (c, pr) = shift_register(3, 60e-12, &clocks, skew, &p);
            let out = run(c, 80e-12 + period * 4.0 + 60e-12);
            pr.stage_outputs.iter().all(|j| out.pulse_count(*j) == 1)
        };
        assert!(trial(-2e-12), "counter-flow skew must shift correctly");
        assert!(
            !trial(2e-12),
            "concurrent-direction skew must race at this period"
        );
    }

    #[test]
    fn clocked_and_truth_table() {
        let p = AndParams::default();
        let run = |a: &[f64], b: &[f64]| {
            let (c, pr) = clocked_and(a, b, &[100e-12], &p);
            let out = run(c, 160e-12);
            (
                out.pulse_count(pr.store_a),
                out.pulse_count(pr.store_b),
                out.pulse_count(pr.output),
            )
        };
        // 1·1 = 1
        assert_eq!(run(&[60e-12], &[60e-12]).2, 1, "11 -> output");
        // 1·0 = 0 and 0·1 = 0
        assert_eq!(run(&[60e-12], &[]).2, 0, "10 -> silence");
        assert_eq!(run(&[], &[60e-12]).2, 0, "01 -> silence");
        // 0·0 = 0
        assert_eq!(run(&[], &[]).2, 0, "00 -> silence");
    }

    #[test]
    fn clocked_and_captures_both_inputs() {
        let p = AndParams::default();
        let (c, pr) = clocked_and(&[60e-12], &[70e-12], &[110e-12], &p);
        let out = run(c, 170e-12);
        assert_eq!(out.pulse_count(pr.store_a), 1);
        assert_eq!(out.pulse_count(pr.store_b), 1);
        assert_eq!(out.pulse_count(pr.output), 1);
        let t = out.pulse_times(pr.output)[0];
        assert!(t > 110e-12, "release after the clock: {t:e}");
    }

    #[test]
    fn insane_parameters_build_and_simulate_without_panicking() {
        // Variation injection can drive any field non-physical; the
        // builders must degrade to a non-working cell, never panic.
        let bad_jtl = JtlParams {
            ic: -1.0,
            bias_frac: f64::NAN,
            l: 0.0,
            input_amplitude: f64::INFINITY,
            input_time: -5.0,
        };
        let (c, _) = jtl_chain(3, &bad_jtl);
        let _ = Solver::new(c, SimOptions::adaptive()).and_then(|s| s.try_run(50e-12));

        let bad_dff = DffParams {
            ic_in: f64::NEG_INFINITY,
            ic_out: f64::NAN,
            l_store: -1e-12,
            bias_store: f64::NAN,
            bias_out: f64::INFINITY,
            pulse_amplitude: f64::NAN,
        };
        let (c, _) = dff(&[f64::NAN], &[-3.0], &bad_dff);
        let _ = Solver::new(c, SimOptions::adaptive()).and_then(|s| s.try_run(50e-12));

        let bad_and = AndParams {
            ic_store: 0.0,
            ic_out: -2.0,
            l_store: f64::NAN,
            bias_store: -1.0,
            bias_out: f64::NAN,
            pulse_amplitude: f64::INFINITY,
            clock_amplitude: f64::NAN,
        };
        let (c, _) = clocked_and(&[60e-12], &[f64::INFINITY], &[100e-12], &bad_and);
        let _ = Solver::new(c, SimOptions::adaptive()).and_then(|s| s.try_run(50e-12));

        let (c, _) = splitter(&bad_jtl);
        let _ = Solver::new(c, SimOptions::adaptive()).and_then(|s| s.try_run(50e-12));

        let (c, _) = merger(Some(f64::NAN), Some(-1.0), &bad_jtl);
        let _ = Solver::new(c, SimOptions::adaptive()).and_then(|s| s.try_run(50e-12));

        let (c, _) = shift_register(2, f64::NAN, &[100e-12], f64::NAN, &bad_dff);
        let _ = Solver::new(c, SimOptions::adaptive()).and_then(|s| s.try_run(50e-12));
    }

    #[test]
    fn sanitized_is_identity_on_valid_params() {
        let p = JtlParams::default();
        assert_eq!(p, p.sanitized());
        let d = DffParams::default();
        assert_eq!(d, d.sanitized());
        let a = AndParams::default();
        assert_eq!(a, a.sanitized());
    }

    #[test]
    fn shift_register_advances_one_stage_per_clock() {
        let p = DffParams::default();
        let clocks = [100e-12, 140e-12, 180e-12];
        let (c, probes) = shift_register(3, 60e-12, &clocks, 0.0, &p);
        let out = run(c, 240e-12);
        // The datum leaves stage 0 on the first clock, stage 1 on the
        // second, stage 2 on the third.
        for (k, jj) in probes.stage_outputs.iter().enumerate() {
            assert_eq!(out.pulse_count(*jj), 1, "stage {k} must emit exactly once");
            let t = out.pulse_times(*jj)[0];
            assert!(
                t > clocks[k] && t < clocks[k] + 30e-12,
                "stage {k} released at {t:e}, clock at {:e}",
                clocks[k]
            );
        }
    }
}

/// Clocked-AND probes.
#[derive(Debug, Clone, Copy)]
pub struct AndProbes {
    /// Input-A storage junction.
    pub store_a: ElementId,
    /// Input-B storage junction.
    pub store_b: ElementId,
    /// Readout junction: fires on clock only when both inputs hold a
    /// fluxon.
    pub output: ElementId,
}

/// Parameters of the clocked AND gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AndParams {
    /// Storage junction critical current per input, amperes.
    pub ic_store: f64,
    /// Readout junction critical current, amperes.
    pub ic_out: f64,
    /// Storage-loop inductance per input, henries.
    pub l_store: f64,
    /// Bias into each storage node, amperes.
    pub bias_store: f64,
    /// Bias into the readout node, amperes.
    pub bias_out: f64,
    /// Input trigger amplitude, amperes.
    pub pulse_amplitude: f64,
    /// Clock trigger amplitude, amperes.
    pub clock_amplitude: f64,
}

impl Default for AndParams {
    fn default() -> Self {
        AndParams {
            ic_store: 1.0e-4,
            ic_out: 2.0e-4,
            l_store: 26.0e-12,
            bias_store: 0.5e-4,
            bias_out: 0.5e-4,
            pulse_amplitude: 2.8e-4,
            clock_amplitude: 2.0e-4,
        }
    }
}

impl AndParams {
    /// Project onto the nearest buildable parameter set (see the
    /// module-level robustness contract).
    pub fn sanitized(&self) -> Self {
        AndParams {
            ic_store: positive(self.ic_store, IC_FLOOR),
            ic_out: positive(self.ic_out, IC_FLOOR),
            l_store: positive(self.l_store, L_FLOOR),
            bias_store: finite(self.bias_store, 0.0),
            bias_out: finite(self.bias_out, 0.0),
            pulse_amplitude: finite(self.pulse_amplitude, 0.0),
            clock_amplitude: finite(self.clock_amplitude, 0.0),
        }
    }
}

/// Build a clocked AND gate: two DFF-style storage loops share a
/// readout junction sized so that the clock releases an output pulse
/// only when *both* loops hold a fluxon (their loop currents add at
/// the readout node). One input alone must read '0'.
pub fn clocked_and(
    a_times: &[f64],
    b_times: &[f64],
    clock_times: &[f64],
    p: &AndParams,
) -> (Circuit, AndProbes) {
    let p = p.sanitized();
    let mut c = Circuit::new();
    let read = c.node();

    let input = |c: &mut Circuit, times: &[f64]| {
        let entry = c.node();
        for &t in times {
            c.add_source(
                entry,
                Waveform::sfq_pulse(non_negative(t, 0.0), p.pulse_amplitude),
            )
            .built();
        }
        let store = c.node();
        c.add_inductor(entry, store, 6.0e-12).built();
        let id = c
            .add_jj(
                store,
                NodeId::GROUND,
                JjParams::critically_damped(p.ic_store),
            )
            .built();
        c.add_bias(store, p.bias_store).built();
        c.add_inductor(store, read, p.l_store).built();
        id
    };
    let store_a = input(&mut c, a_times);
    let store_b = input(&mut c, b_times);

    let output = c
        .add_jj(read, NodeId::GROUND, JjParams::critically_damped(p.ic_out))
        .built();
    c.add_bias(read, p.bias_out).built();
    for &t in clock_times {
        c.add_source(
            read,
            Waveform::sfq_pulse(non_negative(t, 0.0), p.clock_amplitude),
        )
        .built();
    }

    (
        c,
        AndProbes {
            store_a,
            store_b,
            output,
        },
    )
}
