//! JSIM-style text netlists.
//!
//! The paper's circuit-level golden model, JSIM, consumes SPICE-like
//! netlists; this module accepts the same flavour so that cell
//! characterization decks are plain text files:
//!
//! ```text
//! * a two-stage JTL
//! .model jmain jj(icrit=0.1m, r=2.57, c=0.5p)
//! B1   n1  0   jmain
//! B2   n2  0   jmain
//! L1   in  n1  10p
//! L2   n1  n2  10p
//! IB1  0   n1  dc(0.07m)
//! IB2  0   n2  dc(0.07m)
//! IIN  0   in  gaussian(60p, 1p, 0.2m)
//! .tran 0.1p 250p
//! .end
//! ```
//!
//! Numbers accept SPICE suffixes (`f p n u m k meg g t`). Current
//! sources support `dc(a)`, `gaussian(t0, sigma, amp)`,
//! `ramp(t0, rise, amp)` and `clock(start, period, count, amp)`.
//! `I a b f(...)` drives current from node `a` into node `b`.

use std::collections::BTreeMap;

use crate::circuit::{Circuit, ElementId, JjParams, NodeId};
use crate::solver::SimOptions;
use crate::waveform::Waveform;

/// A parsed netlist: the circuit, named probes for every junction, and
/// the `.tran` directive if present.
#[derive(Debug, Clone)]
pub struct ParsedNetlist {
    /// The circuit, ready for [`crate::Solver`].
    pub circuit: Circuit,
    /// Junction name (upper-cased) → element id, for pulse probing.
    pub junctions: BTreeMap<String, ElementId>,
    /// Node name → node id (ground is `0` or `GND`).
    pub nodes: BTreeMap<String, NodeId>,
    /// `(timestep, stop_time)` seconds from `.tran`, if given.
    pub tran: Option<(f64, f64)>,
}

impl ParsedNetlist {
    /// Solver options honouring the `.tran` timestep (default options
    /// otherwise).
    pub fn sim_options(&self) -> SimOptions {
        let mut opts = SimOptions::default();
        if let Some((dt, _)) = self.tran {
            opts.dt = dt;
        }
        opts
    }

    /// Stop time from `.tran`, or a 250 ps default.
    pub fn stop_time(&self) -> f64 {
        self.tran.map_or(250e-12, |(_, t)| t)
    }
}

/// Netlist parse errors, with 1-based line numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct NetlistError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for NetlistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "netlist line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for NetlistError {}

fn err(line: usize, message: impl Into<String>) -> NetlistError {
    NetlistError {
        line,
        message: message.into(),
    }
}

/// Parse a SPICE number with optional suffix.
fn parse_value(tok: &str, line: usize) -> Result<f64, NetlistError> {
    let t = tok.trim().to_ascii_lowercase();
    let (num, mult) = if let Some(stripped) = t.strip_suffix("meg") {
        (stripped, 1e6)
    } else if let Some(stripped) = t.strip_suffix(['f', 'p', 'n', 'u', 'm', 'k', 'g']) {
        let mult = match t.as_bytes()[t.len() - 1] {
            b'f' => 1e-15,
            b'p' => 1e-12,
            b'n' => 1e-9,
            b'u' => 1e-6,
            b'm' => 1e-3,
            b'k' => 1e3,
            b'g' => 1e9,
            _ => unreachable!(),
        };
        (stripped, mult)
    } else {
        (t.as_str(), 1.0)
    };
    num.parse::<f64>()
        .map(|v| v * mult)
        .map_err(|_| err(line, format!("cannot parse number '{tok}'")))
}

/// Parse `name(arg, arg, ...)`.
fn parse_call(tok: &str, line: usize) -> Result<(&str, Vec<f64>), NetlistError> {
    let open = tok
        .find('(')
        .ok_or_else(|| err(line, format!("expected function call, got '{tok}'")))?;
    let close = tok
        .rfind(')')
        .ok_or_else(|| err(line, format!("missing ')' in '{tok}'")))?;
    let name = &tok[..open];
    let args: Result<Vec<f64>, _> = tok[open + 1..close]
        .split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| parse_value(s, line))
        .collect();
    Ok((name, args?))
}

fn parse_waveform(tok: &str, line: usize) -> Result<Waveform, NetlistError> {
    let (name, args) = parse_call(tok, line)?;
    let want = |n: usize| -> Result<(), NetlistError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(err(
                line,
                format!("{name}() takes {n} arguments, got {}", args.len()),
            ))
        }
    };
    match name.to_ascii_lowercase().as_str() {
        "dc" => {
            want(1)?;
            Ok(Waveform::Dc(args[0]))
        }
        "gaussian" => {
            want(3)?;
            Ok(Waveform::Gaussian {
                t0: args[0],
                sigma: args[1],
                amplitude: args[2],
            })
        }
        "ramp" => {
            want(3)?;
            Ok(Waveform::Ramp {
                t0: args[0],
                rise: args[1],
                amplitude: args[2],
            })
        }
        "clock" => {
            want(4)?;
            let n = args[2] as usize;
            Ok(Waveform::clock(args[0], args[1], n, args[3]))
        }
        other => Err(err(line, format!("unknown source function '{other}'"))),
    }
}

#[derive(Debug, Default)]
struct ModelTable(BTreeMap<String, JjParams>);

impl ModelTable {
    fn parse_model(&mut self, rest: &str, line: usize) -> Result<(), NetlistError> {
        // .model NAME jj(icrit=…, r=…, c=…)
        let mut parts = rest.split_whitespace();
        let name = parts
            .next()
            .ok_or_else(|| err(line, ".model needs a name"))?
            .to_ascii_uppercase();
        let spec: String = parts.collect::<Vec<_>>().join("").to_ascii_lowercase();
        let Some(body) = spec.strip_prefix("jj(").and_then(|s| s.strip_suffix(')')) else {
            return Err(err(line, "only jj(...) models are supported"));
        };
        let mut ic = None;
        let mut r = None;
        let mut c = None;
        for kv in body.split(',').filter(|s| !s.trim().is_empty()) {
            let (k, v) = kv
                .split_once('=')
                .ok_or_else(|| err(line, format!("bad model parameter '{kv}'")))?;
            let v = parse_value(v, line)?;
            match k.trim().to_ascii_lowercase().as_str() {
                "icrit" | "ic" => ic = Some(v),
                "r" | "rn" => r = Some(v),
                "c" | "cap" => c = Some(v),
                other => return Err(err(line, format!("unknown model parameter '{other}'"))),
            }
        }
        let ic = ic.ok_or_else(|| err(line, "jj model needs icrit"))?;
        let params = match (r, c) {
            (Some(r), Some(c)) => JjParams { ic, r, c },
            // Unspecified shunt: critically damped defaults.
            _ => JjParams::critically_damped(ic),
        };
        self.0.insert(name, params);
        Ok(())
    }

    fn get(&self, name: &str, line: usize) -> Result<JjParams, NetlistError> {
        self.0
            .get(&name.to_ascii_uppercase())
            .copied()
            .ok_or_else(|| err(line, format!("undefined model '{name}'")))
    }
}

/// Parse a netlist into a runnable circuit.
///
/// # Errors
///
/// Returns a [`NetlistError`] with the offending line on any syntax or
/// semantic problem (unknown element, undefined model, bad number…).
pub fn parse_netlist(text: &str) -> Result<ParsedNetlist, NetlistError> {
    let mut circuit = Circuit::new();
    let mut nodes: BTreeMap<String, NodeId> = BTreeMap::new();
    nodes.insert("0".to_owned(), NodeId::GROUND);
    nodes.insert("GND".to_owned(), NodeId::GROUND);
    let mut junctions = BTreeMap::new();
    let mut models = ModelTable::default();
    let mut tran = None;

    let mut node = |circuit: &mut Circuit, name: &str| -> NodeId {
        let key = name.to_ascii_uppercase();
        *nodes.entry(key).or_insert_with(|| circuit.node())
    };

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split(['*', ';', '#']).next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut toks = line.split_whitespace();
        // The line is non-empty after comment stripping, but spell the
        // fallback out instead of unwrapping.
        let Some(head) = toks.next() else { continue };
        let upper = head.to_ascii_uppercase();

        if let Some(directive) = upper.strip_prefix('.') {
            match directive {
                "MODEL" => {
                    let rest = line[".model".len()..].trim();
                    models.parse_model(rest, lineno)?;
                }
                "TRAN" => {
                    let dt = parse_value(
                        toks.next()
                            .ok_or_else(|| err(lineno, ".tran needs a timestep"))?,
                        lineno,
                    )?;
                    let stop = parse_value(
                        toks.next()
                            .ok_or_else(|| err(lineno, ".tran needs a stop time"))?,
                        lineno,
                    )?;
                    tran = Some((dt, stop));
                }
                "END" => break,
                other => return Err(err(lineno, format!("unknown directive '.{other}'"))),
            }
            continue;
        }

        let mut two_nodes = || -> Result<(NodeId, NodeId), NetlistError> {
            let a = toks
                .next()
                .ok_or_else(|| err(lineno, "missing first node"))?;
            let b = toks
                .next()
                .ok_or_else(|| err(lineno, "missing second node"))?;
            Ok((node(&mut circuit, a), node(&mut circuit, b)))
        };

        let as_sim = |e: crate::SimError, lineno: usize| err(lineno, e.to_string());

        match upper.as_bytes()[0] {
            b'B' => {
                let (a, b) = two_nodes()?;
                let model = toks
                    .next()
                    .ok_or_else(|| err(lineno, "junction needs a model name"))?;
                let params = models.get(model, lineno)?;
                let id = circuit
                    .add_jj(a, b, params)
                    .map_err(|e| as_sim(e, lineno))?;
                junctions.insert(upper.clone(), id);
            }
            b'L' => {
                let (a, b) = two_nodes()?;
                let v = parse_value(
                    toks.next()
                        .ok_or_else(|| err(lineno, "inductor needs a value"))?,
                    lineno,
                )?;
                circuit
                    .add_inductor(a, b, v)
                    .map_err(|e| as_sim(e, lineno))?;
            }
            b'R' => {
                let (a, b) = two_nodes()?;
                let v = parse_value(
                    toks.next()
                        .ok_or_else(|| err(lineno, "resistor needs a value"))?,
                    lineno,
                )?;
                circuit
                    .add_resistor(a, b, v)
                    .map_err(|e| as_sim(e, lineno))?;
            }
            b'C' => {
                let (a, b) = two_nodes()?;
                let v = parse_value(
                    toks.next()
                        .ok_or_else(|| err(lineno, "capacitor needs a value"))?,
                    lineno,
                )?;
                circuit
                    .add_capacitor(a, b, v)
                    .map_err(|e| as_sim(e, lineno))?;
            }
            b'I' => {
                let (a, b) = two_nodes()?;
                // Function calls may contain spaces after commas; glue
                // the remaining tokens back together.
                let spec: String = toks.by_ref().collect::<Vec<_>>().concat();
                if spec.is_empty() {
                    return Err(err(lineno, "source needs a waveform"));
                }
                let wave = parse_waveform(&spec, lineno)?;
                // Current flows from a into b; a source referenced to
                // ground on either side injects into the other node.
                if a == NodeId::GROUND {
                    circuit.add_source(b, wave).map_err(|e| as_sim(e, lineno))?;
                } else if b == NodeId::GROUND {
                    // Pulling current out of `a`.
                    let negated = negate(wave);
                    circuit
                        .add_source(a, negated)
                        .map_err(|e| as_sim(e, lineno))?;
                } else {
                    return Err(err(
                        lineno,
                        "floating current sources are not supported; reference one side to ground",
                    ));
                }
            }
            other => {
                return Err(err(
                    lineno,
                    format!("unknown element type '{}'", other as char),
                ))
            }
        }
        if let Some(extra) = toks.next() {
            return Err(err(lineno, format!("unexpected trailing token '{extra}'")));
        }
    }

    Ok(ParsedNetlist {
        circuit,
        junctions,
        nodes,
        tran,
    })
}

fn negate(w: Waveform) -> Waveform {
    match w {
        Waveform::Dc(a) => Waveform::Dc(-a),
        Waveform::Gaussian {
            t0,
            sigma,
            amplitude,
        } => Waveform::Gaussian {
            t0,
            sigma,
            amplitude: -amplitude,
        },
        Waveform::Train {
            times,
            sigma,
            amplitude,
        } => Waveform::Train {
            times,
            sigma,
            amplitude: -amplitude,
        },
        Waveform::Ramp {
            t0,
            rise,
            amplitude,
        } => Waveform::Ramp {
            t0,
            rise,
            amplitude: -amplitude,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Solver;

    const JTL_DECK: &str = r"
* two-stage JTL characterization deck
.model jmain jj(icrit=0.1m, r=2.57, c=0.5p)
B1   n1  0   jmain
B2   n2  0   jmain
L1   in  n1  10p
L2   n1  n2  10p
IB1  0   n1  ramp(0, 20p, 0.07m)
IB2  0   n2  ramp(0, 20p, 0.07m)
IIN  0   in  gaussian(60p, 1p, 0.2m)
.tran 0.1p 200p
.end
";

    #[test]
    fn parses_and_simulates_jtl_deck() {
        let parsed = parse_netlist(JTL_DECK).expect("valid deck");
        assert_eq!(parsed.circuit.jj_count(), 2);
        assert_eq!(parsed.tran, Some((0.1e-12, 200e-12)));
        let out = Solver::new(parsed.circuit.clone(), parsed.sim_options())
            .expect("solvable")
            .try_run(parsed.stop_time())
            .expect("converges");
        let b1 = parsed.junctions["B1"];
        let b2 = parsed.junctions["B2"];
        assert_eq!(out.pulse_count(b1), 1, "stage 1 fires");
        assert_eq!(out.pulse_count(b2), 1, "stage 2 fires");
        assert!(out.pulse_times(b2)[0] > out.pulse_times(b1)[0]);
    }

    #[test]
    fn spice_suffixes() {
        let close = |got: f64, want: f64| (got - want).abs() <= 1e-12 * want.abs();
        assert!(close(parse_value("10p", 1).unwrap(), 10e-12));
        assert!(close(parse_value("0.1m", 1).unwrap(), 0.1e-3));
        assert!(close(parse_value("2meg", 1).unwrap(), 2e6));
        assert!(close(parse_value("3k", 1).unwrap(), 3e3));
        assert!(close(parse_value("4", 1).unwrap(), 4.0));
        assert!(close(parse_value("5f", 1).unwrap(), 5e-15));
        assert!(parse_value("abc", 1).is_err());
    }

    #[test]
    fn model_without_shunt_is_critically_damped() {
        let deck = "
.model j1 jj(icrit=0.1m)
B1 a 0 j1
";
        let parsed = parse_netlist(deck).unwrap();
        assert_eq!(parsed.circuit.jj_count(), 1);
    }

    #[test]
    fn undefined_model_is_an_error() {
        let e = parse_netlist("B1 a 0 nosuch\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("undefined model"));
    }

    #[test]
    fn unknown_element_reports_line() {
        let e = parse_netlist("\n\nX1 a b c\n").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn comments_and_case_are_tolerated() {
        let deck = "
* comment line
.MODEL J1 JJ(ICRIT=0.1M)
b1 N1 gnd j1    ; trailing comment
ib 0 n1 DC(0.05m)
";
        let parsed = parse_netlist(deck).unwrap();
        assert!(parsed.junctions.contains_key("B1"));
        assert_eq!(parsed.nodes["N1"].index(), 1);
    }

    #[test]
    fn reversed_source_pulls_current() {
        // I n1 0 dc(x) pulls current out of n1; with only a resistor
        // the node settles negative.
        let deck = "
R1 n1 0 2
I1 n1 0 dc(1m)
.tran 0.1p 50p
";
        let parsed = parse_netlist(deck).unwrap();
        let mut opts = parsed.sim_options();
        opts.record_nodes = vec![parsed.nodes["N1"]];
        let out = Solver::new(parsed.circuit.clone(), opts)
            .unwrap()
            .try_run(parsed.stop_time())
            .unwrap();
        let v = *out.traces[0].last().unwrap();
        assert!((v + 2e-3).abs() < 1e-5, "v = {v}");
    }

    #[test]
    fn floating_source_rejected() {
        let e = parse_netlist("I1 a b dc(1m)\n").unwrap_err();
        assert!(e.message.contains("ground"));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let e = parse_netlist("R1 a 0 5 extra\n").unwrap_err();
        assert!(e.message.contains("trailing"));
    }

    #[test]
    fn clock_waveform_parses() {
        let deck = "
R1 n1 0 1
ICLK 0 n1 clock(100p, 20p, 4, 0.1m)
";
        let parsed = parse_netlist(deck).unwrap();
        assert_eq!(parsed.circuit.jj_count(), 0);
        // 4 pulses every 20 ps from 100 ps.
        // (Indirectly validated through the waveform's evaluation.)
        assert!(parsed.tran.is_none());
        assert_eq!(parsed.stop_time(), 250e-12);
    }
}
