//! Circuit description and builder.

use crate::error::SimError;
use crate::waveform::Waveform;

/// A circuit node. Node 0 is always ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The ground node.
    pub const GROUND: NodeId = NodeId(0);

    /// Raw index (0 = ground).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of an element within its family (junction, inductor, …),
/// returned by the `add_*` methods and used to query results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ElementId(pub(crate) usize);

impl ElementId {
    /// Raw index within the element family.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Physical parameters of one Josephson junction (RCSJ model).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JjParams {
    /// Critical current in amperes.
    pub ic: f64,
    /// Shunt resistance in ohms.
    pub r: f64,
    /// Junction capacitance in farads.
    pub c: f64,
}

impl JjParams {
    /// A critically damped (βc ≈ 1) junction with the given critical
    /// current, representative of the AIST 1.0 µm niobium process.
    ///
    /// The shunt is chosen as `R = sqrt(Φ₀ / (2π·I_c·C))` with
    /// C = 0.5 pF · (I_c / 0.1 mA).
    pub fn critically_damped(ic: f64) -> Self {
        let c = 0.5e-12 * (ic / 1.0e-4);
        let r = (crate::PHI0 / (2.0 * std::f64::consts::PI * ic * c)).sqrt();
        JjParams { ic, r, c }
    }

    /// Stewart–McCumber damping parameter βc = 2π·I_c·R²·C / Φ₀.
    pub fn beta_c(&self) -> f64 {
        2.0 * std::f64::consts::PI * self.ic * self.r * self.r * self.c / crate::PHI0
    }
}

impl Default for JjParams {
    fn default() -> Self {
        Self::critically_damped(1.0e-4)
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Jj {
    pub a: usize,
    pub b: usize,
    pub p: JjParams,
}

#[derive(Debug, Clone)]
pub(crate) struct TwoTerminal {
    pub a: usize,
    pub b: usize,
    pub value: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct Source {
    /// Current flows out of this source into `into` (from ground).
    pub into: usize,
    pub from: usize,
    pub waveform: Waveform,
}

/// A flat netlist of junctions, inductors, resistors, capacitors and
/// current sources. Build with the `add_*` methods, then hand to
/// [`crate::Solver`].
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    pub(crate) node_count: usize, // includes ground
    pub(crate) jjs: Vec<Jj>,
    pub(crate) inductors: Vec<TwoTerminal>,
    pub(crate) resistors: Vec<TwoTerminal>,
    pub(crate) capacitors: Vec<TwoTerminal>,
    pub(crate) sources: Vec<Source>,
}

impl Circuit {
    /// An empty circuit containing only the ground node.
    pub fn new() -> Self {
        Circuit {
            node_count: 1,
            ..Default::default()
        }
    }

    /// Create a fresh node and return its id.
    pub fn node(&mut self) -> NodeId {
        let id = NodeId(self.node_count);
        self.node_count += 1;
        id
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of Josephson junctions.
    pub fn jj_count(&self) -> usize {
        self.jjs.len()
    }

    fn check_node(&self, n: NodeId) -> Result<(), SimError> {
        if n.0 >= self.node_count {
            Err(SimError::UnknownNode(n.0))
        } else {
            Ok(())
        }
    }

    fn check_positive(
        element: &'static str,
        field: &'static str,
        value: f64,
    ) -> Result<(), SimError> {
        if !value.is_finite() || value <= 0.0 {
            Err(SimError::InvalidParameter {
                element,
                field,
                value,
            })
        } else {
            Ok(())
        }
    }

    /// Add a Josephson junction between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Fails on unknown nodes or non-positive `ic`/`r`/`c`.
    pub fn add_jj(&mut self, a: NodeId, b: NodeId, p: JjParams) -> Result<ElementId, SimError> {
        self.check_node(a)?;
        self.check_node(b)?;
        Self::check_positive("jj", "ic", p.ic)?;
        Self::check_positive("jj", "r", p.r)?;
        Self::check_positive("jj", "c", p.c)?;
        self.jjs.push(Jj { a: a.0, b: b.0, p });
        Ok(ElementId(self.jjs.len() - 1))
    }

    /// Add an inductor of `l` henries between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Fails on unknown nodes or non-positive inductance.
    pub fn add_inductor(&mut self, a: NodeId, b: NodeId, l: f64) -> Result<ElementId, SimError> {
        self.check_node(a)?;
        self.check_node(b)?;
        Self::check_positive("inductor", "l", l)?;
        self.inductors.push(TwoTerminal {
            a: a.0,
            b: b.0,
            value: l,
        });
        Ok(ElementId(self.inductors.len() - 1))
    }

    /// Add a resistor of `r` ohms between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Fails on unknown nodes or non-positive resistance.
    pub fn add_resistor(&mut self, a: NodeId, b: NodeId, r: f64) -> Result<ElementId, SimError> {
        self.check_node(a)?;
        self.check_node(b)?;
        Self::check_positive("resistor", "r", r)?;
        self.resistors.push(TwoTerminal {
            a: a.0,
            b: b.0,
            value: r,
        });
        Ok(ElementId(self.resistors.len() - 1))
    }

    /// Add a capacitor of `c` farads between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Fails on unknown nodes or non-positive capacitance.
    pub fn add_capacitor(&mut self, a: NodeId, b: NodeId, c: f64) -> Result<ElementId, SimError> {
        self.check_node(a)?;
        self.check_node(b)?;
        Self::check_positive("capacitor", "c", c)?;
        self.capacitors.push(TwoTerminal {
            a: a.0,
            b: b.0,
            value: c,
        });
        Ok(ElementId(self.capacitors.len() - 1))
    }

    /// Add a current source driving `waveform` amperes into node
    /// `into` (returning through ground).
    ///
    /// # Errors
    ///
    /// Fails on an unknown node.
    pub fn add_source(&mut self, into: NodeId, waveform: Waveform) -> Result<ElementId, SimError> {
        self.check_node(into)?;
        self.sources.push(Source {
            into: into.0,
            from: 0,
            waveform,
        });
        Ok(ElementId(self.sources.len() - 1))
    }

    /// Add a DC bias current into a node (convenience; soft-started as
    /// a 20 ps ramp so the storage loops settle without spurious
    /// switching).
    ///
    /// # Errors
    ///
    /// Fails on an unknown node.
    pub fn add_bias(&mut self, into: NodeId, amperes: f64) -> Result<ElementId, SimError> {
        self.add_source(
            into,
            Waveform::Ramp {
                t0: 0.0,
                rise: 20.0e-12,
                amplitude: amperes,
            },
        )
    }

    /// Validate overall shape before solving.
    ///
    /// # Errors
    ///
    /// Fails if the circuit has no non-ground nodes.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.node_count <= 1 {
            return Err(SimError::EmptyCircuit);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_circuit() {
        let mut c = Circuit::new();
        let n1 = c.node();
        let n2 = c.node();
        c.add_jj(n1, NodeId::GROUND, JjParams::default()).unwrap();
        c.add_inductor(n1, n2, 10e-12).unwrap();
        c.add_bias(n1, 0.7e-4).unwrap();
        assert_eq!(c.node_count(), 3);
        assert_eq!(c.jj_count(), 1);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn unknown_node_rejected() {
        let mut c = Circuit::new();
        let n1 = c.node();
        let bogus = NodeId(42);
        assert_eq!(
            c.add_inductor(n1, bogus, 1e-12).unwrap_err(),
            SimError::UnknownNode(42)
        );
    }

    #[test]
    fn nonpositive_values_rejected() {
        let mut c = Circuit::new();
        let n1 = c.node();
        assert!(c.add_resistor(n1, NodeId::GROUND, 0.0).is_err());
        assert!(c.add_capacitor(n1, NodeId::GROUND, -1e-12).is_err());
        assert!(c
            .add_jj(
                n1,
                NodeId::GROUND,
                JjParams {
                    ic: f64::NAN,
                    r: 1.0,
                    c: 1e-12
                }
            )
            .is_err());
    }

    #[test]
    fn empty_circuit_rejected() {
        let c = Circuit::new();
        assert_eq!(c.validate().unwrap_err(), SimError::EmptyCircuit);
    }

    #[test]
    fn critically_damped_has_beta_c_one() {
        let p = JjParams::critically_damped(1.0e-4);
        assert!((p.beta_c() - 1.0).abs() < 1e-9, "beta_c = {}", p.beta_c());
    }
}
