//! Transient MNA solver with trapezoidal integration and per-step
//! Newton iteration.
//!
//! Two stepping modes (see [`StepControl`]):
//!
//! * **Fixed** — the classic march at `SimOptions::dt`. This is the
//!   default and is bit-identical to the solver the workspace has
//!   always shipped.
//! * **Adaptive** — a local-truncation-error controller grows the step
//!   up to `dt_max` while the circuit is quiescent and shrinks it back
//!   to `dt_min` around events. An SFQ waveform is flat almost
//!   everywhere outside ~2 ps pulse windows, so this cuts step counts
//!   by an order of magnitude on the stdlib cells while keeping pulse
//!   counts identical and pulse times within a fraction of a
//!   picosecond (see `BENCH_solver.json`).
//!
//! The adaptive controller combines three refinement triggers:
//!
//! 1. **LTE rejection** — each converged step is compared against a
//!    linear extrapolation of the two previous accepted node-voltage
//!    vectors; a deviation above `lte_tol` rejects the step, rolls the
//!    state back and retries at half the step.
//! 2. **Phase-rate refinement** — if any junction phase moved more
//!    than [`PHASE_MAX_STEP`] radians in one step (a pulse in flight),
//!    the step is rejected and refined so switching events are always
//!    resolved at `dt_min` granularity.
//! 3. **Source-event refinement** — source waveforms publish
//!    [`crate::Waveform::refinement_windows`]; the controller never
//!    steps *across* a window start and caps the step inside a window,
//!    so a large quiescent step cannot jump over a trigger pulse the
//!    LTE estimator has no way of seeing.
//!
//! The banded-LU fast path survives adaptation: the factored matrix
//! (and the one-time linear-element stamp) is invalidated only when
//! the step size actually changes, and the controller grows/shrinks
//! `dt` in ×2 plateaus so chord-Newton reuse keeps paying off between
//! events.

use std::f64::consts::PI;
use std::sync::OnceLock;
use std::time::Instant;

use crate::circuit::Circuit;
use crate::error::SimError;
use crate::linalg::{band_width, factor_banded_packed, solve_dense, solve_factored_packed};
use crate::{ElementId, PHI0};

/// Pre-resolved matrix positions of one two-terminal element's
/// conductance stamp: the two diagonal entries and the symmetric
/// off-diagonal pair. `usize::MAX` marks a terminal on ground (no
/// matrix row). Resolving these once per run — in packed-band or
/// dense layout — turns every re-stamp into a branch-light replay
/// over flat index quadruples.
#[derive(Clone, Copy)]
struct StampIdx {
    da: usize,
    db: usize,
    ab: usize,
    ba: usize,
}

/// Add conductance `g` at the positions of `s`, in the same entry
/// order as the historical node-number stamp (diagonal a, diagonal b,
/// then the off-diagonal pair) so accumulated values are bit-identical.
#[inline]
fn apply_stamp(m: &mut [f64], s: StampIdx, g: f64) {
    if s.da != usize::MAX {
        m[s.da] += g;
    }
    if s.db != usize::MAX {
        m[s.db] += g;
    }
    if s.ab != usize::MAX {
        m[s.ab] -= g;
        m[s.ba] -= g;
    }
}

/// The always-on `jjsim.solver.transient_runs` counter: every
/// [`Solver::try_run`] call increments it, metrics enabled or not,
/// exactly like the ad-hoc static it replaced. Lets characterization
/// caches prove, in tests, that a repeated request performed no new
/// transient work.
fn transient_counter() -> &'static sfq_obs::Counter {
    static C: OnceLock<&'static sfq_obs::Counter> = OnceLock::new();
    C.get_or_init(|| sfq_obs::counter("jjsim.solver.transient_runs"))
}

/// Number of transient analyses started by this process so far.
///
/// Deprecated alias: this is now a thin wrapper over the
/// `jjsim.solver.transient_runs` counter in the [`sfq_obs`] registry;
/// prefer `sfq_obs::counter("jjsim.solver.transient_runs").get()` (or
/// [`sfq_obs::snapshot`]) in new code.
pub fn transient_runs() -> u64 {
    transient_counter().get()
}

/// Largest per-step junction phase advance the adaptive controller
/// accepts before rejecting and refining, radians. A 2π slip takes
/// ~2–4 ps, so this pins the step near `dt_min` for the whole flight
/// of a pulse — the same resolution the fixed 0.1 ps march gives it.
const PHASE_MAX_STEP: f64 = 0.35;

/// Phase advance below which a step counts toward growing the
/// plateau, radians: the step only doubles while every junction is
/// essentially static.
const PHASE_SLOW: f64 = 0.05;

/// Accepted steps (quiet on both the LTE and phase criteria) required
/// before the plateau doubles. Amortizes the LU refactorization a
/// step-size change forces.
const GROW_AFTER: u32 = 4;

/// Fraction of `lte_tol` a step must stay under to count toward
/// growth.
const GROW_MARGIN: f64 = 0.3;

/// Per-run metric accumulators, flushed into the [`sfq_obs`] registry
/// in one batch at every exit of [`Solver::try_run`]. The counters are
/// plain locals while the run is in flight, so the per-iteration cost
/// is a register increment whether metrics are on or off; the flush
/// itself is gated on [`sfq_obs::enabled`].
#[derive(Default)]
struct RunMetrics {
    started: Option<Instant>,
    steps: u64,
    newton_iters: u64,
    lu_factor: u64,
    lu_reuse: u64,
    dense_solves: u64,
    reject_lte: u64,
    reject_phase: u64,
    reject_newton: u64,
    refine_source: u64,
    restamps: u64,
}

impl RunMetrics {
    fn start() -> Self {
        RunMetrics {
            started: sfq_obs::enabled().then(Instant::now),
            ..Self::default()
        }
    }

    fn rejected(&self) -> u64 {
        self.reject_lte + self.reject_phase + self.reject_newton
    }

    fn flush(&self, error: Option<&SimError>) {
        if !sfq_obs::enabled() {
            return;
        }
        sfq_obs::add("jjsim.solver.steps", self.steps);
        sfq_obs::add("jjsim.solver.newton_iters", self.newton_iters);
        sfq_obs::add("jjsim.solver.lu_factor", self.lu_factor);
        sfq_obs::add("jjsim.solver.lu_reuse", self.lu_reuse);
        sfq_obs::add("jjsim.solver.dense_solves", self.dense_solves);
        sfq_obs::add("jjsim.solver.steps_rejected", self.rejected());
        sfq_obs::add("jjsim.solver.reject_lte", self.reject_lte);
        sfq_obs::add("jjsim.solver.reject_phase", self.reject_phase);
        sfq_obs::add("jjsim.solver.reject_newton", self.reject_newton);
        sfq_obs::add("jjsim.solver.refine_source", self.refine_source);
        sfq_obs::add("jjsim.solver.restamps", self.restamps);
        match error {
            Some(SimError::NoConvergence { .. }) => {
                sfq_obs::inc("jjsim.solver.convergence_failures");
            }
            Some(SimError::SingularMatrix { .. }) => {
                sfq_obs::inc("jjsim.solver.singular_matrix");
            }
            _ => {}
        }
        if let Some(t0) = self.started {
            sfq_obs::observe("jjsim.solver.run_ms", t0.elapsed().as_secs_f64() * 1e3);
        }
    }
}

/// Kernel slots of [`KernelProf`], in stamp order.
const K_RESTAMP: usize = 0;
const K_STAMP: usize = 1;
const K_JJ_STAMP_RHS: usize = 2;
const K_LU_FACTOR: usize = 3;
const K_LU_SOLVE: usize = 4;
const K_DENSE_SOLVE: usize = 5;
const K_NEWTON: usize = 6;
const K_LTE: usize = 7;
const K_COMMIT: usize = 8;
const K_SLOTS: usize = 9;

/// Per-run kernel-time accumulators for the hierarchical profiler,
/// merged under the open `solver.run` frame in one batch at every exit
/// of [`Solver::try_run`] — the same local-accumulate/flush-once
/// pattern as [`RunMetrics`], so the per-iteration cost with profiling
/// off is a branch on a cached bool. Sections share boundary
/// timestamps ([`KernelProf::lap`] ends one section and starts the
/// next with a single clock read), so consecutive kernels leave no
/// unattributed gap between them — that is what keeps profiled
/// self-time coverage of `solver.run` above the bench gate's floor.
struct KernelProf {
    on: bool,
    mark: Instant,
    ns: [u64; K_SLOTS],
}

impl KernelProf {
    fn start() -> Self {
        KernelProf {
            on: sfq_obs::prof::enabled(),
            mark: Instant::now(),
            ns: [0; K_SLOTS],
        }
    }

    /// Start a section at the current time.
    #[inline]
    fn mark(&mut self) {
        if self.on {
            self.mark = Instant::now();
        }
    }

    /// Close the current section into `slot` and start the next one.
    #[inline]
    fn lap(&mut self, slot: usize) {
        if self.on {
            let now = Instant::now();
            #[allow(clippy::cast_possible_truncation)]
            {
                self.ns[slot] += (now - self.mark).as_nanos() as u64;
            }
            self.mark = now;
        }
    }

    /// Merge the accumulated kernel times under the innermost open
    /// profile frame (`solver.run`) and attach the run's unit
    /// counters. `newton`'s children carry their own self time, so its
    /// own self is only the convergence-check remainder.
    fn flush(&self, m: &RunMetrics) {
        if !self.on {
            return;
        }
        use sfq_obs::prof;
        let attempts = m.steps + m.rejected();
        let newton_children = self.ns[K_JJ_STAMP_RHS]
            + self.ns[K_LU_FACTOR]
            + self.ns[K_LU_SOLVE]
            + self.ns[K_DENSE_SOLVE];
        let merge = |path: &[&str], calls: u64, incl: u64, self_ns: u64| {
            if calls > 0 || incl > 0 {
                prof::record_path(path, calls, incl, self_ns);
            }
        };
        merge(
            &["restamp"],
            m.restamps,
            self.ns[K_RESTAMP],
            self.ns[K_RESTAMP],
        );
        merge(&["stamp"], attempts, self.ns[K_STAMP], self.ns[K_STAMP]);
        merge(
            &["newton"],
            m.newton_iters,
            newton_children + self.ns[K_NEWTON],
            self.ns[K_NEWTON],
        );
        merge(
            &["newton", "jj_stamp_rhs"],
            m.newton_iters,
            self.ns[K_JJ_STAMP_RHS],
            self.ns[K_JJ_STAMP_RHS],
        );
        merge(
            &["newton", "lu_factor"],
            m.lu_factor,
            self.ns[K_LU_FACTOR],
            self.ns[K_LU_FACTOR],
        );
        merge(
            &["newton", "lu_solve"],
            m.lu_factor + m.lu_reuse,
            self.ns[K_LU_SOLVE],
            self.ns[K_LU_SOLVE],
        );
        merge(
            &["newton", "dense_solve"],
            m.dense_solves,
            self.ns[K_DENSE_SOLVE],
            self.ns[K_DENSE_SOLVE],
        );
        merge(&["lte_control"], attempts, self.ns[K_LTE], self.ns[K_LTE]);
        merge(&["commit"], m.steps, self.ns[K_COMMIT], self.ns[K_COMMIT]);
        prof::count("steps", m.steps);
        prof::count("newton_iters", m.newton_iters);
        prof::count("lu_factor", m.lu_factor);
        prof::count("lu_reuse", m.lu_reuse);
        prof::count("steps_rejected", m.rejected());
    }
}

/// Timestep policy of a transient run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum StepControl {
    /// March at the fixed `SimOptions::dt`. The default; results are
    /// bit-identical to the historical fixed-step solver.
    #[default]
    Fixed,
    /// Local-truncation-error controlled stepping with event-aware
    /// refinement. The step starts at `dt_min`, doubles (up to
    /// `dt_max`) after a streak of quiet accepted steps, and halves
    /// back toward `dt_min` whenever the LTE estimate exceeds
    /// `lte_tol`, a junction phase moves fast, Newton fails to
    /// converge, or a source waveform has an edge inside the step.
    Adaptive {
        /// Smallest step taken, seconds. Pulses are resolved at this
        /// granularity; matching the fixed-mode `dt` (0.1 ps) keeps
        /// adaptive pulse times within a fraction of a picosecond of
        /// fixed-step results.
        dt_min: f64,
        /// Largest step taken during quiescent intervals, seconds.
        dt_max: f64,
        /// Local-truncation-error tolerance on node voltages, volts:
        /// the maximum deviation of a step from the linear
        /// extrapolation of the previous two accepted solutions.
        lte_tol: f64,
    },
}

/// Solver options.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOptions {
    /// Timestep in seconds (default 0.1 ps — SFQ pulses are ~2 ps wide
    /// so this resolves them comfortably). Used directly by
    /// [`StepControl::Fixed`]; ignored in adaptive mode.
    pub dt: f64,
    /// Absolute Newton convergence tolerance on node voltages, volts.
    pub tol_v: f64,
    /// Maximum Newton iterations per step.
    pub max_newton: usize,
    /// Nodes whose voltage traces should be recorded (empty = none).
    pub record_nodes: Vec<crate::NodeId>,
    /// Timestep policy (default [`StepControl::Fixed`], so existing
    /// callers keep bit-identical results).
    pub step: StepControl,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            dt: 0.1e-12,
            tol_v: 1.0e-9,
            max_newton: 50,
            record_nodes: Vec::new(),
            step: StepControl::Fixed,
        }
    }
}

impl SimOptions {
    /// The workspace's standard adaptive configuration: `dt_min` equal
    /// to the fixed-mode default step (0.1 ps) so events are resolved
    /// at the same granularity, `dt_max` 20× larger for quiescent
    /// intervals, and a 1 µV LTE tolerance (SFQ pulse peaks are a few
    /// hundred µV).
    pub fn adaptive() -> Self {
        SimOptions {
            step: StepControl::Adaptive {
                dt_min: 0.1e-12,
                dt_max: 2.0e-12,
                lte_tol: 1.0e-6,
            },
            ..Default::default()
        }
    }
}

/// A refinement interval on the simulated time axis, merged from the
/// source waveforms' [`crate::Waveform::refinement_windows`].
#[derive(Debug, Clone, Copy)]
struct Window {
    start: f64,
    end: f64,
    /// Largest step allowed while inside the window.
    cap: f64,
}

/// Collect, sort and merge the refinement windows of every source.
fn merge_windows(ckt: &Circuit) -> Vec<Window> {
    let mut raw: Vec<Window> = Vec::new();
    for s in &ckt.sources {
        for (start, end, cap) in s.waveform.refinement_windows() {
            if end > 0.0 {
                raw.push(Window { start, end, cap });
            }
        }
    }
    raw.sort_by(|a, b| a.start.total_cmp(&b.start));
    let mut merged: Vec<Window> = Vec::with_capacity(raw.len());
    for w in raw {
        match merged.last_mut() {
            Some(last) if w.start <= last.end => {
                last.end = last.end.max(w.end);
                last.cap = last.cap.min(w.cap);
            }
            _ => merged.push(w),
        }
    }
    merged
}

/// Result of a transient run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Base timestep of the run: `SimOptions::dt` in fixed mode, the
    /// controller's `dt_min` in adaptive mode.
    pub dt: f64,
    /// Final simulation time.
    pub t_end: f64,
    pub(crate) pulse_times: Vec<Vec<f64>>,
    pub(crate) final_phases: Vec<f64>,
    /// Total energy dissipated in all resistive elements, joules.
    pub dissipated_j: f64,
    /// Energy dissipated per junction shunt, joules (indexed like the
    /// circuit's junctions).
    pub jj_dissipated_j: Vec<f64>,
    /// Recorded voltage traces, parallel to `SimOptions::record_nodes`;
    /// one sample per accepted timestep. In adaptive mode the samples
    /// are non-uniformly spaced — pair them with [`SimResult::trace_times`]
    /// or resample through [`SimResult::trace_at`].
    pub traces: Vec<Vec<f64>>,
    /// Times corresponding to trace samples (only filled when traces
    /// are recorded).
    pub trace_times: Vec<f64>,
    /// Accepted solver steps.
    pub accepted_steps: u64,
    /// Steps rejected and retried at a smaller dt (always 0 in fixed
    /// mode).
    pub rejected_steps: u64,
}

impl SimResult {
    /// Times (seconds) at which junction `jj` emitted an SFQ pulse
    /// (completed a forward 2π phase slip).
    ///
    /// In fixed mode a pulse is stamped at the end of the step that
    /// crossed the 2π boundary (historical behavior, bit-identical);
    /// in adaptive mode the crossing is interpolated inside the step,
    /// so consumers see sub-step timing accuracy regardless of how
    /// large the surrounding steps were.
    pub fn pulse_times(&self, jj: ElementId) -> &[f64] {
        &self.pulse_times[jj.index()]
    }

    /// Number of pulses emitted by junction `jj`.
    pub fn pulse_count(&self, jj: ElementId) -> usize {
        self.pulse_times[jj.index()].len()
    }

    /// Final superconducting phase of junction `jj`, radians.
    pub fn final_phase(&self, jj: ElementId) -> f64 {
        self.final_phases[jj.index()]
    }

    /// Linearly interpolated voltage of recorded trace `slot` at time
    /// `t`, clamping outside the recorded range. Gives adaptive-mode
    /// consumers a uniform view of the non-uniform samples.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range or nothing was recorded.
    pub fn trace_at(&self, slot: usize, t: f64) -> f64 {
        let times = &self.trace_times;
        let vs = &self.traces[slot];
        assert!(!vs.is_empty(), "no samples recorded for slot {slot}");
        match times.partition_point(|&x| x < t) {
            0 => vs[0],
            i if i >= times.len() => vs[times.len() - 1],
            i => {
                let (t0, t1) = (times[i - 1], times[i]);
                let w = if t1 > t0 { (t - t0) / (t1 - t0) } else { 0.0 };
                vs[i - 1] + w * (vs[i] - vs[i - 1])
            }
        }
    }
}

/// The transient solver. Construct with [`Solver::new`], then call
/// [`Solver::run`].
#[derive(Debug)]
pub struct Solver {
    ckt: Circuit,
    opts: SimOptions,
}

impl Solver {
    /// Wrap a circuit, validating it.
    ///
    /// # Errors
    ///
    /// Returns the circuit's validation error, or
    /// [`SimError::InvalidParameter`] for a non-positive timestep,
    /// tolerance or adaptive step bound, a `dt_max` below `dt_min`,
    /// or a zero Newton iteration budget.
    pub fn new(ckt: Circuit, opts: SimOptions) -> Result<Self, SimError> {
        ckt.validate()?;
        let check = |field: &'static str, value: f64| -> Result<(), SimError> {
            if !value.is_finite() || value <= 0.0 {
                return Err(SimError::InvalidParameter {
                    element: "options",
                    field,
                    value,
                });
            }
            Ok(())
        };
        check("dt", opts.dt)?;
        check("tol_v", opts.tol_v)?;
        if opts.max_newton == 0 {
            return Err(SimError::InvalidParameter {
                element: "options",
                field: "max_newton",
                value: 0.0,
            });
        }
        if let StepControl::Adaptive {
            dt_min,
            dt_max,
            lte_tol,
        } = opts.step
        {
            check("dt_min", dt_min)?;
            check("dt_max", dt_max)?;
            check("lte_tol", lte_tol)?;
            if dt_max < dt_min {
                return Err(SimError::InvalidParameter {
                    element: "options",
                    field: "dt_max",
                    value: dt_max,
                });
            }
        }
        Ok(Solver { ckt, opts })
    }

    /// Run the transient analysis from t = 0 to `t_end` seconds.
    ///
    /// # Panics
    ///
    /// Panics on Newton non-convergence or a singular matrix (usually
    /// a floating node). Sweep and fault-injection code should call
    /// [`Solver::try_run`] and record the typed [`SimError`] instead.
    #[allow(clippy::too_many_lines)]
    pub fn run(&self, t_end: f64) -> SimResult {
        match self.try_run(t_end) {
            Ok(out) => out,
            Err(e) => panic!("transient analysis failed: {e}; check circuit topology"),
        }
    }

    /// Fallible variant of [`Solver::run`].
    ///
    /// # Errors
    ///
    /// See [`Solver::run`].
    #[allow(clippy::too_many_lines)]
    pub fn try_run(&self, t_end: f64) -> Result<SimResult, SimError> {
        transient_counter().inc();
        let mut metrics = RunMetrics::start();
        // One wall-clock slice per transient run (records on every
        // exit path, including errors); the per-step accept/reject/
        // restamp markers below are only recorded under the
        // SUPERNPU_TRACE_DETAIL verbosity knob, resolved once per run.
        let _trace_run = sfq_obs::trace::span("jjsim", "solver.run");
        let trace_detail = sfq_obs::trace::detail_enabled();
        // Kernel-level profile attribution under one frame per run;
        // `kprof` accumulates section times in locals and merges them
        // under this frame at every exit, so the frame's self time is
        // only the un-kerneled loop control.
        let _prof_run = sfq_obs::prof::frame("solver.run");
        let mut kprof = KernelProf::start();
        let ckt = &self.ckt;
        let n_unknown = ckt.node_count - 1; // ground excluded
        let h = self.opts.dt;
        let (adaptive, mut dt_min, dt_max, mut lte_tol) = match self.opts.step {
            StepControl::Fixed => (false, h, h, f64::INFINITY),
            StepControl::Adaptive {
                dt_min,
                dt_max,
                lte_tol,
            } => (true, dt_min, dt_max, lte_tol),
        };
        // Ambient execution guard (one relaxed load when never used):
        // an optional budget polled once per step attempt, and a
        // relaxation level set by retry ladders — level k tightens
        // `dt_min` and loosens `lte_tol` by 4^k so a run that blew its
        // budget converges faster (and more robustly) on the retry.
        let budget = sfq_guard::active().filter(|b| !b.is_unlimited());
        if adaptive {
            let relax = sfq_guard::relax_level().min(4);
            if relax > 0 {
                let scale = 4f64.powi(relax as i32);
                dt_min /= scale;
                lte_tol *= scale;
            }
        }
        // Fixed-mode step count; also the trace capacity hint.
        let fixed_steps = (t_end / h).ceil() as usize;
        let steps_hint = if adaptive {
            (t_end / dt_max).ceil() as usize
        } else {
            fixed_steps
        };
        // Per-accepted-step dt histogram, resolved once per run so the
        // hot loop pays a pointer deref, not a registry lookup.
        let dt_hist = sfq_obs::enabled().then(|| sfq_obs::histogram("jjsim.solver.dt_ps"));

        // State.
        let mut v = vec![0.0f64; ckt.node_count]; // index 0 = ground, always 0
        let mut phase: Vec<f64> = vec![0.0; ckt.jjs.len()];
        let mut pulse_count: Vec<usize> = vec![0; ckt.jjs.len()];
        let mut pulse_times: Vec<Vec<f64>> = vec![Vec::new(); ckt.jjs.len()];
        let mut i_cap = vec![0.0f64; ckt.capacitors.len()];
        let mut i_jj_cap = vec![0.0f64; ckt.jjs.len()];
        let mut i_ind = vec![0.0f64; ckt.inductors.len()];
        let mut dissipated = 0.0f64;
        let mut jj_dissipated = vec![0.0f64; ckt.jjs.len()];
        let record = !self.opts.record_nodes.is_empty();
        let mut traces: Vec<Vec<f64>> = self
            .opts
            .record_nodes
            .iter()
            .map(|_| Vec::with_capacity(steps_hint))
            .collect();
        let mut trace_times: Vec<f64> = Vec::with_capacity(if record { steps_hint } else { 0 });

        let vbr = |v: &[f64], a: usize, b: usize| v[a] - v[b];

        // Half-bandwidth of the conductance matrix under the builder's
        // natural node ordering; chain-structured circuits (JTLs,
        // shift registers) are narrow-banded, letting the O(n·bw²)
        // solver replace the O(n³) dense one.
        let bandwidth = {
            let mut bw = 0usize;
            let mut visit = |a: usize, b: usize| {
                if a > 0 && b > 0 {
                    bw = bw.max(a.abs_diff(b));
                }
            };
            for e in &ckt.resistors {
                visit(e.a, e.b);
            }
            for e in &ckt.capacitors {
                visit(e.a, e.b);
            }
            for e in &ckt.inductors {
                visit(e.a, e.b);
            }
            for e in &ckt.jjs {
                visit(e.a, e.b);
            }
            bw
        };
        let use_banded = n_unknown > 24 && bandwidth * 3 < n_unknown;

        // Conductance stamp into a row-major dense matrix (current
        // a -> b: i = g*(va-vb) + i_hist; the i_hist part goes to the
        // rhs). Only the banded path's pivoting fallback still stamps
        // through node numbers; the hot paths replay pre-resolved
        // [`StampIdx`] quadruples instead.
        let stamp_g = |m: &mut [f64], a: usize, b: usize, g: f64| {
            if a > 0 {
                m[(a - 1) * n_unknown + (a - 1)] += g;
            }
            if b > 0 {
                m[(b - 1) * n_unknown + (b - 1)] += g;
            }
            if a > 0 && b > 0 {
                m[(a - 1) * n_unknown + (b - 1)] -= g;
                m[(b - 1) * n_unknown + (a - 1)] -= g;
            }
        };
        let stamp_i = |rhs: &mut [f64], a: usize, b: usize, i_hist: f64| {
            if a > 0 {
                rhs[a - 1] -= i_hist;
            }
            if b > 0 {
                rhs[b - 1] += i_hist;
            }
        };

        // Flattened stamp kernel: every element's matrix positions are
        // fixed for the whole run, so resolve them once into flat
        // index quadruples — in packed-band layout on the banded path,
        // dense row-major otherwise. Linear elements keep their stamp
        // order (resistors, capacitors, inductors).
        let band_w = band_width(bandwidth);
        let stamp_idx = |a: usize, b: usize, banded: bool| -> StampIdx {
            let pos = |i: usize, j: usize| {
                if banded {
                    i * band_w + (bandwidth + j) - i
                } else {
                    i * n_unknown + j
                }
            };
            StampIdx {
                da: if a > 0 { pos(a - 1, a - 1) } else { usize::MAX },
                db: if b > 0 { pos(b - 1, b - 1) } else { usize::MAX },
                ab: if a > 0 && b > 0 {
                    pos(a - 1, b - 1)
                } else {
                    usize::MAX
                },
                ba: if a > 0 && b > 0 {
                    pos(b - 1, a - 1)
                } else {
                    usize::MAX
                },
            }
        };
        let lin_idx: Vec<StampIdx> = ckt
            .resistors
            .iter()
            .map(|e| (e.a, e.b))
            .chain(ckt.capacitors.iter().map(|e| (e.a, e.b)))
            .chain(ckt.inductors.iter().map(|e| (e.a, e.b)))
            .map(|(a, b)| stamp_idx(a, b, use_banded))
            .collect();
        let jj_idx: Vec<StampIdx> = ckt
            .jjs
            .iter()
            .map(|e| stamp_idx(e.a, e.b, use_banded))
            .collect();

        // Per-plateau companion conductances, recomputed only when the
        // step size changes — exactly the expressions the inner loops
        // used to evaluate per element per iteration, so every value
        // is bit-identical: resistor 1/R and junction shunt 1/Rj are
        // step-independent; capacitor 2C/h, inductor h/2L and the
        // junction's capacitive companion 2Cj/h are the trapezoid
        // companions; `phi_coef` is the phase integration coefficient
        // π·h/Φ₀.
        let g_res: Vec<f64> = ckt.resistors.iter().map(|r| 1.0 / r.value).collect();
        let g_shunt: Vec<f64> = ckt.jjs.iter().map(|jj| 1.0 / jj.p.r).collect();
        let mut g_cap_lin = vec![0.0f64; ckt.capacitors.len()];
        let mut g_ind = vec![0.0f64; ckt.inductors.len()];
        let mut g_jjcap = vec![0.0f64; ckt.jjs.len()];
        let mut phi_coef = 0.0f64;

        // The linear elements' conductances (R, C, L companions) do not
        // depend on time or on the Newton iterate — only on the step
        // size. Stamp them once per dt *plateau* (into packed band
        // storage on the banded path) and start every Newton assembly
        // from this matrix; the stamp (and the LU built on top of it)
        // is invalidated only when dt actually changes.
        let mut a_lin = vec![
            0.0f64;
            if use_banded {
                n_unknown * band_w
            } else {
                n_unknown * n_unknown
            }
        ];
        let mut h_stamped = f64::NAN;

        // Work buffers, allocated once and reused across every step and
        // Newton iteration.
        let mut a_mat = vec![0.0f64; n_unknown * n_unknown];
        let mut rhs_base = vec![0.0f64; n_unknown];
        let mut rhs = vec![0.0f64; n_unknown];
        let mut v_prev = vec![0.0f64; ckt.node_count];
        let mut v_iter = vec![0.0f64; ckt.node_count];
        let mut g_now = vec![0.0f64; ckt.jjs.len()];
        let mut ihist_now = vec![0.0f64; ckt.jjs.len()];

        // Reusable banded LU: while every junction's linearized
        // conductance is quasi-static (relative drift below
        // `G_REUSE_RTOL` since the last factorization — true between
        // pulses, i.e. most of the simulated time), the factorization
        // is reused across Newton iterations AND timesteps, turning the
        // per-iteration O(n·bw²) elimination into an O(n·bw) pair of
        // triangular solves (chord-Newton / SPICE LU-reuse). The rhs
        // history currents are computed against the factored
        // conductances (`lu_g`), so a converged iterate satisfies KCL
        // exactly — reuse changes the iteration path, never the fixed
        // point.
        const G_REUSE_RTOL: f64 = 1e-8;
        let mut lu = vec![0.0f64; if use_banded { n_unknown * band_w } else { 0 }];
        let mut lu_g = vec![0.0f64; ckt.jjs.len()];
        let mut lu_valid = false;

        // Adaptive controller state. `h_cur` is the plateau step; the
        // per-step `h_step` may be temporarily smaller (window caps,
        // landing on a window start or on t_end).
        //
        // The LTE predictor extrapolates the *trapezoid-filtered*
        // voltage v̄ₙ = (vₙ + vₙ₋₁)/2 (midpoint samples at tₙ − h/2)
        // rather than the raw node voltage: the trapezoidal rule is
        // only marginally stable on stiff modes, so a switching event
        // leaves behind an undamped period-2 (+a, −a, …) numerical
        // ringing of a few µV on storage-loop nodes. The raw-voltage
        // LTE would see that ringing as a permanent error and pin dt
        // at dt_min forever; the two-sample average cancels the
        // alternating mode exactly while representing the smooth
        // solution to the same O(h²). (The phase-rate guard uses
        // vb_new + vb_prev and is ring-immune for the same reason.)
        let windows = if adaptive {
            merge_windows(ckt)
        } else {
            Vec::new()
        };
        let mut win_idx = 0usize;
        let mut h_cur = if adaptive { dt_min } else { h };
        let mut vbar_prev = v.clone();
        let mut vbar_prev2 = v.clone();
        let mut vbar_new = v.clone();
        let mut tbar_prev = 0.0f64;
        let mut tbar_prev2 = -dt_min;
        let mut good_streak = 0u32;

        let mut t = 0.0f64; // last accepted time
        let mut step_idx = 0usize; // accepted steps

        loop {
            // Termination.
            if adaptive {
                if t_end - t < 1e-18 {
                    break;
                }
            } else if step_idx >= fixed_steps {
                break;
            }

            // Execution guard: poll the ambient budget once per step
            // *attempt* (accepted or rejected, so a runaway reject
            // loop is still bounded). No ambient budget → no cost.
            if let Some(b) = budget.as_ref() {
                if let Some(stop) = b.poll(metrics.steps + metrics.rejected(), metrics.newton_iters)
                {
                    let e = match stop {
                        sfq_guard::BudgetStop::Cancelled => SimError::Cancelled { time: t },
                        other => SimError::BudgetExceeded {
                            what: other.label(),
                            time: t,
                        },
                    };
                    kprof.flush(&metrics);
                    metrics.flush(Some(&e));
                    return Err(e);
                }
            }

            // Effective step for this attempt.
            let h_step = if adaptive {
                while win_idx < windows.len() && windows[win_idx].end <= t {
                    win_idx += 1;
                }
                let mut hh = h_cur;
                if let Some(w) = windows.get(win_idx) {
                    if t >= w.start {
                        // Inside a source-event window: cap the step so
                        // the waveform edge is resolved.
                        if hh > w.cap {
                            hh = w.cap;
                            metrics.refine_source += 1;
                        }
                    } else if hh > w.start - t {
                        // Land on the window start instead of stepping
                        // across the event.
                        hh = w.start - t;
                        metrics.refine_source += 1;
                    }
                }
                // A window-boundary truncation may go degenerate from
                // floating-point dust; overshooting a window start by
                // less than dt_min is harmless (windows carry slack).
                hh = hh.max(dt_min).min(t_end - t);
                hh
            } else {
                h
            };
            let t_next = if adaptive {
                t + h_step
            } else {
                (step_idx + 1) as f64 * h
            };

            // Refresh the per-plateau conductances and re-stamp the
            // linear-element matrix only when dt actually changed; this
            // also invalidates the banded LU (its values embed the
            // companion conductances of the old step).
            if h_step != h_stamped {
                kprof.mark();
                phi_coef = PI * h_step / PHI0;
                for (k, c) in ckt.capacitors.iter().enumerate() {
                    g_cap_lin[k] = 2.0 * c.value / h_step;
                }
                for (k, l) in ckt.inductors.iter().enumerate() {
                    g_ind[k] = h_step / (2.0 * l.value);
                }
                for (k, jj) in ckt.jjs.iter().enumerate() {
                    g_jjcap[k] = 2.0 * jj.p.c / h_step;
                }
                a_lin.iter_mut().for_each(|x| *x = 0.0);
                let nr = ckt.resistors.len();
                let nc = ckt.capacitors.len();
                for (s, g) in lin_idx[..nr].iter().zip(&g_res) {
                    apply_stamp(&mut a_lin, *s, *g);
                }
                for (s, g) in lin_idx[nr..nr + nc].iter().zip(&g_cap_lin) {
                    apply_stamp(&mut a_lin, *s, *g);
                }
                for (s, g) in lin_idx[nr + nc..].iter().zip(&g_ind) {
                    apply_stamp(&mut a_lin, *s, *g);
                }
                h_stamped = h_step;
                lu_valid = false;
                metrics.restamps += 1;
                kprof.lap(K_RESTAMP);
                if trace_detail {
                    sfq_obs::trace::instant("jjsim", "restamp");
                }
            }

            v_prev.copy_from_slice(&v);
            v_iter.copy_from_slice(&v);

            // Per-step rhs: C/L history currents (fixed within the
            // step's Newton loop) and the source currents at t_next.
            kprof.mark();
            rhs_base.iter_mut().for_each(|x| *x = 0.0);
            for (k, c) in ckt.capacitors.iter().enumerate() {
                let i_hist = -g_cap_lin[k] * vbr(&v_prev, c.a, c.b) - i_cap[k];
                stamp_i(&mut rhs_base, c.a, c.b, i_hist);
            }
            for (k, l) in ckt.inductors.iter().enumerate() {
                let i_hist = i_ind[k] + g_ind[k] * vbr(&v_prev, l.a, l.b);
                stamp_i(&mut rhs_base, l.a, l.b, i_hist);
            }
            for s in &ckt.sources {
                let i = s.waveform.value(t_next);
                if s.into > 0 {
                    rhs_base[s.into - 1] += i;
                }
                if s.from > 0 {
                    rhs_base[s.from - 1] -= i;
                }
            }
            kprof.lap(K_STAMP);

            // Newton iteration on node voltages at t_next.
            let mut converged = false;
            for _ in 0..self.opts.max_newton {
                metrics.newton_iters += 1;
                kprof.mark();
                // Linearize every junction around v_iter and decide
                // whether the existing factorization still applies.
                let mut reuse = use_banded && lu_valid;
                for (k, jj) in ckt.jjs.iter().enumerate() {
                    let vb_prev = vbr(&v_prev, jj.a, jj.b);
                    let vb_k = vbr(&v_iter, jj.a, jj.b);
                    let phi_k = phase[k] + phi_coef * (vb_k + vb_prev);
                    let g_cap = g_jjcap[k];
                    let i_at_vk = jj.p.ic * phi_k.sin() + vb_k / jj.p.r + g_cap * (vb_k - vb_prev)
                        - i_jj_cap[k];
                    let g = jj.p.ic * phi_k.cos() * phi_coef + g_shunt[k] + g_cap;
                    g_now[k] = g;
                    if reuse && (g - lu_g[k]).abs() > G_REUSE_RTOL * lu_g[k].abs() {
                        reuse = false;
                    }
                    // The matrix conductance this junction will solve
                    // against (old on reuse); using it in the history
                    // current keeps the converged iterate exact.
                    let g_mat = if reuse { lu_g[k] } else { g };
                    ihist_now[k] = i_at_vk - g_mat * vb_k;
                }
                // A junction after the first may have vetoed reuse;
                // recompute earlier history currents against the fresh
                // conductances so matrix and rhs agree.
                if !reuse && use_banded && lu_valid {
                    for (k, jj) in ckt.jjs.iter().enumerate() {
                        let vb_k = vbr(&v_iter, jj.a, jj.b);
                        let vb_prev = vbr(&v_prev, jj.a, jj.b);
                        let phi_k = phase[k] + phi_coef * (vb_k + vb_prev);
                        let g_cap = g_jjcap[k];
                        let i_at_vk =
                            jj.p.ic * phi_k.sin() + vb_k / jj.p.r + g_cap * (vb_k - vb_prev)
                                - i_jj_cap[k];
                        ihist_now[k] = i_at_vk - g_now[k] * vb_k;
                    }
                }

                kprof.lap(K_JJ_STAMP_RHS);
                rhs.copy_from_slice(&rhs_base);
                let mut solved_in_rhs = false;
                if use_banded {
                    if !reuse {
                        metrics.lu_factor += 1;
                        lu.copy_from_slice(&a_lin);
                        // Fused stamp+RHS pass: one sweep over the
                        // junctions lands each conductance in the
                        // packed band and its history current in the
                        // rhs. Matrix and rhs entries still accumulate
                        // in the historical per-array order, so the
                        // fusion cannot move a bit.
                        for (k, jj) in ckt.jjs.iter().enumerate() {
                            apply_stamp(&mut lu, jj_idx[k], g_now[k]);
                            stamp_i(&mut rhs, jj.a, jj.b, ihist_now[k]);
                        }
                        if factor_banded_packed(&mut lu, n_unknown, bandwidth) {
                            lu_g.copy_from_slice(&g_now);
                            lu_valid = true;
                        } else {
                            lu_valid = false;
                        }
                        kprof.lap(K_LU_FACTOR);
                    } else {
                        metrics.lu_reuse += 1;
                        for (k, jj) in ckt.jjs.iter().enumerate() {
                            stamp_i(&mut rhs, jj.a, jj.b, ihist_now[k]);
                        }
                        kprof.lap(K_JJ_STAMP_RHS);
                    }
                    if lu_valid {
                        solve_factored_packed(&lu, &mut rhs, n_unknown, bandwidth);
                        solved_in_rhs = true;
                        kprof.lap(K_LU_SOLVE);
                    }
                } else {
                    for (k, jj) in ckt.jjs.iter().enumerate() {
                        stamp_i(&mut rhs, jj.a, jj.b, ihist_now[k]);
                    }
                    kprof.lap(K_JJ_STAMP_RHS);
                }
                if !solved_in_rhs {
                    metrics.dense_solves += 1;
                    // Dense elimination with pivoting: small circuits,
                    // and the fallback when the no-pivot banded
                    // factorization hits a tiny pivot.
                    if use_banded {
                        // `a_lin` is packed band storage here; rebuild
                        // the dense matrix by re-stamping in the
                        // original element order (resistors,
                        // capacitors, inductors, junctions), which
                        // reproduces the historical dense assembly
                        // bit-for-bit.
                        a_mat.iter_mut().for_each(|x| *x = 0.0);
                        for (r, g) in ckt.resistors.iter().zip(&g_res) {
                            stamp_g(&mut a_mat, r.a, r.b, *g);
                        }
                        for (c, g) in ckt.capacitors.iter().zip(&g_cap_lin) {
                            stamp_g(&mut a_mat, c.a, c.b, *g);
                        }
                        for (l, g) in ckt.inductors.iter().zip(&g_ind) {
                            stamp_g(&mut a_mat, l.a, l.b, *g);
                        }
                        for (k, jj) in ckt.jjs.iter().enumerate() {
                            stamp_g(&mut a_mat, jj.a, jj.b, g_now[k]);
                        }
                    } else {
                        a_mat.copy_from_slice(&a_lin);
                        for (s, g) in jj_idx.iter().zip(&g_now) {
                            apply_stamp(&mut a_mat, *s, *g);
                        }
                    }
                    let Some(sol) = solve_dense(&mut a_mat, &mut rhs, n_unknown) else {
                        let e = SimError::SingularMatrix { time: t_next };
                        kprof.lap(K_DENSE_SOLVE);
                        kprof.flush(&metrics);
                        metrics.flush(Some(&e));
                        return Err(e);
                    };
                    rhs.copy_from_slice(&sol);
                    kprof.lap(K_DENSE_SOLVE);
                }

                let mut max_dv = 0.0f64;
                for (i, s) in rhs.iter().enumerate() {
                    let dv = (s - v_iter[i + 1]).abs();
                    if dv > max_dv {
                        max_dv = dv;
                    }
                    v_iter[i + 1] = *s;
                }
                kprof.lap(K_NEWTON);
                if max_dv < self.opts.tol_v {
                    converged = true;
                    break;
                }
            }
            if !converged {
                // Adaptive mode treats a Newton failure as one more
                // reason to refine: nothing was committed, so halving
                // and retrying is a clean rollback.
                if adaptive && h_step > dt_min {
                    metrics.reject_newton += 1;
                    if trace_detail {
                        sfq_obs::trace::instant("jjsim", "reject (newton)");
                    }
                    h_cur = (h_step * 0.5).max(dt_min);
                    good_streak = 0;
                    continue;
                }
                let e = SimError::NoConvergence { time: t_next };
                kprof.flush(&metrics);
                metrics.flush(Some(&e));
                return Err(e);
            }

            // Accept/reject the converged step (adaptive only; nothing
            // has been committed yet, so a reject is a pure retry).
            kprof.mark();
            let mut dphi_max = 0.0f64;
            if adaptive {
                for jj in &ckt.jjs {
                    let vb_prev = vbr(&v_prev, jj.a, jj.b);
                    let vb_new = vbr(&v_iter, jj.a, jj.b);
                    let dphi = (phi_coef * (vb_new + vb_prev)).abs();
                    if dphi > dphi_max {
                        dphi_max = dphi;
                    }
                }
                // LTE estimate: deviation of the trapezoid-filtered
                // voltage from the linear extrapolation of its two
                // previous accepted samples. Exact for any linearly-
                // evolving interval (bias ramps) and blind to the
                // period-2 trapezoidal ringing mode; ~h²·|v″| on real
                // dynamics.
                let tbar_new = t + 0.5 * h_step;
                let span = tbar_prev - tbar_prev2;
                let scale = if span > 0.0 {
                    (tbar_new - tbar_prev) / span
                } else {
                    1.0
                };
                let mut lte = 0.0f64;
                for i in 1..ckt.node_count {
                    vbar_new[i] = 0.5 * (v_iter[i] + v_prev[i]);
                    let pred = vbar_prev[i] + (vbar_prev[i] - vbar_prev2[i]) * scale;
                    let e = (vbar_new[i] - pred).abs();
                    if e > lte {
                        lte = e;
                    }
                }
                if h_step > dt_min && (lte > lte_tol || dphi_max > PHASE_MAX_STEP) {
                    if lte > lte_tol {
                        metrics.reject_lte += 1;
                        if trace_detail {
                            sfq_obs::trace::instant("jjsim", "reject (lte)");
                        }
                    } else {
                        metrics.reject_phase += 1;
                        if trace_detail {
                            sfq_obs::trace::instant("jjsim", "reject (phase)");
                        }
                    }
                    h_cur = (h_step * 0.5).max(dt_min);
                    good_streak = 0;
                    kprof.lap(K_LTE);
                    continue;
                }
                // Plateau growth: double only after a streak of steps
                // that were quiet on both criteria, so the LU
                // refactorization a dt change forces is amortized.
                if lte < GROW_MARGIN * lte_tol && dphi_max < PHASE_SLOW {
                    good_streak += 1;
                    if good_streak >= GROW_AFTER && h_cur < dt_max {
                        h_cur = (h_cur * 2.0).min(dt_max);
                        good_streak = 0;
                    }
                } else {
                    good_streak = 0;
                }
            }

            kprof.lap(K_LTE);

            // Commit state updates.
            metrics.steps += 1;
            if trace_detail {
                sfq_obs::trace::instant("jjsim", "accept");
            }
            for (k, jj) in ckt.jjs.iter().enumerate() {
                let vb_prev = vbr(&v_prev, jj.a, jj.b);
                let vb_new = vbr(&v_iter, jj.a, jj.b);
                let old_phase = phase[k];
                let new_phase = old_phase + phi_coef * (vb_new + vb_prev);
                phase[k] = new_phase;
                // Forward 2π slips: pulse recorded when phase passes
                // (2k+1)π going up. Fixed mode stamps the end of the
                // crossing step (bit-identical to the historical
                // solver); adaptive mode interpolates the crossing
                // inside the step for sub-step timing accuracy.
                while new_phase > (2 * pulse_count[k] + 1) as f64 * PI {
                    let t_pulse = if adaptive && new_phase > old_phase {
                        let threshold = (2 * pulse_count[k] + 1) as f64 * PI;
                        t + h_step * ((threshold - old_phase) / (new_phase - old_phase))
                    } else {
                        t_next
                    };
                    pulse_times[k].push(t_pulse);
                    pulse_count[k] += 1;
                }
                i_jj_cap[k] = g_jjcap[k] * (vb_new - vb_prev) - i_jj_cap[k];
                let p_shunt = vb_new * vb_new / jj.p.r;
                jj_dissipated[k] += p_shunt * h_step;
                dissipated += p_shunt * h_step;
            }
            for (k, c) in ckt.capacitors.iter().enumerate() {
                i_cap[k] =
                    g_cap_lin[k] * (vbr(&v_iter, c.a, c.b) - vbr(&v_prev, c.a, c.b)) - i_cap[k];
            }
            for (k, l) in ckt.inductors.iter().enumerate() {
                i_ind[k] += g_ind[k] * (vbr(&v_iter, l.a, l.b) + vbr(&v_prev, l.a, l.b));
            }
            for r in &ckt.resistors {
                let vb = vbr(&v_iter, r.a, r.b);
                dissipated += vb * vb / r.value * h_step;
            }
            if adaptive {
                std::mem::swap(&mut vbar_prev2, &mut vbar_prev);
                std::mem::swap(&mut vbar_prev, &mut vbar_new);
                tbar_prev2 = tbar_prev;
                tbar_prev = t + 0.5 * h_step;
            }
            v.copy_from_slice(&v_iter);
            t = t_next;
            step_idx += 1;
            if let Some(hist) = dt_hist {
                hist.observe(h_step * 1e12);
            }

            if record {
                trace_times.push(t_next);
                for (slot, node) in self.opts.record_nodes.iter().enumerate() {
                    traces[slot].push(v[node.index()]);
                }
            }
            kprof.lap(K_COMMIT);
        }

        kprof.flush(&metrics);
        metrics.flush(None);
        Ok(SimResult {
            dt: dt_min,
            t_end,
            pulse_times,
            final_phases: phase,
            dissipated_j: dissipated,
            jj_dissipated_j: jj_dissipated,
            traces,
            trace_times,
            accepted_steps: metrics.steps,
            rejected_steps: metrics.rejected(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{JjParams, NodeId};
    use crate::waveform::Waveform;

    /// RC low-pass driven by DC current: v settles to I*R.
    #[test]
    fn rc_settles_to_ir() {
        let mut c = Circuit::new();
        let n = c.node();
        c.add_resistor(n, NodeId::GROUND, 2.0).unwrap();
        c.add_capacitor(n, NodeId::GROUND, 1e-12).unwrap();
        c.add_source(n, Waveform::Dc(1e-3)).unwrap();
        let res = Solver::new(c, SimOptions::default()).unwrap();
        let out = res.try_run(100e-12).unwrap();
        assert!(out.t_end == 100e-12);
        // Check final node voltage through a recorded trace instead:
        let mut c = Circuit::new();
        let n = c.node();
        c.add_resistor(n, NodeId::GROUND, 2.0).unwrap();
        c.add_capacitor(n, NodeId::GROUND, 1e-12).unwrap();
        c.add_source(n, Waveform::Dc(1e-3)).unwrap();
        let opts = SimOptions {
            record_nodes: vec![n],
            ..Default::default()
        };
        let out = Solver::new(c, opts).unwrap().try_run(100e-12).unwrap();
        let last = *out.traces[0].last().unwrap();
        assert!((last - 2e-3).abs() < 1e-5, "v = {last}");
    }

    /// A DC-biased junction below Ic stays superconducting (no pulses,
    /// zero average voltage).
    #[test]
    fn subcritical_jj_stays_quiet() {
        let mut c = Circuit::new();
        let n = c.node();
        let jj = c.add_jj(n, NodeId::GROUND, JjParams::default()).unwrap();
        c.add_bias(n, 0.7e-4).unwrap(); // 0.7 Ic
        let out = Solver::new(c, SimOptions::default())
            .unwrap()
            .try_run(200e-12)
            .unwrap();
        assert_eq!(out.pulse_count(jj), 0);
        // Phase settles near asin(0.7).
        let expect = (0.7f64).asin();
        assert!(
            (out.final_phase(jj) - expect).abs() < 0.05,
            "phase = {}",
            out.final_phase(jj)
        );
    }

    /// A junction driven above Ic runs away: continuous phase slips
    /// (Josephson oscillation) at roughly f = V/Φ0.
    #[test]
    fn overdriven_jj_oscillates() {
        let mut c = Circuit::new();
        let n = c.node();
        let jj = c.add_jj(n, NodeId::GROUND, JjParams::default()).unwrap();
        c.add_bias(n, 2.0e-4).unwrap(); // 2 Ic
        let out = Solver::new(c, SimOptions::default())
            .unwrap()
            .try_run(200e-12)
            .unwrap();
        assert!(out.pulse_count(jj) > 10, "pulses = {}", out.pulse_count(jj));
        assert!(out.dissipated_j > 0.0);
    }

    /// A single trigger pulse on a biased junction produces exactly one
    /// 2π slip, dissipating on the order of Ic·Φ0 (~2×10⁻¹⁹ J).
    #[test]
    fn single_sfq_switching_event() {
        let mut c = Circuit::new();
        let n = c.node();
        let jj = c.add_jj(n, NodeId::GROUND, JjParams::default()).unwrap();
        c.add_bias(n, 0.7e-4).unwrap();
        c.add_source(n, Waveform::sfq_pulse(60e-12, 1.5e-4))
            .unwrap();
        let out = Solver::new(c, SimOptions::default())
            .unwrap()
            .try_run(120e-12)
            .unwrap();
        assert_eq!(out.pulse_count(jj), 1, "want exactly one phase slip");
        let t = out.pulse_times(jj)[0];
        assert!((t - 60e-12).abs() < 5e-12, "pulse at {t:e}");
        // Switching energy within an order of magnitude of Ic·Φ0.
        let e = out.jj_dissipated_j[0];
        let scale = 1.0e-4 * PHI0;
        assert!(e > 0.05 * scale && e < 20.0 * scale, "energy {e:e}");
    }

    #[test]
    fn invalid_dt_rejected() {
        let mut c = Circuit::new();
        let _ = c.node();
        let opts = SimOptions {
            dt: 0.0,
            ..Default::default()
        };
        assert!(Solver::new(c, opts).is_err());
    }

    #[test]
    fn invalid_tolerance_and_newton_budget_rejected() {
        let build = || {
            let mut c = Circuit::new();
            let _ = c.node();
            c
        };
        for tol_v in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let opts = SimOptions {
                tol_v,
                ..Default::default()
            };
            assert!(
                matches!(
                    Solver::new(build(), opts),
                    Err(SimError::InvalidParameter { field: "tol_v", .. })
                ),
                "tol_v = {tol_v} must be rejected"
            );
        }
        let opts = SimOptions {
            max_newton: 0,
            ..Default::default()
        };
        assert!(matches!(
            Solver::new(build(), opts),
            Err(SimError::InvalidParameter {
                field: "max_newton",
                ..
            })
        ));
    }

    #[test]
    fn invalid_adaptive_bounds_rejected() {
        let build = || {
            let mut c = Circuit::new();
            let _ = c.node();
            c
        };
        let cases = [
            ("dt_min", 0.0, 1e-12, 1e-6),
            ("dt_max", 1e-13, f64::NAN, 1e-6),
            ("lte_tol", 1e-13, 1e-12, -1.0),
            // dt_max below dt_min.
            ("dt_max", 1e-12, 1e-13, 1e-6),
        ];
        for (field, dt_min, dt_max, lte_tol) in cases {
            let opts = SimOptions {
                step: StepControl::Adaptive {
                    dt_min,
                    dt_max,
                    lte_tol,
                },
                ..Default::default()
            };
            let got = Solver::new(build(), opts);
            assert!(
                matches!(got, Err(SimError::InvalidParameter { field: f, .. }) if f == field),
                "expected InvalidParameter for {field}"
            );
        }
    }

    /// Adaptive mode on the single-junction switching testbench: same
    /// pulse count, pulse time within half a picosecond, and a large
    /// reduction in accepted steps.
    #[test]
    fn adaptive_matches_fixed_on_single_switch() {
        let build = || {
            let mut c = Circuit::new();
            let n = c.node();
            let jj = c.add_jj(n, NodeId::GROUND, JjParams::default()).unwrap();
            c.add_bias(n, 0.7e-4).unwrap();
            c.add_source(n, Waveform::sfq_pulse(60e-12, 1.5e-4))
                .unwrap();
            (c, jj)
        };
        let (c, jj) = build();
        let fixed = Solver::new(c, SimOptions::default())
            .unwrap()
            .try_run(120e-12)
            .unwrap();
        let (c, _) = build();
        let adapt = Solver::new(c, SimOptions::adaptive())
            .unwrap()
            .try_run(120e-12)
            .unwrap();
        assert_eq!(fixed.pulse_count(jj), 1);
        assert_eq!(adapt.pulse_count(jj), 1);
        let dt = (fixed.pulse_times(jj)[0] - adapt.pulse_times(jj)[0]).abs();
        assert!(dt < 0.5e-12, "pulse time delta {dt:e}");
        assert!(
            adapt.accepted_steps * 3 <= fixed.accepted_steps,
            "adaptive {} vs fixed {} steps",
            adapt.accepted_steps,
            fixed.accepted_steps
        );
        // Energy agrees to a few percent.
        let rel = (adapt.dissipated_j - fixed.dissipated_j).abs() / fixed.dissipated_j;
        assert!(rel < 0.05, "energy delta {rel}");
    }

    /// The adaptive controller must not sail over a trigger pulse that
    /// arrives deep inside a quiescent interval.
    #[test]
    fn adaptive_does_not_skip_late_pulse() {
        let mut c = Circuit::new();
        let n = c.node();
        let jj = c.add_jj(n, NodeId::GROUND, JjParams::default()).unwrap();
        c.add_bias(n, 0.7e-4).unwrap();
        // 180 ps of nothing before the trigger.
        c.add_source(n, Waveform::sfq_pulse(200e-12, 1.5e-4))
            .unwrap();
        let out = Solver::new(c, SimOptions::adaptive())
            .unwrap()
            .try_run(260e-12)
            .unwrap();
        assert_eq!(out.pulse_count(jj), 1, "late pulse must be caught");
        let t = out.pulse_times(jj)[0];
        assert!((t - 200e-12).abs() < 5e-12, "pulse at {t:e}");
    }

    /// Interpolated traces: `trace_at` reproduces a recorded RC charge
    /// curve between (non-uniform) adaptive samples.
    #[test]
    fn adaptive_trace_interpolation_is_consistent() {
        let mut c = Circuit::new();
        let n = c.node();
        c.add_resistor(n, NodeId::GROUND, 2.0).unwrap();
        c.add_capacitor(n, NodeId::GROUND, 1e-12).unwrap();
        c.add_source(n, Waveform::Dc(1e-3)).unwrap();
        let opts = SimOptions {
            record_nodes: vec![n],
            ..SimOptions::adaptive()
        };
        let out = Solver::new(c, opts).unwrap().try_run(100e-12).unwrap();
        assert!((out.trace_at(0, 100e-12) - 2e-3).abs() < 1e-5);
        // Interpolation at a recorded sample returns the sample.
        let mid = out.trace_times.len() / 2;
        let t_mid = out.trace_times[mid];
        assert_eq!(out.trace_at(0, t_mid), out.traces[0][mid]);
        // Before the first sample: clamps.
        assert_eq!(out.trace_at(0, -1.0), out.traces[0][0]);
    }
}

#[cfg(test)]
mod banded_path_tests {
    use super::*;
    use crate::stdlib::{jtl_chain, JtlParams};

    /// A long JTL takes the banded path (>24 nodes, bandwidth 1) and
    /// must behave identically to short (dense-path) chains.
    #[test]
    fn long_chain_uses_banded_and_propagates() {
        let p = JtlParams::default();
        let (c, stages) = jtl_chain(40, &p);
        assert!(c.node_count() > 25, "banded path engaged");
        let out = Solver::new(c, SimOptions::default())
            .unwrap()
            .try_run(400e-12)
            .unwrap();
        for (k, jj) in stages.iter().enumerate() {
            assert_eq!(out.pulse_count(*jj), 1, "stage {k}");
        }
        // Monotone arrival down the whole line.
        let times: Vec<f64> = stages.iter().map(|j| out.pulse_times(*j)[0]).collect();
        for w in times.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    /// The same long chain under the adaptive controller: banded-LU
    /// reuse across dt plateaus, identical pulse counts and sub-0.5 ps
    /// pulse times. A 40-stage chain keeps a pulse in flight for most
    /// of the run (the phase-rate guard correctly pins dt near dt_min
    /// the whole time), so the step reduction here is modest — the
    /// ≥3× wins on the mostly-quiescent characterization cells are
    /// asserted in `tests/adaptive.rs` and `BENCH_solver.json`.
    #[test]
    fn long_chain_adaptive_matches_fixed() {
        let p = JtlParams::default();
        let (c, stages) = jtl_chain(40, &p);
        let fixed = Solver::new(c, SimOptions::default())
            .unwrap()
            .try_run(400e-12)
            .unwrap();
        let (c, _) = jtl_chain(40, &p);
        let adapt = Solver::new(c, SimOptions::adaptive())
            .unwrap()
            .try_run(400e-12)
            .unwrap();
        for (k, jj) in stages.iter().enumerate() {
            assert_eq!(adapt.pulse_count(*jj), fixed.pulse_count(*jj), "stage {k}");
            let dt = (adapt.pulse_times(*jj)[0] - fixed.pulse_times(*jj)[0]).abs();
            assert!(dt < 0.5e-12, "stage {k} pulse delta {dt:e}");
        }
        assert!(
            adapt.accepted_steps * 3 <= fixed.accepted_steps * 2,
            "adaptive {} vs fixed {}",
            adapt.accepted_steps,
            fixed.accepted_steps
        );
    }
}
