//! Transient MNA solver with trapezoidal integration and per-step
//! Newton iteration.

use std::f64::consts::PI;

use crate::circuit::Circuit;
use crate::error::SimError;
use crate::linalg::{solve_banded, solve_dense};
use crate::{ElementId, PHI0};

/// Solver options.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOptions {
    /// Timestep in seconds (default 0.1 ps — SFQ pulses are ~2 ps wide
    /// so this resolves them comfortably).
    pub dt: f64,
    /// Absolute Newton convergence tolerance on node voltages, volts.
    pub tol_v: f64,
    /// Maximum Newton iterations per step.
    pub max_newton: usize,
    /// Nodes whose voltage traces should be recorded (empty = none).
    pub record_nodes: Vec<crate::NodeId>,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            dt: 0.1e-12,
            tol_v: 1.0e-9,
            max_newton: 50,
            record_nodes: Vec::new(),
        }
    }
}

/// Result of a transient run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Timestep used.
    pub dt: f64,
    /// Final simulation time.
    pub t_end: f64,
    pulse_times: Vec<Vec<f64>>,
    final_phases: Vec<f64>,
    /// Total energy dissipated in all resistive elements, joules.
    pub dissipated_j: f64,
    /// Energy dissipated per junction shunt, joules (indexed like the
    /// circuit's junctions).
    pub jj_dissipated_j: Vec<f64>,
    /// Recorded voltage traces, parallel to `SimOptions::record_nodes`;
    /// one sample per timestep.
    pub traces: Vec<Vec<f64>>,
    /// Times corresponding to trace samples (only filled when traces
    /// are recorded).
    pub trace_times: Vec<f64>,
}

impl SimResult {
    /// Times (seconds) at which junction `jj` emitted an SFQ pulse
    /// (completed a forward 2π phase slip).
    pub fn pulse_times(&self, jj: ElementId) -> &[f64] {
        &self.pulse_times[jj.index()]
    }

    /// Number of pulses emitted by junction `jj`.
    pub fn pulse_count(&self, jj: ElementId) -> usize {
        self.pulse_times[jj.index()].len()
    }

    /// Final superconducting phase of junction `jj`, radians.
    pub fn final_phase(&self, jj: ElementId) -> f64 {
        self.final_phases[jj.index()]
    }
}

/// The transient solver. Construct with [`Solver::new`], then call
/// [`Solver::run`].
#[derive(Debug)]
pub struct Solver {
    ckt: Circuit,
    opts: SimOptions,
}

impl Solver {
    /// Wrap a circuit, validating it.
    ///
    /// # Errors
    ///
    /// Returns the circuit's validation error, or
    /// [`SimError::InvalidParameter`] for a non-positive timestep.
    pub fn new(ckt: Circuit, opts: SimOptions) -> Result<Self, SimError> {
        ckt.validate()?;
        if !opts.dt.is_finite() || opts.dt <= 0.0 {
            return Err(SimError::InvalidParameter {
                element: "options",
                field: "dt",
                value: opts.dt,
            });
        }
        Ok(Solver { ckt, opts })
    }

    /// Run the transient analysis from t = 0 to `t_end` seconds.
    ///
    /// # Errors
    ///
    /// Propagates Newton non-convergence or a singular matrix (usually
    /// a floating node).
    #[allow(clippy::too_many_lines)]
    pub fn run(&self, t_end: f64) -> SimResult {
        self.try_run(t_end)
            .expect("transient analysis failed; check circuit topology")
    }

    /// Fallible variant of [`Solver::run`].
    ///
    /// # Errors
    ///
    /// See [`Solver::run`].
    #[allow(clippy::too_many_lines)]
    pub fn try_run(&self, t_end: f64) -> Result<SimResult, SimError> {
        let ckt = &self.ckt;
        let n_unknown = ckt.node_count - 1; // ground excluded
        let h = self.opts.dt;
        let steps = (t_end / h).ceil() as usize;

        // State.
        let mut v = vec![0.0f64; ckt.node_count]; // index 0 = ground, always 0
        let mut phase: Vec<f64> = vec![0.0; ckt.jjs.len()];
        let mut pulse_count: Vec<usize> = vec![0; ckt.jjs.len()];
        let mut pulse_times: Vec<Vec<f64>> = vec![Vec::new(); ckt.jjs.len()];
        let mut i_cap = vec![0.0f64; ckt.capacitors.len()];
        let mut i_jj_cap = vec![0.0f64; ckt.jjs.len()];
        let mut i_ind = vec![0.0f64; ckt.inductors.len()];
        let mut dissipated = 0.0f64;
        let mut jj_dissipated = vec![0.0f64; ckt.jjs.len()];
        let mut traces: Vec<Vec<f64>> = vec![Vec::new(); self.opts.record_nodes.len()];
        let mut trace_times: Vec<f64> = Vec::new();

        let vbr = |v: &[f64], a: usize, b: usize| v[a] - v[b];

        let mut a_mat = vec![0.0f64; n_unknown * n_unknown];
        let mut rhs = vec![0.0f64; n_unknown];

        // Half-bandwidth of the conductance matrix under the builder's
        // natural node ordering; chain-structured circuits (JTLs,
        // shift registers) are narrow-banded, letting the O(n·bw²)
        // solver replace the O(n³) dense one.
        let bandwidth = {
            let mut bw = 0usize;
            let mut visit = |a: usize, b: usize| {
                if a > 0 && b > 0 {
                    bw = bw.max(a.abs_diff(b));
                }
            };
            for e in &ckt.resistors {
                visit(e.a, e.b);
            }
            for e in &ckt.capacitors {
                visit(e.a, e.b);
            }
            for e in &ckt.inductors {
                visit(e.a, e.b);
            }
            for e in &ckt.jjs {
                visit(e.a, e.b);
            }
            bw
        };
        let use_banded = n_unknown > 24 && bandwidth * 3 < n_unknown;

        for step in 0..steps {
            let t_next = (step + 1) as f64 * h;
            let v_prev = v.clone();

            // Newton iteration on node voltages at t_next.
            let mut v_iter = v.clone();
            let mut converged = false;
            for _ in 0..self.opts.max_newton {
                a_mat.iter_mut().for_each(|x| *x = 0.0);
                rhs.iter_mut().for_each(|x| *x = 0.0);

                // Helper to stamp a conductance + history current
                // (current flows a -> b through the element:
                //  i = g*(va-vb) + i_hist).
                let stamp = |a_mat: &mut [f64], rhs: &mut [f64], a: usize, b: usize, g: f64, i_hist: f64| {
                    if a > 0 {
                        a_mat[(a - 1) * n_unknown + (a - 1)] += g;
                        rhs[a - 1] -= i_hist;
                    }
                    if b > 0 {
                        a_mat[(b - 1) * n_unknown + (b - 1)] += g;
                        rhs[b - 1] += i_hist;
                    }
                    if a > 0 && b > 0 {
                        a_mat[(a - 1) * n_unknown + (b - 1)] -= g;
                        a_mat[(b - 1) * n_unknown + (a - 1)] -= g;
                    }
                };

                // Resistors.
                for r in &ckt.resistors {
                    stamp(&mut a_mat, &mut rhs, r.a, r.b, 1.0 / r.value, 0.0);
                }
                // Capacitors (trapezoidal companion).
                for (k, c) in ckt.capacitors.iter().enumerate() {
                    let g = 2.0 * c.value / h;
                    let i_hist = -g * vbr(&v_prev, c.a, c.b) - i_cap[k];
                    stamp(&mut a_mat, &mut rhs, c.a, c.b, g, i_hist);
                }
                // Inductors (trapezoidal companion).
                for (k, l) in ckt.inductors.iter().enumerate() {
                    let g = h / (2.0 * l.value);
                    let i_hist = i_ind[k] + g * vbr(&v_prev, l.a, l.b);
                    stamp(&mut a_mat, &mut rhs, l.a, l.b, g, i_hist);
                }
                // Josephson junctions (nonlinear: linearize around v_iter).
                for (k, jj) in ckt.jjs.iter().enumerate() {
                    let vb_prev = vbr(&v_prev, jj.a, jj.b);
                    let vb_k = vbr(&v_iter, jj.a, jj.b);
                    let phi_k = phase[k] + (PI * h / PHI0) * (vb_k + vb_prev);
                    let g_cap = 2.0 * jj.p.c / h;
                    let i_at_vk = jj.p.ic * phi_k.sin()
                        + vb_k / jj.p.r
                        + g_cap * (vb_k - vb_prev)
                        - i_jj_cap[k];
                    let g = jj.p.ic * phi_k.cos() * (PI * h / PHI0) + 1.0 / jj.p.r + g_cap;
                    let i_hist = i_at_vk - g * vb_k;
                    stamp(&mut a_mat, &mut rhs, jj.a, jj.b, g, i_hist);
                }
                // Sources (inject into node, return through `from`).
                for s in &ckt.sources {
                    let i = s.waveform.value(t_next);
                    if s.into > 0 {
                        rhs[s.into - 1] += i;
                    }
                    if s.from > 0 {
                        rhs[s.from - 1] -= i;
                    }
                }

                let mut a_copy = a_mat.clone();
                let mut rhs_copy = rhs.clone();
                let banded_sol = if use_banded {
                    solve_banded(&mut a_copy, &mut rhs_copy, n_unknown, bandwidth)
                } else {
                    None
                };
                let sol = match banded_sol {
                    Some(sol) => sol,
                    None => {
                        // Fallback: full dense elimination with pivoting.
                        let mut a2 = a_mat.clone();
                        let mut rhs2 = rhs.clone();
                        let Some(sol) = solve_dense(&mut a2, &mut rhs2, n_unknown) else {
                            return Err(SimError::SingularMatrix { time: t_next });
                        };
                        sol
                    }
                };

                let mut max_dv = 0.0f64;
                for (i, s) in sol.iter().enumerate() {
                    let dv = (s - v_iter[i + 1]).abs();
                    if dv > max_dv {
                        max_dv = dv;
                    }
                    v_iter[i + 1] = *s;
                }
                if max_dv < self.opts.tol_v {
                    converged = true;
                    break;
                }
            }
            if !converged {
                return Err(SimError::NoConvergence { time: t_next });
            }

            // Commit state updates.
            for (k, jj) in ckt.jjs.iter().enumerate() {
                let vb_prev = vbr(&v_prev, jj.a, jj.b);
                let vb_new = vbr(&v_iter, jj.a, jj.b);
                let new_phase = phase[k] + (PI * h / PHI0) * (vb_new + vb_prev);
                phase[k] = new_phase;
                // Forward 2π slips: pulse recorded when phase passes
                // (2k+1)π going up.
                while new_phase > (2 * pulse_count[k] + 1) as f64 * PI {
                    pulse_times[k].push(t_next);
                    pulse_count[k] += 1;
                }
                i_jj_cap[k] = (2.0 * jj.p.c / h) * (vb_new - vb_prev) - i_jj_cap[k];
                let p_shunt = vb_new * vb_new / jj.p.r;
                jj_dissipated[k] += p_shunt * h;
                dissipated += p_shunt * h;
            }
            for (k, c) in ckt.capacitors.iter().enumerate() {
                let g = 2.0 * c.value / h;
                i_cap[k] = g * (vbr(&v_iter, c.a, c.b) - vbr(&v_prev, c.a, c.b)) - i_cap[k];
            }
            for (k, l) in ckt.inductors.iter().enumerate() {
                let g = h / (2.0 * l.value);
                i_ind[k] += g * (vbr(&v_iter, l.a, l.b) + vbr(&v_prev, l.a, l.b));
            }
            for r in &ckt.resistors {
                let vb = vbr(&v_iter, r.a, r.b);
                dissipated += vb * vb / r.value * h;
            }
            v = v_iter;

            if !self.opts.record_nodes.is_empty() {
                trace_times.push(t_next);
                for (slot, node) in self.opts.record_nodes.iter().enumerate() {
                    traces[slot].push(v[node.index()]);
                }
            }
        }

        Ok(SimResult {
            dt: h,
            t_end,
            pulse_times,
            final_phases: phase,
            dissipated_j: dissipated,
            jj_dissipated_j: jj_dissipated,
            traces,
            trace_times,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{JjParams, NodeId};
    use crate::waveform::Waveform;

    /// RC low-pass driven by DC current: v settles to I*R.
    #[test]
    fn rc_settles_to_ir() {
        let mut c = Circuit::new();
        let n = c.node();
        c.add_resistor(n, NodeId::GROUND, 2.0).unwrap();
        c.add_capacitor(n, NodeId::GROUND, 1e-12).unwrap();
        c.add_source(n, Waveform::Dc(1e-3)).unwrap();
        let res = Solver::new(c, SimOptions::default()).unwrap();
        let out = res.try_run(100e-12).unwrap();
        assert!(out.t_end == 100e-12);
        // Check final node voltage through a recorded trace instead:
        let mut c = Circuit::new();
        let n = c.node();
        c.add_resistor(n, NodeId::GROUND, 2.0).unwrap();
        c.add_capacitor(n, NodeId::GROUND, 1e-12).unwrap();
        c.add_source(n, Waveform::Dc(1e-3)).unwrap();
        let opts = SimOptions {
            record_nodes: vec![n],
            ..Default::default()
        };
        let out = Solver::new(c, opts).unwrap().try_run(100e-12).unwrap();
        let last = *out.traces[0].last().unwrap();
        assert!((last - 2e-3).abs() < 1e-5, "v = {last}");
    }

    /// A DC-biased junction below Ic stays superconducting (no pulses,
    /// zero average voltage).
    #[test]
    fn subcritical_jj_stays_quiet() {
        let mut c = Circuit::new();
        let n = c.node();
        let jj = c.add_jj(n, NodeId::GROUND, JjParams::default()).unwrap();
        c.add_bias(n, 0.7e-4).unwrap(); // 0.7 Ic
        let out = Solver::new(c, SimOptions::default())
            .unwrap()
            .try_run(200e-12)
            .unwrap();
        assert_eq!(out.pulse_count(jj), 0);
        // Phase settles near asin(0.7).
        let expect = (0.7f64).asin();
        assert!(
            (out.final_phase(jj) - expect).abs() < 0.05,
            "phase = {}",
            out.final_phase(jj)
        );
    }

    /// A junction driven above Ic runs away: continuous phase slips
    /// (Josephson oscillation) at roughly f = V/Φ0.
    #[test]
    fn overdriven_jj_oscillates() {
        let mut c = Circuit::new();
        let n = c.node();
        let jj = c.add_jj(n, NodeId::GROUND, JjParams::default()).unwrap();
        c.add_bias(n, 2.0e-4).unwrap(); // 2 Ic
        let out = Solver::new(c, SimOptions::default())
            .unwrap()
            .try_run(200e-12)
            .unwrap();
        assert!(out.pulse_count(jj) > 10, "pulses = {}", out.pulse_count(jj));
        assert!(out.dissipated_j > 0.0);
    }

    /// A single trigger pulse on a biased junction produces exactly one
    /// 2π slip, dissipating on the order of Ic·Φ0 (~2×10⁻¹⁹ J).
    #[test]
    fn single_sfq_switching_event() {
        let mut c = Circuit::new();
        let n = c.node();
        let jj = c.add_jj(n, NodeId::GROUND, JjParams::default()).unwrap();
        c.add_bias(n, 0.7e-4).unwrap();
        c.add_source(n, Waveform::sfq_pulse(60e-12, 1.5e-4)).unwrap();
        let out = Solver::new(c, SimOptions::default())
            .unwrap()
            .try_run(120e-12)
            .unwrap();
        assert_eq!(out.pulse_count(jj), 1, "want exactly one phase slip");
        let t = out.pulse_times(jj)[0];
        assert!((t - 60e-12).abs() < 5e-12, "pulse at {t:e}");
        // Switching energy within an order of magnitude of Ic·Φ0.
        let e = out.jj_dissipated_j[0];
        let scale = 1.0e-4 * PHI0;
        assert!(e > 0.05 * scale && e < 20.0 * scale, "energy {e:e}");
    }

    #[test]
    fn invalid_dt_rejected() {
        let mut c = Circuit::new();
        let _ = c.node();
        let opts = SimOptions {
            dt: 0.0,
            ..Default::default()
        };
        assert!(Solver::new(c, opts).is_err());
    }
}

#[cfg(test)]
mod banded_path_tests {
    use super::*;
    use crate::stdlib::{jtl_chain, JtlParams};

    /// A long JTL takes the banded path (>24 nodes, bandwidth 1) and
    /// must behave identically to short (dense-path) chains.
    #[test]
    fn long_chain_uses_banded_and_propagates() {
        let p = JtlParams::default();
        let (c, stages) = jtl_chain(40, &p);
        assert!(c.node_count() > 25, "banded path engaged");
        let out = Solver::new(c, SimOptions::default())
            .unwrap()
            .try_run(400e-12)
            .unwrap();
        for (k, jj) in stages.iter().enumerate() {
            assert_eq!(out.pulse_count(*jj), 1, "stage {k}");
        }
        // Monotone arrival down the whole line.
        let times: Vec<f64> = stages.iter().map(|j| out.pulse_times(*j)[0]).collect();
        for w in times.windows(2) {
            assert!(w[1] > w[0]);
        }
    }
}
