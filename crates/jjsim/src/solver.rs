//! Transient MNA solver with trapezoidal integration and per-step
//! Newton iteration.

use std::f64::consts::PI;
use std::sync::OnceLock;
use std::time::Instant;

use crate::circuit::Circuit;
use crate::error::SimError;
use crate::linalg::{factor_banded, solve_dense, solve_factored};
use crate::{ElementId, PHI0};

/// The always-on `jjsim.solver.transient_runs` counter: every
/// [`Solver::try_run`] call increments it, metrics enabled or not,
/// exactly like the ad-hoc static it replaced. Lets characterization
/// caches prove, in tests, that a repeated request performed no new
/// transient work.
fn transient_counter() -> &'static sfq_obs::Counter {
    static C: OnceLock<&'static sfq_obs::Counter> = OnceLock::new();
    C.get_or_init(|| sfq_obs::counter("jjsim.solver.transient_runs"))
}

/// Number of transient analyses started by this process so far.
///
/// Deprecated alias: this is now a thin wrapper over the
/// `jjsim.solver.transient_runs` counter in the [`sfq_obs`] registry;
/// prefer `sfq_obs::counter("jjsim.solver.transient_runs").get()` (or
/// [`sfq_obs::snapshot`]) in new code.
pub fn transient_runs() -> u64 {
    transient_counter().get()
}

/// Per-run metric accumulators, flushed into the [`sfq_obs`] registry
/// in one batch at every exit of [`Solver::try_run`]. The counters are
/// plain locals while the run is in flight, so the per-iteration cost
/// is a register increment whether metrics are on or off; the flush
/// itself is gated on [`sfq_obs::enabled`].
#[derive(Default)]
struct RunMetrics {
    started: Option<Instant>,
    steps: u64,
    newton_iters: u64,
    lu_factor: u64,
    lu_reuse: u64,
    dense_solves: u64,
}

impl RunMetrics {
    fn start() -> Self {
        RunMetrics {
            started: sfq_obs::enabled().then(Instant::now),
            ..Self::default()
        }
    }

    fn flush(&self, error: Option<&SimError>) {
        if !sfq_obs::enabled() {
            return;
        }
        sfq_obs::add("jjsim.solver.steps", self.steps);
        sfq_obs::add("jjsim.solver.newton_iters", self.newton_iters);
        sfq_obs::add("jjsim.solver.lu_factor", self.lu_factor);
        sfq_obs::add("jjsim.solver.lu_reuse", self.lu_reuse);
        sfq_obs::add("jjsim.solver.dense_solves", self.dense_solves);
        match error {
            Some(SimError::NoConvergence { .. }) => {
                sfq_obs::inc("jjsim.solver.convergence_failures");
            }
            Some(SimError::SingularMatrix { .. }) => {
                sfq_obs::inc("jjsim.solver.singular_matrix");
            }
            _ => {}
        }
        if let Some(t0) = self.started {
            sfq_obs::observe("jjsim.solver.run_ms", t0.elapsed().as_secs_f64() * 1e3);
        }
    }
}

/// Solver options.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOptions {
    /// Timestep in seconds (default 0.1 ps — SFQ pulses are ~2 ps wide
    /// so this resolves them comfortably).
    pub dt: f64,
    /// Absolute Newton convergence tolerance on node voltages, volts.
    pub tol_v: f64,
    /// Maximum Newton iterations per step.
    pub max_newton: usize,
    /// Nodes whose voltage traces should be recorded (empty = none).
    pub record_nodes: Vec<crate::NodeId>,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            dt: 0.1e-12,
            tol_v: 1.0e-9,
            max_newton: 50,
            record_nodes: Vec::new(),
        }
    }
}

/// Result of a transient run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Timestep used.
    pub dt: f64,
    /// Final simulation time.
    pub t_end: f64,
    pulse_times: Vec<Vec<f64>>,
    final_phases: Vec<f64>,
    /// Total energy dissipated in all resistive elements, joules.
    pub dissipated_j: f64,
    /// Energy dissipated per junction shunt, joules (indexed like the
    /// circuit's junctions).
    pub jj_dissipated_j: Vec<f64>,
    /// Recorded voltage traces, parallel to `SimOptions::record_nodes`;
    /// one sample per timestep.
    pub traces: Vec<Vec<f64>>,
    /// Times corresponding to trace samples (only filled when traces
    /// are recorded).
    pub trace_times: Vec<f64>,
}

impl SimResult {
    /// Times (seconds) at which junction `jj` emitted an SFQ pulse
    /// (completed a forward 2π phase slip).
    pub fn pulse_times(&self, jj: ElementId) -> &[f64] {
        &self.pulse_times[jj.index()]
    }

    /// Number of pulses emitted by junction `jj`.
    pub fn pulse_count(&self, jj: ElementId) -> usize {
        self.pulse_times[jj.index()].len()
    }

    /// Final superconducting phase of junction `jj`, radians.
    pub fn final_phase(&self, jj: ElementId) -> f64 {
        self.final_phases[jj.index()]
    }
}

/// The transient solver. Construct with [`Solver::new`], then call
/// [`Solver::run`].
#[derive(Debug)]
pub struct Solver {
    ckt: Circuit,
    opts: SimOptions,
}

impl Solver {
    /// Wrap a circuit, validating it.
    ///
    /// # Errors
    ///
    /// Returns the circuit's validation error, or
    /// [`SimError::InvalidParameter`] for a non-positive timestep.
    pub fn new(ckt: Circuit, opts: SimOptions) -> Result<Self, SimError> {
        ckt.validate()?;
        if !opts.dt.is_finite() || opts.dt <= 0.0 {
            return Err(SimError::InvalidParameter {
                element: "options",
                field: "dt",
                value: opts.dt,
            });
        }
        Ok(Solver { ckt, opts })
    }

    /// Run the transient analysis from t = 0 to `t_end` seconds.
    ///
    /// # Errors
    ///
    /// Propagates Newton non-convergence or a singular matrix (usually
    /// a floating node).
    #[allow(clippy::too_many_lines)]
    pub fn run(&self, t_end: f64) -> SimResult {
        self.try_run(t_end)
            .expect("transient analysis failed; check circuit topology")
    }

    /// Fallible variant of [`Solver::run`].
    ///
    /// # Errors
    ///
    /// See [`Solver::run`].
    #[allow(clippy::too_many_lines)]
    pub fn try_run(&self, t_end: f64) -> Result<SimResult, SimError> {
        transient_counter().inc();
        let mut metrics = RunMetrics::start();
        let ckt = &self.ckt;
        let n_unknown = ckt.node_count - 1; // ground excluded
        let h = self.opts.dt;
        let steps = (t_end / h).ceil() as usize;

        // State.
        let mut v = vec![0.0f64; ckt.node_count]; // index 0 = ground, always 0
        let mut phase: Vec<f64> = vec![0.0; ckt.jjs.len()];
        let mut pulse_count: Vec<usize> = vec![0; ckt.jjs.len()];
        let mut pulse_times: Vec<Vec<f64>> = vec![Vec::new(); ckt.jjs.len()];
        let mut i_cap = vec![0.0f64; ckt.capacitors.len()];
        let mut i_jj_cap = vec![0.0f64; ckt.jjs.len()];
        let mut i_ind = vec![0.0f64; ckt.inductors.len()];
        let mut dissipated = 0.0f64;
        let mut jj_dissipated = vec![0.0f64; ckt.jjs.len()];
        let record = !self.opts.record_nodes.is_empty();
        let mut traces: Vec<Vec<f64>> = self
            .opts
            .record_nodes
            .iter()
            .map(|_| Vec::with_capacity(steps))
            .collect();
        let mut trace_times: Vec<f64> = Vec::with_capacity(if record { steps } else { 0 });

        let vbr = |v: &[f64], a: usize, b: usize| v[a] - v[b];

        // Half-bandwidth of the conductance matrix under the builder's
        // natural node ordering; chain-structured circuits (JTLs,
        // shift registers) are narrow-banded, letting the O(n·bw²)
        // solver replace the O(n³) dense one.
        let bandwidth = {
            let mut bw = 0usize;
            let mut visit = |a: usize, b: usize| {
                if a > 0 && b > 0 {
                    bw = bw.max(a.abs_diff(b));
                }
            };
            for e in &ckt.resistors {
                visit(e.a, e.b);
            }
            for e in &ckt.capacitors {
                visit(e.a, e.b);
            }
            for e in &ckt.inductors {
                visit(e.a, e.b);
            }
            for e in &ckt.jjs {
                visit(e.a, e.b);
            }
            bw
        };
        let use_banded = n_unknown > 24 && bandwidth * 3 < n_unknown;

        // Conductance stamp into a row-major matrix (current a -> b:
        // i = g*(va-vb) + i_hist; the i_hist part goes to the rhs).
        let stamp_g = |m: &mut [f64], a: usize, b: usize, g: f64| {
            if a > 0 {
                m[(a - 1) * n_unknown + (a - 1)] += g;
            }
            if b > 0 {
                m[(b - 1) * n_unknown + (b - 1)] += g;
            }
            if a > 0 && b > 0 {
                m[(a - 1) * n_unknown + (b - 1)] -= g;
                m[(b - 1) * n_unknown + (a - 1)] -= g;
            }
        };
        let stamp_i = |rhs: &mut [f64], a: usize, b: usize, i_hist: f64| {
            if a > 0 {
                rhs[a - 1] -= i_hist;
            }
            if b > 0 {
                rhs[b - 1] += i_hist;
            }
        };

        // The linear elements' conductances (R, C, L companions) do not
        // depend on time or on the Newton iterate — stamp them ONCE and
        // start every Newton assembly from this matrix instead of
        // re-stamping the full element list per iteration. Only their
        // history currents (rhs side) change, once per step.
        let a_lin = {
            let mut m = vec![0.0f64; n_unknown * n_unknown];
            for r in &ckt.resistors {
                stamp_g(&mut m, r.a, r.b, 1.0 / r.value);
            }
            for c in &ckt.capacitors {
                stamp_g(&mut m, c.a, c.b, 2.0 * c.value / h);
            }
            for l in &ckt.inductors {
                stamp_g(&mut m, l.a, l.b, h / (2.0 * l.value));
            }
            m
        };

        // Work buffers, allocated once and reused across every step and
        // Newton iteration.
        let mut a_mat = vec![0.0f64; n_unknown * n_unknown];
        let mut rhs_base = vec![0.0f64; n_unknown];
        let mut rhs = vec![0.0f64; n_unknown];
        let mut v_prev = vec![0.0f64; ckt.node_count];
        let mut v_iter = vec![0.0f64; ckt.node_count];
        let mut g_now = vec![0.0f64; ckt.jjs.len()];
        let mut ihist_now = vec![0.0f64; ckt.jjs.len()];

        // Reusable banded LU: while every junction's linearized
        // conductance is quasi-static (relative drift below
        // `G_REUSE_RTOL` since the last factorization — true between
        // pulses, i.e. most of the simulated time), the factorization
        // is reused across Newton iterations AND timesteps, turning the
        // per-iteration O(n·bw²) elimination into an O(n·bw) pair of
        // triangular solves (chord-Newton / SPICE LU-reuse). The rhs
        // history currents are computed against the factored
        // conductances (`lu_g`), so a converged iterate satisfies KCL
        // exactly — reuse changes the iteration path, never the fixed
        // point.
        const G_REUSE_RTOL: f64 = 1e-8;
        let mut lu = vec![0.0f64; if use_banded { n_unknown * n_unknown } else { 0 }];
        let mut lu_g = vec![0.0f64; ckt.jjs.len()];
        let mut lu_valid = false;

        for step in 0..steps {
            metrics.steps += 1;
            let t_next = (step + 1) as f64 * h;
            v_prev.copy_from_slice(&v);
            v_iter.copy_from_slice(&v);

            // Per-step rhs: C/L history currents (fixed within the
            // step's Newton loop) and the source currents at t_next.
            rhs_base.iter_mut().for_each(|x| *x = 0.0);
            for (k, c) in ckt.capacitors.iter().enumerate() {
                let g = 2.0 * c.value / h;
                let i_hist = -g * vbr(&v_prev, c.a, c.b) - i_cap[k];
                stamp_i(&mut rhs_base, c.a, c.b, i_hist);
            }
            for (k, l) in ckt.inductors.iter().enumerate() {
                let g = h / (2.0 * l.value);
                let i_hist = i_ind[k] + g * vbr(&v_prev, l.a, l.b);
                stamp_i(&mut rhs_base, l.a, l.b, i_hist);
            }
            for s in &ckt.sources {
                let i = s.waveform.value(t_next);
                if s.into > 0 {
                    rhs_base[s.into - 1] += i;
                }
                if s.from > 0 {
                    rhs_base[s.from - 1] -= i;
                }
            }

            // Newton iteration on node voltages at t_next.
            let mut converged = false;
            for _ in 0..self.opts.max_newton {
                metrics.newton_iters += 1;
                // Linearize every junction around v_iter and decide
                // whether the existing factorization still applies.
                let mut reuse = use_banded && lu_valid;
                for (k, jj) in ckt.jjs.iter().enumerate() {
                    let vb_prev = vbr(&v_prev, jj.a, jj.b);
                    let vb_k = vbr(&v_iter, jj.a, jj.b);
                    let phi_k = phase[k] + (PI * h / PHI0) * (vb_k + vb_prev);
                    let g_cap = 2.0 * jj.p.c / h;
                    let i_at_vk = jj.p.ic * phi_k.sin() + vb_k / jj.p.r + g_cap * (vb_k - vb_prev)
                        - i_jj_cap[k];
                    let g = jj.p.ic * phi_k.cos() * (PI * h / PHI0) + 1.0 / jj.p.r + g_cap;
                    g_now[k] = g;
                    if reuse && (g - lu_g[k]).abs() > G_REUSE_RTOL * lu_g[k].abs() {
                        reuse = false;
                    }
                    // The matrix conductance this junction will solve
                    // against (old on reuse); using it in the history
                    // current keeps the converged iterate exact.
                    let g_mat = if reuse { lu_g[k] } else { g };
                    ihist_now[k] = i_at_vk - g_mat * vb_k;
                }
                // A junction after the first may have vetoed reuse;
                // recompute earlier history currents against the fresh
                // conductances so matrix and rhs agree.
                if !reuse && use_banded && lu_valid {
                    for (k, jj) in ckt.jjs.iter().enumerate() {
                        let vb_k = vbr(&v_iter, jj.a, jj.b);
                        let vb_prev = vbr(&v_prev, jj.a, jj.b);
                        let phi_k = phase[k] + (PI * h / PHI0) * (vb_k + vb_prev);
                        let g_cap = 2.0 * jj.p.c / h;
                        let i_at_vk =
                            jj.p.ic * phi_k.sin() + vb_k / jj.p.r + g_cap * (vb_k - vb_prev)
                                - i_jj_cap[k];
                        ihist_now[k] = i_at_vk - g_now[k] * vb_k;
                    }
                }

                rhs.copy_from_slice(&rhs_base);
                for (k, jj) in ckt.jjs.iter().enumerate() {
                    stamp_i(&mut rhs, jj.a, jj.b, ihist_now[k]);
                }

                let mut solved_in_rhs = false;
                if use_banded {
                    if !reuse {
                        metrics.lu_factor += 1;
                        lu.copy_from_slice(&a_lin);
                        for (k, jj) in ckt.jjs.iter().enumerate() {
                            stamp_g(&mut lu, jj.a, jj.b, g_now[k]);
                        }
                        if factor_banded(&mut lu, n_unknown, bandwidth) {
                            lu_g.copy_from_slice(&g_now);
                            lu_valid = true;
                        } else {
                            lu_valid = false;
                        }
                    } else {
                        metrics.lu_reuse += 1;
                    }
                    if lu_valid {
                        solve_factored(&lu, &mut rhs, n_unknown, bandwidth);
                        solved_in_rhs = true;
                    }
                }
                if !solved_in_rhs {
                    metrics.dense_solves += 1;
                    // Dense elimination with pivoting: small circuits,
                    // and the fallback when the no-pivot banded
                    // factorization hits a tiny pivot.
                    a_mat.copy_from_slice(&a_lin);
                    for (k, jj) in ckt.jjs.iter().enumerate() {
                        stamp_g(&mut a_mat, jj.a, jj.b, g_now[k]);
                    }
                    let Some(sol) = solve_dense(&mut a_mat, &mut rhs, n_unknown) else {
                        let e = SimError::SingularMatrix { time: t_next };
                        metrics.flush(Some(&e));
                        return Err(e);
                    };
                    rhs.copy_from_slice(&sol);
                }

                let mut max_dv = 0.0f64;
                for (i, s) in rhs.iter().enumerate() {
                    let dv = (s - v_iter[i + 1]).abs();
                    if dv > max_dv {
                        max_dv = dv;
                    }
                    v_iter[i + 1] = *s;
                }
                if max_dv < self.opts.tol_v {
                    converged = true;
                    break;
                }
            }
            if !converged {
                let e = SimError::NoConvergence { time: t_next };
                metrics.flush(Some(&e));
                return Err(e);
            }

            // Commit state updates.
            for (k, jj) in ckt.jjs.iter().enumerate() {
                let vb_prev = vbr(&v_prev, jj.a, jj.b);
                let vb_new = vbr(&v_iter, jj.a, jj.b);
                let new_phase = phase[k] + (PI * h / PHI0) * (vb_new + vb_prev);
                phase[k] = new_phase;
                // Forward 2π slips: pulse recorded when phase passes
                // (2k+1)π going up.
                while new_phase > (2 * pulse_count[k] + 1) as f64 * PI {
                    pulse_times[k].push(t_next);
                    pulse_count[k] += 1;
                }
                i_jj_cap[k] = (2.0 * jj.p.c / h) * (vb_new - vb_prev) - i_jj_cap[k];
                let p_shunt = vb_new * vb_new / jj.p.r;
                jj_dissipated[k] += p_shunt * h;
                dissipated += p_shunt * h;
            }
            for (k, c) in ckt.capacitors.iter().enumerate() {
                let g = 2.0 * c.value / h;
                i_cap[k] = g * (vbr(&v_iter, c.a, c.b) - vbr(&v_prev, c.a, c.b)) - i_cap[k];
            }
            for (k, l) in ckt.inductors.iter().enumerate() {
                let g = h / (2.0 * l.value);
                i_ind[k] += g * (vbr(&v_iter, l.a, l.b) + vbr(&v_prev, l.a, l.b));
            }
            for r in &ckt.resistors {
                let vb = vbr(&v_iter, r.a, r.b);
                dissipated += vb * vb / r.value * h;
            }
            v.copy_from_slice(&v_iter);

            if record {
                trace_times.push(t_next);
                for (slot, node) in self.opts.record_nodes.iter().enumerate() {
                    traces[slot].push(v[node.index()]);
                }
            }
        }

        metrics.flush(None);
        Ok(SimResult {
            dt: h,
            t_end,
            pulse_times,
            final_phases: phase,
            dissipated_j: dissipated,
            jj_dissipated_j: jj_dissipated,
            traces,
            trace_times,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{JjParams, NodeId};
    use crate::waveform::Waveform;

    /// RC low-pass driven by DC current: v settles to I*R.
    #[test]
    fn rc_settles_to_ir() {
        let mut c = Circuit::new();
        let n = c.node();
        c.add_resistor(n, NodeId::GROUND, 2.0).unwrap();
        c.add_capacitor(n, NodeId::GROUND, 1e-12).unwrap();
        c.add_source(n, Waveform::Dc(1e-3)).unwrap();
        let res = Solver::new(c, SimOptions::default()).unwrap();
        let out = res.try_run(100e-12).unwrap();
        assert!(out.t_end == 100e-12);
        // Check final node voltage through a recorded trace instead:
        let mut c = Circuit::new();
        let n = c.node();
        c.add_resistor(n, NodeId::GROUND, 2.0).unwrap();
        c.add_capacitor(n, NodeId::GROUND, 1e-12).unwrap();
        c.add_source(n, Waveform::Dc(1e-3)).unwrap();
        let opts = SimOptions {
            record_nodes: vec![n],
            ..Default::default()
        };
        let out = Solver::new(c, opts).unwrap().try_run(100e-12).unwrap();
        let last = *out.traces[0].last().unwrap();
        assert!((last - 2e-3).abs() < 1e-5, "v = {last}");
    }

    /// A DC-biased junction below Ic stays superconducting (no pulses,
    /// zero average voltage).
    #[test]
    fn subcritical_jj_stays_quiet() {
        let mut c = Circuit::new();
        let n = c.node();
        let jj = c.add_jj(n, NodeId::GROUND, JjParams::default()).unwrap();
        c.add_bias(n, 0.7e-4).unwrap(); // 0.7 Ic
        let out = Solver::new(c, SimOptions::default())
            .unwrap()
            .try_run(200e-12)
            .unwrap();
        assert_eq!(out.pulse_count(jj), 0);
        // Phase settles near asin(0.7).
        let expect = (0.7f64).asin();
        assert!(
            (out.final_phase(jj) - expect).abs() < 0.05,
            "phase = {}",
            out.final_phase(jj)
        );
    }

    /// A junction driven above Ic runs away: continuous phase slips
    /// (Josephson oscillation) at roughly f = V/Φ0.
    #[test]
    fn overdriven_jj_oscillates() {
        let mut c = Circuit::new();
        let n = c.node();
        let jj = c.add_jj(n, NodeId::GROUND, JjParams::default()).unwrap();
        c.add_bias(n, 2.0e-4).unwrap(); // 2 Ic
        let out = Solver::new(c, SimOptions::default())
            .unwrap()
            .try_run(200e-12)
            .unwrap();
        assert!(out.pulse_count(jj) > 10, "pulses = {}", out.pulse_count(jj));
        assert!(out.dissipated_j > 0.0);
    }

    /// A single trigger pulse on a biased junction produces exactly one
    /// 2π slip, dissipating on the order of Ic·Φ0 (~2×10⁻¹⁹ J).
    #[test]
    fn single_sfq_switching_event() {
        let mut c = Circuit::new();
        let n = c.node();
        let jj = c.add_jj(n, NodeId::GROUND, JjParams::default()).unwrap();
        c.add_bias(n, 0.7e-4).unwrap();
        c.add_source(n, Waveform::sfq_pulse(60e-12, 1.5e-4))
            .unwrap();
        let out = Solver::new(c, SimOptions::default())
            .unwrap()
            .try_run(120e-12)
            .unwrap();
        assert_eq!(out.pulse_count(jj), 1, "want exactly one phase slip");
        let t = out.pulse_times(jj)[0];
        assert!((t - 60e-12).abs() < 5e-12, "pulse at {t:e}");
        // Switching energy within an order of magnitude of Ic·Φ0.
        let e = out.jj_dissipated_j[0];
        let scale = 1.0e-4 * PHI0;
        assert!(e > 0.05 * scale && e < 20.0 * scale, "energy {e:e}");
    }

    #[test]
    fn invalid_dt_rejected() {
        let mut c = Circuit::new();
        let _ = c.node();
        let opts = SimOptions {
            dt: 0.0,
            ..Default::default()
        };
        assert!(Solver::new(c, opts).is_err());
    }
}

#[cfg(test)]
mod banded_path_tests {
    use super::*;
    use crate::stdlib::{jtl_chain, JtlParams};

    /// A long JTL takes the banded path (>24 nodes, bandwidth 1) and
    /// must behave identically to short (dense-path) chains.
    #[test]
    fn long_chain_uses_banded_and_propagates() {
        let p = JtlParams::default();
        let (c, stages) = jtl_chain(40, &p);
        assert!(c.node_count() > 25, "banded path engaged");
        let out = Solver::new(c, SimOptions::default())
            .unwrap()
            .try_run(400e-12)
            .unwrap();
        for (k, jj) in stages.iter().enumerate() {
            assert_eq!(out.pulse_count(*jj), 1, "stage {k}");
        }
        // Monotone arrival down the whole line.
        let times: Vec<f64> = stages.iter().map(|j| out.pulse_times(*j)[0]).collect();
        for w in times.windows(2) {
            assert!(w[1] > w[0]);
        }
    }
}
