//! Source waveforms.

use serde::{Deserialize, Serialize};

/// A time-dependent current waveform for sources, in amperes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Waveform {
    /// Constant (bias) current.
    Dc(f64),
    /// A single Gaussian pulse centered at `t0` with standard
    /// deviation `sigma` and peak `amplitude` — the standard way this
    /// crate injects an SFQ trigger.
    Gaussian {
        /// Center time in seconds.
        t0: f64,
        /// Standard deviation in seconds.
        sigma: f64,
        /// Peak current in amperes.
        amplitude: f64,
    },
    /// A train of Gaussian pulses (e.g., a clock).
    Train {
        /// Pulse center times in seconds.
        times: Vec<f64>,
        /// Standard deviation in seconds.
        sigma: f64,
        /// Peak current in amperes.
        amplitude: f64,
    },
    /// A linear ramp from zero at `t0` to `amplitude` at `t0 + rise`,
    /// then constant (used for soft-starting bias currents).
    Ramp {
        /// Start time in seconds.
        t0: f64,
        /// Rise duration in seconds.
        rise: f64,
        /// Final current in amperes.
        amplitude: f64,
    },
}

impl Waveform {
    /// Evaluate the waveform at time `t` (seconds).
    pub fn value(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(a) => *a,
            Waveform::Gaussian {
                t0,
                sigma,
                amplitude,
            } => gaussian(t, *t0, *sigma) * amplitude,
            Waveform::Train {
                times,
                sigma,
                amplitude,
            } => {
                let mut sum = 0.0;
                for &t0 in times {
                    // Only nearby pulses contribute meaningfully.
                    if (t - t0).abs() < 8.0 * sigma {
                        sum += gaussian(t, t0, *sigma);
                    }
                }
                sum * amplitude
            }
            Waveform::Ramp {
                t0,
                rise,
                amplitude,
            } => {
                if t <= *t0 {
                    0.0
                } else if t >= t0 + rise {
                    *amplitude
                } else {
                    amplitude * (t - t0) / rise
                }
            }
        }
    }

    /// Time intervals in which an adaptive-step solver must refine,
    /// as `(start, end, dt_cap)` tuples: while `start ≤ t < end` the
    /// step must not exceed `dt_cap`, and a quiescent step must not
    /// jump across `start`. Gaussian pulses refine over t0 ± 4σ at a
    /// σ/2 cap; ramps refine around both corners (an LTE estimator
    /// based on linear extrapolation cannot see a slope
    /// discontinuity coming). DC sources and zero-amplitude pulses
    /// contribute nothing.
    pub fn refinement_windows(&self) -> Vec<(f64, f64, f64)> {
        match self {
            Waveform::Dc(_) => Vec::new(),
            Waveform::Gaussian {
                t0,
                sigma,
                amplitude,
            } => {
                if *amplitude == 0.0 {
                    Vec::new()
                } else {
                    vec![(t0 - 4.0 * sigma, t0 + 4.0 * sigma, sigma / 2.0)]
                }
            }
            Waveform::Train {
                times,
                sigma,
                amplitude,
            } => {
                if *amplitude == 0.0 {
                    Vec::new()
                } else {
                    times
                        .iter()
                        .map(|t0| (t0 - 4.0 * sigma, t0 + 4.0 * sigma, sigma / 2.0))
                        .collect()
                }
            }
            Waveform::Ramp {
                t0,
                rise,
                amplitude,
            } => {
                if *amplitude == 0.0 {
                    Vec::new()
                } else {
                    let corner = 1.0e-12;
                    vec![
                        (t0 - corner, t0 + corner, 0.5e-12),
                        (t0 + rise - corner, t0 + rise + corner, 0.5e-12),
                    ]
                }
            }
        }
    }

    /// A standard SFQ trigger pulse at `t0`: 1 ps sigma, amplitude in
    /// amperes chosen by the caller (usually ≈0.8·I_c of the target
    /// junction).
    pub fn sfq_pulse(t0: f64, amplitude: f64) -> Self {
        Waveform::Gaussian {
            t0,
            sigma: 1.0e-12,
            amplitude,
        }
    }

    /// A clock train with the given period starting at `t_start`, `n`
    /// pulses, 1 ps sigma.
    pub fn clock(t_start: f64, period: f64, n: usize, amplitude: f64) -> Self {
        Waveform::Train {
            times: (0..n).map(|i| t_start + period * i as f64).collect(),
            sigma: 1.0e-12,
            amplitude,
        }
    }
}

fn gaussian(t: f64, t0: f64, sigma: f64) -> f64 {
    let x = (t - t0) / sigma;
    (-0.5 * x * x).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let w = Waveform::Dc(1e-4);
        assert_eq!(w.value(0.0), 1e-4);
        assert_eq!(w.value(1.0), 1e-4);
    }

    #[test]
    fn gaussian_peaks_at_center() {
        let w = Waveform::sfq_pulse(10e-12, 1e-4);
        assert!((w.value(10e-12) - 1e-4).abs() < 1e-12);
        assert!(w.value(0.0) < 1e-8);
        // symmetric
        assert!((w.value(9e-12) - w.value(11e-12)).abs() < 1e-15);
    }

    #[test]
    fn train_sums_pulses() {
        let w = Waveform::clock(10e-12, 20e-12, 3, 1e-4);
        assert!((w.value(10e-12) - 1e-4).abs() < 1e-9);
        assert!((w.value(30e-12) - 1e-4).abs() < 1e-9);
        assert!((w.value(50e-12) - 1e-4).abs() < 1e-9);
        assert!(w.value(70e-12) < 1e-8);
    }

    #[test]
    fn refinement_windows_cover_events() {
        // Gaussian: one window straddling t0.
        let w = Waveform::sfq_pulse(60e-12, 1e-4);
        let ws = w.refinement_windows();
        assert_eq!(ws.len(), 1);
        let (s, e, cap) = ws[0];
        assert!(s < 60e-12 && e > 60e-12);
        assert!(cap <= 1e-12);
        // Zero amplitude: no windows.
        assert!(Waveform::sfq_pulse(60e-12, 0.0)
            .refinement_windows()
            .is_empty());
        // DC: no windows.
        assert!(Waveform::Dc(1e-4).refinement_windows().is_empty());
        // Train: one per pulse.
        let w = Waveform::clock(10e-12, 20e-12, 3, 1e-4);
        assert_eq!(w.refinement_windows().len(), 3);
        // Ramp: both corners.
        let w = Waveform::Ramp {
            t0: 0.0,
            rise: 20e-12,
            amplitude: 1e-4,
        };
        let ws = w.refinement_windows();
        assert_eq!(ws.len(), 2);
        assert!(ws[0].0 <= 0.0 && ws[0].1 >= 0.0);
        assert!(ws[1].0 <= 20e-12 && ws[1].1 >= 20e-12);
    }

    #[test]
    fn ramp_saturates() {
        let w = Waveform::Ramp {
            t0: 0.0,
            rise: 10e-12,
            amplitude: 2e-4,
        };
        assert_eq!(w.value(-1e-12), 0.0);
        assert!((w.value(5e-12) - 1e-4).abs() < 1e-12);
        assert_eq!(w.value(20e-12), 2e-4);
    }
}
