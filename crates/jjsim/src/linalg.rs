//! Minimal dense linear algebra: Gaussian elimination with partial
//! pivoting, sized for cell-scale circuits (tens of nodes).

/// Solve `A·x = b` in place; `a` is row-major `n×n`, `b` has length
/// `n`. Returns `None` if the matrix is numerically singular.
///
/// `a` and `b` are destroyed; the solution is returned in a fresh
/// vector.
pub(crate) fn solve_dense(a: &mut [f64], b: &mut [f64], n: usize) -> Option<Vec<f64>> {
    debug_assert_eq!(a.len(), n * n);
    debug_assert_eq!(b.len(), n);
    for col in 0..n {
        // Partial pivot.
        let mut pivot_row = col;
        let mut pivot_val = a[col * n + col].abs();
        for row in (col + 1)..n {
            let v = a[row * n + col].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = row;
            }
        }
        if pivot_val < 1e-300 {
            return None;
        }
        if pivot_row != col {
            for k in 0..n {
                a.swap(col * n + k, pivot_row * n + k);
            }
            b.swap(col, pivot_row);
        }
        let inv = 1.0 / a[col * n + col];
        for row in (col + 1)..n {
            let factor = a[row * n + col] * inv;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut sum = b[row];
        for k in (row + 1)..n {
            sum -= a[row * n + k] * x[k];
        }
        x[row] = sum / a[row * n + row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let mut a = vec![1.0, 0.0, 0.0, 1.0];
        let mut b = vec![3.0, 4.0];
        let x = solve_dense(&mut a, &mut b, 2).unwrap();
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn solves_general_3x3() {
        // A = [[2,1,0],[1,3,1],[0,1,2]], x = [1,2,3] -> b = [4, 10, 8]
        let mut a = vec![2.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0];
        let mut b = vec![4.0, 10.0, 8.0];
        let x = solve_dense(&mut a, &mut b, 3).unwrap();
        for (got, want) in x.iter().zip([1.0, 2.0, 3.0]) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn detects_singular() {
        let mut a = vec![1.0, 2.0, 2.0, 4.0];
        let mut b = vec![1.0, 2.0];
        assert!(solve_dense(&mut a, &mut b, 2).is_none());
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // [[0,1],[1,0]] x = [5, 7] -> x = [7, 5]
        let mut a = vec![0.0, 1.0, 1.0, 0.0];
        let mut b = vec![5.0, 7.0];
        let x = solve_dense(&mut a, &mut b, 2).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn random_spd_systems_roundtrip() {
        // Deterministic pseudo-random SPD matrices: A = M^T M + n*I.
        let mut seed = 0x12345678u64;
        let mut rnd = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        for n in [2usize, 5, 9] {
            let m: Vec<f64> = (0..n * n).map(|_| rnd()).collect();
            let mut a = vec![0.0; n * n];
            for i in 0..n {
                for j in 0..n {
                    let mut s = if i == j { n as f64 } else { 0.0 };
                    for k in 0..n {
                        s += m[k * n + i] * m[k * n + j];
                    }
                    a[i * n + j] = s;
                }
            }
            let x_true: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
            let mut b = vec![0.0; n];
            for i in 0..n {
                b[i] = (0..n).map(|j| a[i * n + j] * x_true[j]).sum();
            }
            let mut a_copy = a.clone();
            let x = solve_dense(&mut a_copy, &mut b, n).unwrap();
            for (got, want) in x.iter().zip(&x_true) {
                assert!((got - want).abs() < 1e-9, "n={n}");
            }
        }
    }
}

/// Solve `A·x = b` for a banded matrix stored densely (row-major
/// `n×n`) with half-bandwidth `bw`: `a[i][j] == 0` whenever
/// `|i−j| > bw`. Gaussian elimination without pivoting touching only
/// in-band entries — O(n·bw²) instead of O(n³).
///
/// MNA matrices of chain-structured SFQ circuits are strongly
/// diagonally dominant (every node carries a junction shunt or
/// capacitor companion conductance), so pivoting is unnecessary;
/// returns `None` on a tiny pivot so callers can fall back to the
/// dense path.
///
/// The solver itself uses the [`factor_banded`]/[`solve_factored`]
/// split (so one factorization serves many Newton iterations); this
/// combined form remains as the bit-exactness reference for their
/// tests.
#[cfg(test)]
pub(crate) fn solve_banded(a: &mut [f64], b: &mut [f64], n: usize, bw: usize) -> Option<Vec<f64>> {
    debug_assert_eq!(a.len(), n * n);
    debug_assert_eq!(b.len(), n);
    for col in 0..n {
        let pivot = a[col * n + col];
        if pivot.abs() < 1e-300 {
            return None;
        }
        let inv = 1.0 / pivot;
        let row_end = (col + bw + 1).min(n);
        let k_end = row_end;
        for row in (col + 1)..row_end {
            let factor = a[row * n + col] * inv;
            if factor == 0.0 {
                continue;
            }
            for k in col..k_end {
                a[row * n + k] -= factor * a[col * n + k];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut sum = b[row];
        let k_end = (row + bw + 1).min(n);
        for k in (row + 1)..k_end {
            sum -= a[row * n + k] * x[k];
        }
        x[row] = sum / a[row * n + row];
    }
    Some(x)
}

/// Factor a banded matrix in place (`a` row-major `n×n`,
/// half-bandwidth `bw`): Gaussian elimination without pivoting, with
/// each elimination multiplier stored in the zeroed position
/// (`a[row][col]` for `row > col`), yielding a compact LU whose
/// right-hand-side elimination [`solve_factored`] can replay. The
/// arithmetic is the exact operation sequence of `solve_banded`, so
/// a factor + solve pair returns bit-identical solutions.
///
/// Returns `false` on a tiny pivot (caller falls back to the pivoting
/// dense path).
///
/// The solver now runs on the packed-storage
/// [`factor_banded_packed`]/[`solve_factored_packed`] pair; this
/// dense-storage form remains as their bit-exactness reference.
#[cfg(test)]
pub(crate) fn factor_banded(a: &mut [f64], n: usize, bw: usize) -> bool {
    debug_assert_eq!(a.len(), n * n);
    for col in 0..n {
        let pivot = a[col * n + col];
        if pivot.abs() < 1e-300 {
            return false;
        }
        let inv = 1.0 / pivot;
        let row_end = (col + bw + 1).min(n);
        for row in (col + 1)..row_end {
            let factor = a[row * n + col] * inv;
            a[row * n + col] = factor;
            if factor == 0.0 {
                continue;
            }
            for k in (col + 1)..row_end {
                a[row * n + k] -= factor * a[col * n + k];
            }
        }
    }
    true
}

/// Solve `A·x = b` in place given a factorization from
/// [`factor_banded`]; `b` holds the solution on return.
#[cfg(test)]
pub(crate) fn solve_factored(a: &[f64], b: &mut [f64], n: usize, bw: usize) {
    debug_assert_eq!(a.len(), n * n);
    debug_assert_eq!(b.len(), n);
    // Forward-eliminate b with the stored multipliers.
    for col in 0..n {
        let row_end = (col + bw + 1).min(n);
        for row in (col + 1)..row_end {
            let factor = a[row * n + col];
            if factor != 0.0 {
                b[row] -= factor * b[col];
            }
        }
    }
    // Back substitution.
    for row in (0..n).rev() {
        let k_end = (row + bw + 1).min(n);
        let mut sum = b[row];
        for k in (row + 1)..k_end {
            sum -= a[row * n + k] * b[k];
        }
        b[row] = sum / a[row * n + row];
    }
}

// ---------------------------------------------------- packed band storage
//
// The band of an `n×n` matrix with half-bandwidth `bw` is stored as
// `n` contiguous rows of width `2·bw + 1`: entry `(i, j)` (with
// `|i − j| ≤ bw`) lives at `i·(2·bw + 1) + bw + j − i`. For the
// chain-structured MNA systems this solver sees (bw of 1–3, n of
// 50–100+) the packed form is 10–30× smaller than the dense square,
// so the per-refactor copy and zeroing shrink by the same factor, and
// every elimination/back-substitution inner loop walks two contiguous
// slices the compiler can keep in registers or vectorize. The
// arithmetic replays the dense-band kernels' exact operation
// sequence, so solutions are bit-identical (asserted in the tests
// below).

/// Row width of the packed band layout for half-bandwidth `bw`.
pub(crate) fn band_width(bw: usize) -> usize {
    2 * bw + 1
}

/// [`factor_banded`] on packed band storage (`a` has length
/// `n · (2·bw + 1)`). Bit-identical multipliers and fill-in; returns
/// `false` on a tiny pivot so callers can fall back to the pivoting
/// dense path.
pub(crate) fn factor_banded_packed(a: &mut [f64], n: usize, bw: usize) -> bool {
    let w = band_width(bw);
    debug_assert_eq!(a.len(), n * w);
    for col in 0..n {
        let pivot = a[col * w + bw];
        if pivot.abs() < 1e-300 {
            return false;
        }
        let inv = 1.0 / pivot;
        let row_end = (col + bw + 1).min(n);
        let len = row_end - (col + 1);
        let (head, tail) = a.split_at_mut((col + 1) * w);
        let crow = &head[col * w..];
        let src = &crow[bw + 1..bw + 1 + len];
        for (r, rrow) in tail.chunks_exact_mut(w).take(len).enumerate() {
            // Column `col` of matrix row `col + 1 + r` in packed form.
            let off = bw - (r + 1);
            let factor = rrow[off] * inv;
            rrow[off] = factor;
            if factor == 0.0 {
                continue;
            }
            // Columns `col+1..row_end` are contiguous in both rows.
            let dst = &mut rrow[off + 1..off + 1 + len];
            for (d, s) in dst.iter_mut().zip(src) {
                *d -= factor * s;
            }
        }
    }
    true
}

/// [`solve_factored`] on packed band storage; `b` holds the solution
/// on return. Bit-identical to the dense-band form.
pub(crate) fn solve_factored_packed(a: &[f64], b: &mut [f64], n: usize, bw: usize) {
    let w = band_width(bw);
    debug_assert_eq!(a.len(), n * w);
    debug_assert_eq!(b.len(), n);
    // Forward-eliminate b with the stored multipliers.
    for col in 0..n {
        let row_end = (col + bw + 1).min(n);
        let bc = b[col];
        for row in (col + 1)..row_end {
            let factor = a[row * w + bw - (row - col)];
            if factor != 0.0 {
                b[row] -= factor * bc;
            }
        }
    }
    // Back substitution: the superdiagonal of each row and the matching
    // stretch of `b` are both contiguous.
    for row in (0..n).rev() {
        let k_end = (row + bw + 1).min(n);
        let len = k_end - (row + 1);
        let arow = &a[row * w..(row + 1) * w];
        let mut sum = b[row];
        for (ak, bk) in arow[bw + 1..bw + 1 + len].iter().zip(&b[row + 1..k_end]) {
            sum -= ak * bk;
        }
        b[row] = sum / arow[bw];
    }
}

#[cfg(test)]
mod packed_tests {
    use super::*;

    /// Pack the band of a dense row-major matrix.
    fn pack(a: &[f64], n: usize, bw: usize) -> Vec<f64> {
        let w = band_width(bw);
        let mut p = vec![0.0; n * w];
        for i in 0..n {
            for j in i.saturating_sub(bw)..(i + bw + 1).min(n) {
                p[i * w + bw + j - i] = a[i * n + j];
            }
        }
        p
    }

    /// Deterministic diagonally dominant band matrix with varied
    /// off-diagonal structure (not symmetric, some in-band zeros).
    fn band_system(n: usize, bw: usize) -> (Vec<f64>, Vec<f64>) {
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut rnd = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in i.saturating_sub(bw)..(i + bw + 1).min(n) {
                if i == j {
                    a[i * n + j] = 4.0 + rnd().abs();
                } else if (i + j) % 5 != 0 {
                    a[i * n + j] = rnd();
                }
            }
        }
        let b: Vec<f64> = (0..n).map(|i| rnd() * 3.0 + i as f64 * 0.1).collect();
        (a, b)
    }

    #[test]
    fn packed_factor_solve_bit_identical_to_dense_band() {
        for (n, bw) in [(3usize, 1usize), (10, 1), (40, 1), (12, 2), (40, 3), (7, 6)] {
            let (a, b) = band_system(n, bw);
            // Dense-band reference.
            let mut lu_ref = a.clone();
            assert!(factor_banded(&mut lu_ref, n, bw), "n={n} bw={bw}");
            let mut x_ref = b.clone();
            solve_factored(&lu_ref, &mut x_ref, n, bw);
            // Packed kernels.
            let mut lu_p = pack(&a, n, bw);
            assert!(factor_banded_packed(&mut lu_p, n, bw), "n={n} bw={bw}");
            assert_eq!(lu_p, pack(&lu_ref, n, bw), "factor n={n} bw={bw}");
            let mut x_p = b.clone();
            solve_factored_packed(&lu_p, &mut x_p, n, bw);
            for i in 0..n {
                assert_eq!(
                    x_ref[i].to_bits(),
                    x_p[i].to_bits(),
                    "solution n={n} bw={bw} i={i}"
                );
            }
        }
    }

    #[test]
    fn packed_rejects_zero_pivot() {
        // [[0, 1], [1, 0]] packed with bw = 1.
        let mut a = vec![0.0, 0.0, 1.0, 1.0, 0.0, 0.0];
        assert!(!factor_banded_packed(&mut a, 2, 1));
    }

    #[test]
    fn packed_bandwidth_zero_is_diagonal_solve() {
        let mut a = vec![2.0, 4.0, 8.0];
        assert!(factor_banded_packed(&mut a, 3, 0));
        let mut b = vec![2.0, 8.0, 32.0];
        solve_factored_packed(&a, &mut b, 3, 0);
        assert_eq!(b, vec![1.0, 2.0, 4.0]);
    }
}

#[cfg(test)]
mod banded_tests {
    use super::*;

    fn tridiagonal(n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        // Diagonally dominant tridiagonal system with known solution.
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i * n + i] = 4.0;
            if i > 0 {
                a[i * n + i - 1] = -1.0;
            }
            if i + 1 < n {
                a[i * n + i + 1] = -1.0;
            }
        }
        let x_true: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();
        let mut b = vec![0.0; n];
        for i in 0..n {
            b[i] = (0..n).map(|j| a[i * n + j] * x_true[j]).sum();
        }
        (a, b, x_true)
    }

    #[test]
    fn banded_matches_dense() {
        for n in [3usize, 10, 40] {
            let (a, b, x_true) = tridiagonal(n);
            let mut a1 = a.clone();
            let mut b1 = b.clone();
            let banded = solve_banded(&mut a1, &mut b1, n, 1).unwrap();
            let mut a2 = a.clone();
            let mut b2 = b.clone();
            let dense = solve_dense(&mut a2, &mut b2, n).unwrap();
            for i in 0..n {
                assert!((banded[i] - x_true[i]).abs() < 1e-9, "n={n} i={i}");
                assert!((banded[i] - dense[i]).abs() < 1e-9, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn wider_band_than_needed_is_harmless() {
        let (mut a, mut b, x_true) = tridiagonal(12);
        let x = solve_banded(&mut a, &mut b, 12, 5).unwrap();
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_pivot_detected() {
        let mut a = vec![0.0, 1.0, 1.0, 0.0];
        let mut b = vec![1.0, 1.0];
        assert!(solve_banded(&mut a, &mut b, 2, 1).is_none());
    }

    #[test]
    fn factored_solve_is_bit_identical_to_combined() {
        for n in [3usize, 10, 40] {
            let (a, b, _) = tridiagonal(n);
            let mut a1 = a.clone();
            let mut b1 = b.clone();
            let combined = solve_banded(&mut a1, &mut b1, n, 1).unwrap();
            let mut lu = a.clone();
            assert!(factor_banded(&mut lu, n, 1));
            let mut x = b.clone();
            solve_factored(&lu, &mut x, n, 1);
            for i in 0..n {
                assert_eq!(combined[i].to_bits(), x[i].to_bits(), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn factorization_reuse_across_rhs() {
        let (a, b, x_true) = tridiagonal(16);
        let mut lu = a.clone();
        assert!(factor_banded(&mut lu, 16, 1));
        // Solve twice with different right-hand sides from one factor.
        let mut x1 = b.clone();
        solve_factored(&lu, &mut x1, 16, 1);
        let b2: Vec<f64> = b.iter().map(|v| 2.0 * v).collect();
        let mut x2 = b2;
        solve_factored(&lu, &mut x2, 16, 1);
        for i in 0..16 {
            assert!((x1[i] - x_true[i]).abs() < 1e-9);
            assert!((x2[i] - 2.0 * x_true[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn factor_banded_rejects_zero_pivot() {
        let mut a = vec![0.0, 1.0, 1.0, 0.0];
        assert!(!factor_banded(&mut a, 2, 1));
    }
}
