//! Operating-margin analysis.
//!
//! Standard SFQ design methodology (and the workflow behind cell
//! libraries like the paper's): sweep one parameter of a circuit up
//! and down from its nominal value until functionality breaks, and
//! report the working interval as a ± percentage. Cells with margins
//! below ±20–30% are considered fragile and get redesigned.

use std::sync::{Mutex, PoisonError};

use crate::SimError;

/// Process-wide memo of margin probe outcomes, keyed on the cell
/// identity and the exact probe value bits. Bisection revisits the
/// same probe values whenever a margin is requested more than once in
/// a process (tests, benches, reports), and each probe is one or two
/// full transients — the warm start turns every repeat search into
/// pure table lookups. Guarded by exact `f64::to_bits` keys like the
/// `chars::measure` cache, so a hit is bit-identical to a rerun by
/// construction.
static PROBE_CACHE: Mutex<Vec<((&'static str, u64), bool)>> = Mutex::new(Vec::new());

fn cached_probe<F>(cell: &'static str, value: f64, probe: F) -> Result<bool, SimError>
where
    F: FnOnce(f64) -> Result<bool, SimError>,
{
    let key = (cell, value.to_bits());
    if let Some(&(_, ok)) = probe_cache().iter().find(|(k, _)| *k == key) {
        if sfq_obs::enabled() {
            sfq_obs::inc("jjsim.margins.probe_hits");
        }
        return Ok(ok);
    }
    if sfq_obs::enabled() {
        sfq_obs::inc("jjsim.margins.probe_misses");
    }
    let ok = probe(value)?;
    probe_cache().push((key, ok));
    Ok(ok)
}

/// Lock the probe memo, recovering from poisoning: a probe that
/// panicked on another thread (e.g. under `catch_unwind` sweep
/// isolation) never holds the lock across its panic, so the cached
/// entries stay consistent and the sweep can keep going.
#[allow(clippy::type_complexity)]
fn probe_cache() -> std::sync::MutexGuard<'static, Vec<((&'static str, u64), bool)>> {
    PROBE_CACHE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Drop all memoized margin probes (test isolation; normal code never
/// needs this — probe outcomes are deterministic for a given build).
pub fn clear_probe_cache() {
    probe_cache().clear();
}

/// The measured operating interval of one parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Margin {
    /// Nominal parameter value (in whatever unit the circuit uses).
    pub nominal: f64,
    /// Smallest working value found.
    pub low: f64,
    /// Largest working value found.
    pub high: f64,
}

impl Margin {
    /// Lower margin as a negative fraction of nominal (e.g. −0.35).
    pub fn low_fraction(&self) -> f64 {
        self.low / self.nominal - 1.0
    }

    /// Upper margin as a positive fraction of nominal (e.g. +0.25).
    pub fn high_fraction(&self) -> f64 {
        self.high / self.nominal - 1.0
    }

    /// The smaller of the two margins' magnitudes — the figure of
    /// merit quoted for a cell.
    pub fn critical_fraction(&self) -> f64 {
        self.low_fraction().abs().min(self.high_fraction())
    }
}

/// Find the operating margin of a parameter by bisection.
///
/// `works(value)` must run the circuit at the given parameter value
/// and report functional correctness. The search explores
/// `[nominal × (1 − span), nominal × (1 + span)]` and bisects each
/// side `iters` times.
///
/// # Errors
///
/// Returns [`SimError::InvalidParameter`] when `nominal`, `span` or
/// `iters` are degenerate, [`SimError::NonConvergent`] when the
/// circuit fails *at nominal* (no margin to measure), and propagates
/// any error of a trial run itself.
pub fn find_margin<F>(nominal: f64, span: f64, iters: u32, mut works: F) -> Result<Margin, SimError>
where
    F: FnMut(f64) -> Result<bool, SimError>,
{
    if !(nominal.is_finite() && nominal > 0.0) {
        return Err(SimError::InvalidParameter {
            element: "margin",
            field: "nominal",
            value: nominal,
        });
    }
    if !(span > 0.0 && span < 1.0) {
        return Err(SimError::InvalidParameter {
            element: "margin",
            field: "span",
            value: span,
        });
    }
    if iters == 0 {
        return Err(SimError::InvalidParameter {
            element: "margin",
            field: "iters",
            value: 0.0,
        });
    }

    if !works(nominal)? {
        return Err(SimError::NonConvergent {
            what: "margin probe fails at its nominal point",
        });
    }

    let mut bisect = |mut good: f64, mut bad: f64| -> Result<f64, SimError> {
        if works(bad)? {
            return Ok(bad); // margin extends past the search span
        }
        for _ in 0..iters {
            let mid = 0.5 * (good + bad);
            if works(mid)? {
                good = mid;
            } else {
                bad = mid;
            }
        }
        Ok(good)
    };

    let low = bisect(nominal, nominal * (1.0 - span))?;
    let high = bisect(nominal, nominal * (1.0 + span))?;
    Ok(Margin { nominal, low, high })
}

/// Bias-current margin of the default JTL cell: the interval of bias
/// fractions over which a single pulse still propagates one-for-one.
///
/// # Errors
///
/// Propagates transient-solver failures.
pub fn jtl_bias_margin() -> Result<Margin, SimError> {
    use crate::solver::{SimOptions, Solver};
    use crate::stdlib::{jtl_chain, JtlParams};
    find_margin(0.72, 0.5, 6, |bias| {
        cached_probe("jtl_bias", bias, |bias| {
            let p = JtlParams {
                bias_frac: bias,
                ..Default::default()
            };
            let (ckt, stages) = jtl_chain(4, &p);
            let out = Solver::new(ckt, SimOptions::adaptive())?.try_run(200e-12)?;
            Ok(stages.iter().all(|j| out.pulse_count(*j) == 1))
        })
    })
}

/// Readout-bias margin of the default DFF cell: store-then-release
/// must work and a clock without data must stay silent.
///
/// # Errors
///
/// Propagates transient-solver failures.
pub fn dff_bias_margin() -> Result<Margin, SimError> {
    use crate::solver::{SimOptions, Solver};
    use crate::stdlib::{dff, DffParams};
    find_margin(0.5e-4, 0.6, 6, |bias| {
        cached_probe("dff_bias_out", bias, |bias| {
            let p = DffParams {
                bias_out: bias,
                ..Default::default()
            };
            let (ckt, probes) = dff(&[60e-12], &[100e-12], &p);
            let out = Solver::new(ckt, SimOptions::adaptive())?.try_run(160e-12)?;
            let stores = out.pulse_count(probes.input) == 1 && out.pulse_count(probes.output) == 1;
            let (ckt, probes) = dff(&[], &[100e-12], &p);
            let out = Solver::new(ckt, SimOptions::adaptive())?.try_run(160e-12)?;
            let quiet = out.pulse_count(probes.output) == 0;
            Ok(stores && quiet)
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_margin_bisection() {
        // works iff value in [0.8, 1.3].
        let m = find_margin(1.0, 0.5, 12, |v| Ok((0.8..=1.3).contains(&v))).unwrap();
        assert!((m.low - 0.8).abs() < 0.01, "low {}", m.low);
        assert!((m.high - 1.3).abs() < 0.01, "high {}", m.high);
        assert!((m.low_fraction() + 0.2).abs() < 0.02);
        assert!((m.high_fraction() - 0.3).abs() < 0.02);
        assert!((m.critical_fraction() - 0.2).abs() < 0.02);
    }

    #[test]
    fn margin_clamps_to_span() {
        // Always works: the margin reports the search bounds.
        let m = find_margin(1.0, 0.4, 6, |_| Ok(true)).unwrap();
        assert!((m.low - 0.6).abs() < 1e-9);
        assert!((m.high - 1.4).abs() < 1e-9);
    }

    #[test]
    fn failing_at_nominal_is_an_error() {
        assert_eq!(
            find_margin(1.0, 0.4, 6, |_| Ok(false)).unwrap_err(),
            SimError::NonConvergent {
                what: "margin probe fails at its nominal point"
            }
        );
    }

    #[test]
    fn degenerate_arguments_are_typed_errors_not_panics() {
        for (nominal, span, iters) in [
            (0.0, 0.4, 6),
            (-1.0, 0.4, 6),
            (f64::NAN, 0.4, 6),
            (1.0, 0.0, 6),
            (1.0, 1.0, 6),
            (1.0, 0.4, 0),
        ] {
            let e = find_margin(nominal, span, iters, |_| Ok(true)).unwrap_err();
            assert!(
                matches!(
                    e,
                    SimError::InvalidParameter {
                        element: "margin",
                        ..
                    }
                ),
                "{e}"
            );
        }
    }

    #[test]
    fn jtl_has_double_digit_margins() {
        let m = jtl_bias_margin().expect("transient converges");
        // Measured earlier: the cell works from ~0.63·Ic upward.
        assert!(
            m.critical_fraction() > 0.1,
            "JTL critical margin {:.0}%",
            100.0 * m.critical_fraction()
        );
    }

    #[test]
    fn repeated_margin_search_is_memoized() {
        let m1 = jtl_bias_margin().expect("transient converges");
        let runs = crate::transient_runs();
        let m2 = jtl_bias_margin().expect("transient converges");
        assert_eq!(m1, m2);
        assert_eq!(
            crate::transient_runs(),
            runs,
            "a repeated margin search must be served from the probe memo"
        );
    }

    #[test]
    fn dff_readout_bias_has_margin() {
        let m = dff_bias_margin().expect("transient converges");
        assert!(
            m.critical_fraction() > 0.1,
            "DFF critical margin {:.0}%",
            100.0 * m.critical_fraction()
        );
        assert!(m.low < m.nominal && m.nominal < m.high);
    }
}
