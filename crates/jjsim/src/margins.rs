//! Operating-margin analysis.
//!
//! Standard SFQ design methodology (and the workflow behind cell
//! libraries like the paper's): sweep one parameter of a circuit up
//! and down from its nominal value until functionality breaks, and
//! report the working interval as a ± percentage. Cells with margins
//! below ±20–30% are considered fragile and get redesigned.

use std::sync::{Mutex, PoisonError};

use crate::SimError;

/// Process-wide memo of margin probe outcomes, keyed on the cell
/// identity and the exact probe value bits. Bisection revisits the
/// same probe values whenever a margin is requested more than once in
/// a process (tests, benches, reports), and each probe is one or two
/// full transients — the warm start turns every repeat search into
/// pure table lookups. Guarded by exact `f64::to_bits` keys like the
/// `chars::measure` cache, so a hit is bit-identical to a rerun by
/// construction.
static PROBE_CACHE: Mutex<Vec<((&'static str, u64), bool)>> = Mutex::new(Vec::new());

fn cached_probe<F>(cell: &'static str, value: f64, probe: F) -> Result<bool, SimError>
where
    F: FnOnce(f64) -> Result<bool, SimError>,
{
    let key = (cell, value.to_bits());
    if let Some(&(_, ok)) = probe_cache().iter().find(|(k, _)| *k == key) {
        if sfq_obs::enabled() {
            sfq_obs::inc("jjsim.margins.probe_hits");
        }
        return Ok(ok);
    }
    if sfq_obs::enabled() {
        sfq_obs::inc("jjsim.margins.probe_misses");
    }
    let ok = probe(value)?;
    probe_cache().push((key, ok));
    Ok(ok)
}

/// Lock the probe memo, recovering from poisoning: a probe that
/// panicked on another thread (e.g. under `catch_unwind` sweep
/// isolation) never holds the lock across its panic, so the cached
/// entries stay consistent and the sweep can keep going.
#[allow(clippy::type_complexity)]
fn probe_cache() -> std::sync::MutexGuard<'static, Vec<((&'static str, u64), bool)>> {
    PROBE_CACHE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Drop all memoized margin probes (test isolation; normal code never
/// needs this — probe outcomes are deterministic for a given build).
pub fn clear_probe_cache() {
    probe_cache().clear();
}

/// A lane-batched evaluation of many probe parameter values at once:
/// one pass/fail verdict per input value.
type ProbeMany<'a> = dyn FnMut(&[f64]) -> Result<Vec<bool>, SimError> + 'a;

/// Resolve a batch of probe values against the memo, running only the
/// misses through `run_many` (a lane-batched evaluation of many
/// parameter values at once) and caching their verdicts under the same
/// keys [`cached_probe`] uses — so a scalar bisection replayed
/// afterwards is served entirely from the memo.
fn batched_cached_probes(
    cell: &'static str,
    values: &[f64],
    run_many: &mut ProbeMany<'_>,
) -> Result<Vec<bool>, SimError> {
    let mut out = vec![false; values.len()];
    let mut miss_slots: Vec<usize> = Vec::new();
    let mut miss_vals: Vec<f64> = Vec::new();
    {
        let cache = probe_cache();
        for (slot, &v) in values.iter().enumerate() {
            let key = (cell, v.to_bits());
            if let Some(&(_, ok)) = cache.iter().find(|(k, _)| *k == key) {
                out[slot] = ok;
            } else {
                miss_slots.push(slot);
                miss_vals.push(v);
            }
        }
    }
    if miss_vals.is_empty() {
        return Ok(out);
    }
    let verdicts = run_many(&miss_vals)?;
    let mut cache = probe_cache();
    for ((&slot, &v), &ok) in miss_slots.iter().zip(&miss_vals).zip(&verdicts) {
        out[slot] = ok;
        // Another thread may have probed the same value meanwhile;
        // verdicts are deterministic, so keeping both entries is
        // harmless, but avoid unbounded duplicates.
        let key = (cell, v.to_bits());
        if !cache.iter().any(|(k, _)| *k == key) {
            cache.push((key, ok));
        }
    }
    Ok(out)
}

/// Walk the exact probe schedule of [`find_margin`] — nominal, both
/// span endpoints, then each side's bisection mids — but evaluate
/// every round's unfinished-side mids as one lane-batched group. Probe
/// *values* are bit-identical to the scalar search by construction
/// (same float expressions on the same verdicts), so the scalar replay
/// afterwards finds every probe memoized.
fn prefill_bisection(
    nominal: f64,
    span: f64,
    iters: u32,
    probe_many: &mut ProbeMany<'_>,
) -> Result<(), SimError> {
    let bad_low = nominal * (1.0 - span);
    let bad_high = nominal * (1.0 + span);
    let first = probe_many(&[nominal, bad_low, bad_high])?;
    if !first[0] {
        return Ok(()); // replay will report the at-nominal failure
    }
    // (good, bad, still bisecting) per side.
    let mut low = (nominal, bad_low, !first[1]);
    let mut high = (nominal, bad_high, !first[2]);
    for _ in 0..iters {
        let mut vals: Vec<f64> = Vec::with_capacity(2);
        if low.2 {
            vals.push(0.5 * (low.0 + low.1));
        }
        if high.2 {
            vals.push(0.5 * (high.0 + high.1));
        }
        if vals.is_empty() {
            break;
        }
        let verdicts = probe_many(&vals)?;
        let mut vi = 0;
        if low.2 {
            if verdicts[vi] {
                low.0 = vals[vi];
            } else {
                low.1 = vals[vi];
            }
            vi += 1;
        }
        if high.2 {
            if verdicts[vi] {
                high.0 = vals[vi];
            } else {
                high.1 = vals[vi];
            }
        }
    }
    Ok(())
}

/// The measured operating interval of one parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Margin {
    /// Nominal parameter value (in whatever unit the circuit uses).
    pub nominal: f64,
    /// Smallest working value found.
    pub low: f64,
    /// Largest working value found.
    pub high: f64,
}

impl Margin {
    /// Lower margin as a negative fraction of nominal (e.g. −0.35).
    pub fn low_fraction(&self) -> f64 {
        self.low / self.nominal - 1.0
    }

    /// Upper margin as a positive fraction of nominal (e.g. +0.25).
    pub fn high_fraction(&self) -> f64 {
        self.high / self.nominal - 1.0
    }

    /// The smaller of the two margins' magnitudes — the figure of
    /// merit quoted for a cell.
    pub fn critical_fraction(&self) -> f64 {
        self.low_fraction().abs().min(self.high_fraction())
    }
}

/// Find the operating margin of a parameter by bisection.
///
/// `works(value)` must run the circuit at the given parameter value
/// and report functional correctness. The search explores
/// `[nominal × (1 − span), nominal × (1 + span)]` and bisects each
/// side `iters` times.
///
/// # Errors
///
/// Returns [`SimError::InvalidParameter`] when `nominal`, `span` or
/// `iters` are degenerate, [`SimError::NonConvergent`] when the
/// circuit fails *at nominal* (no margin to measure), and propagates
/// any error of a trial run itself.
pub fn find_margin<F>(nominal: f64, span: f64, iters: u32, mut works: F) -> Result<Margin, SimError>
where
    F: FnMut(f64) -> Result<bool, SimError>,
{
    if !(nominal.is_finite() && nominal > 0.0) {
        return Err(SimError::InvalidParameter {
            element: "margin",
            field: "nominal",
            value: nominal,
        });
    }
    if !(span > 0.0 && span < 1.0) {
        return Err(SimError::InvalidParameter {
            element: "margin",
            field: "span",
            value: span,
        });
    }
    if iters == 0 {
        return Err(SimError::InvalidParameter {
            element: "margin",
            field: "iters",
            value: 0.0,
        });
    }

    if !works(nominal)? {
        return Err(SimError::NonConvergent {
            what: "margin probe fails at its nominal point",
        });
    }

    let mut bisect = |mut good: f64, mut bad: f64| -> Result<f64, SimError> {
        if works(bad)? {
            return Ok(bad); // margin extends past the search span
        }
        for _ in 0..iters {
            let mid = 0.5 * (good + bad);
            if works(mid)? {
                good = mid;
            } else {
                bad = mid;
            }
        }
        Ok(good)
    };

    let low = bisect(nominal, nominal * (1.0 - span))?;
    let high = bisect(nominal, nominal * (1.0 + span))?;
    Ok(Margin { nominal, low, high })
}

/// Bias-current margin of the default JTL cell: the interval of bias
/// fractions over which a single pulse still propagates one-for-one.
///
/// # Errors
///
/// Propagates transient-solver failures.
pub fn jtl_bias_margin() -> Result<Margin, SimError> {
    use crate::solver::{SimOptions, Solver};
    use crate::stdlib::{jtl_chain, JtlParams};
    if crate::batch::batch_width() >= 2 {
        // Best effort: fill the probe memo with lane-batched bisection
        // rounds; any error reproduces on the authoritative scalar
        // replay below.
        let _ = prefill_bisection(0.72, 0.5, 6, &mut |vals| {
            batched_cached_probes("jtl_bias", vals, &mut run_many_jtl_bias)
        });
    }
    find_margin(0.72, 0.5, 6, |bias| {
        cached_probe("jtl_bias", bias, |bias| {
            let p = JtlParams {
                bias_frac: bias,
                ..Default::default()
            };
            let (ckt, stages) = jtl_chain(4, &p);
            let out = Solver::new(ckt, SimOptions::adaptive())?.try_run(200e-12)?;
            Ok(stages.iter().all(|j| out.pulse_count(*j) == 1))
        })
    })
}

/// Lane-batched JTL bias probe: one [`crate::BatchedTransient`] over
/// all requested bias values.
fn run_many_jtl_bias(biases: &[f64]) -> Result<Vec<bool>, SimError> {
    use crate::batch::BatchedTransient;
    use crate::solver::SimOptions;
    use crate::stdlib::{jtl_chain, JtlParams};
    let mut stages = Vec::new();
    let ckts: Vec<crate::Circuit> = biases
        .iter()
        .map(|&bias| {
            let p = JtlParams {
                bias_frac: bias,
                ..Default::default()
            };
            let (ckt, s) = jtl_chain(4, &p);
            stages = s;
            ckt
        })
        .collect();
    BatchedTransient::new(ckts, SimOptions::adaptive())?
        .try_run(200e-12)
        .into_iter()
        .map(|r| r.map(|out| stages.iter().all(|j| out.pulse_count(*j) == 1)))
        .collect()
}

/// Readout-bias margin of the default DFF cell: store-then-release
/// must work and a clock without data must stay silent.
///
/// # Errors
///
/// Propagates transient-solver failures.
pub fn dff_bias_margin() -> Result<Margin, SimError> {
    use crate::solver::{SimOptions, Solver};
    use crate::stdlib::{dff, DffParams};
    if crate::batch::batch_width() >= 2 {
        let _ = prefill_bisection(0.5e-4, 0.6, 6, &mut |vals| {
            batched_cached_probes("dff_bias_out", vals, &mut run_many_dff_bias)
        });
    }
    find_margin(0.5e-4, 0.6, 6, |bias| {
        cached_probe("dff_bias_out", bias, |bias| {
            let p = DffParams {
                bias_out: bias,
                ..Default::default()
            };
            let (ckt, probes) = dff(&[60e-12], &[100e-12], &p);
            let out = Solver::new(ckt, SimOptions::adaptive())?.try_run(160e-12)?;
            let stores = out.pulse_count(probes.input) == 1 && out.pulse_count(probes.output) == 1;
            let (ckt, probes) = dff(&[], &[100e-12], &p);
            let out = Solver::new(ckt, SimOptions::adaptive())?.try_run(160e-12)?;
            let quiet = out.pulse_count(probes.output) == 0;
            Ok(stores && quiet)
        })
    })
}

/// Lane-batched DFF readout-bias probe: both testbenches (store +
/// silent clock) batched over all requested bias values.
fn run_many_dff_bias(biases: &[f64]) -> Result<Vec<bool>, SimError> {
    use crate::batch::BatchedTransient;
    use crate::solver::SimOptions;
    use crate::stdlib::{dff, DffParams};
    let params: Vec<DffParams> = biases
        .iter()
        .map(|&bias| DffParams {
            bias_out: bias,
            ..Default::default()
        })
        .collect();
    let mut probes = None;
    let store_ckts: Vec<crate::Circuit> = params
        .iter()
        .map(|p| {
            let (ckt, pr) = dff(&[60e-12], &[100e-12], p);
            probes = Some(pr);
            ckt
        })
        .collect();
    let store_probes = probes.take().ok_or(SimError::EmptyCircuit)?;
    let quiet_ckts: Vec<crate::Circuit> = params
        .iter()
        .map(|p| {
            let (ckt, pr) = dff(&[], &[100e-12], p);
            probes = Some(pr);
            ckt
        })
        .collect();
    let quiet_probes = probes.ok_or(SimError::EmptyCircuit)?;
    let stores = BatchedTransient::new(store_ckts, SimOptions::adaptive())?.try_run(160e-12);
    let quiets = BatchedTransient::new(quiet_ckts, SimOptions::adaptive())?.try_run(160e-12);
    stores
        .into_iter()
        .zip(quiets)
        .map(|(s, q)| {
            let s = s?;
            let q = q?;
            Ok(s.pulse_count(store_probes.input) == 1
                && s.pulse_count(store_probes.output) == 1
                && q.pulse_count(quiet_probes.output) == 0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_margin_bisection() {
        // works iff value in [0.8, 1.3].
        let m = find_margin(1.0, 0.5, 12, |v| Ok((0.8..=1.3).contains(&v))).unwrap();
        assert!((m.low - 0.8).abs() < 0.01, "low {}", m.low);
        assert!((m.high - 1.3).abs() < 0.01, "high {}", m.high);
        assert!((m.low_fraction() + 0.2).abs() < 0.02);
        assert!((m.high_fraction() - 0.3).abs() < 0.02);
        assert!((m.critical_fraction() - 0.2).abs() < 0.02);
    }

    #[test]
    fn margin_clamps_to_span() {
        // Always works: the margin reports the search bounds.
        let m = find_margin(1.0, 0.4, 6, |_| Ok(true)).unwrap();
        assert!((m.low - 0.6).abs() < 1e-9);
        assert!((m.high - 1.4).abs() < 1e-9);
    }

    #[test]
    fn failing_at_nominal_is_an_error() {
        assert_eq!(
            find_margin(1.0, 0.4, 6, |_| Ok(false)).unwrap_err(),
            SimError::NonConvergent {
                what: "margin probe fails at its nominal point"
            }
        );
    }

    #[test]
    fn degenerate_arguments_are_typed_errors_not_panics() {
        for (nominal, span, iters) in [
            (0.0, 0.4, 6),
            (-1.0, 0.4, 6),
            (f64::NAN, 0.4, 6),
            (1.0, 0.0, 6),
            (1.0, 1.0, 6),
            (1.0, 0.4, 0),
        ] {
            let e = find_margin(nominal, span, iters, |_| Ok(true)).unwrap_err();
            assert!(
                matches!(
                    e,
                    SimError::InvalidParameter {
                        element: "margin",
                        ..
                    }
                ),
                "{e}"
            );
        }
    }

    #[test]
    fn prefill_schedule_covers_exactly_the_scalar_probe_values() {
        // Synthetic verdict so the schedules can be compared without
        // transients; works iff value in [0.78, 1.31].
        let works = |v: f64| (0.78..=1.31).contains(&v);
        let mut batched: Vec<u64> = Vec::new();
        prefill_bisection(1.0, 0.5, 8, &mut |vals| {
            batched.extend(vals.iter().map(|v| v.to_bits()));
            Ok(vals.iter().map(|&v| works(v)).collect())
        })
        .expect("synthetic prefill");
        let mut scalar: Vec<u64> = Vec::new();
        find_margin(1.0, 0.5, 8, |v| {
            scalar.push(v.to_bits());
            Ok(works(v))
        })
        .expect("synthetic margin");
        // The prefill interleaves the two sides' rounds, so order
        // differs — but the probe-value *sets* must be bit-identical,
        // which is what makes the scalar replay fully memoized.
        batched.sort_unstable();
        let mut scalar_sorted = scalar;
        scalar_sorted.sort_unstable();
        assert_eq!(batched, scalar_sorted);
    }

    #[test]
    fn jtl_has_double_digit_margins() {
        let m = jtl_bias_margin().expect("transient converges");
        // Measured earlier: the cell works from ~0.63·Ic upward.
        assert!(
            m.critical_fraction() > 0.1,
            "JTL critical margin {:.0}%",
            100.0 * m.critical_fraction()
        );
    }

    #[test]
    fn repeated_margin_search_is_memoized() {
        let m1 = jtl_bias_margin().expect("transient converges");
        let runs = crate::transient_runs();
        let m2 = jtl_bias_margin().expect("transient converges");
        assert_eq!(m1, m2);
        assert_eq!(
            crate::transient_runs(),
            runs,
            "a repeated margin search must be served from the probe memo"
        );
    }

    #[test]
    fn dff_readout_bias_has_margin() {
        let m = dff_bias_margin().expect("transient converges");
        assert!(
            m.critical_fraction() > 0.1,
            "DFF critical margin {:.0}%",
            100.0 * m.critical_fraction()
        );
        assert!(m.low < m.nominal && m.nominal < m.high);
    }
}
