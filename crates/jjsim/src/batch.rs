//! Lane-batched transient solving: advance up to [`LANES`]
//! parameter-perturbed instances of one netlist in SoA form, sharing
//! one adaptive-stepping/factorization schedule across all lanes.
//!
//! The consumers that dominate transient counts — `sfq_faults`
//! Monte-Carlo yield, margins bisection probes, family
//! re-characterization sweeps — all solve *structure-identical*
//! circuits that differ only in element values. [`BatchedTransient`]
//! exploits that: one topology analysis (bandwidth, stamp-index plan,
//! source-event windows), one Newton/controller schedule, and every
//! per-entry kernel (linear restamp, jj stamp + RHS, banded LU
//! factor/solve, LTE control, commit) runs over contiguous
//! `[f64; LANES]` lanes from [`crate::lanes`].
//!
//! # Stepping discipline and the scalar golden reference
//!
//! The scalar [`Solver`](crate::Solver) is byte-for-byte untouched and
//! remains the golden reference. The batch shares one adaptive
//! controller across the group: the step is accepted only when *every*
//! active lane passes the LTE and phase-rate criteria, Newton iterates
//! until every active lane converges, and a rejection refines the step
//! for the whole group. Shared control is therefore only ever *more*
//! conservative than any lane's solo schedule — pulse counts match the
//! scalar run exactly and pulse times agree within the BENCH_solver
//! tolerance (0.5 ps), which the batch equivalence suite asserts.
//!
//! # Masked retirement
//!
//! Lanes are arithmetically independent (no horizontal reductions feed
//! back into lane values), so a diverging lane cannot perturb its
//! siblings by an ULP. A lane is *retired* when its Newton iteration
//! fails to converge at `dt_min`, when the no-pivot banded
//! factorization hits a tiny pivot in its lane, or when a test hook
//! injects a failure. A retired lane's state is overwritten by
//! mirroring a healthy sibling (keeping every lane finite) and its
//! instance is finished from t = 0 on the scalar path — the golden
//! behavior for hard instances, at scalar cost, paid only for the rare
//! divergent lane.
//!
//! # Knobs
//!
//! * `SUPERNPU_BATCH=0` disables batching (consumers fall back to the
//!   scalar path, and [`BatchedTransient::try_run`] degrades to a
//!   scalar loop).
//! * `SUPERNPU_LANES=k` clamps the effective group width to
//!   `min(k, LANES)`.
//! * [`set_batch_width`] overrides both programmatically (used by
//!   `bench_batch` to time scalar vs batched in one process).

use std::f64::consts::PI;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::circuit::Circuit;
use crate::error::SimError;
use crate::lanes::{
    band_width, factor_banded_packed_lanes, sin_cos_rot, solve_factored_packed_lanes, splat, Lane,
    LANES, ROT_MAX, ZERO,
};
use crate::solver::{SimOptions, SimResult, Solver, StepControl};
use crate::PHI0;

/// Adaptive-controller constants, shared with the scalar solver (same
/// values; duplicated so the scalar module stays untouched).
const PHASE_MAX_STEP: f64 = 0.35;
const PHASE_SLOW: f64 = 0.05;
const GROW_AFTER: u32 = 4;
const GROW_MARGIN: f64 = 0.3;

/// Relative junction-conductance drift below which the lane LU
/// factorization is reused (chord Newton). Looser than the scalar
/// banded path's 1e-8: the batch refactors only when *some* lane's
/// linearization genuinely moved, because with `LANES` instances any
/// refactor is `LANES`× the work. Correctness is unchanged either
/// way — the RHS history currents are computed against the factored
/// conductances (`lu_g`), so reuse changes the Newton iteration path,
/// never the fixed point it converges to (still `tol_v`-accurate);
/// near a pulse `cos φ` swings far beyond this tolerance and the
/// batch refactors exactly like the scalar path.
const G_REUSE_RTOL: f64 = 1e-4;

/// Accepted steps between libm re-anchors of the committed-phase
/// sin/cos. Between anchors the commit refreshes them by rotating
/// through the step's phase increment (which the adaptive controller
/// caps at `PHASE_MAX_STEP` < `ROT_MAX`), so the per-step polynomial
/// error (< 2e-11) is bounded at ~1e-9 instead of paying
/// `2 · LANES · n_jj` libm calls on every accepted step.
const TRIG_REANCHOR: usize = 64;

/// Sentinel for "no programmatic override" in [`WIDTH_OVERRIDE`].
const NO_OVERRIDE: usize = usize::MAX;

/// Programmatic batch-width override (see [`set_batch_width`]).
static WIDTH_OVERRIDE: AtomicUsize = AtomicUsize::new(NO_OVERRIDE);

/// Env-resolved default width, parsed once per process.
fn env_width() -> usize {
    static W: OnceLock<usize> = OnceLock::new();
    *W.get_or_init(|| {
        if matches!(
            std::env::var("SUPERNPU_BATCH").as_deref(),
            Ok("0") | Ok("off") | Ok("false")
        ) {
            return 1;
        }
        match std::env::var("SUPERNPU_LANES") {
            Ok(s) => s
                .trim()
                .parse::<usize>()
                .map_or(LANES, |k| k.clamp(1, LANES)),
            Err(_) => LANES,
        }
    })
}

/// Effective batch group width: 1 means "batching disabled" (every
/// consumer, including [`BatchedTransient::try_run`], runs the scalar
/// path). Resolves the [`set_batch_width`] override first, then the
/// `SUPERNPU_BATCH` / `SUPERNPU_LANES` environment knobs, defaulting
/// to [`LANES`].
#[must_use]
pub fn batch_width() -> usize {
    match WIDTH_OVERRIDE.load(Ordering::Relaxed) {
        NO_OVERRIDE => env_width(),
        w => w.clamp(1, LANES),
    }
}

/// Override (or with `None`, restore) the effective [`batch_width`].
/// Benches use this to time the scalar and batched paths in one
/// process without re-reading the environment.
pub fn set_batch_width(w: Option<usize>) {
    WIDTH_OVERRIDE.store(
        w.map_or(NO_OVERRIDE, |w| w.clamp(1, LANES)),
        Ordering::Relaxed,
    );
}

/// The always-on `jjsim.solver.transient_runs` counter (same registry
/// slot the scalar solver bumps), incremented once per batched
/// instance so characterization caches can keep proving "no new
/// transient work" regardless of which path served a probe.
fn transient_counter() -> &'static sfq_obs::Counter {
    static C: OnceLock<&'static sfq_obs::Counter> = OnceLock::new();
    C.get_or_init(|| sfq_obs::counter("jjsim.solver.transient_runs"))
}

/// Why a lane left the batch before `t_end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Retire {
    /// Newton failed to converge at `dt_min` (or a test hook fired).
    Newton,
    /// The no-pivot banded factorization hit a tiny pivot in this lane.
    Singular,
    /// The ambient execution budget ran out mid-batch; the lanes fall
    /// back to the scalar path, which re-checks the (monotone) budget
    /// and surfaces the typed error.
    Budget,
}

/// Pre-resolved packed-band stamp positions of one element
/// (`usize::MAX` = terminal on ground), mirroring the scalar solver's
/// index plan.
#[derive(Clone, Copy)]
struct Idx4 {
    da: usize,
    db: usize,
    ab: usize,
    ba: usize,
}

/// Lane-batched conductance stamp, same entry order as the scalar
/// stamp (diagonal a, diagonal b, off-diagonal pair).
#[inline]
fn apply_stamp_lanes(m: &mut [Lane], s: Idx4, g: Lane) {
    if s.da != usize::MAX {
        for l in 0..LANES {
            m[s.da][l] += g[l];
        }
    }
    if s.db != usize::MAX {
        for l in 0..LANES {
            m[s.db][l] += g[l];
        }
    }
    if s.ab != usize::MAX {
        for l in 0..LANES {
            m[s.ab][l] -= g[l];
            m[s.ba][l] -= g[l];
        }
    }
}

/// Lane-batched history-current stamp into the RHS.
#[inline]
fn stamp_i_lanes(rhs: &mut [Lane], a: usize, b: usize, i_hist: Lane) {
    if a > 0 {
        for l in 0..LANES {
            rhs[a - 1][l] -= i_hist[l];
        }
    }
    if b > 0 {
        for l in 0..LANES {
            rhs[b - 1][l] += i_hist[l];
        }
    }
}

/// A refinement interval merged from the *union* of every lane's
/// source waveforms — a superset of each lane's own windows, so shared
/// refinement is only ever more conservative than a solo run.
#[derive(Clone, Copy)]
struct Window {
    start: f64,
    end: f64,
    cap: f64,
}

fn merge_windows_union(ckts: &[&Circuit]) -> Vec<Window> {
    let mut raw: Vec<Window> = Vec::new();
    for ckt in ckts {
        for s in &ckt.sources {
            for (start, end, cap) in s.waveform.refinement_windows() {
                if end > 0.0 {
                    raw.push(Window { start, end, cap });
                }
            }
        }
    }
    raw.sort_by(|a, b| a.start.total_cmp(&b.start));
    let mut merged: Vec<Window> = Vec::with_capacity(raw.len());
    for w in raw {
        match merged.last_mut() {
            Some(last) if w.start <= last.end => {
                last.end = last.end.max(w.end);
                last.cap = last.cap.min(w.cap);
            }
            _ => merged.push(w),
        }
    }
    merged
}

/// Per-group metric accumulators (local while the group is in flight,
/// one registry flush at exit — the scalar solver's pattern).
#[derive(Default)]
struct GroupMetrics {
    steps: u64,
    newton_iters: u64,
    lu_factor: u64,
    lu_reuse: u64,
    reject_lte: u64,
    reject_phase: u64,
    reject_newton: u64,
    refine_source: u64,
    restamps: u64,
    retired_newton: u64,
    retired_singular: u64,
}

impl GroupMetrics {
    fn rejected(&self) -> u64 {
        self.reject_lte + self.reject_phase + self.reject_newton
    }

    fn flush(&self, lanes_live: u64, lanes_final: u64) {
        if !sfq_obs::enabled() {
            return;
        }
        sfq_obs::inc("jjsim.batch.groups");
        sfq_obs::add("jjsim.batch.lanes", lanes_live);
        sfq_obs::add("jjsim.batch.steps", self.steps);
        sfq_obs::add("jjsim.batch.newton_iters", self.newton_iters);
        sfq_obs::add("jjsim.batch.lu_factor", self.lu_factor);
        sfq_obs::add("jjsim.batch.lu_reuse", self.lu_reuse);
        sfq_obs::add("jjsim.batch.steps_rejected", self.rejected());
        sfq_obs::add("jjsim.batch.restamps", self.restamps);
        sfq_obs::add("jjsim.batch.refine_source", self.refine_source);
        sfq_obs::add("jjsim.batch.retired_newton", self.retired_newton);
        sfq_obs::add("jjsim.batch.retired_singular", self.retired_singular);
        sfq_obs::observe("jjsim.batch.occupancy", lanes_final as f64);
    }
}

/// Kernel slots for the batched profiler laps (same names/shape as the
/// scalar solver's `KernelProf`, so batch coverage merges under
/// `solver.run` with identical kernel paths).
const K_RESTAMP: usize = 0;
const K_STAMP: usize = 1;
const K_JJ_STAMP_RHS: usize = 2;
const K_LU_FACTOR: usize = 3;
const K_LU_SOLVE: usize = 4;
const K_NEWTON: usize = 5;
const K_LTE: usize = 6;
const K_COMMIT: usize = 7;
const K_SLOTS: usize = 8;

struct BatchKProf {
    on: bool,
    mark: Instant,
    ns: [u64; K_SLOTS],
}

impl BatchKProf {
    fn start() -> Self {
        BatchKProf {
            on: sfq_obs::prof::enabled(),
            mark: Instant::now(),
            ns: [0; K_SLOTS],
        }
    }

    #[inline]
    fn mark(&mut self) {
        if self.on {
            self.mark = Instant::now();
        }
    }

    #[inline]
    fn lap(&mut self, slot: usize) {
        if self.on {
            let now = Instant::now();
            #[allow(clippy::cast_possible_truncation)]
            {
                self.ns[slot] += (now - self.mark).as_nanos() as u64;
            }
            self.mark = now;
        }
    }

    /// Merge kernel times under the open `solver.run` frame using the
    /// scalar solver's path names, so the PR 7 coverage accounting
    /// sees the batch path as ordinary solver work.
    fn flush(&self, m: &GroupMetrics) {
        if !self.on {
            return;
        }
        use sfq_obs::prof;
        let attempts = m.steps + m.rejected();
        let newton_children = self.ns[K_JJ_STAMP_RHS] + self.ns[K_LU_FACTOR] + self.ns[K_LU_SOLVE];
        let merge = |path: &[&str], calls: u64, incl: u64, self_ns: u64| {
            if calls > 0 || incl > 0 {
                prof::record_path(path, calls, incl, self_ns);
            }
        };
        merge(
            &["restamp"],
            m.restamps,
            self.ns[K_RESTAMP],
            self.ns[K_RESTAMP],
        );
        merge(&["stamp"], attempts, self.ns[K_STAMP], self.ns[K_STAMP]);
        merge(
            &["newton"],
            m.newton_iters,
            newton_children + self.ns[K_NEWTON],
            self.ns[K_NEWTON],
        );
        merge(
            &["newton", "jj_stamp_rhs"],
            m.newton_iters,
            self.ns[K_JJ_STAMP_RHS],
            self.ns[K_JJ_STAMP_RHS],
        );
        merge(
            &["newton", "lu_factor"],
            m.lu_factor,
            self.ns[K_LU_FACTOR],
            self.ns[K_LU_FACTOR],
        );
        merge(
            &["newton", "lu_solve"],
            m.lu_factor + m.lu_reuse,
            self.ns[K_LU_SOLVE],
            self.ns[K_LU_SOLVE],
        );
        merge(&["lte_control"], attempts, self.ns[K_LTE], self.ns[K_LTE]);
        merge(&["commit"], m.steps, self.ns[K_COMMIT], self.ns[K_COMMIT]);
        prof::count("steps", m.steps);
        prof::count("newton_iters", m.newton_iters);
        prof::count("lu_factor", m.lu_factor);
        prof::count("lu_reuse", m.lu_reuse);
        prof::count("steps_rejected", m.rejected());
    }
}

/// K parameter-perturbed instances of one netlist, solved in
/// SIMD-lane-batched groups. See the module docs for the stepping
/// discipline and retirement rules.
pub struct BatchedTransient {
    circuits: Vec<Circuit>,
    opts: SimOptions,
    /// Test hook: `(instance, t_after)` pairs forcing a Newton-failure
    /// retirement of that instance's lane at the first step boundary
    /// past `t_after`.
    newton_faults: Vec<(usize, f64)>,
}

impl BatchedTransient {
    /// Wrap K structure-identical circuits, validating each and
    /// checking that all share the first instance's topology (node
    /// count, element terminal pairs, source terminals — element
    /// *values* are free to differ; that is the point).
    ///
    /// # Errors
    ///
    /// Returns the first circuit's or the options' validation error
    /// (see [`Solver::new`]), or [`SimError::InvalidParameter`] with
    /// `element: "batch"` naming the first instance whose topology
    /// deviates.
    pub fn new(circuits: Vec<Circuit>, opts: SimOptions) -> Result<Self, SimError> {
        if let Some(first) = circuits.first() {
            // Solver::new validates both the circuit and the options.
            Solver::new(first.clone(), opts.clone())?;
            for (i, c) in circuits.iter().enumerate().skip(1) {
                c.validate()?;
                if !same_topology(first, c) {
                    #[allow(clippy::cast_precision_loss)]
                    return Err(SimError::InvalidParameter {
                        element: "batch",
                        field: "topology",
                        value: i as f64,
                    });
                }
            }
        }
        Ok(BatchedTransient {
            circuits,
            opts,
            newton_faults: Vec::new(),
        })
    }

    /// Number of instances in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.circuits.len()
    }

    /// Whether the batch holds no instances.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.circuits.is_empty()
    }

    /// Test hook: force a Newton-failure retirement of `instance`'s
    /// lane at the first step boundary at or past `t_after` seconds.
    /// The instance is finished on the scalar path like any organic
    /// retirement; siblings must be (and are, see the equivalence
    /// suite) unaffected.
    #[doc(hidden)]
    pub fn inject_newton_failure(&mut self, instance: usize, t_after: f64) {
        self.newton_faults.push((instance, t_after));
    }

    /// Run every instance from t = 0 to `t_end`, in groups of up to
    /// [`batch_width`] lanes; per-instance results in input order.
    /// Retired instances (and every instance when batching is
    /// disabled) are solved by the scalar golden path.
    #[must_use]
    pub fn try_run(&self, t_end: f64) -> Vec<Result<SimResult, SimError>> {
        let k = self.circuits.len();
        let width = batch_width();
        let mut out: Vec<Result<SimResult, SimError>> = Vec::with_capacity(k);
        let mut idx = 0usize;
        while idx < k {
            let end = (idx + width).min(k);
            if end - idx < 2 {
                out.push(scalar_run(&self.circuits[idx], &self.opts, t_end));
                idx += 1;
                continue;
            }
            let group = &self.circuits[idx..end];
            let faults: Vec<(usize, f64)> = self
                .newton_faults
                .iter()
                .filter(|(i, _)| (idx..end).contains(i))
                .map(|&(i, t)| (i - idx, t))
                .collect();
            let partial = run_group(group, &self.opts, t_end, &faults);
            for (j, r) in partial.into_iter().enumerate() {
                out.push(match r {
                    Some(sim) => Ok(sim),
                    None => scalar_run(&group[j], &self.opts, t_end),
                });
            }
            idx = end;
        }
        out
    }
}

/// One scalar golden-path run (used for disabled batching, width-1
/// tails, and retired lanes).
fn scalar_run(ckt: &Circuit, opts: &SimOptions, t_end: f64) -> Result<SimResult, SimError> {
    Solver::new(ckt.clone(), opts.clone())?.try_run(t_end)
}

/// Structural equality of two circuits: same node count, same element
/// counts, same terminal pairs in the same order, same source
/// terminals. Values (R/L/C, jj parameters, waveform amplitudes and
/// times) are free to differ.
fn same_topology(a: &Circuit, b: &Circuit) -> bool {
    a.node_count == b.node_count
        && a.jjs.len() == b.jjs.len()
        && a.resistors.len() == b.resistors.len()
        && a.capacitors.len() == b.capacitors.len()
        && a.inductors.len() == b.inductors.len()
        && a.sources.len() == b.sources.len()
        && a.jjs
            .iter()
            .zip(&b.jjs)
            .all(|(x, y)| x.a == y.a && x.b == y.b)
        && a.resistors
            .iter()
            .zip(&b.resistors)
            .all(|(x, y)| x.a == y.a && x.b == y.b)
        && a.capacitors
            .iter()
            .zip(&b.capacitors)
            .all(|(x, y)| x.a == y.a && x.b == y.b)
        && a.inductors
            .iter()
            .zip(&b.inductors)
            .all(|(x, y)| x.a == y.a && x.b == y.b)
        && a.sources
            .iter()
            .zip(&b.sources)
            .all(|(x, y)| x.into == y.into && x.from == y.from)
}

/// All mutable per-lane state of a running group, gathered so
/// retirement can mirror one lane onto another in a single place.
struct LaneState {
    /// Node voltages, index 0 = ground (always zero in every lane).
    v: Vec<Lane>,
    v_prev: Vec<Lane>,
    v_iter: Vec<Lane>,
    phase: Vec<Lane>,
    sin_ph: Vec<Lane>,
    cos_ph: Vec<Lane>,
    i_cap: Vec<Lane>,
    i_jj_cap: Vec<Lane>,
    i_ind: Vec<Lane>,
    vbar_prev: Vec<Lane>,
    vbar_prev2: Vec<Lane>,
    vbar_new: Vec<Lane>,
    /// Per-lane element values (params mirror on retirement too, so a
    /// retired lane tracks its healthy twin bit-for-bit and stays
    /// finite).
    g_res: Vec<Lane>,
    res_r: Vec<Lane>,
    cap_c: Vec<Lane>,
    ind_l: Vec<Lane>,
    jj_ic: Vec<Lane>,
    jj_r: Vec<Lane>,
    jj_g_shunt: Vec<Lane>,
    jj_c: Vec<Lane>,
    /// Per-plateau companions (functions of the per-lane values above
    /// and the shared step size).
    g_cap_lin: Vec<Lane>,
    g_ind: Vec<Lane>,
    g_jjcap: Vec<Lane>,
}

impl LaneState {
    /// Overwrite lane `dst` with lane `src` in every per-lane array.
    fn mirror(&mut self, dst: usize, src: usize) {
        let copy = |v: &mut Vec<Lane>| {
            for lane in v.iter_mut() {
                lane[dst] = lane[src];
            }
        };
        copy(&mut self.v);
        copy(&mut self.v_prev);
        copy(&mut self.v_iter);
        copy(&mut self.phase);
        copy(&mut self.sin_ph);
        copy(&mut self.cos_ph);
        copy(&mut self.i_cap);
        copy(&mut self.i_jj_cap);
        copy(&mut self.i_ind);
        copy(&mut self.vbar_prev);
        copy(&mut self.vbar_prev2);
        copy(&mut self.vbar_new);
        copy(&mut self.g_res);
        copy(&mut self.res_r);
        copy(&mut self.cap_c);
        copy(&mut self.ind_l);
        copy(&mut self.jj_ic);
        copy(&mut self.jj_r);
        copy(&mut self.jj_g_shunt);
        copy(&mut self.jj_c);
        copy(&mut self.g_cap_lin);
        copy(&mut self.g_ind);
        copy(&mut self.g_jjcap);
    }
}

/// Advance one group of 2..=LANES instances; `Some(result)` per
/// instance that ran to `t_end` in the batch, `None` for retired
/// instances (caller falls back to the scalar path).
#[allow(clippy::too_many_lines)]
fn run_group(
    ckts: &[Circuit],
    opts: &SimOptions,
    t_end: f64,
    faults: &[(usize, f64)],
) -> Vec<Option<SimResult>> {
    let k = ckts.len();
    debug_assert!((2..=LANES).contains(&k));
    for _ in 0..k {
        transient_counter().inc();
    }
    let mut metrics = GroupMetrics::default();
    // Frames: `solver.batch` carries the lane bookkeeping counters;
    // the nested `solver.run` carries the kernel laps under the same
    // path names as the scalar solver, so profiler coverage accounting
    // attributes batch work as solver work.
    let prof_batch = sfq_obs::prof::frame("solver.batch");
    let prof_run = sfq_obs::prof::frame("solver.run");
    let mut kprof = BatchKProf::start();

    let topo = &ckts[0];
    let n_unknown = topo.node_count - 1;
    let node_count = topo.node_count;
    let n_jj = topo.jjs.len();
    let n_cap = topo.capacitors.len();
    let n_ind = topo.inductors.len();
    let n_res = topo.resistors.len();

    // Lane `l` simulates instance `min(l, k-1)`; lanes past `k` are
    // ghost duplicates of the last instance (they keep the SIMD
    // kernels full and are never counted).
    let lane_ckt = |l: usize| &ckts[l.min(k - 1)];
    let mut counted = [false; LANES];
    for (l, c) in counted.iter_mut().enumerate() {
        *c = l < k;
    }
    let mut retired: [Option<Retire>; LANES] = [None; LANES];

    let h = opts.dt;
    let (adaptive, mut dt_min, dt_max, mut lte_tol) = match opts.step {
        StepControl::Fixed => (false, h, h, f64::INFINITY),
        StepControl::Adaptive {
            dt_min,
            dt_max,
            lte_tol,
        } => (true, dt_min, dt_max, lte_tol),
    };
    // Same retry-ladder relaxation as the scalar path (see
    // `Solver::try_run`), so a relaxed retry behaves identically no
    // matter which path serves it.
    if adaptive {
        let relax = sfq_guard::relax_level().min(4);
        if relax > 0 {
            #[allow(clippy::cast_possible_wrap)]
            let scale = 4f64.powi(relax as i32);
            dt_min /= scale;
            lte_tol *= scale;
        }
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let fixed_steps = (t_end / h).ceil() as usize;

    // Per-lane element values, SoA.
    let gather = |n: usize, f: &dyn Fn(&Circuit, usize) -> f64| -> Vec<Lane> {
        (0..n)
            .map(|e| {
                let mut lane = ZERO;
                for (l, slot) in lane.iter_mut().enumerate() {
                    *slot = f(lane_ckt(l), e);
                }
                lane
            })
            .collect()
    };
    let mut st = LaneState {
        v: vec![ZERO; node_count],
        v_prev: vec![ZERO; node_count],
        v_iter: vec![ZERO; node_count],
        phase: vec![ZERO; n_jj],
        sin_ph: vec![ZERO; n_jj],
        cos_ph: vec![splat(1.0); n_jj],
        i_cap: vec![ZERO; n_cap],
        i_jj_cap: vec![ZERO; n_jj],
        i_ind: vec![ZERO; n_ind],
        vbar_prev: vec![ZERO; node_count],
        vbar_prev2: vec![ZERO; node_count],
        vbar_new: vec![ZERO; node_count],
        g_res: gather(n_res, &|c, e| 1.0 / c.resistors[e].value),
        res_r: gather(n_res, &|c, e| c.resistors[e].value),
        cap_c: gather(n_cap, &|c, e| c.capacitors[e].value),
        ind_l: gather(n_ind, &|c, e| c.inductors[e].value),
        jj_ic: gather(n_jj, &|c, e| c.jjs[e].p.ic),
        jj_r: gather(n_jj, &|c, e| c.jjs[e].p.r),
        jj_g_shunt: gather(n_jj, &|c, e| 1.0 / c.jjs[e].p.r),
        jj_c: gather(n_jj, &|c, e| c.jjs[e].p.c),
        g_cap_lin: vec![ZERO; n_cap],
        g_ind: vec![ZERO; n_ind],
        g_jjcap: vec![ZERO; n_jj],
    };

    // Per-lane result accumulators (instance lanes only).
    let mut pulse_count = vec![[0usize; LANES]; n_jj];
    let mut pulse_times: Vec<Vec<Vec<f64>>> = (0..k).map(|_| vec![Vec::new(); n_jj]).collect();
    let mut dissipated = ZERO;
    let mut jj_dissipated = vec![ZERO; n_jj];
    let record = !opts.record_nodes.is_empty();
    let mut traces: Vec<Vec<Vec<f64>>> = (0..k)
        .map(|_| opts.record_nodes.iter().map(|_| Vec::new()).collect())
        .collect();
    let mut trace_times: Vec<f64> = Vec::new();

    // Topology plan: bandwidth + packed stamp indices. The batch
    // always uses the packed-band lane kernels — even for cells below
    // the scalar path's banded threshold — because the lane LU is the
    // kernel the SIMD win comes from; near-singular systems retire to
    // the scalar path and its pivoting fallback.
    let bandwidth = {
        let mut bw = 0usize;
        let mut visit = |a: usize, b: usize| {
            if a > 0 && b > 0 {
                bw = bw.max(a.abs_diff(b));
            }
        };
        for e in &topo.resistors {
            visit(e.a, e.b);
        }
        for e in &topo.capacitors {
            visit(e.a, e.b);
        }
        for e in &topo.inductors {
            visit(e.a, e.b);
        }
        for e in &topo.jjs {
            visit(e.a, e.b);
        }
        bw
    };
    let band_w = band_width(bandwidth);
    let stamp_idx = |a: usize, b: usize| -> Idx4 {
        let pos = |i: usize, j: usize| i * band_w + (bandwidth + j) - i;
        Idx4 {
            da: if a > 0 { pos(a - 1, a - 1) } else { usize::MAX },
            db: if b > 0 { pos(b - 1, b - 1) } else { usize::MAX },
            ab: if a > 0 && b > 0 {
                pos(a - 1, b - 1)
            } else {
                usize::MAX
            },
            ba: if a > 0 && b > 0 {
                pos(b - 1, a - 1)
            } else {
                usize::MAX
            },
        }
    };
    let lin_idx: Vec<Idx4> = topo
        .resistors
        .iter()
        .map(|e| (e.a, e.b))
        .chain(topo.capacitors.iter().map(|e| (e.a, e.b)))
        .chain(topo.inductors.iter().map(|e| (e.a, e.b)))
        .map(|(a, b)| stamp_idx(a, b))
        .collect();
    let jj_idx: Vec<Idx4> = topo.jjs.iter().map(|e| stamp_idx(e.a, e.b)).collect();
    let jj_ab: Vec<(usize, usize)> = topo.jjs.iter().map(|e| (e.a, e.b)).collect();
    let cap_ab: Vec<(usize, usize)> = topo.capacitors.iter().map(|e| (e.a, e.b)).collect();
    let ind_ab: Vec<(usize, usize)> = topo.inductors.iter().map(|e| (e.a, e.b)).collect();
    let res_ab: Vec<(usize, usize)> = topo.resistors.iter().map(|e| (e.a, e.b)).collect();
    let src_ab: Vec<(usize, usize)> = topo.sources.iter().map(|s| (s.into, s.from)).collect();

    // Work buffers.
    let mut a_lin = vec![ZERO; n_unknown * band_w];
    let mut lu = vec![ZERO; n_unknown * band_w];
    let mut lu_g = vec![ZERO; n_jj];
    let mut lu_valid = false;
    let mut rhs_base = vec![ZERO; n_unknown];
    let mut rhs = vec![ZERO; n_unknown];
    let mut g_now = vec![ZERO; n_jj];
    let mut ihist_now = vec![ZERO; n_jj];
    let mut i_at_vk = vec![ZERO; n_jj];
    let mut vb_k_buf = vec![ZERO; n_jj];
    let mut h_stamped = f64::NAN;
    let mut phi_coef = 0.0f64;

    // Shared adaptive-controller state (scalar semantics, maxima over
    // counted lanes).
    let refs: Vec<&Circuit> = ckts.iter().collect();
    let windows = if adaptive {
        merge_windows_union(&refs)
    } else {
        Vec::new()
    };
    let mut win_idx = 0usize;
    let mut h_cur = if adaptive { dt_min } else { h };
    let mut tbar_prev = 0.0f64;
    let mut tbar_prev2 = -dt_min;
    let mut good_streak = 0u32;
    let mut t = 0.0f64;
    let mut step_idx = 0usize;
    let mut fault_armed: Vec<(usize, f64)> = faults.to_vec();

    let any_counted = |counted: &[bool; LANES]| counted.iter().any(|&c| c);
    let first_counted = |counted: &[bool; LANES]| counted.iter().position(|&c| c);

    // Ambient execution guard, sampled once per group (one relaxed
    // load when never used). On a stop the still-live lanes retire to
    // the scalar golden path, which re-checks the budget (deadline and
    // cancel are monotone) and surfaces the typed error.
    let budget = sfq_guard::active().filter(|b| !b.is_unlimited());

    'time: loop {
        // Termination.
        if adaptive {
            if t_end - t < 1e-18 {
                break;
            }
        } else if step_idx >= fixed_steps {
            break;
        }

        // Execution guard: poll once per step attempt.
        if let Some(b) = budget.as_ref() {
            if b.poll(metrics.steps + metrics.rejected(), metrics.newton_iters)
                .is_some()
            {
                sfq_obs::inc("guard.batch_stop");
                for (l, r) in retired.iter_mut().enumerate() {
                    if counted[l] {
                        *r = Some(Retire::Budget);
                        counted[l] = false;
                    }
                }
                break 'time;
            }
        }

        // Test-hook retirements at step boundaries.
        if !fault_armed.is_empty() {
            let mut fired = false;
            fault_armed.retain(|&(lane, t_after)| {
                if t >= t_after && counted[lane] {
                    retired[lane] = Some(Retire::Newton);
                    counted[lane] = false;
                    metrics.retired_newton += 1;
                    fired = true;
                    false
                } else {
                    t < t_after
                }
            });
            if fired {
                if let Some(src) = first_counted(&counted) {
                    for (l, r) in retired.iter().enumerate() {
                        if r.is_some() {
                            st.mirror(l, src);
                        }
                    }
                }
                if !any_counted(&counted) {
                    break 'time;
                }
            }
        }

        // Effective step for this attempt (scalar controller logic;
        // windows are the union over lanes).
        let h_step = if adaptive {
            while win_idx < windows.len() && windows[win_idx].end <= t {
                win_idx += 1;
            }
            let mut hh = h_cur;
            if let Some(w) = windows.get(win_idx) {
                if t >= w.start {
                    if hh > w.cap {
                        hh = w.cap;
                        metrics.refine_source += 1;
                    }
                } else if hh > w.start - t {
                    hh = w.start - t;
                    metrics.refine_source += 1;
                }
            }
            hh.max(dt_min).min(t_end - t)
        } else {
            h
        };
        #[allow(clippy::cast_precision_loss)]
        let t_next = if adaptive {
            t + h_step
        } else {
            (step_idx + 1) as f64 * h
        };

        // Per-plateau companions + linear restamp when dt changed.
        if h_step != h_stamped {
            kprof.mark();
            phi_coef = PI * h_step / PHI0;
            for (e, c) in st.cap_c.iter().enumerate() {
                for (l, &cl) in c.iter().enumerate() {
                    st.g_cap_lin[e][l] = 2.0 * cl / h_step;
                }
            }
            for (e, lv) in st.ind_l.iter().enumerate() {
                for (l, &ll) in lv.iter().enumerate() {
                    st.g_ind[e][l] = h_step / (2.0 * ll);
                }
            }
            for (e, c) in st.jj_c.iter().enumerate() {
                for (l, &cl) in c.iter().enumerate() {
                    st.g_jjcap[e][l] = 2.0 * cl / h_step;
                }
            }
            a_lin.iter_mut().for_each(|x| *x = ZERO);
            for (s, g) in lin_idx[..n_res].iter().zip(&st.g_res) {
                apply_stamp_lanes(&mut a_lin, *s, *g);
            }
            for (s, g) in lin_idx[n_res..n_res + n_cap].iter().zip(&st.g_cap_lin) {
                apply_stamp_lanes(&mut a_lin, *s, *g);
            }
            for (s, g) in lin_idx[n_res + n_cap..].iter().zip(&st.g_ind) {
                apply_stamp_lanes(&mut a_lin, *s, *g);
            }
            h_stamped = h_step;
            lu_valid = false;
            metrics.restamps += 1;
            kprof.lap(K_RESTAMP);
        }

        st.v_prev.copy_from_slice(&st.v);
        st.v_iter.copy_from_slice(&st.v);

        // Per-step rhs: C/L history currents + per-lane source values.
        kprof.mark();
        rhs_base.iter_mut().for_each(|x| *x = ZERO);
        for (e, &(a, b)) in cap_ab.iter().enumerate() {
            let mut i_hist = ZERO;
            for (l, ih) in i_hist.iter_mut().enumerate() {
                let vb = st.v_prev[a][l] - st.v_prev[b][l];
                *ih = -st.g_cap_lin[e][l] * vb - st.i_cap[e][l];
            }
            stamp_i_lanes(&mut rhs_base, a, b, i_hist);
        }
        for (e, &(a, b)) in ind_ab.iter().enumerate() {
            let mut i_hist = ZERO;
            for (l, ih) in i_hist.iter_mut().enumerate() {
                let vb = st.v_prev[a][l] - st.v_prev[b][l];
                *ih = st.i_ind[e][l] + st.g_ind[e][l] * vb;
            }
            stamp_i_lanes(&mut rhs_base, a, b, i_hist);
        }
        for (s, &(into, from)) in src_ab.iter().enumerate() {
            let mut iv = ZERO;
            for (l, slot) in iv.iter_mut().enumerate() {
                *slot = lane_ckt(l).sources[s].waveform.value(t_next);
            }
            if into > 0 {
                for l in 0..LANES {
                    rhs_base[into - 1][l] += iv[l];
                }
            }
            if from > 0 {
                for l in 0..LANES {
                    rhs_base[from - 1][l] -= iv[l];
                }
            }
        }
        kprof.lap(K_STAMP);

        // Newton iteration until every counted lane converges.
        let mut conv_lane = [false; LANES];
        let mut converged = false;
        'newton: for _ in 0..opts.max_newton {
            metrics.newton_iters += 1;
            kprof.mark();
            // Linearize every junction in every lane: φₖ = phase + Δ
            // with sin/cos(Δ) by branch-free polynomial (per-lane libm
            // beyond ROT_MAX) rotated against the committed
            // sin/cos(phase).
            let mut reuse = lu_valid;
            for e in 0..n_jj {
                let (a, b) = jj_ab[e];
                let mut delta = ZERO;
                let mut vb_k = ZERO;
                let mut vb_prev = ZERO;
                for l in 0..LANES {
                    vb_prev[l] = st.v_prev[a][l] - st.v_prev[b][l];
                    vb_k[l] = st.v_iter[a][l] - st.v_iter[b][l];
                    delta[l] = phi_coef * (vb_k[l] + vb_prev[l]);
                }
                let (sin_d, cos_d) = sin_cos_rot(delta);
                let mut sin_phi = ZERO;
                let mut cos_phi = ZERO;
                for l in 0..LANES {
                    sin_phi[l] = st.sin_ph[e][l] * cos_d[l] + st.cos_ph[e][l] * sin_d[l];
                    cos_phi[l] = st.cos_ph[e][l] * cos_d[l] - st.sin_ph[e][l] * sin_d[l];
                }
                if delta.iter().any(|x| x.abs() > ROT_MAX) {
                    for l in 0..LANES {
                        if delta[l].abs() > ROT_MAX {
                            let phi = st.phase[e][l] + delta[l];
                            sin_phi[l] = phi.sin();
                            cos_phi[l] = phi.cos();
                        }
                    }
                }
                let mut g = ZERO;
                for l in 0..LANES {
                    let g_cap = st.g_jjcap[e][l];
                    i_at_vk[e][l] = st.jj_ic[e][l] * sin_phi[l]
                        + vb_k[l] * st.jj_g_shunt[e][l]
                        + g_cap * (vb_k[l] - vb_prev[l])
                        - st.i_jj_cap[e][l];
                    g[l] = st.jj_ic[e][l] * cos_phi[l] * phi_coef + st.jj_g_shunt[e][l] + g_cap;
                }
                if reuse {
                    for l in 0..LANES {
                        if counted[l] && (g[l] - lu_g[e][l]).abs() > G_REUSE_RTOL * lu_g[e][l].abs()
                        {
                            reuse = false;
                        }
                    }
                }
                g_now[e] = g;
                vb_k_buf[e] = vb_k;
            }
            // History currents against the conductance each lane will
            // actually solve with (factored-in values on reuse), so a
            // converged iterate satisfies KCL exactly — the scalar
            // solver's chord-Newton identity, lane-wise.
            for e in 0..n_jj {
                let g_mat = if reuse { lu_g[e] } else { g_now[e] };
                for l in 0..LANES {
                    ihist_now[e][l] = i_at_vk[e][l] - g_mat[l] * vb_k_buf[e][l];
                }
            }
            kprof.lap(K_JJ_STAMP_RHS);

            if reuse {
                metrics.lu_reuse += 1;
                rhs.copy_from_slice(&rhs_base);
                for (e, &(a, b)) in jj_ab.iter().enumerate() {
                    stamp_i_lanes(&mut rhs, a, b, ihist_now[e]);
                }
                kprof.lap(K_JJ_STAMP_RHS);
            } else {
                // Factor; a tiny pivot retires that lane (mirrored
                // from a healthy sibling) and the factorization is
                // redone — bounded by the lane count, and in practice
                // never taken on these diagonally-dominant systems.
                loop {
                    metrics.lu_factor += 1;
                    lu.copy_from_slice(&a_lin);
                    rhs.copy_from_slice(&rhs_base);
                    for (e, &(a, b)) in jj_ab.iter().enumerate() {
                        apply_stamp_lanes(&mut lu, jj_idx[e], g_now[e]);
                        stamp_i_lanes(&mut rhs, a, b, ihist_now[e]);
                    }
                    let ok = factor_banded_packed_lanes(&mut lu, n_unknown, bandwidth);
                    let mut newly_retired = false;
                    for l in 0..LANES {
                        if counted[l] && !ok[l] {
                            retired[l] = Some(Retire::Singular);
                            counted[l] = false;
                            metrics.retired_singular += 1;
                            newly_retired = true;
                        }
                    }
                    if !any_counted(&counted) {
                        kprof.lap(K_LU_FACTOR);
                        break 'time;
                    }
                    if !newly_retired {
                        break;
                    }
                    let Some(src) = first_counted(&counted) else {
                        break;
                    };
                    for (l, r) in retired.iter().enumerate() {
                        if r.is_some() {
                            st.mirror(l, src);
                        }
                    }
                    // Re-linearized values for mirrored lanes equal the
                    // source lane's; copy them directly.
                    for e in 0..n_jj {
                        for l in 0..LANES {
                            if retired[l].is_some() {
                                g_now[e][l] = g_now[e][src];
                                ihist_now[e][l] = ihist_now[e][src];
                                i_at_vk[e][l] = i_at_vk[e][src];
                                vb_k_buf[e][l] = vb_k_buf[e][src];
                            }
                        }
                    }
                }
                lu_g.copy_from_slice(&g_now);
                lu_valid = true;
                kprof.lap(K_LU_FACTOR);
            }
            solve_factored_packed_lanes(&lu, &mut rhs, n_unknown, bandwidth);
            kprof.lap(K_LU_SOLVE);

            // Per-lane update + convergence (reduction over counted
            // lanes only; a NaN never satisfies `< tol`).
            let mut max_dv = ZERO;
            for (i, s) in rhs.iter().enumerate() {
                for l in 0..LANES {
                    let dv = (s[l] - st.v_iter[i + 1][l]).abs();
                    if dv > max_dv[l] {
                        max_dv[l] = dv;
                    }
                    st.v_iter[i + 1][l] = s[l];
                }
            }
            let mut all = true;
            for l in 0..LANES {
                conv_lane[l] = max_dv[l] < opts.tol_v;
                if counted[l] && !conv_lane[l] {
                    all = false;
                }
            }
            kprof.lap(K_NEWTON);
            if all {
                converged = true;
                break 'newton;
            }
        }
        if !converged {
            if adaptive && h_step > dt_min {
                metrics.reject_newton += 1;
                h_cur = (h_step * 0.5).max(dt_min);
                good_streak = 0;
                continue;
            }
            // At dt_min (or in fixed mode): retire the unconverged
            // lanes; converged siblings carry on.
            for l in 0..LANES {
                if counted[l] && !conv_lane[l] {
                    retired[l] = Some(Retire::Newton);
                    counted[l] = false;
                    metrics.retired_newton += 1;
                }
            }
            if !any_counted(&counted) {
                break 'time;
            }
            if let Some(src) = first_counted(&counted) {
                for (l, r) in retired.iter().enumerate() {
                    if r.is_some() {
                        st.mirror(l, src);
                    }
                }
            }
        }

        // Accept/reject on the counted-lane maxima (adaptive only).
        kprof.mark();
        if adaptive {
            let mut dphi_l = ZERO;
            for &(a, b) in &jj_ab {
                for (l, dp) in dphi_l.iter_mut().enumerate() {
                    let vb_prev = st.v_prev[a][l] - st.v_prev[b][l];
                    let vb_new = st.v_iter[a][l] - st.v_iter[b][l];
                    let dphi = (phi_coef * (vb_new + vb_prev)).abs();
                    if dphi > *dp {
                        *dp = dphi;
                    }
                }
            }
            let tbar_new = t + 0.5 * h_step;
            let span = tbar_prev - tbar_prev2;
            let scale = if span > 0.0 {
                (tbar_new - tbar_prev) / span
            } else {
                1.0
            };
            let mut lte_l = ZERO;
            for i in 1..node_count {
                for (l, le) in lte_l.iter_mut().enumerate() {
                    st.vbar_new[i][l] = 0.5 * (st.v_iter[i][l] + st.v_prev[i][l]);
                    let pred =
                        st.vbar_prev[i][l] + (st.vbar_prev[i][l] - st.vbar_prev2[i][l]) * scale;
                    let e = (st.vbar_new[i][l] - pred).abs();
                    if e > *le {
                        *le = e;
                    }
                }
            }
            let mut lte = 0.0f64;
            let mut dphi_max = 0.0f64;
            for l in 0..LANES {
                if counted[l] {
                    if lte_l[l] > lte {
                        lte = lte_l[l];
                    }
                    if dphi_l[l] > dphi_max {
                        dphi_max = dphi_l[l];
                    }
                }
            }
            if h_step > dt_min && (lte > lte_tol || dphi_max > PHASE_MAX_STEP) {
                if lte > lte_tol {
                    metrics.reject_lte += 1;
                } else {
                    metrics.reject_phase += 1;
                }
                h_cur = (h_step * 0.5).max(dt_min);
                good_streak = 0;
                kprof.lap(K_LTE);
                continue;
            }
            if lte < GROW_MARGIN * lte_tol && dphi_max < PHASE_SLOW {
                good_streak += 1;
                if good_streak >= GROW_AFTER && h_cur < dt_max {
                    h_cur = (h_cur * 2.0).min(dt_max);
                    good_streak = 0;
                }
            } else {
                good_streak = 0;
            }
        }
        kprof.lap(K_LTE);

        // Commit.
        metrics.steps += 1;
        let reanchor = step_idx.is_multiple_of(TRIG_REANCHOR);
        for (e, &(a, b)) in jj_ab.iter().enumerate() {
            let mut new_phase = ZERO;
            let mut vb_new = ZERO;
            let mut vb_prev = ZERO;
            let mut d = ZERO;
            for l in 0..LANES {
                vb_prev[l] = st.v_prev[a][l] - st.v_prev[b][l];
                vb_new[l] = st.v_iter[a][l] - st.v_iter[b][l];
                d[l] = phi_coef * (vb_new[l] + vb_prev[l]);
                new_phase[l] = st.phase[e][l] + d[l];
            }
            // Pulse detection per counted instance lane (scalar
            // formula, including adaptive in-step interpolation).
            for (inst, times) in pulse_times.iter_mut().enumerate() {
                if !counted[inst] {
                    continue;
                }
                let old_phase = st.phase[e][inst];
                let np = new_phase[inst];
                #[allow(clippy::cast_precision_loss)]
                while np > (2 * pulse_count[e][inst] + 1) as f64 * PI {
                    #[allow(clippy::cast_precision_loss)]
                    let threshold = (2 * pulse_count[e][inst] + 1) as f64 * PI;
                    let t_pulse = if adaptive && np > old_phase {
                        t + h_step * ((threshold - old_phase) / (np - old_phase))
                    } else {
                        t_next
                    };
                    times[e].push(t_pulse);
                    pulse_count[e][inst] += 1;
                }
            }
            // Refresh the committed-phase sin/cos the Newton rotations
            // build on: rotate the previous anchor through the step's
            // increment (vectorizable; the adaptive controller caps
            // |Δφ| at `PHASE_MAX_STEP` < `ROT_MAX`), falling back to
            // libm every `TRIG_REANCHOR` steps — and whenever a lane
            // exceeds `ROT_MAX`, as fixed-mode steps can — so the
            // polynomial error is re-zeroed instead of accumulating.
            if reanchor || d.iter().any(|x| x.abs() > ROT_MAX) {
                for (l, &np) in new_phase.iter().enumerate() {
                    st.sin_ph[e][l] = np.sin();
                    st.cos_ph[e][l] = np.cos();
                }
            } else {
                let (sin_d, cos_d) = sin_cos_rot(d);
                for l in 0..LANES {
                    let (s, c) = (st.sin_ph[e][l], st.cos_ph[e][l]);
                    st.sin_ph[e][l] = s * cos_d[l] + c * sin_d[l];
                    st.cos_ph[e][l] = c * cos_d[l] - s * sin_d[l];
                }
            }
            for (l, diss) in dissipated.iter_mut().enumerate() {
                st.phase[e][l] = new_phase[l];
                st.i_jj_cap[e][l] = st.g_jjcap[e][l] * (vb_new[l] - vb_prev[l]) - st.i_jj_cap[e][l];
                let p_shunt = vb_new[l] * vb_new[l] / st.jj_r[e][l];
                jj_dissipated[e][l] += p_shunt * h_step;
                *diss += p_shunt * h_step;
            }
        }
        for (e, &(a, b)) in cap_ab.iter().enumerate() {
            for l in 0..LANES {
                let d = (st.v_iter[a][l] - st.v_iter[b][l]) - (st.v_prev[a][l] - st.v_prev[b][l]);
                st.i_cap[e][l] = st.g_cap_lin[e][l] * d - st.i_cap[e][l];
            }
        }
        for (e, &(a, b)) in ind_ab.iter().enumerate() {
            for l in 0..LANES {
                let s = (st.v_iter[a][l] - st.v_iter[b][l]) + (st.v_prev[a][l] - st.v_prev[b][l]);
                st.i_ind[e][l] += st.g_ind[e][l] * s;
            }
        }
        for (e, &(a, b)) in res_ab.iter().enumerate() {
            for (l, diss) in dissipated.iter_mut().enumerate() {
                let vb = st.v_iter[a][l] - st.v_iter[b][l];
                *diss += vb * vb / st.res_r[e][l] * h_step;
            }
        }
        if adaptive {
            std::mem::swap(&mut st.vbar_prev2, &mut st.vbar_prev);
            std::mem::swap(&mut st.vbar_prev, &mut st.vbar_new);
            tbar_prev2 = tbar_prev;
            tbar_prev = t + 0.5 * h_step;
        }
        st.v.copy_from_slice(&st.v_iter);
        t = t_next;
        step_idx += 1;
        if record {
            trace_times.push(t_next);
            for (inst, tr) in traces.iter_mut().enumerate() {
                for (slot, node) in opts.record_nodes.iter().enumerate() {
                    tr[slot].push(st.v[node.index()][inst]);
                }
            }
        }
        kprof.lap(K_COMMIT);
    }

    kprof.flush(&metrics);
    drop(prof_run);
    if sfq_obs::prof::enabled() {
        sfq_obs::prof::count("batch_lanes", k as u64);
        sfq_obs::prof::count("batch_retired_newton", metrics.retired_newton);
        sfq_obs::prof::count("batch_retired_singular", metrics.retired_singular);
        sfq_obs::prof::count(
            "batch_occupancy_final",
            counted.iter().filter(|&&c| c).count() as u64,
        );
    }
    drop(prof_batch);
    metrics.flush(k as u64, counted.iter().filter(|&&c| c).count() as u64);

    // Assemble per-instance results; retired instances fall back to
    // the scalar golden path in the caller.
    (0..k)
        .map(|inst| {
            if retired[inst].is_some() {
                return None;
            }
            Some(SimResult {
                dt: dt_min,
                t_end,
                pulse_times: std::mem::take(&mut pulse_times[inst]),
                final_phases: st.phase.iter().map(|p| p[inst]).collect(),
                dissipated_j: dissipated[inst],
                jj_dissipated_j: jj_dissipated.iter().map(|p| p[inst]).collect(),
                traces: std::mem::take(&mut traces[inst]),
                trace_times: trace_times.clone(),
                accepted_steps: metrics.steps,
                rejected_steps: metrics.rejected(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stdlib::{jtl_chain, JtlParams};

    fn perturbed(scale: f64) -> (Circuit, Vec<crate::ElementId>) {
        let p = JtlParams {
            ic: 1.0e-4 * scale,
            ..JtlParams::default()
        };
        jtl_chain(6, &p)
    }

    #[test]
    fn batched_matches_scalar_on_perturbed_chains() {
        let scales = [1.0, 0.97, 1.03, 0.97, 1.06];
        let t_end = 200e-12;
        let circuits: Vec<Circuit> = scales.iter().map(|&s| perturbed(s).0).collect();
        let probes = perturbed(1.0).1;
        let batch =
            BatchedTransient::new(circuits.clone(), SimOptions::adaptive()).expect("valid batch");
        set_batch_width(Some(LANES));
        let batched = batch.try_run(t_end);
        set_batch_width(None);
        for (i, c) in circuits.iter().enumerate() {
            let scalar = Solver::new(c.clone(), SimOptions::adaptive())
                .expect("valid circuit")
                .try_run(t_end)
                .expect("scalar converges");
            let b = batched[i].as_ref().expect("batched converges");
            for &jj in &probes {
                assert_eq!(
                    b.pulse_count(jj),
                    scalar.pulse_count(jj),
                    "instance {i} pulse count"
                );
                for (tb, ts) in b.pulse_times(jj).iter().zip(scalar.pulse_times(jj)) {
                    assert!(
                        (tb - ts).abs() <= 0.5e-12,
                        "instance {i}: pulse at {ts:e} vs batched {tb:e}"
                    );
                }
            }
            let e_rel = (b.dissipated_j - scalar.dissipated_j).abs() / scalar.dissipated_j;
            assert!(e_rel < 0.05, "instance {i} dissipation off by {e_rel:.3}");
        }
    }

    #[test]
    fn topology_mismatch_is_typed_error() {
        let (a, _) = perturbed(1.0);
        let (b, _) = jtl_chain(7, &JtlParams::default());
        let err = BatchedTransient::new(vec![a, b], SimOptions::adaptive());
        assert!(matches!(
            err,
            Err(SimError::InvalidParameter {
                element: "batch",
                field: "topology",
                ..
            })
        ));
    }

    #[test]
    fn injected_retirement_does_not_disturb_siblings() {
        let scales = [1.0, 0.97, 1.03, 1.06];
        let t_end = 200e-12;
        let circuits: Vec<Circuit> = scales.iter().map(|&s| perturbed(s).0).collect();
        let probes = perturbed(1.0).1;
        let mut batch =
            BatchedTransient::new(circuits.clone(), SimOptions::adaptive()).expect("valid batch");
        batch.inject_newton_failure(1, 60e-12);
        set_batch_width(Some(LANES));
        let batched = batch.try_run(t_end);
        set_batch_width(None);
        for (i, c) in circuits.iter().enumerate() {
            let scalar = Solver::new(c.clone(), SimOptions::adaptive())
                .expect("valid circuit")
                .try_run(t_end)
                .expect("scalar converges");
            let b = batched[i].as_ref().expect("batched converges");
            for &jj in &probes {
                assert_eq!(b.pulse_count(jj), scalar.pulse_count(jj), "instance {i}");
                for (tb, ts) in b.pulse_times(jj).iter().zip(scalar.pulse_times(jj)) {
                    assert!((tb - ts).abs() <= 0.5e-12, "instance {i}");
                }
            }
        }
        // The injected instance fell back to the scalar path, so its
        // result is the scalar result *exactly*.
        let scalar1 = Solver::new(circuits[1].clone(), SimOptions::adaptive())
            .expect("valid circuit")
            .try_run(t_end)
            .expect("scalar converges");
        let b1 = batched[1].as_ref().expect("fallback converges");
        for &jj in &probes {
            assert_eq!(b1.pulse_times(jj), scalar1.pulse_times(jj));
        }
    }

    #[test]
    fn width_one_is_the_scalar_path() {
        let (c, probes) = perturbed(1.0);
        set_batch_width(Some(1));
        let batch =
            BatchedTransient::new(vec![c.clone()], SimOptions::adaptive()).expect("valid batch");
        let out = batch.try_run(150e-12);
        set_batch_width(None);
        let scalar = Solver::new(c, SimOptions::adaptive())
            .expect("valid circuit")
            .try_run(150e-12)
            .expect("scalar converges");
        let b = out[0].as_ref().expect("batch-of-one converges");
        for &jj in &probes {
            assert_eq!(b.pulse_times(jj), scalar.pulse_times(jj));
        }
        assert_eq!(
            b.final_phase(probes[0]).to_bits(),
            scalar.final_phase(probes[0]).to_bits()
        );
    }
}
