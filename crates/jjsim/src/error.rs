//! Simulator errors.

/// Errors raised while building or solving a circuit.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// An element referenced a node that was never created.
    UnknownNode(usize),
    /// An element parameter was non-positive or non-finite.
    InvalidParameter {
        /// Which element family.
        element: &'static str,
        /// Which parameter.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The circuit has no nodes besides ground.
    EmptyCircuit,
    /// Newton iteration failed to converge at a timestep.
    NoConvergence {
        /// Simulation time at the failure, seconds.
        time: f64,
    },
    /// The linear solver hit a (numerically) singular matrix — usually
    /// a floating node.
    SingularMatrix {
        /// Simulation time at the failure, seconds.
        time: f64,
    },
    /// A probe, search or characterization run could not produce a
    /// verdict: the circuit already misbehaves at its nominal point, or
    /// every retry of a trial failed. Unlike [`SimError::NoConvergence`]
    /// this is a *protocol*-level outcome — the transient itself may
    /// have finished fine — and callers performing sweeps are expected
    /// to record it and keep going rather than abort.
    NonConvergent {
        /// What failed to converge (human-readable, static).
        what: &'static str,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::UnknownNode(n) => write!(f, "element references unknown node {n}"),
            SimError::InvalidParameter {
                element,
                field,
                value,
            } => write!(f, "invalid {element} parameter {field} = {value}"),
            SimError::EmptyCircuit => f.write_str("circuit has no nodes"),
            SimError::NoConvergence { time } => {
                write!(f, "newton iteration failed to converge at t = {time:e} s")
            }
            SimError::SingularMatrix { time } => {
                write!(
                    f,
                    "singular conductance matrix at t = {time:e} s (floating node?)"
                )
            }
            SimError::NonConvergent { what } => {
                write!(f, "non-convergent probe: {what}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_detail() {
        assert!(SimError::UnknownNode(7).to_string().contains('7'));
        assert!(SimError::NoConvergence { time: 1e-12 }
            .to_string()
            .contains("converge"));
    }
}
